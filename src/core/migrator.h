#ifndef MTDB_CORE_MIGRATOR_H_
#define MTDB_CORE_MIGRATOR_H_

#include <vector>

#include "core/layout.h"

namespace mtdb {
namespace mapping {

/// Statistics from one migration run.
struct MigrationReport {
  int tenants_migrated = 0;
  int64_t rows_migrated = 0;
};

/// §7 future work, implemented: "Because these factors can vary over
/// time, it should be possible to migrate data from one representation
/// to another on-the-fly."
///
/// Migration goes through the logical layer only — every row is read as
/// the tenant sees it and re-inserted through the target layout's
/// mapping — so any layout can migrate to any other layout, including
/// across databases. The source stays readable throughout (reads are
/// ordinary transformed queries), matching the on-line intent.
class LayoutMigrator {
 public:
  /// Moves one tenant (extension set + all rows of all logical tables)
  /// from `from` into `to`. `to` must be bootstrapped on the same
  /// AppSchema and must not already contain the tenant.
  static Result<MigrationReport> MigrateTenant(SchemaMapping* from,
                                               SchemaMapping* to,
                                               TenantId tenant);

  /// Migrates every tenant of `from`.
  static Result<MigrationReport> MigrateAll(SchemaMapping* from,
                                            SchemaMapping* to);
};

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_MIGRATOR_H_
