file(REMOVE_RECURSE
  "CMakeFiles/crm_saas.dir/crm_saas.cpp.o"
  "CMakeFiles/crm_saas.dir/crm_saas.cpp.o.d"
  "crm_saas"
  "crm_saas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crm_saas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
