# Empty compiler generated dependencies file for crm_saas.
# This may be replaced when dependencies are built.
