#include "sql/ast.h"

namespace mtdb {
namespace sql {

ParsedExprPtr ParsedExpr::Clone() const {
  auto out = std::make_unique<ParsedExpr>();
  out->kind = kind;
  out->literal = literal;
  out->table = table;
  out->column = column;
  out->param_ordinal = param_ordinal;
  out->unary_op = unary_op;
  out->binary_op = binary_op;
  if (left != nullptr) out->left = left->Clone();
  if (right != nullptr) out->right = right->Clone();
  out->is_null_negated = is_null_negated;
  out->like_negated = like_negated;
  out->func_name = func_name;
  for (const auto& a : args) out->args.push_back(a->Clone());
  out->func_star = func_star;
  return out;
}

ParsedExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<ParsedExpr>();
  e->kind = PExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ParsedExprPtr MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<ParsedExpr>();
  e->kind = PExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ParsedExprPtr MakeParam(size_t ordinal) {
  auto e = std::make_unique<ParsedExpr>();
  e->kind = PExprKind::kParam;
  e->param_ordinal = ordinal;
  return e;
}

ParsedExprPtr MakeBinary(BinaryOp op, ParsedExprPtr l, ParsedExprPtr r) {
  auto e = std::make_unique<ParsedExpr>();
  e->kind = PExprKind::kBinary;
  e->binary_op = op;
  e->left = std::move(l);
  e->right = std::move(r);
  return e;
}

ParsedExprPtr MakeUnary(UnaryOp op, ParsedExprPtr c) {
  auto e = std::make_unique<ParsedExpr>();
  e->kind = PExprKind::kUnary;
  e->unary_op = op;
  e->left = std::move(c);
  return e;
}

ParsedExprPtr MakeIsNull(ParsedExprPtr c, bool negated) {
  auto e = std::make_unique<ParsedExpr>();
  e->kind = PExprKind::kIsNull;
  e->left = std::move(c);
  e->is_null_negated = negated;
  return e;
}

ParsedExprPtr MakeLike(ParsedExprPtr value, ParsedExprPtr pattern,
                       bool negated) {
  auto e = std::make_unique<ParsedExpr>();
  e->kind = PExprKind::kLike;
  e->left = std::move(value);
  e->right = std::move(pattern);
  e->like_negated = negated;
  return e;
}

ParsedExprPtr MakeFunc(std::string name, std::vector<ParsedExprPtr> args,
                       bool star) {
  auto e = std::make_unique<ParsedExpr>();
  e->kind = PExprKind::kFuncCall;
  e->func_name = std::move(name);
  e->args = std::move(args);
  e->func_star = star;
  return e;
}

ParsedExprPtr AndTogether(ParsedExprPtr a, ParsedExprPtr b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  return MakeBinary(BinaryOp::kAnd, std::move(a), std::move(b));
}

void SplitParsedConjuncts(const ParsedExpr& e,
                          std::vector<ParsedExprPtr>* out) {
  if (e.kind == PExprKind::kBinary && e.binary_op == BinaryOp::kAnd) {
    SplitParsedConjuncts(*e.left, out);
    SplitParsedConjuncts(*e.right, out);
    return;
  }
  out->push_back(e.Clone());
}

TableRef TableRef::Clone() const {
  TableRef out;
  out.table_name = table_name;
  if (subquery != nullptr) out.subquery = subquery->Clone();
  out.alias = alias;
  return out;
}

SelectItem SelectItem::Clone() const {
  SelectItem out;
  if (expr != nullptr) out.expr = expr->Clone();
  out.alias = alias;
  return out;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto out = std::make_unique<SelectStmt>();
  for (const SelectItem& i : items) out->items.push_back(i.Clone());
  out->select_star = select_star;
  out->distinct = distinct;
  for (const TableRef& r : from) out->from.push_back(r.Clone());
  if (where != nullptr) out->where = where->Clone();
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  if (having != nullptr) out->having = having->Clone();
  for (const OrderItem& o : order_by) {
    OrderItem item;
    item.expr = o.expr->Clone();
    item.descending = o.descending;
    out->order_by.push_back(std::move(item));
  }
  out->limit = limit;
  out->offset = offset;
  return out;
}

}  // namespace sql
}  // namespace mtdb
