#include "testbed/crm_schema.h"

namespace mtdb {
namespace testbed {

const std::vector<CrmTable>& CrmTables() {
  static const auto* kTables = new std::vector<CrmTable>{
      {"campaign", {}},
      {"product", {}},
      {"account", {"campaign"}},
      {"lead", {"campaign", "account"}},
      {"opportunity", {"account"}},
      {"asset", {"account"}},
      {"contact", {"account"}},
      {"lineitem", {"opportunity", "product"}},
      {"crmcase", {"contact"}},
      {"contract", {"account"}},
  };
  return *kTables;
}

namespace {

/// Filler columns after id and foreign keys: a representative OLTP mix.
/// `status` is indexed on selected tables (the paper's "twelve indexes on
/// selected columns for reporting queries and update tasks").
struct Filler {
  const char* name;
  TypeId type;
};

const Filler kFillers[] = {
    {"name", TypeId::kString},     {"status", TypeId::kString},
    {"owner", TypeId::kString},    {"created", TypeId::kDate},
    {"modified", TypeId::kDate},   {"amount", TypeId::kDouble},
    {"quantity", TypeId::kInt32},  {"priority", TypeId::kInt32},
    {"region", TypeId::kString},   {"notes", TypeId::kString},
    {"score", TypeId::kDouble},    {"due", TypeId::kDate},
    {"category", TypeId::kString}, {"active", TypeId::kBool},
    {"code", TypeId::kString},     {"rank", TypeId::kInt32},
    {"budget", TypeId::kDouble},   {"closed", TypeId::kDate},
    {"source", TypeId::kString},   {"revision", TypeId::kInt32},
};

bool StatusIndexed(const std::string& table) {
  // Six tables carry a status index and six (via fk) more reporting
  // indexes; together they model the paper's 12 secondary indexes.
  return table == "account" || table == "opportunity" || table == "lead" ||
         table == "crmcase" || table == "contract" || table == "contact";
}

std::vector<mapping::LogicalColumn> CrmLogicalColumns(const CrmTable& t) {
  std::vector<mapping::LogicalColumn> cols;
  cols.push_back({"id", TypeId::kInt64, true});
  for (const std::string& p : t.parents) {
    cols.push_back({p + "_id", TypeId::kInt64, true});
  }
  for (const Filler& f : kFillers) {
    if (static_cast<int>(cols.size()) >= kCrmColumnsPerTable) break;
    bool indexed = StatusIndexed(t.name) && std::string(f.name) == "status";
    cols.push_back({f.name, f.type, indexed});
  }
  return cols;
}

}  // namespace

mapping::AppSchema BuildCrmAppSchema() {
  mapping::AppSchema app;
  for (const CrmTable& t : CrmTables()) {
    mapping::LogicalTable lt;
    lt.name = t.name;
    lt.columns = CrmLogicalColumns(t);
    Status st = app.AddTable(std::move(lt));
    (void)st;
  }
  // Vertical-industry extensions (§2/§3): health care and automotive on
  // account, plus construction-style project tracking on opportunity.
  {
    mapping::ExtensionDef ext;
    ext.name = "healthcare_account";
    ext.base_table = "account";
    ext.columns = {{"hospital", TypeId::kString, false},
                   {"beds", TypeId::kInt32, false},
                   {"accreditation", TypeId::kString, false},
                   {"medicare_id", TypeId::kInt64, true}};
    Status st = app.AddExtension(std::move(ext));
    (void)st;
  }
  {
    mapping::ExtensionDef ext;
    ext.name = "automotive_account";
    ext.base_table = "account";
    ext.columns = {{"dealers", TypeId::kInt32, false},
                   {"fleet_size", TypeId::kInt32, false},
                   {"oem", TypeId::kString, false}};
    Status st = app.AddExtension(std::move(ext));
    (void)st;
  }
  {
    mapping::ExtensionDef ext;
    ext.name = "project_opportunity";
    ext.base_table = "opportunity";
    ext.columns = {{"site", TypeId::kString, false},
                   {"permits", TypeId::kInt32, false},
                   {"inspection", TypeId::kDate, false},
                   {"architect", TypeId::kString, false},
                   {"bid_total", TypeId::kDouble, false}};
    Status st = app.AddExtension(std::move(ext));
    (void)st;
  }
  return app;
}

Schema CrmPhysicalSchema(const CrmTable& table) {
  Schema schema;
  schema.AddColumn(Column{"tenant", TypeId::kInt32, true});
  for (const mapping::LogicalColumn& c : CrmLogicalColumns(table)) {
    schema.AddColumn(Column{c.name, c.type, false});
  }
  return schema;
}

std::string CrmTableName(const std::string& table, int instance) {
  return table + "_i" + std::to_string(instance);
}

Status CreateCrmInstance(Database* db, int instance) {
  for (const CrmTable& t : CrmTables()) {
    std::string name = CrmTableName(t.name, instance);
    MTDB_RETURN_IF_ERROR(db->CreateTable(name, CrmPhysicalSchema(t)));
    // Primary index on the entity id and a unique compound index on the
    // tenant id and the entity id (§4.1).
    MTDB_RETURN_IF_ERROR(
        db->CreateIndex(name, "ix_" + name + "_id", {"id"}, false));
    MTDB_RETURN_IF_ERROR(db->CreateIndex(name, "ux_" + name + "_tenant_id",
                                         {"tenant", "id"}, true));
    if (StatusIndexed(t.name)) {
      MTDB_RETURN_IF_ERROR(db->CreateIndex(name, "ix_" + name + "_status",
                                           {"tenant", "status"}, false));
    }
    for (const std::string& p : t.parents) {
      MTDB_RETURN_IF_ERROR(db->CreateIndex(name, "ix_" + name + "_" + p,
                                           {"tenant", p + "_id"}, false));
    }
  }
  return Status::OK();
}

}  // namespace testbed
}  // namespace mtdb
