// Reproduces Table 1 + Table 2 + Figure 7: the §5 "Handling Many Tables"
// experiment. The MTD testbed runs the Figure 6 card-deck workload over
// a CRM database whose schema variability moves from one shared schema
// instance (10 tables) to one instance per tenant. The database's
// meta-data charge (4 KB/table, DB2-style) plus per-table index roots
// squeeze the buffer pool, so baseline compliance, throughput, and the
// index hit ratio all degrade as variability rises.
#include <cstdio>
#include <cstdlib>

#include "testbed/mtd_testbed.h"

namespace mtdb {
namespace testbed {
namespace {

int Main() {
  TestbedConfig base;
  base.num_tenants = 200;
  base.rows_per_table_per_tenant = 50;
  base.worker_sessions = 4;
  base.deck_size = 2500;
  base.memory_budget_bytes = 24ull * 1024 * 1024;
  base.read_latency_ns = 40000;  // 40 us per physical page read
  if (const char* env = std::getenv("MTDB_BENCH_TENANTS")) {
    base.num_tenants = std::atoi(env);
  }
  if (const char* env = std::getenv("MTDB_BENCH_DECK")) {
    base.deck_size = static_cast<size_t>(std::atoll(env));
  }

  const double variabilities[] = {0.0, 0.5, 0.65, 0.8, 1.0};

  std::printf("=== Table 1: Schema Variability and Data Distribution ===\n");
  std::printf("%-12s %-10s %-18s %-12s\n", "variability", "instances",
              "tenants/instance", "total tables");
  for (double v : variabilities) {
    int instances = InstancesFor(v, base.num_tenants);
    std::printf("%-12.2f %-10d %d-%-16d %-12d\n", v, instances,
                base.num_tenants / instances,
                (base.num_tenants + instances - 1) / instances,
                instances * 10);
  }

  std::printf("\n=== Table 2 / Figure 7: workload results ===\n");
  std::printf("tenants=%d rows/table/tenant=%lld sessions=%d deck=%zu "
              "memory=%llu MB\n\n",
              base.num_tenants,
              static_cast<long long>(base.rows_per_table_per_tenant),
              base.worker_sessions, base.deck_size,
              static_cast<unsigned long long>(base.memory_budget_bytes >> 20));

  std::map<ActionClass, double> baseline;
  bool have_baseline = false;
  for (double v : variabilities) {
    TestbedConfig config = base;
    config.schema_variability = v;
    MtdTestbed testbed(config);
    Status st = testbed.Setup();
    if (!st.ok()) {
      std::fprintf(stderr, "setup(%.2f): %s\n", v, st.ToString().c_str());
      return 1;
    }
    auto report = testbed.Run(have_baseline ? &baseline : nullptr);
    if (!report.ok()) {
      std::fprintf(stderr, "run(%.2f): %s\n", v,
                   report.status().ToString().c_str());
      return 1;
    }
    if (!have_baseline) {
      baseline = report->baseline();
      have_baseline = true;
    }
    PrintReport(*report);
    std::printf("\n");
  }
  std::printf(
      "Expected shape (Table 2): baseline compliance falls from 95%% to\n"
      "~70%%, throughput roughly halves, the index hit ratio decays while\n"
      "the data hit ratio stays flat, and response times grow with\n"
      "schema variability.\n");
  return 0;
}

}  // namespace
}  // namespace testbed
}  // namespace mtdb

int main() { return mtdb::testbed::Main(); }
