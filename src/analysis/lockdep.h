#ifndef MTDB_ANALYSIS_LOCKDEP_H_
#define MTDB_ANALYSIS_LOCKDEP_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "common/latch.h"

namespace mtdb {
namespace analysis {

/// Diagnostic-layer view of the lockdep latch-order validator and WAL-
/// protocol analyzer. The runtime itself lives in common/latch.h/.cc
/// (the analysis library sits above catalog/core, so the latch layer
/// cannot depend on it); this adapter renders its raw violations as
/// rule-cataloged Diagnostics (C201–C206, C301–C303).
///
/// Only meaningful in instrumented builds (-DMTDB_LOCKDEP=ON); in
/// release builds the wrappers compile down to raw primitives and every
/// call here reports a clean slate.

/// True when the validator is compiled into this build.
inline bool LockdepCompiledIn() { return lockdep::CompiledIn(); }

/// Fatal mode: abort the process on the first violation (what the CI
/// lockdep job runs under, via MTDB_LOCKDEP_FATAL=1). Tests that seed
/// deliberate violations turn this off before provoking them.
inline void LockdepSetFatal(bool fatal) { lockdep::SetFatal(fatal); }

/// Drains every violation recorded since the previous drain, rendered as
/// Diagnostics (severity kError, acquisition backtraces appended to the
/// message). Empty means a clean run.
std::vector<Diagnostic> DrainLockdepDiagnostics();

/// Total violations recorded since process start (Drain does not reset
/// this). Useful for cheap "still clean?" assertions between test
/// phases.
inline uint64_t LockdepTotalViolations() {
  return lockdep::TotalViolations();
}

}  // namespace analysis
}  // namespace mtdb

#endif  // MTDB_ANALYSIS_LOCKDEP_H_
