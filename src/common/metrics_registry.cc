#include "common/metrics_registry.h"

#include <algorithm>
#include <mutex>

namespace mtdb {

const std::array<uint64_t, LatencyHistogram::kBuckets>&
LatencyHistogram::BucketBoundsUs() {
  // 1-2-5 ladder from 1us to 1s; beyond lands in the overflow bucket.
  static const std::array<uint64_t, kBuckets> kBounds = {
      1,     2,     5,      10,     20,     50,     100,     200,     500,
      1000,  2000,  5000,   10000,  20000,  50000,  100000,  200000,  500000,
      1000000};
  return kBounds;
}

void LatencyHistogram::Record(uint64_t micros) {
  const auto& bounds = BucketBoundsUs();
  size_t i = 0;
  while (i < kBuckets && micros > bounds[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(micros, std::memory_order_relaxed);
}

uint64_t MetricsSnapshot::CounterValue(const std::string& name) const {
  for (const CounterEntry& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const MetricsSnapshot::HistogramEntry* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramEntry& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

namespace {

/// Escapes a metric name for a JSON string literal. Names are built from
/// identifiers, dots and digits, so only the JSON structural characters
/// need care.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(counters[i].name) +
           "\": " + std::to_string(counters[i].value);
  }
  out += counters.empty() ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramEntry& h = histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    \"" + JsonEscape(h.name) + "\": {\n";
    out += "      \"count\": " + std::to_string(h.count) + ",\n";
    out += "      \"sum_us\": " + std::to_string(h.sum_us) + ",\n";
    out += "      \"bounds_us\": [";
    for (size_t b = 0; b < h.bounds_us.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.bounds_us[b]);
    }
    out += "],\n      \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(h.buckets[b]);
    }
    out += "]\n    }";
  }
  out += histograms.empty() ? "},\n" : "\n  },\n";
  out += "  \"dropped_series\": " + std::to_string(dropped_series) + "\n}";
  return out;
}

MetricsRegistry::MetricsRegistry(size_t max_series)
    : max_series_(max_series == 0 ? 1 : max_series) {}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<Latch> lock(mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second.get();
  if (counters_.size() + histograms_.size() >= max_series_) {
    dropped_series_++;
    return &overflow_counter_;
  }
  auto counter = std::make_unique<Counter>();
  Counter* out = counter.get();
  counters_.emplace(name, std::move(counter));
  return out;
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<Latch> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second.get();
  if (counters_.size() + histograms_.size() >= max_series_) {
    dropped_series_++;
    return &overflow_histogram_;
  }
  auto hist = std::make_unique<LatencyHistogram>();
  LatencyHistogram* out = hist.get();
  histograms_.emplace(name, std::move(hist));
  return out;
}

void MetricsRegistry::RegisterGauge(std::string name,
                                    std::function<uint64_t()> fn) {
  std::lock_guard<Latch> lock(mu_);
  gauges_.emplace_back(std::move(name), std::move(fn));
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot out;
  // Copy the gauge list under the latch, evaluate outside it: gauge
  // callbacks snapshot other components and may take their latches.
  std::vector<std::pair<std::string, std::function<uint64_t()>>> gauges;
  {
    std::lock_guard<Latch> lock(mu_);
    for (const auto& [name, counter] : counters_) {
      out.counters.push_back({name, counter->value()});
    }
    for (const auto& [name, hist] : histograms_) {
      MetricsSnapshot::HistogramEntry e;
      e.name = name;
      const auto& bounds = LatencyHistogram::BucketBoundsUs();
      e.bounds_us.assign(bounds.begin(), bounds.end());
      e.buckets.reserve(LatencyHistogram::kBuckets + 1);
      for (size_t i = 0; i <= LatencyHistogram::kBuckets; ++i) {
        e.buckets.push_back(hist->bucket(i));
      }
      e.count = hist->count();
      e.sum_us = hist->sum_us();
      out.histograms.push_back(std::move(e));
    }
    gauges = gauges_;
    out.dropped_series = dropped_series_.value();
  }
  for (const auto& [name, fn] : gauges) {
    out.counters.push_back({name, fn()});
  }
  std::sort(out.counters.begin(), out.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return out;
}

}  // namespace mtdb
