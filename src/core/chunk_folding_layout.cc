#include "core/chunk_folding_layout.h"

namespace mtdb {
namespace mapping {

namespace {

std::string BaseName(const std::string& table) {
  return "cf_" + IdentLower(table);
}

std::string ConvExtName(const std::string& ext) {
  return "cfext_" + IdentLower(ext);
}

}  // namespace

Status ChunkFoldingLayout::Bootstrap() {
  // Conventional multi-tenant base tables: the most heavily-utilized
  // parts of the logical schemas.
  for (const LogicalTable& t : app_->tables()) {
    Schema schema;
    schema.AddColumn(Column{"tenant", TypeId::kInt32, true});
    schema.AddColumn(Column{"row", TypeId::kInt64, true});
    for (const LogicalColumn& c : t.columns) {
      schema.AddColumn(Column{c.name, c.type, false});
    }
    std::string physical = BaseName(t.name);
    MTDB_RETURN_IF_ERROR(db_->CreateTable(physical, std::move(schema)));
    MTDB_RETURN_IF_ERROR(db_->CreateIndex(physical, "ux_" + physical + "_row",
                                          {"tenant", "row"}, /*unique=*/true));
    for (const LogicalColumn& c : t.columns) {
      if (c.indexed) {
        MTDB_RETURN_IF_ERROR(db_->CreateIndex(
            physical, "ix_" + physical + "_" + IdentLower(c.name),
            {"tenant", c.name}, /*unique=*/false));
      }
    }
  }
  // The fixed set of generic Chunk Tables for the remaining parts.
  {
    Schema schema;
    schema.AddColumn(Column{"tenant", TypeId::kInt32, true});
    schema.AddColumn(Column{"tbl", TypeId::kInt32, true});
    schema.AddColumn(Column{"chunk", TypeId::kInt32, true});
    schema.AddColumn(Column{"row", TypeId::kInt64, true});
    for (const auto& [name, type] : options_.shape.DataColumns()) {
      schema.AddColumn(Column{name, type, false});
    }
    MTDB_RETURN_IF_ERROR(db_->CreateTable(DataTableName(), std::move(schema)));
    MTDB_RETURN_IF_ERROR(db_->CreateIndex(
        DataTableName(), "ux_foldchunk_tcr", {"tenant", "tbl", "chunk", "row"},
        /*unique=*/true));
  }
  {
    Schema schema;
    schema.AddColumn(Column{"tenant", TypeId::kInt32, true});
    schema.AddColumn(Column{"tbl", TypeId::kInt32, true});
    schema.AddColumn(Column{"chunk", TypeId::kInt32, true});
    schema.AddColumn(Column{"row", TypeId::kInt64, true});
    schema.AddColumn(Column{"int1", TypeId::kInt64, false});
    schema.AddColumn(Column{"str1", TypeId::kString, false});
    MTDB_RETURN_IF_ERROR(db_->CreateTable(IndexTableName(), std::move(schema)));
    MTDB_RETURN_IF_ERROR(db_->CreateIndex(
        IndexTableName(), "ux_foldidx_tcr", {"tenant", "tbl", "chunk", "row"},
        /*unique=*/true));
    MTDB_RETURN_IF_ERROR(db_->CreateIndex(
        IndexTableName(), "ix_foldidx_itcr", {"int1", "tenant", "tbl", "chunk"},
        /*unique=*/false));
    MTDB_RETURN_IF_ERROR(db_->CreateIndex(
        IndexTableName(), "ix_foldidx_stcr", {"str1", "tenant", "tbl", "chunk"},
        /*unique=*/false));
  }
  return Status::OK();
}

Status ChunkFoldingLayout::EnsureConventionalExtension(
    const ExtensionDef& def) {
  if (provisioned_exts_.count(IdentLower(def.name)) != 0) return Status::OK();
  Schema schema;
  schema.AddColumn(Column{"tenant", TypeId::kInt32, true});
  schema.AddColumn(Column{"row", TypeId::kInt64, true});
  for (const LogicalColumn& c : def.columns) {
    schema.AddColumn(Column{c.name, c.type, false});
  }
  std::string physical = ConvExtName(def.name);
  MTDB_RETURN_IF_ERROR(db_->CreateTable(physical, std::move(schema)));
  MTDB_RETURN_IF_ERROR(db_->CreateIndex(physical, "ux_" + physical + "_row",
                                        {"tenant", "row"}, /*unique=*/true));
  for (const LogicalColumn& c : def.columns) {
    if (c.indexed) {
      MTDB_RETURN_IF_ERROR(db_->CreateIndex(
          physical, "ix_" + physical + "_" + IdentLower(c.name),
          {"tenant", c.name}, /*unique=*/false));
    }
  }
  provisioned_exts_.insert(IdentLower(def.name));
  stats_.ddl_statements++;
  return Status::OK();
}

Status ChunkFoldingLayout::RecoverDerivedState() {
  provisioned_exts_.clear();
  for (const ExtensionDef& def : app_->extensions()) {
    if (db_->catalog()->GetTable(ConvExtName(def.name)) != nullptr) {
      provisioned_exts_.insert(IdentLower(def.name));
    }
  }
  return Status::OK();
}

Status ChunkFoldingLayout::EnableExtensionImpl(TenantId tenant,
                                           const std::string& ext) {
  const ExtensionDef* def = app_->FindExtension(ext);
  if (def == nullptr) return Status::NotFound("no such extension: " + ext);
  if (options_.conventional_extensions.count(IdentLower(ext)) != 0) {
    MTDB_RETURN_IF_ERROR(EnsureConventionalExtension(*def));
  }
  return SchemaMapping::EnableExtensionImpl(tenant, ext);
}

Result<std::unique_ptr<TableMapping>> ChunkFoldingLayout::BuildMapping(
    TenantId tenant, const std::string& table) {
  MTDB_ASSIGN_OR_RETURN(TenantEntry * entry, GetTenant(tenant));
  const LogicalTable* base = app_->FindTable(table);
  if (base == nullptr) return Status::NotFound("no logical table: " + table);

  auto mapping = std::make_unique<TableMapping>();
  int32_t tbl = TableNumber(tenant, table);

  // Source 0: the conventional base table.
  {
    PhysicalSource source;
    source.physical_table = BaseName(table);
    source.partition.emplace_back("tenant", Value::Int32(tenant));
    source.row_column = "row";
    mapping->sources.push_back(std::move(source));
    for (const LogicalColumn& c : base->columns) {
      ColumnTarget target;
      target.source = 0;
      target.physical_column = c.name;
      target.physical_type = c.type;
      target.logical_type = c.type;
      mapping->columns[IdentLower(c.name)] = target;
      mapping->column_order.push_back(c.name);
    }
  }

  int32_t next_chunk = 0;
  for (const std::string& ext_name : entry->state.extensions()) {
    const ExtensionDef* def = app_->FindExtension(ext_name);
    if (def == nullptr || !IdentEquals(def->base_table, table)) continue;

    if (options_.conventional_extensions.count(IdentLower(ext_name)) != 0) {
      // Hot extension: its own conventional table.
      PhysicalSource source;
      source.physical_table = ConvExtName(def->name);
      source.partition.emplace_back("tenant", Value::Int32(tenant));
      source.row_column = "row";
      size_t src = mapping->sources.size();
      mapping->sources.push_back(std::move(source));
      for (const LogicalColumn& c : def->columns) {
        ColumnTarget target;
        target.source = src;
        target.physical_column = c.name;
        target.physical_type = c.type;
        target.logical_type = c.type;
        mapping->columns[IdentLower(c.name)] = target;
        mapping->column_order.push_back(c.name);
      }
      continue;
    }

    // Cold extension: fold its columns into the generic chunk tables.
    EffectiveTable pseudo;
    pseudo.name = def->name;
    pseudo.columns = def->columns;
    std::vector<ChunkAssignment> chunks =
        PartitionIntoChunks(pseudo, options_.shape);
    for (const ChunkAssignment& chunk : chunks) {
      PhysicalSource source;
      source.physical_table =
          chunk.indexed ? IndexTableName() : DataTableName();
      source.partition.emplace_back("tenant", Value::Int32(tenant));
      source.partition.emplace_back("tbl", Value::Int32(tbl));
      source.partition.emplace_back("chunk", Value::Int32(next_chunk++));
      source.row_column = "row";
      size_t src = mapping->sources.size();
      mapping->sources.push_back(std::move(source));
      for (const ChunkSlot& slot : chunk.slots) {
        const LogicalColumn& col = pseudo.columns[slot.logical_column];
        ColumnTarget target;
        target.source = src;
        target.physical_column = slot.physical_column;
        target.physical_type = PhysicalTypeOf(slot.cls);
        target.logical_type = col.type;
        mapping->columns[IdentLower(col.name)] = target;
        mapping->column_order.push_back(col.name);
      }
    }
  }
  return mapping;
}

}  // namespace mapping
}  // namespace mtdb
