#include "core/migrator.h"

namespace mtdb {
namespace mapping {

Result<MigrationReport> LayoutMigrator::MigrateTenant(SchemaMapping* from,
                                                      SchemaMapping* to,
                                                      TenantId tenant) {
  MigrationReport report;
  MTDB_ASSIGN_OR_RETURN(std::vector<std::string> extensions,
                        from->TenantExtensions(tenant));
  MTDB_RETURN_IF_ERROR(to->CreateTenant(tenant));
  // From here on the target holds partial state; any failure rolls it
  // back to empty (best effort — DropTenant deletes whatever subset of
  // rows arrived), so a failed migration never leaves the tenant split
  // across two layouts.
  auto fail = [&](const Status& st) -> Status {
    (void)to->DropTenant(tenant);
    return st;
  };
  for (const std::string& ext : extensions) {
    Status st = to->EnableExtension(tenant, ext);
    if (!st.ok()) return fail(st);
  }
  for (const LogicalTable& table : from->app()->tables()) {
    // Read through the source mapping: the tenant's full logical rows.
    Result<QueryResult> rows =
        from->Query(tenant, "SELECT * FROM " + table.name);
    if (!rows.ok()) return fail(rows.status());
    for (const Row& row : rows->rows) {
      Result<int64_t> n = to->InsertRow(tenant, table.name, row);
      if (!n.ok()) return fail(n.status());
      report.rows_migrated += *n;
    }
  }
  report.tenants_migrated = 1;
  return report;
}

Result<MigrationReport> LayoutMigrator::MigrateAll(SchemaMapping* from,
                                                   SchemaMapping* to) {
  MigrationReport total;
  for (TenantId tenant : from->TenantIds()) {
    MTDB_ASSIGN_OR_RETURN(MigrationReport r, MigrateTenant(from, to, tenant));
    total.tenants_migrated += r.tenants_migrated;
    total.rows_migrated += r.rows_migrated;
  }
  return total;
}

}  // namespace mapping
}  // namespace mtdb
