#include "common/deadline.h"

namespace mtdb::deadline {
namespace internal {

thread_local Deadline tls_deadline{};

}  // namespace internal
}  // namespace mtdb::deadline
