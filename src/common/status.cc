#include "common/status.h"

namespace mtdb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mtdb
