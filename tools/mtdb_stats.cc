// mtdb_stats: runs a small traced multi-tenant workload on one layout
// and dumps the engine's composed metrics snapshot as JSON — the
// observability quickstart's companion CLI.
//
// Usage: mtdb_stats [layout] [--explain "<logical sql>"]
//   layout     basic|private|extension|universal|pivot|chunk|chunkfolding
//              (default chunk)
//   --explain  additionally prints EXPLAIN MAPPING for the given logical
//              statement (tenant 0) before the JSON dump, to stderr so
//              the stdout stays machine-readable.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/basic_layout.h"
#include "core/chunk_folding_layout.h"
#include "core/chunk_layout.h"
#include "core/extension_layout.h"
#include "core/pivot_layout.h"
#include "core/private_layout.h"
#include "core/tenant_session.h"
#include "core/universal_layout.h"
#include "engine/database.h"

using namespace mtdb;           // NOLINT: tool brevity
using namespace mtdb::mapping;  // NOLINT

namespace {

AppSchema MakeSchema() {
  AppSchema app;
  LogicalTable account;
  account.name = "account";
  account.columns = {{"aid", TypeId::kInt64, true},
                     {"name", TypeId::kString, false},
                     {"status", TypeId::kString, false},
                     {"amount", TypeId::kDouble, false}};
  (void)app.AddTable(std::move(account));
  ExtensionDef health;
  health.name = "healthcare";
  health.base_table = "account";
  health.columns = {{"hospital", TypeId::kString, false},
                    {"beds", TypeId::kInt32, false}};
  (void)app.AddExtension(std::move(health));
  return app;
}

std::unique_ptr<SchemaMapping> MakeByName(const std::string& name,
                                          Database* db, AppSchema* app) {
  if (name == "basic") return std::make_unique<BasicLayout>(db, app);
  if (name == "private") return std::make_unique<PrivateTableLayout>(db, app);
  if (name == "extension") {
    return std::make_unique<ExtensionTableLayout>(db, app);
  }
  if (name == "universal") {
    return std::make_unique<UniversalTableLayout>(db, app);
  }
  if (name == "pivot") return std::make_unique<PivotTableLayout>(db, app);
  if (name == "chunkfolding") {
    return std::make_unique<ChunkFoldingLayout>(db, app);
  }
  return std::make_unique<ChunkTableLayout>(db, app);
}

}  // namespace

int main(int argc, char** argv) {
  std::string layout_name = "chunk";
  std::string explain_sql;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--explain") == 0 && i + 1 < argc) {
      explain_sql = argv[++i];
    } else {
      layout_name = argv[i];
    }
  }

  AppSchema app = MakeSchema();
  auto opened = Database::Open(DatabaseOptions{});
  if (!opened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 opened.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<Database> db = std::move(*opened);
  auto layout = MakeByName(layout_name, db.get(), &app);
  if (!layout->Bootstrap().ok()) {
    std::fprintf(stderr, "bootstrap failed for layout %s\n",
                 layout_name.c_str());
    return 1;
  }

  constexpr int kTenants = 4;
  constexpr int kRows = 25;
  const bool extensible = layout_name != "basic";
  for (TenantId t = 0; t < kTenants; ++t) {
    if (!layout->CreateTenant(t).ok()) return 1;
    if (extensible && t % 2 == 0 &&
        !layout->EnableExtension(t, "healthcare").ok()) {
      return 1;
    }
    TenantSession session = layout->OpenSession(t);
    session.EnableTracing();
    for (int i = 1; i <= kRows; ++i) {
      Row row{Value::Int64(i), Value::String("n" + std::to_string(i)),
              Value::String(i % 2 == 0 ? "open" : "won"),
              Value::Double(i * 10.0)};
      if (extensible && t % 2 == 0) {
        row.push_back(Value::String("hosp" + std::to_string(i % 7)));
        row.push_back(Value::Int32(i * 3));
      }
      if (!session.InsertRow("account", row).ok()) return 1;
    }
    auto q = session.Query("SELECT name, amount FROM account WHERE aid = ?",
                           {Value::Int64(7)});
    if (!q.ok()) return 1;
    auto u = session.Execute(
        "UPDATE account SET status = 'lost' WHERE aid = ?", {Value::Int64(3)});
    if (!u.ok()) return 1;
    auto d = session.Execute("DELETE FROM account WHERE aid = ?",
                             {Value::Int64(9)});
    if (!d.ok()) return 1;
  }

  if (!explain_sql.empty()) {
    auto session = layout->OpenSession(0);
    auto explained = session.Explain(explain_sql);
    if (!explained.ok()) {
      std::fprintf(stderr, "explain failed: %s\n",
                   explained.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "%s\n", explained->ToText().c_str());
  }

  std::printf("%s\n", db->Stats().metrics.ToJson().c_str());
  return 0;
}
