#ifndef MTDB_STORAGE_ROW_CODEC_H_
#define MTDB_STORAGE_ROW_CODEC_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace mtdb {

/// Serializes rows to the byte layout stored in slotted pages:
///   [null bitmap][fixed/varlen column payloads in schema order]
/// Strings carry a 2-byte length prefix. NULLs occupy no payload bytes —
/// this is what makes the Universal Table layout's many NULLs cheap in
/// storage yet still cost buffer-pool width for non-null columns.
class RowCodec {
 public:
  explicit RowCodec(std::vector<TypeId> types) : types_(std::move(types)) {}

  const std::vector<TypeId>& types() const { return types_; }
  size_t num_columns() const { return types_.size(); }

  /// Appends the serialized row to `out`. The row must have one value per
  /// schema column; values are cast to the column type.
  Status Encode(const Row& row, std::string* out) const;

  Result<Row> Decode(const char* data, uint32_t len) const;

 private:
  std::vector<TypeId> types_;
};

}  // namespace mtdb

#endif  // MTDB_STORAGE_ROW_CODEC_H_
