#include "core/migrator.h"

namespace mtdb {
namespace mapping {

Result<MigrationReport> LayoutMigrator::MigrateTenant(SchemaMapping* from,
                                                      SchemaMapping* to,
                                                      TenantId tenant) {
  MigrationReport report;
  MTDB_ASSIGN_OR_RETURN(std::vector<std::string> extensions,
                        from->TenantExtensions(tenant));
  MTDB_RETURN_IF_ERROR(to->CreateTenant(tenant));
  for (const std::string& ext : extensions) {
    MTDB_RETURN_IF_ERROR(to->EnableExtension(tenant, ext));
  }
  for (const LogicalTable& table : from->app()->tables()) {
    // Read through the source mapping: the tenant's full logical rows.
    MTDB_ASSIGN_OR_RETURN(QueryResult rows,
                          from->Query(tenant, "SELECT * FROM " + table.name));
    for (const Row& row : rows.rows) {
      MTDB_ASSIGN_OR_RETURN(int64_t n, to->InsertRow(tenant, table.name, row));
      report.rows_migrated += n;
    }
  }
  report.tenants_migrated = 1;
  return report;
}

Result<MigrationReport> LayoutMigrator::MigrateAll(SchemaMapping* from,
                                                   SchemaMapping* to) {
  MigrationReport total;
  for (TenantId tenant : from->TenantIds()) {
    MTDB_ASSIGN_OR_RETURN(MigrationReport r, MigrateTenant(from, to, tenant));
    total.tenants_migrated += r.tenants_migrated;
    total.rows_migrated += r.rows_migrated;
  }
  return total;
}

}  // namespace mapping
}  // namespace mtdb
