#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/lockdep.h"
#include "analysis/verifier.h"
#include "common/fault.h"
#include "common/rng.h"
#include "core/tenant_session.h"
#include "mapping_test_util.h"
#include "storage/wal.h"

namespace mtdb {
namespace mapping {
namespace {

namespace fs = std::filesystem;

/// Crash-recovery harness: a randomized logical workload runs over every
/// layout on a durable engine while a seeded FaultInjector kills the
/// durability layer (FaultPoint::kCrash) at scheduled points. A shadow
/// model applies exactly the statements that reported success; after each
/// kill the engine is reopened from disk (checkpoint + WAL replay + txn
/// undo), the layout re-derives its state with Recover(), and the logical
/// contents must equal the shadow — acknowledged statements survive,
/// killed ones vanish without a trace.
class RecoveryTest
    : public ::testing::TestWithParam<std::tuple<LayoutKind, uint64_t>> {};

/// One tenant's expected logical table: aid -> full effective row.
using ShadowTable = std::map<int64_t, std::vector<Value>>;

std::string FormatRow(const std::vector<Value>& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].is_null() ? "NULL" : row[i].ToString();
  }
  return out + ")";
}

std::string FreshDir(const std::string& tag) {
  std::string dir = ::testing::TempDir() + "mtdb_recovery_" + tag;
  fs::remove_all(dir);
  return dir;
}

/// Full-content compare of one tenant's logical table against the shadow.
void VerifyTenant(SchemaMapping* layout, TenantId t, const ShadowTable& shadow,
                  const char* when) {
  auto r = layout->Query(t, "SELECT * FROM account ORDER BY aid");
  ASSERT_TRUE(r.ok()) << when << " tenant " << t << ": "
                      << r.status().ToString();
  ASSERT_EQ(r->rows.size(), shadow.size())
      << when << " tenant " << t
      << ": row count diverged after recovery (lost acknowledged rows or "
      << "resurrected killed ones)";
  size_t i = 0;
  for (const auto& [aid, expected] : shadow) {
    const Row& got = r->rows[i++];
    ASSERT_EQ(got.size(), expected.size()) << when << " tenant " << t;
    for (size_t c = 0; c < expected.size(); ++c) {
      ASSERT_EQ(got[c].Compare(expected[c]), 0)
          << when << " tenant " << t << " aid " << aid << " col " << c
          << ": got " << FormatRow(got) << " want " << FormatRow(expected);
    }
  }
}

void AuditLayout(SchemaMapping* layout, const char* when) {
  analysis::Verifier verifier(layout);
  auto diagnostics = verifier.Run();
  ASSERT_TRUE(diagnostics.ok()) << when << ": "
                                << diagnostics.status().ToString();
  EXPECT_FALSE(analysis::HasErrors(*diagnostics))
      << when << ": " << analysis::FormatDiagnostics(*diagnostics);
}

TEST_P(RecoveryTest, CrashKillReopenMatchesShadow) {
  const LayoutKind kind = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());

  AppSchema app = FigureFourSchema();
  const std::string dir = FreshDir(std::string(LayoutKindName(kind)) +
                                   "_seed" + std::to_string(seed));

  EngineOptions options;
  // Small enough that automatic checkpoints land inside the crash windows,
  // so kills hit checkpoint sites as well as append sites.
  options.checkpoint_interval_bytes = 96 * 1024;

  auto opened = Database::Open(DatabaseOptions::WithPath(dir, options));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  std::unique_ptr<SchemaMapping> layout = MakeLayout(kind, db.get(), &app);
  ASSERT_TRUE(layout->Bootstrap().ok());

  constexpr TenantId kTenants = 3;
  // Admin ops (tenant/extension provisioning) run outside the crash
  // windows: CreateTenant spans several statements and is documented as
  // not crash-atomic (DESIGN.md §10).
  for (TenantId t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(layout->CreateTenant(t).ok());
  }
  const bool extended = layout->EnableExtension(0, "healthcare").ok();
  layout->set_quarantine_threshold(1'000'000);

  FaultInjector injector(seed);
  Rng rng(seed * 6151 + 3);
  auto columns_of = [&](TenantId t) -> size_t {
    return (t == 0 && extended) ? 4u : 2u;
  };

  ShadowTable shadow[kTenants];
  int64_t next_aid = 1;
  int crashes = 0;

  // Simulated process death: the live engine (whose memory may be ahead
  // of disk after a freeze) is discarded and a new one recovers from the
  // checkpoint + WAL. The layout re-derives its per-tenant state from the
  // durable registry instead of re-running Bootstrap.
  auto reopen = [&]() {
    db->page_store()->set_fault_injector(nullptr);
    layout.reset();
    db.reset();
    auto r = Database::Open(DatabaseOptions::WithPath(dir, options));
    ASSERT_TRUE(r.ok()) << "reopen: " << r.status().ToString();
    db = std::move(*r);
    layout = MakeLayout(kind, db.get(), &app);
    Status rec = layout->Recover();
    ASSERT_TRUE(rec.ok()) << "layout recover: " << rec.ToString();
    layout->set_quarantine_threshold(1'000'000);
  };

  constexpr int kCycles = 4;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    db->page_store()->set_fault_injector(&injector);
    injector.DisarmAll();
    FaultSpec spec;
    spec.probability = 1.0;
    spec.skip = static_cast<uint64_t>(rng.Uniform(2, 35));
    spec.max_fires = 1;
    injector.Arm(FaultPoint::kCrash, spec);

    bool crashed = false;
    for (int op = 0; op < 60 && !crashed; ++op) {
      // A crash during the post-statement auto checkpoint freezes the
      // engine after the statement acknowledged; catch it here instead of
      // issuing doomed statements.
      if (db->durability()->frozen()) {
        crashed = true;
        break;
      }
      layout->set_dml_mode(rng.Bernoulli(0.5) ? DmlMode::kBatched
                                              : DmlMode::kPerRow);
      TenantId t = static_cast<TenantId>(rng.Uniform(0, kTenants - 1));
      const size_t cols = columns_of(t);
      const int action = static_cast<int>(rng.Uniform(0, 8));

      Result<int64_t> r = 0;
      if (action < 3) {  // single-row INSERT
        int64_t aid = next_aid++;
        std::vector<Value> row{Value::Int64(aid),
                               Value::String(rng.Word(3, 8)),
                               Value::Null(TypeId::kString),
                               Value::Null(TypeId::kInt32)};
        r = cols == 4
                ? layout->Execute(
                      t,
                      "INSERT INTO account (aid, name, hospital, beds) "
                      "VALUES (?, ?, ?, ?)",
                      {row[0], row[1],
                       (row[2] = Value::String(rng.Word(4, 10)), row[2]),
                       (row[3] = Value::Int32(
                            static_cast<int32_t>(rng.Uniform(1, 2000))),
                        row[3])})
                : layout->Execute(
                      t, "INSERT INTO account (aid, name) VALUES (?, ?)",
                      {row[0], row[1]});
        if (r.ok()) {
          EXPECT_EQ(*r, 1);
          row.resize(cols);
          shadow[t].emplace(aid, std::move(row));
        }
      } else if (action == 3) {  // multi-row INSERT: one logical statement
        int64_t a1 = next_aid++, a2 = next_aid++;
        std::string n1 = rng.Word(3, 8), n2 = rng.Word(3, 8);
        r = layout->Execute(
            t, "INSERT INTO account (aid, name) VALUES (?, ?), (?, ?)",
            {Value::Int64(a1), Value::String(n1), Value::Int64(a2),
             Value::String(n2)});
        if (r.ok()) {
          EXPECT_EQ(*r, 2);
          std::vector<Value> r1{Value::Int64(a1), Value::String(n1)};
          std::vector<Value> r2{Value::Int64(a2), Value::String(n2)};
          if (cols == 4) {
            r1.push_back(Value::Null(TypeId::kString));
            r1.push_back(Value::Null(TypeId::kInt32));
            r2.push_back(Value::Null(TypeId::kString));
            r2.push_back(Value::Null(TypeId::kInt32));
          }
          shadow[t].emplace(a1, std::move(r1));
          shadow[t].emplace(a2, std::move(r2));
        }
      } else if (action < 6 && !shadow[t].empty()) {  // UPDATE one row
        auto it = shadow[t].begin();
        std::advance(it, static_cast<ptrdiff_t>(rng.Uniform(
                             0, static_cast<int64_t>(shadow[t].size()) - 1)));
        std::string name = rng.Word(3, 8);
        r = layout->Execute(t, "UPDATE account SET name = ? WHERE aid = ?",
                            {Value::String(name), Value::Int64(it->first)});
        if (r.ok()) {
          EXPECT_EQ(*r, 1);
          it->second[1] = Value::String(name);
        }
      } else if (action == 6 && cols == 4 && !shadow[t].empty()) {
        // extension-column UPDATE (touches a different chunk/source)
        auto it = shadow[t].begin();
        std::advance(it, static_cast<ptrdiff_t>(rng.Uniform(
                             0, static_cast<int64_t>(shadow[t].size()) - 1)));
        int32_t beds = static_cast<int32_t>(rng.Uniform(1, 5000));
        r = layout->Execute(t, "UPDATE account SET beds = ? WHERE aid = ?",
                            {Value::Int32(beds), Value::Int64(it->first)});
        if (r.ok()) {
          EXPECT_EQ(*r, 1);
          it->second[3] = Value::Int32(beds);
        }
      } else if (!shadow[t].empty()) {  // DELETE one row
        auto it = shadow[t].begin();
        std::advance(it, static_cast<ptrdiff_t>(rng.Uniform(
                             0, static_cast<int64_t>(shadow[t].size()) - 1)));
        r = layout->Execute(t, "DELETE FROM account WHERE aid = ?",
                            {Value::Int64(it->first)});
        if (r.ok()) {
          EXPECT_EQ(*r, 1);
          shadow[t].erase(it);
        }
      }

      if (!r.ok()) {
        // The only legitimate failure in this workload is the injected
        // kill; everything else would be a real bug.
        ASSERT_TRUE(db->durability()->frozen()) << r.status().ToString();
        crashed = true;
      }
    }

    injector.DisarmAll();
    if (crashed) {
      ++crashes;
      reopen();
      if (::testing::Test::HasFatalFailure()) return;
    }
    for (TenantId t = 0; t < kTenants; ++t) {
      VerifyTenant(layout.get(), t, shadow[t], "after cycle");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  // The kill schedule must actually have fired, or the run proved nothing.
  EXPECT_GT(crashes, 0) << "no cycle crashed; recovery never exercised";

  for (TenantId t = 0; t < kTenants; ++t) {
    VerifyTenant(layout.get(), t, shadow[t], "final");
    if (::testing::Test::HasFatalFailure()) return;
  }
  AuditLayout(layout.get(), "final audit");
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsAndSeeds, RecoveryTest,
    ::testing::Combine(
        ::testing::Values(LayoutKind::kBasic, LayoutKind::kPrivate,
                          LayoutKind::kExtension, LayoutKind::kUniversal,
                          LayoutKind::kPivot, LayoutKind::kChunk,
                          LayoutKind::kVertical, LayoutKind::kChunkFolding),
        ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const ::testing::TestParamInfo<RecoveryTest::ParamType>& info) {
      return std::string(LayoutKindName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

/// Deterministic site sweep: one fixed scripted workload (DML through a
/// multi-source layout plus an explicit checkpoint) is first dry-run to
/// count how many times the durability layer consults FaultPoint::kCrash,
/// then re-run once per site with the kill pinned to exactly that
/// evaluation. Every kill must recover to the shadow; the final run (skip
/// beyond the last site) must complete unkilled, proving the sweep
/// exhausted every crash site — append-begin, mid-append (torn tail),
/// checkpoint-begin, mid-flush, meta-uninstalled, and pre-truncate.
class RecoverySiteSweepTest : public ::testing::TestWithParam<LayoutKind> {};

TEST_P(RecoverySiteSweepTest, EveryCrashSiteRecoversToShadow) {
  const LayoutKind kind = GetParam();
  AppSchema app = FigureFourSchema();
  const std::string dir =
      FreshDir(std::string("sweep_") + LayoutKindName(kind));

  // One iteration: fresh store, fixed workload, kCrash armed as `spec`.
  // Reports how often kCrash was evaluated and whether the run was killed
  // (in which case the engine is reopened, recovered, and verified).
  auto run_iteration = [&](const FaultSpec& spec, uint64_t* evaluations,
                           bool* killed) {
    fs::remove_all(dir);
    auto opened = Database::Open(DatabaseOptions::WithPath(dir));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<Database> db = std::move(*opened);
    std::unique_ptr<SchemaMapping> layout = MakeLayout(kind, db.get(), &app);
    ASSERT_TRUE(layout->Bootstrap().ok());
    ASSERT_TRUE(layout->CreateTenant(0).ok());
    ASSERT_TRUE(layout->CreateTenant(1).ok());
    ASSERT_TRUE(layout->EnableExtension(0, "healthcare").ok());

    FaultInjector injector(7);
    injector.Arm(FaultPoint::kCrash, spec);
    db->page_store()->set_fault_injector(&injector);

    ShadowTable shadow[2];
    bool crashed = false;
    auto exec = [&](TenantId t, const std::string& sql,
                    const std::vector<Value>& params,
                    const std::function<void()>& apply) {
      if (crashed) return;
      Result<int64_t> r = layout->Execute(t, sql, params);
      if (r.ok()) {
        apply();
      } else {
        ASSERT_TRUE(db->durability()->frozen()) << sql << ": "
                                                << r.status().ToString();
        crashed = true;
      }
    };

    exec(0,
         "INSERT INTO account (aid, name, hospital, beds) "
         "VALUES (1, 'Acme', 'St. Mary', 135)",
         {}, [&] {
           shadow[0].emplace(
               1, std::vector<Value>{Value::Int64(1), Value::String("Acme"),
                                     Value::String("St. Mary"),
                                     Value::Int32(135)});
         });
    exec(0, "INSERT INTO account (aid, name) VALUES (2, 'Gump'), (3, 'Ball')",
         {}, [&] {
           shadow[0].emplace(
               2, std::vector<Value>{Value::Int64(2), Value::String("Gump"),
                                     Value::Null(TypeId::kString),
                                     Value::Null(TypeId::kInt32)});
           shadow[0].emplace(
               3, std::vector<Value>{Value::Int64(3), Value::String("Ball"),
                                     Value::Null(TypeId::kString),
                                     Value::Null(TypeId::kInt32)});
         });
    exec(1, "INSERT INTO account (aid, name) VALUES (1, 'Big')", {}, [&] {
      shadow[1].emplace(1, std::vector<Value>{Value::Int64(1),
                                              Value::String("Big")});
    });
    exec(0, "UPDATE account SET name = 'Acme2' WHERE aid = 1", {}, [&] {
      shadow[0][1][1] = Value::String("Acme2");
    });
    exec(0, "UPDATE account SET beds = 777 WHERE aid = 1", {}, [&] {
      shadow[0][1][3] = Value::Int32(777);
    });
    if (!crashed) {
      Status ck = db->Checkpoint();
      if (!ck.ok()) {
        ASSERT_TRUE(db->durability()->frozen()) << ck.ToString();
        crashed = true;
      }
    }
    exec(1, "INSERT INTO account (aid, name) VALUES (2, 'Cup')", {}, [&] {
      shadow[1].emplace(2, std::vector<Value>{Value::Int64(2),
                                              Value::String("Cup")});
    });
    exec(0, "DELETE FROM account WHERE aid = 2", {},
         [&] { shadow[0].erase(2); });
    exec(1, "UPDATE account SET name = 'Mug' WHERE aid = 2", {}, [&] {
      shadow[1][2][1] = Value::String("Mug");
    });

    *evaluations = injector.evaluations(FaultPoint::kCrash);
    *killed = crashed;

    if (crashed) {
      db->page_store()->set_fault_injector(nullptr);
      layout.reset();
      db.reset();
      auto r = Database::Open(DatabaseOptions::WithPath(dir));
      ASSERT_TRUE(r.ok()) << "reopen: " << r.status().ToString();
      db = std::move(*r);
      layout = MakeLayout(kind, db.get(), &app);
      Status rec = layout->Recover();
      ASSERT_TRUE(rec.ok()) << "layout recover: " << rec.ToString();
    } else {
      db->page_store()->set_fault_injector(nullptr);
    }
    VerifyTenant(layout.get(), 0, shadow[0], "sweep");
    VerifyTenant(layout.get(), 1, shadow[1], "sweep");
    AuditLayout(layout.get(), "sweep audit");
  };

  // Dry run: count the crash sites without firing (probability 0 still
  // advances the evaluation counter for the armed point).
  FaultSpec dry;
  dry.probability = 0.0;
  uint64_t total_sites = 0;
  bool killed = false;
  run_iteration(dry, &total_sites, &killed);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_FALSE(killed);
  ASSERT_GT(total_sites, 0u) << "workload never consulted kCrash";

  for (uint64_t site = 0; site <= total_sites; ++site) {
    SCOPED_TRACE("crash site " + std::to_string(site) + " of " +
                 std::to_string(total_sites));
    FaultSpec spec;
    spec.probability = 1.0;
    spec.skip = site;
    spec.max_fires = 1;
    uint64_t evals = 0;
    run_iteration(spec, &evals, &killed);
    if (::testing::Test::HasFatalFailure()) return;
    // Killing at every site 0..total_sites-1 and surviving one past the
    // end proves the sweep covered every site exactly.
    EXPECT_EQ(killed, site < total_sites);
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, RecoverySiteSweepTest,
                         ::testing::Values(LayoutKind::kPrivate,
                                           LayoutKind::kChunkFolding),
                         [](const ::testing::TestParamInfo<LayoutKind>& info) {
                           return LayoutKindName(info.param);
                         });

// ---- Client-transaction crash matrix ----------------------------------
//
// Crashes inside open client transactions: the shadow holds only what
// COMMIT acknowledged. Statements acked inside a transaction that never
// reached its commit record must vanish on recovery; acked COMMITs must
// survive; a kill mid-ROLLBACK (while compensations are being replayed
// and their WAL groups appended) must still erase the transaction.

/// Randomized matrix over every layout × seeds: autocommit statements
/// interleave with transactional bursts (BEGIN; 1..4 DML; COMMIT or
/// ROLLBACK) through the TenantSession front door while the seeded
/// injector kills the durability layer. The shadow applies autocommit
/// statements when they ack and a burst's statements only when its
/// COMMIT acks.
class TxnRecoveryTest
    : public ::testing::TestWithParam<std::tuple<LayoutKind, uint64_t>> {};

TEST_P(TxnRecoveryTest, CrashInsideTransactionsRecoversCommittedOnly) {
  const LayoutKind kind = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());

  AppSchema app = FigureFourSchema();
  const std::string dir = FreshDir(std::string("txn_") +
                                   LayoutKindName(kind) + "_seed" +
                                   std::to_string(seed));
  EngineOptions options;
  options.checkpoint_interval_bytes = 96 * 1024;

  auto opened = Database::Open(DatabaseOptions::WithPath(dir, options));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  std::unique_ptr<SchemaMapping> layout = MakeLayout(kind, db.get(), &app);
  ASSERT_TRUE(layout->Bootstrap().ok());

  constexpr TenantId kTenants = 2;
  for (TenantId t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(layout->CreateTenant(t).ok());
  }
  layout->set_quarantine_threshold(1'000'000);

  FaultInjector injector(seed);
  Rng rng(seed * 9173 + 29);

  ShadowTable shadow[kTenants];
  int64_t next_aid = 1;
  int crashes = 0;
  int commits = 0;

  auto reopen = [&]() {
    db->page_store()->set_fault_injector(nullptr);
    layout.reset();
    db.reset();
    auto r = Database::Open(DatabaseOptions::WithPath(dir, options));
    ASSERT_TRUE(r.ok()) << "reopen: " << r.status().ToString();
    db = std::move(*r);
    layout = MakeLayout(kind, db.get(), &app);
    Status rec = layout->Recover();
    ASSERT_TRUE(rec.ok()) << "layout recover: " << rec.ToString();
    layout->set_quarantine_threshold(1'000'000);
  };

  // Even cycles arm a one-shot kill a random number of WAL appends in;
  // odd cycles run clean, guaranteeing committed bursts exist for the
  // kill cycles to preserve (chunk-family layouts burn many appends per
  // statement, so an always-armed schedule would never reach a COMMIT).
  constexpr int kCycles = 6;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    db->page_store()->set_fault_injector(&injector);
    injector.DisarmAll();
    if (cycle % 2 == 0) {
      FaultSpec spec;
      spec.probability = 1.0;
      spec.skip = static_cast<uint64_t>(rng.Uniform(2, 80));
      spec.max_fires = 1;
      injector.Arm(FaultPoint::kCrash, spec);
    }

    bool crashed = false;
    for (int op = 0; op < 40 && !crashed; ++op) {
      if (db->durability()->frozen()) {
        crashed = true;
        break;
      }
      layout->set_dml_mode(rng.Bernoulli(0.5) ? DmlMode::kBatched
                                              : DmlMode::kPerRow);
      TenantId t = static_cast<TenantId>(rng.Uniform(0, kTenants - 1));

      if (rng.Bernoulli(0.4)) {  // autocommit single statement
        int64_t aid = next_aid++;
        std::string name = rng.Word(3, 8);
        auto r = layout->Execute(
            t, "INSERT INTO account (aid, name) VALUES (?, ?)",
            {Value::Int64(aid), Value::String(name)});
        if (r.ok()) {
          shadow[t].emplace(aid, std::vector<Value>{Value::Int64(aid),
                                                    Value::String(name)});
        } else {
          ASSERT_TRUE(db->durability()->frozen()) << r.status().ToString();
          crashed = true;
        }
        continue;
      }

      // Transactional burst. Pending mutations apply to the shadow only
      // if COMMIT acknowledges.
      TenantSession session = layout->OpenSession(t);
      if (!session.Begin().ok()) {
        ASSERT_TRUE(db->durability()->frozen());
        crashed = true;
        break;
      }
      ShadowTable pending = shadow[t];
      bool burst_ok = true;
      const int stmts = static_cast<int>(rng.Uniform(1, 4));
      for (int s = 0; s < stmts && burst_ok; ++s) {
        const int action = static_cast<int>(rng.Uniform(0, 3));
        Result<int64_t> r = 0;
        if (action == 0 || pending.empty()) {
          int64_t aid = next_aid++;
          std::string name = rng.Word(3, 8);
          r = session.Execute(
              "INSERT INTO account (aid, name) VALUES (?, ?)",
              {Value::Int64(aid), Value::String(name)});
          if (r.ok()) {
            pending.emplace(aid, std::vector<Value>{Value::Int64(aid),
                                                    Value::String(name)});
          }
        } else if (action == 1) {
          auto it = pending.begin();
          std::advance(it, static_cast<ptrdiff_t>(rng.Uniform(
                               0, static_cast<int64_t>(pending.size()) - 1)));
          std::string name = rng.Word(3, 8);
          r = session.Execute("UPDATE account SET name = ? WHERE aid = ?",
                              {Value::String(name), Value::Int64(it->first)});
          if (r.ok()) it->second[1] = Value::String(name);
        } else {
          auto it = pending.begin();
          std::advance(it, static_cast<ptrdiff_t>(rng.Uniform(
                               0, static_cast<int64_t>(pending.size()) - 1)));
          r = session.Execute("DELETE FROM account WHERE aid = ?",
                              {Value::Int64(it->first)});
          if (r.ok()) pending.erase(it);
        }
        if (!r.ok()) {
          ASSERT_TRUE(db->durability()->frozen()) << r.status().ToString();
          crashed = true;
          burst_ok = false;
        }
      }
      if (burst_ok && rng.Bernoulli(0.7)) {
        if (session.Commit().ok()) {
          shadow[t] = std::move(pending);
          ++commits;
        } else {
          // A failed COMMIT did not ack: the kill beat the end record
          // to the log and recovery erases the transaction.
          ASSERT_TRUE(db->durability()->frozen());
          crashed = true;
        }
      } else if (burst_ok) {
        // Runtime rollback. The kill can land mid-replay; the result is
        // the same either way — nothing of the burst survives.
        (void)session.Rollback();
        if (db->durability()->frozen()) crashed = true;
      }
      // Session teardown auto-rolls-back any bracket the crash left
      // open; on a frozen engine that is best-effort and recovery
      // finishes the job.
    }

    injector.DisarmAll();
    if (crashed) {
      ++crashes;
      reopen();
      if (::testing::Test::HasFatalFailure()) return;
    }
    for (TenantId t = 0; t < kTenants; ++t) {
      VerifyTenant(layout.get(), t, shadow[t], "after txn cycle");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }

  EXPECT_GT(crashes, 0) << "no cycle crashed; txn recovery never exercised";
  EXPECT_GT(commits, 0) << "no burst committed; matrix is vacuous";
  for (TenantId t = 0; t < kTenants; ++t) {
    VerifyTenant(layout.get(), t, shadow[t], "final");
    if (::testing::Test::HasFatalFailure()) return;
  }
  AuditLayout(layout.get(), "final txn audit");
}

INSTANTIATE_TEST_SUITE_P(
    LayoutsAndSeeds, TxnRecoveryTest,
    ::testing::Combine(
        ::testing::Values(LayoutKind::kBasic, LayoutKind::kPrivate,
                          LayoutKind::kExtension, LayoutKind::kUniversal,
                          LayoutKind::kPivot, LayoutKind::kChunk,
                          LayoutKind::kVertical, LayoutKind::kChunkFolding),
        ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const ::testing::TestParamInfo<TxnRecoveryTest::ParamType>& info) {
      return std::string(LayoutKindName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

/// Deterministic transactional site sweep: a fixed scripted workload —
/// a committed transaction, a checkpoint inside an open transaction, a
/// runtime ROLLBACK (whose compensation replay appends its own WAL
/// groups), and a transaction left open at teardown — is dry-run to
/// count kCrash evaluations, then re-run once per site with the kill
/// pinned there. Every kill must recover to the committed-only shadow:
/// crashes before the commit record erase the transaction, crashes
/// after it keep the whole group, and crashes mid-rollback still erase
/// it.
class TxnRecoverySiteSweepTest : public ::testing::TestWithParam<LayoutKind> {
};

TEST_P(TxnRecoverySiteSweepTest, EveryCrashSiteRecoversCommittedOnly) {
  const LayoutKind kind = GetParam();
  AppSchema app = FigureFourSchema();
  const std::string dir =
      FreshDir(std::string("txn_sweep_") + LayoutKindName(kind));

  auto run_iteration = [&](const FaultSpec& spec, uint64_t* evaluations,
                           bool* killed) {
    fs::remove_all(dir);
    auto opened = Database::Open(DatabaseOptions::WithPath(dir));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<Database> db = std::move(*opened);
    std::unique_ptr<SchemaMapping> layout = MakeLayout(kind, db.get(), &app);
    ASSERT_TRUE(layout->Bootstrap().ok());
    ASSERT_TRUE(layout->CreateTenant(0).ok());

    FaultInjector injector(13);
    injector.Arm(FaultPoint::kCrash, spec);
    db->page_store()->set_fault_injector(&injector);

    ShadowTable shadow;
    bool crashed = false;

    // Autocommit seed row.
    {
      auto r = layout->Execute(
          0, "INSERT INTO account (aid, name) VALUES (1, 'base')", {});
      if (r.ok()) {
        shadow.emplace(1, std::vector<Value>{Value::Int64(1),
                                             Value::String("base")});
      } else {
        ASSERT_TRUE(db->durability()->frozen()) << r.status().ToString();
        crashed = true;
      }
    }

    // Transaction 1: committed — all-or-nothing around the kill.
    if (!crashed) {
      TenantSession s = layout->OpenSession(0);
      bool ok = s.Begin().ok();
      ok = ok && s.Execute("INSERT INTO account (aid, name) VALUES (2, 'a'), "
                           "(3, 'b')")
                     .ok();
      ok = ok &&
           s.Execute("UPDATE account SET name = 'a2' WHERE aid = 2").ok();
      ok = ok && s.Commit().ok();
      if (ok) {
        shadow.emplace(2, std::vector<Value>{Value::Int64(2),
                                             Value::String("a2")});
        shadow.emplace(3, std::vector<Value>{Value::Int64(3),
                                             Value::String("b")});
      } else {
        ASSERT_TRUE(db->durability()->frozen());
        crashed = true;
      }
    }

    // Transaction 2: checkpoint lands mid-bracket (hints move to meta
    // v2), then the transaction rolls back at runtime — compensations
    // append their own groups, so kills land mid-rollback too.
    if (!crashed) {
      TenantSession s = layout->OpenSession(0);
      bool ok = s.Begin().ok();
      ok = ok &&
           s.Execute("INSERT INTO account (aid, name) VALUES (4, 'tmp')")
               .ok();
      if (ok) {
        Status ck = db->Checkpoint();
        if (!ck.ok()) {
          ASSERT_TRUE(db->durability()->frozen()) << ck.ToString();
          ok = false;
        }
      }
      ok = ok &&
           s.Execute("UPDATE account SET name = 'tmp2' WHERE aid = 4").ok();
      if (ok) {
        (void)s.Rollback();
      }
      if (!ok || db->durability()->frozen()) {
        crashed = db->durability()->frozen();
        if (!ok) {
          ASSERT_TRUE(crashed);
        }
      }
      // Rolled back (or killed): aid 4 is never in the shadow.
    }

    // Transaction 3: left open — teardown auto-rollback, and any kill
    // before/within it must still erase the insert.
    if (!crashed) {
      TenantSession s = layout->OpenSession(0);
      bool ok = s.Begin().ok();
      ok = ok &&
           s.Execute("INSERT INTO account (aid, name) VALUES (5, 'open')")
               .ok();
      if (!ok) {
        ASSERT_TRUE(db->durability()->frozen());
        crashed = true;
      }
      // Session destructor rolls the bracket back here.
    }
    if (!crashed && db->durability()->frozen()) crashed = true;

    *evaluations = injector.evaluations(FaultPoint::kCrash);
    *killed = crashed;

    db->page_store()->set_fault_injector(nullptr);
    if (crashed) {
      layout.reset();
      db.reset();
      auto r = Database::Open(DatabaseOptions::WithPath(dir));
      ASSERT_TRUE(r.ok()) << "reopen: " << r.status().ToString();
      db = std::move(*r);
      layout = MakeLayout(kind, db.get(), &app);
      Status rec = layout->Recover();
      ASSERT_TRUE(rec.ok()) << "layout recover: " << rec.ToString();
    }
    VerifyTenant(layout.get(), 0, shadow, "txn sweep");
    AuditLayout(layout.get(), "txn sweep audit");
  };

  FaultSpec dry;
  dry.probability = 0.0;
  uint64_t total_sites = 0;
  bool killed = false;
  run_iteration(dry, &total_sites, &killed);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_FALSE(killed);
  ASSERT_GT(total_sites, 0u) << "workload never consulted kCrash";

  for (uint64_t site = 0; site <= total_sites; ++site) {
    SCOPED_TRACE("txn crash site " + std::to_string(site) + " of " +
                 std::to_string(total_sites));
    FaultSpec spec;
    spec.probability = 1.0;
    spec.skip = site;
    spec.max_fires = 1;
    uint64_t evals = 0;
    run_iteration(spec, &evals, &killed);
    if (::testing::Test::HasFatalFailure()) return;
    EXPECT_EQ(killed, site < total_sites);
  }
}

INSTANTIATE_TEST_SUITE_P(Layouts, TxnRecoverySiteSweepTest,
                         ::testing::Values(LayoutKind::kPrivate,
                                           LayoutKind::kChunkFolding),
                         [](const ::testing::TestParamInfo<LayoutKind>& info) {
                           return LayoutKindName(info.param);
                         });

/// Deallocation regression: DROP TABLE frees pages through the logged
/// free list. Recovery must replay those deallocations byte-exactly —
/// the reopened store's free list equals the pre-crash one in pop order,
/// no freed page stays resurrected, and later allocations slot into the
/// same ids instead of double-allocating (WAL replay asserts divergence).
TEST(RecoveryFreeListTest, DroppedPagesStayFreedAcrossRecovery) {
  const std::string dir = FreshDir("freelist");
  auto opened = Database::Open(DatabaseOptions::WithPath(dir));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);

  auto make_schema = [] {
    Schema s;
    s.AddColumn(Column{"id", TypeId::kInt64, true});
    s.AddColumn(Column{"name", TypeId::kString, false});
    return s;
  };
  ASSERT_TRUE(db->CreateTable("doomed", make_schema()).ok());
  ASSERT_TRUE(
      db->CreateIndex("doomed", "ux_doomed_id", {"id"}, /*unique=*/true).ok());
  ASSERT_TRUE(db->CreateTable("keeper", make_schema()).ok());
  Rng rng(11);
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(db->InsertRow("doomed", {Value::Int64(i),
                                         Value::String(rng.Word(20, 40))})
                    .ok());
    ASSERT_TRUE(db->InsertRow("keeper", {Value::Int64(i),
                                         Value::String(rng.Word(5, 10))})
                    .ok());
  }
  // Checkpoint first so the drop's deallocations live only in the WAL and
  // recovery must replay them (not just reload them from meta).
  ASSERT_TRUE(db->Checkpoint().ok());
  ASSERT_TRUE(db->DropTable("doomed").ok());
  ASSERT_TRUE(
      db->InsertRow("keeper", {Value::Int64(200), Value::String("after")})
          .ok());

  const std::vector<PageId> free_before = db->page_store()->FreeListSnapshot();
  const size_t slots_before = db->page_store()->page_slots();
  ASSERT_FALSE(free_before.empty()) << "drop freed no pages; test is vacuous";

  // Process death without a checkpoint: recovery rebuilds the free list
  // from the checkpoint image plus the logged dealloc ops.
  db.reset();
  opened = Database::Open(DatabaseOptions::WithPath(dir));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  db = std::move(*opened);

  EXPECT_EQ(db->page_store()->FreeListSnapshot(), free_before)
      << "recovered free list diverged: freed pages resurrected or reordered";
  for (PageId id : free_before) {
    EXPECT_FALSE(db->page_store()->IsAllocated(id))
        << "page " << id << " freed by DROP TABLE came back allocated";
  }

  // New allocations must reuse the freed ids cleanly: insert enough to
  // drain the free list, then verify over another recovery cycle.
  for (int64_t i = 201; i < 400; ++i) {
    ASSERT_TRUE(db->InsertRow("keeper", {Value::Int64(i),
                                         Value::String(rng.Word(20, 40))})
                    .ok());
  }
  EXPECT_LE(db->page_store()->page_slots(), slots_before + 8)
      << "allocations ignored the recovered free list";
  db.reset();
  opened = Database::Open(DatabaseOptions::WithPath(dir));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  db = std::move(*opened);
  auto rows = db->Query("SELECT COUNT(*) FROM keeper");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsInt64(), 400);
  auto gone = db->Query("SELECT COUNT(*) FROM doomed");
  EXPECT_FALSE(gone.ok()) << "dropped table resurrected by recovery";
}

// ---- Crafted-WAL replay-ordering regressions --------------------------
//
// These write a hand-built WAL into a fresh directory — the disk state a
// crash leaves when concurrent statements on different tables raced to
// the log — and open the database over it. They pin the exact
// interleavings the multi-threaded soak only hits probabilistically.

/// One-alloc redo group: alloc `page` at store sequence `seq` with a
/// recognizable after-image.
WalGroup AllocGroup(PageId page, uint64_t seq, char fill) {
  WalGroup g;
  g.ops.push_back({WalPageOp::Kind::kAlloc, page, PageType::kHeap, seq});
  WalPageImage img;
  img.page = page;
  img.type = PageType::kHeap;
  img.image.assign(kDefaultPageSize, fill);
  g.images.push_back(std::move(img));
  return g;
}

WalGroup DeallocGroup(PageId page, uint64_t seq) {
  WalGroup g;
  g.ops.push_back({WalPageOp::Kind::kDealloc, page, PageType::kFree, seq});
  return g;
}

void CraftWal(const std::string& dir,
              const std::vector<std::pair<uint64_t, WalGroup>>& groups) {
  WalWriter writer(dir + "/wal", 4ull * 1024 * 1024);
  ASSERT_TRUE(writer.Open().ok());
  for (const auto& [lsn, group] : groups) {
    ASSERT_TRUE(
        writer.Append(lsn, WalRecordType::kGroup, EncodeWalGroup(group)).ok());
  }
}

char FirstByteOf(PageStore* store, PageId id) {
  PageType type;
  std::vector<char> image;
  uint64_t sum;
  EXPECT_TRUE(store->RawRead(id, &type, &image, &sum).ok());
  return image.empty() ? '\0' : image[0];
}

/// Two statements on different tables: the one that allocated *second*
/// at the store (seq 2) won the race to the WAL (lsn 1). Replay must
/// follow store order, not log order — pop-order replay would hand page
/// 0 to the first group's recorded page 1 and fail recovery with
/// "replay alloc diverged", leaving the database permanently
/// unrecoverable.
TEST(CraftedWalReplayTest, CrossTableAppendRaceReplaysInStoreOrder) {
  const std::string dir = FreshDir("crafted_race");
  CraftWal(dir, {{1, AllocGroup(1, 2, 'B')}, {2, AllocGroup(0, 1, 'A')}});
  auto opened = Database::Open(DatabaseOptions::WithPath(dir));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  EXPECT_TRUE(db->page_store()->IsAllocated(0));
  EXPECT_TRUE(db->page_store()->IsAllocated(1));
  EXPECT_EQ(FirstByteOf(db->page_store(), 0), 'A');
  EXPECT_EQ(FirstByteOf(db->page_store(), 1), 'B');
}

/// Page 0 is freed by statement A (store seq 2) and immediately reused
/// by statement B on another table (seq 3), but A's dealloc group
/// reaches the log *after* B's alloc group. Sorted by seq the ops
/// replay alloc/dealloc/alloc, and the page must come back with the new
/// owner's image, not A's stale one.
TEST(CraftedWalReplayTest, DeallocReallocRaceKeepsNewOwnersImage) {
  const std::string dir = FreshDir("crafted_realloc");
  CraftWal(dir, {{1, AllocGroup(0, 1, 'A')},
                 {2, AllocGroup(0, 3, 'B')},
                 {3, DeallocGroup(0, 2)}});
  auto opened = Database::Open(DatabaseOptions::WithPath(dir));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  EXPECT_TRUE(db->page_store()->IsAllocated(0));
  EXPECT_EQ(FirstByteOf(db->page_store(), 0), 'B');
}

/// A logged alloc can sit above slots claimed by statements the crash
/// caught before their append: the log shows only page 2. Id-directed
/// replay must land on page 2 and hand the unlogged slots 0 and 1 back
/// to the free list instead of diverging.
TEST(CraftedWalReplayTest, UnloggedNeighbourSlotsReturnToFreeList) {
  const std::string dir = FreshDir("crafted_gap");
  CraftWal(dir, {{1, AllocGroup(2, 5, 'C')}});
  auto opened = Database::Open(DatabaseOptions::WithPath(dir));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  std::unique_ptr<Database> db = std::move(*opened);
  EXPECT_TRUE(db->page_store()->IsAllocated(2));
  EXPECT_EQ(FirstByteOf(db->page_store(), 2), 'C');
  EXPECT_FALSE(db->page_store()->IsAllocated(0));
  EXPECT_FALSE(db->page_store()->IsAllocated(1));
  const std::vector<PageId> free_list = db->page_store()->FreeListSnapshot();
  EXPECT_EQ(std::count(free_list.begin(), free_list.end(), 0), 1);
  EXPECT_EQ(std::count(free_list.begin(), free_list.end(), 1), 1);
}

// ---- WAL reader robustness ---------------------------------------------

/// A corrupted length field must not drive a multi-gigabyte allocation:
/// the moment the claimed payload exceeds the bytes left in the segment
/// the frame is a torn tail, checksum unseen.
TEST(WalReaderRobustnessTest, HugePayloadLengthIsATornTailNotABadAlloc) {
  const std::string dir = FreshDir("wal_hugelen");
  const std::string wal_dir = dir + "/wal";
  {
    WalWriter writer(wal_dir, 4ull * 1024 * 1024);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer
                    .Append(1, WalRecordType::kGroup,
                            EncodeWalGroup(AllocGroup(0, 1, 'A')))
                    .ok());
  }
  // Frame header with valid magic and type but a ~4 GiB payload length
  // and a garbage checksum, as left by a corrupted header on disk.
  std::string header;
  const uint32_t magic = 0x4D57414Cu;  // "MWAL"
  const uint64_t lsn = 2;
  const uint32_t huge_len = 0xFFFFFF00u;
  const uint64_t bogus_sum = 0x1234;
  header.append(reinterpret_cast<const char*>(&magic), 4);
  header.append(reinterpret_cast<const char*>(&lsn), 8);
  header.push_back(1);  // kGroup
  header.append(3, '\0');
  header.append(reinterpret_cast<const char*>(&huge_len), 4);
  header.append(reinterpret_cast<const char*>(&bogus_sum), 8);
  {
    std::ofstream out(wal_dir + "/seg-00000000.wal",
                      std::ios::binary | std::ios::app);
    out << header;
  }
  WalReader reader(wal_dir);
  auto scan = reader.ReadAll();
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->truncated_tails, 1u);
}

/// Files that merely resemble segments must be invisible to the WAL:
/// not scanned by the reader (a spurious torn tail), not counted by the
/// writer when picking the next segment index, and not deleted by
/// Truncate.
TEST(WalReaderRobustnessTest, StraySegmentLookalikesAreIgnored) {
  const std::string dir = FreshDir("wal_stray");
  const std::string wal_dir = dir + "/wal";
  {
    WalWriter writer(wal_dir, 4ull * 1024 * 1024);
    ASSERT_TRUE(writer.Open().ok());
    ASSERT_TRUE(writer
                    .Append(1, WalRecordType::kGroup,
                            EncodeWalGroup(AllocGroup(0, 1, 'A')))
                    .ok());
  }
  // A leftover temp file whose name embeds a *higher* index: a bare
  // sscanf match would both scan its garbage as a segment and make the
  // writer resume at segment 43.
  const std::string stray = wal_dir + "/seg-00000042.wal.tmp";
  {
    std::ofstream out(stray, std::ios::binary);
    out << "not a wal segment";
  }

  WalReader reader(wal_dir);
  auto scan = reader.ReadAll();
  ASSERT_TRUE(scan.ok()) << scan.status().ToString();
  EXPECT_EQ(scan->records.size(), 1u);
  EXPECT_EQ(scan->truncated_tails, 0u) << "stray file scanned as a segment";

  WalWriter writer(wal_dir, 4ull * 1024 * 1024);
  ASSERT_TRUE(writer.Open().ok());
  ASSERT_TRUE(writer
                  .Append(2, WalRecordType::kGroup,
                          EncodeWalGroup(AllocGroup(1, 2, 'B')))
                  .ok());
  EXPECT_TRUE(fs::exists(wal_dir + "/seg-00000001.wal"))
      << "writer skipped indexes claimed by a stray file";
  ASSERT_TRUE(writer.Truncate().ok());
  EXPECT_TRUE(fs::exists(stray)) << "truncate deleted a non-segment file";
  EXPECT_FALSE(fs::exists(wal_dir + "/seg-00000001.wal"));
}

/// Only ENOENT means "fresh database". Any other failure to open the
/// checkpoint meta (here ELOOP via a self-referencing symlink, which
/// defeats even root) must fail recovery instead of silently replaying
/// a bare WAL against an empty base.
TEST(RecoveryMetaTest, UnreadableMetaFailsOpenInsteadOfLookingFresh) {
  const std::string dir = FreshDir("meta_unreadable");
  fs::create_directories(dir);
  fs::create_symlink("meta", dir + "/meta");
  auto opened = Database::Open(DatabaseOptions::WithPath(dir));
  ASSERT_FALSE(opened.ok())
      << "an unreadable checkpoint meta was treated as a fresh database";
  EXPECT_EQ(opened.status().code(), StatusCode::kIOError);
  EXPECT_NE(opened.status().ToString().find("meta"), std::string::npos)
      << opened.status().ToString();
}

// Runs last in this binary: under an instrumented build
// (-DMTDB_LOCKDEP=ON) every test above must have left the lockdep
// registry empty — no latch-order or WAL-protocol violations anywhere
// in the suite's workload.
TEST(LockdepCleanliness, NoViolationsAcrossSuite) {
  if (!analysis::LockdepCompiledIn()) {
    GTEST_SKIP() << "validator not compiled in (build with MTDB_LOCKDEP)";
  }
  std::vector<analysis::Diagnostic> diagnostics =
      analysis::DrainLockdepDiagnostics();
  EXPECT_TRUE(diagnostics.empty()) << analysis::FormatDiagnostics(diagnostics);
}

}  // namespace
}  // namespace mapping
}  // namespace mtdb
