file(REMOVE_RECURSE
  "CMakeFiles/bench_chunk_query_cold.dir/bench_chunk_query_cold.cc.o"
  "CMakeFiles/bench_chunk_query_cold.dir/bench_chunk_query_cold.cc.o.d"
  "bench_chunk_query_cold"
  "bench_chunk_query_cold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chunk_query_cold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
