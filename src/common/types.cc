#include "common/types.h"

#include <algorithm>
#include <cctype>

namespace mtdb {

const char* TypeName(TypeId type) {
  switch (type) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return "BOOLEAN";
    case TypeId::kInt32:
      return "INT";
    case TypeId::kInt64:
      return "BIGINT";
    case TypeId::kDouble:
      return "DOUBLE";
    case TypeId::kDate:
      return "DATE";
    case TypeId::kString:
      return "VARCHAR";
  }
  return "UNKNOWN";
}

TypeId TypeFromName(const std::string& name) {
  std::string upper(name);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (upper == "INT" || upper == "INTEGER") return TypeId::kInt32;
  if (upper == "BIGINT") return TypeId::kInt64;
  if (upper == "DOUBLE" || upper == "FLOAT" || upper == "REAL") {
    return TypeId::kDouble;
  }
  if (upper == "DATE") return TypeId::kDate;
  if (upper == "VARCHAR" || upper == "TEXT" || upper == "STRING" ||
      upper == "CHAR") {
    return TypeId::kString;
  }
  if (upper == "BOOLEAN" || upper == "BOOL") return TypeId::kBool;
  return TypeId::kNull;
}

bool IsFixedWidth(TypeId type) { return type != TypeId::kString; }

uint32_t FixedWidthOf(TypeId type) {
  switch (type) {
    case TypeId::kNull:
      return 0;
    case TypeId::kBool:
      return 1;
    case TypeId::kInt32:
      return 4;
    case TypeId::kInt64:
      return 8;
    case TypeId::kDouble:
      return 8;
    case TypeId::kDate:
      return 4;
    case TypeId::kString:
      return 0;
  }
  return 0;
}

StorageClass StorageClassOf(TypeId type) {
  switch (type) {
    case TypeId::kDouble:
      return StorageClass::kDoubleLike;
    case TypeId::kDate:
      return StorageClass::kDateLike;
    case TypeId::kString:
      return StorageClass::kStringLike;
    default:
      return StorageClass::kIntLike;
  }
}

const char* StorageClassName(StorageClass cls) {
  switch (cls) {
    case StorageClass::kIntLike:
      return "int";
    case StorageClass::kDoubleLike:
      return "dbl";
    case StorageClass::kDateLike:
      return "date";
    case StorageClass::kStringLike:
      return "str";
  }
  return "unknown";
}

TypeId PhysicalTypeOf(StorageClass cls) {
  switch (cls) {
    case StorageClass::kIntLike:
      return TypeId::kInt64;
    case StorageClass::kDoubleLike:
      return TypeId::kDouble;
    case StorageClass::kDateLike:
      return TypeId::kDate;
    case StorageClass::kStringLike:
      return TypeId::kString;
  }
  return TypeId::kString;
}

}  // namespace mtdb
