file(REMOVE_RECURSE
  "CMakeFiles/schema_evolution.dir/schema_evolution.cpp.o"
  "CMakeFiles/schema_evolution.dir/schema_evolution.cpp.o.d"
  "schema_evolution"
  "schema_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
