#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "common/key_encoding.h"
#include "common/rng.h"
#include "index/btree.h"

namespace mtdb {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : store_(kDefaultPageSize), pool_(&store_, 512) {}

  static std::string Key(int64_t v) {
    return KeyEncoder::EncodeKey({Value::Int64(v)});
  }
  static Rid MakeRid(int64_t i) {
    return Rid{static_cast<PageId>(i / 100), static_cast<uint16_t>(i % 100)};
  }

  PageStore store_;
  BufferPool pool_;
};

TEST_F(BTreeTest, InsertLookup) {
  BTree tree(&pool_);
  ASSERT_TRUE(tree.Insert(Key(42), MakeRid(1)).ok());
  auto rids = tree.Lookup(Key(42));
  ASSERT_TRUE(rids.ok());
  ASSERT_EQ(rids->size(), 1u);
  EXPECT_EQ((*rids)[0], MakeRid(1));
  EXPECT_TRUE(*tree.Contains(Key(42)));
  EXPECT_FALSE(*tree.Contains(Key(43)));
}

TEST_F(BTreeTest, DuplicateKeysKeepAllRids) {
  BTree tree(&pool_);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tree.Insert(Key(7), MakeRid(i)).ok());
  }
  auto rids = tree.Lookup(Key(7));
  ASSERT_TRUE(rids.ok());
  EXPECT_EQ(rids->size(), 10u);
}

TEST_F(BTreeTest, DeleteSpecificDuplicate) {
  BTree tree(&pool_);
  ASSERT_TRUE(tree.Insert(Key(7), MakeRid(1)).ok());
  ASSERT_TRUE(tree.Insert(Key(7), MakeRid(2)).ok());
  ASSERT_TRUE(tree.Delete(Key(7), MakeRid(1)).ok());
  auto rids = tree.Lookup(Key(7));
  ASSERT_TRUE(rids.ok());
  ASSERT_EQ(rids->size(), 1u);
  EXPECT_EQ((*rids)[0], MakeRid(2));
}

TEST_F(BTreeTest, DeleteMissingIsNotFound) {
  BTree tree(&pool_);
  EXPECT_EQ(tree.Delete(Key(1), MakeRid(1)).code(), StatusCode::kNotFound);
}

TEST_F(BTreeTest, SplitsGrowTheTree) {
  BTree tree(&pool_);
  for (int64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i), MakeRid(i)).ok()) << i;
  }
  EXPECT_EQ(tree.entry_count(), 5000u);
  EXPECT_GE(*tree.Height(), 2);
  for (int64_t i = 0; i < 5000; i += 97) {
    auto rids = tree.Lookup(Key(i));
    ASSERT_TRUE(rids.ok());
    ASSERT_EQ(rids->size(), 1u) << i;
    EXPECT_EQ((*rids)[0], MakeRid(i));
  }
}

TEST_F(BTreeTest, ScanRangeOrdered) {
  BTree tree(&pool_);
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i), MakeRid(i)).ok());
  }
  std::string lo = Key(100), hi = Key(200);
  auto scan = tree.Scan(lo, hi);
  ASSERT_TRUE(scan.ok());
  BTree::Iterator it = *std::move(scan);
  Rid rid;
  std::string key, prev;
  int count = 0;
  while (true) {
    auto more = it.Next(&rid, &key);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    if (!prev.empty()) {
      EXPECT_LE(prev, key);
    }
    prev = key;
    count++;
  }
  EXPECT_EQ(count, 100);  // keys 100..199
}

TEST_F(BTreeTest, RandomizedAgainstReferenceModel) {
  BTree tree(&pool_);
  std::multimap<std::string, Rid> model;
  Rng rng(99);
  for (int op = 0; op < 20000; ++op) {
    int64_t k = rng.Uniform(0, 500);
    if (rng.Bernoulli(0.7)) {
      Rid rid = MakeRid(op);
      ASSERT_TRUE(tree.Insert(Key(k), rid).ok());
      model.emplace(Key(k), rid);
    } else {
      auto it = model.find(Key(k));
      if (it != model.end()) {
        ASSERT_TRUE(tree.Delete(it->first, it->second).ok());
        model.erase(it);
      } else {
        EXPECT_FALSE(tree.Delete(Key(k), MakeRid(op)).ok());
      }
    }
  }
  EXPECT_EQ(tree.entry_count(), model.size());
  // Verify every key's rid set matches the model.
  for (int64_t k = 0; k <= 500; ++k) {
    auto range = model.equal_range(Key(k));
    std::set<std::pair<PageId, uint16_t>> expected;
    for (auto it = range.first; it != range.second; ++it) {
      expected.insert({it->second.page_id, it->second.slot});
    }
    auto rids = tree.Lookup(Key(k));
    ASSERT_TRUE(rids.ok());
    std::set<std::pair<PageId, uint16_t>> actual;
    for (const Rid& r : *rids) actual.insert({r.page_id, r.slot});
    EXPECT_EQ(actual, expected) << "key " << k;
  }
}

TEST_F(BTreeTest, VariableLengthStringKeys) {
  BTree tree(&pool_);
  Rng rng(5);
  std::multimap<std::string, Rid> model;
  for (int i = 0; i < 3000; ++i) {
    std::string key =
        KeyEncoder::EncodeKey({Value::String(rng.Word(1, 60))});
    Rid rid = MakeRid(i);
    ASSERT_TRUE(tree.Insert(key, rid).ok());
    model.emplace(key, rid);
  }
  // Full scan must be ordered and complete.
  auto scan = tree.Scan(std::string(1, '\x00'), std::string(64, '\xFF'));
  ASSERT_TRUE(scan.ok());
  BTree::Iterator it = *std::move(scan);
  Rid rid;
  std::string key, prev;
  size_t count = 0;
  while (true) {
    auto more = it.Next(&rid, &key);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    if (count > 0) {
      EXPECT_LE(prev, key);
    }
    prev = key;
    count++;
  }
  EXPECT_EQ(count, model.size());
}

TEST_F(BTreeTest, CompositeKeyPrefixScan) {
  // Simulates the (tenant, tbl, chunk, row) partitioned B-tree.
  BTree tree(&pool_);
  for (int tenant = 0; tenant < 5; ++tenant) {
    for (int row = 0; row < 50; ++row) {
      std::string key = KeyEncoder::EncodeKey(
          {Value::Int32(tenant), Value::Int32(0), Value::Int64(row)});
      ASSERT_TRUE(tree.Insert(key, MakeRid(tenant * 1000 + row)).ok());
    }
  }
  std::string lo, hi;
  KeyEncoder::EncodePrefixRange({Value::Int32(3)}, &lo, &hi);
  auto scan = tree.Scan(lo, hi);
  ASSERT_TRUE(scan.ok());
  BTree::Iterator it = *std::move(scan);
  Rid rid;
  int count = 0;
  while (*it.Next(&rid)) count++;
  EXPECT_EQ(count, 50);  // exactly tenant 3's partition
}

TEST_F(BTreeTest, FreeReleasesPages) {
  BTree tree(&pool_);
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree.Insert(Key(i), MakeRid(i)).ok());
  }
  size_t before = store_.allocated_pages();
  EXPECT_GT(tree.page_count(), 1u);
  tree.Free();
  EXPECT_LT(store_.allocated_pages(), before);
}

TEST_F(BTreeTest, ReverseInsertionOrder) {
  BTree tree(&pool_);
  for (int64_t i = 3000; i > 0; --i) {
    ASSERT_TRUE(tree.Insert(Key(i), MakeRid(i)).ok());
  }
  auto scan = tree.Scan(Key(0), Key(4000));
  ASSERT_TRUE(scan.ok());
  BTree::Iterator it = *std::move(scan);
  Rid rid;
  std::string key, prev;
  int count = 0;
  while (true) {
    auto more = it.Next(&rid, &key);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    if (count > 0) {
      EXPECT_LT(prev, key);
    }
    prev = key;
    count++;
  }
  EXPECT_EQ(count, 3000);
}

}  // namespace
}  // namespace mtdb
