#ifndef MTDB_COMMON_LATCH_H_
#define MTDB_COMMON_LATCH_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

namespace mtdb {

/// Static rank of every latch in the engine. Acquisition must descend:
/// a thread may acquire a latch only while every latch it already holds
/// has a strictly *higher* rank (outermost = highest). Equal-rank
/// acquisition is legal only at instance-ordered ranks (kTableIndex,
/// kTenantRow) with strictly ascending order keys; equal-rank latches
/// without order keys may nest freely but feed the lockdep acquisition
/// graph, whose cycle detection catches cross-thread ABBA patterns.
///
/// The numeric gaps leave room for future layers. The full table, with
/// who owns each rank, is documented in DESIGN.md §11. Note three
/// deliberate deviations from a naive reading of the module layering:
///  * kCatalog sits BELOW kTableIndex: the planner and the statement
///    executors resolve tables through the catalog while already holding
///    table latches (safe because DDL — the only catalog writer — is
///    excluded for the statement's duration by the kDdl latch).
///  * kWal sits below kTableIndex: the durability contract appends a
///    statement's redo group while its exclusive table latches are still
///    held, so the log order matches memory order per table.
///  * kLockShard/kLockWaitGraph sit BELOW kTxnGate: a multi-row insert
///    acquires the lock on each fresh row id while the statement undo
///    log already holds the txn gate shared, so the lock-table latches
///    must be inner to the gate. They sit ABOVE kMappingCache so a
///    blocked acquisition (which parks on the shard's condvar with the
///    shard latch released) can never pin a mapping-layer latch.
///  * kTxnGate sits ABOVE the mapping-layer cache/row latches: the
///    statement undo log opens a WAL logical transaction (txn gate held
///    shared) before the per-source write loop, and later loop
///    iterations still consult the mapping cache and per-tenant row
///    latch. The gate is therefore the outer latch on that path; the one
///    place that nests the other way — auto-checkpoint triggered by a
///    lazy table provision under the cache latch — defers the checkpoint
///    instead (see Database::MaybeAutoCheckpoint).
enum class LatchRank : uint8_t {
  kPageStore = 0,        // PageStore::mu_ (innermost)
  kMetricsRegistry = 5,  // MetricsRegistry::mu_ (leaf: never calls out)
  kTenantBreaker = 8,    // TenantEntry circuit breaker (leaf: never calls out)
  kBufferShard = 10,     // BufferPool::Shard::mu
  kBufferCapacity = 20,  // BufferPool::capacity_mu_
  kWal = 30,             // Durability::mu_ (append + lsn assignment)
  kCatalog = 40,         // Catalog::mu_
  kTxnRegistry = 45,     // Database::txn_registry_mu_ (open client txns)
  kPage = 50,            // reserved for page-level latches (none yet)
  kTableIndex = 60,      // TableHeap/BTree latches; ordered by TableId
  kDdl = 70,             // Database::ddl_mu_
  kMappingTableNum = 80,   // SchemaMapping::table_number_mu_
  kMappingCache = 90,      // SchemaMapping::cache_mu_
  kTenantRow = 100,        // TenantEntry::row_mu; ordered by TenantId
  kLockWaitGraph = 103,    // LockManager::graph_mu_ (holders + wait-for graph)
  kLockShard = 106,        // LockManager shard latches (hash-partitioned)
  kTxnGate = 110,          // Durability::txn_gate_
  kMappingLayer = 120,     // SchemaMapping::layer_mu_
  kAdmission = 125,        // AdmissionController::mu_ (outermost)
};

const char* LatchRankName(LatchRank rank);

/// Order-key sentinel: the latch participates in rank checking but not
/// in same-rank instance ordering (see LatchRank).
inline constexpr uint64_t kLatchUnordered = ~0ull;

namespace lockdep {

/// One recorded violation. rule_id is from the C2xx/C3xx catalog
/// (analysis/diagnostic.h); src/analysis/lockdep.h re-renders these as
/// analysis::Diagnostic.
struct Violation {
  std::string rule_id;
  std::string location;
  std::string message;
  /// Symbolized acquisition backtraces (current site, plus the held
  /// latch's acquisition site where relevant). Empty when backtrace
  /// capture is disabled (MTDB_LOCKDEP_BACKTRACE=0).
  std::string backtrace;
};

/// True when the validator is compiled into this build (MTDB_LOCKDEP).
bool CompiledIn();

#if MTDB_LOCKDEP

/// Identity carried by every instrumented latch.
struct LatchInfo {
  LatchInfo(LatchRank r, const char* n);
  const uint64_t id;
  const LatchRank rank;
  const char* const name;
  std::atomic<uint64_t> key{kLatchUnordered};
};

/// Pre-acquisition hook: runs the rank/order/cycle checks and pushes the
/// latch onto the calling thread's held stack.
void OnAcquire(const LatchInfo& info, bool shared);
/// Pre-release hook: pops the stack (C205 if not held) and runs the
/// capture-leak check (C302) on exclusive statement-level releases.
void OnRelease(const LatchInfo& info);

/// WAL-protocol hooks (instrumented builds; see DESIGN.md §11). The
/// buffer pool reports page mutations, the engine reports capture
/// commits; `capture` is an opaque identity (the PageMutationCapture*).
void ReportUnloggedMutation(const char* op, uint64_t page_id);  // C301
void OnCapturedMutation(const void* capture);
void OnCaptureCommit(const void* capture);  // clears pending, checks C303

/// Fatal mode: print every violation (with backtraces) and abort() at
/// the first one. Defaults to the MTDB_LOCKDEP_FATAL environment
/// variable; tests that seed violations turn it off explicitly.
void SetFatal(bool fatal);

/// Returns all violations recorded since the last Drain and clears the
/// registry. Duplicate sites are collapsed; `TotalViolations` counts
/// every occurrence.
std::vector<Violation> Drain();
uint64_t TotalViolations();

#else  // !MTDB_LOCKDEP — every hook compiles away.

inline void ReportUnloggedMutation(const char*, uint64_t) {}
inline void OnCapturedMutation(const void*) {}
inline void OnCaptureCommit(const void*) {}
inline void SetFatal(bool) {}
inline std::vector<Violation> Drain() { return {}; }
inline uint64_t TotalViolations() { return 0; }

#endif  // MTDB_LOCKDEP

}  // namespace lockdep

/// Ranked exclusive latch: a std::mutex carrying a static LatchRank and
/// an optional instance order key. Release builds compile down to the
/// raw primitive (the rank/name arguments are discarded); MTDB_LOCKDEP
/// builds feed every acquisition through the lockdep validator.
class Latch {
 public:
#if MTDB_LOCKDEP
  Latch(LatchRank rank, const char* name) : info_(rank, name) {}
#else
  Latch(LatchRank rank, const char* name) {
    (void)rank;
    (void)name;
  }
#endif

  Latch(const Latch&) = delete;
  Latch& operator=(const Latch&) = delete;

  /// Sets the same-rank ordering key (e.g. the TenantId). Call before
  /// the latch sees concurrent traffic. No-op in release builds.
  void SetOrderKey(uint64_t key) {
#if MTDB_LOCKDEP
    info_.key.store(key, std::memory_order_relaxed);
#else
    (void)key;
#endif
  }

  void lock() {
#if MTDB_LOCKDEP
    lockdep::OnAcquire(info_, /*shared=*/false);
#endif
    mu_.lock();
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
#if MTDB_LOCKDEP
    lockdep::OnAcquire(info_, /*shared=*/false);
#endif
    return true;
  }

  void unlock() {
#if MTDB_LOCKDEP
    lockdep::OnRelease(info_);
#endif
    mu_.unlock();
  }

 private:
  std::mutex mu_;
#if MTDB_LOCKDEP
  lockdep::LatchInfo info_;
#endif
};

/// Ranked reader/writer latch over std::shared_mutex. Shared and
/// exclusive acquisitions follow the same rank rules (the validator is
/// conservative: a shared acquisition out of order is reported even
/// though it may not deadlock under today's writer set).
class SharedLatch {
 public:
#if MTDB_LOCKDEP
  SharedLatch(LatchRank rank, const char* name) : info_(rank, name) {}
#else
  SharedLatch(LatchRank rank, const char* name) {
    (void)rank;
    (void)name;
  }
#endif

  SharedLatch(const SharedLatch&) = delete;
  SharedLatch& operator=(const SharedLatch&) = delete;

  void SetOrderKey(uint64_t key) {
#if MTDB_LOCKDEP
    info_.key.store(key, std::memory_order_relaxed);
#else
    (void)key;
#endif
  }

  void lock() {
#if MTDB_LOCKDEP
    lockdep::OnAcquire(info_, /*shared=*/false);
#endif
    mu_.lock();
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
#if MTDB_LOCKDEP
    lockdep::OnAcquire(info_, /*shared=*/false);
#endif
    return true;
  }

  void unlock() {
#if MTDB_LOCKDEP
    lockdep::OnRelease(info_);
#endif
    mu_.unlock();
  }

  void lock_shared() {
#if MTDB_LOCKDEP
    lockdep::OnAcquire(info_, /*shared=*/true);
#endif
    mu_.lock_shared();
  }

  bool try_lock_shared() {
    if (!mu_.try_lock_shared()) return false;
#if MTDB_LOCKDEP
    lockdep::OnAcquire(info_, /*shared=*/true);
#endif
    return true;
  }

  void unlock_shared() {
#if MTDB_LOCKDEP
    lockdep::OnRelease(info_);
#endif
    mu_.unlock_shared();
  }

 private:
  std::shared_mutex mu_;
#if MTDB_LOCKDEP
  lockdep::LatchInfo info_;
#endif
};

}  // namespace mtdb

#endif  // MTDB_COMMON_LATCH_H_
