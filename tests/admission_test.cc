// Tests for per-tenant admission control (src/engine/admission.{h,cc}),
// statement deadlines (src/common/deadline.h + the cooperative
// cancellation points threaded through the executor, B-tree, buffer
// pool and mapping layer), and the circuit-breaker quarantine
// (src/common/breaker.{h,cc} wired into SchemaMapping).
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/verifier.h"
#include "common/breaker.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "core/tenant_session.h"
#include "engine/admission.h"
#include "engine/database.h"
#include "engine/session.h"
#include "mapping_test_util.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace mtdb {
namespace {

void AuditClean(mapping::SchemaMapping* layout, const char* when) {
  analysis::Verifier verifier(layout);
  auto diagnostics = verifier.Run();
  ASSERT_TRUE(diagnostics.ok()) << when << ": "
                                << diagnostics.status().ToString();
  EXPECT_FALSE(analysis::HasErrors(*diagnostics))
      << when << ": " << analysis::FormatDiagnostics(*diagnostics);
}

// ------------------------------------------------------- token buckets

// An empty token bucket rejects immediately with kResourceExhausted and
// a parseable retry_after_ms hint; the rejection never executes the
// statement and other tenants' buckets are untouched.
TEST(AdmissionTest, TokenBucketExhaustionRejectsWithRetryHint) {
  DatabaseOptions dopts;
  dopts.admission.enabled = true;
  dopts.admission.tenant_rate = 0.1;  // ~10s per token: no refill mid-test
  dopts.admission.tenant_burst = 2.0;
  Database db(dopts);

  mapping::AppSchema app = mapping::FigureFourSchema();
  std::unique_ptr<mapping::SchemaMapping> layout =
      mapping::MakeLayout(mapping::LayoutKind::kBasic, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  ASSERT_TRUE(layout->CreateTenant(1).ok());
  ASSERT_TRUE(layout->CreateTenant(2).ok());
  // Setup above goes through the layout's internal (unadmitted) path;
  // only the session front doors spend tokens.
  ASSERT_TRUE(layout
                  ->Execute(1, "INSERT INTO account (aid, name) VALUES (?, ?)",
                            {Value::Int64(1), Value::String("alpha")})
                  .ok());

  mapping::TenantSession session = layout->OpenSession(1);
  ASSERT_TRUE(session.Query("SELECT * FROM account").ok());  // burst 1
  ASSERT_TRUE(session.Query("SELECT * FROM account").ok());  // burst 2
  auto r = session.Query("SELECT * FROM account");           // bucket empty
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_GT(AdmissionController::RetryAfterMs(r.status()), 0)
      << r.status().ToString();
  EXPECT_GE(
      db.metrics_registry()->GetCounter("admission.rejected.t1")->value(), 1u);

  // The blast radius is one bucket: tenant 2 still has its full burst.
  mapping::TenantSession other = layout->OpenSession(2);
  EXPECT_TRUE(other.Query("SELECT * FROM account").ok());

  // Raw engine sessions are admitted too, under the reserved engine
  // tenant (-1) with a bucket of their own. (Database::Execute bypasses
  // the session front door, so this setup spends no tokens.)
  ASSERT_TRUE(db.Execute("CREATE TABLE raw_t (a INT)").ok());
  Session raw = db.OpenSession();
  ASSERT_TRUE(raw.Execute("SELECT a FROM raw_t").ok());
  ASSERT_TRUE(raw.Execute("SELECT a FROM raw_t").ok());
  auto engine_r = raw.Execute("SELECT a FROM raw_t");
  ASSERT_FALSE(engine_r.ok());
  EXPECT_EQ(engine_r.status().code(), StatusCode::kResourceExhausted);
}

// A full wait queue also rejects rather than parking unboundedly.
TEST(AdmissionTest, FullQueueRejectsWithRetryHint) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.max_in_flight = 1;
  opts.max_queue = 0;  // no parking at all
  MetricsRegistry registry;
  AdmissionController ctrl(opts, &registry);

  AdmissionTicket first;
  ASSERT_TRUE(ctrl.Admit(1, deadline::Deadline::None(), &first).ok());
  EXPECT_EQ(ctrl.in_flight(), 1u);

  AdmissionTicket second;
  Status st = ctrl.Admit(2, deadline::Deadline::None(), &second);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(AdmissionController::RetryAfterMs(st), 0) << st.ToString();

  first.Release();
  EXPECT_EQ(ctrl.in_flight(), 0u);
  // With the slot free the next admit sails through.
  ASSERT_TRUE(ctrl.Admit(2, deadline::Deadline::None(), &second).ok());
}

// Re-admitting with a ticket that still holds a slot releases that slot
// before the controller latch is taken: regression for a self-deadlock
// when Admit() called ticket->Release() while holding mu_.
TEST(AdmissionTest, ReadmittingAHeldTicketReleasesItsSlotFirst) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.max_in_flight = 1;
  MetricsRegistry registry;
  AdmissionController ctrl(opts, &registry);

  AdmissionTicket ticket;
  ASSERT_TRUE(ctrl.Admit(1, deadline::Deadline::None(), &ticket).ok());
  EXPECT_EQ(ctrl.in_flight(), 1u);
  // The held slot is the only one; this would park (or deadlock) if the
  // incoming ticket weren't released up front.
  ASSERT_TRUE(ctrl.Admit(1, deadline::Deadline::None(), &ticket).ok());
  EXPECT_EQ(ctrl.in_flight(), 1u);
  ticket.Release();
  EXPECT_EQ(ctrl.in_flight(), 0u);
}

// A statement whose deadline passes while parked abandons the queue and
// reports kDeadlineExceeded without ever executing.
TEST(AdmissionTest, QueuedStatementAbandonsOnDeadline) {
  AdmissionOptions opts;
  opts.enabled = true;
  opts.max_in_flight = 1;
  opts.max_queue = 8;
  MetricsRegistry registry;
  AdmissionController ctrl(opts, &registry);

  AdmissionTicket holder;
  ASSERT_TRUE(ctrl.Admit(1, deadline::Deadline::None(), &holder).ok());

  AdmissionTicket parked;
  Status st =
      ctrl.Admit(2, deadline::Deadline::AfterMillis(30), &parked);
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  EXPECT_FALSE(parked.admitted());
  EXPECT_EQ(ctrl.queue_depth(), 0u) << "abandoned waiter left in queue";
  holder.Release();
  EXPECT_EQ(ctrl.in_flight(), 0u);
}

// ----------------------------------------------------------- fairness

// Weighted round-robin across tenants: six threads of one noisy tenant
// keep the in-flight slots and the queue saturated while a well-behaved
// tenant issues statements with a generous deadline. Starvation would
// surface as kDeadlineExceeded; fairness means every one of the
// well-behaved statements is served.
TEST(AdmissionTest, NoisyTenantCannotStarveWellBehavedTenant) {
  DatabaseOptions dopts;
  dopts.admission.enabled = true;
  dopts.admission.max_in_flight = 2;
  dopts.admission.max_queue = 64;
  Database db(dopts);

  mapping::AppSchema app = mapping::FigureFourSchema();
  std::unique_ptr<mapping::SchemaMapping> layout =
      mapping::MakeLayout(mapping::LayoutKind::kBasic, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  ASSERT_TRUE(layout->CreateTenant(0).ok());
  ASSERT_TRUE(layout->CreateTenant(1).ok());
  for (TenantId t = 0; t < 2; ++t) {
    mapping::TenantSession seed = layout->OpenSession(t);
    for (int i = 0; i < 400; ++i) {
      ASSERT_TRUE(seed.InsertRow("account", {Value::Int64(i),
                                             Value::String(std::string(64, 'x'))})
                      .ok());
    }
  }

  // In-memory point reads finish in microseconds — too fast for six
  // threads to ever collide on a cap of two. A pool smaller than one
  // tenant's table plus simulated device latency makes every statement
  // miss-bound so the queue is genuinely contended.
  db.buffer_pool()->SetCapacity(4);
  db.page_store()->set_read_latency_ns(200'000);

  constexpr int kNoisyThreads = 6;
  constexpr int kNoisyStatements = 150;
  constexpr int kPoliteStatements = 15;
  std::vector<std::thread> noisy;
  for (int w = 0; w < kNoisyThreads; ++w) {
    noisy.emplace_back([&layout] {
      mapping::TenantSession s = layout->OpenSession(0);
      for (int i = 0; i < kNoisyStatements; ++i) {
        auto r = s.Query("SELECT * FROM account WHERE aid >= 0");
        // Unbounded-deadline statements park rather than fail.
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }

  mapping::TenantSession polite = layout->OpenSession(1);
  for (int i = 0; i < kPoliteStatements; ++i) {
    auto r = polite.Query("SELECT * FROM account WHERE aid >= 0", {},
                          deadline::Deadline::AfterMillis(2000));
    EXPECT_TRUE(r.ok()) << "statement " << i
                        << " starved: " << r.status().ToString();
  }
  for (std::thread& t : noisy) t.join();

  // The cap was actually contended (the test proved something) and all
  // slots drained back.
  EXPECT_GT(db.metrics_registry()->GetCounter("admission.queued.t0")->value(),
            0u);
  EXPECT_EQ(db.admission()->in_flight(), 0u);
  EXPECT_EQ(db.admission()->queue_depth(), 0u);
}

// ----------------------------------------------------------- deadlines

// A deadline expiring between the physical statements of one logical
// UPDATE must roll the applied half back: after every iteration the row
// reads as the full old or the full new image, never a mixture. The
// injector's latency spike walks through the statement's I/Os so the
// expiry lands at a different point each iteration. Deadline expiry is
// NOT a hard fault: the tenant's breaker must stay closed throughout.
TEST(DeadlineTest, MidStatementExpiryRollsBackAppliedWrites) {
  mapping::AppSchema app = mapping::FigureFourSchema();
  Database db;
  std::unique_ptr<mapping::SchemaMapping> layout =
      mapping::MakeLayout(mapping::LayoutKind::kPivot, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  ASSERT_TRUE(layout->CreateTenant(1).ok());
  ASSERT_TRUE(layout->EnableExtension(1, "healthcare").ok());
  ASSERT_TRUE(layout
                  ->Execute(1,
                            "INSERT INTO account (aid, name, hospital, beds) "
                            "VALUES (?, ?, ?, ?)",
                            {Value::Int64(1), Value::String("init"),
                             Value::String("mercy"), Value::Int32(10)})
                  .ok());
  // Deliberately hair-trigger: if deadline expiry ever counted as a hard
  // fault the breaker would trip within one iteration.
  layout->set_quarantine_threshold(2);

  FaultInjector injector(23);
  db.page_store()->set_fault_injector(&injector);
  db.buffer_pool()->SetCapacity(4);  // physical I/O inside the statement

  mapping::TenantSession session = layout->OpenSession(1);
  std::string name = "init";
  int32_t beds = 10;
  int expired = 0, succeeded = 0;
  for (uint64_t skip = 0; skip < 40; ++skip) {
    FaultSpec spike;
    spike.probability = 1.0;
    spike.skip = skip;
    spike.max_fires = 1;
    spike.latency_ns = 120'000'000;  // one 120ms stall vs a 40ms budget
    injector.Arm(FaultPoint::kLatencySpike, spike);

    std::string new_name = "name" + std::to_string(skip);
    int32_t new_beds = static_cast<int32_t>(100 + skip);
    auto r = session.Execute(
        "UPDATE account SET name = ?, beds = ? WHERE aid = ?",
        {Value::String(new_name), Value::Int32(new_beds), Value::Int64(1)},
        deadline::Deadline::AfterMillis(40));
    if (r.ok()) {
      ++succeeded;
      name = new_name;
      beds = new_beds;
    } else {
      ASSERT_EQ(r.status().code(), StatusCode::kDeadlineExceeded)
          << "skip=" << skip << ": " << r.status().ToString();
      ++expired;
    }
    injector.DisarmAll();

    auto row = layout->Query(1, "SELECT * FROM account");
    ASSERT_TRUE(row.ok()) << "skip=" << skip << ": "
                          << row.status().ToString();
    ASSERT_EQ(row->rows.size(), 1u)
        << "skip=" << skip << " update=" << r.status().ToString();
    // Columns: aid, name, hospital, beds.
    EXPECT_EQ(row->rows[0][1].Compare(Value::String(name)), 0)
        << "skip=" << skip << ": partial statement visible";
    EXPECT_EQ(row->rows[0][3].Compare(Value::Int32(beds)), 0)
        << "skip=" << skip << ": partial statement visible";
  }
  // The sweep must have cancelled some statements and completed others,
  // or it proved nothing.
  EXPECT_GT(expired, 0);
  EXPECT_GT(succeeded, 0);
  EXPECT_GE(
      db.metrics_registry()->GetCounter("deadline.exceeded.t1")->value(),
      static_cast<uint64_t>(expired));
  // Cancellation is service, not a fault.
  EXPECT_FALSE(layout->IsQuarantined(1));
  EXPECT_EQ(layout->TenantBreakerState(1), BreakerState::kClosed);
  AuditClean(layout.get(), "after deadline sweep");
  db.page_store()->set_fault_injector(nullptr);
}

// An already-expired deadline cancels before any work happens.
TEST(DeadlineTest, ExpiredDeadlineCancelsUpFront) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (1)").ok());
  Session session = db.OpenSession();
  auto r = session.Execute("SELECT a FROM t", {},
                           deadline::Deadline::AfterMillis(-5));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(db.metrics_registry()->GetCounter("deadline.exceeded")->value(),
            1u);
  // The same statement without a deadline is untouched.
  EXPECT_TRUE(session.Execute("SELECT a FROM t").ok());
}

// ------------------------------------------------------ circuit breaker

// The breaker's full lifecycle under a synthetic clock: deterministic
// down to the nanosecond, no sleeps.
TEST(CircuitBreakerTest, LifecycleUnderSyntheticClock) {
  CircuitBreaker b;
  CircuitBreaker::Options opts;
  opts.threshold = 2;
  opts.initial_backoff_ns = 100;
  opts.max_backoff_ns = 400;
  uint64_t now = 1'000;

  // Two consecutive hard faults trip it open.
  EXPECT_EQ(b.Admit(now, opts), CircuitBreaker::Decision::kAllow);
  EXPECT_EQ(b.OnResult(true, now, opts), CircuitBreaker::Transition::kNone);
  EXPECT_EQ(b.Admit(now, opts), CircuitBreaker::Decision::kAllow);
  EXPECT_EQ(b.OnResult(true, now, opts), CircuitBreaker::Transition::kOpened);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.trips(), 1u);

  // Open: rejects with the time left in the backoff window.
  uint64_t retry = 0;
  EXPECT_EQ(b.Admit(now + 60, opts, &retry),
            CircuitBreaker::Decision::kReject);
  EXPECT_EQ(retry, 40u);

  // Backoff elapsed: exactly one probe; concurrent arrivals bounce.
  EXPECT_EQ(b.Admit(now + 100, opts), CircuitBreaker::Decision::kAllowProbe);
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(b.Admit(now + 100, opts, &retry),
            CircuitBreaker::Decision::kReject);

  // Failed probe: re-opens with the backoff doubled.
  EXPECT_EQ(b.OnResult(true, now + 110, opts),
            CircuitBreaker::Transition::kOpened);
  EXPECT_EQ(b.Admit(now + 110 + 150, opts, &retry),
            CircuitBreaker::Decision::kReject);
  EXPECT_EQ(retry, 50u);  // 200ns window, 150 elapsed

  // Successful probe: closed, strike and backoff state cleared.
  EXPECT_EQ(b.Admit(now + 110 + 200, opts),
            CircuitBreaker::Decision::kAllowProbe);
  EXPECT_EQ(b.OnResult(false, now + 110 + 210, opts),
            CircuitBreaker::Transition::kClosed);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.open_until_ns(), 0u);

  // One success between faults resets the strike count: a single new
  // fault does not trip a threshold of two.
  EXPECT_EQ(b.OnResult(true, now + 500, opts),
            CircuitBreaker::Transition::kNone);
  EXPECT_EQ(b.OnResult(false, now + 500, opts),
            CircuitBreaker::Transition::kNone);
  EXPECT_EQ(b.OnResult(true, now + 500, opts),
            CircuitBreaker::Transition::kNone);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.trips(), 2u);
}

// A probe that aborts before producing an outcome hands the half-open
// slot back: regression for probe_in_flight_ leaking when the probe
// statement died early (parse error, outcome-less explain), which left
// the breaker rejecting the tenant forever.
TEST(CircuitBreakerTest, AbandonedProbeFreesTheHalfOpenSlot) {
  CircuitBreaker b;
  CircuitBreaker::Options opts;
  opts.threshold = 1;
  opts.initial_backoff_ns = 100;
  opts.max_backoff_ns = 100;
  uint64_t now = 1'000;

  b.AbandonProbe();  // no-op while closed
  EXPECT_EQ(b.state(), BreakerState::kClosed);

  EXPECT_EQ(b.Admit(now, opts), CircuitBreaker::Decision::kAllow);
  EXPECT_EQ(b.OnResult(true, now, opts), CircuitBreaker::Transition::kOpened);

  // The probe aborts: the slot frees, the breaker stays half-open, and
  // the NEXT arrival becomes the probe instead of bouncing forever.
  EXPECT_EQ(b.Admit(now + 100, opts), CircuitBreaker::Decision::kAllowProbe);
  b.AbandonProbe();
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(b.Admit(now + 101, opts), CircuitBreaker::Decision::kAllowProbe);
  EXPECT_EQ(b.OnResult(false, now + 102, opts),
            CircuitBreaker::Transition::kClosed);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
}

// End to end through the mapping layer: a probe statement that dies
// parsing and an EXPLAIN MAPPING (which never reports an outcome) both
// hand the probe slot back, so the tenant still self-heals afterwards.
TEST(CircuitBreakerTest, AbortedProbeStatementsDoNotWedgeTheBreaker) {
  mapping::AppSchema app = mapping::FigureFourSchema();
  Database db;
  std::unique_ptr<mapping::SchemaMapping> layout =
      mapping::MakeLayout(mapping::LayoutKind::kBasic, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  ASSERT_TRUE(layout->CreateTenant(1).ok());
  ASSERT_TRUE(layout
                  ->Execute(1, "INSERT INTO account (aid, name) VALUES (?, ?)",
                            {Value::Int64(1), Value::String("alpha")})
                  .ok());
  layout->set_quarantine_threshold(1);
  layout->set_breaker_backoff_ms(50, 50);

  FaultInjector injector(7);
  db.page_store()->set_fault_injector(&injector);
  FaultSpec spec;
  spec.probability = 1.0;
  injector.Arm(FaultPoint::kPageRead, spec);
  for (int i = 0; i < 4 && !layout->IsQuarantined(1); ++i) {
    ASSERT_TRUE(db.buffer_pool()->EvictAll().ok());
    EXPECT_FALSE(layout->Query(1, "SELECT * FROM account").ok());
  }
  ASSERT_EQ(layout->TenantBreakerState(1), BreakerState::kOpen);
  injector.DisarmAll();

  // Burn the probe slot with statements that never reach
  // NoteTenantOutcome. First a parse error (aborts right after winning
  // the probe); kUnavailable means the backoff window hadn't elapsed
  // yet, so keep trying.
  bool burned_parse = false;
  for (int i = 0; i < 40 && !burned_parse; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    Status st = layout->Query(1, "SELEKT nonsense").status();
    burned_parse = st.code() != StatusCode::kUnavailable;
  }
  ASSERT_TRUE(burned_parse);
  EXPECT_EQ(layout->TenantBreakerState(1), BreakerState::kHalfOpen);
  // Then an explain, which completes without feeding the breaker — it
  // must hand the slot straight back rather than consume it.
  EXPECT_TRUE(layout->ExplainMapping(1, "SELECT * FROM account", {}).ok());
  EXPECT_EQ(layout->TenantBreakerState(1), BreakerState::kHalfOpen);

  // The next valid statement takes the (returned) probe slot and closes
  // the breaker — before the fix it bounced off probe_in_flight_ forever.
  auto healed = layout->Query(1, "SELECT * FROM account");
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(layout->TenantBreakerState(1), BreakerState::kClosed);
  EXPECT_GE(db.metrics_registry()->GetCounter("breaker.close.t1")->value(),
            1u);
  AuditClean(layout.get(), "after aborted probes");
  db.page_store()->set_fault_injector(nullptr);
}

// End to end through the mapping layer: repeated injected I/O faults
// open one tenant's breaker; once the device heals, the next probe after
// the backoff closes it again — no ClearQuarantine required.
TEST(CircuitBreakerTest, QuarantineSelfHealsAfterDeviceRecovers) {
  mapping::AppSchema app = mapping::FigureFourSchema();
  Database db;
  std::unique_ptr<mapping::SchemaMapping> layout =
      mapping::MakeLayout(mapping::LayoutKind::kBasic, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  ASSERT_TRUE(layout->CreateTenant(1).ok());
  ASSERT_TRUE(layout->CreateTenant(2).ok());
  ASSERT_TRUE(layout
                  ->Execute(1, "INSERT INTO account (aid, name) VALUES (?, ?)",
                            {Value::Int64(1), Value::String("alpha")})
                  .ok());
  layout->set_quarantine_threshold(2);
  layout->set_breaker_backoff_ms(250, 250);

  FaultInjector injector(7);
  db.page_store()->set_fault_injector(&injector);
  FaultSpec spec;
  spec.probability = 1.0;  // the device stays broken
  injector.Arm(FaultPoint::kPageRead, spec);

  for (int i = 0; i < 4 && !layout->IsQuarantined(1); ++i) {
    ASSERT_TRUE(db.buffer_pool()->EvictAll().ok());  // force real I/O
    EXPECT_FALSE(layout->Query(1, "SELECT * FROM account").ok());
  }
  EXPECT_EQ(layout->TenantBreakerState(1), BreakerState::kOpen);
  EXPECT_GE(db.metrics_registry()->GetCounter("breaker.open.t1")->value(), 1u);

  // Inside the backoff window: fail-fast with a retry hint, no I/O.
  auto rejected = layout->Query(1, "SELECT * FROM account");
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  EXPECT_GT(AdmissionController::RetryAfterMs(rejected.status()), 0)
      << rejected.status().ToString();
  // Other tenants keep serving off the same (broken) device's cache.
  EXPECT_EQ(layout->TenantBreakerState(2), BreakerState::kClosed);

  // Device heals; within a few backoff windows a half-open probe runs,
  // succeeds and closes the breaker with no operator involved.
  injector.DisarmAll();
  bool healed = false;
  for (int i = 0; i < 40 && !healed; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    healed = layout->Query(1, "SELECT * FROM account").ok();
  }
  EXPECT_TRUE(healed) << "breaker never self-healed after device recovery";
  EXPECT_EQ(layout->TenantBreakerState(1), BreakerState::kClosed);
  EXPECT_FALSE(layout->IsQuarantined(1));
  EXPECT_GE(db.metrics_registry()->GetCounter("breaker.half_open.t1")->value(),
            1u);
  EXPECT_GE(db.metrics_registry()->GetCounter("breaker.close.t1")->value(),
            1u);
  EXPECT_GE(layout->stats().quarantine_trips.load(), 1u);

  auto r = layout->Query(1, "SELECT * FROM account");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
  AuditClean(layout.get(), "after self-heal");
  db.page_store()->set_fault_injector(nullptr);
}

}  // namespace
}  // namespace mtdb
