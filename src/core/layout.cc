#include "core/layout.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "catalog/schema.h"
#include "common/deadline.h"
#include "core/tenant_session.h"
#include "core/undo_log.h"
#include "engine/lock_manager.h"
#include "engine/txn_context.h"
#include "sql/ast_util.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace mtdb {
namespace mapping {

namespace {

/// Monotonic now in nanoseconds for the circuit breakers.
uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Evaluates a constant (or logical-row-referencing) scalar expression
/// used in INSERT VALUES / UPDATE SET position.
Result<Value> EvalScalar(const sql::ParsedExpr& e, const EffectiveTable* table,
                         const Row* row, const std::vector<Value>& params) {
  using sql::PExprKind;
  switch (e.kind) {
    case PExprKind::kLiteral:
      return e.literal;
    case PExprKind::kParam:
      if (e.param_ordinal >= params.size()) {
        return Status::InvalidArgument("missing bind parameter");
      }
      return params[e.param_ordinal];
    case PExprKind::kColumnRef: {
      if (table == nullptr || row == nullptr) {
        return Status::InvalidArgument("column reference not allowed here: " +
                                       e.column);
      }
      auto pos = table->Find(e.column);
      if (!pos.has_value()) {
        return Status::NotFound("no logical column " + e.column);
      }
      return (*row)[*pos];
    }
    case PExprKind::kUnary: {
      MTDB_ASSIGN_OR_RETURN(Value c, EvalScalar(*e.left, table, row, params));
      if (e.unary_op == sql::UnaryOp::kNeg) {
        if (c.is_null()) return c;
        if (c.type() == TypeId::kDouble) return Value::Double(-c.AsDouble());
        return Value::Int64(-c.AsInt64());
      }
      if (c.is_null()) return Value::Null(TypeId::kBool);
      return Value::Bool(!c.AsBool());
    }
    case PExprKind::kBinary: {
      MTDB_ASSIGN_OR_RETURN(Value l, EvalScalar(*e.left, table, row, params));
      MTDB_ASSIGN_OR_RETURN(Value r, EvalScalar(*e.right, table, row, params));
      if (l.is_null() || r.is_null()) return Value();
      const bool dbl =
          l.type() == TypeId::kDouble || r.type() == TypeId::kDouble;
      switch (e.binary_op) {
        case sql::BinaryOp::kAdd:
          if (l.type() == TypeId::kString || r.type() == TypeId::kString) {
            return Value::String(l.ToString() + r.ToString());
          }
          return dbl ? Value::Double(l.AsDouble() + r.AsDouble())
                     : Value::Int64(l.AsInt64() + r.AsInt64());
        case sql::BinaryOp::kSub:
          return dbl ? Value::Double(l.AsDouble() - r.AsDouble())
                     : Value::Int64(l.AsInt64() - r.AsInt64());
        case sql::BinaryOp::kMul:
          return dbl ? Value::Double(l.AsDouble() * r.AsDouble())
                     : Value::Int64(l.AsInt64() * r.AsInt64());
        case sql::BinaryOp::kDiv:
          if (r.AsDouble() == 0.0) {
            return Status::InvalidArgument("division by zero");
          }
          return dbl ? Value::Double(l.AsDouble() / r.AsDouble())
                     : Value::Int64(l.AsInt64() / r.AsInt64());
        default:
          return Status::InvalidArgument("unsupported scalar expression");
      }
    }
    default:
      return Status::InvalidArgument("unsupported scalar expression");
  }
}

}  // namespace

Schema PhysicalSchemaFromColumns(const std::vector<Column>& cols) {
  Schema out;
  for (const Column& c : cols) out.AddColumn(c);
  return out;
}

SchemaMapping::SchemaMapping(Database* db, const AppSchema* app)
    : db_(db), app_(app) {
  if (db_ != nullptr) {
    quarantine_threshold_.store(db_->default_quarantine_threshold(),
                                std::memory_order_relaxed);
    breaker_backoff_initial_ns_.store(
        db_->breaker_backoff_initial_ms() * 1'000'000,
        std::memory_order_relaxed);
    breaker_backoff_max_ns_.store(db_->breaker_backoff_max_ms() * 1'000'000,
                                  std::memory_order_relaxed);
  }
}

namespace {

/// Sink installed on the thread executing ExplainMapping; see layout.h.
thread_local SchemaMapping::ExplainSink* tls_explain_sink = nullptr;

class ExplainScope {
 public:
  explicit ExplainScope(SchemaMapping::ExplainSink* sink)
      : prev_(tls_explain_sink) {
    tls_explain_sink = sink;
  }
  ~ExplainScope() { tls_explain_sink = prev_; }
  ExplainScope(const ExplainScope&) = delete;
  ExplainScope& operator=(const ExplainScope&) = delete;

 private:
  SchemaMapping::ExplainSink* prev_;
};

}  // namespace

bool SchemaMapping::Explaining() { return tls_explain_sink != nullptr; }

SchemaMapping::ExplainSink* SchemaMapping::CurrentExplainSink() {
  return tls_explain_sink;
}

TenantSession SchemaMapping::OpenSession(TenantId tenant) {
  return TenantSession(this, tenant);
}

// Admin template methods: take the layer latch exclusively (draining
// in-flight statements, which hold it shared), then run the hooks.

Status SchemaMapping::CreateTenant(TenantId tenant) {
  std::unique_lock<SharedLatch> lock(layer_mu_);
  return CreateTenantImpl(tenant);
}

Status SchemaMapping::EnableExtension(TenantId tenant, const std::string& ext) {
  std::unique_lock<SharedLatch> lock(layer_mu_);
  return EnableExtensionImpl(tenant, ext);
}

Status SchemaMapping::DropTenant(TenantId tenant) {
  std::unique_lock<SharedLatch> lock(layer_mu_);
  return DropTenantImpl(tenant);
}

Status SchemaMapping::CreateTenantImpl(TenantId tenant) {
  if (tenants_.contains(tenant)) {
    return Status::AlreadyExists("tenant exists: " + std::to_string(tenant));
  }
  if (db_->durable()) {
    MTDB_RETURN_IF_ERROR(EnsureRegistry());
    MTDB_RETURN_IF_ERROR(RegistryInsert("T", tenant, "", 0));
    // Pre-assign the tenant's table numbers in schema order, so the lazy
    // in-statement assignment (TableNumber from BuildMapping) never has
    // to write the registry while holding the mapping-cache lock —
    // and so the numbers baked into data rows survive a restart.
    for (const LogicalTable& t : app_->tables()) {
      int32_t num = TableNumber(tenant, t.name);
      MTDB_RETURN_IF_ERROR(
          RegistryInsert("N", tenant, IdentLower(t.name), num));
    }
  }
  // In-place construction: TenantEntry owns a latch and cannot move.
  TenantEntry& entry = tenants_[tenant];
  entry.state = TenantState(tenant);
  entry.row_mu.SetOrderKey(static_cast<uint64_t>(tenant));
  return Status::OK();
}

namespace {

/// Identity of a physical source: table plus partition values.
std::string SourceKey(const PhysicalSource& s) {
  std::string key = IdentLower(s.physical_table);
  for (const auto& [col, val] : s.partition) {
    key += "|" + IdentLower(col) + "=" + val.ToString();
  }
  return key;
}

}  // namespace

Status SchemaMapping::EnableExtensionImpl(TenantId tenant,
                                          const std::string& ext) {
  MTDB_ASSIGN_OR_RETURN(TenantEntry * entry, GetTenant(tenant));
  const ExtensionDef* def = app_->FindExtension(ext);
  if (def == nullptr) {
    return Status::NotFound("no such extension: " + ext);
  }
  if (entry->state.HasExtension(ext)) return Status::OK();

  // Remember the pre-extension sources so existing rows can be migrated
  // into any newly-introduced chunks ("migrate data from one
  // representation to another on-the-fly").
  std::set<std::string> old_keys;
  std::vector<int64_t> existing_rows;
  {
    Result<const TableMapping*> old_mapping = Mapping(tenant, def->base_table);
    if (old_mapping.ok()) {
      for (const PhysicalSource& s : (*old_mapping)->sources) {
        old_keys.insert(SourceKey(s));
      }
      if (!(*old_mapping)->sources.empty() &&
          !(*old_mapping)->sources[0].row_column.empty()) {
        std::vector<AffectedRow> rows;
        MTDB_ASSIGN_OR_RETURN(
            rows, CollectAffected(tenant, def->base_table, nullptr, {}));
        for (const AffectedRow& r : rows) existing_rows.push_back(r.row_id);
      }
    }
  }

  entry->state.EnableExtension(ext);
  InvalidateMappings();

  // Backfill: every new source must carry a (NULL-valued) row for each
  // existing logical row so the aligning inner joins stay complete.
  Result<const TableMapping*> new_mapping = Mapping(tenant, def->base_table);
  if (!new_mapping.ok()) {
    // Roll back: the layout cannot host this extension (e.g. a Universal
    // Table that is too narrow).
    entry->state.RemoveExtension(ext);
    InvalidateMappings();
    return new_mapping.status();
  }
  const TableMapping* mapping = *new_mapping;
  for (const PhysicalSource& source : mapping->sources) {
    if (old_keys.count(SourceKey(source)) != 0) continue;
    if (source.row_column.empty()) continue;
    TableInfo* phys = db_->catalog()->GetTable(source.physical_table);
    if (phys == nullptr) {
      return Status::Internal("physical table missing: " +
                              source.physical_table);
    }
    for (int64_t row_id : existing_rows) {
      Row physical_row(phys->schema.size(), Value());
      for (const auto& [col, val] : source.partition) {
        auto pos = phys->schema.Find(col);
        if (!pos.has_value()) {
          return Status::Internal("partition column missing: " + col);
        }
        physical_row[*pos] = val;
      }
      auto pos = phys->schema.Find(source.row_column);
      if (!pos.has_value()) {
        return Status::Internal("row column missing: " + source.row_column);
      }
      physical_row[*pos] = Value::Int64(row_id);
      MTDB_RETURN_IF_ERROR(db_->InsertRow(source.physical_table, physical_row));
      stats_.physical_statements++;
    }
  }
  return RecordExtensionEnabled(
      tenant, ext,
      static_cast<int64_t>(entry->state.extensions().size()) - 1);
}

Status SchemaMapping::DropTenantImpl(TenantId tenant) {
  MTDB_ASSIGN_OR_RETURN(TenantEntry * entry, GetTenant(tenant));
  (void)entry;
  // Delete the tenant's rows from every logical table via the mapping.
  for (const LogicalTable& t : app_->tables()) {
    sql::DeleteStmt del;
    del.table = t.name;
    MTDB_ASSIGN_OR_RETURN(int64_t n, GenericDelete(tenant, del, {}));
    (void)n;
  }
  MTDB_RETURN_IF_ERROR(RecordTenantDropped(tenant));
  tenants_.erase(tenant);
  InvalidateMappings();
  return Status::OK();
}

// --- durable registry + layer recovery ---------------------------------

Status SchemaMapping::EnsureRegistry() {
  if (!db_->durable()) return Status::OK();
  if (db_->catalog()->GetTable(RegistryName()) != nullptr) return Status::OK();
  Schema schema;
  schema.AddColumn(Column{"kind", TypeId::kString, true});
  schema.AddColumn(Column{"tenant", TypeId::kInt32, true});
  schema.AddColumn(Column{"name", TypeId::kString, false});
  schema.AddColumn(Column{"val", TypeId::kInt64, false});
  MTDB_RETURN_IF_ERROR(db_->CreateTable(RegistryName(), std::move(schema)));
  return db_->CreateIndex(RegistryName(), "ix_mtdb_registry_tenant",
                          {"tenant"}, /*unique=*/false);
}

Status SchemaMapping::RegistryInsert(const std::string& kind, TenantId tenant,
                                     const std::string& name, int64_t val) {
  if (!db_->durable()) return Status::OK();
  Row row{Value::String(kind), Value::Int32(tenant), Value::String(name),
          Value::Int64(val)};
  return db_->InsertRow(RegistryName(), row);
}

Status SchemaMapping::RecordExtensionEnabled(TenantId tenant,
                                             const std::string& ext,
                                             int64_t ordinal) {
  return RegistryInsert("E", tenant, IdentLower(ext), ordinal);
}

Status SchemaMapping::RecordTenantDropped(TenantId tenant) {
  // Forget the tenant's table numbers (ids are never reused, so a
  // re-created tenant gets fresh ones).
  {
    std::lock_guard<Latch> lock(table_number_mu_);
    for (auto it = table_numbers_.begin(); it != table_numbers_.end();) {
      it = it->first.first == tenant ? table_numbers_.erase(it)
                                     : std::next(it);
    }
  }
  if (!db_->durable() ||
      db_->catalog()->GetTable(RegistryName()) == nullptr) {
    return Status::OK();
  }
  sql::Statement del;
  del.kind = sql::StatementKind::kDelete;
  del.del = std::make_unique<sql::DeleteStmt>();
  del.del->table = RegistryName();
  del.del->where = sql::MakeBinary(sql::BinaryOp::kEq,
                                   sql::MakeColumnRef("", "tenant"),
                                   sql::MakeLiteral(Value::Int32(tenant)));
  MTDB_ASSIGN_OR_RETURN(int64_t n, db_->ExecuteAst(del, {}));
  (void)n;
  return Status::OK();
}

Status SchemaMapping::Recover() {
  std::unique_lock<SharedLatch> lock(layer_mu_);
  if (!db_->durable()) {
    return Status::InvalidArgument("Recover() needs a durable engine");
  }
  tenants_.clear();
  if (db_->catalog()->GetTable(RegistryName()) != nullptr) {
    MTDB_ASSIGN_OR_RETURN(
        QueryResult reg,
        db_->Query("SELECT kind, tenant, name, val FROM " + RegistryName()));
    // Tenants first, then extensions in their original enable order,
    // then table numbers.
    std::map<TenantId, std::map<int64_t, std::string>> exts;
    for (const Row& r : reg.rows) {
      const std::string kind = r[0].ToString();
      const TenantId tenant = r[1].AsInt32();
      if (kind == "T") {
        TenantEntry& entry = tenants_[tenant];
        entry.state = TenantState(tenant);
        entry.row_mu.SetOrderKey(static_cast<uint64_t>(tenant));
      } else if (kind == "E") {
        exts[tenant][r[3].AsInt64()] = r[2].ToString();
      }
    }
    for (auto& [tenant, ordered] : exts) {
      auto it = tenants_.find(tenant);
      if (it == tenants_.end()) {
        return Status::DataLoss("registry extension row for unknown tenant " +
                                std::to_string(tenant));
      }
      for (auto& [ordinal, ext] : ordered) {
        (void)ordinal;
        it->second.state.EnableExtension(ext);
      }
    }
    {
      std::lock_guard<Latch> tn(table_number_mu_);
      table_numbers_.clear();
      for (const Row& r : reg.rows) {
        if (r[0].ToString() != "N") continue;
        const int32_t num = static_cast<int32_t>(r[3].AsInt64());
        table_numbers_[{r[1].AsInt32(), r[2].ToString()}] = num;
        next_table_number_ = std::max(next_table_number_, num + 1);
      }
    }
  }
  // Layout-private state (provisioned tables, versions, trashcan flag)
  // comes from the recovered catalog — before any Mapping() is built.
  MTDB_RETURN_IF_ERROR(RecoverDerivedState());
  InvalidateMappings();
  // Row-id counters resume past the highest id present in the data.
  // Source 0 is probed without the `del` visibility predicate so
  // trashcan-deleted rows keep their ids reserved.
  for (auto& [tenant, entry] : tenants_) {
    for (const LogicalTable& t : app_->tables()) {
      MTDB_ASSIGN_OR_RETURN(const TableMapping* mapping,
                            Mapping(tenant, t.name));
      if (mapping->sources.empty() ||
          mapping->sources[0].row_column.empty()) {
        continue;
      }
      const PhysicalSource& source = mapping->sources[0];
      sql::SelectStmt probe;
      sql::SelectItem item;
      item.expr = sql::MakeColumnRef("", source.row_column);
      probe.items.push_back(std::move(item));
      sql::TableRef ref;
      ref.table_name = source.physical_table;
      probe.from.push_back(std::move(ref));
      sql::ParsedExprPtr where;
      for (const auto& [col, val] : source.partition) {
        if (IdentEquals(col, "del")) continue;
        where = sql::AndTogether(
            std::move(where),
            sql::MakeBinary(sql::BinaryOp::kEq, sql::MakeColumnRef("", col),
                            sql::MakeLiteral(val)));
      }
      probe.where = std::move(where);
      MTDB_ASSIGN_OR_RETURN(QueryResult rows, db_->QueryAst(probe, {}));
      int64_t next = 0;
      for (const Row& r : rows.rows) {
        if (!r[0].is_null()) next = std::max(next, r[0].AsInt64() + 1);
      }
      if (next > 0) entry.next_row[IdentLower(t.name)] = next;
    }
  }
  return Status::OK();
}

std::vector<TenantId> SchemaMapping::TenantIds() const {
  std::shared_lock<SharedLatch> lock(layer_mu_);
  std::vector<TenantId> out;
  out.reserve(tenants_.size());
  for (const auto& [id, _] : tenants_) out.push_back(id);
  return out;
}

Result<std::vector<std::string>> SchemaMapping::TenantExtensions(
    TenantId tenant) const {
  std::shared_lock<SharedLatch> lock(layer_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("no such tenant: " + std::to_string(tenant));
  }
  return it->second.state.extensions();
}

bool SchemaMapping::IsQuarantined(TenantId tenant) const {
  std::shared_lock<SharedLatch> lock(layer_mu_);
  auto it = tenants_.find(tenant);
  return it != tenants_.end() &&
         it->second.breaker.state() != BreakerState::kClosed;
}

BreakerState SchemaMapping::TenantBreakerState(TenantId tenant) const {
  std::shared_lock<SharedLatch> lock(layer_mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? BreakerState::kClosed
                              : it->second.breaker.state();
}

Status SchemaMapping::ClearQuarantine(TenantId tenant) {
  std::shared_lock<SharedLatch> lock(layer_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("no such tenant: " + std::to_string(tenant));
  }
  it->second.breaker.ForceClose();
  return Status::OK();
}

CircuitBreaker::Options SchemaMapping::BreakerOptions() const {
  CircuitBreaker::Options o;
  o.threshold = quarantine_threshold_.load(std::memory_order_relaxed);
  o.initial_backoff_ns =
      breaker_backoff_initial_ns_.load(std::memory_order_relaxed);
  o.max_backoff_ns = breaker_backoff_max_ns_.load(std::memory_order_relaxed);
  return o;
}

Status SchemaMapping::CheckTenantAvailable(TenantId tenant, ProbeGuard* probe) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return Status::OK();
  uint64_t retry_after_ns = 0;
  switch (it->second.breaker.Admit(NowNs(), BreakerOptions(),
                                   &retry_after_ns)) {
    case CircuitBreaker::Decision::kAllow:
      return Status::OK();
    case CircuitBreaker::Decision::kAllowProbe:
      // The backoff elapsed: this statement probes the tenant's pages;
      // its outcome (NoteTenantOutcome) closes or re-opens the breaker.
      // The guard takes the slot back if the statement aborts before an
      // outcome exists; outcome-less callers hand it back right away.
      if (probe != nullptr) {
        probe->breaker_ = &it->second.breaker;
      } else {
        it->second.breaker.AbandonProbe();
      }
      if (db_ != nullptr) {
        db_->metrics_registry()
            ->GetCounter("breaker.half_open.t" + std::to_string(tenant))
            ->Add(1);
      }
      return Status::OK();
    case CircuitBreaker::Decision::kReject:
      break;
  }
  return Status::Unavailable(
      "tenant " + std::to_string(tenant) +
      " is quarantined after repeated I/O faults (circuit open); "
      "retry_after_ms=" +
      std::to_string(retry_after_ns / 1'000'000 + 1));
}

void SchemaMapping::NoteTenantOutcome(TenantId tenant, const Status& status) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  TenantEntry& entry = it->second;
  if (!status.ok() && status.code() == StatusCode::kDeadlineExceeded &&
      db_ != nullptr) {
    db_->metrics_registry()
        ->GetCounter("deadline.exceeded.t" + std::to_string(tenant))
        ->Add(1);
  }
  // Only hard I/O faults strike the breaker: logical errors (NotFound,
  // constraint violations, deadline expiry, ...) say nothing about the
  // tenant's pages, so they count as proof of service — they reset the
  // strikes and close a half-open probe.
  const bool hard_fault = !status.ok() &&
                          (status.code() == StatusCode::kIOError ||
                           status.code() == StatusCode::kDataLoss);
  switch (entry.breaker.OnResult(hard_fault, NowNs(), BreakerOptions())) {
    case CircuitBreaker::Transition::kOpened:
      stats_.quarantine_trips++;
      if (db_ != nullptr) {
        db_->metrics_registry()
            ->GetCounter("breaker.open.t" + std::to_string(tenant))
            ->Add(1);
      }
      break;
    case CircuitBreaker::Transition::kClosed:
      if (db_ != nullptr) {
        db_->metrics_registry()
            ->GetCounter("breaker.close.t" + std::to_string(tenant))
            ->Add(1);
      }
      break;
    case CircuitBreaker::Transition::kNone:
      break;
  }
}

Result<SchemaMapping::TenantEntry*> SchemaMapping::GetTenant(TenantId tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("no such tenant: " + std::to_string(tenant));
  }
  return &it->second;
}

Result<EffectiveTable> SchemaMapping::GetEffective(TenantId tenant,
                                                   const std::string& table) {
  MTDB_ASSIGN_OR_RETURN(TenantEntry * entry, GetTenant(tenant));
  return EffectiveSchemaOf(*app_, entry->state, table);
}

Result<std::vector<std::pair<std::string, TypeId>>>
SchemaMapping::LogicalColumns(TenantId tenant, const std::string& table) {
  MTDB_ASSIGN_OR_RETURN(EffectiveTable eff, GetEffective(tenant, table));
  std::vector<std::pair<std::string, TypeId>> out;
  for (const LogicalColumn& c : eff.columns) {
    out.emplace_back(c.name, c.type);
  }
  return out;
}

Result<const TableMapping*> SchemaMapping::Mapping(TenantId tenant,
                                                   const std::string& table) {
  // Returned pointers stay valid until the next InvalidateMappings();
  // statement paths hold the layer latch shared, which keeps admin DDL
  // (the only invalidator) out for the duration of the statement.
  std::lock_guard<Latch> lock(cache_mu_);
  auto key = std::make_pair(tenant, IdentLower(table));
  auto it = mapping_cache_.find(key);
  if (it != mapping_cache_.end()) return it->second.get();
  // BuildMapping may lazily run physical DDL; an automatic checkpoint
  // inside that DDL would take the txn gate exclusively while this
  // latch is held — a rank inversion — so defer it.
  AutoCheckpointDeferral no_ckpt;
  MTDB_ASSIGN_OR_RETURN(std::unique_ptr<TableMapping> m,
                        BuildMapping(tenant, table));
  const TableMapping* raw = m.get();
  mapping_cache_.emplace(std::move(key), std::move(m));
  return raw;
}

void SchemaMapping::InvalidateMappings() {
  std::lock_guard<Latch> lock(cache_mu_);
  mapping_cache_.clear();
}

void SchemaMapping::NotifySelect(TenantId tenant, const sql::SelectStmt& stmt) {
  if (ExplainSink* sink = CurrentExplainSink()) {
    // Explain-only statements never reach the observer: they are not
    // "about to be executed" (Phase (a) reads excepted, which ARE
    // executed but belong to the explain, not to real traffic).
    PhysicalStatementPlan plan;
    plan.op = "select";
    plan.table = sql::FirstTableOf(stmt);
    plan.sql = sql::ToSql(stmt);
    sink->out->push_back(std::move(plan));
    return;
  }
  PhysicalStatementObserver* obs = observer_.load(std::memory_order_acquire);
  if (obs != nullptr) obs->OnSelect(tenant, stmt);
}

void SchemaMapping::NotifyStatement(TenantId tenant,
                                    const sql::Statement& stmt) {
  if (ExplainSink* sink = CurrentExplainSink()) {
    PhysicalStatementPlan plan;
    plan.op = sql::KindLabel(stmt.kind);
    plan.table = sql::FirstTableOf(stmt);
    plan.sql = sql::ToSql(stmt);
    sink->out->push_back(std::move(plan));
    return;
  }
  PhysicalStatementObserver* obs = observer_.load(std::memory_order_acquire);
  if (obs != nullptr) obs->OnStatement(tenant, stmt);
}

int32_t SchemaMapping::TableNumber(TenantId tenant, const std::string& table) {
  std::lock_guard<Latch> lock(table_number_mu_);
  auto key = std::make_pair(tenant, IdentLower(table));
  auto it = table_numbers_.find(key);
  if (it != table_numbers_.end()) return it->second;
  int32_t id = next_table_number_++;
  table_numbers_.emplace(std::move(key), id);
  return id;
}

Result<QueryResult> SchemaMapping::Query(TenantId tenant,
                                         const std::string& sql,
                                         const std::vector<Value>& params) {
  std::shared_lock<SharedLatch> lock(layer_mu_);
  ProbeGuard probe;
  MTDB_RETURN_IF_ERROR(CheckTenantAvailable(tenant, &probe));
  MTDB_ASSIGN_OR_RETURN(auto stmt, sql::ParseSelect(sql));
  QueryTransformer transformer(this, transform_options_, &heat_);
  MTDB_ASSIGN_OR_RETURN(auto physical,
                        transformer.TransformSelect(tenant, *stmt));
  stats_.queries_transformed++;
  NotifySelect(tenant, *physical);
  Result<QueryResult> out = db_->QueryAst(*physical, params);
  probe.Disarm();
  NoteTenantOutcome(tenant, out.status());
  return out;
}

Result<std::string> SchemaMapping::ShowTransformed(TenantId tenant,
                                                   const std::string& sql) {
  std::shared_lock<SharedLatch> lock(layer_mu_);
  MTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (stmt.kind != sql::StatementKind::kSelect) {
    return Status::NotImplemented(
        "ShowTransformed supports SELECT statements");
  }
  QueryTransformer transformer(this, transform_options_);
  MTDB_ASSIGN_OR_RETURN(auto physical,
                        transformer.TransformSelect(tenant, *stmt.select));
  return sql::ToSql(*physical);
}

Result<MappingExplanation> SchemaMapping::ExplainMapping(
    TenantId tenant, const std::string& sql, const std::vector<Value>& params) {
  MTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  return ExplainMapping(tenant, stmt, params);
}

Result<MappingExplanation> SchemaMapping::ExplainMapping(
    TenantId tenant, const sql::Statement& stmt,
    const std::vector<Value>& params) {
  const sql::Statement* target = &stmt;
  if (stmt.kind == sql::StatementKind::kExplainMapping) {
    target = stmt.explain->target.get();
  }
  std::shared_lock<SharedLatch> lock(layer_mu_);
  // No ProbeGuard: an explain never reports an outcome, so the probe
  // slot (if this arrival won it) is handed straight back inside
  // CheckTenantAvailable — real traffic decides the tenant's fate.
  MTDB_RETURN_IF_ERROR(CheckTenantAvailable(tenant));

  MappingExplanation out;
  out.layout = name();
  out.tenant = tenant;
  out.logical = sql::ToSql(*target);
  ExplainSink sink;
  sink.out = &out.statements;
  ExplainScope scope(&sink);
  switch (target->kind) {
    case sql::StatementKind::kSelect: {
      // Same transformation Query() runs, minus heat recording (an
      // explain is not application traffic).
      QueryTransformer transformer(this, transform_options_);
      MTDB_ASSIGN_OR_RETURN(auto physical,
                            transformer.TransformSelect(tenant, *target->select));
      NotifySelect(tenant, *physical);
      MTDB_ASSIGN_OR_RETURN(out.plan_text, db_->ExplainAst(*physical));
      break;
    }
    case sql::StatementKind::kInsert:
      MTDB_RETURN_IF_ERROR(
          GenericInsert(tenant, *target->insert, params).status());
      break;
    case sql::StatementKind::kUpdate:
      MTDB_RETURN_IF_ERROR(
          GenericUpdate(tenant, *target->update, params).status());
      break;
    case sql::StatementKind::kDelete:
      MTDB_RETURN_IF_ERROR(
          GenericDelete(tenant, *target->del, params).status());
      break;
    default:
      return Status::InvalidArgument(
          "EXPLAIN MAPPING supports SELECT/INSERT/UPDATE/DELETE");
  }
  return out;
}

Result<int64_t> SchemaMapping::Execute(TenantId tenant, const std::string& sql,
                                       const std::vector<Value>& params) {
  std::shared_lock<SharedLatch> lock(layer_mu_);
  ProbeGuard probe;
  MTDB_RETURN_IF_ERROR(CheckTenantAvailable(tenant, &probe));
  // Row-lock scope for this write statement (DESIGN.md §15). Inside a
  // client bracket the locks join the transaction's holder and survive
  // until COMMIT/ROLLBACK; otherwise they are statement-duration and the
  // scope's destructor — which runs after the Generic* bodies have
  // rolled back or finished their undo log — releases them.
  txn::TransactionContext* txn = txn::TransactionContext::Current();
  lock::StatementLockContext locks(
      db_->lock_manager(), tenant,
      txn != nullptr ? txn->EnsureLockHolder() : 0);
  MTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  stats_.statements_transformed++;
  Result<int64_t> out = [&]() -> Result<int64_t> {
    switch (stmt.kind) {
      case sql::StatementKind::kInsert:
        return GenericInsert(tenant, *stmt.insert, params);
      case sql::StatementKind::kUpdate:
        return GenericUpdate(tenant, *stmt.update, params);
      case sql::StatementKind::kDelete:
        return GenericDelete(tenant, *stmt.del, params);
      default:
        return Status::InvalidArgument(
            "logical Execute() handles INSERT/UPDATE/DELETE");
    }
  }();
  probe.Disarm();
  NoteTenantOutcome(tenant, out.status());
  return out;
}

Result<int64_t> SchemaMapping::InsertRow(TenantId tenant,
                                         const std::string& table,
                                         const Row& row) {
  std::shared_lock<SharedLatch> lock(layer_mu_);
  ProbeGuard probe;
  MTDB_RETURN_IF_ERROR(CheckTenantAvailable(tenant, &probe));
  // See Execute(): same row-lock scope around the structured insert.
  txn::TransactionContext* txn = txn::TransactionContext::Current();
  lock::StatementLockContext locks(
      db_->lock_manager(), tenant,
      txn != nullptr ? txn->EnsureLockHolder() : 0);
  MTDB_ASSIGN_OR_RETURN(EffectiveTable eff, GetEffective(tenant, table));
  std::vector<std::string> columns;
  for (size_t i = 0; i < row.size() && i < eff.columns.size(); ++i) {
    columns.push_back(eff.columns[i].name);
  }
  Result<int64_t> out = InsertMappedRow(tenant, table, columns, row);
  probe.Disarm();
  NoteTenantOutcome(tenant, out.status());
  return out;
}

Result<int64_t> SchemaMapping::GenericInsert(TenantId tenant,
                                             const sql::InsertStmt& stmt,
                                             const std::vector<Value>& params) {
  MTDB_ASSIGN_OR_RETURN(EffectiveTable eff, GetEffective(tenant, stmt.table));
  std::vector<std::string> columns = stmt.columns;
  if (columns.empty()) {
    for (const LogicalColumn& c : eff.columns) columns.push_back(c.name);
  }
  // A multi-row VALUES list is one logical statement: collect every
  // applied physical insert in one undo log so a failed later row takes
  // the earlier rows back out with it.
  StatementUndoLog undo(db_);
  const bool multi_row = stmt.rows.size() > 1;
  auto fail = [&](const Status& st) -> Status {
    if (!undo.empty()) {
      stats_.statement_rollbacks++;
      (void)undo.Rollback();
      stats_.undo_statements += undo.executed();
    }
    (void)undo.Finish();
    return st;
  };
  int64_t inserted = 0;
  for (const auto& row_exprs : stmt.rows) {
    // Deadline checkpoint between logical rows: an expired statement
    // stops here and fail() takes the applied rows back out.
    if (Status dl = deadline::Check(); !dl.ok()) return fail(dl);
    if (row_exprs.size() != columns.size()) {
      return fail(Status::InvalidArgument("VALUES arity mismatch"));
    }
    Row values;
    values.reserve(row_exprs.size());
    for (const auto& e : row_exprs) {
      Result<Value> v = EvalScalar(*e, nullptr, nullptr, params);
      if (!v.ok()) return fail(v.status());
      values.push_back(*std::move(v));
    }
    // Inside a client transaction (undo.bound()) every row records undo
    // even for a single-row statement: the transaction may roll this
    // statement back long after it succeeded.
    Result<int64_t> n =
        InsertMappedRow(tenant, stmt.table, columns, values,
                        (multi_row || undo.bound()) ? &undo : nullptr);
    if (!n.ok()) return fail(n.status());
    inserted += *n;
  }
  MTDB_RETURN_IF_ERROR(undo.Finish());
  return inserted;
}

namespace {

/// partition AND row = row_id: the locality predicate addressing one
/// logical row's chunk in one physical source. `skip_del` drops `del`
/// partition entries (trashcan compensations flip visibility themselves).
sql::ParsedExprPtr RowLocalPredicate(const PhysicalSource& source,
                                     int64_t row_id, bool skip_del = false) {
  sql::ParsedExprPtr where;
  for (const auto& p : source.partition) {
    if (skip_del && IdentEquals(p.first, "del")) continue;
    where = sql::AndTogether(
        std::move(where),
        sql::MakeBinary(sql::BinaryOp::kEq, sql::MakeColumnRef("", p.first),
                        sql::MakeLiteral(p.second)));
  }
  if (!source.row_column.empty()) {
    where = sql::AndTogether(
        std::move(where),
        sql::MakeBinary(sql::BinaryOp::kEq,
                        sql::MakeColumnRef("", source.row_column),
                        sql::MakeLiteral(Value::Int64(row_id))));
  }
  return where;
}

/// Compensation for a physical INSERT: a DELETE addressing exactly the
/// inserted chunk. Sources without a row column (single-source layouts)
/// fall back to matching every value the insert wrote.
sql::Statement CompensatingDelete(const PhysicalSource& source,
                                  const Schema& schema,
                                  const Row& physical_row, int64_t row_id) {
  sql::Statement s;
  s.kind = sql::StatementKind::kDelete;
  s.del = std::make_unique<sql::DeleteStmt>();
  s.del->table = source.physical_table;
  if (!source.row_column.empty()) {
    s.del->where = RowLocalPredicate(source, row_id);
  } else {
    sql::ParsedExprPtr where;
    for (size_t i = 0; i < physical_row.size() && i < schema.size(); ++i) {
      if (physical_row[i].is_null()) continue;
      where = sql::AndTogether(
          std::move(where),
          sql::MakeBinary(sql::BinaryOp::kEq,
                          sql::MakeColumnRef("", schema.at(i).name),
                          sql::MakeLiteral(physical_row[i])));
    }
    s.del->where = std::move(where);
  }
  return s;
}

/// Compensation for a physical UPDATE: an UPDATE writing the prior
/// values back into the same chunk.
sql::Statement CompensatingUpdate(
    const PhysicalSource& source, int64_t row_id,
    std::vector<std::pair<std::string, Value>> old_assigns) {
  sql::Statement s;
  s.kind = sql::StatementKind::kUpdate;
  s.update = std::make_unique<sql::UpdateStmt>();
  s.update->table = source.physical_table;
  for (auto& [col, val] : old_assigns) {
    s.update->assignments.emplace_back(col, sql::MakeLiteral(val));
  }
  s.update->where = RowLocalPredicate(source, row_id);
  return s;
}

/// Compensation for a trashcan DELETE (an UPDATE del=1): flip the row
/// back to visible.
sql::Statement CompensatingRestore(const PhysicalSource& source,
                                   int64_t row_id) {
  sql::Statement s;
  s.kind = sql::StatementKind::kUpdate;
  s.update = std::make_unique<sql::UpdateStmt>();
  s.update->table = source.physical_table;
  s.update->assignments.emplace_back("del",
                                     sql::MakeLiteral(Value::Int32(0)));
  s.update->where = RowLocalPredicate(source, row_id, /*skip_del=*/true);
  return s;
}

/// Compensation for a physical DELETE: re-INSERT the chunk image this
/// source held for the logical row (reconstructed from the Phase (a)
/// logical row exactly the way InsertMappedRow would have written it).
sql::Statement CompensatingInsert(const TableMapping& mapping, size_t src,
                                  const EffectiveTable& eff,
                                  const Row& logical, int64_t row_id) {
  const PhysicalSource& source = mapping.sources[src];
  sql::Statement s;
  s.kind = sql::StatementKind::kInsert;
  s.insert = std::make_unique<sql::InsertStmt>();
  s.insert->table = source.physical_table;
  std::vector<sql::ParsedExprPtr> vals;
  for (const auto& [col, val] : source.partition) {
    s.insert->columns.push_back(col);
    vals.push_back(sql::MakeLiteral(val));
  }
  if (!source.row_column.empty()) {
    s.insert->columns.push_back(source.row_column);
    vals.push_back(sql::MakeLiteral(Value::Int64(row_id)));
  }
  for (const auto& [lname, target] : mapping.columns) {
    if (target.source != src) continue;
    auto pos = eff.Find(lname);
    if (!pos.has_value() || *pos >= logical.size()) continue;
    Value v = logical[*pos];
    if (v.is_null()) continue;
    Result<Value> cast = v.CastTo(target.physical_type);
    if (cast.ok()) v = *std::move(cast);
    s.insert->columns.push_back(target.physical_column);
    vals.push_back(sql::MakeLiteral(std::move(v)));
  }
  s.insert->rows.push_back(std::move(vals));
  return s;
}

}  // namespace

Result<int64_t> SchemaMapping::InsertMappedRow(
    TenantId tenant, const std::string& table,
    const std::vector<std::string>& columns, const Row& values,
    StatementUndoLog* caller_undo) {
  if (columns.size() != values.size()) {
    return Status::InvalidArgument("column/value count mismatch");
  }
  MTDB_ASSIGN_OR_RETURN(TenantEntry * entry, GetTenant(tenant));
  MTDB_ASSIGN_OR_RETURN(const TableMapping* mapping, Mapping(tenant, table));

  // Assign the logical row id (§6.3: "assign each inserted new row a
  // unique row identifier"). The counter is per tenant, so concurrent
  // sessions of one tenant serialize only on this small lock.
  bool needs_row = false;
  for (const PhysicalSource& s : mapping->sources) {
    if (!s.row_column.empty()) needs_row = true;
  }
  int64_t row_id = 0;
  if (needs_row) {
    std::lock_guard<Latch> row_lock(entry->row_mu);
    if (ExplainSink* sink = CurrentExplainSink()) {
      // Peek the id the insert WOULD get without consuming it; the
      // per-table offset keeps a multi-row explain's ids consecutive.
      row_id = entry->next_row[IdentLower(table)] +
               sink->row_offsets[IdentLower(table)]++;
    } else {
      row_id = entry->next_row[IdentLower(table)]++;
    }
  }

  // §15: inserts lock before the first undo Stage(), like updates. With
  // row ids the per-row X lock is on a fresh id — it can never block —
  // and the table intent can only wait on the first row of a statement
  // (later rows re-probe an owned lock), so a blocked wait never pins
  // the txn gate. Without row ids the whole-table X is the write lock.
  if (lock::StatementLockContext* locks = lock::StatementLockContext::Current();
      locks != nullptr && locks->enabled() && !Explaining()) {
    if (needs_row) {
      MTDB_RETURN_IF_ERROR(
          locks->LockTable(IdentLower(table), lock::LockMode::kIntentX));
      MTDB_RETURN_IF_ERROR(locks->LockRow(IdentLower(table), row_id));
    } else {
      MTDB_RETURN_IF_ERROR(
          locks->LockTable(IdentLower(table), lock::LockMode::kX));
    }
  }

  // Value per logical column (lower-cased name).
  std::unordered_map<std::string, const Value*> provided;
  for (size_t i = 0; i < columns.size(); ++i) {
    provided[IdentLower(columns[i])] = &values[i];
  }

  // One physical insert per source. A multi-source mapping spreads the
  // logical row over several physical statements; the undo log reverts
  // the ones already applied if a later one fails, so the logical insert
  // is all-or-nothing (single-source statements are already atomic in
  // the engine and skip the bookkeeping).
  StatementUndoLog local_undo(db_);
  StatementUndoLog* undo = caller_undo != nullptr ? caller_undo : &local_undo;
  const bool multi_source = mapping->sources.size() > 1;
  // Every physical insert of a multi-statement logical insert stages its
  // compensation (including the last: a crash before the txn-end record
  // must roll the WHOLE logical insert back, not strand its last chunk).
  const bool needs_undo =
      caller_undo != nullptr || multi_source || undo->bound();
  const bool explaining = Explaining();
  auto fail = [&](const Status& st) -> Status {
    // With a caller-owned log the caller rolls back the whole statement.
    if (caller_undo == nullptr) {
      if (!local_undo.empty()) {
        stats_.statement_rollbacks++;
        (void)local_undo.Rollback();
        stats_.undo_statements += local_undo.executed();
      }
      (void)local_undo.Finish();
    }
    return st;
  };
  for (size_t src = 0; src < mapping->sources.size(); ++src) {
    // Deadline checkpoint between the physical statements of one
    // logical insert: the undo log makes the cut all-or-nothing.
    if (!explaining) {
      if (Status dl = deadline::Check(); !dl.ok()) return fail(dl);
    }
    const PhysicalSource& source = mapping->sources[src];
    TableInfo* phys = db_->catalog()->GetTable(source.physical_table);
    if (phys == nullptr) {
      return fail(Status::Internal("physical table missing: " +
                                   source.physical_table));
    }
    Row physical_row(phys->schema.size(), Value());
    // Partition (meta-data) values.
    for (const auto& [col, val] : source.partition) {
      auto pos = phys->schema.Find(col);
      if (!pos.has_value()) {
        return fail(Status::Internal("partition column missing: " + col));
      }
      physical_row[*pos] = val;
    }
    if (!source.row_column.empty()) {
      auto pos = phys->schema.Find(source.row_column);
      if (!pos.has_value()) {
        return fail(
            Status::Internal("row column missing: " + source.row_column));
      }
      physical_row[*pos] = Value::Int64(row_id);
    }
    // Data values routed to this source.
    for (const auto& [lname, target] : mapping->columns) {
      if (target.source != src) continue;
      auto it = provided.find(lname);
      if (it == provided.end() || it->second->is_null()) continue;
      auto pos = phys->schema.Find(target.physical_column);
      if (!pos.has_value()) {
        return fail(Status::Internal("physical column missing: " +
                                     target.physical_column));
      }
      Result<Value> cast = it->second->CastTo(target.physical_type);
      if (!cast.ok()) return fail(cast.status());
      physical_row[*pos] = *std::move(cast);
    }
    if (explaining || observer_.load(std::memory_order_acquire) != nullptr) {
      // Physical inserts go through the engine's row API, so the INSERT
      // the engine would otherwise parse is synthesized here for the
      // observer / EXPLAIN MAPPING sink (built only when someone looks).
      sql::Statement ins;
      ins.kind = sql::StatementKind::kInsert;
      ins.insert = std::make_unique<sql::InsertStmt>();
      ins.insert->table = source.physical_table;
      std::vector<sql::ParsedExprPtr> vals;
      for (size_t i = 0; i < physical_row.size() && i < phys->schema.size();
           ++i) {
        if (physical_row[i].is_null()) continue;
        ins.insert->columns.push_back(phys->schema.at(i).name);
        vals.push_back(sql::MakeLiteral(physical_row[i]));
      }
      ins.insert->rows.push_back(std::move(vals));
      NotifyStatement(tenant, ins);
    }
    if (explaining) continue;  // never execute under EXPLAIN MAPPING
    if (needs_undo) {
      Status sst = undo->Stage(
          CompensatingDelete(source, phys->schema, physical_row, row_id));
      if (!sst.ok()) return fail(sst);
    }
    Status ist = db_->InsertRow(source.physical_table, physical_row);
    if (!ist.ok()) return fail(ist);
    stats_.physical_statements++;
    if (needs_undo) undo->Commit();
  }
  if (caller_undo == nullptr) MTDB_RETURN_IF_ERROR(local_undo.Finish());
  return 1;
}

Result<std::vector<SchemaMapping::AffectedRow>> SchemaMapping::CollectAffected(
    TenantId tenant, const std::string& table, const sql::ParsedExpr* where,
    const std::vector<Value>& params) {
  MTDB_ASSIGN_OR_RETURN(EffectiveTable eff, GetEffective(tenant, table));
  MTDB_ASSIGN_OR_RETURN(const TableMapping* mapping, Mapping(tenant, table));

  std::vector<std::string> cols;
  std::vector<TypeId> types;
  for (const LogicalColumn& c : eff.columns) {
    cols.push_back(c.name);
    types.push_back(c.type);
  }
  // Phase (a): a reconstruction query exposing the row id plus the full
  // logical row, filtered by the (logical) WHERE clause.
  sql::SelectStmt outer;
  sql::TableRef ref;
  ref.subquery = BuildReconstruction(*mapping, cols, types, "_row");
  ref.alias = table;
  outer.from.push_back(std::move(ref));
  {
    sql::SelectItem item;
    item.expr = sql::MakeColumnRef(table, "_row");
    item.alias = "_row";
    outer.items.push_back(std::move(item));
  }
  for (const std::string& c : cols) {
    sql::SelectItem item;
    item.expr = sql::MakeColumnRef(table, c);
    item.alias = c;
    outer.items.push_back(std::move(item));
  }
  if (where != nullptr) outer.where = where->Clone();

  NotifySelect(tenant, outer);
  MTDB_ASSIGN_OR_RETURN(QueryResult result, db_->QueryAst(outer, params));
  std::vector<AffectedRow> out;
  out.reserve(result.rows.size());
  for (Row& r : result.rows) {
    AffectedRow a;
    a.row_id = r[0].is_null() ? -1 : r[0].AsInt64();
    a.logical.assign(r.begin() + 1, r.end());
    out.push_back(std::move(a));
  }
  if (post_collect_hook_for_test_) post_collect_hook_for_test_();
  return out;
}

uint64_t SchemaMapping::PreCollectLockEpoch(const std::string& table) const {
  lock::StatementLockContext* locks = lock::StatementLockContext::Current();
  if (locks == nullptr || !locks->enabled() || Explaining()) return 0;
  return locks->TableWriteEpoch(IdentLower(table));
}

Status SchemaMapping::LockAffectedRows(TenantId tenant,
                                       const std::string& table,
                                       bool rows_lockable,
                                       std::vector<AffectedRow>* affected,
                                       const sql::ParsedExpr* where,
                                       const std::vector<Value>& params,
                                       uint64_t collect_epoch) {
  lock::StatementLockContext* locks = lock::StatementLockContext::Current();
  if (locks == nullptr || !locks->enabled() || Explaining()) {
    return Status::OK();
  }
  const std::string key = IdentLower(table);
  // A NULL row column maps to row_id -1 (== lock::kTableRowId): such
  // rows have no lockable identity, so their presence degrades the set
  // to table granularity.
  auto has_null_row_ids = [](const std::vector<AffectedRow>& rows) {
    for (const AffectedRow& r : rows) {
      if (r.row_id < 0) return true;
    }
    return false;
  };
  // Freshness protocol: collect and acquire are not atomic, so a winner
  // can write, commit and RELEASE entirely inside the gap — this
  // statement's acquisitions then never block, yet its images and the
  // compensations staged from them are stale (a silent lost update on
  // the winner's committed values). Every X release bumps the shard's
  // write epoch before any waiter is granted, so "epoch still equals
  // the pre-collect snapshot once the locks are held" proves no such
  // window existed; any movement (a superset of waited()) re-runs
  // Phase (a) under the locks now held.
  if (!rows_lockable || has_null_row_ids(*affected)) {
    // No row ids: rows are addressed by value, so the honest lock
    // granularity is the whole (tenant, table). Still per tenant —
    // co-located tenants in shared physical tables never contend.
    locks->clear_waited();
    MTDB_RETURN_IF_ERROR(locks->LockTable(key, lock::LockMode::kX));
    if (locks->waited() || locks->TableWriteEpoch(key) != collect_epoch) {
      MTDB_ASSIGN_OR_RETURN(*affected,
                            CollectAffected(tenant, table, where, params));
    }
    return Status::OK();
  }
  // Single-row fast path: the common OLTP write touches one row, so
  // take the table intent and the row lock in one combined shard visit
  // and skip the fixed-point bookkeeping (set, sort, dedup) entirely —
  // unless the epoch moved; only then can a winner have changed which
  // rows match or what they contain, forcing the re-collect below.
  if (affected->size() == 1) {
    locks->clear_waited();
    MTDB_RETURN_IF_ERROR(
        locks->LockRowWithIntent(key, affected->front().row_id));
    if (!locks->waited() && locks->TableWriteEpoch(key) == collect_epoch) {
      return Status::OK();
    }
    collect_epoch = locks->TableWriteEpoch(key);  // before the re-collect
    MTDB_ASSIGN_OR_RETURN(*affected,
                          CollectAffected(tenant, table, where, params));
    // Fall through to the general loop; the locks taken above stay held
    // and re-acquiring them there is an idempotent probe.
  }
  MTDB_RETURN_IF_ERROR(locks->LockTable(key, lock::LockMode::kIntentX));
  std::set<int64_t> locked;
  // Bounded fixed-point loop: lock the affected rows in ascending row-id
  // order (deterministic order keeps same-statement deadlocks out);
  // whenever the epoch moved past the snapshot taken before the pass's
  // row set was collected, re-run Phase (a) and lock any newcomers too.
  for (int pass = 0; pass < 8; ++pass) {
    locks->clear_waited();
    std::vector<int64_t> todo;
    for (const AffectedRow& r : *affected) {
      if (locked.find(r.row_id) == locked.end()) todo.push_back(r.row_id);
    }
    std::sort(todo.begin(), todo.end());
    todo.erase(std::unique(todo.begin(), todo.end()), todo.end());
    for (int64_t row : todo) {
      MTDB_RETURN_IF_ERROR(locks->LockRow(key, row));
      locked.insert(row);
    }
    if (!locks->waited() && locks->TableWriteEpoch(key) == collect_epoch) {
      return Status::OK();
    }
    collect_epoch = locks->TableWriteEpoch(key);  // before the re-collect
    MTDB_ASSIGN_OR_RETURN(*affected,
                          CollectAffected(tenant, table, where, params));
    if (has_null_row_ids(*affected)) break;
    bool all_locked = true;
    for (const AffectedRow& r : *affected) {
      if (locked.find(r.row_id) == locked.end()) all_locked = false;
    }
    // Every re-collected row already X-held: the images are current
    // (each row has been held since before the re-collect read it) and
    // stable, so the set is final — later committers serialize after us.
    if (all_locked) return Status::OK();
  }
  // Adversarial churn (or NULL row ids surfacing mid-chase): stop
  // chasing the row-level fixed point and escalate to the whole-table X
  // lock. Once granted, no other writer holds or can take any lock on
  // this (tenant, table) — prior winners released (bumping the epoch)
  // before our grant — so one final Phase (a) run is authoritative
  // rather than a pass stale. The escalation can deadlock against a
  // peer doing the same; the wait-for graph resolves that by aborting
  // the younger, which is acceptable on this pathological path.
  MTDB_RETURN_IF_ERROR(locks->LockTable(key, lock::LockMode::kX));
  MTDB_ASSIGN_OR_RETURN(*affected,
                        CollectAffected(tenant, table, where, params));
  return Status::OK();
}

namespace {

/// partition AND (row = r1 OR row = r2 OR ...) for one batch.
sql::ParsedExprPtr RowBatchPredicate(const PhysicalSource& source,
                                     const std::vector<int64_t>& rows,
                                     size_t begin, size_t end) {
  sql::ParsedExprPtr where;
  for (const auto& p : source.partition) {
    where = sql::AndTogether(
        std::move(where),
        sql::MakeBinary(sql::BinaryOp::kEq, sql::MakeColumnRef("", p.first),
                        sql::MakeLiteral(p.second)));
  }
  sql::ParsedExprPtr row_set;
  for (size_t i = begin; i < end; ++i) {
    sql::ParsedExprPtr eq = sql::MakeBinary(
        sql::BinaryOp::kEq, sql::MakeColumnRef("", source.row_column),
        sql::MakeLiteral(Value::Int64(rows[i])));
    row_set = row_set == nullptr
                  ? std::move(eq)
                  : sql::MakeBinary(sql::BinaryOp::kOr, std::move(row_set),
                                    std::move(eq));
  }
  return sql::AndTogether(std::move(where), std::move(row_set));
}

/// True when the expression never reads the old row (safe to batch).
bool IsConstantAssignment(const sql::ParsedExpr& e) {
  if (e.kind == sql::PExprKind::kColumnRef) return false;
  if (e.left != nullptr && !IsConstantAssignment(*e.left)) return false;
  if (e.right != nullptr && !IsConstantAssignment(*e.right)) return false;
  for (const auto& a : e.args) {
    if (!IsConstantAssignment(*a)) return false;
  }
  return true;
}

constexpr size_t kDmlBatchSize = 64;

}  // namespace

Result<int64_t> SchemaMapping::GenericUpdate(TenantId tenant,
                                             const sql::UpdateStmt& stmt,
                                             const std::vector<Value>& params) {
  MTDB_ASSIGN_OR_RETURN(EffectiveTable eff, GetEffective(tenant, stmt.table));
  MTDB_ASSIGN_OR_RETURN(const TableMapping* mapping, Mapping(tenant, stmt.table));
  const uint64_t collect_epoch = PreCollectLockEpoch(stmt.table);
  MTDB_ASSIGN_OR_RETURN(
      std::vector<AffectedRow> affected,
      CollectAffected(tenant, stmt.table, stmt.where.get(), params));
  // §15: every affected logical row is X-locked between Phase (a) and
  // Phase (b), before any undo staging (a blocked wait must never pin
  // the txn gate). If the table's write epoch moved since the snapshot
  // above, Phase (a) is re-run under the locks, so the statement always
  // updates the winner's committed image — even when the winner
  // committed and released without ever blocking us.
  MTDB_RETURN_IF_ERROR(LockAffectedRows(
      tenant, stmt.table,
      !mapping->sources.empty() && !mapping->sources[0].row_column.empty(),
      &affected, stmt.where.get(), params, collect_epoch));

  // Resolve assignment targets once (including each target's position in
  // the logical row, which the undo log needs to recover prior values).
  struct ResolvedSet {
    const sql::ParsedExpr* expr;
    ColumnTarget target;
    size_t logical_pos;
  };
  std::vector<ResolvedSet> sets;
  for (const auto& [col, expr] : stmt.assignments) {
    auto it = mapping->columns.find(IdentLower(col));
    if (it == mapping->columns.end()) {
      return Status::NotFound("no logical column " + col + " in " + stmt.table);
    }
    auto lpos = eff.Find(col);
    if (!lpos.has_value()) {
      return Status::NotFound("no logical column " + col + " in " + stmt.table);
    }
    sets.push_back({expr.get(), it->second, *lpos});
  }
  std::set<size_t> touched_sources;
  for (const ResolvedSet& rs : sets) touched_sources.insert(rs.target.source);

  // Prior physical values of one source's touched chunk, read from the
  // Phase (a) logical row — the undo image for that physical UPDATE.
  auto old_assigns_for = [&](size_t src, const Row& logical) {
    std::vector<std::pair<std::string, Value>> out;
    for (const ResolvedSet& rs : sets) {
      if (rs.target.source != src) continue;
      Value old = logical[rs.logical_pos];
      if (!old.is_null()) {
        Result<Value> cast = old.CastTo(rs.target.physical_type);
        if (cast.ok()) old = *std::move(cast);
      }
      out.emplace_back(rs.target.physical_column, std::move(old));
    }
    return out;
  };

  StatementUndoLog undo(db_);
  auto fail = [&](const Status& st) -> Status {
    if (!undo.empty()) {
      stats_.statement_rollbacks++;
      (void)undo.Rollback();
      stats_.undo_statements += undo.executed();
    }
    (void)undo.Finish();
    return st;
  };

  // Under EXPLAIN MAPPING Phase (b) is planned but never run: no undo
  // staging, no ExecuteAst, no stats — NotifyStatement records the plan.
  const bool explaining = Explaining();

  // Batched Phase (b) (§6.3's IN-predicate option): only when every
  // assignment is a constant (all affected rows get the same values).
  bool batchable = dml_mode_ == DmlMode::kBatched;
  for (const ResolvedSet& rs : sets) {
    if (!IsConstantAssignment(*rs.expr)) batchable = false;
  }
  if (batchable && !affected.empty() &&
      !mapping->sources[0].row_column.empty()) {
    std::vector<int64_t> rows;
    rows.reserve(affected.size());
    for (const AffectedRow& r : affected) rows.push_back(r.row_id);
    // Group constant assignments by source.
    std::map<size_t, std::vector<std::pair<std::string, Value>>> by_source;
    for (const ResolvedSet& rs : sets) {
      MTDB_ASSIGN_OR_RETURN(Value v, EvalScalar(*rs.expr, nullptr, nullptr,
                                                params));
      if (!v.is_null()) {
        MTDB_ASSIGN_OR_RETURN(v, v.CastTo(rs.target.physical_type));
      }
      by_source[rs.target.source].push_back({rs.target.physical_column, v});
    }
    const size_t batches = (rows.size() + kDmlBatchSize - 1) / kDmlBatchSize;
    const bool record_undo = by_source.size() * batches > 1 || undo.bound();
    for (auto& [src, assigns] : by_source) {
      const PhysicalSource& source = mapping->sources[src];
      for (size_t begin = 0; begin < rows.size(); begin += kDmlBatchSize) {
        if (!explaining) {
          if (Status dl = deadline::Check(); !dl.ok()) return fail(dl);
        }
        size_t end = std::min(begin + kDmlBatchSize, rows.size());
        sql::Statement phys;
        phys.kind = sql::StatementKind::kUpdate;
        phys.update = std::make_unique<sql::UpdateStmt>();
        phys.update->table = source.physical_table;
        for (auto& [col, val] : assigns) {
          phys.update->assignments.emplace_back(col, sql::MakeLiteral(val));
        }
        phys.update->where = RowBatchPredicate(source, rows, begin, end);
        if (record_undo && !explaining) {
          for (size_t i = begin; i < end; ++i) {
            Status sst = undo.Stage(CompensatingUpdate(
                source, rows[i], old_assigns_for(src, affected[i].logical)));
            if (!sst.ok()) return fail(sst);
          }
        }
        NotifyStatement(tenant, phys);
        if (explaining) continue;
        Result<int64_t> n = db_->ExecuteAst(phys, {});
        if (!n.ok()) return fail(n.status());
        stats_.physical_statements++;
        undo.Commit();
      }
    }
    MTDB_RETURN_IF_ERROR(undo.Finish());
    return static_cast<int64_t>(affected.size());
  }

  // Phase (b): per affected row, one physical UPDATE per touched chunk
  // with local conditions on the meta-data columns and row only.
  const bool record_undo =
      affected.size() * touched_sources.size() > 1 || undo.bound();
  for (const AffectedRow& row : affected) {
    if (!explaining) {
      if (Status dl = deadline::Check(); !dl.ok()) return fail(dl);
    }
    // Group new values by source.
    std::map<size_t, std::vector<std::pair<std::string, Value>>> by_source;
    for (const ResolvedSet& s : sets) {
      Result<Value> v = EvalScalar(*s.expr, &eff, &row.logical, params);
      if (!v.ok()) return fail(v.status());
      if (!v->is_null()) {
        v = v->CastTo(s.target.physical_type);
        if (!v.ok()) return fail(v.status());
      }
      by_source[s.target.source].push_back({s.target.physical_column, *v});
    }
    for (auto& [src, assigns] : by_source) {
      const PhysicalSource& source = mapping->sources[src];
      sql::Statement phys;
      phys.kind = sql::StatementKind::kUpdate;
      phys.update = std::make_unique<sql::UpdateStmt>();
      phys.update->table = source.physical_table;
      for (auto& [col, val] : assigns) {
        phys.update->assignments.emplace_back(col, sql::MakeLiteral(val));
      }
      phys.update->where = RowLocalPredicate(source, row.row_id);
      if (record_undo && !explaining) {
        Status sst = undo.Stage(CompensatingUpdate(
            source, row.row_id, old_assigns_for(src, row.logical)));
        if (!sst.ok()) return fail(sst);
      }
      NotifyStatement(tenant, phys);
      if (explaining) continue;
      Result<int64_t> n = db_->ExecuteAst(phys, {});
      if (!n.ok()) return fail(n.status());
      stats_.physical_statements++;
      undo.Commit();
    }
  }
  MTDB_RETURN_IF_ERROR(undo.Finish());
  return static_cast<int64_t>(affected.size());
}

Result<int64_t> SchemaMapping::GenericDelete(TenantId tenant,
                                             const sql::DeleteStmt& stmt,
                                             const std::vector<Value>& params) {
  MTDB_ASSIGN_OR_RETURN(EffectiveTable eff, GetEffective(tenant, stmt.table));
  MTDB_ASSIGN_OR_RETURN(const TableMapping* mapping, Mapping(tenant, stmt.table));
  const uint64_t collect_epoch = PreCollectLockEpoch(stmt.table);
  MTDB_ASSIGN_OR_RETURN(
      std::vector<AffectedRow> affected,
      CollectAffected(tenant, stmt.table, stmt.where.get(), params));
  // §15: see GenericUpdate — lock the affected rows before Phase (b),
  // re-collecting whenever the write epoch moved past the snapshot.
  MTDB_RETURN_IF_ERROR(LockAffectedRows(
      tenant, stmt.table,
      !mapping->sources.empty() && !mapping->sources[0].row_column.empty(),
      &affected, stmt.where.get(), params, collect_epoch));

  StatementUndoLog undo(db_);
  auto fail = [&](const Status& st) -> Status {
    if (!undo.empty()) {
      stats_.statement_rollbacks++;
      (void)undo.Rollback();
      stats_.undo_statements += undo.executed();
    }
    (void)undo.Finish();
    return st;
  };
  // Compensation for one (row, source) removal: re-insert the chunk, or
  // flip it back to visible when the trashcan only marked it. Staged
  // before the forward statement so a crash mid-delete can replay it.
  auto stage_removal = [&](size_t src, const AffectedRow& row) -> Status {
    if (trashcan_deletes_) {
      return undo.Stage(CompensatingRestore(mapping->sources[src], row.row_id));
    }
    return undo.Stage(
        CompensatingInsert(*mapping, src, eff, row.logical, row.row_id));
  };

  // See GenericUpdate: EXPLAIN MAPPING plans Phase (b) without running it.
  const bool explaining = Explaining();

  // Batched Phase (b): one statement per chunk per batch of rows.
  if (dml_mode_ == DmlMode::kBatched && !affected.empty() &&
      !mapping->sources[0].row_column.empty()) {
    std::vector<int64_t> rows;
    rows.reserve(affected.size());
    for (const AffectedRow& r : affected) rows.push_back(r.row_id);
    const size_t batches = (rows.size() + kDmlBatchSize - 1) / kDmlBatchSize;
    const bool record_undo =
        mapping->sources.size() * batches > 1 || undo.bound();
    for (size_t src = 0; src < mapping->sources.size(); ++src) {
      const PhysicalSource& source = mapping->sources[src];
      for (size_t begin = 0; begin < rows.size(); begin += kDmlBatchSize) {
        if (!explaining) {
          if (Status dl = deadline::Check(); !dl.ok()) return fail(dl);
        }
        size_t end = std::min(begin + kDmlBatchSize, rows.size());
        sql::Statement phys;
        if (trashcan_deletes_) {
          phys.kind = sql::StatementKind::kUpdate;
          phys.update = std::make_unique<sql::UpdateStmt>();
          phys.update->table = source.physical_table;
          phys.update->assignments.emplace_back(
              "del", sql::MakeLiteral(Value::Int32(1)));
          phys.update->where = RowBatchPredicate(source, rows, begin, end);
        } else {
          phys.kind = sql::StatementKind::kDelete;
          phys.del = std::make_unique<sql::DeleteStmt>();
          phys.del->table = source.physical_table;
          phys.del->where = RowBatchPredicate(source, rows, begin, end);
        }
        if (record_undo && !explaining) {
          for (size_t i = begin; i < end; ++i) {
            Status sst = stage_removal(src, affected[i]);
            if (!sst.ok()) return fail(sst);
          }
        }
        NotifyStatement(tenant, phys);
        if (explaining) continue;
        Result<int64_t> n = db_->ExecuteAst(phys, {});
        if (!n.ok()) return fail(n.status());
        stats_.physical_statements++;
        undo.Commit();
      }
    }
    MTDB_RETURN_IF_ERROR(undo.Finish());
    return static_cast<int64_t>(affected.size());
  }

  // Deletes must touch every chunk of the row (§6.3). With the trashcan
  // enabled they become updates that mark the rows invisible instead.
  const bool record_undo =
      affected.size() * mapping->sources.size() > 1 || undo.bound();
  for (const AffectedRow& row : affected) {
    if (!explaining) {
      if (Status dl = deadline::Check(); !dl.ok()) return fail(dl);
    }
    for (size_t src = 0; src < mapping->sources.size(); ++src) {
      const PhysicalSource& source = mapping->sources[src];
      sql::Statement phys;
      if (trashcan_deletes_) {
        phys.kind = sql::StatementKind::kUpdate;
        phys.update = std::make_unique<sql::UpdateStmt>();
        phys.update->table = source.physical_table;
        phys.update->assignments.emplace_back(
            "del", sql::MakeLiteral(Value::Int32(1)));
        phys.update->where = RowLocalPredicate(source, row.row_id);
      } else {
        phys.kind = sql::StatementKind::kDelete;
        phys.del = std::make_unique<sql::DeleteStmt>();
        phys.del->table = source.physical_table;
        phys.del->where = RowLocalPredicate(source, row.row_id);
      }
      if (record_undo && !explaining) {
        Status sst = stage_removal(src, row);
        if (!sst.ok()) return fail(sst);
      }
      NotifyStatement(tenant, phys);
      if (explaining) continue;
      Result<int64_t> n = db_->ExecuteAst(phys, {});
      if (!n.ok()) return fail(n.status());
      stats_.physical_statements++;
      undo.Commit();
    }
  }
  MTDB_RETURN_IF_ERROR(undo.Finish());
  return static_cast<int64_t>(affected.size());
}

Result<int64_t> SchemaMapping::RestoreDeleted(TenantId tenant,
                                              const std::string& table) {
  std::shared_lock<SharedLatch> lock(layer_mu_);
  ProbeGuard probe;
  MTDB_RETURN_IF_ERROR(CheckTenantAvailable(tenant, &probe));
  if (!trashcan_deletes_) {
    return Status::InvalidArgument("layout does not use trashcan deletes");
  }
  // §15: a restore rewrites every trashcan-deleted row of the table at
  // once — whole-table X is the honest granularity.
  txn::TransactionContext* txn = txn::TransactionContext::Current();
  lock::StatementLockContext locks(
      db_->lock_manager(), tenant,
      txn != nullptr ? txn->EnsureLockHolder() : 0);
  MTDB_RETURN_IF_ERROR(locks.LockTable(IdentLower(table), lock::LockMode::kX));
  MTDB_ASSIGN_OR_RETURN(const TableMapping* mapping, Mapping(tenant, table));
  int64_t restored = 0;
  for (const PhysicalSource& source : mapping->sources) {
    sql::Statement phys;
    phys.kind = sql::StatementKind::kUpdate;
    phys.update = std::make_unique<sql::UpdateStmt>();
    phys.update->table = source.physical_table;
    phys.update->assignments.emplace_back("del",
                                          sql::MakeLiteral(Value::Int32(0)));
    sql::ParsedExprPtr where;
    for (const auto& p : source.partition) {
      if (IdentEquals(p.first, "del")) {
        // Flip the visibility predicate: restore rows marked deleted.
        where = sql::AndTogether(
            std::move(where),
            sql::MakeBinary(sql::BinaryOp::kEq, sql::MakeColumnRef("", "del"),
                            sql::MakeLiteral(Value::Int32(1))));
        continue;
      }
      where = sql::AndTogether(
          std::move(where),
          sql::MakeBinary(sql::BinaryOp::kEq, sql::MakeColumnRef("", p.first),
                          sql::MakeLiteral(p.second)));
    }
    phys.update->where = std::move(where);
    NotifyStatement(tenant, phys);
    Result<int64_t> n = db_->ExecuteAst(phys, {});
    probe.Disarm();
    NoteTenantOutcome(tenant, n.status());
    MTDB_RETURN_IF_ERROR(n.status());
    restored += *n;
    stats_.physical_statements++;
  }
  return restored;
}

}  // namespace mapping
}  // namespace mtdb
