# Empty compiler generated dependencies file for dml_mode_test.
# This may be replaced when dependencies are built.
