#ifndef MTDB_CORE_LAYOUT_H_
#define MTDB_CORE_LAYOUT_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/breaker.h"
#include "common/latch.h"
#include "common/metrics_registry.h"
#include "engine/database.h"
#include "core/logical_schema.h"
#include "core/table_mapping.h"
#include "core/transformer.h"

namespace mtdb {
namespace mapping {

/// Statistics maintained by the mapping layer itself.
/// §6.3 gives two ways to run Phase (b) of an update/delete:
///  * kPerRow  — "let the application buffer the result and issue an
///    atomic update for each resulted row value and every affected
///    Chunk Table" (default; matches the paper's chosen design), or
///  * kBatched — one statement per chunk with a row-set predicate
///    ("nest the transformed query ... using an IN predicate on column
///    row"), which trades statement count for predicate size.
enum class DmlMode { kPerRow, kBatched };

/// Counters are relaxed-atomic (common/metrics_registry.h Counter) so
/// concurrent tenant sessions bump them without coordination; read them
/// individually (the struct is not copyable).
struct LayoutStats {
  Counter queries_transformed;
  Counter statements_transformed;
  Counter physical_statements;
  /// Physical DDL issued after Bootstrap (table rebuilds, lazy extension
  /// tables); generic layouts keep this at zero — §3's on-line argument.
  Counter ddl_statements;
  /// Logical statements rolled back mid-flight after a physical write
  /// failed (see StatementUndoLog).
  Counter statement_rollbacks;
  /// Compensating physical statements executed during those rollbacks.
  Counter undo_statements;
  /// Times a tenant crossed the consecutive-hard-fault threshold and was
  /// quarantined.
  Counter quarantine_trips;
};

/// Observes every physical statement the mapping layer emits against the
/// underlying Database: the transformed SELECTs (§6.1), the Phase (a)
/// reconstruction queries and the Phase (b) DML statements (§6.3).
/// Installed by the static mapping verifier (src/analysis) to capture or
/// replay emitted ASTs. Callbacks run synchronously while the layer lock
/// is held; observers must not call back into the layout and should copy
/// (sql::CloneStatement / SelectStmt::Clone) anything they keep.
class PhysicalStatementObserver {
 public:
  virtual ~PhysicalStatementObserver() = default;

  /// A physical SELECT about to be executed for `tenant`.
  virtual void OnSelect(TenantId tenant, const sql::SelectStmt& stmt) = 0;

  /// A physical non-SELECT statement about to be executed for `tenant`.
  virtual void OnStatement(TenantId tenant, const sql::Statement& stmt) = 0;
};

class TenantSession;
class StatementUndoLog;

/// A schema-mapping technique: maps the tenants' single-tenant logical
/// schemas onto one multi-tenant physical schema (§3) and rewrites
/// queries/DML accordingly. Concrete subclasses implement the layouts of
/// Figure 4 plus Chunk Folding.
///
/// Thread-safety: tenant sessions from an application server's
/// connection pool share one layout object and run in parallel.
/// Statement entry points (Query/Execute/InsertRow/...) hold the layer
/// latch shared; admin operations (CreateTenant/EnableExtension/
/// DropTenant) hold it exclusive, so DDL drains in-flight statements and
/// statements never observe half-switched mappings. The mapping cache
/// and the table-number registry have their own small locks, and row-id
/// counters are per tenant — different tenants' statements share no hot
/// lock. Bootstrap and configuration (transform_options,
/// set_statement_observer) are setup-time: call them before traffic.
///
/// The logical SQL dialect is ordinary SQL against the tenant's own
/// tables (e.g. "SELECT Beds FROM Account WHERE Hospital='State'").
class SchemaMapping : public MappingResolver {
 public:
  SchemaMapping(Database* db, const AppSchema* app);
  ~SchemaMapping() override = default;

  virtual std::string name() const = 0;

  /// Creates layout-global physical structures (generic tables etc.).
  virtual Status Bootstrap() = 0;

  /// Opens a per-worker tenant session (the front door mirroring
  /// Database::OpenSession). Cheap value handle, one per thread.
  TenantSession OpenSession(TenantId tenant);

  // Admin operations: non-virtual template methods that take the layer
  // latch exclusively, then dispatch to the *Impl hooks below.

  /// Registers a tenant (provisions physical structures as needed).
  Status CreateTenant(TenantId tenant);

  /// Enables an extension for a tenant. Layouts that cannot support
  /// extensibility (Basic) return an error — the paper's point.
  Status EnableExtension(TenantId tenant, const std::string& ext);

  /// Drops a tenant and its data.
  Status DropTenant(TenantId tenant);

  /// Rebuilds the layer's per-tenant state on a durable engine after
  /// Database::Open recovered the physical tables: tenants, extension
  /// sets and table numbers come from the registry table, layout-derived
  /// state (private-table versions, provisioned extension/vertical
  /// tables) from the recovered catalog, and row-id counters from the
  /// data itself. Call INSTEAD of Bootstrap() when the store already has
  /// a schema; fresh databases call Bootstrap() as before.
  Status Recover();

  /// Physical registry table recording tenants, enabled extensions and
  /// table-number assignments on durable engines (created lazily at the
  /// first CreateTenant).
  static std::string RegistryName() { return "mtdb_registry"; }

  // --- logical statement execution -----------------------------------

  /// Runs a logical SELECT for `tenant`.
  Result<QueryResult> Query(TenantId tenant, const std::string& sql,
                            const std::vector<Value>& params = {});

  /// Runs logical INSERT/UPDATE/DELETE for `tenant`; returns affected
  /// logical rows.
  Result<int64_t> Execute(TenantId tenant, const std::string& sql,
                          const std::vector<Value>& params = {});

  /// Returns the transformed physical SQL (for inspection/examples).
  Result<std::string> ShowTransformed(TenantId tenant, const std::string& sql);

  /// EXPLAIN MAPPING: reports the physical statements the logical
  /// statement would map to for `tenant`, WITHOUT executing any of them
  /// (no rows change, no row ids are consumed, no WAL is written, no
  /// stats counters move). UPDATE/DELETE explains do execute the Phase
  /// (a) reconstruction read — the Phase (b) statement set depends on
  /// which rows qualify — but never Phase (b) itself. A bare statement
  /// or an EXPLAIN MAPPING statement both work as input; the parser
  /// front door unwraps the latter.
  Result<MappingExplanation> ExplainMapping(
      TenantId tenant, const std::string& sql,
      const std::vector<Value>& params = {});
  Result<MappingExplanation> ExplainMapping(
      TenantId tenant, const sql::Statement& stmt,
      const std::vector<Value>& params = {});

  /// Direct structured insert (used by bulk loaders): values in the
  /// tenant's effective column order; missing trailing columns NULL.
  virtual Result<int64_t> InsertRow(TenantId tenant, const std::string& table,
                                    const Row& row);

  // --- configuration ----------------------------------------------------

  TransformOptions& transform_options() { return transform_options_; }
  const LayoutStats& stats() const { return stats_; }

  /// Column-access heat observed by this layer's query transformations;
  /// feeds AdviseConventionalExtensions for Chunk Folding tuning.
  const HeatProfile& heat_profile() const { return heat_; }
  HeatProfile* mutable_heat_profile() { return &heat_; }

  DmlMode dml_mode() const { return dml_mode_.load(std::memory_order_relaxed); }
  void set_dml_mode(DmlMode mode) {
    dml_mode_.store(mode, std::memory_order_relaxed);
  }

  /// Installs (or clears, with nullptr) the physical-statement observer.
  /// Not owned; the observer must outlive the layout or be cleared first.
  /// Install before concurrent traffic: callbacks may start on other
  /// threads the moment the pointer is published.
  void set_statement_observer(PhysicalStatementObserver* observer) {
    observer_.store(observer, std::memory_order_release);
  }

  /// Test-only: invoked (when set) after each Phase (a) collection
  /// returns, before any locks are taken on its result — lets tests
  /// commit a competing write inside the collect→lock window that
  /// LockAffectedRows' epoch check must detect. Install before
  /// concurrent traffic and clear (nullptr) before tearing down.
  void SetPostCollectHookForTest(std::function<void()> hook) {
    post_collect_hook_for_test_ = std::move(hook);
  }

  /// §6.3: "we transform delete operations into updates that mark the
  /// tuples as invisible ... in order to provide mechanisms like a
  /// Trashcan." Only meaningful for layouts whose physical sources carry
  /// a `del` visibility column (ChunkTableLayout with trashcan enabled).
  bool trashcan_deletes() const { return trashcan_deletes_; }

  /// Restores every trashcan-deleted row of (tenant, table); returns the
  /// number of restored physical rows. Fails unless the layout uses
  /// trashcan deletes.
  Result<int64_t> RestoreDeleted(TenantId tenant, const std::string& table);

  // --- fault containment -----------------------------------------------

  /// A tenant whose statements keep failing with hard I/O faults
  /// (kIOError/kDataLoss surviving the buffer pool's retries) trips a
  /// per-tenant circuit breaker: further statements fail fast with
  /// kUnavailable instead of hammering a bad device region, while other
  /// tenants — possibly co-located in the very same physical tables —
  /// keep serving. The breaker is self-healing: after an exponential
  /// backoff one probe statement is let through (half-open); success
  /// closes the breaker, another hard fault re-opens it with a doubled
  /// backoff. The strike counter is consecutive: any completed
  /// statement (success or logical error) resets it.
  bool IsQuarantined(TenantId tenant) const;

  /// Force-closes a tenant's breaker and zeroes its fault state
  /// (operator action after the underlying fault is repaired; the
  /// breaker also heals itself via half-open probes).
  Status ClearQuarantine(TenantId tenant);

  /// Consecutive hard-faulted statements before the breaker opens.
  void set_quarantine_threshold(uint64_t n) {
    quarantine_threshold_.store(n, std::memory_order_relaxed);
  }
  uint64_t quarantine_threshold() const {
    return quarantine_threshold_.load(std::memory_order_relaxed);
  }

  /// Breaker backoff window before a tripped tenant's first half-open
  /// probe, doubling per consecutive trip up to the max. Defaults come
  /// from DatabaseOptions (breaker_backoff_*_ms); tests shrink them to
  /// exercise the open → half-open → closed cycle quickly.
  void set_breaker_backoff_ms(uint64_t initial_ms, uint64_t max_ms) {
    breaker_backoff_initial_ns_.store(initial_ms * 1'000'000,
                                      std::memory_order_relaxed);
    breaker_backoff_max_ns_.store(max_ms * 1'000'000,
                                  std::memory_order_relaxed);
  }

  /// The tenant's breaker state (tests/operators; kClosed for unknown
  /// tenants).
  BreakerState TenantBreakerState(TenantId tenant) const;
  Database* db() { return db_; }
  const AppSchema* app() const { return app_; }

  /// All registered tenants (for migration and administration).
  std::vector<TenantId> TenantIds() const;
  /// The extensions a tenant has enabled, in enable order.
  Result<std::vector<std::string>> TenantExtensions(TenantId tenant) const;

  // MappingResolver:
  Result<std::vector<std::pair<std::string, TypeId>>> LogicalColumns(
      TenantId tenant, const std::string& table) override;

 protected:
  // Admin hooks invoked under the exclusive layer latch; subclasses
  // override these (not the public methods) and chain to the base Impl
  // for the shared bookkeeping.
  virtual Status CreateTenantImpl(TenantId tenant);
  virtual Status EnableExtensionImpl(TenantId tenant, const std::string& ext);
  virtual Status DropTenantImpl(TenantId tenant);

  /// Layout hook run by Recover() under the exclusive layer latch, after
  /// tenants/extensions/table numbers are restored: re-derive whatever
  /// private state the layout keeps (provisioned physical tables,
  /// private-table versions, trashcan flag) from the recovered catalog.
  virtual Status RecoverDerivedState() { return Status::OK(); }

  /// Durable-registry bookkeeping (no-ops on non-durable engines).
  /// Creates mtdb_registry if missing.
  Status EnsureRegistry();
  Status RegistryInsert(const std::string& kind, TenantId tenant,
                        const std::string& name, int64_t val);
  /// Records an enabled extension; called from the base
  /// EnableExtensionImpl and from layouts that bypass it.
  Status RecordExtensionEnabled(TenantId tenant, const std::string& ext,
                                int64_t ordinal);
  /// Deletes all registry rows of a dropped tenant.
  Status RecordTenantDropped(TenantId tenant);

  /// Per-tenant bookkeeping shared by all layouts. Entries live in a
  /// node-based map, so pointers stay stable while the tenant exists.
  struct TenantEntry {
    TenantState state;
    /// Guards next_row: the only per-tenant state statements mutate, so
    /// two sessions of the same tenant can insert concurrently without
    /// sharing a lock with other tenants. Order key = TenantId (stamped
    /// at tenant creation), so lockdep checks ascending-tenant order.
    Latch row_mu{LatchRank::kTenantRow, "tenant-row"};
    /// next row id per logical table (lower-cased name).
    std::map<std::string, int64_t> next_row;
    /// Per-tenant circuit breaker over hard I/O faults (closed → open →
    /// half-open → closed). Owns its own leaf latch, so sessions feed
    /// outcomes without the row lock.
    CircuitBreaker breaker;
  };

  Result<TenantEntry*> GetTenant(TenantId tenant);
  Result<EffectiveTable> GetEffective(TenantId tenant,
                                      const std::string& table);

  /// RAII companion to CheckTenantAvailable: armed when the admitted
  /// statement is THE half-open probe. If the statement aborts before
  /// its outcome reaches NoteTenantOutcome (parse/transform error, an
  /// early-return validation failure), the destructor abandons the probe
  /// so the next arrival can take it — an aborted probe must never leave
  /// the breaker rejecting forever. Call Disarm() right before reporting
  /// the real outcome. Must not outlive the layer latch: the breaker it
  /// points at lives in the tenant entry that latch protects.
  class ProbeGuard {
   public:
    ProbeGuard() = default;
    ~ProbeGuard() {
      if (breaker_ != nullptr) breaker_->AbandonProbe();
    }
    ProbeGuard(const ProbeGuard&) = delete;
    ProbeGuard& operator=(const ProbeGuard&) = delete;
    /// The statement's outcome is being reported: the probe resolves
    /// through NoteTenantOutcome, not through this guard.
    void Disarm() { breaker_ = nullptr; }

   private:
    friend class SchemaMapping;
    CircuitBreaker* breaker_ = nullptr;
  };

  /// Consults the tenant's circuit breaker: fails fast with
  /// kUnavailable (message carries a retry_after_ms hint) while the
  /// breaker is open, lets exactly one probe statement through once the
  /// backoff elapses (half-open), admits freely when closed. OK for
  /// unknown tenants — the statement path reports NotFound itself.
  /// Assumes the layer latch is held. When the statement is admitted as
  /// the probe, `probe` (if non-null) is armed so an aborted statement
  /// hands the probe slot back; callers that never report outcomes
  /// (explain paths) pass null and the probe slot is returned
  /// immediately — real traffic decides the tenant's fate.
  Status CheckTenantAvailable(TenantId tenant, ProbeGuard* probe = nullptr);

  /// Feeds a statement outcome into the tenant's breaker: hard faults
  /// (kIOError/kDataLoss) accumulate strikes and open the breaker at
  /// the threshold; any completed statement (success or logical error)
  /// resets the strikes and closes a half-open probe. Also tallies
  /// deadline.exceeded.t<id>.
  void NoteTenantOutcome(TenantId tenant, const Status& status);

  /// Snapshot of the breaker tunables (threshold + backoff window).
  CircuitBreaker::Options BreakerOptions() const;

  /// Generic DML implementations driven by the TableMapping (used by all
  /// generic layouts; Private/Basic override with direct rewrites).
  virtual Result<int64_t> GenericInsert(TenantId tenant,
                                        const sql::InsertStmt& stmt,
                                        const std::vector<Value>& params);
  virtual Result<int64_t> GenericUpdate(TenantId tenant,
                                        const sql::UpdateStmt& stmt,
                                        const std::vector<Value>& params);
  virtual Result<int64_t> GenericDelete(TenantId tenant,
                                        const sql::DeleteStmt& stmt,
                                        const std::vector<Value>& params);

  /// Inserts one logical row (named columns) through the mapping. With
  /// no caller_undo the row is atomic on its own: applied physical
  /// inserts are rolled back if a later source fails. With caller_undo,
  /// every applied physical insert is instead recorded there (including
  /// the last), and a failure rolls back nothing locally — the caller
  /// owns the whole multi-row statement's undo.
  Result<int64_t> InsertMappedRow(TenantId tenant, const std::string& table,
                                  const std::vector<std::string>& columns,
                                  const Row& values,
                                  StatementUndoLog* caller_undo = nullptr);

  /// Phase (a) of §6.3: returns the row ids (and full logical rows) that
  /// a WHERE clause selects.
  struct AffectedRow {
    int64_t row_id;
    Row logical;  // effective-column order
  };
  Result<std::vector<AffectedRow>> CollectAffected(
      TenantId tenant, const std::string& table, const sql::ParsedExpr* where,
      const std::vector<Value>& params);

  /// Write-epoch snapshot to take immediately before a Phase (a)
  /// collection whose result feeds LockAffectedRows; 0 when the
  /// statement acquires no locks (the check then compares 0 == 0).
  uint64_t PreCollectLockEpoch(const std::string& table) const;

  /// Write-lock acquisition between Phase (a) and Phase (b) (DESIGN.md
  /// §15): takes the table intent plus an X lock on every affected
  /// logical row — or one whole-table X lock for layouts whose sources
  /// carry no row column (Basic/Private address rows by value) and for
  /// affected sets containing NULL row ids (which have no lockable
  /// identity). `collect_epoch` is the PreCollectLockEpoch snapshot
  /// taken just before the Phase (a) run that produced `affected`:
  /// collect and acquire are not atomic, so a winner may write, commit
  /// and release entirely inside the gap without ever blocking this
  /// statement. Whenever the shard's write epoch moved past the
  /// snapshot — a superset of "an acquisition blocked" — Phase (a) is
  /// re-run under the locks now held and newly matching rows are locked
  /// too, so the statement always acts on (and stages compensations
  /// from) current images. No-op unless the statement installed a
  /// lock::StatementLockContext (admin DDL, EXPLAIN MAPPING, recovery
  /// and compensation replay never do).
  Status LockAffectedRows(TenantId tenant, const std::string& table,
                          bool rows_lockable,
                          std::vector<AffectedRow>* affected,
                          const sql::ParsedExpr* where,
                          const std::vector<Value>& params,
                          uint64_t collect_epoch);

  /// Invalidates all cached TableMappings (call after DDL).
  void InvalidateMappings();

 public:
  /// EXPLAIN MAPPING plumbing. While a thread runs ExplainMapping, a
  /// thread-local ExplainSink is installed: NotifySelect/NotifyStatement
  /// record the would-be physical statement into the sink (instead of
  /// the observer), and every execution site — undo staging, ExecuteAst,
  /// InsertRow, row-id assignment, stats bumps — is gated on
  /// Explaining(). The DML paths therefore run their normal
  /// transformation logic and produce the plan as a side effect. Public
  /// only so the file-local installer can name the type; not client API.
  struct ExplainSink {
    std::vector<PhysicalStatementPlan>* out = nullptr;
    /// Offset added to each table's peeked next_row counter so a
    /// multi-row INSERT explain reports consecutive row ids without
    /// consuming any.
    std::map<std::string, int64_t> row_offsets;
  };

  /// True while the current thread is inside ExplainMapping.
  static bool Explaining();
  /// The sink installed on this thread (nullptr when not explaining).
  static ExplainSink* CurrentExplainSink();

 protected:
  /// Forwards an emitted physical statement to the observer, if any.
  /// Layouts must call these immediately before handing an AST to db_.
  void NotifySelect(TenantId tenant, const sql::SelectStmt& stmt);
  void NotifyStatement(TenantId tenant, const sql::Statement& stmt);

  /// Sequential "Table" meta-data identifier for (tenant, logical table),
  /// as in the Table column of Figure 4(c)–(f).
  int32_t TableNumber(TenantId tenant, const std::string& table);

  Database* db_;
  const AppSchema* app_;
  /// Layer latch (level 0, above every engine latch): statement entry
  /// points hold it shared for their full duration; admin operations
  /// hold it exclusive. Protected helpers (GetTenant, Generic*, ...)
  /// assume it is held and never take it themselves — the underlying
  /// shared_mutex is not recursive.
  mutable SharedLatch layer_mu_{LatchRank::kMappingLayer, "mapping-layer"};
  TransformOptions transform_options_;
  LayoutStats stats_;
  HeatProfile heat_;
  std::atomic<DmlMode> dml_mode_{DmlMode::kPerRow};
  /// Physical-statement capture hook (see PhysicalStatementObserver).
  std::atomic<PhysicalStatementObserver*> observer_{nullptr};
  /// See SetPostCollectHookForTest.
  std::function<void()> post_collect_hook_for_test_;
  /// Set by layouts that provision `del` visibility columns.
  bool trashcan_deletes_ = false;
  /// Consecutive hard faults before a tenant's breaker opens.
  std::atomic<uint64_t> quarantine_threshold_{8};
  /// Breaker backoff window (config knobs, not statistics).
  std::atomic<uint64_t> breaker_backoff_initial_ns_{100'000'000};
  std::atomic<uint64_t> breaker_backoff_max_ns_{5'000'000'000};
  std::map<TenantId, TenantEntry> tenants_;

  /// Guards mapping_cache_. Read-mostly: statements look mappings up far
  /// more often than DDL invalidates them. Ranked above the engine's
  /// DDL/table-number latches because BuildMapping may lazily provision
  /// physical tables (extension layouts) while this is held, but below
  /// the txn gate: a statement already inside a durable txn (undo log)
  /// may still look mappings up. Mapping() defers automatic checkpoints
  /// for the same reason — a checkpoint takes the txn gate exclusively,
  /// which must never nest inside this latch.
  mutable Latch cache_mu_{LatchRank::kMappingCache, "mapping-cache"};
  /// Cache of (tenant, table-lower) -> TableMapping, filled via Mapping().
  std::map<std::pair<TenantId, std::string>, std::unique_ptr<TableMapping>>
      mapping_cache_;

  /// Guards table_numbers_/next_table_number_ (bumped from BuildMapping).
  Latch table_number_mu_{LatchRank::kMappingTableNum, "mapping-table-num"};
  std::map<std::pair<TenantId, std::string>, int32_t> table_numbers_;
  int32_t next_table_number_ = 0;

  /// Subclass hook: build the mapping for (tenant, table).
  virtual Result<std::unique_ptr<TableMapping>> BuildMapping(
      TenantId tenant, const std::string& table) = 0;

 public:
  Result<const TableMapping*> Mapping(TenantId tenant,
                                      const std::string& table) override;
};

/// Renders a value row for physical insert given a mapping source.
Schema PhysicalSchemaFromColumns(const std::vector<Column>& cols);

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_LAYOUT_H_
