file(REMOVE_RECURSE
  "libmtdb_testbed.a"
)
