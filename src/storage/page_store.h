#ifndef MTDB_STORAGE_PAGE_STORE_H_
#define MTDB_STORAGE_PAGE_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/fault.h"
#include "common/latch.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

namespace mtdb {

/// Persistent-tier I/O counters. Every buffer-pool miss shows up here as
/// a physical read; Figures 10–12 are driven by these and the logical
/// counters in BufferPoolStats.
struct PageStoreStats {
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;
  uint64_t allocations = 0;
};

/// The "disk": an in-memory array of page images standing in for the
/// paper's NFS appliance. Reads/writes copy whole page images so the
/// buffer pool above it behaves exactly like a cache, and an optional
/// per-I/O latency models cold-cache experiments.
///
/// Failure model: every physical I/O consults an optional FaultInjector
/// and can fail with a transient kIOError, deliver a corrupted image, or
/// apply only a prefix of a write (a torn write). Each stored page
/// carries the FNV-1a checksum of the image the writer *intended*, so a
/// read detects torn or corrupted images as kDataLoss instead of
/// returning bad bytes. Reads of a deallocated or out-of-range id return
/// kNotFound (never UB).
///
/// Thread-safety: all methods are safe to call from concurrent sessions.
/// An internal mutex guards the page array and counters; the simulated
/// device latency is charged as a *blocking* wait outside that mutex, so
/// concurrent sessions overlap their I/O stalls exactly like synchronous
/// reads against a real shared appliance.
class PageStore {
 public:
  explicit PageStore(uint32_t page_size = kDefaultPageSize)
      : page_size_(page_size) {}

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  uint32_t page_size() const { return page_size_; }

  /// Allocates a new zeroed page of `type`, returning its id. If `seq`
  /// is non-null it receives the store's global op sequence number for
  /// this allocation — alloc/dealloc order is a *store-wide* total order
  /// (one counter under mu_), which the WAL records so replay can
  /// reconstruct it even though group append order is only per-table.
  PageId Allocate(PageType type, uint64_t* seq = nullptr);

  /// Releases a page (its id may be reused). Invalid ids are ignored and
  /// leave `*seq` untouched; a performed dealloc stores its op sequence
  /// number (never 0) into `seq` when non-null.
  void Deallocate(PageId id, uint64_t* seq = nullptr);

  /// Copies the stored image into `out` (sized page_size). Counts a
  /// physical read and applies the simulated latency.
  ///   kNotFound  — `id` is out of range or deallocated
  ///   kIOError   — an injected transient device error; retry may succeed
  ///   kDataLoss  — the delivered image fails its checksum (torn write
  ///                on the device, or corruption on the wire)
  Status Read(PageId id, char* out);

  /// Copies `in` into the stored image and records its checksum.
  ///   kNotFound — `id` is out of range or deallocated
  ///   kIOError  — injected device error; either nothing was stored or a
  ///               torn prefix was (the recorded checksum still covers
  ///               the full intended image, so a later read of a torn
  ///               page reports kDataLoss). A *silent* torn write
  ///               returns OK — the device lied — and is only caught by
  ///               the checksum on the next physical read.
  Status Write(PageId id, const char* in);

  /// kFree for out-of-range or deallocated ids.
  PageType TypeOf(PageId id) const;
  bool IsAllocated(PageId id) const;

  size_t allocated_pages() const;

  PageStoreStats stats() const;
  void ResetStats();

  /// Simulated device latency charged per physical read, in nanoseconds
  /// the issuing thread blocks. Defaults to 0 (counter-only model).
  /// Atomic so benchmarks can load data fast and then dial the latency
  /// up for the measured phase without racing in-flight reads.
  void set_read_latency_ns(uint64_t ns) {
    read_latency_ns_.store(ns, std::memory_order_relaxed);
  }

  /// Attaches (or detaches, with nullptr) a fault injector consulted on
  /// every physical I/O. The store does not own it; the caller must keep
  /// it alive while attached. With none attached the I/O path pays one
  /// relaxed atomic load.
  void set_fault_injector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_release);
  }
  FaultInjector* fault_injector() const {
    return injector_.load(std::memory_order_acquire);
  }

  /// Fault/retry counters shared with the buffer pool above: the store
  /// bumps the fault side (injected errors, checksum failures, latency
  /// spikes); the pool bumps the retry side.
  IoFaultCounters& io_counters() { return io_counters_; }
  const IoFaultCounters& io_counters() const { return io_counters_; }

  /// FNV-1a 64-bit over a page image — the per-page checksum format.
  static uint64_t Checksum(const char* data, size_t n);

  // ---- durability hooks (used only by the Durability manager) ----

  /// When on, every Allocate/Deallocate/Write notes its page id so the
  /// next checkpoint flushes only pages changed since the previous one.
  void set_dirty_tracking(bool on) {
    track_dirty_.store(on, std::memory_order_relaxed);
  }

  /// Snapshot of the dirty-since-checkpoint set (sorted). The set is
  /// cleared separately, only after the checkpoint fully commits, so a
  /// crash mid-checkpoint keeps the ids for the next attempt.
  std::vector<PageId> DirtySinceCheckpoint() const;
  void ClearDirty(const std::vector<PageId>& flushed);

  /// Free list in pop order (back = next Allocate). Checkpoints persist
  /// it; recovery and the Deallocate regression test compare it.
  std::vector<PageId> FreeListSnapshot() const;
  size_t page_slots() const;

  /// Raw image access for checkpoint writing: no faults, no latency, no
  /// stats. kNotFound for free slots.
  Status RawRead(PageId id, PageType* type, std::vector<char>* image,
                 uint64_t* checksum) const;
  /// Stored checksum of an allocated page (post-replay verification).
  Result<uint64_t> StoredChecksum(PageId id) const;

  /// Recovery: drops every page, the free list, and the op sequence.
  void RecoverReset();
  /// Recovery: replays a logged allocation at exactly `id`, which must
  /// currently be free (a free-list member, a gap, or past the end — the
  /// slot array grows; slots skipped over were claimed by statements the
  /// crash left unlogged and return to the free list). An allocated `id`
  /// means the log and the store diverged: kDataLoss.
  Status RecoverAlloc(PageId id, PageType type);
  /// Recovery: replays a logged deallocation. kDataLoss if `id` is not
  /// currently allocated.
  Status RecoverDealloc(PageId id);
  /// Recovery: raises the op-sequence counter to at least `last_seq`, so
  /// ops performed after recovery (undo statements, new workload) sort
  /// strictly after every replayed one even if the sealing checkpoint
  /// crashes and both lifetimes share one log.
  void RecoverSetOpSeq(uint64_t last_seq);
  /// Recovery: installs an image at `id` (growing the array; gap slots
  /// stay free), overwriting type, image, and checksum. No faults.
  /// `mark_dirty` enters the page into the dirty-since-checkpoint set —
  /// WAL-replay installs must pass true so the sealing checkpoint flushes
  /// the replayed image over the stale one in pages.db.
  Status RecoverInstall(PageId id, PageType type, const char* image,
                        bool mark_dirty = false);
  void RecoverSetFreeList(std::vector<PageId> free_list);

 private:
  struct StoredPage {
    PageType type = PageType::kFree;
    std::vector<char> image;
    /// Checksum of the image the last writer *intended* to store. For a
    /// torn write this covers the full image even though only a prefix
    /// landed, which is exactly how the tear is detected on read.
    uint64_t checksum = 0;
  };

  /// Charges an injected latency spike (and any configured read
  /// latency), blocking the issuing thread outside mu_.
  void ChargeLatency(FaultInjector* injector, bool is_read);

  void NoteDirtyLocked(PageId id);

  uint32_t page_size_;
  mutable Latch mu_{LatchRank::kPageStore, "page-store"};
  std::vector<StoredPage> pages_;
  std::vector<PageId> free_list_;
  PageStoreStats stats_;
  std::atomic<uint64_t> read_latency_ns_{0};
  std::atomic<FaultInjector*> injector_{nullptr};
  IoFaultCounters io_counters_;
  std::atomic<bool> track_dirty_{false};
  std::vector<bool> dirty_;  // guarded by mu_; indexed by page id
  /// Global alloc/dealloc sequence, guarded by mu_. 0 means "no op yet";
  /// the first op gets 1.
  uint64_t op_seq_ = 0;
};

}  // namespace mtdb

#endif  // MTDB_STORAGE_PAGE_STORE_H_
