#ifndef MTDB_STORAGE_TABLE_HEAP_H_
#define MTDB_STORAGE_TABLE_HEAP_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/latch.h"
#include "common/result.h"
#include "common/types.h"
#include "storage/buffer_pool.h"

namespace mtdb {

/// How new tuples are placed. The paper (§5) attributes DB2's insert
/// behaviour at schema variability 1.0 to switching between a "most
/// suitable page" method (compact relations) and an "append to last
/// page" method (sparse but contention-free); both are modeled here.
enum class InsertMode { kFirstFit, kAppend };

/// A heap of slotted pages forming one physical table's tuple storage.
/// Pages are chained; a free-space map supports kFirstFit placement.
///
/// Thread-safety: the heap itself is NOT internally synchronized. The
/// engine's statement pipeline takes `latch()` — shared for reads,
/// exclusive for writes — around every statement that touches this
/// table, at coarse per-table granularity. The latch is deliberately a
/// member here rather than inside each method because shared_mutex is
/// not recursive: one acquisition point (the engine) avoids self-
/// deadlock when an operation touches the heap many times.
class TableHeap {
 public:
  TableHeap(BufferPool* pool, InsertMode mode = InsertMode::kFirstFit);

  TableHeap(const TableHeap&) = delete;
  TableHeap& operator=(const TableHeap&) = delete;

  /// Inserts a serialized tuple; returns its RID.
  Result<Rid> Insert(const std::string& tuple);

  /// Reads the tuple at `rid` into `out`; NotFound for deleted slots.
  Status Get(const Rid& rid, std::string* out);

  /// Replaces a tuple. May relocate; `rid` is updated in place and
  /// `moved` (optional) reports whether it changed.
  Status Update(Rid* rid, const std::string& tuple, bool* moved = nullptr);

  Status Delete(const Rid& rid);

  /// Drops all pages back to the store.
  void Free();

  /// Recovery: rebuilds the in-memory page list by walking the on-disk
  /// next_page chain from `first_page` (kInvalidPageId = empty heap),
  /// recomputing free space and the live-tuple count as it goes.
  Status AttachChain(PageId first_page);

  PageId first_page() const { return first_page_; }
  size_t page_count() const { return pages_.size(); }
  uint64_t live_tuples() const { return live_tuples_; }
  void set_insert_mode(InsertMode mode) { insert_mode_ = mode; }

  /// Forward scan over live tuples.
  class Iterator {
   public:
    Iterator(TableHeap* heap, size_t page_index);

    /// Advances to the next live tuple; returns false at end. The tuple
    /// image is copied into `tuple` and its rid into `rid`. Surfaces
    /// storage errors (kIOError/kDataLoss) after the pool's retries.
    Result<bool> Next(std::string* tuple, Rid* rid);

   private:
    TableHeap* heap_;
    size_t page_index_;
    uint16_t slot_ = 0;
  };

  Iterator Begin() { return Iterator(this, 0); }

  /// Per-table reader/writer latch; acquired by the engine for the full
  /// duration of each statement touching this table (never internally).
  /// The catalog stamps its lockdep order key (from the TableId) when
  /// the table is registered, so same-rank acquisition order is checked.
  SharedLatch& latch() const { return latch_; }

 private:
  friend class Iterator;

  /// Picks (and pins) a page with at least `need` free bytes.
  Result<Page*> PickPageForInsert(uint32_t need);

  BufferPool* pool_;
  InsertMode insert_mode_;
  PageId first_page_ = kInvalidPageId;
  std::vector<PageId> pages_;
  /// Approximate free bytes per page, maintained on insert/delete.
  std::unordered_map<PageId, uint32_t> free_space_;
  uint64_t live_tuples_ = 0;
  mutable SharedLatch latch_{LatchRank::kTableIndex, "table-heap"};
};

}  // namespace mtdb

#endif  // MTDB_STORAGE_TABLE_HEAP_H_
