file(REMOVE_RECURSE
  "CMakeFiles/bench_layout_workload.dir/bench_layout_workload.cc.o"
  "CMakeFiles/bench_layout_workload.dir/bench_layout_workload.cc.o.d"
  "bench_layout_workload"
  "bench_layout_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layout_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
