#include "storage/page_store.h"

#include "common/deadline.h"
#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

namespace mtdb {

uint64_t PageStore::Checksum(const char* data, size_t n) {
  // FNV-1a 64-bit: cheap, deterministic, and sensitive to both truncated
  // images (torn writes) and single-bit flips.
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < n; i++) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

PageId PageStore::Allocate(PageType type, uint64_t* seq) {
  std::lock_guard<Latch> lock(mu_);
  stats_.allocations++;
  if (seq != nullptr) *seq = op_seq_ + 1;
  ++op_seq_;
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    pages_[id].type = type;
    std::memset(pages_[id].image.data(), 0, page_size_);
  } else {
    id = static_cast<PageId>(pages_.size());
    pages_.push_back(StoredPage{type, std::vector<char>(page_size_, 0), 0});
  }
  pages_[id].checksum = Checksum(pages_[id].image.data(), page_size_);
  NoteDirtyLocked(id);
  return id;
}

void PageStore::Deallocate(PageId id, uint64_t* seq) {
  std::lock_guard<Latch> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= pages_.size() ||
      pages_[id].type == PageType::kFree) {
    return;
  }
  if (seq != nullptr) *seq = op_seq_ + 1;
  ++op_seq_;
  pages_[id].type = PageType::kFree;
  free_list_.push_back(id);
  NoteDirtyLocked(id);
}

void PageStore::ChargeLatency(FaultInjector* injector, bool is_read) {
  uint64_t stall = 0;
  if (is_read) stall = read_latency_ns_.load(std::memory_order_relaxed);
  if (injector != nullptr) {
    FaultSpec spec;
    if (injector->ShouldFire(FaultPoint::kLatencySpike, &spec)) {
      io_counters_.OnLatencySpike();
      stall += spec.latency_ns;
    }
  }
  if (stall > 0) {
    // A statement already past its deadline gains nothing from paying
    // the simulated stall: it will cancel at its next checkpoint anyway,
    // and serializing chaos runs on doomed statements just wastes wall
    // clock. The fault still counted above — only the sleep is skipped.
    if (deadline::Expired()) return;
    // The device stall blocks only the issuing session thread; other
    // sessions proceed, so concurrent misses overlap like synchronous
    // reads against one shared appliance.
    std::this_thread::sleep_for(std::chrono::nanoseconds(stall));
  }
}

Status PageStore::Read(PageId id, char* out) {
  FaultInjector* injector = fault_injector();
  ChargeLatency(injector, /*is_read=*/true);
  if (injector != nullptr && injector->ShouldFire(FaultPoint::kPageRead)) {
    io_counters_.OnReadFault();
    return Status::IOError("injected read fault on page " +
                           std::to_string(id));
  }
  bool flip = injector != nullptr && injector->ShouldFire(FaultPoint::kBitFlip);
  uint64_t expected = 0;
  {
    std::lock_guard<Latch> lock(mu_);
    if (id < 0 || static_cast<size_t>(id) >= pages_.size() ||
        pages_[id].type == PageType::kFree) {
      return Status::NotFound("read of unallocated page " +
                              std::to_string(id));
    }
    stats_.physical_reads++;
    std::memcpy(out, pages_[id].image.data(), page_size_);
    expected = pages_[id].checksum;
    if (flip) {
      // Corrupt one bit of the *delivered copy* — the stored image stays
      // intact, so a retry after the checksum failure recovers. The bit
      // position is a pure function of (id, read ordinal): deterministic
      // under a deterministic schedule.
      uint64_t pos = (static_cast<uint64_t>(id) * 1315423911ull +
                      stats_.physical_reads) %
                     (static_cast<uint64_t>(page_size_) * 8);
      out[pos / 8] = static_cast<char>(
          static_cast<unsigned char>(out[pos / 8]) ^ (1u << (pos % 8)));
    }
  }
  trace::OnPhysicalRead();
  if (Checksum(out, page_size_) != expected) {
    io_counters_.OnChecksumFailure();
    return Status::DataLoss("checksum mismatch on page " + std::to_string(id));
  }
  return Status::OK();
}

Status PageStore::Write(PageId id, const char* in) {
  FaultInjector* injector = fault_injector();
  ChargeLatency(injector, /*is_read=*/false);
  if (injector != nullptr && injector->ShouldFire(FaultPoint::kPageWrite)) {
    io_counters_.OnWriteFault();
    return Status::IOError("injected write fault on page " +
                           std::to_string(id));
  }
  FaultSpec torn_spec;
  bool torn = injector != nullptr &&
              injector->ShouldFire(FaultPoint::kTornWrite, &torn_spec);
  {
    std::lock_guard<Latch> lock(mu_);
    if (id < 0 || static_cast<size_t>(id) >= pages_.size() ||
        pages_[id].type == PageType::kFree) {
      return Status::NotFound("write to unallocated page " +
                              std::to_string(id));
    }
    stats_.physical_writes++;
    // The checksum always covers the full intended image. On a torn
    // write only a prefix lands, so the image no longer matches its own
    // checksum — the read path reports that as kDataLoss until a later
    // full write repairs the page.
    pages_[id].checksum = Checksum(in, page_size_);
    size_t n = torn ? page_size_ / 2 : page_size_;
    std::memcpy(pages_[id].image.data(), in, n);
    NoteDirtyLocked(id);
  }
  trace::OnPhysicalWrite();
  if (torn) {
    io_counters_.OnWriteFault();
    if (!torn_spec.silent) {
      return Status::IOError("torn write on page " + std::to_string(id));
    }
    // Silent tear: the device reports success; only the checksum on the
    // next physical read catches it.
  }
  return Status::OK();
}

PageType PageStore::TypeOf(PageId id) const {
  std::lock_guard<Latch> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= pages_.size()) return PageType::kFree;
  return pages_[id].type;
}

bool PageStore::IsAllocated(PageId id) const {
  std::lock_guard<Latch> lock(mu_);
  return id >= 0 && static_cast<size_t>(id) < pages_.size() &&
         pages_[id].type != PageType::kFree;
}

size_t PageStore::allocated_pages() const {
  std::lock_guard<Latch> lock(mu_);
  return pages_.size() - free_list_.size();
}

PageStoreStats PageStore::stats() const {
  std::lock_guard<Latch> lock(mu_);
  return stats_;
}

void PageStore::ResetStats() {
  std::lock_guard<Latch> lock(mu_);
  stats_ = PageStoreStats();
}

void PageStore::NoteDirtyLocked(PageId id) {
  if (!track_dirty_.load(std::memory_order_relaxed)) return;
  if (static_cast<size_t>(id) >= dirty_.size()) {
    dirty_.resize(pages_.size(), false);
  }
  dirty_[id] = true;
}

std::vector<PageId> PageStore::DirtySinceCheckpoint() const {
  std::lock_guard<Latch> lock(mu_);
  std::vector<PageId> out;
  for (size_t i = 0; i < dirty_.size(); ++i) {
    if (dirty_[i]) out.push_back(static_cast<PageId>(i));
  }
  return out;
}

void PageStore::ClearDirty(const std::vector<PageId>& flushed) {
  std::lock_guard<Latch> lock(mu_);
  for (PageId id : flushed) {
    if (static_cast<size_t>(id) < dirty_.size()) dirty_[id] = false;
  }
}

std::vector<PageId> PageStore::FreeListSnapshot() const {
  std::lock_guard<Latch> lock(mu_);
  return free_list_;
}

size_t PageStore::page_slots() const {
  std::lock_guard<Latch> lock(mu_);
  return pages_.size();
}

Status PageStore::RawRead(PageId id, PageType* type, std::vector<char>* image,
                          uint64_t* checksum) const {
  std::lock_guard<Latch> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= pages_.size() ||
      pages_[id].type == PageType::kFree) {
    return Status::NotFound("raw read of unallocated page " +
                            std::to_string(id));
  }
  if (type != nullptr) *type = pages_[id].type;
  if (image != nullptr) *image = pages_[id].image;
  if (checksum != nullptr) *checksum = pages_[id].checksum;
  return Status::OK();
}

Result<uint64_t> PageStore::StoredChecksum(PageId id) const {
  std::lock_guard<Latch> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= pages_.size() ||
      pages_[id].type == PageType::kFree) {
    return Status::NotFound("checksum of unallocated page " +
                            std::to_string(id));
  }
  return pages_[id].checksum;
}

void PageStore::RecoverReset() {
  std::lock_guard<Latch> lock(mu_);
  pages_.clear();
  free_list_.clear();
  dirty_.clear();
  op_seq_ = 0;
}

Status PageStore::RecoverAlloc(PageId id, PageType type) {
  std::lock_guard<Latch> lock(mu_);
  if (id < 0) return Status::DataLoss("replay alloc: negative page id");
  if (static_cast<size_t>(id) >= pages_.size()) {
    // Slot numbers grow in op order and ops replay in op order, so a
    // *logged* alloc of any slot below `id` already replayed. The gaps
    // left here were claimed by statements the crash caught before their
    // group reached the log — durably those statements never happened,
    // and their slots return to the free list.
    for (size_t gap = pages_.size(); gap < static_cast<size_t>(id); ++gap) {
      free_list_.push_back(static_cast<PageId>(gap));
    }
    pages_.resize(static_cast<size_t>(id) + 1,
                  StoredPage{PageType::kFree,
                             std::vector<char>(page_size_, 0), 0});
  }
  if (pages_[id].type != PageType::kFree) {
    return Status::DataLoss("replay alloc of already-allocated page " +
                            std::to_string(id));
  }
  free_list_.erase(std::remove(free_list_.begin(), free_list_.end(), id),
                   free_list_.end());
  stats_.allocations++;
  pages_[id].type = type;
  std::memset(pages_[id].image.data(), 0, page_size_);
  pages_[id].checksum = Checksum(pages_[id].image.data(), page_size_);
  NoteDirtyLocked(id);
  return Status::OK();
}

Status PageStore::RecoverDealloc(PageId id) {
  std::lock_guard<Latch> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= pages_.size() ||
      pages_[id].type == PageType::kFree) {
    return Status::DataLoss("replay dealloc of unallocated page " +
                            std::to_string(id));
  }
  pages_[id].type = PageType::kFree;
  free_list_.push_back(id);
  NoteDirtyLocked(id);
  return Status::OK();
}

void PageStore::RecoverSetOpSeq(uint64_t last_seq) {
  std::lock_guard<Latch> lock(mu_);
  op_seq_ = std::max(op_seq_, last_seq);
}

Status PageStore::RecoverInstall(PageId id, PageType type, const char* image,
                                 bool mark_dirty) {
  std::lock_guard<Latch> lock(mu_);
  if (id < 0) return Status::InvalidArgument("recover install: bad page id");
  if (static_cast<size_t>(id) >= pages_.size()) {
    pages_.resize(id + 1,
                  StoredPage{PageType::kFree, std::vector<char>(page_size_, 0),
                             0});
  }
  pages_[id].type = type;
  std::memcpy(pages_[id].image.data(), image, page_size_);
  pages_[id].checksum = Checksum(image, page_size_);
  // WAL-replay installs supersede the pages.db image, so the sealing
  // checkpoint must flush them; checkpoint-load installs match pages.db
  // byte for byte and stay clean.
  if (mark_dirty) NoteDirtyLocked(id);
  return Status::OK();
}

void PageStore::RecoverSetFreeList(std::vector<PageId> free_list) {
  std::lock_guard<Latch> lock(mu_);
  // Free slots past the last installed page have no image to install, but
  // the slot array must still cover them or a post-recovery Allocate that
  // pops one would index out of range.
  for (PageId id : free_list) {
    if (id >= 0 && static_cast<size_t>(id) >= pages_.size()) {
      pages_.resize(
          static_cast<size_t>(id) + 1,
          StoredPage{PageType::kFree, std::vector<char>(page_size_, 0), 0});
    }
  }
  free_list_ = std::move(free_list);
}

}  // namespace mtdb
