#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/chunk_folding_layout.h"
#include "core/private_layout.h"
#include "mapping_test_util.h"
#include "testbed/crm_schema.h"

namespace mtdb {
namespace mapping {
namespace {

/// Differential soak: a long randomized multi-tenant workload runs on
/// Chunk Folding and on private tables (the reference — it stores rows
/// natively); every logical observation must agree at every checkpoint.
class SoakTest : public ::testing::TestWithParam<int> {};

TEST_P(SoakTest, ChunkFoldingMatchesPrivateReference) {
  AppSchema app = testbed::BuildCrmAppSchema();
  Database fold_db, priv_db;
  ChunkFoldingLayout folded(&fold_db, &app);
  PrivateTableLayout reference(&priv_db, &app);
  ASSERT_TRUE(folded.Bootstrap().ok());
  ASSERT_TRUE(reference.Bootstrap().ok());

  constexpr int kTenants = 3;
  for (TenantId t = 0; t < kTenants; ++t) {
    ASSERT_TRUE(folded.CreateTenant(t).ok());
    ASSERT_TRUE(reference.CreateTenant(t).ok());
  }
  ASSERT_TRUE(folded.EnableExtension(0, "healthcare_account").ok());
  ASSERT_TRUE(reference.EnableExtension(0, "healthcare_account").ok());
  ASSERT_TRUE(folded.EnableExtension(1, "project_opportunity").ok());
  ASSERT_TRUE(reference.EnableExtension(1, "project_opportunity").ok());

  auto both_execute = [&](TenantId t, const std::string& sql,
                          const std::vector<Value>& params = {}) {
    auto a = folded.Execute(t, sql, params);
    auto b = reference.Execute(t, sql, params);
    ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
    EXPECT_EQ(*a, *b) << sql;
  };
  auto both_query_match = [&](TenantId t, const std::string& sql) {
    auto a = folded.Query(t, sql);
    auto b = reference.Query(t, sql);
    ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
    ASSERT_EQ(a->rows.size(), b->rows.size()) << sql;
    for (size_t i = 0; i < a->rows.size(); ++i) {
      ASSERT_EQ(a->rows[i].size(), b->rows[i].size());
      for (size_t c = 0; c < a->rows[i].size(); ++c) {
        EXPECT_EQ(a->rows[i][c].Compare(b->rows[i][c]), 0)
            << sql << " row " << i << " col " << c;
      }
    }
  };

  Rng rng(GetParam() * 1000 + 7);
  int64_t next_id = 1;
  std::vector<int64_t> live_ids[kTenants];

  for (int op = 0; op < 250; ++op) {
    TenantId t = static_cast<TenantId>(rng.Uniform(0, kTenants - 1));
    int kind = static_cast<int>(rng.Uniform(0, 9));
    if (kind < 4) {
      int64_t id = next_id++;
      std::string sql =
          "INSERT INTO account (id, campaign_id, name, status, amount) "
          "VALUES (?, 0, ?, ?, ?)";
      std::vector<Value> params{
          Value::Int64(id), Value::String(rng.Word(3, 9)),
          Value::String(rng.Bernoulli(0.5) ? "open" : "won"),
          Value::Double(static_cast<double>(rng.Uniform(1, 100000)))};
      both_execute(t, sql, params);
      live_ids[t].push_back(id);
    } else if (kind < 6 && !live_ids[t].empty()) {
      size_t i = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(live_ids[t].size()) - 1));
      both_execute(t, "UPDATE account SET amount = amount + 1, owner = ? "
                      "WHERE id = ?",
                   {Value::String(rng.Word(3, 8)),
                    Value::Int64(live_ids[t][i])});
    } else if (kind < 7 && !live_ids[t].empty()) {
      size_t i = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(live_ids[t].size()) - 1));
      both_execute(t, "DELETE FROM account WHERE id = ?",
                   {Value::Int64(live_ids[t][i])});
      live_ids[t].erase(live_ids[t].begin() + static_cast<ptrdiff_t>(i));
    } else if (kind < 8) {
      both_query_match(t, "SELECT status, COUNT(*), SUM(amount) FROM account "
                          "GROUP BY status ORDER BY status");
    } else {
      both_query_match(t, "SELECT id, name, amount FROM account "
                          "WHERE amount > 50000 ORDER BY id");
    }
    if (op % 50 == 49) {
      // Deep checkpoint: full logical contents per tenant.
      for (TenantId ct = 0; ct < kTenants; ++ct) {
        both_query_match(ct, "SELECT * FROM account ORDER BY id");
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoakTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace mapping
}  // namespace mtdb
