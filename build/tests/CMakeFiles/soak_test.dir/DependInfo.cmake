
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/soak_test.cc" "tests/CMakeFiles/soak_test.dir/soak_test.cc.o" "gcc" "tests/CMakeFiles/soak_test.dir/soak_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/mtdb_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mtdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mtdb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/mtdb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/mtdb_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/mtdb_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/mtdb_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mtdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mtdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
