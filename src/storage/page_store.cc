#include "storage/page_store.h"

#include <chrono>
#include <cstring>
#include <thread>

namespace mtdb {

uint64_t PageStore::Checksum(const char* data, size_t n) {
  // FNV-1a 64-bit: cheap, deterministic, and sensitive to both truncated
  // images (torn writes) and single-bit flips.
  uint64_t h = 14695981039346656037ull;
  for (size_t i = 0; i < n; i++) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

PageId PageStore::Allocate(PageType type) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.allocations++;
  PageId id;
  if (!free_list_.empty()) {
    id = free_list_.back();
    free_list_.pop_back();
    pages_[id].type = type;
    std::memset(pages_[id].image.data(), 0, page_size_);
  } else {
    id = static_cast<PageId>(pages_.size());
    pages_.push_back(StoredPage{type, std::vector<char>(page_size_, 0), 0});
  }
  pages_[id].checksum = Checksum(pages_[id].image.data(), page_size_);
  return id;
}

void PageStore::Deallocate(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= pages_.size() ||
      pages_[id].type == PageType::kFree) {
    return;
  }
  pages_[id].type = PageType::kFree;
  free_list_.push_back(id);
}

void PageStore::ChargeLatency(FaultInjector* injector, bool is_read) {
  uint64_t stall = 0;
  if (is_read) stall = read_latency_ns_.load(std::memory_order_relaxed);
  if (injector != nullptr) {
    FaultSpec spec;
    if (injector->ShouldFire(FaultPoint::kLatencySpike, &spec)) {
      io_counters_.OnLatencySpike();
      stall += spec.latency_ns;
    }
  }
  if (stall > 0) {
    // The device stall blocks only the issuing session thread; other
    // sessions proceed, so concurrent misses overlap like synchronous
    // reads against one shared appliance.
    std::this_thread::sleep_for(std::chrono::nanoseconds(stall));
  }
}

Status PageStore::Read(PageId id, char* out) {
  FaultInjector* injector = fault_injector();
  ChargeLatency(injector, /*is_read=*/true);
  if (injector != nullptr && injector->ShouldFire(FaultPoint::kPageRead)) {
    io_counters_.OnReadFault();
    return Status::IOError("injected read fault on page " +
                           std::to_string(id));
  }
  bool flip = injector != nullptr && injector->ShouldFire(FaultPoint::kBitFlip);
  uint64_t expected = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id < 0 || static_cast<size_t>(id) >= pages_.size() ||
        pages_[id].type == PageType::kFree) {
      return Status::NotFound("read of unallocated page " +
                              std::to_string(id));
    }
    stats_.physical_reads++;
    std::memcpy(out, pages_[id].image.data(), page_size_);
    expected = pages_[id].checksum;
    if (flip) {
      // Corrupt one bit of the *delivered copy* — the stored image stays
      // intact, so a retry after the checksum failure recovers. The bit
      // position is a pure function of (id, read ordinal): deterministic
      // under a deterministic schedule.
      uint64_t pos = (static_cast<uint64_t>(id) * 1315423911ull +
                      stats_.physical_reads) %
                     (static_cast<uint64_t>(page_size_) * 8);
      out[pos / 8] = static_cast<char>(
          static_cast<unsigned char>(out[pos / 8]) ^ (1u << (pos % 8)));
    }
  }
  if (Checksum(out, page_size_) != expected) {
    io_counters_.OnChecksumFailure();
    return Status::DataLoss("checksum mismatch on page " + std::to_string(id));
  }
  return Status::OK();
}

Status PageStore::Write(PageId id, const char* in) {
  FaultInjector* injector = fault_injector();
  ChargeLatency(injector, /*is_read=*/false);
  if (injector != nullptr && injector->ShouldFire(FaultPoint::kPageWrite)) {
    io_counters_.OnWriteFault();
    return Status::IOError("injected write fault on page " +
                           std::to_string(id));
  }
  FaultSpec torn_spec;
  bool torn = injector != nullptr &&
              injector->ShouldFire(FaultPoint::kTornWrite, &torn_spec);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id < 0 || static_cast<size_t>(id) >= pages_.size() ||
        pages_[id].type == PageType::kFree) {
      return Status::NotFound("write to unallocated page " +
                              std::to_string(id));
    }
    stats_.physical_writes++;
    // The checksum always covers the full intended image. On a torn
    // write only a prefix lands, so the image no longer matches its own
    // checksum — the read path reports that as kDataLoss until a later
    // full write repairs the page.
    pages_[id].checksum = Checksum(in, page_size_);
    size_t n = torn ? page_size_ / 2 : page_size_;
    std::memcpy(pages_[id].image.data(), in, n);
  }
  if (torn) {
    io_counters_.OnWriteFault();
    if (!torn_spec.silent) {
      return Status::IOError("torn write on page " + std::to_string(id));
    }
    // Silent tear: the device reports success; only the checksum on the
    // next physical read catches it.
  }
  return Status::OK();
}

PageType PageStore::TypeOf(PageId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= pages_.size()) return PageType::kFree;
  return pages_[id].type;
}

bool PageStore::IsAllocated(PageId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return id >= 0 && static_cast<size_t>(id) < pages_.size() &&
         pages_[id].type != PageType::kFree;
}

size_t PageStore::allocated_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size() - free_list_.size();
}

PageStoreStats PageStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PageStore::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = PageStoreStats();
}

}  // namespace mtdb
