#include <gtest/gtest.h>

#include "core/chunk_folding_layout.h"
#include "core/heat.h"
#include "mapping_test_util.h"

namespace mtdb {
namespace mapping {
namespace {

TEST(HeatProfileTest, RecordsAndSums) {
  HeatProfile heat;
  heat.Record("account", "beds");
  heat.Record("account", "beds", 4);
  heat.Record("Account", "BEDS");  // case-insensitive
  EXPECT_EQ(heat.ColumnHeat("account", "beds"), 6u);
  EXPECT_EQ(heat.ColumnHeat("account", "other"), 0u);
  EXPECT_EQ(heat.total(), 6u);
  heat.Clear();
  EXPECT_EQ(heat.total(), 0u);
}

TEST(HeatProfileTest, ExtensionHeatSumsItsColumns) {
  AppSchema app = FigureFourSchema();
  HeatProfile heat;
  heat.Record("account", "hospital", 10);
  heat.Record("account", "beds", 5);
  heat.Record("account", "dealers", 1);
  const ExtensionDef* health = app.FindExtension("healthcare");
  const ExtensionDef* automotive = app.FindExtension("automotive");
  EXPECT_EQ(heat.ExtensionHeat(*health), 15u);
  EXPECT_EQ(heat.ExtensionHeat(*automotive), 1u);
}

TEST(HeatAdvisorTest, PicksHottestExtensionsWithinBudget) {
  AppSchema app = FigureFourSchema();
  HeatProfile heat;
  heat.Record("account", "hospital", 100);
  heat.Record("account", "dealers", 5);
  auto advised = AdviseConventionalExtensions(app, heat, 1);
  ASSERT_EQ(advised.size(), 1u);
  EXPECT_TRUE(advised.count("healthcare") == 1);
  auto both = AdviseConventionalExtensions(app, heat, 5);
  EXPECT_EQ(both.size(), 2u);
  auto none = AdviseConventionalExtensions(app, heat, 0);
  EXPECT_TRUE(none.empty());
}

TEST(HeatAdvisorTest, ColdExtensionsNeverAdvised) {
  AppSchema app = FigureFourSchema();
  HeatProfile heat;  // no recorded accesses
  EXPECT_TRUE(AdviseConventionalExtensions(app, heat, 10).empty());
}

TEST(HeatRecordingTest, LayerObservesQueryColumns) {
  AppSchema app = FigureFourSchema();
  Database db;
  ChunkTableLayout layout(&db, &app);
  ASSERT_TRUE(layout.Bootstrap().ok());
  ASSERT_TRUE(LoadFigureFourData(&layout).ok());

  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(
        layout.Query(17, "SELECT beds FROM account WHERE hospital = 'State'")
            .ok());
  }
  ASSERT_TRUE(layout.Query(17, "SELECT name FROM account").ok());

  EXPECT_EQ(layout.heat_profile().ColumnHeat("account", "beds"), 7u);
  EXPECT_EQ(layout.heat_profile().ColumnHeat("account", "hospital"), 7u);
  EXPECT_EQ(layout.heat_profile().ColumnHeat("account", "name"), 1u);
  EXPECT_EQ(layout.heat_profile().ColumnHeat("account", "aid"), 0u);
}

TEST(HeatRecordingTest, AdvisorDrivenFoldingLayout) {
  // Observe a skewed workload on a plain chunk layout, ask the advisor,
  // then deploy Chunk Folding with the advised hot extension kept
  // conventional — the end-to-end tuning loop.
  AppSchema app = FigureFourSchema();
  Database observe_db;
  ChunkTableLayout observed(&observe_db, &app);
  ASSERT_TRUE(observed.Bootstrap().ok());
  ASSERT_TRUE(LoadFigureFourData(&observed).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        observed.Query(17, "SELECT hospital, beds FROM account").ok());
  }
  ASSERT_TRUE(observed.Query(42, "SELECT dealers FROM account").ok());

  auto advised =
      AdviseConventionalExtensions(app, observed.heat_profile(), 1);
  ASSERT_EQ(advised.size(), 1u);
  EXPECT_EQ(*advised.begin(), "healthcare");

  Database tuned_db;
  ChunkFoldingOptions options;
  options.conventional_extensions = advised;
  ChunkFoldingLayout tuned(&tuned_db, &app, options);
  ASSERT_TRUE(tuned.Bootstrap().ok());
  ASSERT_TRUE(LoadFigureFourData(&tuned).ok());
  // The hot extension now lives in its own conventional table.
  auto conv = tuned_db.Query("SELECT COUNT(*) FROM cfext_healthcare");
  ASSERT_TRUE(conv.ok());
  EXPECT_EQ(conv->rows[0][0].AsInt64(), 2);
}

}  // namespace
}  // namespace mapping
}  // namespace mtdb
