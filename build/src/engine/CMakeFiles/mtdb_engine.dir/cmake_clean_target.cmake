file(REMOVE_RECURSE
  "libmtdb_engine.a"
)
