// Beyond-paper extension (the §7 agenda): run the full CRM application
// through the mapping layer itself — extensions included — and compare
// every schema-mapping technique under one mixed OLTP workload. The
// paper's testbed only modeled the Extension Table Layout with base
// tables; this is "Chunk Folding in a more complete setting".
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/basic_layout.h"
#include "core/chunk_folding_layout.h"
#include "core/chunk_layout.h"
#include "core/extension_layout.h"
#include "core/pivot_layout.h"
#include "core/private_layout.h"
#include "core/universal_layout.h"
#include "testbed/crm_schema.h"

namespace mtdb {
namespace bench {
namespace {

using mapping::AppSchema;
using mapping::SchemaMapping;

struct LayoutUnderTest {
  const char* name;
  std::unique_ptr<Database> db;
  std::unique_ptr<SchemaMapping> layout;
};

std::unique_ptr<SchemaMapping> Make(const std::string& name, Database* db,
                                    AppSchema* app) {
  using namespace mapping;  // NOLINT
  if (name == "private") return std::make_unique<PrivateTableLayout>(db, app);
  if (name == "extension") {
    return std::make_unique<ExtensionTableLayout>(db, app);
  }
  if (name == "universal") {
    return std::make_unique<UniversalTableLayout>(db, app);
  }
  if (name == "pivot") return std::make_unique<PivotTableLayout>(db, app);
  if (name == "chunk") return std::make_unique<ChunkTableLayout>(db, app);
  return std::make_unique<ChunkFoldingLayout>(db, app);
}

struct WorkloadResult {
  double elapsed_s = 0;
  int actions = 0;
  SampleSet point, report, insert, update;
};

/// One mixed logical workload, identical across layouts.
Result<WorkloadResult> RunWorkload(SchemaMapping* layout, int tenants,
                                   int rows, int actions, uint64_t seed) {
  Rng rng(seed);
  WorkloadResult out;
  auto timed = [&](SampleSet* set, auto&& fn) -> Status {
    auto start = std::chrono::steady_clock::now();
    Status st = fn();
    auto end = std::chrono::steady_clock::now();
    if (st.ok()) {
      set->Add(std::chrono::duration<double, std::milli>(end - start).count());
    }
    return st;
  };
  auto begin = std::chrono::steady_clock::now();
  for (int i = 0; i < actions; ++i) {
    TenantId t = static_cast<TenantId>(rng.Uniform(0, tenants - 1));
    int64_t id = rng.Uniform(1, rows);
    int kind = static_cast<int>(rng.Uniform(0, 99));
    Status st;
    if (kind < 55) {
      // Point select by entity id (Select Light).
      st = timed(&out.point, [&] {
        return layout
            ->Query(t, "SELECT * FROM account WHERE id = ?",
                    {Value::Int64(id)})
            .status();
      });
    } else if (kind < 70) {
      // Reporting (Select Heavy): per-status rollup incl. extension
      // columns when the tenant has them.
      st = timed(&out.report, [&] {
        return layout
            ->Query(t, "SELECT status, COUNT(*), SUM(amount) FROM account "
                       "GROUP BY status")
            .status();
      });
    } else if (kind < 85) {
      // Insert Light.
      st = timed(&out.insert, [&] {
        return layout
            ->Execute(t, "INSERT INTO account (id, campaign_id, name, "
                         "status, amount) VALUES (?, 0, ?, 'open', ?)",
                      {Value::Int64(1000000 + rng.Uniform(0, 1000000000)),
                       Value::String(rng.Word(5, 10)),
                       Value::Double(rng.UniformDouble(10, 10000))})
            .status();
      });
    } else {
      // Update Light by entity id.
      st = timed(&out.update, [&] {
        return layout
            ->Execute(t, "UPDATE account SET amount = ? WHERE id = ?",
                      {Value::Double(rng.UniformDouble(10, 10000)),
                       Value::Int64(id)})
            .status();
      });
    }
    if (!st.ok()) return st;
    out.actions++;
  }
  auto end = std::chrono::steady_clock::now();
  out.elapsed_s = std::chrono::duration<double>(end - begin).count();
  return out;
}

int Main() {
  int tenants = 24;
  int rows = 40;
  int actions = 1500;
  if (const char* env = std::getenv("MTDB_BENCH_TENANTS")) {
    tenants = std::atoi(env);
  }

  AppSchema app = testbed::BuildCrmAppSchema();
  std::printf("=== CRM workload across schema-mapping layouts ===\n");
  std::printf("%d tenants (1/3 healthcare, 1/3 automotive ext), %d accounts "
              "each, %d actions\n\n",
              tenants, rows, actions);
  std::printf("%-14s %8s %9s %12s %11s %11s %11s %11s\n", "layout", "tables",
              "meta(KB)", "actions/s", "p95 point", "p95 report", "p95 ins",
              "p95 upd");

  for (const char* name : {"basic", "private", "extension", "universal",
                           "pivot", "chunk", "chunkfolding"}) {
    auto db = std::make_unique<Database>();
    std::unique_ptr<SchemaMapping> layout;
    if (std::string(name) == "basic") {
      layout = std::make_unique<mapping::BasicLayout>(db.get(), &app);
    } else {
      layout = Make(name, db.get(), &app);
    }
    if (!layout->Bootstrap().ok()) return 1;
    Rng rng(11);
    for (TenantId t = 0; t < tenants; ++t) {
      if (!layout->CreateTenant(t).ok()) return 1;
      // Basic cannot host extensions; others stagger them.
      if (std::string(name) != "basic") {
        if (t % 3 == 0 &&
            !layout->EnableExtension(t, "healthcare_account").ok()) {
          return 1;
        }
        if (t % 3 == 1 &&
            !layout->EnableExtension(t, "automotive_account").ok()) {
          return 1;
        }
      }
      for (int64_t id = 1; id <= rows; ++id) {
        Row row{Value::Int64(id), Value::Int64(0),
                Value::String(rng.Word(5, 10)),
                Value::String(id % 2 == 0 ? "open" : "won")};
        // Pad base columns up to the logical width with NULLs via the
        // named-columns insert path.
        Status st =
            layout
                ->Execute(t, "INSERT INTO account (id, campaign_id, name, "
                             "status, amount) VALUES (?, ?, ?, ?, ?)",
                          {row[0], row[1], row[2], row[3],
                           Value::Double(static_cast<double>(id) * 7.5)})
                .status();
        if (!st.ok()) {
          std::fprintf(stderr, "load(%s): %s\n", name, st.ToString().c_str());
          return 1;
        }
      }
    }

    auto result = RunWorkload(layout.get(), tenants, rows, actions, 99);
    if (!result.ok()) {
      std::fprintf(stderr, "workload(%s): %s\n", name,
                   result.status().ToString().c_str());
      return 1;
    }
    EngineStats stats = db->Stats();
    std::printf("%-14s %8zu %9llu %12.0f %10.2f %11.2f %10.2f %10.2f\n", name,
                stats.tables,
                static_cast<unsigned long long>(stats.metadata_bytes / 1024),
                result->actions / result->elapsed_s,
                result->point.Quantile(0.95), result->report.Quantile(0.95),
                result->insert.Quantile(0.95), result->update.Quantile(0.95));
  }
  std::printf(
      "\nExpected shape: private/basic are fastest but sit at the two\n"
      "extremes of the consolidation-extensibility trade-off; pivot pays\n"
      "the most reconstruction joins; chunk folding approaches\n"
      "extension-table performance with generic-structure consolidation\n"
      "(Figure 2 / Section 3's trade-off, measured).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace mtdb

int main() { return mtdb::bench::Main(); }
