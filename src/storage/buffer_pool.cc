#include "storage/buffer_pool.h"

#include "common/deadline.h"
#include "common/trace.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

namespace mtdb {

namespace {
bool IsTransientRead(const Status& st) {
  // A bit flip corrupts only the delivered copy, so kDataLoss is worth
  // re-reading too: the stored image may still be intact.
  return st.code() == StatusCode::kIOError ||
         st.code() == StatusCode::kDataLoss;
}
bool IsTransientWrite(const Status& st) {
  return st.code() == StatusCode::kIOError;
}
void Backoff(uint64_t ns) {
  if (ns > 0) std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

// The capture installed on this thread, if any. A plain thread_local
// pointer: the hooks below cost one load when no durability layer is
// attached (the pointer stays null).
thread_local PageMutationCapture* tls_capture = nullptr;
}  // namespace

PageCaptureScope::PageCaptureScope(PageMutationCapture* capture)
    : previous_(tls_capture) {
  tls_capture = capture;
}

PageCaptureScope::~PageCaptureScope() { tls_capture = previous_; }

PageMutationCapture* PageCaptureScope::Current() { return tls_capture; }

Status BufferPool::ReadWithRetry(PageId id, char* out) {
  uint64_t backoff = retry_policy_.initial_backoff_ns;
  Status st;
  for (int attempt = 1;; attempt++) {
    st = store_->Read(id, out);
    if (st.ok() || !IsTransientRead(st)) return st;
    if (attempt >= retry_policy_.max_attempts) break;
    // Retrying on behalf of a statement past its deadline only delays
    // its cancellation; surface the expiry instead of sleeping.
    MTDB_RETURN_IF_ERROR(deadline::Check());
    store_->io_counters().OnReadRetry();
    Backoff(backoff);
    backoff = std::min(backoff * 2, retry_policy_.max_backoff_ns);
  }
  store_->io_counters().OnRetryExhausted();
  return st;
}

Status BufferPool::WriteWithRetry(PageId id, const char* in) {
  uint64_t backoff = retry_policy_.initial_backoff_ns;
  Status st;
  for (int attempt = 1;; attempt++) {
    st = store_->Write(id, in);
    if (st.ok() || !IsTransientWrite(st)) return st;
    if (attempt >= retry_policy_.max_attempts) break;
    store_->io_counters().OnWriteRetry();
    Backoff(backoff);
    backoff = std::min(backoff * 2, retry_policy_.max_backoff_ns);
  }
  store_->io_counters().OnRetryExhausted();
  return st;
}

BufferPool::BufferPool(PageStore* store, size_t capacity)
    : store_(store), capacity_(capacity == 0 ? 1 : capacity) {
  DistributeCapacity(capacity_);
}

void BufferPool::DistributeCapacity(size_t total) {
  // Every shard gets at least one frame so a pinned page can always live
  // somewhere; small budgets therefore overshoot slightly rather than
  // starve a shard.
  size_t share = total / kBufferPoolShards;
  if (share == 0) share = 1;
  for (auto& shard : shards_) {
    std::lock_guard<Latch> lock(shard.mu);
    shard.capacity = share;
    EvictIfNeeded(shard);
  }
}

void BufferPool::Touch(Shard& shard, Frame* frame, PageId id) {
  if (frame->in_lru) {
    shard.lru.erase(frame->lru_it);
  }
  shard.lru.push_front(id);
  frame->lru_it = shard.lru.begin();
  frame->in_lru = true;
}

Result<Page*> BufferPool::FetchPage(PageId id) {
  Shard& shard = shards_[ShardOf(id)];
  PageType type = store_->TypeOf(id);
  {
    std::lock_guard<Latch> lock(shard.mu);
    if (type == PageType::kIndex) {
      shard.stats.logical_reads_index++;
    } else {
      shard.stats.logical_reads_data++;
    }
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      Frame* frame = it->second.get();
      frame->pin_count++;
      Touch(shard, frame, id);
      trace::OnPoolHit();
      return &frame->page;
    }
    if (type == PageType::kIndex) {
      shard.stats.misses_index++;
    } else {
      shard.stats.misses_data++;
    }
    trace::OnPoolMiss();
  }
  // Miss: read through with the shard latch dropped so the device stall
  // does not serialize other traffic on this shard. Two sessions may
  // race on the same cold page; both read identical bytes (writers to
  // the page are excluded by the owning table/index latch) and the loser
  // of the insert below adopts the winner's frame.
  auto frame = std::make_unique<Frame>(store_->page_size());
  frame->page.set_id(id);
  frame->page.set_type(type);
  MTDB_RETURN_IF_ERROR(deadline::Check());
  MTDB_RETURN_IF_ERROR(ReadWithRetry(id, frame->page.data()));
  std::lock_guard<Latch> lock(shard.mu);
  auto [it, inserted] = shard.frames.try_emplace(id, std::move(frame));
  Frame* raw = it->second.get();
  if (inserted) {
    raw->pin_count = 1;
    Touch(shard, raw, id);
    EvictIfNeeded(shard);
  } else {
    raw->pin_count++;
    Touch(shard, raw, id);
  }
  return &raw->page;
}

Page* BufferPool::NewPage(PageType type) {
  uint64_t seq = 0;
  PageId id = store_->Allocate(type, &seq);
  if (PageMutationCapture* cap = tls_capture) {
    cap->ops.push_back(
        {PageMutationCapture::Op::Kind::kAlloc, id, type, seq});
    cap->dirtied.push_back(id);
    lockdep::OnCapturedMutation(cap);
  } else if (wal_checks_) {
    lockdep::ReportUnloggedMutation("NewPage", static_cast<uint64_t>(id));
  }
  Shard& shard = shards_[ShardOf(id)];
  std::lock_guard<Latch> lock(shard.mu);
  auto frame = std::make_unique<Frame>(store_->page_size());
  frame->page.set_id(id);
  frame->page.set_type(type);
  frame->pin_count = 1;
  frame->dirty = true;
  Frame* raw = frame.get();
  shard.frames.emplace(id, std::move(frame));
  Touch(shard, raw, id);
  EvictIfNeeded(shard);
  return &raw->page;
}

void BufferPool::UnpinPage(PageId id, bool dirty) {
  Shard& shard = shards_[ShardOf(id)];
  std::lock_guard<Latch> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) return;
  Frame* frame = it->second.get();
  assert(frame->pin_count > 0);
  frame->pin_count--;
  if (dirty) {
    frame->dirty = true;
    if (PageMutationCapture* cap = tls_capture) {
      cap->dirtied.push_back(id);
      lockdep::OnCapturedMutation(cap);
    } else if (wal_checks_) {
      lockdep::ReportUnloggedMutation("UnpinPage(dirty)",
                                      static_cast<uint64_t>(id));
    }
  }
  if (frame->pin_count == 0 && shard.frames.size() > shard.capacity) {
    EvictIfNeeded(shard);
  }
}

void BufferPool::DeletePage(PageId id) {
  Shard& shard = shards_[ShardOf(id)];
  {
    std::lock_guard<Latch> lock(shard.mu);
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      Frame* frame = it->second.get();
      assert(frame->pin_count == 0);
      if (frame->in_lru) shard.lru.erase(frame->lru_it);
      shard.frames.erase(it);
    }
  }
  uint64_t seq = 0;
  store_->Deallocate(id, &seq);
  // seq == 0 means the store ignored an invalid id: nothing happened, so
  // nothing is logged (replay treats a dealloc of a free page as
  // corruption).
  if (seq != 0) {
    if (PageMutationCapture* cap = tls_capture) {
      cap->ops.push_back(
          {PageMutationCapture::Op::Kind::kDealloc, id, PageType::kFree, seq});
      lockdep::OnCapturedMutation(cap);
    } else if (wal_checks_) {
      lockdep::ReportUnloggedMutation("DeletePage",
                                      static_cast<uint64_t>(id));
    }
  }
}

Status BufferPool::FlushFrame(Frame* frame) {
  if (frame->dirty) {
    // On failure the frame stays dirty (and cached), so nothing is lost:
    // the write-back is simply deferred to the next flush or eviction.
    MTDB_RETURN_IF_ERROR(
        WriteWithRetry(frame->page.id(), frame->page.data()));
    frame->dirty = false;
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  Status first;
  for (auto& shard : shards_) {
    std::lock_guard<Latch> lock(shard.mu);
    for (auto& [id, frame] : shard.frames) {
      Status st = FlushFrame(frame.get());
      if (!st.ok() && first.ok()) first = st;
    }
  }
  return first;
}

Status BufferPool::EvictAll() {
  Status first;
  for (auto& shard : shards_) {
    std::lock_guard<Latch> lock(shard.mu);
    for (auto it = shard.frames.begin(); it != shard.frames.end();) {
      Frame* frame = it->second.get();
      if (frame->pin_count == 0) {
        Status st = FlushFrame(frame);
        if (!st.ok()) {
          // Keep the dirty frame rather than drop unpersisted bytes.
          if (first.ok()) first = st;
          ++it;
          continue;
        }
        if (frame->in_lru) shard.lru.erase(frame->lru_it);
        it = shard.frames.erase(it);
        shard.stats.evictions++;
      } else {
        ++it;
      }
    }
  }
  return first;
}

void BufferPool::SetCapacity(size_t frames) {
  size_t total = frames == 0 ? 1 : frames;
  {
    std::lock_guard<Latch> lock(capacity_mu_);
    capacity_ = total;
  }
  DistributeCapacity(total);
}

size_t BufferPool::capacity() const {
  std::lock_guard<Latch> lock(capacity_mu_);
  return capacity_;
}

size_t BufferPool::frames_in_use() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<Latch> lock(shard.mu);
    total += shard.frames.size();
  }
  return total;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<Latch> lock(shard.mu);
    total.logical_reads_data += shard.stats.logical_reads_data;
    total.logical_reads_index += shard.stats.logical_reads_index;
    total.misses_data += shard.stats.misses_data;
    total.misses_index += shard.stats.misses_index;
    total.evictions += shard.stats.evictions;
  }
  return total;
}

void BufferPool::ResetStats() {
  for (auto& shard : shards_) {
    std::lock_guard<Latch> lock(shard.mu);
    shard.stats = BufferPoolStats();
  }
}

void BufferPool::EvictIfNeeded(Shard& shard) {
  while (shard.frames.size() > shard.capacity && !shard.lru.empty()) {
    // Scan from LRU end for an unpinned victim.
    bool evicted = false;
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
      PageId victim = *it;
      auto fit = shard.frames.find(victim);
      assert(fit != shard.frames.end());
      Frame* frame = fit->second.get();
      if (frame->pin_count == 0) {
        if (!FlushFrame(frame).ok()) {
          // Write-back failed even after retries: keep the dirty frame
          // cached (no data loss) and stop evicting — the shard
          // overshoots its budget until the device recovers.
          return;
        }
        shard.lru.erase(std::next(it).base());
        shard.frames.erase(fit);
        shard.stats.evictions++;
        evicted = true;
        break;
      }
    }
    if (!evicted) break;  // everything pinned: allow temporary overshoot
  }
}

}  // namespace mtdb
