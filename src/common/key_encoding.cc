#include "common/key_encoding.h"

#include <cstring>

namespace mtdb {

namespace {

constexpr char kTagNull = 0x01;
constexpr char kTagNumeric = 0x02;
constexpr char kTagString = 0x03;

void AppendBigEndian64(uint64_t bits, std::string* out) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    out->push_back(static_cast<char>((bits >> shift) & 0xFF));
  }
}

uint64_t DoubleBits(double d) {
  uint64_t bits;
  std::memcpy(&bits, &d, sizeof(bits));
  // Total order on doubles: flip sign bit for positives, all bits for
  // negatives.
  if (bits & (1ULL << 63)) return ~bits;
  return bits | (1ULL << 63);
}

}  // namespace

void KeyEncoder::Encode(const Value& v, std::string* out) {
  if (v.is_null()) {
    out->push_back(kTagNull);
    return;
  }
  switch (v.type()) {
    case TypeId::kBool:
    case TypeId::kInt32:
    case TypeId::kInt64:
    case TypeId::kDate: {
      out->push_back(kTagNumeric);
      uint64_t bits = static_cast<uint64_t>(v.AsInt64()) ^ (1ULL << 63);
      AppendBigEndian64(bits, out);
      return;
    }
    case TypeId::kDouble: {
      out->push_back(kTagNumeric);
      // Integral doubles must encode identically to equal integers so
      // mixed-type equality predicates hit the same index entries.
      double d = v.AsDouble();
      int64_t as_int = static_cast<int64_t>(d);
      if (d == static_cast<double>(as_int)) {
        AppendBigEndian64(static_cast<uint64_t>(as_int) ^ (1ULL << 63), out);
      } else {
        // Non-integral doubles use a distinct total-order encoding; they
        // interleave correctly with integers only within double range,
        // which suffices for the engine's index predicates.
        AppendBigEndian64(DoubleBits(d), out);
      }
      return;
    }
    case TypeId::kString: {
      out->push_back(kTagString);
      for (char c : v.AsString()) {
        if (c == '\0') {
          out->push_back('\0');
          out->push_back('\xFF');
        } else {
          out->push_back(c);
        }
      }
      out->push_back('\0');
      out->push_back('\0');
      return;
    }
    case TypeId::kNull:
      out->push_back(kTagNull);
      return;
  }
}

std::string KeyEncoder::EncodeKey(const std::vector<Value>& values) {
  std::string out;
  out.reserve(values.size() * 10);
  for (const Value& v : values) Encode(v, &out);
  return out;
}

void KeyEncoder::EncodePrefixRange(const std::vector<Value>& prefix,
                                   std::string* lo, std::string* hi) {
  *lo = EncodeKey(prefix);
  // Upper bound: the prefix followed by the maximal byte suffix. Since no
  // encoded component starts with 0xFF (tags are 0x01..0x03), appending
  // 0xFF yields a string greater than every extension of the prefix.
  *hi = *lo;
  hi->push_back('\xFF');
}

}  // namespace mtdb
