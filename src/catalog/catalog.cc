#include "catalog/catalog.h"

#include <algorithm>
#include <cstring>
#include <mutex>

#include "common/key_encoding.h"

namespace mtdb {

namespace {

// Little-endian encode/decode helpers for the Snapshot blob. The blob is
// integrity-protected by whichever durable record carries it (WAL frame
// or checkpoint meta checksum), so there is no checksum here.
void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}
void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}
void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}
void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

class Cursor {
 public:
  Cursor(const char* data, size_t len) : data_(data), len_(len) {}
  bool U8(uint8_t* v) { return Raw(v, 1); }
  bool U32(uint32_t* v) { return Raw(v, 4); }
  bool U64(uint64_t* v) { return Raw(v, 8); }
  bool I32(int32_t* v) { return Raw(v, 4); }
  bool Str(std::string* out) {
    uint32_t n = 0;
    if (!U32(&n) || len_ - pos_ < n) return false;
    out->assign(data_ + pos_, n);
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == len_; }

 private:
  bool Raw(void* v, size_t n) {
    if (len_ - pos_ < n) return false;
    std::memcpy(v, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const char* data_;
  size_t len_;
  size_t pos_ = 0;
};

// Lockdep order keys for the kTableIndex latch family. The engine's
// canonical acquisition order is tables ascending by TableId, and within
// a table the heap before its indexes in creation (ascending IndexId)
// order; these keys make the validator check exactly that.
uint64_t HeapOrderKey(TableId table) {
  return static_cast<uint64_t>(table) * 1'000'000;
}
uint64_t IndexOrderKey(TableId table, IndexId index) {
  return static_cast<uint64_t>(table) * 1'000'000 +
         static_cast<uint64_t>(index);
}

}  // namespace

const IndexInfo* TableInfo::FindIndexOnPrefix(
    const std::vector<size_t>& cols) const {
  for (const auto& idx : indexes) {
    if (idx->key_columns.size() >= cols.size() &&
        std::equal(cols.begin(), cols.end(), idx->key_columns.begin())) {
      return idx.get();
    }
  }
  return nullptr;
}

Catalog::Catalog(BufferPool* pool, uint64_t memory_budget_bytes,
                 MetadataCosts costs)
    : pool_(pool), memory_budget_(memory_budget_bytes), costs_(costs) {
  pool_->SetCapacity(BufferFramesLocked());
}

size_t Catalog::BufferFramesLocked() const {
  uint64_t page_size = pool_->store()->page_size();
  if (metadata_bytes_ >= memory_budget_) return 1;
  uint64_t left = memory_budget_ - metadata_bytes_;
  size_t frames = static_cast<size_t>(left / page_size);
  return frames < 1 ? 1 : frames;
}

size_t Catalog::BufferFrames() const {
  std::shared_lock<SharedLatch> lock(mu_);
  return BufferFramesLocked();
}

uint64_t Catalog::metadata_bytes() const {
  std::shared_lock<SharedLatch> lock(mu_);
  return metadata_bytes_;
}

void Catalog::Recharge(int64_t delta_bytes) {
  if (delta_bytes < 0 && metadata_bytes_ < static_cast<uint64_t>(-delta_bytes)) {
    metadata_bytes_ = 0;
  } else {
    metadata_bytes_ = static_cast<uint64_t>(
        static_cast<int64_t>(metadata_bytes_) + delta_bytes);
  }
  pool_->SetCapacity(BufferFramesLocked());
}

Result<TableInfo*> Catalog::CreateTable(const std::string& name,
                                        Schema schema) {
  std::unique_lock<SharedLatch> lock(mu_);
  std::string key = IdentLower(name);
  if (tables_.count(key) != 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  if (schema.size() == 0) {
    return Status::InvalidArgument("table must have at least one column");
  }
  auto info = std::make_unique<TableInfo>();
  info->id = next_table_id_++;
  info->name = name;
  info->schema = std::move(schema);
  info->codec = std::make_unique<RowCodec>(info->schema.Types());
  info->heap = std::make_unique<TableHeap>(pool_);
  info->heap->latch().SetOrderKey(HeapOrderKey(info->id));
  TableInfo* raw = info.get();
  tables_.emplace(key, std::move(info));
  Recharge(static_cast<int64_t>(costs_.bytes_per_table +
                                costs_.bytes_per_column * raw->schema.size()));
  return raw;
}

Status Catalog::DropTable(const std::string& name) {
  std::unique_lock<SharedLatch> lock(mu_);
  std::string key = IdentLower(name);
  auto it = tables_.find(key);
  if (it == tables_.end()) {
    return Status::NotFound("no such table: " + name);
  }
  TableInfo* info = it->second.get();
  int64_t credit = static_cast<int64_t>(
      costs_.bytes_per_table + costs_.bytes_per_column * info->schema.size() +
      costs_.bytes_per_index * info->indexes.size());
  for (auto& idx : info->indexes) {
    index_to_table_.erase(IdentLower(idx->name));
    idx->tree->Free();
  }
  info->heap->Free();
  tables_.erase(it);
  Recharge(-credit);
  return Status::OK();
}

Result<IndexInfo*> Catalog::CreateIndex(
    const std::string& table, const std::string& index_name,
    const std::vector<std::string>& column_names, bool unique) {
  std::unique_lock<SharedLatch> lock(mu_);
  TableInfo* info = FindTableLocked(table);
  if (info == nullptr) return Status::NotFound("no such table: " + table);
  std::string ikey = IdentLower(index_name);
  if (index_to_table_.count(ikey) != 0) {
    return Status::AlreadyExists("index exists: " + index_name);
  }
  std::vector<size_t> cols;
  for (const std::string& cname : column_names) {
    auto pos = info->schema.Find(cname);
    if (!pos.has_value()) {
      return Status::NotFound("no column " + cname + " in " + table);
    }
    cols.push_back(*pos);
  }
  auto idx = std::make_unique<IndexInfo>();
  idx->id = next_index_id_++;
  idx->name = index_name;
  idx->key_columns = std::move(cols);
  idx->unique = unique;
  idx->tree = std::make_unique<BTree>(pool_);
  idx->tree->latch().SetOrderKey(IndexOrderKey(info->id, idx->id));

  // Backfill from existing rows. Any failure frees the half-built tree
  // so the catalog is left exactly as before the statement.
  TableHeap::Iterator it = info->heap->Begin();
  std::string image;
  Rid rid;
  while (true) {
    Result<bool> more = it.Next(&image, &rid);
    if (!more.ok()) {
      idx->tree->Free();
      return more.status();
    }
    if (!*more) break;
    Result<Row> row = info->codec->Decode(image.data(),
                                          static_cast<uint32_t>(image.size()));
    if (!row.ok()) {
      idx->tree->Free();
      return row.status();
    }
    std::vector<Value> key_vals;
    for (size_t c : idx->key_columns) key_vals.push_back((*row)[c]);
    std::string key = KeyEncoder::EncodeKey(key_vals);
    if (idx->unique) {
      Result<bool> dup = idx->tree->Contains(key);
      if (!dup.ok()) {
        idx->tree->Free();
        return dup.status();
      }
      if (*dup) {
        idx->tree->Free();
        return Status::ConstraintViolation(
            "duplicate key building unique index " + index_name);
      }
    }
    Status ist = idx->tree->Insert(key, rid);
    if (!ist.ok()) {
      idx->tree->Free();
      return ist;
    }
  }

  IndexInfo* raw = idx.get();
  info->indexes.push_back(std::move(idx));
  index_to_table_.emplace(ikey, info->id);
  Recharge(static_cast<int64_t>(costs_.bytes_per_index));
  return raw;
}

Status Catalog::DropIndex(const std::string& index_name) {
  std::unique_lock<SharedLatch> lock(mu_);
  std::string ikey = IdentLower(index_name);
  auto it = index_to_table_.find(ikey);
  if (it == index_to_table_.end()) {
    return Status::NotFound("no such index: " + index_name);
  }
  TableInfo* info = FindTableLocked(it->second);
  index_to_table_.erase(it);
  for (auto iit = info->indexes.begin(); iit != info->indexes.end(); ++iit) {
    if (IdentEquals((*iit)->name, index_name)) {
      (*iit)->tree->Free();
      info->indexes.erase(iit);
      Recharge(-static_cast<int64_t>(costs_.bytes_per_index));
      return Status::OK();
    }
  }
  return Status::Internal("index map out of sync");
}

TableInfo* Catalog::FindTableLocked(const std::string& name) const {
  auto it = tables_.find(IdentLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

TableInfo* Catalog::FindTableLocked(TableId id) const {
  for (const auto& [_, info] : tables_) {
    if (info->id == id) return info.get();
  }
  return nullptr;
}

TableInfo* Catalog::GetTable(const std::string& name) {
  std::shared_lock<SharedLatch> lock(mu_);
  return FindTableLocked(name);
}

const TableInfo* Catalog::GetTable(const std::string& name) const {
  std::shared_lock<SharedLatch> lock(mu_);
  return FindTableLocked(name);
}

TableInfo* Catalog::GetTable(TableId id) {
  std::shared_lock<SharedLatch> lock(mu_);
  return FindTableLocked(id);
}

size_t Catalog::table_count() const {
  std::shared_lock<SharedLatch> lock(mu_);
  return tables_.size();
}

size_t Catalog::index_count() const {
  std::shared_lock<SharedLatch> lock(mu_);
  return index_to_table_.size();
}

std::string Catalog::Snapshot() const {
  std::shared_lock<SharedLatch> lock(mu_);
  std::vector<const TableInfo*> tables;
  tables.reserve(tables_.size());
  for (const auto& [_, info] : tables_) tables.push_back(info.get());
  // Sort by id so equal catalogs encode to equal blobs regardless of
  // hash-map iteration order.
  std::sort(tables.begin(), tables.end(),
            [](const TableInfo* a, const TableInfo* b) { return a->id < b->id; });
  std::string blob;
  PutI32(&blob, next_table_id_);
  PutI32(&blob, next_index_id_);
  PutU32(&blob, static_cast<uint32_t>(tables.size()));
  for (const TableInfo* info : tables) {
    PutI32(&blob, info->id);
    PutStr(&blob, info->name);
    PutU32(&blob, static_cast<uint32_t>(info->schema.size()));
    for (const Column& col : info->schema.columns()) {
      PutStr(&blob, col.name);
      blob.push_back(static_cast<char>(col.type));
      blob.push_back(col.not_null ? 1 : 0);
    }
    PutI32(&blob, info->heap->first_page());
    PutU32(&blob, static_cast<uint32_t>(info->indexes.size()));
    for (const auto& idx : info->indexes) {
      PutI32(&blob, idx->id);
      PutStr(&blob, idx->name);
      blob.push_back(idx->unique ? 1 : 0);
      PutI32(&blob, idx->tree->root());
      PutU32(&blob, static_cast<uint32_t>(idx->key_columns.size()));
      for (size_t c : idx->key_columns) {
        PutU32(&blob, static_cast<uint32_t>(c));
      }
    }
  }
  return blob;
}

Status Catalog::Restore(
    const std::string& blob,
    const std::unordered_map<TableId, TableOverride>& overrides) {
  std::unique_lock<SharedLatch> lock(mu_);
  // The store was rebuilt by recovery; the stale TableInfos must not
  // Free() pages that now belong to the recovered objects.
  tables_.clear();
  index_to_table_.clear();
  metadata_bytes_ = 0;
  next_table_id_ = 1;
  next_index_id_ = 1;
  if (blob.empty()) {
    Recharge(0);
    return Status::OK();
  }

  Status bad = Status::DataLoss("catalog snapshot malformed");
  Cursor cur(blob.data(), blob.size());
  uint32_t table_count = 0;
  if (!cur.I32(&next_table_id_) || !cur.I32(&next_index_id_) ||
      !cur.U32(&table_count)) {
    return bad;
  }
  int64_t charge = 0;
  for (uint32_t t = 0; t < table_count; t++) {
    auto info = std::make_unique<TableInfo>();
    uint32_t column_count = 0;
    if (!cur.I32(&info->id) || !cur.Str(&info->name) ||
        !cur.U32(&column_count)) {
      return bad;
    }
    Schema schema;
    for (uint32_t c = 0; c < column_count; c++) {
      Column col;
      uint8_t type = 0, not_null = 0;
      if (!cur.Str(&col.name) || !cur.U8(&type) || !cur.U8(&not_null)) {
        return bad;
      }
      col.type = static_cast<TypeId>(type);
      col.not_null = not_null != 0;
      schema.AddColumn(std::move(col));
    }
    info->schema = std::move(schema);
    info->codec = std::make_unique<RowCodec>(info->schema.Types());
    PageId first_page = kInvalidPageId;
    uint32_t index_count = 0;
    if (!cur.I32(&first_page) || !cur.U32(&index_count)) return bad;

    const TableOverride* over = nullptr;
    auto oit = overrides.find(info->id);
    if (oit != overrides.end()) {
      over = &oit->second;
      first_page = over->first_page;
    }
    info->heap = std::make_unique<TableHeap>(pool_);
    info->heap->latch().SetOrderKey(HeapOrderKey(info->id));
    MTDB_RETURN_IF_ERROR(info->heap->AttachChain(first_page));

    for (uint32_t i = 0; i < index_count; i++) {
      auto idx = std::make_unique<IndexInfo>();
      uint8_t unique = 0;
      PageId root = kInvalidPageId;
      uint32_t key_count = 0;
      if (!cur.I32(&idx->id) || !cur.Str(&idx->name) || !cur.U8(&unique) ||
          !cur.I32(&root) || !cur.U32(&key_count)) {
        return bad;
      }
      idx->unique = unique != 0;
      for (uint32_t k = 0; k < key_count; k++) {
        uint32_t col = 0;
        if (!cur.U32(&col)) return bad;
        idx->key_columns.push_back(col);
      }
      if (over != nullptr) {
        for (const auto& [iid, moved_root] : over->index_roots) {
          if (iid == idx->id) root = moved_root;
        }
      }
      idx->tree = std::make_unique<BTree>(pool_, root);
      idx->tree->latch().SetOrderKey(IndexOrderKey(info->id, idx->id));
      MTDB_RETURN_IF_ERROR(idx->tree->RebuildFromRoot());
      index_to_table_.emplace(IdentLower(idx->name), info->id);
      info->indexes.push_back(std::move(idx));
    }

    charge += static_cast<int64_t>(
        costs_.bytes_per_table + costs_.bytes_per_column * info->schema.size() +
        costs_.bytes_per_index * info->indexes.size());
    tables_.emplace(IdentLower(info->name), std::move(info));
  }
  if (!cur.AtEnd()) return bad;
  Recharge(charge);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::shared_lock<SharedLatch> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [_, info] : tables_) out.push_back(info->name);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mtdb
