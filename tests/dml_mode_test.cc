#include <gtest/gtest.h>

#include "mapping_test_util.h"

namespace mtdb {
namespace mapping {
namespace {

/// Both §6.3 Phase (b) strategies — per-row atomic statements and
/// batched row-set predicates — must produce identical logical state on
/// every layout that uses the generic DML machinery.
class DmlModeTest
    : public ::testing::TestWithParam<std::tuple<LayoutKind, DmlMode>> {};

TEST_P(DmlModeTest, UpdateAndDeleteSemanticsUnchanged) {
  auto [kind, mode] = GetParam();
  AppSchema app = FigureFourSchema();
  Database db;
  auto layout = MakeLayout(kind, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  ASSERT_TRUE(layout->CreateTenant(17).ok());
  ASSERT_TRUE(layout->EnableExtension(17, "healthcare").ok());
  layout->set_dml_mode(mode);

  for (int i = 1; i <= 30; ++i) {
    ASSERT_TRUE(layout
                    ->Execute(17,
                              "INSERT INTO account (aid, name, hospital, "
                              "beds) VALUES (?, ?, ?, ?)",
                              {Value::Int64(i),
                               Value::String("n" + std::to_string(i)),
                               Value::String("h" + std::to_string(i % 3)),
                               Value::Int64(i * 10)})
                    .ok());
  }

  // Constant multi-row update (batchable in kBatched mode).
  auto updated = layout->Execute(
      17, "UPDATE account SET beds = 999 WHERE hospital = 'h1'");
  ASSERT_TRUE(updated.ok()) << updated.status().ToString();
  EXPECT_EQ(*updated, 10);
  auto check = layout->Query(
      17, "SELECT COUNT(*) FROM account WHERE beds = 999");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->rows[0][0].AsInt64(), 10);

  // Expression update (falls back to per-row even in batched mode).
  auto expr_update = layout->Execute(
      17, "UPDATE account SET beds = beds + 1 WHERE hospital = 'h2'");
  ASSERT_TRUE(expr_update.ok()) << expr_update.status().ToString();
  EXPECT_EQ(*expr_update, 10);
  auto sum = layout->Query(
      17, "SELECT SUM(beds) FROM account WHERE hospital = 'h2'");
  ASSERT_TRUE(sum.ok());
  // h2 rows: aid 2,5,...,29 -> beds i*10 + 1 each.
  int64_t expected = 0;
  for (int i = 1; i <= 30; ++i) {
    if (i % 3 == 2) expected += i * 10 + 1;
  }
  EXPECT_EQ(sum->rows[0][0].AsInt64(), expected);

  // Multi-row delete.
  auto deleted = layout->Execute(
      17, "DELETE FROM account WHERE hospital = 'h0'");
  ASSERT_TRUE(deleted.ok()) << deleted.status().ToString();
  EXPECT_EQ(*deleted, 10);
  auto left = layout->Query(17, "SELECT COUNT(*) FROM account");
  ASSERT_TRUE(left.ok());
  EXPECT_EQ(left->rows[0][0].AsInt64(), 20);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DmlModeTest,
    ::testing::Combine(::testing::Values(LayoutKind::kExtension,
                                         LayoutKind::kUniversal,
                                         LayoutKind::kPivot, LayoutKind::kChunk,
                                         LayoutKind::kChunkFolding),
                       ::testing::Values(DmlMode::kPerRow, DmlMode::kBatched)),
    [](const ::testing::TestParamInfo<std::tuple<LayoutKind, DmlMode>>& info) {
      return std::string(LayoutKindName(std::get<0>(info.param))) +
             (std::get<1>(info.param) == DmlMode::kPerRow ? "_perrow"
                                                          : "_batched");
    });

TEST(DmlModeStatsTest, BatchingIssuesFewerPhysicalStatements) {
  AppSchema app = FigureFourSchema();
  Database per_db, batch_db;
  ChunkTableLayout per_row(&per_db, &app), batched(&batch_db, &app);
  ASSERT_TRUE(per_row.Bootstrap().ok());
  ASSERT_TRUE(batched.Bootstrap().ok());
  batched.set_dml_mode(DmlMode::kBatched);
  for (ChunkTableLayout* l : {&per_row, &batched}) {
    ASSERT_TRUE(l->CreateTenant(1).ok());
    for (int i = 1; i <= 40; ++i) {
      ASSERT_TRUE(l->Execute(1,
                             "INSERT INTO account (aid, name) VALUES (?, ?)",
                             {Value::Int64(i), Value::String("x")})
                      .ok());
    }
  }
  uint64_t per_before = per_row.stats().physical_statements;
  uint64_t batch_before = batched.stats().physical_statements;
  ASSERT_TRUE(per_row.Execute(1, "DELETE FROM account").ok());
  ASSERT_TRUE(batched.Execute(1, "DELETE FROM account").ok());
  uint64_t per_cost = per_row.stats().physical_statements - per_before;
  uint64_t batch_cost = batched.stats().physical_statements - batch_before;
  EXPECT_LT(batch_cost, per_cost);
  // Same logical outcome.
  auto a = per_row.Query(1, "SELECT COUNT(*) FROM account");
  auto b = batched.Query(1, "SELECT COUNT(*) FROM account");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->rows[0][0].AsInt64(), 0);
  EXPECT_EQ(b->rows[0][0].AsInt64(), 0);
}

}  // namespace
}  // namespace mapping
}  // namespace mtdb
