# Empty dependencies file for mtdb_engine.
# This may be replaced when dependencies are built.
