#ifndef MTDB_COMMON_BREAKER_H_
#define MTDB_COMMON_BREAKER_H_

#include <cstdint>

#include "common/latch.h"

namespace mtdb {

/// Circuit-breaker states. Closed is the healthy fast path; Open refuses
/// service until a backoff elapses; HalfOpen admits exactly one probe
/// statement whose outcome decides between re-opening (with doubled
/// backoff) and closing.
enum class BreakerState : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* BreakerStateName(BreakerState s);

/// A self-healing circuit breaker: the successor of the mapping layer's
/// manual quarantine flag. Consecutive hard faults (I/O errors, data
/// loss) trip it open; after an exponentially growing backoff it lets a
/// single probe statement through (half-open) and closes again when the
/// probe completes without another hard fault — no ClearQuarantine
/// polling required.
///
/// Thread-safe: all state lives behind a leaf latch (rank
/// kTenantBreaker) that is never held while calling out. Tunables are
/// passed per call so the owner can share/retune them without touching
/// every breaker instance. Time is passed in as steady-clock nanoseconds
/// so callers (and tests) control the clock.
class CircuitBreaker {
 public:
  struct Options {
    /// Consecutive hard faults that trip the breaker open.
    uint64_t threshold = 8;
    /// Backoff before the first half-open probe; doubles on every failed
    /// probe up to max_backoff_ns.
    uint64_t initial_backoff_ns = 100'000'000;   // 100ms
    uint64_t max_backoff_ns = 5'000'000'000;     // 5s
  };

  /// Admission decision for one statement.
  enum class Decision : uint8_t {
    kAllow,       // closed — normal service
    kAllowProbe,  // half-open — this statement is THE probe
    kReject,      // open (or a probe is already in flight)
  };

  CircuitBreaker() = default;
  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Decides whether a statement may run at `now_ns`. When rejecting,
  /// fills `*retry_after_ns` (when non-null) with the time until the
  /// next probe window (0 while a probe is in flight: retry shortly).
  Decision Admit(uint64_t now_ns, const Options& opts,
                 uint64_t* retry_after_ns = nullptr);

  /// Reports a statement outcome. `hard_fault` marks the fault classes
  /// that feed the breaker (kIOError/kDataLoss); everything else —
  /// success, not-found, constraint violations, deadline expiry — counts
  /// as proof the engine is serving this tenant. Returns the transition
  /// the report caused (or kNone).
  enum class Transition : uint8_t { kNone, kOpened, kClosed };
  Transition OnResult(bool hard_fault, uint64_t now_ns, const Options& opts);

  /// Gives up a half-open probe slot without deciding the tenant's fate:
  /// the statement that won kAllowProbe aborted before producing an
  /// outcome (parse error, early validation failure, explain-only path).
  /// The breaker stays half-open and the next arrival becomes the probe,
  /// so an aborted probe can never wedge the tenant in permanent reject.
  /// No-op unless half-open with a probe outstanding.
  void AbandonProbe();

  BreakerState state() const;

  /// Forces the breaker closed and clears all strike/backoff state (the
  /// legacy ClearQuarantine admin path).
  void ForceClose();

  /// Consecutive hard faults observed while closed.
  uint64_t strikes() const;
  /// Times the breaker has tripped open over its lifetime.
  uint64_t trips() const;
  /// Steady-clock ns at which the next probe is allowed (0 when closed).
  uint64_t open_until_ns() const;

 private:
  mutable Latch mu_{LatchRank::kTenantBreaker, "tenant-breaker"};
  BreakerState state_ = BreakerState::kClosed;
  uint64_t strikes_ = 0;
  uint64_t consecutive_trips_ = 0;  // failed probes since last close
  uint64_t trips_ = 0;
  uint64_t open_until_ns_ = 0;
  bool probe_in_flight_ = false;
};

}  // namespace mtdb

#endif  // MTDB_COMMON_BREAKER_H_
