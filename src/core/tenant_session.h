#ifndef MTDB_CORE_TENANT_SESSION_H_
#define MTDB_CORE_TENANT_SESSION_H_

#include <cctype>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/trace.h"
#include "core/layout.h"
#include "engine/admission.h"
#include "engine/txn_context.h"

namespace mtdb {
namespace mapping {

/// The mapping layer's client front door, mirroring the engine's
/// Session: a lightweight per-worker handle bound to one tenant of one
/// layout. Testbed workers and examples hold one per thread; any number
/// may execute concurrently against the shared layout.
///
/// Like an engine Session, a TenantSession is NOT itself thread-safe —
/// it belongs to one worker thread at a time.
class TenantSession {
 public:
  TenantSession() = default;

  TenantSession(const TenantSession&) = delete;
  TenantSession& operator=(const TenantSession&) = delete;
  TenantSession(TenantSession&&) = default;
  TenantSession& operator=(TenantSession&&) = default;

  /// Runs a logical SELECT for this session's tenant. An active
  /// `deadline` bounds the statement: it is cancelled cooperatively and
  /// returns kDeadlineExceeded once the deadline passes (an inactive
  /// deadline inherits any ambient one). Every statement also passes
  /// through the engine's admission controller under this tenant's id —
  /// rate-limited or overloaded tenants get kResourceExhausted with a
  /// retry_after_ms hint instead of executing.
  Result<QueryResult> Query(const std::string& sql,
                            const std::vector<Value>& params = {},
                            deadline::Deadline deadline = {}) {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    statements_++;
    deadline::Scope scope(deadline.active ? deadline : deadline::Current());
    return Traced("select", [&]() -> Result<QueryResult> {
      return GateTxn([&]() -> Result<QueryResult> {
        AdmissionTicket ticket;
        MTDB_RETURN_IF_ERROR(AdmitSelf(&ticket));
        return layout_->Query(tenant_, sql, params);
      });
    });
  }

  /// Runs logical INSERT/UPDATE/DELETE; returns affected logical rows.
  /// Deadline/admission semantics as on Query; a deadline expiring
  /// mid-statement rolls back the partial physical writes. Also accepts
  /// BEGIN/COMMIT/ROLLBACK (returning 0 rows), routed to the
  /// transaction methods below.
  Result<int64_t> Execute(const std::string& sql,
                          const std::vector<Value>& params = {},
                          deadline::Deadline deadline = {}) {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    switch (TxnControlOf(sql)) {
      case 'B':
        statements_++;
        MTDB_RETURN_IF_ERROR(Begin());
        return int64_t{0};
      case 'C':
        statements_++;
        MTDB_RETURN_IF_ERROR(Commit());
        return int64_t{0};
      case 'R':
        statements_++;
        MTDB_RETURN_IF_ERROR(Rollback());
        return int64_t{0};
      default:
        break;
    }
    statements_++;
    deadline::Scope scope(deadline.active ? deadline : deadline::Current());
    return Traced(GuessKind(sql), [&]() -> Result<int64_t> {
      return GateTxn([&]() -> Result<int64_t> {
        AdmissionTicket ticket;
        MTDB_RETURN_IF_ERROR(AdmitSelf(&ticket));
        return layout_->Execute(tenant_, sql, params);
      });
    });
  }

  /// Direct structured insert (bulk loaders): values in the tenant's
  /// effective column order; missing trailing columns NULL.
  Result<int64_t> InsertRow(const std::string& table, const Row& row,
                            deadline::Deadline deadline = {}) {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    statements_++;
    deadline::Scope scope(deadline.active ? deadline : deadline::Current());
    return Traced("insert", [&]() -> Result<int64_t> {
      return GateTxn([&]() -> Result<int64_t> {
        AdmissionTicket ticket;
        MTDB_RETURN_IF_ERROR(AdmitSelf(&ticket));
        return layout_->InsertRow(tenant_, table, row);
      });
    });
  }

  /// Client transaction control: between Begin() and Commit()/Rollback()
  /// every logical statement's compensations accumulate in one
  /// cross-statement undo log, Rollback() replays them newest-first,
  /// and a crash before COMMIT's end record undoes the transaction on
  /// recovery. Statements are still admitted one by one — an open
  /// transaction holds no admission slot or latch between statements. A
  /// failed statement poisons the transaction (only ROLLBACK accepted
  /// afterwards); deadline expiry, admission rejection, or a breaker
  /// trip rolls it back automatically (ROLLBACK then acknowledges). An
  /// open transaction is rolled back when the session is destroyed.
  Status Begin() {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    if (txn_ != nullptr) {
      return Status::FailedPrecondition("transaction already open");
    }
    auto ctx =
        std::make_unique<txn::TransactionContext>(layout_->db(), tenant_);
    MTDB_RETURN_IF_ERROR(ctx->Begin());
    txn_ = std::move(ctx);
    if (tracer_ != nullptr) {
      tracer_->BeginTransaction(tenant_, layout_->name());
    }
    return Status::OK();
  }

  Status Commit() {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    if (txn_ == nullptr) {
      return Status::FailedPrecondition("no transaction open");
    }
    Status st = txn_->Commit();
    if (st.code() == StatusCode::kFailedPrecondition) {
      // Poisoned or aborted: stays open until the client ROLLBACKs.
      return st;
    }
    txn_.reset();
    if (tracer_ != nullptr) tracer_->EndTransaction(st.ok());
    return st;
  }

  Status Rollback() {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    if (txn_ == nullptr) {
      return Status::FailedPrecondition("no transaction open");
    }
    Status st = Status::OK();
    // An aborted transaction was already rolled back; acknowledge only.
    if (txn_->open()) st = txn_->Rollback();
    txn_.reset();
    if (tracer_ != nullptr) tracer_->EndTransaction(false);
    return st;
  }

  bool in_transaction() const { return txn_ != nullptr; }

  /// Returns the transformed physical SQL (for inspection/examples).
  Result<std::string> ShowTransformed(const std::string& sql) {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    return layout_->ShowTransformed(tenant_, sql);
  }

  /// EXPLAIN MAPPING front door: reports the physical statements the
  /// logical statement maps to without executing them. Accepts either a
  /// bare statement or the "EXPLAIN MAPPING <stmt>" form.
  Result<MappingExplanation> Explain(const std::string& sql,
                                     const std::vector<Value>& params = {}) {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    return layout_->ExplainMapping(tenant_, sql, params);
  }

  /// Per-session statement tracing (see common/trace.h): spans and I/O
  /// attribution aggregate into the engine's metrics registry under
  /// (tenant, layout, statement-kind). Off by default; MTDB_TRACE=1
  /// forces it on for every new session.
  void EnableTracing(bool on = true) {
    if (on && tracer_ == nullptr && layout_ != nullptr) {
      tracer_ = std::make_unique<trace::StatementTracer>(
          layout_->db()->metrics_registry());
    }
    if (tracer_ != nullptr) tracer_->set_enabled(on);
  }
  trace::StatementTracer* tracer() { return tracer_.get(); }

  TenantId tenant() const { return tenant_; }
  SchemaMapping* layout() const { return layout_; }
  explicit operator bool() const { return layout_ != nullptr; }

  /// Statements this session has executed.
  uint64_t statements_executed() const { return statements_; }

 private:
  friend class SchemaMapping;
  TenantSession(SchemaMapping* layout, TenantId tenant)
      : layout_(layout), tenant_(tenant) {
    if (trace::TracingForced()) EnableTracing();
  }

  /// Wraps one statement in a root span when tracing is enabled; the
  /// disabled path is a null check.
  template <typename Fn>
  auto Traced(const char* kind, Fn&& fn) -> decltype(fn()) {
    if (tracer_ == nullptr || !tracer_->enabled()) return fn();
    tracer_->BeginStatement(tenant_, layout_->name(), kind);
    auto out = [&] {
      trace::TracerScope scope(tracer_.get());
      return fn();
    }();
    tracer_->EndStatement(out.ok());
    return out;
  }

  /// Admits one statement under this tenant's id; the wait (if any)
  /// shows up as an "admit" span in traced sessions.
  Status AdmitSelf(AdmissionTicket* ticket) {
    trace::SpanScope admit("admit", layout_->name());
    return layout_->db()->admission()->Admit(tenant_, deadline::Current(),
                                             ticket);
  }

  /// Gates one statement against the open transaction (if any): rejects
  /// statements in a poisoned/aborted transaction, installs the context
  /// on the thread for the statement pipeline, and classifies failures —
  /// deadline/admission/breaker failures abort the transaction on the
  /// spot, ordinary failures poison it. The TLS scope never covers the
  /// auto-rollback, so compensation replay cannot re-enter staging.
  template <typename Fn>
  auto GateTxn(Fn&& fn) -> decltype(fn()) {
    if (txn_ == nullptr) return fn();
    switch (txn_->state()) {
      case txn::TransactionContext::State::kActive:
        break;
      case txn::TransactionContext::State::kPoisoned:
        return Status::FailedPrecondition(
            "transaction is poisoned by a failed statement; ROLLBACK it");
      case txn::TransactionContext::State::kAborted:
        return Status::FailedPrecondition(
            "transaction was aborted; ROLLBACK to acknowledge");
    }
    auto out = [&] {
      txn::TransactionContext::Scope in_txn(txn_.get());
      return fn();
    }();
    if (!out.ok()) {
      const StatusCode code = out.status().code();
      if (code == StatusCode::kDeadlineExceeded ||
          code == StatusCode::kResourceExhausted ||
          code == StatusCode::kUnavailable ||
          code == StatusCode::kAborted) {
        // kAborted: this bracket lost a deadlock and must release its
        // locks NOW — the cycle partner is still parked waiting for
        // them. Rollback replays compensation, then drops the lock set.
        (void)txn_->Rollback(/*is_auto=*/true);
        txn_->MarkAborted();
      } else {
        txn_->Poison();
      }
    }
    return out;
  }

  /// First-word sniff for transaction control in Execute's SQL string:
  /// 'B'/'C'/'R' for BEGIN/COMMIT/ROLLBACK, 0 otherwise.
  static char TxnControlOf(const std::string& sql) {
    size_t i = sql.find_first_not_of(" \t\r\n");
    if (i == std::string::npos) return 0;
    size_t e = i;
    while (e < sql.size() &&
           std::isalpha(static_cast<unsigned char>(sql[e]))) {
      e++;
    }
    std::string word = sql.substr(i, e - i);
    for (char& c : word) {
      c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    }
    if (word == "BEGIN") return 'B';
    if (word == "COMMIT") return 'C';
    if (word == "ROLLBACK") return 'R';
    return 0;
  }

  /// Cheap statement-kind label for trace series without a parse: the
  /// layer's Execute only accepts INSERT/UPDATE/DELETE.
  static const char* GuessKind(const std::string& sql) {
    size_t i = sql.find_first_not_of(" \t\r\n");
    if (i == std::string::npos) return "execute";
    switch (std::toupper(static_cast<unsigned char>(sql[i]))) {
      case 'I':
        return "insert";
      case 'U':
        return "update";
      case 'D':
        return "delete";
      default:
        return "execute";
    }
  }

  SchemaMapping* layout_ = nullptr;
  TenantId tenant_ = -1;
  uint64_t statements_ = 0;
  std::unique_ptr<trace::StatementTracer> tracer_;
  std::unique_ptr<txn::TransactionContext> txn_;
};

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_TENANT_SESSION_H_
