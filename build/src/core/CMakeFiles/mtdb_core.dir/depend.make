# Empty dependencies file for mtdb_core.
# This may be replaced when dependencies are built.
