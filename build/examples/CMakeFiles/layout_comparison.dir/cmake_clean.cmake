file(REMOVE_RECURSE
  "CMakeFiles/layout_comparison.dir/layout_comparison.cpp.o"
  "CMakeFiles/layout_comparison.dir/layout_comparison.cpp.o.d"
  "layout_comparison"
  "layout_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
