// Observability surface: metrics registry consistency under concurrent
// writers, histogram bucketing, per-session statement tracing, the
// composed Database::Stats() snapshot, and EXPLAIN MAPPING correctness
// for every layout (asserted against what real execution actually
// emits, via the PhysicalStatementObserver).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "common/trace.h"
#include "core/tenant_session.h"
#include "engine/database.h"
#include "engine/session.h"
#include "mapping_test_util.h"
#include "sql/printer.h"

namespace mtdb {
namespace {

using mapping::AppSchema;
using mapping::LayoutKind;
using mapping::LayoutKindName;
using mapping::MakeLayout;
using mapping::SchemaMapping;
using mapping::TenantSession;

// --- MetricsRegistry ----------------------------------------------------

TEST(MetricsRegistryTest, CountersAndHistogramsSurviveConcurrentWriters) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Shared series exercise the relaxed hot path; per-thread series
      // exercise create-on-first-use under contention.
      Counter* shared = registry.GetCounter("test.shared");
      Counter* own = registry.GetCounter("test.own." + std::to_string(t));
      LatencyHistogram* hist = registry.GetHistogram("test.latency");
      for (int i = 0; i < kIters; ++i) {
        shared->Add(1);
        own->Add(2);
        hist->Record(static_cast<uint64_t>(i % 50));
      }
    });
  }
  for (auto& th : threads) th.join();

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.CounterValue("test.shared"),
            static_cast<uint64_t>(kThreads) * kIters);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.CounterValue("test.own." + std::to_string(t)),
              2u * kIters);
  }
  const auto* hist = snap.FindHistogram("test.latency");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, static_cast<uint64_t>(kThreads) * kIters);
  uint64_t bucket_total = 0;
  for (uint64_t b : hist->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, hist->count);
  EXPECT_EQ(snap.dropped_series, 0u);
}

TEST(MetricsRegistryTest, HistogramBucketBoundaries) {
  MetricsRegistry registry;
  LatencyHistogram* h = registry.GetHistogram("bounds");
  const auto& bounds = LatencyHistogram::BucketBoundsUs();
  ASSERT_EQ(bounds.size(), LatencyHistogram::kBuckets);
  EXPECT_EQ(bounds.front(), 1u);
  EXPECT_EQ(bounds.back(), 1000000u);

  // A value exactly on a bound lands in that bound's bucket (bounds are
  // inclusive); one past it lands in the next.
  h->Record(0);        // <= 1us
  h->Record(1);        // <= 1us
  h->Record(2);        // <= 2us
  h->Record(3);        // <= 5us
  h->Record(1000000);  // last bounded bucket
  h->Record(2000000);  // overflow
  EXPECT_EQ(h->bucket(0), 2u);
  EXPECT_EQ(h->bucket(1), 1u);
  EXPECT_EQ(h->bucket(2), 1u);
  EXPECT_EQ(h->bucket(LatencyHistogram::kBuckets - 1), 1u);
  EXPECT_EQ(h->bucket(LatencyHistogram::kBuckets), 1u);  // overflow bucket
  EXPECT_EQ(h->count(), 6u);
  EXPECT_EQ(h->sum_us(), 0u + 1 + 2 + 3 + 1000000 + 2000000);
}

TEST(MetricsRegistryTest, CardinalityCapDegradesToOverflowSeries) {
  MetricsRegistry registry(/*max_series=*/4);
  Counter* a = registry.GetCounter("a");
  Counter* b = registry.GetCounter("b");
  Counter* c = registry.GetCounter("c");
  Counter* d = registry.GetCounter("d");
  Counter* e1 = registry.GetCounter("e1");  // past the cap
  Counter* e2 = registry.GetCounter("e2");  // past the cap
  EXPECT_NE(a, b);
  EXPECT_NE(c, d);
  // Refused series share the overflow counter instead of failing.
  EXPECT_EQ(e1, e2);
  e1->Add(1);
  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.dropped_series, 2u);
  // Existing series are unaffected by later refusals.
  a->Add(5);
  EXPECT_EQ(registry.Snapshot().CounterValue("a"), 5u);
}

// --- statement tracing --------------------------------------------------

TEST(TracingTest, SessionTraceAggregatesIntoRegistry) {
  Database db;
  Session session = db.OpenSession();
  session.EnableTracing();
  ASSERT_TRUE(session.Execute("CREATE TABLE t (a INT, b STRING)").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").ok());
  auto q = session.Query("SELECT a FROM t WHERE b = 'x'");
  ASSERT_TRUE(q.ok());

  ASSERT_NE(session.tracer(), nullptr);
  EXPECT_GE(session.tracer()->statements_traced(), 3u);
  const trace::StatementTrace* last = session.tracer()->last();
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->kind, "select");
  EXPECT_EQ(last->layout, "engine");
  ASSERT_NE(last->root, nullptr);
  // The select opened a child span for the scan.
  EXPECT_FALSE(last->root->children.empty());
  EXPECT_FALSE(session.tracer()->DumpLast().empty());

  MetricsSnapshot snap = db.Stats().metrics;
  EXPECT_EQ(snap.CounterValue("stmt.count.engine.select.t-1"), 1u);
  EXPECT_EQ(snap.CounterValue("stmt.count.engine.insert.t-1"), 1u);
  EXPECT_EQ(snap.CounterValue("stmt.errors.engine.select.t-1"), 0u);
  const auto* lat = snap.FindHistogram("stmt.latency_us.engine.select.t-1");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->count, 1u);
}

TEST(TracingTest, DisabledTracingLeavesRegistryUntouched) {
  Database db;
  Session session = db.OpenSession();
  // Explicit off, so the test holds even under the CI trace-forced job
  // (MTDB_TRACE=1 opens sessions traced).
  session.EnableTracing(false);
  ASSERT_TRUE(session.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(session.Query("SELECT a FROM t").ok());

  // No stmt.* series may exist: the disabled path never touches the
  // registry (zero-cost-when-off is the tentpole's contract).
  MetricsSnapshot snap = db.Stats().metrics;
  for (const auto& c : snap.counters) {
    EXPECT_NE(c.name.rfind("stmt.", 0), 0u)
        << "unexpected trace series: " << c.name;
  }
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(TracingTest, TenantSessionTraceLabelsTenantAndLayout) {
  AppSchema app = mapping::FigureFourSchema();
  Database db;
  auto layout = MakeLayout(LayoutKind::kChunk, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  ASSERT_TRUE(mapping::LoadFigureFourData(layout.get()).ok());

  TenantSession session = layout->OpenSession(17);
  session.EnableTracing();
  ASSERT_TRUE(session.Query("SELECT name FROM account WHERE aid = 1").ok());
  ASSERT_TRUE(
      session.Execute("UPDATE account SET name = 'Neo' WHERE aid = 1").ok());

  MetricsSnapshot snap = db.Stats().metrics;
  EXPECT_EQ(snap.CounterValue("stmt.count.chunk.select.t17"), 1u);
  EXPECT_EQ(snap.CounterValue("stmt.count.chunk.update.t17"), 1u);
  const trace::StatementTrace* last = session.tracer()->last();
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->tenant, 17);
  EXPECT_EQ(last->layout, "chunk");
  EXPECT_EQ(last->kind, "update");
}

// --- composed Stats() snapshot ------------------------------------------

TEST(StatsTest, ComposedSnapshotCarriesGaugesAndIoFaults) {
  Database db;
  Session session = db.OpenSession();
  ASSERT_TRUE(session.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(session.Query("SELECT a FROM t").ok());

  EngineStats stats = db.Stats();
  // Engine gauges joined the registry namespace.
  EXPECT_GT(stats.metrics.CounterValue("buffer.logical_reads"), 0u);
  EXPECT_EQ(stats.metrics.CounterValue("io.read_faults"), 0u);
  EXPECT_EQ(stats.io_faults.read_faults, 0u);
  // And render as JSON for mtdb_stats.
  std::string json = stats.metrics.ToJson();
  EXPECT_NE(json.find("\"buffer.logical_reads\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_series\""), std::string::npos);
}

// --- EXPLAIN MAPPING ----------------------------------------------------

/// Captures what the mapping layer actually emits, rendered to SQL.
class CaptureObserver : public mapping::PhysicalStatementObserver {
 public:
  void OnSelect(TenantId, const sql::SelectStmt& stmt) override {
    sql_.push_back(sql::ToSql(stmt));
  }
  void OnStatement(TenantId, const sql::Statement& stmt) override {
    sql_.push_back(sql::ToSql(stmt));
  }
  const std::vector<std::string>& sql() const { return sql_; }
  void Clear() { sql_.clear(); }

 private:
  std::vector<std::string> sql_;
};

class ExplainMappingTest : public ::testing::TestWithParam<LayoutKind> {};

TEST_P(ExplainMappingTest, MatchesRealExecutionForEveryStatementKind) {
  const LayoutKind kind = GetParam();
  AppSchema app = mapping::FigureFourSchema();
  Database db;
  auto layout = MakeLayout(kind, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  const TenantId tenant = 17;
  if (kind == LayoutKind::kBasic) {
    // Basic cannot host extensions; load the common subset.
    ASSERT_TRUE(layout->CreateTenant(17).ok());
    ASSERT_TRUE(layout->CreateTenant(35).ok());
    ASSERT_TRUE(
        layout
            ->Execute(17,
                      "INSERT INTO account (aid, name) VALUES "
                      "(1, 'Acme'), (2, 'Gump')")
            .ok());
  } else {
    ASSERT_TRUE(mapping::LoadFigureFourData(layout.get()).ok());
  }

  CaptureObserver capture;
  const char* kStatements[] = {
      "INSERT INTO account (aid, name) VALUES (7, 'Zeta')",
      "SELECT name FROM account WHERE aid = 1",
      "UPDATE account SET name = 'Neo' WHERE aid = 1",
      "DELETE FROM account WHERE aid = 2",
  };
  for (const char* logical : kStatements) {
    SCOPED_TRACE(std::string(LayoutKindName(kind)) + ": " + logical);
    // Explain FIRST: it must not change state, so the real execution
    // right after emits exactly the statements the explain predicted.
    auto explained = layout->ExplainMapping(tenant, logical);
    ASSERT_TRUE(explained.ok()) << explained.status().ToString();
    EXPECT_EQ(explained->layout, layout->name());
    EXPECT_EQ(explained->tenant, tenant);
    ASSERT_FALSE(explained->statements.empty());
    for (const auto& plan : explained->statements) {
      EXPECT_FALSE(plan.op.empty());
      EXPECT_FALSE(plan.table.empty());
      EXPECT_FALSE(plan.sql.empty());
    }
    EXPECT_FALSE(explained->ToText().empty());

    capture.Clear();
    layout->set_statement_observer(&capture);
    bool is_select = std::string(logical).rfind("SELECT", 0) == 0;
    if (is_select) {
      ASSERT_TRUE(layout->Query(tenant, logical).ok());
    } else {
      ASSERT_TRUE(layout->Execute(tenant, logical).ok());
    }
    layout->set_statement_observer(nullptr);

    std::vector<std::string> explained_sql;
    for (const auto& plan : explained->statements) {
      explained_sql.push_back(plan.sql);
    }
    EXPECT_EQ(explained_sql, capture.sql());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, ExplainMappingTest,
    ::testing::Values(LayoutKind::kBasic, LayoutKind::kPrivate,
                      LayoutKind::kExtension, LayoutKind::kUniversal,
                      LayoutKind::kPivot, LayoutKind::kChunk,
                      LayoutKind::kVertical, LayoutKind::kChunkFolding),
    [](const ::testing::TestParamInfo<LayoutKind>& info) {
      return LayoutKindName(info.param);
    });

TEST(ExplainMappingTest, ExplainDoesNotExecuteOrConsumeRowIds) {
  AppSchema app = mapping::FigureFourSchema();
  Database db;
  auto layout = MakeLayout(LayoutKind::kChunk, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  ASSERT_TRUE(mapping::LoadFigureFourData(layout.get()).ok());

  auto count = [&] {
    auto r = layout->Query(17, "SELECT aid FROM account");
    return r.ok() ? static_cast<int>(r->rows.size()) : -1;
  };
  const int before = count();
  const uint64_t phys_before = layout->stats().physical_statements.value();

  auto ins = layout->ExplainMapping(
      17, "INSERT INTO account (aid, name) VALUES (7, 'Zeta')");
  ASSERT_TRUE(ins.ok());
  auto del = layout->ExplainMapping(17, "DELETE FROM account WHERE aid = 1");
  ASSERT_TRUE(del.ok());
  // Explains moved no mapping-layer execution counters and no rows.
  EXPECT_EQ(layout->stats().physical_statements.value(), phys_before);
  EXPECT_EQ(count(), before);

  // Row ids were not consumed: the real insert emits exactly the
  // physical statements the explain predicted (same row slots).
  CaptureObserver capture;
  layout->set_statement_observer(&capture);
  ASSERT_TRUE(layout
                  ->Execute(17,
                            "INSERT INTO account (aid, name) VALUES "
                            "(7, 'Zeta')")
                  .ok());
  layout->set_statement_observer(nullptr);
  std::vector<std::string> predicted;
  for (const auto& plan : ins->statements) predicted.push_back(plan.sql);
  EXPECT_EQ(predicted, capture.sql());
}

TEST(ExplainMappingTest, SelectExplainIncludesEnginePlan) {
  AppSchema app = mapping::FigureFourSchema();
  Database db;
  auto layout = MakeLayout(LayoutKind::kUniversal, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  ASSERT_TRUE(mapping::LoadFigureFourData(layout.get()).ok());
  TenantSession session = layout->OpenSession(17);
  auto explained =
      session.Explain("EXPLAIN MAPPING SELECT name FROM account WHERE aid = 1");
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_FALSE(explained->plan_text.empty());
  ASSERT_EQ(explained->statements.size(), 1u);
  EXPECT_EQ(explained->statements[0].op, "select");
}

TEST(ExplainMappingTest, EngineSessionFrontDoor) {
  Database db;
  Session session = db.OpenSession();
  ASSERT_TRUE(session.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(session.Execute("INSERT INTO t VALUES (1)").ok());

  auto r = session.Execute("EXPLAIN MAPPING INSERT INTO t VALUES (2)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_TRUE(HasExplanation(*r));
  const MappingExplanation& e = ExplanationOf(*r);
  EXPECT_EQ(e.layout, "engine");
  ASSERT_EQ(e.statements.size(), 1u);
  EXPECT_EQ(e.statements[0].op, "insert");
  EXPECT_EQ(e.statements[0].table, "t");
  // Nothing executed.
  auto q = session.Query("SELECT a FROM t");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->rows.size(), 1u);

  auto sel = session.Execute("EXPLAIN MAPPING SELECT a FROM t WHERE a = 1");
  ASSERT_TRUE(sel.ok());
  ASSERT_TRUE(HasExplanation(*sel));
  EXPECT_FALSE(ExplanationOf(*sel).plan_text.empty());

  // EXPLAIN MAPPING does not nest.
  auto nested = session.Execute("EXPLAIN MAPPING EXPLAIN MAPPING SELECT 1");
  EXPECT_FALSE(nested.ok());
}

}  // namespace
}  // namespace mtdb
