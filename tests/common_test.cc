#include <gtest/gtest.h>

#include <algorithm>

#include "common/key_encoding.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/value.h"

namespace mtdb {
namespace {

TEST(ValueTest, NullsAndTypes) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), TypeId::kNull);
  EXPECT_EQ(Value::Null(TypeId::kInt32).type(), TypeId::kInt32);
  EXPECT_FALSE(Value::Int32(5).is_null());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int64(42).ToString(), "42");
  EXPECT_EQ(Value::String("abc").ToString(), "abc");
  EXPECT_EQ(Value::Bool(true).ToString(), "true");
  EXPECT_EQ(Value().ToString(), "NULL");
  EXPECT_EQ(Value::Date(0).ToString(), "1970-01-01");
  EXPECT_EQ(Value::Date(10957).ToString(), "2000-01-01");
}

TEST(ValueTest, SqlLiteralQuoting) {
  EXPECT_EQ(Value::String("o'brien").ToSqlLiteral(), "'o''brien'");
  EXPECT_EQ(Value::Int32(7).ToSqlLiteral(), "7");
  EXPECT_EQ(Value().ToSqlLiteral(), "NULL");
}

TEST(ValueTest, NumericCompareAcrossTypes) {
  EXPECT_EQ(Value::Int32(3).Compare(Value::Int64(3)), 0);
  EXPECT_LT(Value::Int32(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Double(4.5).Compare(Value::Int64(4)), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value().Compare(Value::Int32(-100)), 0);
  EXPECT_EQ(Value().Compare(Value()), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, CastRoundTrips) {
  auto r = Value::Int32(42).CastTo(TypeId::kString);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsString(), "42");
  auto back = r->CastTo(TypeId::kInt32);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->AsInt32(), 42);

  auto d = Value::Double(3.25).CastTo(TypeId::kString);
  ASSERT_TRUE(d.ok());
  auto dback = d->CastTo(TypeId::kDouble);
  ASSERT_TRUE(dback.ok());
  EXPECT_DOUBLE_EQ(dback->AsDouble(), 3.25);
}

TEST(ValueTest, CastNullPreservesNull) {
  auto r = Value().CastTo(TypeId::kInt64);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_null());
  EXPECT_EQ(r->type(), TypeId::kInt64);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int32(5).Hash(), Value::Int64(5).Hash());
  EXPECT_EQ(Value::Int64(5).Hash(), Value::Double(5.0).Hash());
}

TEST(KeyEncodingTest, IntegerOrderPreserved) {
  int64_t values[] = {-1000000, -5, -1, 0, 1, 2, 999, 1 << 30};
  std::string prev;
  for (int64_t v : values) {
    std::string enc = KeyEncoder::EncodeKey({Value::Int64(v)});
    if (!prev.empty()) {
      EXPECT_LT(prev, enc) << v;
    }
    prev = enc;
  }
}

TEST(KeyEncodingTest, StringOrderPreserved) {
  const char* values[] = {"", "a", "ab", "abc", "b", "ba"};
  std::string prev;
  bool first = true;
  for (const char* v : values) {
    std::string enc = KeyEncoder::EncodeKey({Value::String(v)});
    if (!first) {
      EXPECT_LT(prev, enc) << v;
    }
    prev = enc;
    first = false;
  }
}

TEST(KeyEncodingTest, NullSortsBeforeEverything) {
  EXPECT_LT(KeyEncoder::EncodeKey({Value()}),
            KeyEncoder::EncodeKey({Value::Int64(INT64_MIN)}));
  EXPECT_LT(KeyEncoder::EncodeKey({Value()}),
            KeyEncoder::EncodeKey({Value::String("")}));
}

TEST(KeyEncodingTest, CompositeKeysOrderComponentwise) {
  auto key = [](int a, const char* b) {
    return KeyEncoder::EncodeKey({Value::Int32(a), Value::String(b)});
  };
  EXPECT_LT(key(1, "z"), key(2, "a"));
  EXPECT_LT(key(2, "a"), key(2, "b"));
}

TEST(KeyEncodingTest, StringComponentDoesNotBleed) {
  // ("ab", "c") must differ from ("a", "bc") and order as strings do.
  auto k1 = KeyEncoder::EncodeKey({Value::String("ab"), Value::String("c")});
  auto k2 = KeyEncoder::EncodeKey({Value::String("a"), Value::String("bc")});
  EXPECT_NE(k1, k2);
  EXPECT_GT(k1, k2);  // "ab" > "a"
}

TEST(KeyEncodingTest, EmbeddedNulByte) {
  std::string with_nul("a\0b", 3);
  auto k1 = KeyEncoder::EncodeKey({Value::String(with_nul)});
  auto k2 = KeyEncoder::EncodeKey({Value::String("a")});
  EXPECT_GT(k1, k2);
}

TEST(KeyEncodingTest, PrefixRangeCoversExtensions) {
  std::string lo, hi;
  KeyEncoder::EncodePrefixRange({Value::Int32(17)}, &lo, &hi);
  std::string inside =
      KeyEncoder::EncodeKey({Value::Int32(17), Value::String("zzz")});
  std::string outside = KeyEncoder::EncodeKey({Value::Int32(18)});
  EXPECT_LE(lo, inside);
  EXPECT_LT(inside, hi);
  EXPECT_GE(outside, hi);
}

TEST(KeyEncodingTest, IntegralDoubleEncodesLikeInteger) {
  EXPECT_EQ(KeyEncoder::EncodeKey({Value::Double(42.0)}),
            KeyEncoder::EncodeKey({Value::Int64(42)}));
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(5, 10);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 10);
  }
}

TEST(RngTest, WordLengths) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    std::string w = rng.Word(3, 8);
    EXPECT_GE(w.size(), 3u);
    EXPECT_LE(w.size(), 8u);
  }
}

TEST(SampleSetTest, QuantilesAndCompliance) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.Add(i);
  EXPECT_DOUBLE_EQ(s.Mean(), 50.5);
  EXPECT_NEAR(s.Quantile(0.95), 95.05, 0.2);
  EXPECT_DOUBLE_EQ(s.Min(), 1);
  EXPECT_DOUBLE_EQ(s.Max(), 100);
  EXPECT_DOUBLE_EQ(s.FractionBelow(50), 0.5);
  EXPECT_DOUBLE_EQ(s.FractionBelow(1000), 1.0);
  EXPECT_DOUBLE_EQ(s.FractionBelow(0), 0.0);
}

TEST(SampleSetTest, EmptySafe) {
  SampleSet s;
  EXPECT_EQ(s.Quantile(0.95), 0.0);
  EXPECT_EQ(s.Mean(), 0.0);
}

TEST(SampleSetTest, AddAfterQuery) {
  SampleSet s;
  s.Add(10);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 10);
  s.Add(20);
  s.Add(0);
  EXPECT_DOUBLE_EQ(s.Min(), 0);
  EXPECT_DOUBLE_EQ(s.Max(), 20);
}

}  // namespace
}  // namespace mtdb
