#include "testbed/data_generator.h"

namespace mtdb {
namespace testbed {

namespace {

const char* kStatuses[] = {"new", "open", "working", "closed", "won", "lost"};
const char* kRegions[] = {"emea", "apac", "amer", "latam"};

}  // namespace

Value DataGenerator::FillerValue(TypeId type) {
  switch (type) {
    case TypeId::kString:
      return Value::String(rng_.Word(4, 12));
    case TypeId::kInt32:
      return Value::Int32(static_cast<int32_t>(rng_.Uniform(0, 1000)));
    case TypeId::kInt64:
      return Value::Int64(rng_.Uniform(0, 1000000));
    case TypeId::kDouble:
      return Value::Double(rng_.UniformDouble(0.0, 100000.0));
    case TypeId::kDate:
      // 2000-01-01 .. ~2008: days 10957..14000.
      return Value::Date(static_cast<int32_t>(rng_.Uniform(10957, 14000)));
    case TypeId::kBool:
      return Value::Bool(rng_.Bernoulli(0.5));
    case TypeId::kNull:
      return Value();
  }
  return Value();
}

Row DataGenerator::CrmRow(const CrmTable& table, TenantId tenant, int64_t id,
                          int64_t parent_rows) {
  Row row;
  row.push_back(Value::Int32(tenant));
  row.push_back(Value::Int64(id));
  for (size_t p = 0; p < table.parents.size(); ++p) {
    row.push_back(Value::Int64(parent_rows > 0 ? rng_.Uniform(0, parent_rows - 1)
                                               : 0));
  }
  // Filler columns, matching CrmPhysicalSchema order. The first two
  // fillers are name/status; keep status from a small domain so GROUP BY
  // reporting queries have meaningful groups.
  Schema schema = CrmPhysicalSchema(table);
  size_t fixed = 2 + table.parents.size();  // tenant, id, fks
  for (size_t i = fixed; i < schema.size(); ++i) {
    const Column& c = schema.at(i);
    if (c.name == "status") {
      row.push_back(Value::String(kStatuses[rng_.Uniform(0, 5)]));
    } else if (c.name == "region") {
      row.push_back(Value::String(kRegions[rng_.Uniform(0, 3)]));
    } else {
      row.push_back(FillerValue(c.type));
    }
  }
  return row;
}

Status DataGenerator::LoadTenant(Database* db, int instance, TenantId tenant,
                                 int64_t rows_per_table) {
  for (const CrmTable& t : CrmTables()) {
    for (int64_t id = 0; id < rows_per_table; ++id) {
      Row row = CrmRow(t, tenant, id, rows_per_table);
      MTDB_RETURN_IF_ERROR(db->InsertRow(CrmTableName(t.name, instance), row));
    }
  }
  return Status::OK();
}

}  // namespace testbed
}  // namespace mtdb
