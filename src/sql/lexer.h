#ifndef MTDB_SQL_LEXER_H_
#define MTDB_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace mtdb {
namespace sql {

enum class TokenKind {
  kIdent,
  kKeyword,
  kInteger,
  kFloat,
  kString,
  kParam,      // ?
  kComma,
  kDot,
  kLParen,
  kRParen,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kSemicolon,
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;    // identifier / keyword (upper-cased) / literal text
  size_t position = 0; // byte offset for error messages
};

/// Tokenizes a SQL string. Keywords are recognized case-insensitively and
/// reported upper-case in Token::text.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace sql
}  // namespace mtdb

#endif  // MTDB_SQL_LEXER_H_
