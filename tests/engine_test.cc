#include <gtest/gtest.h>

#include "engine/database.h"

namespace mtdb {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : db_(EngineOptions()) {}

  void SetUpParentChild() {
    ASSERT_TRUE(db_.Execute("CREATE TABLE parent (id BIGINT, name VARCHAR, "
                            "v INT)")
                    .ok());
    ASSERT_TRUE(db_.Execute("CREATE TABLE child (id BIGINT, parent BIGINT, "
                            "x INT, s VARCHAR)")
                    .ok());
    ASSERT_TRUE(
        db_.Execute("CREATE UNIQUE INDEX ux_parent ON parent (id)").ok());
    ASSERT_TRUE(
        db_.Execute("CREATE INDEX ix_child_parent ON child (parent)").ok());
    for (int p = 0; p < 20; ++p) {
      ASSERT_TRUE(db_.Execute("INSERT INTO parent VALUES (" +
                              std::to_string(p) + ", 'p" + std::to_string(p) +
                              "', " + std::to_string(p * 10) + ")")
                      .ok());
      for (int c = 0; c < 5; ++c) {
        ASSERT_TRUE(db_.Execute("INSERT INTO child VALUES (" +
                                std::to_string(p * 100 + c) + ", " +
                                std::to_string(p) + ", " + std::to_string(c) +
                                ", 'v" + std::to_string(c) + "')")
                        .ok());
      }
    }
  }

  Database db_;
};

TEST_F(EngineTest, CreateInsertSelect) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT, b VARCHAR)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").ok());
  auto r = db_.Query("SELECT a, b FROM t ORDER BY a");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].AsInt64(), 1);
  EXPECT_EQ(r->rows[1][1].AsString(), "y");
}

TEST_F(EngineTest, WhereFiltering) {
  SetUpParentChild();
  auto r = db_.Query("SELECT id FROM parent WHERE v >= 150");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 5u);  // v in {150,160,170,180,190}
}

TEST_F(EngineTest, ParameterBinding) {
  SetUpParentChild();
  auto r = db_.Query("SELECT name FROM parent WHERE id = ?",
                     {Value::Int64(7)});
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "p7");
}

TEST_F(EngineTest, JoinParentChild) {
  SetUpParentChild();
  auto r = db_.Query(
      "SELECT p.name, c.x FROM parent p, child c "
      "WHERE p.id = c.parent AND p.id = 3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 5u);
  for (const Row& row : r->rows) {
    EXPECT_EQ(row[0].AsString(), "p3");
  }
}

TEST_F(EngineTest, JoinUsesIndexInAdvancedMode) {
  SetUpParentChild();
  auto plan = db_.Explain(
      "SELECT p.name, c.x FROM parent p, child c "
      "WHERE p.id = c.parent AND p.id = ?");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("IndexScan"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("IndexNLJoin"), std::string::npos) << *plan;
}

TEST_F(EngineTest, Aggregation) {
  SetUpParentChild();
  auto r = db_.Query(
      "SELECT c.parent, COUNT(*), SUM(c.x) FROM child c GROUP BY c.parent");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 20u);
  for (const Row& row : r->rows) {
    EXPECT_EQ(row[1].AsInt64(), 5);
    EXPECT_EQ(row[2].AsInt64(), 0 + 1 + 2 + 3 + 4);
  }
}

TEST_F(EngineTest, AggregationNoGroupByOnEmptyInput) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE e (a INT)").ok());
  auto r = db_.Query("SELECT COUNT(*), SUM(a) FROM e");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt64(), 0);
  EXPECT_TRUE(r->rows[0][1].is_null());
}

TEST_F(EngineTest, Having) {
  SetUpParentChild();
  auto r = db_.Query(
      "SELECT c.parent, COUNT(*) FROM child c WHERE c.x < 2 "
      "GROUP BY c.parent HAVING COUNT(*) > 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 20u);  // every parent has x=0 and x=1
}

TEST_F(EngineTest, OrderByDescAndLimit) {
  SetUpParentChild();
  auto r = db_.Query("SELECT id FROM parent ORDER BY v DESC LIMIT 3");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0].AsInt64(), 19);
  EXPECT_EQ(r->rows[1][0].AsInt64(), 18);
  EXPECT_EQ(r->rows[2][0].AsInt64(), 17);
}

TEST_F(EngineTest, OrderByHiddenColumn) {
  SetUpParentChild();
  // ORDER BY a column that is not projected.
  auto r = db_.Query("SELECT name FROM parent ORDER BY v DESC LIMIT 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->columns.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "p19");
}

TEST_F(EngineTest, UpdateWithExpression) {
  SetUpParentChild();
  auto n = db_.Execute("UPDATE parent SET v = v + 1 WHERE id < 5");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->rows[0][0].AsInt64(), 5);
  auto r = db_.Query("SELECT v FROM parent WHERE id = 0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt64(), 1);
}

TEST_F(EngineTest, UpdateMaintainsIndexes) {
  SetUpParentChild();
  ASSERT_TRUE(db_.Execute("UPDATE parent SET id = 100 WHERE id = 3").ok());
  auto gone = db_.Query("SELECT name FROM parent WHERE id = 3");
  ASSERT_TRUE(gone.ok());
  EXPECT_TRUE(gone->rows.empty());
  auto moved = db_.Query("SELECT name FROM parent WHERE id = 100");
  ASSERT_TRUE(moved.ok());
  ASSERT_EQ(moved->rows.size(), 1u);
  EXPECT_EQ(moved->rows[0][0].AsString(), "p3");
}

TEST_F(EngineTest, DeleteRemovesRowsAndIndexEntries) {
  SetUpParentChild();
  auto n = db_.Execute("DELETE FROM child WHERE parent = 5");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n->rows[0][0].AsInt64(), 5);
  auto r = db_.Query("SELECT COUNT(*) FROM child WHERE parent = 5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt64(), 0);
  auto total = db_.Query("SELECT COUNT(*) FROM child");
  EXPECT_EQ(total->rows[0][0].AsInt64(), 95);
}

TEST_F(EngineTest, UniqueConstraintViolation) {
  SetUpParentChild();
  auto st = db_.Execute("INSERT INTO parent VALUES (3, 'dup', 0)");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.status().code(), StatusCode::kConstraintViolation);
}

TEST_F(EngineTest, NotNullConstraint) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE n (a INT NOT NULL)").ok());
  EXPECT_EQ(db_.Execute("INSERT INTO n VALUES (NULL)").status().code(),
            StatusCode::kConstraintViolation);
}

TEST_F(EngineTest, NullComparisonSemantics) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT, b INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1, NULL), (2, 5)").ok());
  auto r = db_.Query("SELECT a FROM t WHERE b = 5");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);  // NULL never equals
  auto isnull = db_.Query("SELECT a FROM t WHERE b IS NULL");
  ASSERT_TRUE(isnull.ok());
  EXPECT_EQ(isnull->rows.size(), 1u);
  EXPECT_EQ(isnull->rows[0][0].AsInt64(), 1);
}

TEST_F(EngineTest, SubqueryInFromAdvanced) {
  SetUpParentChild();
  db_.set_planner_mode(PlannerMode::kAdvanced);
  auto r = db_.Query(
      "SELECT q.n FROM (SELECT name AS n, v FROM parent WHERE v > 100) AS q "
      "WHERE q.v < 130");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);  // v in {110, 120}
}

TEST_F(EngineTest, SubqueryInFromNaiveMaterializes) {
  SetUpParentChild();
  db_.set_planner_mode(PlannerMode::kNaive);
  auto plan = db_.Explain(
      "SELECT q.n FROM (SELECT name AS n, v FROM parent WHERE v > 100) AS q "
      "WHERE q.v < 130");
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(plan->find("Materialize"), std::string::npos) << *plan;
  auto r = db_.Query(
      "SELECT q.n FROM (SELECT name AS n, v FROM parent WHERE v > 100) AS q "
      "WHERE q.v < 130");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(EngineTest, AdvancedFlattensSubquery) {
  SetUpParentChild();
  db_.set_planner_mode(PlannerMode::kAdvanced);
  auto plan = db_.Explain(
      "SELECT q.n FROM (SELECT name AS n, v FROM parent WHERE v > 100) AS q "
      "WHERE q.v < 130");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->find("Materialize"), std::string::npos) << *plan;
}

TEST_F(EngineTest, CastFunctions) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE g (s VARCHAR)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO g VALUES ('42'), ('7')").ok());
  auto r = db_.Query("SELECT cast_int(s) FROM g WHERE cast_int(s) > 10");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt32(), 42);
}

TEST_F(EngineTest, DropTableFreesName) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE d (a INT)").ok());
  ASSERT_TRUE(db_.Execute("DROP TABLE d").ok());
  EXPECT_FALSE(db_.Query("SELECT a FROM d").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE d (a INT)").ok());
}

TEST_F(EngineTest, StatsTrackTablesAndMetadata) {
  EngineStats before = db_.Stats();
  ASSERT_TRUE(db_.Execute("CREATE TABLE s1 (a INT)").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE s2 (a INT)").ok());
  EngineStats after = db_.Stats();
  EXPECT_EQ(after.tables, before.tables + 2);
  EXPECT_GT(after.metadata_bytes, before.metadata_bytes);
  EXPECT_LT(after.buffer_capacity, before.buffer_capacity);
}

TEST_F(EngineTest, ColdCacheForcesPhysicalReads) {
  SetUpParentChild();
  // Warm up.
  ASSERT_TRUE(db_.Query("SELECT COUNT(*) FROM child").ok());
  db_.ResetStats();
  ASSERT_TRUE(db_.Query("SELECT COUNT(*) FROM child").ok());
  uint64_t warm_misses = db_.Stats().buffer.misses();
  db_.ColdCache();
  db_.ResetStats();
  ASSERT_TRUE(db_.Query("SELECT COUNT(*) FROM child").ok());
  uint64_t cold_misses = db_.Stats().buffer.misses();
  EXPECT_GT(cold_misses, warm_misses);
}

TEST_F(EngineTest, InsertWithColumnSubset) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT, b VARCHAR, c INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t (c, a) VALUES (3, 1)").ok());
  auto r = db_.Query("SELECT a, b, c FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt64(), 1);
  EXPECT_TRUE(r->rows[0][1].is_null());
  EXPECT_EQ(r->rows[0][2].AsInt64(), 3);
}

TEST_F(EngineTest, LikeFiltering) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE w (s VARCHAR)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO w VALUES ('apple'), ('apricot'), "
                          "('banana'), (NULL)")
                  .ok());
  auto r = db_.Query("SELECT s FROM w WHERE s LIKE 'ap%'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
  auto neg = db_.Query("SELECT s FROM w WHERE s NOT LIKE '%an%'");
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(neg->rows.size(), 2u);  // NULL excluded
  auto underscore = db_.Query("SELECT s FROM w WHERE s LIKE '_pple'");
  ASSERT_TRUE(underscore.ok());
  EXPECT_EQ(underscore->rows.size(), 1u);
}

TEST_F(EngineTest, InPredicate) {
  SetUpParentChild();
  auto r = db_.Query("SELECT id FROM parent WHERE id IN (1, 3, 5, 99)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 3u);
  auto neg = db_.Query(
      "SELECT COUNT(*) FROM parent WHERE id NOT IN (0, 1, 2)");
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(neg->rows[0][0].AsInt64(), 17);
}

TEST_F(EngineTest, Distinct) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE d (a INT, b INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO d VALUES (1, 1), (1, 2), (2, 1), "
                          "(1, 1)")
                  .ok());
  auto r = db_.Query("SELECT DISTINCT a FROM d ORDER BY a");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].AsInt64(), 1);
  EXPECT_EQ(r->rows[1][0].AsInt64(), 2);
  auto pairs = db_.Query("SELECT DISTINCT a, b FROM d");
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ(pairs->rows.size(), 3u);
}

TEST_F(EngineTest, DistinctStar) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE e (a INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO e VALUES (7), (7), (8)").ok());
  auto r = db_.Query("SELECT DISTINCT * FROM e");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

TEST_F(EngineTest, CrossJoinWithoutPredicate) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE x (a INT)").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE y (b INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO x VALUES (1), (2)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO y VALUES (10), (20), (30)").ok());
  auto r = db_.Query("SELECT a, b FROM x, y");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 6u);
}

TEST_F(EngineTest, HashJoinWithoutIndex) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE l (k INT, s VARCHAR)").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE r (k INT, t VARCHAR)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO l VALUES (1,'a'), (2,'b')").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO r VALUES (2,'x'), (2,'y'), (3,'z')").ok());
  auto r = db_.Query("SELECT l.s, r.t FROM l, r WHERE l.k = r.k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 2u);
}

}  // namespace
}  // namespace mtdb
