#include "engine/database.h"

#include <algorithm>

#include "common/deadline.h"
#include "common/key_encoding.h"
#include "common/trace.h"
#include "sql/ast_util.h"
#include "engine/session.h"
#include "engine/txn_context.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace mtdb {

namespace {

/// Builds the index key of `row` for `index`.
std::string IndexKeyFor(const IndexInfo& index, const Row& row) {
  std::vector<Value> vals;
  vals.reserve(index.key_columns.size());
  for (size_t c : index.key_columns) vals.push_back(row[c]);
  return KeyEncoder::EncodeKey(vals);
}

/// Evaluates a scalar parsed expression outside a full query plan:
/// literals, params, arithmetic, and (when `row`/`schema` are given)
/// column references into that row. Used by INSERT VALUES and UPDATE SET.
Result<Value> EvalParsedScalar(const sql::ParsedExpr& e, const Row* row,
                               const Schema* schema, const ExecContext& ctx) {
  using sql::PExprKind;
  switch (e.kind) {
    case PExprKind::kLiteral:
      return e.literal;
    case PExprKind::kParam:
      if (e.param_ordinal >= ctx.params.size()) {
        return Status::InvalidArgument("missing bind parameter " +
                                       std::to_string(e.param_ordinal + 1));
      }
      return ctx.params[e.param_ordinal];
    case PExprKind::kColumnRef: {
      if (row == nullptr || schema == nullptr) {
        return Status::InvalidArgument("column reference not allowed here: " +
                                       e.column);
      }
      auto pos = schema->Find(e.column);
      if (!pos.has_value()) {
        return Status::NotFound("no column " + e.column);
      }
      return (*row)[*pos];
    }
    case PExprKind::kUnary: {
      MTDB_ASSIGN_OR_RETURN(Value c, EvalParsedScalar(*e.left, row, schema, ctx));
      if (e.unary_op == sql::UnaryOp::kNeg) {
        if (c.is_null()) return c;
        if (c.type() == TypeId::kDouble) return Value::Double(-c.AsDouble());
        return Value::Int64(-c.AsInt64());
      }
      if (c.is_null()) return Value::Null(TypeId::kBool);
      return Value::Bool(!c.AsBool());
    }
    case PExprKind::kBinary: {
      MTDB_ASSIGN_OR_RETURN(Value l, EvalParsedScalar(*e.left, row, schema, ctx));
      MTDB_ASSIGN_OR_RETURN(Value r, EvalParsedScalar(*e.right, row, schema, ctx));
      if (l.is_null() || r.is_null()) return Value();
      switch (e.binary_op) {
        case sql::BinaryOp::kAdd:
          if (l.type() == TypeId::kString || r.type() == TypeId::kString) {
            return Value::String(l.ToString() + r.ToString());
          }
          if (l.type() == TypeId::kDouble || r.type() == TypeId::kDouble) {
            return Value::Double(l.AsDouble() + r.AsDouble());
          }
          return Value::Int64(l.AsInt64() + r.AsInt64());
        case sql::BinaryOp::kSub:
          if (l.type() == TypeId::kDouble || r.type() == TypeId::kDouble) {
            return Value::Double(l.AsDouble() - r.AsDouble());
          }
          return Value::Int64(l.AsInt64() - r.AsInt64());
        case sql::BinaryOp::kMul:
          if (l.type() == TypeId::kDouble || r.type() == TypeId::kDouble) {
            return Value::Double(l.AsDouble() * r.AsDouble());
          }
          return Value::Int64(l.AsInt64() * r.AsInt64());
        case sql::BinaryOp::kDiv:
          if (r.AsDouble() == 0.0) {
            return Status::InvalidArgument("division by zero");
          }
          if (l.type() == TypeId::kDouble || r.type() == TypeId::kDouble) {
            return Value::Double(l.AsDouble() / r.AsDouble());
          }
          return Value::Int64(l.AsInt64() / r.AsInt64());
        case sql::BinaryOp::kMod:
          if (r.AsInt64() == 0) {
            return Status::InvalidArgument("modulo by zero");
          }
          return Value::Int64(l.AsInt64() % r.AsInt64());
        default:
          return Status::InvalidArgument("unsupported scalar expression");
      }
    }
    default:
      return Status::InvalidArgument("unsupported scalar expression");
  }
}

/// Retries a compensating (undo) action so a bounded burst of transient
/// faults cannot leave a statement half rolled back. kNotFound counts as
/// success: the entry the undo wants gone is already gone. The statement
/// deadline is suppressed for the duration: the undo usually runs BECAUSE
/// the deadline expired, and cancelling the compensation itself would
/// leave the row half old, half new.
template <typename Fn>
Status RetryCompensation(Fn&& fn) {
  deadline::Scope no_deadline(deadline::Deadline::None());
  Status st;
  for (int attempt = 0; attempt < 8; ++attempt) {
    st = fn();
    if (st.ok() || st.code() == StatusCode::kNotFound) return Status::OK();
  }
  return st;
}

/// RAII holder for the table/index latches of one statement. Latches are
/// taken as they are added and dropped in reverse order on destruction.
/// Callers must add them in the canonical global order — tables sorted
/// by TableId, each table's heap latch before its index latches, index
/// latches in vector order — which makes the acquisition deadlock-free.
class LatchSet {
 public:
  LatchSet() = default;
  LatchSet(const LatchSet&) = delete;
  LatchSet& operator=(const LatchSet&) = delete;

  ~LatchSet() {
    for (auto it = held_.rbegin(); it != held_.rend(); ++it) {
      if (it->second) {
        it->first->unlock();
      } else {
        it->first->unlock_shared();
      }
    }
  }

  void Lock(SharedLatch& mu, bool exclusive) {
    if (exclusive) {
      mu.lock();
    } else {
      mu.lock_shared();
    }
    held_.emplace_back(&mu, exclusive);
  }

  /// Latches `table`'s heap and all its indexes. The index vector cannot
  /// change underneath us: DDL is excluded by the engine's level-1 latch
  /// for the duration of the statement.
  void LockTable(TableInfo* table, bool exclusive) {
    Lock(table->heap->latch(), exclusive);
    for (const auto& idx : table->indexes) {
      Lock(idx->tree->latch(), exclusive);
    }
  }

 private:
  std::vector<std::pair<SharedLatch*, bool>> held_;
};

/// Collects the base-table names referenced anywhere in `stmt`'s FROM
/// lists, including derived tables, recursively. (The AST has no
/// expression-level subqueries, so FROM is the only place tables hide.)
void CollectSelectTables(const sql::SelectStmt& stmt,
                         std::vector<std::string>* out) {
  for (const sql::TableRef& ref : stmt.from) {
    if (ref.is_subquery()) {
      CollectSelectTables(*ref.subquery, out);
    } else {
      out->push_back(ref.table_name);
    }
  }
}

/// Resolves `names` against the catalog, dedupes, and returns the tables
/// in canonical latch order (ascending TableId). Unknown names are
/// skipped — the planner reports them properly afterwards.
std::vector<TableInfo*> ResolveInLatchOrder(
    Catalog* catalog, const std::vector<std::string>& names) {
  std::vector<TableInfo*> tables;
  for (const std::string& name : names) {
    TableInfo* info = catalog->GetTable(name);
    if (info != nullptr) tables.push_back(info);
  }
  std::sort(tables.begin(), tables.end(),
            [](const TableInfo* a, const TableInfo* b) { return a->id < b->id; });
  tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
  return tables;
}

// Logical-txn nesting depth of the calling thread. An automatic
// checkpoint takes the txn gate exclusively; a thread already holding it
// shared (inside BeginDurableTxn..EndDurableTxn) must never try, or it
// would deadlock against itself.
thread_local int tls_txn_depth = 0;

// Threads that hold a latch ranked below the txn gate (the mapping
// layer's cache latch during lazy DDL) must not start an automatic
// checkpoint either; see AutoCheckpointDeferral.
thread_local int tls_ckpt_defer = 0;

}  // namespace

AutoCheckpointDeferral::AutoCheckpointDeferral() { tls_ckpt_defer++; }

AutoCheckpointDeferral::~AutoCheckpointDeferral() { tls_ckpt_defer--; }

Database::Database(DatabaseOptions options)
    : options_db_(std::move(options)),
      options_(options_db_.engine),
      planner_mode_(options_.planner_mode) {
  // DatabaseOptions::path is the canonical spelling; the engine-level
  // field stays for the deprecated Open(path) overload.
  if (!options_db_.path.empty()) {
    options_.durable_path = options_db_.path;
  } else {
    options_db_.path = options_.durable_path;
  }
  registry_ = std::make_unique<MetricsRegistry>();
  admission_ = std::make_unique<AdmissionController>(options_db_.admission,
                                                     registry_.get());
  if (options_db_.row_locks) {
    lock_manager_ = std::make_unique<lock::LockManager>(
        registry_.get(), options_db_.lock_shards);
  }
  store_ = std::make_unique<PageStore>(options_.page_size);
  store_->set_read_latency_ns(options_.read_latency_ns);
  pool_ = std::make_unique<BufferPool>(
      store_.get(), options_.memory_budget_bytes / options_.page_size);
  pool_->set_retry_policy(options_db_.retry_policy);
  catalog_ = std::make_unique<Catalog>(pool_.get(),
                                       options_.memory_budget_bytes,
                                       options_.metadata_costs);
  if (!options_.durable_path.empty()) {
    store_->set_dirty_tracking(true);
    // Instrumented builds: from here on, every page mutation must happen
    // inside a PageCaptureScope (C301) — recovery is exempt because WAL
    // replay installs images via PageStore::RecoverInstall, not the pool.
    pool_->set_wal_protocol_checks(true);
    DurabilityOptions dopts;
    dopts.wal_segment_bytes = options_.wal_segment_bytes;
    dopts.checkpoint_interval_bytes = options_.checkpoint_interval_bytes;
    durability_ = std::make_unique<Durability>(options_.durable_path, dopts,
                                              store_.get(), pool_.get());
  }
  RegisterEngineGauges();
}

Database::Database(EngineOptions options)
    : Database(DatabaseOptions{/*path=*/{}, /*engine=*/std::move(options),
                               /*retry_policy=*/{},
                               /*quarantine_threshold=*/8,
                               /*admission=*/{}}) {}

void Database::RegisterEngineGauges() {
  // Adapt the pre-existing counter structs into the registry namespace.
  // Gauges are evaluated at Snapshot() time, outside the registry latch,
  // so taking component latches inside the callbacks is fine.
  if (lock_manager_ != nullptr) {
    lock::LockManager* lm = lock_manager_.get();
    registry_->RegisterGauge("lock.held", [lm] { return lm->held(); });
  }
  const IoFaultCounters* io = &store_->io_counters();
  registry_->RegisterGauge("io.read_faults",
                           [io] { return io->Snapshot().read_faults; });
  registry_->RegisterGauge("io.write_faults",
                           [io] { return io->Snapshot().write_faults; });
  registry_->RegisterGauge("io.checksum_failures",
                           [io] { return io->Snapshot().checksum_failures; });
  registry_->RegisterGauge("io.read_retries",
                           [io] { return io->Snapshot().read_retries; });
  registry_->RegisterGauge("io.write_retries",
                           [io] { return io->Snapshot().write_retries; });
  registry_->RegisterGauge("io.retry_exhaustions",
                           [io] { return io->Snapshot().retry_exhaustions; });
  registry_->RegisterGauge("io.latency_spikes",
                           [io] { return io->Snapshot().latency_spikes; });
  const BufferPool* pool = pool_.get();
  registry_->RegisterGauge("buffer.logical_reads",
                           [pool] { return pool->stats().logical_reads(); });
  registry_->RegisterGauge("buffer.misses",
                           [pool] { return pool->stats().misses(); });
  registry_->RegisterGauge("buffer.evictions",
                           [pool] { return pool->stats().evictions; });
  const PageStore* store = store_.get();
  registry_->RegisterGauge("store.physical_reads",
                           [store] { return store->stats().physical_reads; });
  registry_->RegisterGauge("store.physical_writes",
                           [store] { return store->stats().physical_writes; });
  if (durability_ != nullptr) {
    const DurabilityCounters* dc = &durability_->counters();
    registry_->RegisterGauge("wal.appends",
                             [dc] { return dc->Snapshot().wal_appends; });
    registry_->RegisterGauge("wal.bytes",
                             [dc] { return dc->Snapshot().wal_bytes; });
    registry_->RegisterGauge("wal.group_commits",
                             [dc] { return dc->Snapshot().group_commits; });
    registry_->RegisterGauge("wal.checkpoints",
                             [dc] { return dc->Snapshot().checkpoints; });
    registry_->RegisterGauge("wal.recoveries",
                             [dc] { return dc->Snapshot().recoveries; });
    registry_->RegisterGauge("wal.replayed_groups",
                             [dc] { return dc->Snapshot().replayed_groups; });
    registry_->RegisterGauge(
        "wal.recovery_undo_statements",
        [dc] { return dc->Snapshot().recovery_undo_statements; });
  }
}

Result<std::unique_ptr<Database>> Database::Open(DatabaseOptions options) {
  auto db = std::make_unique<Database>(std::move(options));
  if (db->durable()) MTDB_RETURN_IF_ERROR(db->Recover());
  return db;
}

Result<std::unique_ptr<Database>> Database::Open(const std::string& path,
                                                 EngineOptions options) {
  DatabaseOptions opts;
  opts.path = path;
  opts.engine = std::move(options);
  return Open(std::move(opts));
}

Status Database::Recover() {
  MTDB_ASSIGN_OR_RETURN(RecoveredState state, durability_->Recover());
  std::unordered_map<TableId, Catalog::TableOverride> overrides;
  for (const WalTableMeta& tm : state.table_overrides) {
    overrides[tm.table_id] = Catalog::TableOverride{tm.first_page,
                                                    tm.index_roots};
  }
  MTDB_RETURN_IF_ERROR(catalog_->Restore(state.catalog_blob, overrides));
  // Undo logical statements the crash left half-applied, newest hint
  // first. Each compensation runs through the normal durable statement
  // path and commits its own group, so a crash mid-undo simply resumes
  // here on the next open (compensations are idempotent or guarded).
  for (auto it = state.open_hints.rbegin(); it != state.open_hints.rend();
       ++it) {
    MTDB_RETURN_IF_ERROR(ApplyRecoveryHint(it->sql));
  }
  // A fresh checkpoint seals recovery: the replayed log (and the undone
  // txns' records) truncate away.
  return Checkpoint();
}

Status Database::ApplyRecoveryHint(const std::string& sql_text) {
  MTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql_text));
  if (stmt.kind == sql::StatementKind::kInsert && stmt.insert->rows.size() == 1) {
    // The hint was logged *before* its forward statement, so the DELETE
    // this INSERT compensates may never have executed — re-inserting
    // would duplicate the row. Probe by the literal column values.
    const sql::InsertStmt& ins = *stmt.insert;
    TableInfo* table = catalog_->GetTable(ins.table);
    if (table == nullptr) {
      return Status::NotFound("recovery hint targets unknown table " +
                              ins.table);
    }
    sql::ParsedExprPtr where;
    for (size_t i = 0; i < ins.rows[0].size(); i++) {
      const sql::ParsedExpr& e = *ins.rows[0][i];
      if (e.kind != sql::PExprKind::kLiteral || e.literal.is_null()) continue;
      std::string column = i < ins.columns.size()
                               ? ins.columns[i]
                               : (i < table->schema.size()
                                      ? table->schema.at(i).name
                                      : std::string());
      if (column.empty()) continue;
      where = sql::AndTogether(
          std::move(where),
          sql::MakeBinary(sql::BinaryOp::kEq,
                          sql::MakeColumnRef("", column),
                          sql::MakeLiteral(e.literal)));
    }
    if (where != nullptr) {
      sql::SelectStmt probe;
      probe.select_star = true;
      sql::TableRef ref;
      ref.table_name = ins.table;
      probe.from.push_back(std::move(ref));
      probe.where = std::move(where);
      MTDB_ASSIGN_OR_RETURN(QueryResult hit, QueryAst(probe, {}));
      if (!hit.rows.empty()) return Status::OK();  // delete never applied
    }
  }
  MTDB_ASSIGN_OR_RETURN(int64_t affected, RunMutation(stmt, {}));
  (void)affected;
  durability_->counters().OnRecoveryUndoStatement();
  return Status::OK();
}

Status Database::Checkpoint() {
  if (durability_ == nullptr) {
    return Status::InvalidArgument("not a durable database");
  }
  // Housekeeping must run to completion even when invoked from a thread
  // whose statement deadline has expired: a half-written checkpoint is
  // worse than a late one, so suppress the ambient deadline here.
  deadline::Scope no_deadline(deadline::Deadline::None());
  // Gate before DDL latch (the global order); exclusive on both quiesces
  // every statement and every open statement-level logical txn. Open
  // CLIENT transactions hold neither latch between statements — their
  // undo hints are snapshotted here (race-free: every staging path holds
  // the gate or the DDL latch shared) and preserved in the meta file so
  // WAL truncation cannot lose them.
  std::unique_lock<SharedLatch> gate(durability_->txn_gate());
  std::unique_lock<SharedLatch> ddl(ddl_mu_);
  std::vector<OpenTxnMeta> open;
  {
    std::lock_guard<Latch> reg(txn_registry_mu_);
    open.reserve(open_client_txns_.size());
    for (const auto& [id, hints] : open_client_txns_) {
      OpenTxnMeta t;
      t.txn_id = id;
      t.hints = hints;
      open.push_back(std::move(t));
    }
  }
  return durability_->WriteCheckpoint(catalog_->Snapshot(), open);
}

void Database::MaybeAutoCheckpoint() {
  if (durability_ == nullptr || tls_txn_depth != 0 || tls_ckpt_defer != 0) {
    return;
  }
  if (!durability_->NeedsCheckpoint()) return;
  // A failure here (including an injected crash) freezes the subsystem
  // and surfaces on the next durable statement.
  (void)Checkpoint();
}

Result<uint64_t> Database::BeginDurableTxn() {
  if (durability_ == nullptr) {
    return Status::InvalidArgument("not a durable database");
  }
  MTDB_ASSIGN_OR_RETURN(uint64_t txn_id, durability_->BeginTxn());
  tls_txn_depth++;
  return txn_id;
}

Status Database::LogTxnHint(uint64_t txn_id,
                            const std::string& compensation_sql) {
  return durability_->LogHint(txn_id, compensation_sql);
}

Status Database::EndDurableTxn(uint64_t txn_id) {
  tls_txn_depth--;
  return durability_->EndTxn(txn_id);
}

Result<uint64_t> Database::BeginClientTxn(int64_t tenant) {
  uint64_t txn_id = 0;
  if (durability_ != nullptr) {
    if (durability_->frozen()) {
      return Status::Unavailable("durability frozen after crash");
    }
    // Brief shared hold: the begin record and the registry insert must
    // be one atom w.r.t. a checkpoint's gate-exclusive snapshot, or a
    // checkpoint could truncate the begin record without carrying the
    // transaction in meta.
    std::shared_lock<SharedLatch> gate(durability_->txn_gate());
    MTDB_ASSIGN_OR_RETURN(txn_id, durability_->BeginDetachedTxn());
    std::lock_guard<Latch> reg(txn_registry_mu_);
    open_client_txns_[txn_id];
  } else {
    txn_id = mem_txn_id_.fetch_add(1, std::memory_order_relaxed);
  }
  {
    std::lock_guard<Latch> reg(txn_registry_mu_);
    auto it = txn_open_counts_.find(tenant);
    if (it == txn_open_counts_.end()) {
      auto count = std::make_shared<std::atomic<int64_t>>(0);
      it = txn_open_counts_.emplace(tenant, count).first;
      // Registered exactly once per tenant (the registry's gauge list is
      // append-only); the shared_ptr keeps the callback valid for the
      // registry's lifetime.
      registry_->RegisterGauge("txn.open.t" + std::to_string(tenant),
                               [count]() -> uint64_t {
                                 int64_t v =
                                     count->load(std::memory_order_relaxed);
                                 return v > 0 ? static_cast<uint64_t>(v) : 0;
                               });
    }
    it->second->fetch_add(1, std::memory_order_relaxed);
  }
  return txn_id;
}

Status Database::StageClientHint(uint64_t txn_id,
                                 const std::string& compensation_sql) {
  if (durability_ == nullptr) return Status::OK();
  std::shared_lock<SharedLatch> gate(durability_->txn_gate());
  MTDB_RETURN_IF_ERROR(durability_->LogHint(txn_id, compensation_sql));
  std::lock_guard<Latch> reg(txn_registry_mu_);
  auto it = open_client_txns_.find(txn_id);
  if (it != open_client_txns_.end()) it->second.push_back(compensation_sql);
  return Status::OK();
}

Status Database::StageClientHintUnderStatement(
    uint64_t txn_id, const std::string& compensation_sql) {
  if (durability_ == nullptr) return Status::OK();
  // No gate here: the caller is inside an engine statement (shared DDL
  // latch held, rank below the gate). Checkpoints hold the DDL latch
  // exclusively, so no checkpoint can interleave with this statement.
  MTDB_RETURN_IF_ERROR(durability_->LogHint(txn_id, compensation_sql));
  std::lock_guard<Latch> reg(txn_registry_mu_);
  auto it = open_client_txns_.find(txn_id);
  if (it != open_client_txns_.end()) it->second.push_back(compensation_sql);
  return Status::OK();
}

Status Database::EndClientTxn(uint64_t txn_id, int64_t tenant) {
  Status st = Status::OK();
  if (durability_ != nullptr) {
    std::shared_lock<SharedLatch> gate(durability_->txn_gate());
    st = durability_->EndDetachedTxn(txn_id);
    // Deregister even when the end record could not be appended (frozen
    // durability): recovery resolves the transaction from disk, and a
    // frozen engine writes no further checkpoints anyway.
    std::lock_guard<Latch> reg(txn_registry_mu_);
    open_client_txns_.erase(txn_id);
  }
  {
    std::lock_guard<Latch> reg(txn_registry_mu_);
    auto it = txn_open_counts_.find(tenant);
    if (it != txn_open_counts_.end()) {
      it->second->fetch_sub(1, std::memory_order_relaxed);
    }
  }
  return st;
}

Status Database::CommitDmlGroup(const PageMutationCapture& capture,
                                TableInfo* table) {
  // WAL-protocol analyzer: the capture is consumed here, while the
  // statement's exclusive latches are still held (C302/C303).
  lockdep::OnCaptureCommit(&capture);
  if (durability_ == nullptr || capture.empty()) return Status::OK();
  std::vector<WalTableMeta> meta;
  WalTableMeta tm;
  tm.table_id = table->id;
  tm.first_page = table->heap->first_page();
  for (const auto& idx : table->indexes) {
    tm.index_roots.emplace_back(idx->id, idx->tree->root());
  }
  meta.push_back(std::move(tm));
  return durability_->CommitGroup(capture, std::move(meta), nullptr);
}

Status Database::CommitDdlGroup(const PageMutationCapture& capture,
                                bool snapshot) {
  lockdep::OnCaptureCommit(&capture);
  if (durability_ == nullptr || (capture.empty() && !snapshot)) {
    return Status::OK();
  }
  std::string blob;
  const std::string* blob_ptr = nullptr;
  if (snapshot) {
    blob = catalog_->Snapshot();
    blob_ptr = &blob;
  }
  return durability_->CommitGroup(capture, {}, blob_ptr);
}

Session Database::OpenSession() { return Session(this); }

// --- string/AST front doors: thin wrappers over the one pipeline -------

Result<QueryResult> Database::Execute(const std::string& sql,
                                      const std::vector<Value>& params) {
  MTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  MTDB_ASSIGN_OR_RETURN(StatementResult res, RunStatement(stmt, params));
  if (HasRows(res)) return std::move(std::get<QueryResult>(res));
  QueryResult out;
  if (HasExplanation(res)) {
    out.columns = {"mapping"};
    for (const PhysicalStatementPlan& p : ExplanationOf(res).statements) {
      out.rows.push_back({Value::String(p.sql)});
    }
    return out;
  }
  out.columns = {"affected"};
  out.rows.push_back({Value::Int64(AffectedOf(res))});
  return out;
}

Result<QueryResult> Database::Query(const std::string& sql,
                                    const std::vector<Value>& params) {
  MTDB_ASSIGN_OR_RETURN(auto stmt, sql::ParseSelect(sql));
  return RunSelect(*stmt, params);
}

Result<QueryResult> Database::QueryAst(const sql::SelectStmt& stmt,
                                       const std::vector<Value>& params) {
  return RunSelect(stmt, params);
}

Result<int64_t> Database::ExecuteAst(const sql::Statement& stmt,
                                     const std::vector<Value>& params) {
  if (stmt.kind == sql::StatementKind::kSelect) {
    return Status::InvalidArgument("use Query() for SELECT");
  }
  return RunMutation(stmt, params);
}

Result<std::string> Database::Explain(const std::string& sql) {
  MTDB_ASSIGN_OR_RETURN(auto stmt, sql::ParseSelect(sql));
  return ExplainAst(*stmt);
}

Result<std::string> Database::ExplainAst(const sql::SelectStmt& stmt) {
  // Planning only reads the catalog; holding the DDL latch shared keeps
  // the referenced TableInfos alive without blocking other statements.
  std::shared_lock<SharedLatch> ddl(ddl_mu_);
  MTDB_ASSIGN_OR_RETURN(PlannedQuery plan,
                        PlanSelect(stmt, catalog_.get(), planner_mode()));
  return plan.plan_text;
}

// --- the statement pipeline -------------------------------------------

Result<StatementResult> Database::RunStatement(const sql::Statement& stmt,
                                               const std::vector<Value>& params) {
  if (stmt.kind == sql::StatementKind::kSelect) {
    MTDB_ASSIGN_OR_RETURN(QueryResult rows, RunSelect(*stmt.select, params));
    return StatementResult(std::move(rows));
  }
  if (stmt.kind == sql::StatementKind::kExplainMapping) {
    // Below the mapping layer every logical statement IS its physical
    // statement: the plan is the target itself. Tenant sessions route
    // EXPLAIN MAPPING through their layout instead (SchemaMapping::
    // ExplainMapping), which reports the real logical→physical fan-out.
    const sql::Statement& target = *stmt.explain->target;
    MappingExplanation out;
    out.layout = "engine";
    out.logical = sql::ToSql(target);
    PhysicalStatementPlan entry;
    entry.op = sql::KindLabel(target.kind);
    entry.table = FirstTableOf(target);
    entry.sql = out.logical;
    out.statements.push_back(std::move(entry));
    if (target.kind == sql::StatementKind::kSelect) {
      MTDB_ASSIGN_OR_RETURN(out.plan_text, ExplainAst(*target.select));
    }
    return StatementResult(std::move(out));
  }
  MTDB_ASSIGN_OR_RETURN(int64_t affected, RunMutation(stmt, params));
  return StatementResult(affected);
}

Result<QueryResult> Database::RunSelect(const sql::SelectStmt& stmt,
                                        const std::vector<Value>& params) {
  std::shared_lock<SharedLatch> ddl(ddl_mu_);
  std::vector<std::string> names;
  CollectSelectTables(stmt, &names);
  trace::SpanScope span("select", names.empty() ? std::string() : names[0]);
  LatchSet latches;
  for (TableInfo* table : ResolveInLatchOrder(catalog_.get(), names)) {
    latches.LockTable(table, /*exclusive=*/false);
  }
  MTDB_ASSIGN_OR_RETURN(PlannedQuery plan,
                        PlanSelect(stmt, catalog_.get(), planner_mode()));
  ExecContext ctx;
  ctx.params = params;
  ctx.deadline = deadline::Current();
  MTDB_RETURN_IF_ERROR(plan.exec->Init(ctx));
  QueryResult out;
  out.columns = plan.exec->schema().names;
  Row row;
  while (true) {
    MTDB_RETURN_IF_ERROR(ctx.CheckDeadline());
    Result<bool> more = plan.exec->Next(&row, ctx);
    if (!more.ok()) return more.status();
    if (!*more) break;
    out.rows.push_back(std::move(row));
  }
  return out;
}

Result<int64_t> Database::RunMutation(const sql::Statement& stmt,
                                      const std::vector<Value>& params) {
  Result<int64_t> result = RunMutationInner(stmt, params);
  MaybeAutoCheckpoint();
  return result;
}

Result<int64_t> Database::RunMutationInner(const sql::Statement& stmt,
                                           const std::vector<Value>& params) {
  ExecContext ctx;
  ctx.params = params;
  ctx.deadline = deadline::Current();
  switch (stmt.kind) {
    case sql::StatementKind::kInsert:
    case sql::StatementKind::kUpdate:
    case sql::StatementKind::kDelete: {
      std::shared_lock<SharedLatch> ddl(ddl_mu_);
      const std::string& name = stmt.kind == sql::StatementKind::kInsert
                                    ? stmt.insert->table
                                    : stmt.kind == sql::StatementKind::kUpdate
                                          ? stmt.update->table
                                          : stmt.del->table;
      TableInfo* table = catalog_->GetTable(name);
      if (table == nullptr) {
        return Status::NotFound("no such table: " + name);
      }
      trace::SpanScope span(sql::KindLabel(stmt.kind), name);
      // One target table per DML statement; exclusive latch serializes
      // writers with each other and with this table's readers. UPDATE's
      // and DELETE's internal qualifying scan runs on the same table
      // under the latch already held here.
      LatchSet latches;
      latches.LockTable(table, /*exclusive=*/true);
      // Inside a client transaction whose statement is not already
      // covered by a mapping-layer undo log, the engine itself stages
      // value-based compensations for the rows this statement touches.
      txn::TransactionContext* txn_ctx = txn::TransactionContext::Current();
      const bool stage_txn =
          txn_ctx != nullptr && txn_ctx->open() && !txn_ctx->joined();
      std::vector<sql::Statement> txn_undo;
      std::vector<sql::Statement>* undo_out = stage_txn ? &txn_undo : nullptr;
      auto dispatch = [&]() -> Result<int64_t> {
        switch (stmt.kind) {
          case sql::StatementKind::kInsert:
            return ExecuteInsert(*stmt.insert, ctx, undo_out);
          case sql::StatementKind::kUpdate:
            return ExecuteUpdate(*stmt.update, ctx, undo_out);
          default:
            return ExecuteDelete(*stmt.del, ctx, undo_out);
        }
      };
      if (durability_ == nullptr) {
        Result<int64_t> result = dispatch();
        if (result.ok() && stage_txn && !txn_undo.empty()) {
          txn_ctx->Absorb(std::move(txn_undo));
        }
        return result;
      }
      if (durability_->frozen()) {
        return Status::Unavailable("durability frozen after crash");
      }
      // Capture the statement's page mutations and commit them as one
      // redo group while the exclusive table latches are still held —
      // a failed-and-compensated statement logs its (restored) pages
      // too, so the WAL always reproduces exactly what memory holds.
      PageMutationCapture capture;
      Result<int64_t> result = [&]() -> Result<int64_t> {
        PageCaptureScope scope(&capture);
        return dispatch();
      }();
      if (result.ok() && stage_txn && !txn_undo.empty()) {
        // Hints must reach the log before the redo group: a crash
        // between them loses the statement (no group) and the hints
        // replay harmlessly against the pre-statement state.
        Status staged = Status::OK();
        for (const sql::Statement& comp : txn_undo) {
          staged = txn_ctx->StageEngineHint(comp);
          if (!staged.ok()) break;
        }
        if (staged.ok()) {
          txn_ctx->Absorb(std::move(txn_undo));
        } else {
          result = staged;  // append failure froze durability
        }
      }
      Status logged = CommitDmlGroup(capture, table);
      if (!logged.ok() && result.ok()) return logged;
      return result;
    }
    case sql::StatementKind::kCreateTable: {
      std::unique_lock<SharedLatch> ddl(ddl_mu_);
      Schema schema;
      for (const sql::ColumnDef& def : stmt.create_table->columns) {
        schema.AddColumn(Column{def.name, def.type, def.not_null});
      }
      PageMutationCapture capture;
      Result<TableInfo*> created = [&]() -> Result<TableInfo*> {
        PageCaptureScope scope(&capture);
        return catalog_->CreateTable(stmt.create_table->table,
                                     std::move(schema));
      }();
      MTDB_RETURN_IF_ERROR(CommitDdlGroup(capture, created.ok()));
      if (!created.ok()) return created.status();
      return 0;
    }
    case sql::StatementKind::kCreateIndex: {
      std::unique_lock<SharedLatch> ddl(ddl_mu_);
      PageMutationCapture capture;
      Result<IndexInfo*> created = [&]() -> Result<IndexInfo*> {
        PageCaptureScope scope(&capture);
        return catalog_->CreateIndex(stmt.create_index->table,
                                     stmt.create_index->index,
                                     stmt.create_index->columns,
                                     stmt.create_index->unique);
      }();
      MTDB_RETURN_IF_ERROR(CommitDdlGroup(capture, created.ok()));
      if (!created.ok()) return created.status();
      return 0;
    }
    case sql::StatementKind::kDropTable: {
      std::unique_lock<SharedLatch> ddl(ddl_mu_);
      PageMutationCapture capture;
      Status dropped = [&]() -> Status {
        PageCaptureScope scope(&capture);
        return catalog_->DropTable(stmt.drop_table->table);
      }();
      MTDB_RETURN_IF_ERROR(CommitDdlGroup(capture, dropped.ok()));
      MTDB_RETURN_IF_ERROR(dropped);
      return 0;
    }
    case sql::StatementKind::kDropIndex: {
      std::unique_lock<SharedLatch> ddl(ddl_mu_);
      PageMutationCapture capture;
      Status dropped = [&]() -> Status {
        PageCaptureScope scope(&capture);
        return catalog_->DropIndex(stmt.drop_index->index);
      }();
      MTDB_RETURN_IF_ERROR(CommitDdlGroup(capture, dropped.ok()));
      MTDB_RETURN_IF_ERROR(dropped);
      return 0;
    }
    case sql::StatementKind::kSelect:
      return Status::InvalidArgument("use Query() for SELECT");
    case sql::StatementKind::kExplainMapping:
      return Status::InvalidArgument("EXPLAIN MAPPING is not a mutation");
    case sql::StatementKind::kBegin:
    case sql::StatementKind::kCommit:
    case sql::StatementKind::kRollback:
      return Status::InvalidArgument(
          "transaction control statements are session-scoped; use a Session "
          "or TenantSession");
  }
  return Status::Internal("unknown statement kind");
}

Status Database::InsertRowLatched(TableInfo* table, const Row& row,
                                  Rid* out_rid, Row* out_typed) {
  if (row.size() != table->schema.size()) {
    return Status::InvalidArgument("row arity mismatch for " + table->name);
  }
  // NOT NULL + unique checks first so failures do not leave partial state.
  Row typed;
  typed.reserve(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      if (table->schema.at(i).not_null) {
        return Status::ConstraintViolation("NULL in NOT NULL column " +
                                           table->schema.at(i).name);
      }
      typed.push_back(Value::Null(table->schema.at(i).type));
      continue;
    }
    MTDB_ASSIGN_OR_RETURN(Value v, row[i].CastTo(table->schema.at(i).type));
    typed.push_back(std::move(v));
  }
  for (const auto& idx : table->indexes) {
    if (!idx->unique) continue;
    std::string key = IndexKeyFor(*idx, typed);
    MTDB_ASSIGN_OR_RETURN(bool dup, idx->tree->Contains(key));
    if (dup) {
      return Status::ConstraintViolation("duplicate key in unique index " +
                                         idx->name);
    }
  }
  std::string image;
  MTDB_RETURN_IF_ERROR(table->codec->Encode(typed, &image));
  MTDB_ASSIGN_OR_RETURN(Rid rid, table->heap->Insert(image));
  for (size_t i = 0; i < table->indexes.size(); ++i) {
    std::string key = IndexKeyFor(*table->indexes[i], typed);
    Status st = table->indexes[i]->tree->Insert(key, rid);
    if (!st.ok()) {
      // Row-level undo: remove the index entries already written and the
      // heap row, so the failed insert leaves no trace.
      for (size_t j = 0; j < i; ++j) {
        std::string pkey = IndexKeyFor(*table->indexes[j], typed);
        (void)RetryCompensation(
            [&] { return table->indexes[j]->tree->Delete(pkey, rid); });
      }
      (void)RetryCompensation([&] { return table->heap->Delete(rid); });
      return st;
    }
  }
  if (out_rid != nullptr) *out_rid = rid;
  if (out_typed != nullptr) *out_typed = std::move(typed);
  return Status::OK();
}

Status Database::DeleteRowLatched(TableInfo* table, const Row& row,
                                  const Rid& rid) {
  size_t removed = 0;
  Status fail;
  for (; removed < table->indexes.size(); ++removed) {
    std::string key = IndexKeyFor(*table->indexes[removed], row);
    Status st = table->indexes[removed]->tree->Delete(key, rid);
    if (!st.ok() && st.code() != StatusCode::kNotFound) {
      fail = st;
      break;
    }
  }
  if (fail.ok()) {
    fail = table->heap->Delete(rid);
    if (fail.ok()) return fail;
  }
  // Row-level undo: the heap row still exists at `rid`, so put the index
  // entries already removed back.
  for (size_t j = 0; j < removed; ++j) {
    std::string key = IndexKeyFor(*table->indexes[j], row);
    (void)RetryCompensation(
        [&] { return table->indexes[j]->tree->Insert(key, rid); });
  }
  return fail;
}

Status Database::UpdateRowLatched(TableInfo* table, const Rid& old_rid,
                                  const Row& old_row, const Row& new_row,
                                  Rid* out_new_rid) {
  std::string new_image;
  MTDB_RETURN_IF_ERROR(table->codec->Encode(new_row, &new_image));
  Status fail;
  // 1. Drop the old index entries.
  size_t deleted_old = 0;
  for (; deleted_old < table->indexes.size(); ++deleted_old) {
    std::string key = IndexKeyFor(*table->indexes[deleted_old], old_row);
    Status st = table->indexes[deleted_old]->tree->Delete(key, old_rid);
    if (!st.ok() && st.code() != StatusCode::kNotFound) {
      fail = st;
      break;
    }
  }
  // 2. Rewrite the heap image (may relocate the row).
  Rid rid = old_rid;
  bool heap_updated = false;
  if (fail.ok()) {
    Status st = table->heap->Update(&rid, new_image);
    if (st.ok()) {
      heap_updated = true;
    } else {
      fail = st;
    }
  }
  // 3. Write the new index entries.
  size_t inserted_new = 0;
  if (fail.ok()) {
    for (; inserted_new < table->indexes.size(); ++inserted_new) {
      std::string key = IndexKeyFor(*table->indexes[inserted_new], new_row);
      Status st = table->indexes[inserted_new]->tree->Insert(key, rid);
      if (!st.ok()) {
        fail = st;
        break;
      }
    }
  }
  if (fail.ok()) {
    *out_new_rid = rid;
    return fail;
  }
  // Row-level undo, in reverse: new entries out, heap image back (which
  // may relocate again — the restored index entries use the final rid),
  // old entries in.
  for (size_t j = 0; j < inserted_new; ++j) {
    std::string key = IndexKeyFor(*table->indexes[j], new_row);
    (void)RetryCompensation(
        [&] { return table->indexes[j]->tree->Delete(key, rid); });
  }
  Rid back_rid = rid;
  if (heap_updated) {
    std::string old_image;
    if (table->codec->Encode(old_row, &old_image).ok()) {
      (void)RetryCompensation(
          [&] { return table->heap->Update(&back_rid, old_image); });
    }
  }
  for (size_t j = 0; j < deleted_old; ++j) {
    std::string key = IndexKeyFor(*table->indexes[j], old_row);
    (void)RetryCompensation(
        [&] { return table->indexes[j]->tree->Insert(key, back_rid); });
  }
  return fail;
}

void Database::RevertInsertedRow(TableInfo* table, const Row& typed,
                                 const Rid& rid) {
  for (const auto& idx : table->indexes) {
    std::string key = IndexKeyFor(*idx, typed);
    (void)RetryCompensation([&] { return idx->tree->Delete(key, rid); });
  }
  (void)RetryCompensation([&] { return table->heap->Delete(rid); });
}

void Database::RevertUpdatedRow(TableInfo* table, const Rid& new_rid,
                                const Row& new_row, const Row& old_row) {
  // UpdateRowLatched is its own inverse; it already compensates
  // internally, and the outer retry covers transient bursts.
  (void)RetryCompensation([&] {
    Rid ignored;
    return UpdateRowLatched(table, new_rid, new_row, old_row, &ignored);
  });
}

void Database::RestoreDeletedRow(TableInfo* table, const Row& row) {
  std::string image;
  if (!table->codec->Encode(row, &image).ok()) return;
  Rid rid{};
  Status st = RetryCompensation([&] {
    auto r = table->heap->Insert(image);
    if (!r.ok()) return r.status();
    rid = *r;
    return Status::OK();
  });
  if (!st.ok()) return;
  for (const auto& idx : table->indexes) {
    std::string key = IndexKeyFor(*idx, row);
    (void)RetryCompensation([&] { return idx->tree->Insert(key, rid); });
  }
}

namespace {

/// Conjunction matching every non-null column value of `row` — the
/// engine's value-based row predicate for client-transaction
/// compensations. Below the mapping layer there is no row-id column, so
/// the match is by content: if the table holds duplicate identical rows
/// the compensation touches all of them (same documented caveat as the
/// mapping layer's single-source fallback). NULL columns are skipped
/// because SQL `col = NULL` never matches.
sql::ParsedExprPtr AllValuesPredicate(const Schema& schema, const Row& row) {
  sql::ParsedExprPtr where;
  for (size_t i = 0; i < row.size() && i < schema.size(); ++i) {
    if (row[i].is_null()) continue;
    where = sql::AndTogether(
        std::move(where),
        sql::MakeBinary(sql::BinaryOp::kEq,
                        sql::MakeColumnRef("", schema.at(i).name),
                        sql::MakeLiteral(row[i])));
  }
  return where;
}

}  // namespace

Result<int64_t> Database::ExecuteInsert(const sql::InsertStmt& stmt,
                                        const ExecContext& ctx,
                                        std::vector<sql::Statement>* txn_undo) {
  TableInfo* table = catalog_->GetTable(stmt.table);
  if (table == nullptr) return Status::NotFound("no such table: " + stmt.table);
  std::vector<size_t> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < table->schema.size(); ++i) positions.push_back(i);
  } else {
    for (const std::string& c : stmt.columns) {
      auto pos = table->schema.Find(c);
      if (!pos.has_value()) {
        return Status::NotFound("no column " + c + " in " + stmt.table);
      }
      positions.push_back(*pos);
    }
  }
  // Statement-level atomicity: a multi-row VALUES list either fully
  // applies or, on any failure, every row already written is removed.
  std::vector<std::pair<Rid, Row>> applied;
  auto rollback = [&](Status st) -> Status {
    for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
      RevertInsertedRow(table, it->second, it->first);
    }
    return st;
  };
  for (const auto& row_exprs : stmt.rows) {
    if (Status dl = ctx.CheckDeadline(); !dl.ok()) return rollback(dl);
    if (row_exprs.size() != positions.size()) {
      return rollback(Status::InvalidArgument("VALUES arity mismatch"));
    }
    Row full(table->schema.size(), Value());
    for (size_t i = 0; i < positions.size(); ++i) {
      Result<Value> v = EvalParsedScalar(*row_exprs[i], nullptr, nullptr, ctx);
      if (!v.ok()) return rollback(v.status());
      full[positions[i]] = std::move(*v);
    }
    Rid rid;
    Row typed;
    Status st = InsertRowLatched(table, full, &rid, &typed);
    if (!st.ok()) return rollback(st);
    applied.emplace_back(rid, std::move(typed));
  }
  if (txn_undo != nullptr) {
    for (const auto& [rid, typed] : applied) {
      sql::ParsedExprPtr where = AllValuesPredicate(table->schema, typed);
      // An all-NULL row has no value predicate; an unqualified DELETE
      // would wipe the table, so leave that (degenerate) insert
      // uncompensated rather than stage a wrong undo.
      if (where == nullptr) continue;
      sql::Statement comp;
      comp.kind = sql::StatementKind::kDelete;
      comp.del = std::make_unique<sql::DeleteStmt>();
      comp.del->table = stmt.table;
      comp.del->where = std::move(where);
      txn_undo->push_back(std::move(comp));
    }
  }
  return static_cast<int64_t>(applied.size());
}

Result<int64_t> Database::ExecuteUpdate(const sql::UpdateStmt& stmt,
                                        const ExecContext& ctx,
                                        std::vector<sql::Statement>* txn_undo) {
  TableInfo* table = catalog_->GetTable(stmt.table);
  if (table == nullptr) return Status::NotFound("no such table: " + stmt.table);
  // Phase (a): plan "SELECT * FROM t WHERE ..." and collect rows + RIDs.
  sql::SelectStmt select;
  select.select_star = true;
  sql::TableRef ref;
  ref.table_name = stmt.table;
  select.from.push_back(std::move(ref));
  if (stmt.where != nullptr) select.where = stmt.where->Clone();
  MTDB_ASSIGN_OR_RETURN(PlannedQuery plan,
                        PlanSelect(select, catalog_.get(), planner_mode()));
  MTDB_RETURN_IF_ERROR(plan.exec->Init(ctx));

  std::vector<std::pair<Rid, Row>> affected;
  Row row;
  while (true) {
    Result<bool> more = plan.exec->Next(&row, ctx);
    if (!more.ok()) return more.status();
    if (!*more) break;
    const Rid* rid = plan.exec->current_rid();
    if (rid == nullptr) {
      return Status::Internal("update scan lost row identity");
    }
    affected.emplace_back(*rid, row);
  }

  std::vector<std::pair<size_t, const sql::ParsedExpr*>> sets;
  for (const auto& [col, expr] : stmt.assignments) {
    auto pos = table->schema.Find(col);
    if (!pos.has_value()) {
      return Status::NotFound("no column " + col + " in " + stmt.table);
    }
    sets.emplace_back(*pos, expr.get());
  }

  // Phase (b): apply per row; assignments may read old row values. Each
  // row applies atomically (UpdateRowLatched), and on a mid-statement
  // failure the rows already updated are reverted — the statement never
  // leaves a partial result.
  struct AppliedUpdate {
    Rid new_rid;
    Row old_row;
    Row new_row;
  };
  std::vector<AppliedUpdate> applied;
  auto rollback = [&](Status st) -> Status {
    for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
      RevertUpdatedRow(table, it->new_rid, it->new_row, it->old_row);
    }
    return st;
  };
  for (auto& [rid, old_row] : affected) {
    if (Status dl = ctx.CheckDeadline(); !dl.ok()) return rollback(dl);
    Row new_row = old_row;
    for (const auto& [pos, expr] : sets) {
      Result<Value> v = EvalParsedScalar(*expr, &old_row, &table->schema, ctx);
      if (!v.ok()) return rollback(v.status());
      Value val = std::move(*v);
      if (!val.is_null()) {
        Result<Value> cast = val.CastTo(table->schema.at(pos).type);
        if (!cast.ok()) return rollback(cast.status());
        val = std::move(*cast);
      }
      new_row[pos] = std::move(val);
    }
    Rid new_rid;
    Status st = UpdateRowLatched(table, rid, old_row, new_row, &new_rid);
    if (!st.ok()) return rollback(st);
    applied.push_back({new_rid, old_row, std::move(new_row)});
  }
  if (txn_undo != nullptr) {
    for (const AppliedUpdate& u : applied) {
      sql::ParsedExprPtr where = AllValuesPredicate(table->schema, u.new_row);
      if (where == nullptr) continue;  // all-NULL image: cannot address it
      sql::Statement comp;
      comp.kind = sql::StatementKind::kUpdate;
      comp.update = std::make_unique<sql::UpdateStmt>();
      comp.update->table = stmt.table;
      // Restore every column, not just the assigned ones: the hint must
      // reproduce the old image without access to in-memory state.
      for (size_t i = 0; i < u.old_row.size() && i < table->schema.size();
           ++i) {
        comp.update->assignments.emplace_back(
            table->schema.at(i).name, sql::MakeLiteral(u.old_row[i]));
      }
      comp.update->where = std::move(where);
      txn_undo->push_back(std::move(comp));
    }
  }
  return static_cast<int64_t>(affected.size());
}

Result<int64_t> Database::ExecuteDelete(const sql::DeleteStmt& stmt,
                                        const ExecContext& ctx,
                                        std::vector<sql::Statement>* txn_undo) {
  TableInfo* table = catalog_->GetTable(stmt.table);
  if (table == nullptr) return Status::NotFound("no such table: " + stmt.table);
  sql::SelectStmt select;
  select.select_star = true;
  sql::TableRef ref;
  ref.table_name = stmt.table;
  select.from.push_back(std::move(ref));
  if (stmt.where != nullptr) select.where = stmt.where->Clone();
  MTDB_ASSIGN_OR_RETURN(PlannedQuery plan,
                        PlanSelect(select, catalog_.get(), planner_mode()));
  MTDB_RETURN_IF_ERROR(plan.exec->Init(ctx));
  std::vector<std::pair<Rid, Row>> affected;
  Row row;
  while (true) {
    Result<bool> more = plan.exec->Next(&row, ctx);
    if (!more.ok()) return more.status();
    if (!*more) break;
    const Rid* rid = plan.exec->current_rid();
    if (rid == nullptr) {
      return Status::Internal("delete scan lost row identity");
    }
    affected.emplace_back(*rid, row);
  }
  // Each row deletes atomically; on a later failure the rows already
  // deleted are re-inserted (at fresh rids) so the statement is all-or-
  // nothing.
  std::vector<Row> deleted;
  for (const auto& [rid, old_row] : affected) {
    Status st = ctx.CheckDeadline();
    if (st.ok()) st = DeleteRowLatched(table, old_row, rid);
    if (!st.ok()) {
      for (auto it = deleted.rbegin(); it != deleted.rend(); ++it) {
        RestoreDeletedRow(table, *it);
      }
      return st;
    }
    deleted.push_back(old_row);
  }
  if (txn_undo != nullptr) {
    for (const Row& old_row : deleted) {
      sql::Statement comp;
      comp.kind = sql::StatementKind::kInsert;
      comp.insert = std::make_unique<sql::InsertStmt>();
      comp.insert->table = stmt.table;
      std::vector<sql::ParsedExprPtr> vals;
      for (size_t i = 0; i < old_row.size() && i < table->schema.size(); ++i) {
        comp.insert->columns.push_back(table->schema.at(i).name);
        vals.push_back(sql::MakeLiteral(old_row[i]));
      }
      comp.insert->rows.push_back(std::move(vals));
      txn_undo->push_back(std::move(comp));
    }
  }
  return static_cast<int64_t>(affected.size());
}

// --- direct helpers ----------------------------------------------------

// The direct helpers below mirror RunMutation's shape: an inner scope
// holds the latches and commits the WAL group, then MaybeAutoCheckpoint
// runs with everything released (Checkpoint takes the txn gate and
// ddl_mu_ exclusively, so it must never nest inside either).

Status Database::CreateTable(const std::string& name, Schema schema) {
  Status st = [&]() -> Status {
    std::unique_lock<SharedLatch> ddl(ddl_mu_);
    PageMutationCapture capture;
    Result<TableInfo*> created = [&]() -> Result<TableInfo*> {
      PageCaptureScope scope(&capture);
      return catalog_->CreateTable(name, std::move(schema));
    }();
    MTDB_RETURN_IF_ERROR(CommitDdlGroup(capture, created.ok()));
    return created.ok() ? Status::OK() : created.status();
  }();
  MaybeAutoCheckpoint();
  return st;
}

Status Database::DropTable(const std::string& name) {
  Status st = [&]() -> Status {
    std::unique_lock<SharedLatch> ddl(ddl_mu_);
    PageMutationCapture capture;
    Status dropped = [&]() -> Status {
      PageCaptureScope scope(&capture);
      return catalog_->DropTable(name);
    }();
    MTDB_RETURN_IF_ERROR(CommitDdlGroup(capture, dropped.ok()));
    return dropped;
  }();
  MaybeAutoCheckpoint();
  return st;
}

Status Database::CreateIndex(const std::string& table, const std::string& index,
                             const std::vector<std::string>& columns,
                             bool unique) {
  Status st = [&]() -> Status {
    std::unique_lock<SharedLatch> ddl(ddl_mu_);
    PageMutationCapture capture;
    Result<IndexInfo*> created = [&]() -> Result<IndexInfo*> {
      PageCaptureScope scope(&capture);
      return catalog_->CreateIndex(table, index, columns, unique);
    }();
    MTDB_RETURN_IF_ERROR(CommitDdlGroup(capture, created.ok()));
    return created.ok() ? Status::OK() : created.status();
  }();
  MaybeAutoCheckpoint();
  return st;
}

Status Database::InsertRow(const std::string& table, const Row& row) {
  trace::SpanScope span("insert", table);
  Status st = [&]() -> Status {
    std::shared_lock<SharedLatch> ddl(ddl_mu_);
    TableInfo* info = catalog_->GetTable(table);
    if (info == nullptr) return Status::NotFound("no such table: " + table);
    LatchSet latches;
    latches.LockTable(info, /*exclusive=*/true);
    if (durability_ == nullptr) return InsertRowLatched(info, row);
    if (durability_->frozen()) {
      return Status::Unavailable("durability frozen after crash");
    }
    PageMutationCapture capture;
    Status inserted = [&]() -> Status {
      PageCaptureScope scope(&capture);
      return InsertRowLatched(info, row);
    }();
    Status logged = CommitDmlGroup(capture, info);
    if (!logged.ok() && inserted.ok()) return logged;
    return inserted;
  }();
  MaybeAutoCheckpoint();
  return st;
}

// --- observability -----------------------------------------------------

EngineStats Database::Stats() const {
  // Every component snapshots under its own latch; no engine-wide lock.
  EngineStats out;
  out.buffer = pool_->stats();
  out.store = store_->stats();
  out.metadata_bytes = catalog_->metadata_bytes();
  out.buffer_capacity = pool_->capacity();
  out.tables = catalog_->table_count();
  out.indexes = catalog_->index_count();
  if (durability_ != nullptr) out.durability = durability_->counters().Snapshot();
  out.io_faults = store_->io_counters().Snapshot();
  out.metrics = registry_->Snapshot();
  return out;
}

std::string MappingExplanation::ToText() const {
  std::string out = "EXPLAIN MAPPING (layout=" + layout;
  if (tenant >= 0) out += ", tenant=" + std::to_string(tenant);
  out += ")\n  logical: " + logical + "\n";
  for (const PhysicalStatementPlan& p : statements) {
    out += "  physical[" + p.op + " " + p.table + "]: " + p.sql + "\n";
  }
  if (!plan_text.empty()) {
    out += "  plan:\n";
    size_t start = 0;
    while (start < plan_text.size()) {
      size_t end = plan_text.find('\n', start);
      if (end == std::string::npos) end = plan_text.size();
      out += "    " + plan_text.substr(start, end - start) + "\n";
      start = end + 1;
    }
  }
  return out;
}

void Database::ResetStats() {
  pool_->ResetStats();
  store_->ResetStats();
}

void Database::ColdCache() {
  // Exclude in-flight statements so no pinned frame blocks the sweep.
  // A failed write-back keeps its frame cached, so ignoring the status
  // here cannot lose data — the sweep is just less cold.
  std::unique_lock<SharedLatch> ddl(ddl_mu_);
  (void)pool_->EvictAll();
}

}  // namespace mtdb
