# Empty compiler generated dependencies file for mtdb_exec.
# This may be replaced when dependencies are built.
