#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"
#include "storage/page_store.h"
#include "storage/row_codec.h"
#include "storage/table_heap.h"

namespace mtdb {
namespace {

TEST(SlottedPageTest, InsertAndGet) {
  Page page(kDefaultPageSize);
  SlottedPage sp(&page);
  sp.Init(kInvalidPageId);
  int slot = sp.Insert("hello", 5);
  ASSERT_GE(slot, 0);
  uint32_t len = 0;
  const char* data = sp.Get(static_cast<uint16_t>(slot), &len);
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(std::string(data, len), "hello");
}

TEST(SlottedPageTest, DeleteKeepsOtherSlotsStable) {
  Page page(kDefaultPageSize);
  SlottedPage sp(&page);
  sp.Init(kInvalidPageId);
  int s0 = sp.Insert("aaa", 3);
  int s1 = sp.Insert("bbb", 3);
  ASSERT_TRUE(sp.Delete(static_cast<uint16_t>(s0)));
  uint32_t len = 0;
  EXPECT_EQ(sp.Get(static_cast<uint16_t>(s0), &len), nullptr);
  const char* data = sp.Get(static_cast<uint16_t>(s1), &len);
  ASSERT_NE(data, nullptr);
  EXPECT_EQ(std::string(data, len), "bbb");
  EXPECT_EQ(sp.LiveCount(), 1);
}

TEST(SlottedPageTest, SlotReuseAfterDelete) {
  Page page(kDefaultPageSize);
  SlottedPage sp(&page);
  sp.Init(kInvalidPageId);
  int s0 = sp.Insert("xx", 2);
  sp.Delete(static_cast<uint16_t>(s0));
  int s1 = sp.Insert("yy", 2);
  EXPECT_EQ(s0, s1);  // tombstoned slot is reused
}

TEST(SlottedPageTest, FillsUntilFull) {
  Page page(kDefaultPageSize);
  SlottedPage sp(&page);
  sp.Init(kInvalidPageId);
  std::string tuple(100, 'x');
  int count = 0;
  while (sp.Insert(tuple.data(), 100) >= 0) count++;
  // ~8KB / (100 bytes + 4-byte slot) => roughly 78 tuples.
  EXPECT_GT(count, 70);
  EXPECT_LT(count, 82);
}

TEST(SlottedPageTest, CompactionReclaimsDeletedSpace) {
  Page page(kDefaultPageSize);
  SlottedPage sp(&page);
  sp.Init(kInvalidPageId);
  std::string tuple(100, 'x');
  std::vector<int> slots;
  while (true) {
    int s = sp.Insert(tuple.data(), 100);
    if (s < 0) break;
    slots.push_back(s);
  }
  // Delete every other tuple, then the freed space must be insertable.
  for (size_t i = 0; i < slots.size(); i += 2) {
    sp.Delete(static_cast<uint16_t>(slots[i]));
  }
  int inserted = 0;
  while (sp.Insert(tuple.data(), 100) >= 0) inserted++;
  EXPECT_GE(inserted, static_cast<int>(slots.size() / 2));
}

TEST(SlottedPageTest, UpdateInPlaceAndGrow) {
  Page page(kDefaultPageSize);
  SlottedPage sp(&page);
  sp.Init(kInvalidPageId);
  int s = sp.Insert("0123456789", 10);
  EXPECT_TRUE(sp.Update(static_cast<uint16_t>(s), "abc", 3));
  uint32_t len = 0;
  const char* data = sp.Get(static_cast<uint16_t>(s), &len);
  EXPECT_EQ(std::string(data, len), "abc");
  EXPECT_TRUE(sp.Update(static_cast<uint16_t>(s), "0123456789abcdef", 16));
  data = sp.Get(static_cast<uint16_t>(s), &len);
  EXPECT_EQ(std::string(data, len), "0123456789abcdef");
}

TEST(PageStoreTest, AllocateReadWrite) {
  PageStore store(4096);
  PageId id = store.Allocate(PageType::kHeap);
  std::vector<char> buf(4096, 'z');
  ASSERT_TRUE(store.Write(id, buf.data()).ok());
  std::vector<char> out(4096, 0);
  ASSERT_TRUE(store.Read(id, out.data()).ok());
  EXPECT_EQ(out, buf);
  EXPECT_EQ(store.stats().physical_reads, 1u);
  EXPECT_EQ(store.stats().physical_writes, 1u);
}

TEST(PageStoreTest, DeallocateReusesIds) {
  PageStore store(1024);
  PageId a = store.Allocate(PageType::kHeap);
  store.Deallocate(a);
  PageId b = store.Allocate(PageType::kIndex);
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.TypeOf(b), PageType::kIndex);
}

// Regression: Read/Write/TypeOf on an out-of-range or deallocated
// PageId used to index straight into the page array (UB). They must
// report kNotFound / kFree instead.
TEST(PageStoreTest, InvalidIdsReturnNotFoundNotUB) {
  PageStore store(512);
  std::vector<char> buf(512, 'x');
  EXPECT_EQ(store.Read(9999, buf.data()).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Write(9999, buf.data()).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.TypeOf(9999), PageType::kFree);
  EXPECT_FALSE(store.IsAllocated(9999));

  PageId id = store.Allocate(PageType::kHeap);
  ASSERT_TRUE(store.Write(id, buf.data()).ok());
  store.Deallocate(id);
  EXPECT_EQ(store.Read(id, buf.data()).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Write(id, buf.data()).code(), StatusCode::kNotFound);
  EXPECT_EQ(store.TypeOf(id), PageType::kFree);
  EXPECT_FALSE(store.IsAllocated(id));

  // Double-deallocate and deallocate-of-garbage are ignored, not UB.
  store.Deallocate(id);
  store.Deallocate(424242);
}

TEST(BufferPoolTest, HitAndMissAccounting) {
  PageStore store(1024);
  BufferPool pool(&store, 8);
  Page* p = pool.NewPage(PageType::kHeap);
  PageId id = p->id();
  pool.UnpinPage(id, true);
  pool.ResetStats();

  auto again = pool.FetchPage(id);  // hit
  ASSERT_TRUE(again.ok());
  pool.UnpinPage((*again)->id(), false);
  EXPECT_EQ(pool.stats().logical_reads_data, 1u);
  EXPECT_EQ(pool.stats().misses_data, 0u);

  ASSERT_TRUE(pool.EvictAll().ok());
  auto cold = pool.FetchPage(id);  // miss
  ASSERT_TRUE(cold.ok());
  pool.UnpinPage((*cold)->id(), false);
  EXPECT_EQ(pool.stats().misses_data, 1u);
}

TEST(BufferPoolTest, EvictionRespectsCapacityAndLru) {
  PageStore store(1024);
  // Capacity is striped across shards: two frames per shard. LRU order is
  // maintained per shard, so the eviction victim is only deterministic
  // among pages that hash to the same shard.
  BufferPool pool(&store, 2 * kBufferPoolShards);
  std::vector<PageId> same_shard;
  size_t target_shard = 0;
  while (same_shard.size() < 3) {
    Page* p = pool.NewPage(PageType::kHeap);
    if (same_shard.empty()) target_shard = BufferPool::ShardOf(p->id());
    if (BufferPool::ShardOf(p->id()) == target_shard) {
      p->data()[0] = static_cast<char>('a' + same_shard.size());
      same_shard.push_back(p->id());
    }
    pool.UnpinPage(p->id(), true);
  }
  // Three same-shard pages compete for two frames: the oldest must have
  // been evicted and written back.
  pool.ResetStats();
  auto p0 = pool.FetchPage(same_shard[0]);
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ((*p0)->data()[0], 'a');  // contents survived eviction
  EXPECT_EQ(pool.stats().misses_data, 1u);
  pool.UnpinPage(same_shard[0], false);
  // The two most recently used same-shard pages were still resident.
  pool.ResetStats();
  ASSERT_TRUE(pool.FetchPage(same_shard[2]).ok());
  pool.UnpinPage(same_shard[2], false);
  EXPECT_EQ(pool.stats().misses_data, 0u);
}

TEST(BufferPoolTest, PinnedPagesAreNotEvicted) {
  PageStore store(1024);
  BufferPool pool(&store, 1);
  Page* pinned = pool.NewPage(PageType::kHeap);
  PageId pinned_id = pinned->id();
  // Allocate more pages while the first stays pinned.
  Page* other = pool.NewPage(PageType::kHeap);
  pool.UnpinPage(other->id(), false);
  auto refetched = pool.FetchPage(pinned_id);
  ASSERT_TRUE(refetched.ok());
  EXPECT_EQ(*refetched, pinned);  // same frame: never left the pool
  pool.UnpinPage(pinned_id, false);
  pool.UnpinPage(pinned_id, false);
}

TEST(BufferPoolTest, ShrinkCapacityEvicts) {
  PageStore store(1024);
  BufferPool pool(&store, 2 * kBufferPoolShards);
  for (size_t i = 0; i < 2 * kBufferPoolShards; ++i) {
    Page* p = pool.NewPage(PageType::kIndex);
    pool.UnpinPage(p->id(), false);
  }
  EXPECT_EQ(pool.frames_in_use(), 2 * kBufferPoolShards);
  // Shrinking redistributes the budget; every shard sheds down to its new
  // share (one frame each — shards never starve below one).
  pool.SetCapacity(kBufferPoolShards);
  EXPECT_LE(pool.frames_in_use(), kBufferPoolShards);
}

TEST(BufferPoolTest, IndexVsDataSplit) {
  PageStore store(1024);
  BufferPool pool(&store, 8);
  Page* heap = pool.NewPage(PageType::kHeap);
  Page* index = pool.NewPage(PageType::kIndex);
  PageId heap_id = heap->id(), index_id = index->id();
  pool.UnpinPage(heap_id, false);
  pool.UnpinPage(index_id, false);
  pool.ResetStats();
  ASSERT_TRUE(pool.FetchPage(heap_id).ok());
  pool.UnpinPage(heap_id, false);
  ASSERT_TRUE(pool.FetchPage(index_id).ok());
  pool.UnpinPage(index_id, false);
  EXPECT_EQ(pool.stats().logical_reads_data, 1u);
  EXPECT_EQ(pool.stats().logical_reads_index, 1u);
}

TEST(RowCodecTest, RoundTripAllTypes) {
  RowCodec codec({TypeId::kInt32, TypeId::kInt64, TypeId::kDouble,
                  TypeId::kDate, TypeId::kString, TypeId::kBool});
  Row row{Value::Int32(-5),      Value::Int64(1LL << 40),
          Value::Double(2.5),    Value::Date(10957),
          Value::String("abc"),  Value::Bool(true)};
  std::string image;
  ASSERT_TRUE(codec.Encode(row, &image).ok());
  auto decoded = codec.Decode(image.data(), static_cast<uint32_t>(image.size()));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    EXPECT_EQ((*decoded)[i].Compare(row[i]), 0) << i;
  }
}

TEST(RowCodecTest, NullsOccupyNoPayload) {
  RowCodec codec({TypeId::kString, TypeId::kString});
  std::string with_nulls, without;
  ASSERT_TRUE(codec.Encode({Value(), Value()}, &with_nulls).ok());
  ASSERT_TRUE(
      codec.Encode({Value::String("xx"), Value::String("yy")}, &without).ok());
  EXPECT_LT(with_nulls.size(), without.size());
  auto decoded =
      codec.Decode(with_nulls.data(), static_cast<uint32_t>(with_nulls.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE((*decoded)[0].is_null());
  EXPECT_TRUE((*decoded)[1].is_null());
}

TEST(RowCodecTest, ArityMismatchRejected) {
  RowCodec codec({TypeId::kInt32});
  std::string image;
  EXPECT_FALSE(codec.Encode({Value::Int32(1), Value::Int32(2)}, &image).ok());
}

TEST(RowCodecTest, CastsOnEncode) {
  RowCodec codec({TypeId::kInt64});
  std::string image;
  ASSERT_TRUE(codec.Encode({Value::String("123")}, &image).ok());
  auto decoded = codec.Decode(image.data(), static_cast<uint32_t>(image.size()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ((*decoded)[0].AsInt64(), 123);
}

class TableHeapTest : public ::testing::Test {
 protected:
  TableHeapTest() : store_(kDefaultPageSize), pool_(&store_, 64) {}
  PageStore store_;
  BufferPool pool_;
};

TEST_F(TableHeapTest, InsertGetDelete) {
  TableHeap heap(&pool_);
  auto rid = heap.Insert("tuple-1");
  ASSERT_TRUE(rid.ok());
  std::string out;
  ASSERT_TRUE(heap.Get(*rid, &out).ok());
  EXPECT_EQ(out, "tuple-1");
  ASSERT_TRUE(heap.Delete(*rid).ok());
  EXPECT_FALSE(heap.Get(*rid, &out).ok());
  EXPECT_EQ(heap.live_tuples(), 0u);
}

TEST_F(TableHeapTest, ScanSeesAllLiveTuples) {
  TableHeap heap(&pool_);
  std::map<std::string, bool> expected;
  for (int i = 0; i < 500; ++i) {
    std::string t = "tuple-" + std::to_string(i);
    ASSERT_TRUE(heap.Insert(t).ok());
    expected[t] = false;
  }
  auto it = heap.Begin();
  std::string tuple;
  Rid rid;
  int count = 0;
  while (true) {
    auto more = it.Next(&tuple, &rid);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    auto found = expected.find(tuple);
    ASSERT_NE(found, expected.end());
    EXPECT_FALSE(found->second) << "duplicate " << tuple;
    found->second = true;
    count++;
  }
  EXPECT_EQ(count, 500);
}

TEST_F(TableHeapTest, UpdateMayRelocate) {
  TableHeap heap(&pool_);
  // Fill a page almost completely, then grow one tuple.
  std::vector<Rid> rids;
  std::string tuple(800, 'a');
  for (int i = 0; i < 10; ++i) {
    auto rid = heap.Insert(tuple);
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  Rid target = rids[0];
  std::string bigger(7000, 'b');
  bool moved = false;
  ASSERT_TRUE(heap.Update(&target, bigger, &moved).ok());
  std::string out;
  ASSERT_TRUE(heap.Get(target, &out).ok());
  EXPECT_EQ(out, bigger);
}

TEST_F(TableHeapTest, AppendModeGrowsPages) {
  TableHeap heap(&pool_, InsertMode::kAppend);
  std::string tuple(1000, 'x');
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(heap.Insert(tuple).ok());
  }
  // 8 KB pages hold ~7 tuples of 1000 bytes: about 6 pages.
  EXPECT_GE(heap.page_count(), 5u);
}

TEST_F(TableHeapTest, FirstFitRefillsDeletedSpace) {
  TableHeap heap(&pool_, InsertMode::kFirstFit);
  std::string tuple(1000, 'x');
  std::vector<Rid> rids;
  for (int i = 0; i < 40; ++i) {
    auto rid = heap.Insert(tuple);
    ASSERT_TRUE(rid.ok());
    rids.push_back(*rid);
  }
  size_t pages_before = heap.page_count();
  for (const Rid& rid : rids) {
    ASSERT_TRUE(heap.Delete(rid).ok());
  }
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(heap.Insert(tuple).ok());
  }
  EXPECT_EQ(heap.page_count(), pages_before);  // space was reused
}

TEST_F(TableHeapTest, FreeReleasesPages) {
  TableHeap heap(&pool_);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(heap.Insert(std::string(500, 'q')).ok());
  }
  size_t allocated = store_.allocated_pages();
  EXPECT_GT(allocated, 0u);
  heap.Free();
  EXPECT_LT(store_.allocated_pages(), allocated);
  EXPECT_EQ(heap.page_count(), 0u);
}

}  // namespace
}  // namespace mtdb
