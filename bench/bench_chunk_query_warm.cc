// Reproduces Figure 9: "Response Times with Warm Cache" — Q2 over the
// conventional layout vs. Chunk Tables of width 3/6/15/30/90, sweeping
// the Q2 scale factor. The paper's shape: conventional fastest, width-3
// chunks slowest (aligning-join overhead), width >= 15 close to
// conventional; all curves grow with the scale factor.
#include <cstdio>
#include <cstdlib>

#include "chunk_bench_common.h"

namespace mtdb {
namespace bench {
namespace {

int Main() {
  ChunkBenchConfig config;
  if (const char* env = std::getenv("MTDB_BENCH_PARENTS")) {
    config.parents = std::atoi(env);
  }
  std::printf("=== Figure 9: Q2 response times, warm cache (ms) ===\n");
  std::printf("parents=%d children/parent=%d\n", config.parents,
              config.children_per_parent);

  std::vector<std::unique_ptr<Deployment>> deployments;
  {
    auto conv = MakeDeployment(config, 0);
    if (!conv.ok()) {
      std::fprintf(stderr, "setup: %s\n", conv.status().ToString().c_str());
      return 1;
    }
    deployments.push_back(std::move(*conv));
  }
  for (int width : config.widths) {
    auto d = MakeDeployment(config, width);
    if (!d.ok()) {
      std::fprintf(stderr, "setup: %s\n", d.status().ToString().c_str());
      return 1;
    }
    deployments.push_back(std::move(*d));
  }

  std::printf("%-6s", "scale");
  for (const auto& d : deployments) std::printf(" %12s", d->label.c_str());
  std::printf("\n");

  // The paper uses the same ? value for every warm run.
  std::vector<Value> params{Value::Int64(config.parents / 2)};
  for (int scale = 6; scale <= 90; scale += 6) {
    std::printf("%-6d", scale);
    for (const auto& d : deployments) {
      auto r = RunQuery(d.get(), BuildQ2(scale), params, /*reps=*/5,
                        /*cold=*/false);
      if (!r.ok()) {
        std::fprintf(stderr, "\nquery: %s\n", r.status().ToString().c_str());
        return 1;
      }
      std::printf(" %12.3f", r->mean_ms);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: conventional < chunk90..chunk15 << chunk3; the\n"
      "narrowest chunks pay the most row-reconstruction joins (Fig. 9).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace mtdb

int main() { return mtdb::bench::Main(); }
