# Empty dependencies file for bench_optimizer_behavior.
# This may be replaced when dependencies are built.
