file(REMOVE_RECURSE
  "CMakeFiles/mtdb_sql.dir/ast.cc.o"
  "CMakeFiles/mtdb_sql.dir/ast.cc.o.d"
  "CMakeFiles/mtdb_sql.dir/lexer.cc.o"
  "CMakeFiles/mtdb_sql.dir/lexer.cc.o.d"
  "CMakeFiles/mtdb_sql.dir/parser.cc.o"
  "CMakeFiles/mtdb_sql.dir/parser.cc.o.d"
  "CMakeFiles/mtdb_sql.dir/printer.cc.o"
  "CMakeFiles/mtdb_sql.dir/printer.cc.o.d"
  "libmtdb_sql.a"
  "libmtdb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtdb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
