// On-the-fly layout migration (§7 future work, implemented): a service
// that started on private tables per tenant consolidates onto Chunk
// Folding as it grows — without taking the source off-line, since the
// migrator reads through the ordinary query-transformation path.
#include <cstdio>

#include "core/chunk_folding_layout.h"
#include "core/migrator.h"
#include "core/private_layout.h"
#include "core/tenant_session.h"
#include "testbed/crm_schema.h"

using namespace mtdb;           // NOLINT: example brevity
using namespace mtdb::mapping;  // NOLINT

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  AppSchema app = testbed::BuildCrmAppSchema();

  // The young service: 12 tenants on private tables (fast, simple, but
  // 120 physical tables and growing linearly with every signup).
  Database old_db;
  PrivateTableLayout source(&old_db, &app);
  Check(source.Bootstrap(), "bootstrap source");
  for (TenantId t = 0; t < 12; ++t) {
    Check(source.CreateTenant(t), "tenant");
    if (t % 2 == 0) {
      Check(source.EnableExtension(t, "healthcare_account"), "extension");
    }
    TenantSession session = source.OpenSession(t);
    for (int i = 1; i <= 25; ++i) {
      std::string extra_cols = t % 2 == 0 ? ", hospital, beds" : "";
      std::string extra_vals =
          t % 2 == 0 ? ", 'h" + std::to_string(i % 5) + "', " +
                           std::to_string(i * 10)
                     : "";
      Check(session
                .Execute("INSERT INTO account (id, campaign_id, name, "
                         "status" + extra_cols + ") VALUES (" +
                         std::to_string(i) + ", 0, 'acct" +
                         std::to_string(i) + "', 'open'" + extra_vals + ")")
                .status(),
            "insert");
    }
  }
  std::printf("source (private tables): %zu tables, %llu KB meta-data\n",
              old_db.Stats().tables,
              static_cast<unsigned long long>(
                  old_db.Stats().metadata_bytes / 1024));

  // The grown-up deployment: Chunk Folding in a fresh database.
  Database new_db;
  ChunkFoldingLayout target(&new_db, &app);
  Check(target.Bootstrap(), "bootstrap target");

  auto report = LayoutMigrator::MigrateAll(&source, &target);
  Check(report.status(), "migrate");
  std::printf("migrated %d tenants, %lld rows\n", report->tenants_migrated,
              static_cast<long long>(report->rows_migrated));
  std::printf("target (chunk folding): %zu tables, %llu KB meta-data\n",
              new_db.Stats().tables,
              static_cast<unsigned long long>(
                  new_db.Stats().metadata_bytes / 1024));

  // The application never notices: the same logical SQL works through a
  // session on either deployment.
  const char* q = "SELECT COUNT(*), SUM(beds) FROM account WHERE beds > 100";
  auto before = source.OpenSession(0).Query(q);
  auto after = target.OpenSession(0).Query(q);
  Check(before.status(), "query source");
  Check(after.status(), "query target");
  std::printf("\ntenant 0, '%s'\n  source: count=%s sum=%s\n  target: "
              "count=%s sum=%s\n",
              q, before->rows[0][0].ToString().c_str(),
              before->rows[0][1].ToString().c_str(),
              after->rows[0][0].ToString().c_str(),
              after->rows[0][1].ToString().c_str());

  // And the target is immediately live for writes.
  Check(target.OpenSession(0)
            .Execute("UPDATE account SET beds = beds + 1 WHERE id = 2")
            .status(),
        "post-migration update");
  std::printf("\npost-migration DML on the target: OK\n");
  return 0;
}
