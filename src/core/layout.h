#ifndef MTDB_CORE_LAYOUT_H_
#define MTDB_CORE_LAYOUT_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/database.h"
#include "core/logical_schema.h"
#include "core/table_mapping.h"
#include "core/transformer.h"

namespace mtdb {
namespace mapping {

/// Statistics maintained by the mapping layer itself.
/// §6.3 gives two ways to run Phase (b) of an update/delete:
///  * kPerRow  — "let the application buffer the result and issue an
///    atomic update for each resulted row value and every affected
///    Chunk Table" (default; matches the paper's chosen design), or
///  * kBatched — one statement per chunk with a row-set predicate
///    ("nest the transformed query ... using an IN predicate on column
///    row"), which trades statement count for predicate size.
enum class DmlMode { kPerRow, kBatched };

struct LayoutStats {
  uint64_t queries_transformed = 0;
  uint64_t statements_transformed = 0;
  uint64_t physical_statements = 0;
  /// Physical DDL issued after Bootstrap (table rebuilds, lazy extension
  /// tables); generic layouts keep this at zero — §3's on-line argument.
  uint64_t ddl_statements = 0;
};

/// Observes every physical statement the mapping layer emits against the
/// underlying Database: the transformed SELECTs (§6.1), the Phase (a)
/// reconstruction queries and the Phase (b) DML statements (§6.3).
/// Installed by the static mapping verifier (src/analysis) to capture or
/// replay emitted ASTs. Callbacks run synchronously while the layer lock
/// is held; observers must not call back into the layout and should copy
/// (sql::CloneStatement / SelectStmt::Clone) anything they keep.
class PhysicalStatementObserver {
 public:
  virtual ~PhysicalStatementObserver() = default;

  /// A physical SELECT about to be executed for `tenant`.
  virtual void OnSelect(TenantId tenant, const sql::SelectStmt& stmt) = 0;

  /// A physical non-SELECT statement about to be executed for `tenant`.
  virtual void OnStatement(TenantId tenant, const sql::Statement& stmt) = 0;
};

/// A schema-mapping technique: maps the tenants' single-tenant logical
/// schemas onto one multi-tenant physical schema (§3) and rewrites
/// queries/DML accordingly. Concrete subclasses implement the layouts of
/// Figure 4 plus Chunk Folding.
///
/// Thread-safety: public methods are serialized by an internal lock
/// (sessions from an application server's connection pool may share one
/// layout object); the underlying Database adds its own statement lock.
///
/// The logical SQL dialect is ordinary SQL against the tenant's own
/// tables (e.g. "SELECT Beds FROM Account WHERE Hospital='State'").
class SchemaMapping : public MappingResolver {
 public:
  SchemaMapping(Database* db, const AppSchema* app);
  ~SchemaMapping() override = default;

  virtual std::string name() const = 0;

  /// Creates layout-global physical structures (generic tables etc.).
  virtual Status Bootstrap() = 0;

  /// Registers a tenant (provisions physical structures as needed).
  virtual Status CreateTenant(TenantId tenant);

  /// Enables an extension for a tenant. Layouts that cannot support
  /// extensibility (Basic) return an error — the paper's point.
  virtual Status EnableExtension(TenantId tenant, const std::string& ext);

  /// Drops a tenant and its data.
  virtual Status DropTenant(TenantId tenant);

  // --- logical statement execution -----------------------------------

  /// Runs a logical SELECT for `tenant`.
  Result<QueryResult> Query(TenantId tenant, const std::string& sql,
                            const std::vector<Value>& params = {});

  /// Runs logical INSERT/UPDATE/DELETE for `tenant`; returns affected
  /// logical rows.
  Result<int64_t> Execute(TenantId tenant, const std::string& sql,
                          const std::vector<Value>& params = {});

  /// Returns the transformed physical SQL (for inspection/examples).
  Result<std::string> ShowTransformed(TenantId tenant, const std::string& sql);

  /// Direct structured insert (used by bulk loaders): values in the
  /// tenant's effective column order; missing trailing columns NULL.
  virtual Result<int64_t> InsertRow(TenantId tenant, const std::string& table,
                                    const Row& row);

  // --- configuration ----------------------------------------------------

  TransformOptions& transform_options() { return transform_options_; }
  const LayoutStats& stats() const { return stats_; }

  /// Column-access heat observed by this layer's query transformations;
  /// feeds AdviseConventionalExtensions for Chunk Folding tuning.
  const HeatProfile& heat_profile() const { return heat_; }
  HeatProfile* mutable_heat_profile() { return &heat_; }

  DmlMode dml_mode() const { return dml_mode_; }
  void set_dml_mode(DmlMode mode) { dml_mode_ = mode; }

  /// Installs (or clears, with nullptr) the physical-statement observer.
  /// Not owned; the observer must outlive the layout or be cleared first.
  void set_statement_observer(PhysicalStatementObserver* observer) {
    std::lock_guard<std::recursive_mutex> lock(mu_);
    observer_ = observer;
  }

  /// §6.3: "we transform delete operations into updates that mark the
  /// tuples as invisible ... in order to provide mechanisms like a
  /// Trashcan." Only meaningful for layouts whose physical sources carry
  /// a `del` visibility column (ChunkTableLayout with trashcan enabled).
  bool trashcan_deletes() const { return trashcan_deletes_; }

  /// Restores every trashcan-deleted row of (tenant, table); returns the
  /// number of restored physical rows. Fails unless the layout uses
  /// trashcan deletes.
  Result<int64_t> RestoreDeleted(TenantId tenant, const std::string& table);
  Database* db() { return db_; }
  const AppSchema* app() const { return app_; }

  /// All registered tenants (for migration and administration).
  std::vector<TenantId> TenantIds() const;
  /// The extensions a tenant has enabled, in enable order.
  Result<std::vector<std::string>> TenantExtensions(TenantId tenant) const;

  // MappingResolver:
  Result<std::vector<std::pair<std::string, TypeId>>> LogicalColumns(
      TenantId tenant, const std::string& table) override;

 protected:
  /// Subclass hook: the tenant's physical mapping for a logical table.
  /// (MappingResolver::Mapping is the public face of this.)

  /// Per-tenant bookkeeping shared by all layouts.
  struct TenantEntry {
    TenantState state;
    /// next row id per logical table (lower-cased name).
    std::map<std::string, int64_t> next_row;
  };

  Result<TenantEntry*> GetTenant(TenantId tenant);
  Result<EffectiveTable> GetEffective(TenantId tenant,
                                      const std::string& table);

  /// Generic DML implementations driven by the TableMapping (used by all
  /// generic layouts; Private/Basic override with direct rewrites).
  virtual Result<int64_t> GenericInsert(TenantId tenant,
                                        const sql::InsertStmt& stmt,
                                        const std::vector<Value>& params);
  virtual Result<int64_t> GenericUpdate(TenantId tenant,
                                        const sql::UpdateStmt& stmt,
                                        const std::vector<Value>& params);
  virtual Result<int64_t> GenericDelete(TenantId tenant,
                                        const sql::DeleteStmt& stmt,
                                        const std::vector<Value>& params);

  /// Inserts one logical row (named columns) through the mapping.
  Result<int64_t> InsertMappedRow(TenantId tenant, const std::string& table,
                                  const std::vector<std::string>& columns,
                                  const Row& values);

  /// Phase (a) of §6.3: returns the row ids (and full logical rows) that
  /// a WHERE clause selects.
  struct AffectedRow {
    int64_t row_id;
    Row logical;  // effective-column order
  };
  Result<std::vector<AffectedRow>> CollectAffected(
      TenantId tenant, const std::string& table, const sql::ParsedExpr* where,
      const std::vector<Value>& params);

  /// Invalidates all cached TableMappings (call after DDL).
  void InvalidateMappings();

  /// Forwards an emitted physical statement to the observer, if any.
  /// Layouts must call these immediately before handing an AST to db_.
  void NotifySelect(TenantId tenant, const sql::SelectStmt& stmt);
  void NotifyStatement(TenantId tenant, const sql::Statement& stmt);

  /// Sequential "Table" meta-data identifier for (tenant, logical table),
  /// as in the Table column of Figure 4(c)–(f).
  int32_t TableNumber(TenantId tenant, const std::string& table);

  Database* db_;
  const AppSchema* app_;
  /// Serializes access to the mutable layer state (mapping cache, row
  /// counters, tenant registry, heat profile, stats). Recursive because
  /// public entry points call each other (Execute -> Mapping, ...).
  mutable std::recursive_mutex mu_;
  TransformOptions transform_options_;
  LayoutStats stats_;
  HeatProfile heat_;
  DmlMode dml_mode_ = DmlMode::kPerRow;
  /// Physical-statement capture hook (see PhysicalStatementObserver).
  PhysicalStatementObserver* observer_ = nullptr;
  /// Set by layouts that provision `del` visibility columns.
  bool trashcan_deletes_ = false;
  std::map<TenantId, TenantEntry> tenants_;

  /// Cache of (tenant, table-lower) -> TableMapping, filled via Mapping().
  std::map<std::pair<TenantId, std::string>, std::unique_ptr<TableMapping>>
      mapping_cache_;

  std::map<std::pair<TenantId, std::string>, int32_t> table_numbers_;
  int32_t next_table_number_ = 0;

  /// Subclass hook: build the mapping for (tenant, table).
  virtual Result<std::unique_ptr<TableMapping>> BuildMapping(
      TenantId tenant, const std::string& table) = 0;

 public:
  Result<const TableMapping*> Mapping(TenantId tenant,
                                      const std::string& table) override;
};

/// Renders a value row for physical insert given a mapping source.
Schema PhysicalSchemaFromColumns(const std::vector<Column>& cols);

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_LAYOUT_H_
