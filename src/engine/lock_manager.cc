#include "engine/lock_manager.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <functional>
#include <set>

#include "common/deadline.h"
#include "common/trace.h"

namespace mtdb {
namespace lock {

namespace {

/// Refresh tick for parked waiters: even without a wake-up, a waiter
/// re-publishes its (possibly stale) blocker edges and re-runs cycle
/// detection this often, bounding how long a missed notification or a
/// stale edge can hide a deadlock.
constexpr std::chrono::milliseconds kDetectionTick(100);

Status VictimStatus() {
  return Status::Aborted(
      "deadlock detected: this transaction was chosen as the victim and "
      "must be rolled back; retry it");
}

thread_local StatementLockContext* tls_lock_ctx = nullptr;

}  // namespace

struct LockManager::Holder {
  uint64_t id = 0;
  int64_t tenant = 0;
  bool bracket = false;
  /// Age stamp for victim selection (largest epoch = youngest loses).
  /// Re-stamped at every statement lease, written by the owner thread
  /// and read by deadlock detection under the graph latch.
  std::atomic<uint64_t> epoch{0};
  /// Set by a peer's deadlock detection (AbortVictimLocked); read by the
  /// owner on every wake and at every acquisition.
  std::atomic<bool> aborted{false};
  /// Keys this holder has been granted. Touched only by the owning
  /// session thread (Acquire/ReleaseAll), so no latch is needed.
  std::vector<LockKey> held;
  /// Map nodes paired 1:1 with `held`: each grant records the entry it
  /// owns so release skips the map probe. Node addresses survive
  /// rehashes, and an entry with owners is never erased, so the
  /// pointers stay valid until this holder releases them.
  std::vector<LockManager::LockEntry*> held_entries;
  /// lock.acquired.t<tenant>, resolved once at CreateHolder so the
  /// per-row fast path skips the registry lookup.
  Counter* acquired = nullptr;
};

namespace {

/// Per-thread statement-holder cache: an autocommit statement reuses
/// the holder its thread registered last time instead of paying the
/// holder-registry round trip (graph latch + map insert/erase + heap
/// traffic) per statement. Keyed by (manager pointer, serial) so a
/// manager reincarnated at a recycled address can never match, and the
/// cached Holder* is only dereferenced after the serial matches. One
/// empty registered holder may linger per (thread, manager) — it holds
/// nothing and dies with the manager.
struct TlsHolderCache {
  const void* lm = nullptr;
  uint64_t serial = 0;
  int64_t tenant = 0;
  LockManager::Holder* holder = nullptr;
  /// True while an open StatementLockContext on this thread has leased
  /// the holder; a nested statement then falls back to a fresh one.
  bool in_use = false;
};

thread_local TlsHolderCache tls_holder_cache;

std::atomic<uint64_t> g_lock_manager_serial{1};

}  // namespace

LockManager::LockManager(MetricsRegistry* metrics, size_t shards)
    : metrics_(metrics),
      serial_(g_lock_manager_serial.fetch_add(1, std::memory_order_relaxed)) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

LockManager::~LockManager() = default;

Counter* LockManager::TenantCounter(const char* what, int64_t tenant) {
  return metrics_->GetCounter(std::string("lock.") + what + ".t" +
                              std::to_string(tenant));
}

LatencyHistogram* LockManager::TenantWaitHistogram(int64_t tenant) {
  return metrics_->GetHistogram("lock.wait_us.t" + std::to_string(tenant));
}

uint64_t LockManager::CreateHolder(int64_t tenant, bool bracket) {
  return CreateHolderResolved(tenant, bracket)->id;
}

LockManager::Holder* LockManager::CreateHolderResolved(int64_t tenant,
                                                       bool bracket) {
  std::lock_guard<Latch> g(graph_mu_);
  std::unique_ptr<Holder> h;
  if (!holder_pool_.empty()) {
    h = std::move(holder_pool_.back());
    holder_pool_.pop_back();
    h->aborted.store(false, std::memory_order_relaxed);
    h->held.clear();
    h->held_entries.clear();
  } else {
    h = std::make_unique<Holder>();
  }
  h->id = next_holder_++;
  h->tenant = tenant;
  h->bracket = bracket;
  h->epoch.store(epoch_counter_.fetch_add(1, std::memory_order_relaxed),
                 std::memory_order_relaxed);
  Counter*& acquired = acquired_counters_[tenant];
  if (acquired == nullptr) {
    // Registry rank (kMetricsRegistry) sits below the graph latch, so
    // the miss-path lookup is legal while graph_mu_ is held.
    acquired = TenantCounter("acquired", tenant);
  }
  h->acquired = acquired;
  Holder* out = h.get();
  holders_.emplace(out->id, std::move(h));
  return out;
}

LockManager::Holder* LockManager::ResolveHolder(uint64_t holder) const {
  std::lock_guard<Latch> g(graph_mu_);
  auto it = holders_.find(holder);
  return it != holders_.end() ? it->second.get() : nullptr;
}

LockManager::Holder* LockManager::LeaseStatementHolder(int64_t tenant,
                                                       bool* leased) {
  TlsHolderCache& c = tls_holder_cache;
  if (c.lm == this && c.serial == serial_) {
    if (c.in_use) {
      // A statement on this thread already leased the cached holder
      // (nested execution); give the inner statement its own.
      *leased = false;
      return CreateHolderResolved(tenant, /*bracket=*/false);
    }
    if (c.tenant != tenant) {
      // Thread switched tenants: retire the cached holder (it holds
      // nothing — statement locks dropped at statement end).
      uint64_t old = c.holder->id;
      c.lm = nullptr;
      ReleaseAll(old);
    } else {
      Holder* h = c.holder;
      // Between statements the holder owns no locks and waits on
      // nothing, so no detector can be about to flag it: resetting the
      // victim flag and re-stamping the age here is race-free.
      h->aborted.store(false, std::memory_order_relaxed);
      h->epoch.store(epoch_counter_.fetch_add(1, std::memory_order_relaxed),
                     std::memory_order_relaxed);
      c.in_use = true;
      *leased = true;
      return h;
    }
  }
  // Cold thread (or another manager's entry, abandoned — its empty
  // holder stays registered there until that manager dies).
  Holder* h = CreateHolderResolved(tenant, /*bracket=*/false);
  c.lm = this;
  c.serial = serial_;
  c.tenant = tenant;
  c.holder = h;
  c.in_use = true;
  *leased = true;
  return h;
}

void LockManager::ReleaseStatementLocks(Holder* h) {
  if (!h->held.empty()) {
    ReleaseKeys(h->id, h->held, h->held_entries);
    h->held.clear();
    h->held_entries.clear();
  }
  TlsHolderCache& c = tls_holder_cache;
  if (c.holder == h && c.lm == this) c.in_use = false;
}

uint64_t LockManager::held() const {
  uint64_t g = 0, r = 0;
  for (const auto& s : shards_) {
    std::lock_guard<Latch> lk(s->mu);
    g += s->granted;
    r += s->released;
  }
  return g >= r ? g - r : 0;
}

uint64_t LockManager::WriteEpoch(int64_t tenant,
                                 const std::string& table_lower) const {
  const size_t h = LockKeyHash::TableHash(tenant, table_lower);
  return shards_[h % shards_.size()]->write_epoch.load(
      std::memory_order_acquire);
}

bool LockManager::IsAborted(uint64_t holder) const {
  std::lock_guard<Latch> g(graph_mu_);
  auto it = holders_.find(holder);
  return it != holders_.end() &&
         it->second->aborted.load(std::memory_order_acquire);
}

bool LockManager::Grantable(const LockEntry& e, uint64_t holder,
                            LockMode mode) {
  for (const auto& [oid, omode] : e.owners) {
    if (oid == holder) continue;
    if (mode == LockMode::kX || omode == LockMode::kX) return false;
    // Both intents: compatible.
  }
  return true;
}

std::vector<uint64_t> LockManager::BlockersOf(const LockEntry& e,
                                              uint64_t holder, LockMode mode) {
  std::vector<uint64_t> out;
  for (const auto& [oid, omode] : e.owners) {
    if (oid == holder) continue;
    if (mode == LockMode::kX || omode == LockMode::kX) out.push_back(oid);
  }
  return out;
}

bool LockManager::Grant(LockEntry* e, uint64_t holder, LockMode mode) {
  for (auto& [oid, omode] : e->owners) {
    if (oid == holder) {
      // Upgrade sticks (IX -> X); a downgrade request is a no-op.
      if (mode == LockMode::kX) omode = LockMode::kX;
      return false;
    }
  }
  e->owners.emplace_back(holder, mode);
  return true;
}

uint64_t LockManager::FindDeadlockVictimLocked(uint64_t self) const {
  // DFS over the wait-for graph starting from self; the cycle (if any)
  // is the current path the moment an edge points back at self. The
  // victim is the youngest member — largest epoch stamp, i.e. the most
  // recently started bracket/statement == least work lost.
  std::vector<uint64_t> path{self};
  std::set<uint64_t> visited{self};
  uint64_t victim = 0;
  std::function<bool(uint64_t)> dfs = [&](uint64_t node) -> bool {
    auto it = waits_for_.find(node);
    if (it == waits_for_.end()) return false;
    for (uint64_t next : it->second) {
      if (next == self) {
        uint64_t best_epoch = 0;
        for (uint64_t member : path) {
          auto hit = holders_.find(member);
          const uint64_t ep =
              hit != holders_.end()
                  ? hit->second->epoch.load(std::memory_order_relaxed)
                  : 0;
          if (ep >= best_epoch) {
            best_epoch = ep;
            victim = member;
          }
        }
        return true;
      }
      if (visited.insert(next).second) {
        path.push_back(next);
        if (dfs(next)) return true;
        path.pop_back();
      }
    }
    return false;
  };
  (void)dfs(self);
  return victim;
}

void LockManager::AbortVictimLocked(uint64_t victim) {
  // Only a parked holder is a victim. Grant acceptance atomically (under
  // graph_mu_, which this caller holds) checks the flag and retires the
  // waiter's edges, so "edges live" ⇔ "still parked": a holder granted
  // since the DFS saw its edge must not be flagged — it would proceed
  // holding the lock and its next acquisition would spuriously abort.
  if (waits_for_.find(victim) == waits_for_.end()) return;
  auto it = holders_.find(victim);
  if (it == holders_.end()) return;
  it->second->aborted.store(true, std::memory_order_release);
  // The victim is parked on some shard's condvar (every cycle member is
  // blocked); wake everything so it observes the flag. Notifying a
  // condvar requires no latch.
  for (auto& s : shards_) s->cv.notify_all();
}

Status LockManager::AcquireRowWithIntent(Holder* h, LockKey table_key,
                                         LockKey row_key, bool* waited) {
  if (h->aborted.load(std::memory_order_acquire)) return VictimStatus();
  // Same (tenant, table): hash the string once, share the memo.
  row_key.cached_hash = LockKeyHash::TableHash(table_key);
  Shard& s = ShardFor(table_key);  // row_key maps to the same shard
  {
    std::unique_lock<Latch> lk(s.mu);
    auto [tit, t_inserted] = s.table.try_emplace(table_key);
    if (!t_inserted && tit->second.owners.empty() &&
        tit->second.waiters == 0) {
      s.empty_entries--;
    }
    if (Grantable(tit->second, h->id, LockMode::kIntentX)) {
      // References survive the second try_emplace (rehash moves
      // buckets, never nodes).
      LockEntry& te = tit->second;
      auto [rit, r_inserted] = s.table.try_emplace(row_key);
      if (!r_inserted && rit->second.owners.empty() &&
          rit->second.waiters == 0) {
        s.empty_entries--;
      }
      if (Grantable(rit->second, h->id, LockMode::kX)) {
        uint64_t grants = 0;
        if (Grant(&te, h->id, LockMode::kIntentX)) {
          h->held.push_back(std::move(table_key));
          h->held_entries.push_back(&te);
          grants++;
        }
        if (Grant(&rit->second, h->id, LockMode::kX)) {
          h->held.push_back(std::move(row_key));
          h->held_entries.push_back(&rit->second);
          grants++;
        }
        if (grants != 0) {
          s.granted += grants;
          h->acquired->Add(grants);
        }
        return Status::OK();
      }
      // Row conflict (its entry has owners). The table entry may be
      // sitting empty and uncounted after the probe above — restore the
      // cache accounting before bailing to the waiting path. Re-find:
      // the row try_emplace may have rehashed the table iterator away.
      auto t2 = s.table.find(table_key);
      if (t2 != s.table.end() && t2->second.owners.empty() &&
          t2->second.waiters == 0) {
        if (s.empty_entries < kEmptyEntryCacheCap) {
          s.empty_entries++;
        } else {
          s.table.erase(t2);
        }
      }
    }
  }
  // Conflict somewhere: take the locks one by one through the waiting
  // path. Re-probing the granted half is an idempotent map hit.
  MTDB_RETURN_IF_ERROR(
      AcquireResolved(h, table_key, LockMode::kIntentX, waited));
  return AcquireResolved(h, row_key, LockMode::kX, waited);
}

Status LockManager::Acquire(uint64_t holder, const LockKey& key, LockMode mode,
                            bool* waited) {
  Holder* h = ResolveHolder(holder);
  if (h == nullptr) {
    return Status::Internal("unknown lock holder " + std::to_string(holder));
  }
  return AcquireResolved(h, key, mode, waited);
}

Status LockManager::AcquireResolved(Holder* h, const LockKey& key,
                                    LockMode mode, bool* waited) {
  const uint64_t holder = h->id;
  if (h->aborted.load(std::memory_order_acquire)) return VictimStatus();

  Shard& s = ShardFor(key);
  std::unique_lock<Latch> lk(s.mu);
  auto [eit, inserted] = s.table.try_emplace(key);
  LockEntry& e = eit->second;
  if (!inserted && e.owners.empty() && e.waiters == 0) {
    // Reusing a cached empty node (see Shard::empty_entries).
    s.empty_entries--;
  }
  if (Grantable(e, holder, mode)) {
    if (Grant(&e, holder, mode)) {
      h->held.push_back(key);
      h->held_entries.push_back(&e);
      s.granted++;
      h->acquired->Add(1);
    }
    return Status::OK();
  }

  // Conflict: park deadline-aware, publishing wait-for edges and running
  // cycle detection before every park. The statement tracer attributes
  // the whole blocked stretch to a lock.wait span.
  trace::SpanScope span("lock.wait", key.table);
  TenantCounter("waits", h->tenant)->Add(1);
  if (waited != nullptr) *waited = true;
  e.waiters++;
  const auto wait_start = std::chrono::steady_clock::now();
  Status result = Status::OK();
  bool granted = false;
  bool retired = false;
  while (true) {
    std::vector<uint64_t> blockers = BlockersOf(e, holder, mode);
    {
      std::lock_guard<Latch> g(graph_mu_);
      waits_for_[holder] = blockers;
      uint64_t victim = FindDeadlockVictimLocked(holder);
      if (victim != 0) {
        auto vit = holders_.find(victim);
        TenantCounter("deadlocks",
                      vit != holders_.end() ? vit->second->tenant : h->tenant)
            ->Add(1);
        if (victim == holder) {
          h->aborted.store(true, std::memory_order_release);
        } else {
          AbortVictimLocked(victim);
        }
      }
    }
    if (h->aborted.load(std::memory_order_acquire)) {
      result = VictimStatus();
      break;
    }
    const deadline::Deadline dl = deadline::Current();
    auto until = std::chrono::steady_clock::now() + kDetectionTick;
    if (dl.active && dl.at < until) until = dl.at;
    s.cv.wait_until(lk, until);
    if (h->aborted.load(std::memory_order_acquire)) {
      result = VictimStatus();
      break;
    }
    if (Grantable(e, holder, mode)) {
      // Accept the grant atomically against the deadlock detector: the
      // victim-flag check and the edge retirement share one graph-latch
      // round, so a detector that still sees our published edges either
      // flagged us first (we abort here) or runs after the erase, finds
      // us no longer parked, and never flags us — closing the window
      // where a just-granted waiter could be picked as a stale victim.
      std::lock_guard<Latch> g(graph_mu_);
      if (h->aborted.load(std::memory_order_acquire)) {
        result = VictimStatus();
        break;
      }
      waits_for_.erase(holder);
      retired = true;
      granted = true;
      break;
    }
    if (dl.active && std::chrono::steady_clock::now() >= dl.at) {
      // Name one current conflicting holder so the client knows who to
      // wait out (or which bracket to go ROLLBACK).
      std::string hint;
      std::vector<uint64_t> now_blocking = BlockersOf(e, holder, mode);
      if (!now_blocking.empty()) {
        std::lock_guard<Latch> g(graph_mu_);
        auto bit = holders_.find(now_blocking.front());
        hint = "; held by txn " + std::to_string(now_blocking.front());
        if (bit != holders_.end()) {
          hint += " (tenant " + std::to_string(bit->second->tenant) + ")";
        }
      }
      std::string msg = "lock wait timed out on " + key.table;
      if (key.row != kTableRowId) {
        msg += '#';
        msg += std::to_string(key.row);
      }
      msg += hint;
      result = Status::DeadlineExceeded(std::move(msg));
      TenantCounter("timeouts", h->tenant)->Add(1);
      break;
    }
  }
  e.waiters--;
  if (!retired) {
    std::lock_guard<Latch> g(graph_mu_);
    waits_for_.erase(holder);
  }
  if (granted) {
    if (Grant(&e, holder, mode)) {
      h->held.push_back(key);
      h->held_entries.push_back(&e);
      s.granted++;
      h->acquired->Add(1);
    }
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - wait_start)
                        .count();
    TenantWaitHistogram(h->tenant)->Record(static_cast<uint64_t>(us));
  } else if (e.owners.empty() && e.waiters == 0) {
    if (s.empty_entries < kEmptyEntryCacheCap) {
      s.empty_entries++;
    } else {
      s.table.erase(key);
    }
  }
  return result;
}

void LockManager::ReleaseAll(uint64_t holder) {
  if (holder == 0) return;
  std::vector<LockKey> held;
  std::vector<LockEntry*> held_entries;
  {
    std::lock_guard<Latch> g(graph_mu_);
    auto it = holders_.find(holder);
    if (it == holders_.end()) return;
    std::unique_ptr<Holder> h = std::move(it->second);
    holders_.erase(it);
    waits_for_.erase(holder);
    held.swap(h->held);
    held_entries.swap(h->held_entries);
    TlsHolderCache& c = tls_holder_cache;
    if (c.holder == h.get() && c.lm == this) c.lm = nullptr;
    // Recycle the control block in the same latch round. The id is
    // already forgotten, so even if a new statement grabs the block
    // before the shard sweep below finishes, the sweep works purely off
    // the detached `held` list and the stale id — no interaction.
    if (holder_pool_.size() < 64) holder_pool_.push_back(std::move(h));
  }
  ReleaseKeys(holder, held, held_entries);
}

void LockManager::ReleaseKeys(uint64_t holder,
                              const std::vector<LockKey>& keys,
                              const std::vector<LockEntry*>& entries) {
  // Keys of one statement cluster by shard (a table intent and its row
  // locks co-locate), so release consecutive same-shard keys under one
  // latch hold. `entries[i]` is the map node `keys[i]` was granted on —
  // still pinned by this holder's ownership — so no probe is needed.
  for (size_t i = 0; i < keys.size();) {
    Shard& s = ShardFor(keys[i]);
    bool notify = false;
    bool x_released = false;
    uint64_t releases = 0;
    {
      std::lock_guard<Latch> lk(s.mu);
      do {
        LockEntry& e = *entries[i];
        for (auto oit = e.owners.begin(); oit != e.owners.end(); ++oit) {
          if (oit->first == holder) {
            x_released |= oit->second == LockMode::kX;
            e.owners.erase(oit);
            releases++;
            break;
          }
        }
        notify |= e.waiters > 0;
        if (e.owners.empty() && e.waiters == 0) {
          if (s.empty_entries < kEmptyEntryCacheCap) {
            s.empty_entries++;  // keep as a cached empty node
          } else {
            s.table.erase(keys[i]);
          }
        }
        ++i;
      } while (i < keys.size() && &ShardFor(keys[i]) == &s);
      s.released += releases;
      // An X release means a writer's lifetime ended here — the signal
      // the collect→acquire freshness protocol keys on (WriteEpoch).
      // Bumped before the latch drops, so a waiter granted afterwards
      // is guaranteed to observe the new epoch.
      if (x_released) {
        s.write_epoch.fetch_add(1, std::memory_order_release);
      }
    }
    if (notify) s.cv.notify_all();
  }
}

// --- StatementLockContext --------------------------------------------

StatementLockContext* StatementLockContext::Current() { return tls_lock_ctx; }

StatementLockContext::StatementLockContext(LockManager* lm, int64_t tenant,
                                           uint64_t txn_holder)
    : lm_(lm), tenant_(tenant), prev_(tls_lock_ctx) {
  if (lm_ != nullptr && txn_holder != 0) holder_ = txn_holder;
  tls_lock_ctx = this;
}

StatementLockContext::~StatementLockContext() {
  tls_lock_ctx = prev_;
  // Statement-duration locks drop here — the entry points destroy this
  // scope only after the statement's undo log has rolled back or
  // finished, so compensation always runs under the locks it needs.
  // Bracket-owned locks (neither flag set) survive until the
  // TransactionContext releases them after COMMIT/ROLLBACK.
  if (leased_holder_) {
    lm_->ReleaseStatementLocks(resolved_);
  } else if (owns_holder_) {
    lm_->ReleaseAll(holder_);
  }
}

LockManager::Holder* StatementLockContext::EnsureResolved() {
  if (resolved_ == nullptr) {
    if (holder_ == 0) {
      bool leased = false;
      resolved_ = lm_->LeaseStatementHolder(tenant_, &leased);
      holder_ = resolved_->id;
      if (leased) {
        leased_holder_ = true;
      } else {
        owns_holder_ = true;
      }
    } else {
      resolved_ = lm_->ResolveHolder(holder_);
    }
  }
  return resolved_;
}

namespace {
// Diagnostic kill switch for overhead attribution: skips the actual
// acquisitions while keeping the context install. Not for production.
bool LockNoop() {
  static const bool noop = std::getenv("MTDB_LOCK_NOOP") != nullptr;
  return noop;
}
}  // namespace

uint64_t StatementLockContext::TableWriteEpoch(
    const std::string& table_lower) const {
  if (lm_ == nullptr || LockNoop()) return 0;
  return lm_->WriteEpoch(tenant_, table_lower);
}

Status StatementLockContext::LockRow(const std::string& table_lower,
                                     int64_t row_id) {
  if (lm_ == nullptr || LockNoop()) return Status::OK();
  if (row_id < 0) {
    // A NULL row column maps to -1 == kTableRowId: locking it would
    // silently collapse distinct rows onto the table lock. Callers
    // degrade such sets to an explicit LockTable(kX) instead.
    return Status::Internal("row lock on negative row id " +
                            std::to_string(row_id) + " in " + table_lower);
  }
  LockManager::Holder* h = EnsureResolved();
  if (h == nullptr) {
    return Status::Internal("lock holder vanished mid-statement");
  }
  bool w = false;
  Status st = lm_->AcquireResolved(h, LockKey{tenant_, table_lower, row_id},
                                   LockMode::kX, &w);
  if (w) waited_ = true;
  return st;
}

Status StatementLockContext::LockRowWithIntent(const std::string& table_lower,
                                               int64_t row_id) {
  if (lm_ == nullptr || LockNoop()) return Status::OK();
  if (row_id < 0) {
    return Status::Internal("row lock on negative row id " +
                            std::to_string(row_id) + " in " + table_lower);
  }
  LockManager::Holder* h = EnsureResolved();
  if (h == nullptr) {
    return Status::Internal("lock holder vanished mid-statement");
  }
  bool w = false;
  Status st = lm_->AcquireRowWithIntent(
      h, LockKey{tenant_, table_lower, kTableRowId},
      LockKey{tenant_, table_lower, row_id}, &w);
  if (w) waited_ = true;
  return st;
}

Status StatementLockContext::LockTable(const std::string& table_lower,
                                       LockMode mode) {
  if (lm_ == nullptr || LockNoop()) return Status::OK();
  LockManager::Holder* h = EnsureResolved();
  if (h == nullptr) {
    return Status::Internal("lock holder vanished mid-statement");
  }
  bool w = false;
  Status st = lm_->AcquireResolved(h, LockKey{tenant_, table_lower,
                                              kTableRowId},
                                   mode, &w);
  if (w) waited_ = true;
  return st;
}

}  // namespace lock
}  // namespace mtdb
