# Empty dependencies file for bench_metadata_budget.
# This may be replaced when dependencies are built.
