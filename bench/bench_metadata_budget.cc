// Ablation (DESIGN.md E10): the meta-data budget as a first-class
// resource. Sweeps the number of tables in a fixed memory budget and
// reports the buffer-pool capacity, index-root residency, and point-
// lookup latency — the raw mechanism behind §5's "performance on a blade
// server begins to degrade beyond about 50,000 tables".
#include <chrono>
#include <cstdio>

#include "common/rng.h"
#include "engine/database.h"

namespace mtdb {
namespace {

int Main() {
  std::printf("=== Ablation: meta-data budget vs. table count ===\n");
  std::printf("memory budget: 8 MB, 4 KB meta-data charge per table\n\n");
  std::printf("%-8s %-10s %-10s %-12s %-12s %-10s\n", "tables", "frames",
              "meta(KB)", "lookup(us)", "idx hit(%)", "data hit(%)");

  for (int tables : {10, 50, 100, 200, 400, 800}) {
    EngineOptions options;
    options.memory_budget_bytes = 8ull * 1024 * 1024;
    Database db(options);
    Rng rng(1);
    for (int t = 0; t < tables; ++t) {
      std::string name = "t" + std::to_string(t);
      Status st = db.Execute("CREATE TABLE " + name +
                             " (id BIGINT, a INT, b VARCHAR)")
                      .status();
      if (!st.ok()) return 1;
      st = db.Execute("CREATE UNIQUE INDEX ux_" + name + " ON " + name +
                      " (id)")
               .status();
      if (!st.ok()) return 1;
      for (int r = 0; r < 20; ++r) {
        st = db.Execute("INSERT INTO " + name + " VALUES (" +
                        std::to_string(r) + ", " +
                        std::to_string(rng.Uniform(0, 1000)) + ", '" +
                        rng.Word(8, 16) + "')")
                 .status();
        if (!st.ok()) return 1;
      }
    }
    db.ResetStats();
    // Random point lookups across all tables: with many tables the index
    // roots no longer fit in the shrunken buffer pool.
    const int lookups = 3000;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < lookups; ++i) {
      std::string name = "t" + std::to_string(rng.Uniform(0, tables - 1));
      auto r = db.Query("SELECT a FROM " + name + " WHERE id = ?",
                        {Value::Int64(rng.Uniform(0, 19))});
      if (!r.ok()) return 1;
    }
    auto end = std::chrono::steady_clock::now();
    double us_per_lookup =
        std::chrono::duration<double, std::micro>(end - start).count() /
        lookups;
    EngineStats stats = db.Stats();
    std::printf("%-8d %-10zu %-10llu %-12.2f %-12.2f %-10.2f\n", tables,
                stats.buffer_capacity,
                static_cast<unsigned long long>(stats.metadata_bytes / 1024),
                us_per_lookup, stats.buffer.HitRatioIndex() * 100.0,
                stats.buffer.HitRatioData() * 100.0);
  }
  std::printf(
      "\nExpected shape: as tables rise, the meta-data charge shrinks the\n"
      "buffer pool, the index hit ratio collapses first (roots compete\n"
      "for frames), and lookup latency climbs — §5's mechanism.\n");
  return 0;
}

}  // namespace
}  // namespace mtdb

int main() { return mtdb::Main(); }
