
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/buffer_pool.cc" "src/storage/CMakeFiles/mtdb_storage.dir/buffer_pool.cc.o" "gcc" "src/storage/CMakeFiles/mtdb_storage.dir/buffer_pool.cc.o.d"
  "/root/repo/src/storage/page.cc" "src/storage/CMakeFiles/mtdb_storage.dir/page.cc.o" "gcc" "src/storage/CMakeFiles/mtdb_storage.dir/page.cc.o.d"
  "/root/repo/src/storage/page_store.cc" "src/storage/CMakeFiles/mtdb_storage.dir/page_store.cc.o" "gcc" "src/storage/CMakeFiles/mtdb_storage.dir/page_store.cc.o.d"
  "/root/repo/src/storage/row_codec.cc" "src/storage/CMakeFiles/mtdb_storage.dir/row_codec.cc.o" "gcc" "src/storage/CMakeFiles/mtdb_storage.dir/row_codec.cc.o.d"
  "/root/repo/src/storage/table_heap.cc" "src/storage/CMakeFiles/mtdb_storage.dir/table_heap.cc.o" "gcc" "src/storage/CMakeFiles/mtdb_storage.dir/table_heap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mtdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
