#include <gtest/gtest.h>

#include "common/fault.h"
#include "engine/database.h"
#include "engine/session.h"
#include "mapping_test_util.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace mtdb {
namespace {

// --- engine error surfaces --------------------------------------------

class EngineErrorTest : public ::testing::Test {
 protected:
  Database db_;
};

TEST_F(EngineErrorTest, QueryUnknownTable) {
  auto r = db_.Query("SELECT a FROM missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineErrorTest, QueryUnknownColumn) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  auto r = db_.Query("SELECT b FROM t");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineErrorTest, AmbiguousUnqualifiedColumn) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE x (a INT)").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE y (a INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO x VALUES (1)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO y VALUES (1)").ok());
  auto r = db_.Query("SELECT a FROM x, y");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineErrorTest, MissingBindParameter) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1)").ok());
  auto r = db_.Query("SELECT a FROM t WHERE a = ?");  // no params bound
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineErrorTest, DivisionByZeroSurfacesAsError) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1)").ok());
  auto r = db_.Query("SELECT a / 0 FROM t");
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineErrorTest, InsertArityMismatch) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT, b INT)").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO t (a) VALUES (1, 2)").ok());
}

TEST_F(EngineErrorTest, UpdateUnknownColumn) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  EXPECT_FALSE(db_.Execute("UPDATE t SET nope = 1").ok());
}

TEST_F(EngineErrorTest, DuplicateIndexName) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db_.Execute("CREATE INDEX ix ON t (a)").ok());
  EXPECT_EQ(db_.Execute("CREATE INDEX ix ON t (a)").status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(EngineErrorTest, IndexOnUnknownColumn) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  EXPECT_EQ(db_.Execute("CREATE INDEX ix ON t (zz)").status().code(),
            StatusCode::kNotFound);
}

TEST_F(EngineErrorTest, DropMissingObjects) {
  EXPECT_EQ(db_.Execute("DROP TABLE nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.Execute("DROP INDEX nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(EngineErrorTest, GroupByReferencingNonGroupedColumn) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT, b INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 2)").ok());
  auto r = db_.Query("SELECT b, COUNT(*) FROM t GROUP BY a");
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineErrorTest, ParseErrorsDoNotMutateState) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  size_t tables = db_.Stats().tables;
  EXPECT_FALSE(db_.Execute("CREATE TABLE broken (").ok());
  EXPECT_EQ(db_.Stats().tables, tables);
}

// --- mapping-layer error surfaces ---------------------------------------

class MappingErrorTest : public ::testing::Test {
 protected:
  MappingErrorTest()
      : app_(mapping::FigureFourSchema()),
        layout_(&db_, &app_) {
    EXPECT_TRUE(layout_.Bootstrap().ok());
    EXPECT_TRUE(layout_.CreateTenant(1).ok());
  }

  mapping::AppSchema app_;
  Database db_;
  mapping::ChunkFoldingLayout layout_;
};

TEST_F(MappingErrorTest, UnknownTenant) {
  auto r = layout_.Query(99, "SELECT * FROM account");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(layout_.Execute(99, "DELETE FROM account").ok());
}

TEST_F(MappingErrorTest, DuplicateTenant) {
  EXPECT_EQ(layout_.CreateTenant(1).code(), StatusCode::kAlreadyExists);
}

TEST_F(MappingErrorTest, UnknownExtension) {
  EXPECT_EQ(layout_.EnableExtension(1, "nope").code(), StatusCode::kNotFound);
}

TEST_F(MappingErrorTest, EnableExtensionTwiceIsIdempotent) {
  ASSERT_TRUE(layout_.EnableExtension(1, "healthcare").ok());
  ASSERT_TRUE(layout_.EnableExtension(1, "healthcare").ok());
  auto cols = layout_.LogicalColumns(1, "account");
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols->size(), 4u);  // not 6: columns added once
}

TEST_F(MappingErrorTest, UnknownLogicalTable) {
  EXPECT_FALSE(layout_.Query(1, "SELECT * FROM nope").ok());
  EXPECT_FALSE(
      layout_.Execute(1, "INSERT INTO nope (a) VALUES (1)").ok());
}

TEST_F(MappingErrorTest, DdlStatementsRejectedAtLogicalLevel) {
  // Tenants do not get to issue physical DDL through the layer.
  EXPECT_FALSE(layout_.Execute(1, "CREATE TABLE evil (a INT)").ok());
  EXPECT_FALSE(layout_.Execute(1, "DROP TABLE account").ok());
}

TEST_F(MappingErrorTest, PhysicalTablesInvisibleToTenants) {
  // A tenant cannot name the generic structures directly.
  EXPECT_FALSE(layout_.Query(1, "SELECT * FROM fold_chunkdata").ok());
  EXPECT_FALSE(layout_.Query(1, "SELECT * FROM cf_account").ok());
}

// --- injected-fault status surfaces -------------------------------------

TEST(FaultStatusTest, SilentTornWriteSurfacesAsDataLoss) {
  PageStore store(512);
  FaultInjector injector(7);
  store.set_fault_injector(&injector);
  PageId id = store.Allocate(PageType::kHeap);
  std::vector<char> image(512, 'a');

  FaultSpec torn;
  torn.probability = 1.0;
  torn.max_fires = 1;
  torn.silent = true;  // the device lies: the write reports success
  injector.Arm(FaultPoint::kTornWrite, torn);
  ASSERT_TRUE(store.Write(id, image.data()).ok());

  // The checksum covers the full intended image, so the half-page that
  // actually landed is detected on read instead of returned as garbage.
  std::vector<char> out(512, 0);
  EXPECT_EQ(store.Read(id, out.data()).code(), StatusCode::kDataLoss);
  EXPECT_GT(store.io_counters().Snapshot().checksum_failures, 0u);

  // A later full write (the burst is spent) repairs the page.
  ASSERT_TRUE(store.Write(id, image.data()).ok());
  ASSERT_TRUE(store.Read(id, out.data()).ok());
  EXPECT_EQ(out, image);
}

TEST(FaultStatusTest, TransientReadFaultIsRetriedAndRecovers) {
  PageStore store(512);
  BufferPool pool(&store, 4);
  FaultInjector injector(7);
  Page* p = pool.NewPage(PageType::kHeap);
  PageId id = p->id();
  pool.UnpinPage(id, true);
  ASSERT_TRUE(pool.EvictAll().ok());

  store.set_fault_injector(&injector);
  FaultSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 2;  // fewer than the 4 retry attempts
  injector.Arm(FaultPoint::kPageRead, spec);

  auto r = pool.FetchPage(id);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  pool.UnpinPage(id, false);
  IoFaultCountersSnapshot io = store.io_counters().Snapshot();
  EXPECT_EQ(io.read_faults, 2u);
  EXPECT_GE(io.read_retries, 2u);
  EXPECT_EQ(io.retry_exhaustions, 0u);
}

TEST(FaultStatusTest, ReadRetryExhaustionSurfacesIOError) {
  PageStore store(512);
  BufferPool pool(&store, 4);
  FaultInjector injector(7);
  Page* p = pool.NewPage(PageType::kHeap);
  PageId id = p->id();
  pool.UnpinPage(id, true);
  ASSERT_TRUE(pool.EvictAll().ok());

  store.set_fault_injector(&injector);
  FaultSpec spec;
  spec.probability = 1.0;  // unlimited fires: every attempt fails
  injector.Arm(FaultPoint::kPageRead, spec);

  auto r = pool.FetchPage(id);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
  IoFaultCountersSnapshot io = store.io_counters().Snapshot();
  EXPECT_GE(io.read_retries, 3u);  // 4 attempts = 3 retries
  EXPECT_GE(io.retry_exhaustions, 1u);

  // The fault was transient at the device: once it clears, the page is
  // intact (nothing was lost, the pool never cached a bad frame).
  injector.DisarmAll();
  auto again = pool.FetchPage(id);
  ASSERT_TRUE(again.ok());
  pool.UnpinPage(id, false);
}

TEST(FaultStatusTest, BitFlipIsCaughtByChecksumAndRereadRecovers) {
  PageStore store(512);
  BufferPool pool(&store, 4);
  FaultInjector injector(7);
  Page* p = pool.NewPage(PageType::kHeap);
  PageId id = p->id();
  std::memset(p->data(), 'q', 64);
  pool.UnpinPage(id, true);
  ASSERT_TRUE(pool.EvictAll().ok());

  store.set_fault_injector(&injector);
  FaultSpec flip;
  flip.probability = 1.0;
  flip.max_fires = 1;  // corrupts one delivered copy, not the device
  injector.Arm(FaultPoint::kBitFlip, flip);

  auto r = pool.FetchPage(id);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ((*r)->data()[0], 'q');
  pool.UnpinPage(id, false);
  IoFaultCountersSnapshot io = store.io_counters().Snapshot();
  EXPECT_GE(io.checksum_failures, 1u);
  EXPECT_GE(io.read_retries, 1u);
}

// --- exact codes through Session::Execute -------------------------------

TEST_F(EngineErrorTest, IOErrorSurfacesThroughSessionExecute) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(db_.buffer_pool()->EvictAll().ok());

  FaultInjector injector(3);
  db_.page_store()->set_fault_injector(&injector);
  FaultSpec spec;
  spec.probability = 1.0;  // persistent: retries exhaust
  injector.Arm(FaultPoint::kPageRead, spec);

  Session session = db_.OpenSession();
  auto r = session.Execute("SELECT a FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);

  injector.DisarmAll();
  auto ok = session.Execute("SELECT a FROM t");
  ASSERT_TRUE(ok.ok());
  db_.page_store()->set_fault_injector(nullptr);
}

TEST_F(EngineErrorTest, ChecksumMismatchSurfacesThroughSessionExecute) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1)").ok());

  FaultInjector injector(3);
  db_.page_store()->set_fault_injector(&injector);
  FaultSpec torn;
  torn.probability = 1.0;
  torn.max_fires = 1;
  torn.silent = true;  // flush "succeeds"; the tear persists on disk
  injector.Arm(FaultPoint::kTornWrite, torn);
  ASSERT_TRUE(db_.buffer_pool()->EvictAll().ok());

  // Every re-read hits the same torn stored image: retries cannot help
  // and the exact corruption code must reach the client.
  Session session = db_.OpenSession();
  auto r = session.Execute("SELECT a FROM t");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  db_.page_store()->set_fault_injector(nullptr);
}

// --- tenant quarantine ---------------------------------------------------

TEST_F(MappingErrorTest, RepeatedHardFaultsQuarantineOnlyThatTenant) {
  ASSERT_TRUE(layout_
                  .Execute(1, "INSERT INTO account (aid, name) VALUES (?, ?)",
                           {Value::Int64(1), Value::String("alpha")})
                  .ok());
  ASSERT_TRUE(layout_.CreateTenant(2).ok());
  layout_.set_quarantine_threshold(2);
  // Pin the breaker's backoff far out so the "stays fenced" assertions
  // below cannot race a half-open probe on a slow machine.
  layout_.set_breaker_backoff_ms(60'000, 60'000);

  FaultInjector injector(5);
  db_.page_store()->set_fault_injector(&injector);
  FaultSpec spec;
  spec.probability = 1.0;  // the device stays broken
  injector.Arm(FaultPoint::kPageRead, spec);

  for (int i = 0; i < 4 && !layout_.IsQuarantined(1); ++i) {
    ASSERT_TRUE(db_.buffer_pool()->EvictAll().ok());  // force real I/O
    EXPECT_FALSE(layout_.Query(1, "SELECT * FROM account").ok());
  }
  EXPECT_TRUE(layout_.IsQuarantined(1));
  EXPECT_GE(layout_.stats().quarantine_trips.load(), 1u);

  // Fail-fast with the exact code, even after the device recovers: the
  // tenant stays fenced until an operator clears it.
  injector.DisarmAll();
  EXPECT_EQ(layout_.Query(1, "SELECT * FROM account").status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(layout_.Execute(1, "DELETE FROM account").status().code(),
            StatusCode::kUnavailable);

  // The blast radius is one tenant: others keep serving.
  EXPECT_FALSE(layout_.IsQuarantined(2));
  EXPECT_TRUE(layout_.Query(2, "SELECT * FROM account").ok());

  ASSERT_TRUE(layout_.ClearQuarantine(1).ok());
  EXPECT_FALSE(layout_.IsQuarantined(1));
  auto r = layout_.Query(1, "SELECT * FROM account");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
  db_.page_store()->set_fault_injector(nullptr);
}

// --- mid-statement undo --------------------------------------------------

// A logical UPDATE touching base and extension columns maps to one
// physical statement per pivot table; a fault between them must roll the
// applied half back. Sweeping the injector's skip window walks the
// failure point through every I/O of the statement, so some iterations
// fail before any write (nothing to undo), some fail mid-statement
// (undo runs), and some succeed — in every case the row must read as
// either the full old or the full new image.
TEST(StatementAtomicityTest, MidStatementFaultRollsBackAppliedWrites) {
  mapping::AppSchema app = mapping::FigureFourSchema();
  Database db;
  std::unique_ptr<mapping::SchemaMapping> layout =
      mapping::MakeLayout(mapping::LayoutKind::kPivot, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  ASSERT_TRUE(layout->CreateTenant(1).ok());
  ASSERT_TRUE(layout->EnableExtension(1, "healthcare").ok());
  ASSERT_TRUE(layout
                  ->Execute(1,
                            "INSERT INTO account (aid, name, hospital, beds) "
                            "VALUES (?, ?, ?, ?)",
                            {Value::Int64(1), Value::String("init"),
                             Value::String("mercy"), Value::Int32(10)})
                  .ok());
  layout->set_quarantine_threshold(1'000'000);

  FaultInjector injector(11);
  db.page_store()->set_fault_injector(&injector);
  db.buffer_pool()->SetCapacity(4);  // physical I/O inside the statement

  std::string name = "init";
  int32_t beds = 10;
  int failed = 0, succeeded = 0;
  for (uint64_t skip = 0; skip < 80; ++skip) {
    FaultSpec spec;
    spec.probability = 1.0;
    spec.skip = skip;
    // Exactly the retry budget: the faulted read fails for good, and the
    // burst is spent by the time the undo log replays compensations.
    spec.max_fires = 4;
    injector.Arm(FaultPoint::kPageRead, spec);

    std::string new_name = "name" + std::to_string(skip);
    int32_t new_beds = static_cast<int32_t>(100 + skip);
    auto r = layout->Execute(
        1, "UPDATE account SET name = ?, beds = ? WHERE aid = ?",
        {Value::String(new_name), Value::Int32(new_beds), Value::Int64(1)});
    if (r.ok()) {
      ++succeeded;
      name = new_name;
      beds = new_beds;
    } else {
      ++failed;
    }

    FaultInjectorPause pause(&injector);
    auto row = layout->Query(1, "SELECT * FROM account");
    ASSERT_TRUE(row.ok()) << row.status().ToString();
    ASSERT_EQ(row->rows.size(), 1u);
    // Columns: aid, name, hospital, beds.
    EXPECT_EQ(row->rows[0][1].Compare(Value::String(name)), 0)
        << "skip=" << skip << ": partial statement visible";
    EXPECT_EQ(row->rows[0][3].Compare(Value::Int32(beds)), 0)
        << "skip=" << skip << ": partial statement visible";
  }
  // The sweep must have produced both outcomes and real rollbacks, or it
  // proved nothing.
  EXPECT_GT(failed, 0);
  EXPECT_GT(succeeded, 0);
  EXPECT_GT(layout->stats().statement_rollbacks.load(), 0u);
  EXPECT_GT(layout->stats().undo_statements.load(), 0u);
  db.page_store()->set_fault_injector(nullptr);
}

TEST(AppSchemaErrorTest, RejectsCollidingDefinitions) {
  mapping::AppSchema app = mapping::FigureFourSchema();
  mapping::LogicalTable dup;
  dup.name = "ACCOUNT";  // case-insensitive collision
  dup.columns = {{"x", TypeId::kInt32, false}};
  EXPECT_EQ(app.AddTable(std::move(dup)).code(), StatusCode::kAlreadyExists);

  mapping::ExtensionDef bad;
  bad.name = "bad";
  bad.base_table = "missing";
  bad.columns = {{"x", TypeId::kInt32, false}};
  EXPECT_EQ(app.AddExtension(std::move(bad)).code(), StatusCode::kNotFound);

  mapping::ExtensionDef clash;
  clash.name = "clash";
  clash.base_table = "account";
  clash.columns = {{"name", TypeId::kString, false}};  // collides with base
  EXPECT_EQ(app.AddExtension(std::move(clash)).code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace mtdb
