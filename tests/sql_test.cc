#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace mtdb {
namespace sql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, b FROM t WHERE x = 5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Tokenize("SELECT 'o''brien'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[1].text, "o'brien");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(LexerTest, Operators) {
  auto tokens = Tokenize("<= >= <> != < > =");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kGe);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kLt);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kGt);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kEq);
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseSelect("SELECT Beds FROM Account17 WHERE Hospital = 'State'");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->items.size(), 1u);
  EXPECT_EQ((*stmt)->from.size(), 1u);
  EXPECT_EQ((*stmt)->from[0].table_name, "Account17");
  ASSERT_NE((*stmt)->where, nullptr);
}

TEST(ParserTest, SelectStar) {
  auto stmt = ParseSelect("SELECT * FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE((*stmt)->select_star);
}

TEST(ParserTest, QualifiedColumnsAndAliases) {
  auto stmt = ParseSelect(
      "SELECT p.id AS pid, c.col1 FROM parent p, child c "
      "WHERE p.id = c.parent");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->items[0].alias, "pid");
  EXPECT_EQ((*stmt)->from[0].alias, "p");
  EXPECT_EQ((*stmt)->from[1].alias, "c");
}

TEST(ParserTest, ExplicitJoinFlattensIntoWhere) {
  auto stmt = ParseSelect(
      "SELECT a.id FROM a JOIN b ON a.id = b.a_id WHERE b.x = 1");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->from.size(), 2u);
  // ON + WHERE are both conjuncts now.
  std::vector<ParsedExprPtr> conjuncts;
  SplitParsedConjuncts(*(*stmt)->where, &conjuncts);
  EXPECT_EQ(conjuncts.size(), 2u);
}

TEST(ParserTest, SubqueryInFrom) {
  auto stmt = ParseSelect(
      "SELECT x.beds FROM (SELECT Int1 AS beds FROM chunks WHERE tenant = 17) "
      "AS x WHERE x.beds > 100");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE((*stmt)->from[0].is_subquery());
  EXPECT_EQ((*stmt)->from[0].alias, "x");
}

TEST(ParserTest, GroupByHavingOrderLimit) {
  auto stmt = ParseSelect(
      "SELECT status, COUNT(*) AS n FROM t GROUP BY status "
      "HAVING COUNT(*) > 2 ORDER BY n DESC LIMIT 5 OFFSET 2");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->group_by.size(), 1u);
  ASSERT_NE((*stmt)->having, nullptr);
  EXPECT_EQ((*stmt)->order_by.size(), 1u);
  EXPECT_TRUE((*stmt)->order_by[0].descending);
  EXPECT_EQ((*stmt)->limit, 5);
  EXPECT_EQ((*stmt)->offset, 2);
}

TEST(ParserTest, Params) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE b = ? AND c = ?");
  ASSERT_TRUE(stmt.ok());
  std::vector<ParsedExprPtr> conjuncts;
  SplitParsedConjuncts(*(*stmt)->where, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 2u);
  EXPECT_EQ(conjuncts[0]->right->param_ordinal, 0u);
  EXPECT_EQ(conjuncts[1]->right->param_ordinal, 1u);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE a + 2 * 3 = 7 OR b = 1 AND c = 2");
  ASSERT_TRUE(stmt.ok());
  // Top level must be OR (AND binds tighter).
  EXPECT_EQ((*stmt)->where->binary_op, BinaryOp::kOr);
  // a + 2*3: the + has a Mul as its right child.
  const ParsedExpr* cmp = (*stmt)->where->left.get();
  EXPECT_EQ(cmp->left->binary_op, BinaryOp::kAdd);
  EXPECT_EQ(cmp->left->right->binary_op, BinaryOp::kMul);
}

TEST(ParserTest, InsertStatement) {
  auto stmt = Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, StatementKind::kInsert);
  EXPECT_EQ(stmt->insert->columns.size(), 2u);
  EXPECT_EQ(stmt->insert->rows.size(), 2u);
}

TEST(ParserTest, UpdateStatement) {
  auto stmt = Parse("UPDATE t SET a = 1, b = b + 1 WHERE id = 5");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, StatementKind::kUpdate);
  EXPECT_EQ(stmt->update->assignments.size(), 2u);
  ASSERT_NE(stmt->update->where, nullptr);
}

TEST(ParserTest, DeleteStatement) {
  auto stmt = Parse("DELETE FROM t WHERE a IS NOT NULL");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, StatementKind::kDelete);
  EXPECT_TRUE(stmt->del->where->is_null_negated);
}

TEST(ParserTest, CreateTable) {
  auto stmt = Parse(
      "CREATE TABLE t (id BIGINT NOT NULL, name VARCHAR(100), d DATE)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, StatementKind::kCreateTable);
  ASSERT_EQ(stmt->create_table->columns.size(), 3u);
  EXPECT_TRUE(stmt->create_table->columns[0].not_null);
  EXPECT_EQ(stmt->create_table->columns[1].type, TypeId::kString);
  EXPECT_EQ(stmt->create_table->columns[2].type, TypeId::kDate);
}

TEST(ParserTest, CreateUniqueIndex) {
  auto stmt = Parse("CREATE UNIQUE INDEX ux ON t (tenant, id)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(stmt->kind, StatementKind::kCreateIndex);
  EXPECT_TRUE(stmt->create_index->unique);
  EXPECT_EQ(stmt->create_index->columns.size(), 2u);
}

TEST(ParserTest, DropStatements) {
  EXPECT_EQ(Parse("DROP TABLE t")->kind, StatementKind::kDropTable);
  EXPECT_EQ(Parse("DROP INDEX i")->kind, StatementKind::kDropIndex);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a FROM").ok());
  EXPECT_FALSE(Parse("FOO BAR").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES 1").ok());
}

TEST(PrinterTest, RoundTripSimple) {
  const char* sql =
      "SELECT p.id, c.col1 FROM parent p, child c "
      "WHERE ((p.id = c.parent) AND (p.id = ?))";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  std::string printed = ToSql(**stmt);
  // Re-parse the printed SQL; it must print identically (fixpoint).
  auto again = ParseSelect(printed);
  ASSERT_TRUE(again.ok()) << printed;
  EXPECT_EQ(ToSql(**again), printed);
}

TEST(PrinterTest, RoundTripComplex) {
  const char* sql =
      "SELECT status, COUNT(*), SUM(amount) FROM opportunity "
      "WHERE tenant = 17 AND amount > 100.5 GROUP BY status "
      "ORDER BY status LIMIT 10";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  std::string printed = ToSql(**stmt);
  auto again = ParseSelect(printed);
  ASSERT_TRUE(again.ok()) << printed;
  EXPECT_EQ(ToSql(**again), printed);
}

TEST(PrinterTest, SubqueryPrinting) {
  const char* sql =
      "SELECT x.a FROM (SELECT b AS a FROM t WHERE c = 1) AS x";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  std::string printed = ToSql(**stmt);
  EXPECT_NE(printed.find("(SELECT"), std::string::npos);
  auto again = ParseSelect(printed);
  ASSERT_TRUE(again.ok()) << printed;
}

TEST(ParserTest, LikePredicate) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE name LIKE 'ab%' AND "
                          "city NOT LIKE '_x%'");
  ASSERT_TRUE(stmt.ok());
  std::vector<ParsedExprPtr> conjuncts;
  SplitParsedConjuncts(*(*stmt)->where, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 2u);
  EXPECT_EQ(conjuncts[0]->kind, PExprKind::kLike);
  EXPECT_FALSE(conjuncts[0]->like_negated);
  EXPECT_EQ(conjuncts[1]->kind, PExprKind::kLike);
  EXPECT_TRUE(conjuncts[1]->like_negated);
}

TEST(ParserTest, InExpandsToOrChain) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE x IN (1, 2, 3)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->where->kind, PExprKind::kBinary);
  EXPECT_EQ((*stmt)->where->binary_op, BinaryOp::kOr);
}

TEST(ParserTest, NotInNegatesChain) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE x NOT IN (1, 2)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->where->kind, PExprKind::kUnary);
}

TEST(ParserTest, DistinctFlag) {
  auto stmt = ParseSelect("SELECT DISTINCT a FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE((*stmt)->distinct);
  std::string printed = ToSql(**stmt);
  EXPECT_NE(printed.find("DISTINCT"), std::string::npos);
  auto again = ParseSelect(printed);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE((*again)->distinct);
}

TEST(PrinterTest, LikeRoundTrip) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE (b LIKE 'x%')");
  ASSERT_TRUE(stmt.ok());
  std::string printed = ToSql(**stmt);
  auto again = ParseSelect(printed);
  ASSERT_TRUE(again.ok()) << printed;
  EXPECT_EQ(ToSql(**again), printed);
}

TEST(AstTest, CloneIsDeep) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE b = 1");
  ASSERT_TRUE(stmt.ok());
  auto clone = (*stmt)->Clone();
  EXPECT_EQ(ToSql(**stmt), ToSql(*clone));
  clone->where = nullptr;
  EXPECT_NE((*stmt)->where, nullptr);
}

}  // namespace
}  // namespace sql
}  // namespace mtdb
