#ifndef MTDB_STORAGE_BUFFER_POOL_H_
#define MTDB_STORAGE_BUFFER_POOL_H_

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/latch.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"
#include "storage/page_store.h"

namespace mtdb {

/// Capped-exponential-backoff policy for transient I/O errors. Reads
/// retry kIOError and kDataLoss (a bit flip corrupts only the delivered
/// copy, so re-reading recovers); writes retry kIOError (which includes
/// reported torn writes — the retry rewrites the full image and repairs
/// the page). Backoff doubles per attempt up to the cap. Defaults keep
/// fault-free runs free of any sleeping.
struct RetryPolicy {
  int max_attempts = 4;
  uint64_t initial_backoff_ns = 1000;
  uint64_t max_backoff_ns = 64 * 1000;
};

/// Logical/physical access counters split by page type; Table 2's
/// "Bufferpool Hit Ratio Data / Index" rows come straight from these.
struct BufferPoolStats {
  uint64_t logical_reads_data = 0;
  uint64_t logical_reads_index = 0;
  uint64_t misses_data = 0;
  uint64_t misses_index = 0;
  uint64_t evictions = 0;

  uint64_t logical_reads() const {
    return logical_reads_data + logical_reads_index;
  }
  uint64_t misses() const { return misses_data + misses_index; }
  double HitRatioData() const {
    return logical_reads_data == 0
               ? 1.0
               : 1.0 - static_cast<double>(misses_data) /
                           static_cast<double>(logical_reads_data);
  }
  double HitRatioIndex() const {
    return logical_reads_index == 0
               ? 1.0
               : 1.0 - static_cast<double>(misses_index) /
                           static_cast<double>(logical_reads_index);
  }
};

/// Number of latch-striped LRU partitions. Pages hash to a shard by id,
/// so concurrent sessions touching different pages contend only on
/// different shard latches.
inline constexpr size_t kBufferPoolShards = 8;

/// Per-statement record of page mutations, filled by the pool's capture
/// hooks while a PageCaptureScope is installed on the executing thread.
/// `ops` keeps allocs and deallocs in statement order, each stamped with
/// the store's global op sequence number — across concurrent statements
/// the store order is the truth WAL replay must reproduce, and group
/// append order need not match it; `dirtied` collects the ids whose
/// after-images the commit-time group append must log.
struct PageMutationCapture {
  struct Op {
    enum class Kind : uint8_t { kAlloc, kDealloc };
    Kind kind;
    PageId page;
    PageType type;  // allocs only
    uint64_t seq;   // store-assigned global op sequence number
  };
  std::vector<Op> ops;
  std::vector<PageId> dirtied;  // may contain duplicates; dedup at commit

  bool empty() const { return ops.empty() && dirtied.empty(); }
};

/// Installs a capture on the current thread for the lifetime of the
/// scope. Only NewPage / UnpinPage(dirty) / DeletePage on this thread
/// are recorded; eviction write-backs are cache movement, not logical
/// mutation, and are deliberately not captured.
class PageCaptureScope {
 public:
  explicit PageCaptureScope(PageMutationCapture* capture);
  ~PageCaptureScope();

  PageCaptureScope(const PageCaptureScope&) = delete;
  PageCaptureScope& operator=(const PageCaptureScope&) = delete;

  /// The capture installed on the calling thread, or nullptr.
  static PageMutationCapture* Current();

 private:
  PageMutationCapture* previous_;
};

/// LRU buffer pool over a PageStore, sharded into kBufferPoolShards
/// latch-striped partitions. Each shard owns its own frame table, LRU
/// list, per-frame pin counts, and stats; a page's shard is a pure
/// function of its id. Capacity is in frames, split evenly across the
/// shards, and can be resized at runtime: the catalog shrinks it as
/// per-table meta-data is charged against the shared memory budget (the
/// DB2 "4 KB per table" behaviour of §1.1/§5).
///
/// Thread-safety: the pool's own bookkeeping (frame maps, LRU, pins) is
/// safe under concurrent calls. The *contents* of a returned Page are
/// NOT latched here — callers must hold the owning table/index latch
/// (shared for reads, exclusive for writes) while a page is pinned; the
/// pin only prevents eviction.
class BufferPool {
 public:
  BufferPool(PageStore* store, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins and returns a page, reading through the store on a miss.
  /// Transient read errors are retried per the RetryPolicy; once
  /// exhausted the last Status (kIOError/kDataLoss, or kNotFound for a
  /// deallocated id) surfaces to the caller and nothing is pinned.
  Result<Page*> FetchPage(PageId id);

  /// Allocates a new page in the store and pins it.
  Page* NewPage(PageType type);

  /// Releases a pin; `dirty` marks the frame for write-back on eviction.
  void UnpinPage(PageId id, bool dirty);

  /// Drops a page from the pool and the store.
  void DeletePage(PageId id);

  /// Writes back all dirty frames. On a persistent write failure the
  /// frame stays dirty (and cached — no data is lost) and the first
  /// error is returned after attempting every frame.
  Status FlushAll();

  /// Writes back and evicts every unpinned frame — used to run the
  /// paper's cold-cache experiments (Figure 11). Frames whose write-back
  /// fails stay cached and dirty; the first error is returned.
  Status EvictAll();

  /// Adjusts the frame budget. Shrinking evicts LRU frames lazily.
  void SetCapacity(size_t frames);
  size_t capacity() const;
  size_t frames_in_use() const;

  /// Aggregated counters over all shards (a consistent-enough snapshot;
  /// shards are locked one at a time).
  BufferPoolStats stats() const;
  void ResetStats();

  PageStore* store() { return store_; }

  /// Replaces the transient-error retry policy. Not synchronized with
  /// in-flight I/O — set it before concurrent traffic (tests/benches).
  void set_retry_policy(const RetryPolicy& policy) { retry_policy_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_policy_; }

  /// Shard a page id maps to. Exposed so tests (and capacity planners)
  /// can reason about which pages contend on the same latch stripe.
  static size_t ShardOf(PageId id) {
    return static_cast<size_t>(static_cast<uint64_t>(id)) % kBufferPoolShards;
  }

  /// WAL-protocol enforcement (instrumented builds): once on, any page
  /// mutation on a thread with no PageCaptureScope installed is a C301
  /// lockdep violation. The durable engine flips this on at startup;
  /// pools without a durability layer legitimately mutate uncaptured.
  void set_wal_protocol_checks(bool on) { wal_checks_ = on; }

 private:
  struct Frame {
    Page page;
    int pin_count = 0;
    bool dirty = false;
    std::list<PageId>::iterator lru_it;
    bool in_lru = false;
    explicit Frame(uint32_t page_size) : page(page_size) {}
  };

  /// One latch-striped partition: frames, LRU order, local capacity
  /// share, and local stats, all guarded by `mu`.
  struct Shard {
    mutable Latch mu{LatchRank::kBufferShard, "buffer-shard"};
    std::unordered_map<PageId, std::unique_ptr<Frame>> frames;
    std::list<PageId> lru;  // front = most recent
    size_t capacity = 1;
    BufferPoolStats stats;
  };

  /// Evicts LRU victims until shard.frames.size() <= shard.capacity.
  /// Honors pins; a victim whose write-back fails stays cached (dirty)
  /// and eviction stops — the shard overshoots rather than lose data.
  /// Caller holds shard.mu.
  void EvictIfNeeded(Shard& shard);
  void Touch(Shard& shard, Frame* frame, PageId id);
  Status FlushFrame(Frame* frame);

  /// Store I/O with capped exponential backoff on transient errors.
  Status ReadWithRetry(PageId id, char* out);
  Status WriteWithRetry(PageId id, const char* in);

  PageStore* store_;
  std::array<Shard, kBufferPoolShards> shards_;
  mutable Latch capacity_mu_{LatchRank::kBufferCapacity, "buffer-capacity"};
  size_t capacity_;
  RetryPolicy retry_policy_;
  /// Set once at engine startup, before concurrent traffic.
  bool wal_checks_ = false;

  void DistributeCapacity(size_t total);
};

/// RAII pin guard.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    Release();
    pool_ = other.pool_;
    page_ = other.page_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    return *this;
  }
  ~PageGuard() { Release(); }

  Page* get() { return page_; }
  Page* operator->() { return page_; }
  explicit operator bool() const { return page_ != nullptr; }
  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ != nullptr && page_ != nullptr) {
      pool_->UnpinPage(page_->id(), dirty_);
    }
    pool_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace mtdb

#endif  // MTDB_STORAGE_BUFFER_POOL_H_
