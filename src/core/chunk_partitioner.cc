#include "core/chunk_partitioner.h"

namespace mtdb {
namespace mapping {

int ChunkShape::CapacityFor(StorageClass cls) const {
  switch (cls) {
    case StorageClass::kIntLike:
      return ints;
    case StorageClass::kDoubleLike:
      return doubles;
    case StorageClass::kDateLike:
      return dates;
    case StorageClass::kStringLike:
      return strs;
  }
  return 0;
}

std::vector<std::pair<std::string, TypeId>> ChunkShape::DataColumns() const {
  std::vector<std::pair<std::string, TypeId>> out;
  for (int i = 1; i <= ints; ++i) {
    out.emplace_back("int" + std::to_string(i), TypeId::kInt64);
  }
  for (int i = 1; i <= doubles; ++i) {
    out.emplace_back("dbl" + std::to_string(i), TypeId::kDouble);
  }
  for (int i = 1; i <= dates; ++i) {
    out.emplace_back("date" + std::to_string(i), TypeId::kDate);
  }
  for (int i = 1; i <= strs; ++i) {
    out.emplace_back("str" + std::to_string(i), TypeId::kString);
  }
  return out;
}

ChunkShape ChunkShape::Uniform(int width) {
  // Spread `width` across int/date/str in the paper's triplet style,
  // giving any remainder to ints first, then dates.
  ChunkShape shape;
  shape.ints = width / 3 + (width % 3 >= 1 ? 1 : 0);
  shape.dates = width / 3 + (width % 3 >= 2 ? 1 : 0);
  shape.strs = width / 3;
  shape.doubles = 0;
  return shape;
}

namespace {

const char* PrefixFor(StorageClass cls) {
  switch (cls) {
    case StorageClass::kIntLike:
      return "int";
    case StorageClass::kDoubleLike:
      return "dbl";
    case StorageClass::kDateLike:
      return "date";
    case StorageClass::kStringLike:
      return "str";
  }
  return "col";
}

}  // namespace

std::vector<ChunkAssignment> PartitionIntoChunks(const EffectiveTable& table,
                                                 const ChunkShape& shape,
                                                 size_t first_column) {
  std::vector<ChunkAssignment> out;
  int32_t next_chunk = 0;

  // Indexed columns first: one single-slot chunk each, in the indexed
  // chunk table (so they can carry a value index, like ChunkIndex).
  // The indexed chunk table hosts int1/str1 only: dates ride in the int
  // slot (order-preserving), indexed doubles fall back to data chunks.
  auto indexable_class = [](StorageClass cls) -> std::optional<StorageClass> {
    switch (cls) {
      case StorageClass::kIntLike:
      case StorageClass::kDateLike:
        return StorageClass::kIntLike;
      case StorageClass::kStringLike:
        return StorageClass::kStringLike;
      case StorageClass::kDoubleLike:
        return std::nullopt;
    }
    return std::nullopt;
  };
  for (size_t c = first_column; c < table.columns.size(); ++c) {
    const LogicalColumn& col = table.columns[c];
    if (!col.indexed) continue;
    std::optional<StorageClass> cls = indexable_class(StorageClassOf(col.type));
    if (!cls.has_value()) continue;  // handled as a plain data column below
    ChunkAssignment chunk;
    chunk.chunk_id = next_chunk++;
    chunk.indexed = true;
    chunk.slots.push_back(
        ChunkSlot{c, std::string(PrefixFor(*cls)) + "1", *cls});
    out.push_back(std::move(chunk));
  }

  // Remaining columns greedily fill `shape`-sized chunks in order.
  ChunkAssignment current;
  current.chunk_id = next_chunk;
  int used[kNumStorageClasses] = {0, 0, 0, 0};
  auto flush = [&]() {
    if (!current.slots.empty()) {
      out.push_back(std::move(current));
      current = ChunkAssignment();
      current.chunk_id = ++next_chunk;
      for (int& u : used) u = 0;
    }
  };
  for (size_t c = first_column; c < table.columns.size(); ++c) {
    const LogicalColumn& col = table.columns[c];
    if (col.indexed &&
        indexable_class(StorageClassOf(col.type)).has_value()) {
      continue;
    }
    StorageClass cls = StorageClassOf(col.type);
    int cap = shape.CapacityFor(cls);
    if (cap <= 0) {
      // The shape cannot host this class at all; fall back to strings
      // (every value converts to a string, Universal-Table style).
      cls = StorageClass::kStringLike;
      cap = shape.CapacityFor(cls);
      if (cap <= 0) continue;  // unmappable; caller validates shapes
    }
    if (used[static_cast<int>(cls)] >= cap) {
      flush();
    }
    int slot_no = ++used[static_cast<int>(cls)];
    current.slots.push_back(ChunkSlot{
        c, std::string(PrefixFor(cls)) + std::to_string(slot_no), cls});
  }
  flush();
  return out;
}

}  // namespace mapping
}  // namespace mtdb
