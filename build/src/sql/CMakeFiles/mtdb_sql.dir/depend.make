# Empty dependencies file for mtdb_sql.
# This may be replaced when dependencies are built.
