#ifndef MTDB_COMMON_VALUE_H_
#define MTDB_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/types.h"

namespace mtdb {

/// A dynamically-typed SQL value. NULL is represented by type() ==
/// the declared column type with is_null() true (or TypeId::kNull for an
/// untyped NULL literal).
class Value {
 public:
  /// Untyped SQL NULL.
  Value() : type_(TypeId::kNull), null_(true) {}

  static Value Null(TypeId type = TypeId::kNull) {
    Value v;
    v.type_ = type;
    return v;
  }
  static Value Bool(bool b) { return Value(TypeId::kBool, int64_t{b}); }
  static Value Int32(int32_t i) { return Value(TypeId::kInt32, int64_t{i}); }
  static Value Int64(int64_t i) { return Value(TypeId::kInt64, i); }
  static Value Double(double d) { return Value(TypeId::kDouble, d); }
  /// DATE as days since 1970-01-01.
  static Value Date(int32_t days) { return Value(TypeId::kDate, int64_t{days}); }
  static Value String(std::string s) { return Value(TypeId::kString, std::move(s)); }

  TypeId type() const { return type_; }
  bool is_null() const { return null_; }

  bool AsBool() const { return std::get<int64_t>(data_) != 0; }
  int32_t AsInt32() const { return static_cast<int32_t>(std::get<int64_t>(data_)); }
  int64_t AsInt64() const { return std::get<int64_t>(data_); }
  double AsDouble() const {
    if (std::holds_alternative<double>(data_)) return std::get<double>(data_);
    return static_cast<double>(std::get<int64_t>(data_));
  }
  int32_t AsDate() const { return static_cast<int32_t>(std::get<int64_t>(data_)); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// SQL literal rendering ('quoted' strings, NULL, etc.).
  std::string ToSqlLiteral() const;
  /// Unquoted display rendering.
  std::string ToString() const;

  /// Casts this value to `target`, converting representations (e.g. the
  /// paper's generic VARCHAR data columns require string<->native casts).
  Result<Value> CastTo(TypeId target) const;

  /// Three-way comparison. NULLs sort first; values of numeric types
  /// compare numerically across int/double. Comparing a string with a
  /// number compares the string form.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }

  size_t Hash() const;

 private:
  Value(TypeId t, int64_t i) : type_(t), null_(false), data_(i) {}
  Value(TypeId t, double d) : type_(t), null_(false), data_(d) {}
  Value(TypeId t, std::string s) : type_(t), null_(false), data_(std::move(s)) {}

  TypeId type_;
  bool null_;
  std::variant<int64_t, double, std::string> data_{int64_t{0}};
};

using Row = std::vector<Value>;

/// Renders a row as "(v1, v2, ...)" for debugging and examples.
std::string RowToString(const Row& row);

}  // namespace mtdb

#endif  // MTDB_COMMON_VALUE_H_
