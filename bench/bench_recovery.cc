// Recovery-time sweep over the durability subsystem: how long a
// crashed engine takes to come back as a function of (a) the WAL length
// it must replay and (b) the automatic checkpoint interval that bounds
// that length. Each point loads a durable database, runs a fixed insert
// workload, simulates process death (the engine is dropped without a
// final checkpoint), and times Database::Open — checkpoint load, WAL
// replay, and the sealing checkpoint included.
//
// Emits BENCH_recovery.json: recovery time and replayed-group counts per
// log length (checkpoints disabled) and per checkpoint interval (fixed
// workload), plus the headline ratio between the longest-log recovery
// and the tightest-interval recovery.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/database.h"

namespace mtdb {
namespace bench {
namespace {

struct BenchConfig {
  /// Statements in the checkpoint-interval sweep's fixed workload.
  int interval_sweep_ops = 2000;
  /// Log-length sweep points (statements whose groups recovery replays).
  std::vector<int> log_lengths = {250, 500, 1000, 2000};
  /// Checkpoint-interval sweep points in WAL bytes (0 = disabled).
  std::vector<uint64_t> intervals = {64 * 1024, 256 * 1024, 1024 * 1024, 0};
  uint64_t seed = 17;
};

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) return std::atoi(env);
  return fallback;
}

struct RunResult {
  int ops = 0;
  uint64_t checkpoint_interval = 0;
  double load_s = 0;
  double recovery_ms = 0;
  uint64_t replayed_groups = 0;
  uint64_t wal_bytes = 0;
  uint64_t checkpoints_during_load = 0;
};

/// One sweep point: load `ops` insert statements into a fresh durable
/// database under `interval`, kill it, time the reopen.
Result<RunResult> RunPoint(const std::string& dir, int ops,
                           uint64_t interval, uint64_t seed) {
  std::filesystem::remove_all(dir);
  EngineOptions options;
  options.checkpoint_interval_bytes = interval;

  RunResult result;
  result.ops = ops;
  result.checkpoint_interval = interval;
  {
    MTDB_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                          Database::Open(DatabaseOptions::WithPath(dir, options)));
    Schema schema;
    schema.AddColumn(Column{"id", TypeId::kInt64, true});
    schema.AddColumn(Column{"name", TypeId::kString, false});
    schema.AddColumn(Column{"score", TypeId::kDouble, false});
    MTDB_RETURN_IF_ERROR(db->CreateTable("kv", std::move(schema)));
    MTDB_RETURN_IF_ERROR(
        db->CreateIndex("kv", "ux_kv_id", {"id"}, /*unique=*/true));

    Rng rng(seed);
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < ops; ++i) {
      MTDB_RETURN_IF_ERROR(db->InsertRow(
          "kv", {Value::Int64(i), Value::String(rng.Word(8, 24)),
                 Value::Double(static_cast<double>(rng.Uniform(0, 1000)))}));
    }
    auto end = std::chrono::steady_clock::now();
    result.load_s = std::chrono::duration<double>(end - start).count();
    DurabilityCountersSnapshot d = db->Stats().durability;
    result.wal_bytes = d.wal_bytes;
    result.checkpoints_during_load = d.checkpoints;
    // Process death: the engine is dropped without a final checkpoint, so
    // everything since the last one must come back through WAL replay.
  }

  auto start = std::chrono::steady_clock::now();
  MTDB_ASSIGN_OR_RETURN(std::unique_ptr<Database> db,
                        Database::Open(DatabaseOptions::WithPath(dir, options)));
  auto end = std::chrono::steady_clock::now();
  result.recovery_ms =
      std::chrono::duration<double, std::milli>(end - start).count();
  result.replayed_groups = db->Stats().durability.replayed_groups;

  // Recovery must actually have restored the data, or the timing is for
  // an engine that lost rows.
  MTDB_ASSIGN_OR_RETURN(QueryResult rows,
                        db->Query("SELECT COUNT(*) FROM kv"));
  if (rows.rows.size() != 1 ||
      rows.rows[0][0].AsInt64() != static_cast<int64_t>(ops)) {
    return Status::Internal("recovered row count mismatch at " +
                            std::to_string(ops) + " ops");
  }
  return result;
}

int Main() {
  BenchConfig config;
  config.interval_sweep_ops =
      EnvInt("MTDB_BENCH_OPS", config.interval_sweep_ops);

  const std::string dir =
      std::filesystem::temp_directory_path() / "mtdb_bench_recovery";

  std::printf("# recovery sweep: insert workload, kill, reopen\n");
  std::printf("%8s %14s %12s %10s %12s %8s\n", "ops", "ckpt-int[B]",
              "wal[KiB]", "groups", "recover[ms]", "ckpts");

  auto print_row = [](const RunResult& r) {
    std::printf("%8d %14llu %12.1f %10llu %12.2f %8llu\n", r.ops,
                static_cast<unsigned long long>(r.checkpoint_interval),
                static_cast<double>(r.wal_bytes) / 1024.0,
                static_cast<unsigned long long>(r.replayed_groups),
                r.recovery_ms,
                static_cast<unsigned long long>(r.checkpoints_during_load));
  };

  std::vector<RunResult> log_sweep;
  for (int ops : config.log_lengths) {
    auto r = RunPoint(dir, ops, /*interval=*/0, config.seed);
    if (!r.ok()) {
      std::fprintf(stderr, "log-length point %d failed: %s\n", ops,
                   r.status().ToString().c_str());
      return 1;
    }
    log_sweep.push_back(*r);
    print_row(*r);
  }
  std::vector<RunResult> interval_sweep;
  for (uint64_t interval : config.intervals) {
    auto r = RunPoint(dir, config.interval_sweep_ops, interval, config.seed);
    if (!r.ok()) {
      std::fprintf(stderr, "interval point %llu failed: %s\n",
                   static_cast<unsigned long long>(interval),
                   r.status().ToString().c_str());
      return 1;
    }
    interval_sweep.push_back(*r);
    print_row(*r);
  }
  std::filesystem::remove_all(dir);

  // Headline: checkpointing bounds recovery. The tightest interval must
  // replay (far) fewer groups than the unbounded log at the same ops.
  const RunResult& unbounded = interval_sweep.back();
  const RunResult& tightest = interval_sweep.front();
  double group_ratio =
      tightest.replayed_groups > 0
          ? static_cast<double>(unbounded.replayed_groups) /
                static_cast<double>(tightest.replayed_groups)
          : static_cast<double>(unbounded.replayed_groups);
  std::printf("# replay reduction, unbounded vs %llu-byte interval: %.1fx\n",
              static_cast<unsigned long long>(tightest.checkpoint_interval),
              group_ratio);

  const char* out_path = std::getenv("MTDB_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_recovery.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  auto emit_runs = [&](const char* key, const std::vector<RunResult>& runs,
                       const char* tail) {
    std::fprintf(f, "  \"%s\": [\n", key);
    for (size_t i = 0; i < runs.size(); ++i) {
      const RunResult& r = runs[i];
      std::fprintf(
          f,
          "    {\"ops\": %d, \"checkpoint_interval_bytes\": %llu, "
          "\"wal_bytes\": %llu, \"replayed_groups\": %llu, "
          "\"recovery_ms\": %.3f, \"checkpoints_during_load\": %llu}%s\n",
          r.ops, static_cast<unsigned long long>(r.checkpoint_interval),
          static_cast<unsigned long long>(r.wal_bytes),
          static_cast<unsigned long long>(r.replayed_groups), r.recovery_ms,
          static_cast<unsigned long long>(r.checkpoints_during_load),
          i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(f, "  ]%s\n", tail);
  };
  std::fprintf(f, "{\n  \"bench\": \"recovery\",\n");
  std::fprintf(f,
               "  \"config\": {\"interval_sweep_ops\": %d, \"workload\": "
               "\"single-table insert, unique index\"},\n",
               config.interval_sweep_ops);
  emit_runs("log_length_sweep", log_sweep, ",");
  emit_runs("checkpoint_interval_sweep", interval_sweep, ",");
  std::fprintf(f, "  \"replay_reduction_tightest_interval\": %.3f\n}\n",
               group_ratio);
  std::fclose(f);
  std::printf("# wrote %s\n", out_path);

  // Sanity gates: replay work must grow with the log and shrink with
  // checkpoint pressure, or the durability accounting is broken.
  if (log_sweep.back().replayed_groups <= log_sweep.front().replayed_groups) {
    std::fprintf(stderr, "FAIL: replayed groups did not grow with the log\n");
    return 1;
  }
  if (group_ratio < 2.0) {
    std::fprintf(stderr,
                 "FAIL: tight checkpointing reduced replay only %.2fx\n",
                 group_ratio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace mtdb

int main() { return mtdb::bench::Main(); }
