#include "common/fault.h"

namespace mtdb {

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kPageRead:
      return "page-read";
    case FaultPoint::kPageWrite:
      return "page-write";
    case FaultPoint::kTornWrite:
      return "torn-write";
    case FaultPoint::kBitFlip:
      return "bit-flip";
    case FaultPoint::kLatencySpike:
      return "latency-spike";
    case FaultPoint::kCrash:
      return "crash";
  }
  return "?";
}

void FaultInjector::Arm(FaultPoint point, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[static_cast<int>(point)];
  state.armed = true;
  state.spec = spec;
  state.fires = 0;
  state.evaluations = 0;
}

void FaultInjector::Disarm(FaultPoint point) {
  std::lock_guard<std::mutex> lock(mu_);
  points_[static_cast<int>(point)].armed = false;
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (PointState& state : points_) state.armed = false;
}

bool FaultInjector::ShouldFire(FaultPoint point, FaultSpec* spec_out) {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mu_);
  PointState& state = points_[static_cast<int>(point)];
  if (!state.armed) return false;
  uint64_t evaluation = state.evaluations++;
  if (evaluation < state.spec.skip) return false;
  if (state.spec.max_fires != 0 && state.fires >= state.spec.max_fires) {
    return false;
  }
  // Advance the Rng only for live evaluations so a skip window does not
  // shift the random sequence of other points.
  if (!rng_.Bernoulli(state.spec.probability)) return false;
  state.fires++;
  if (spec_out != nullptr) *spec_out = state.spec;
  return true;
}

uint64_t FaultInjector::fires(FaultPoint point) const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_[static_cast<int>(point)].fires;
}

uint64_t FaultInjector::evaluations(FaultPoint point) const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_[static_cast<int>(point)].evaluations;
}

}  // namespace mtdb
