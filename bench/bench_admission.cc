// Noisy-neighbor isolation under admission control: two tenants share
// one engine whose admission controller caps in-flight statements and
// serves the wait queue weighted-round-robin across tenants. A
// well-behaved tenant runs a fixed point-SELECT workload while a noisy
// tenant's offered load sweeps from 0x to 10x (closed-loop worker
// threads); the sweep records the well-behaved tenant's p99 response
// time and goodput at every point.
//
// Emits BENCH_admission.json. The acceptance gate is the PR's isolation
// claim: at 10x noisy offered load the well-behaved tenant's p99 must
// stay under 2x its no-noise baseline — the admission queue, not the
// noisy tenant, decides who runs next.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/basic_layout.h"
#include "core/tenant_session.h"
#include "engine/database.h"

namespace mtdb {
namespace bench {
namespace {

using mapping::AppSchema;
using mapping::BasicLayout;
using mapping::LogicalTable;
using mapping::TenantSession;

constexpr TenantId kPoliteTenant = 0;
constexpr TenantId kNoisyTenant = 1;

struct BenchConfig {
  int64_t rows_per_tenant = 2000;
  int polite_threads = 2;
  int polite_ops_per_thread = 300;
  /// Concurrent statements the engine executes; everything else queues.
  uint32_t max_in_flight = 4;
  uint32_t max_queue = 64;
  /// Sized well below the data set so point lookups keep missing the
  /// buffer pool: every statement pays device latency, so the measured
  /// isolation comes from admission scheduling, not cache residency.
  uint64_t memory_budget_bytes = 256 * 1024;
  uint64_t read_latency_ns = 200000;  // 0.2 ms per physical read
  uint64_t seed = 42;
};

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) return std::atoi(env);
  return fallback;
}

AppSchema BenchSchema() {
  AppSchema app;
  LogicalTable t;
  t.name = "account";
  t.columns = {{"id", TypeId::kInt64, true},
               {"name", TypeId::kString, false},
               {"region", TypeId::kString, false},
               {"score", TypeId::kDouble, false}};
  Status st = app.AddTable(std::move(t));
  (void)st;
  return app;
}

struct RunResult {
  int noisy_multiplier = 0;
  int noisy_threads = 0;
  double elapsed_s = 0;
  double polite_p99_ms = 0;
  double polite_p95_ms = 0;
  double polite_goodput_per_s = 0;
  double noisy_goodput_per_s = 0;
  uint64_t polite_queued = 0;
  uint64_t noisy_queued = 0;
};

Status LoadData(BasicLayout* layout, const BenchConfig& config) {
  Rng rng(config.seed);
  for (TenantId t = kPoliteTenant; t <= kNoisyTenant; ++t) {
    MTDB_RETURN_IF_ERROR(layout->CreateTenant(t));
    TenantSession session = layout->OpenSession(t);
    for (int64_t i = 0; i < config.rows_per_tenant; ++i) {
      Row row{Value::Int64(i), Value::String(rng.Word(8, 16)),
              Value::String(rng.Word(4, 8)),
              Value::Double(static_cast<double>(rng.Uniform(0, 1000)))};
      MTDB_RETURN_IF_ERROR(session.InsertRow("account", row).status());
    }
  }
  return Status::OK();
}

/// One sweep point: the polite tenant runs its fixed workload while
/// `noisy_multiplier` x polite_threads noisy workers hammer the engine
/// closed-loop until the polite tenant finishes.
Result<RunResult> RunSweepPoint(int noisy_multiplier,
                                const BenchConfig& config) {
  DatabaseOptions dopts;
  dopts.engine.memory_budget_bytes = config.memory_budget_bytes;
  dopts.engine.read_latency_ns = 0;  // load fast, dial latency up afterwards
  dopts.admission.enabled = true;
  dopts.admission.max_in_flight = config.max_in_flight;
  dopts.admission.max_queue = config.max_queue;
  Database db(dopts);
  AppSchema app = BenchSchema();
  BasicLayout layout(&db, &app);
  MTDB_RETURN_IF_ERROR(layout.Bootstrap());
  MTDB_RETURN_IF_ERROR(LoadData(&layout, config));

  db.ColdCache();
  db.ResetStats();
  db.page_store()->set_read_latency_ns(config.read_latency_ns);

  const int noisy_threads = config.polite_threads * noisy_multiplier;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> noisy_ops{0};
  std::atomic<int> errors{0};

  std::vector<std::thread> noisy;
  noisy.reserve(noisy_threads);
  for (int w = 0; w < noisy_threads; ++w) {
    noisy.emplace_back([&, w]() {
      Rng rng(config.seed + 5000 + static_cast<uint64_t>(w));
      TenantSession session = layout.OpenSession(kNoisyTenant);
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = session.Query(
            "SELECT * FROM account WHERE id = ?",
            {Value::Int64(rng.Uniform(0, config.rows_per_tenant - 1))});
        if (r.ok()) {
          noisy_ops.fetch_add(1, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1);
        }
      }
    });
  }

  std::vector<SampleSet> partials(config.polite_threads);
  std::vector<std::thread> polite;
  polite.reserve(config.polite_threads);
  auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < config.polite_threads; ++w) {
    polite.emplace_back([&, w]() {
      Rng rng(config.seed + 1000 + static_cast<uint64_t>(w));
      TenantSession session = layout.OpenSession(kPoliteTenant);
      for (int i = 0; i < config.polite_ops_per_thread; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        auto r = session.Query(
            "SELECT * FROM account WHERE id = ?",
            {Value::Int64(rng.Uniform(0, config.rows_per_tenant - 1))});
        auto t1 = std::chrono::steady_clock::now();
        if (!r.ok()) {
          errors.fetch_add(1);
          continue;
        }
        partials[w].Add(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (std::thread& t : polite) t.join();
  auto end = std::chrono::steady_clock::now();
  stop.store(true);
  for (std::thread& t : noisy) t.join();
  if (errors.load() > 0) {
    return Status::Internal(std::to_string(errors.load()) +
                            " bench statements failed");
  }

  SampleSet samples;
  for (const SampleSet& s : partials) samples.Merge(s);

  RunResult result;
  result.noisy_multiplier = noisy_multiplier;
  result.noisy_threads = noisy_threads;
  result.elapsed_s = std::chrono::duration<double>(end - start).count();
  result.polite_p99_ms = samples.Quantile(0.99);
  result.polite_p95_ms = samples.Quantile(0.95);
  result.polite_goodput_per_s =
      static_cast<double>(samples.count()) / result.elapsed_s;
  result.noisy_goodput_per_s =
      static_cast<double>(noisy_ops.load()) / result.elapsed_s;
  result.polite_queued =
      db.metrics_registry()->GetCounter("admission.queued.t0")->value();
  result.noisy_queued =
      db.metrics_registry()->GetCounter("admission.queued.t1")->value();
  return result;
}

int Main() {
  BenchConfig config;
  config.rows_per_tenant =
      EnvInt("MTDB_BENCH_ROWS", static_cast<int>(config.rows_per_tenant));
  config.polite_ops_per_thread =
      EnvInt("MTDB_BENCH_OPS", config.polite_ops_per_thread);
  config.max_in_flight = static_cast<uint32_t>(
      EnvInt("MTDB_BENCH_MAX_IN_FLIGHT",
             static_cast<int>(config.max_in_flight)));
  config.read_latency_ns =
      static_cast<uint64_t>(EnvInt(
          "MTDB_BENCH_READ_LATENCY_US",
          static_cast<int>(config.read_latency_ns / 1000))) *
      1000;

  const int kMultipliers[] = {0, 1, 2, 5, 10};
  std::vector<RunResult> results;
  std::printf(
      "# admission sweep: %lld rows/tenant, %d polite threads x %d ops, "
      "max_in_flight %u, %.0f us/read\n",
      static_cast<long long>(config.rows_per_tenant), config.polite_threads,
      config.polite_ops_per_thread, config.max_in_flight,
      static_cast<double>(config.read_latency_ns) / 1000.0);
  std::printf("%8s %8s %12s %12s %14s %14s\n", "noisy_x", "threads",
              "p99 pol[ms]", "p95 pol[ms]", "polite[1/s]", "noisy[1/s]");
  for (int multiplier : kMultipliers) {
    auto result = RunSweepPoint(multiplier, config);
    if (!result.ok()) {
      std::fprintf(stderr, "sweep point %dx failed: %s\n", multiplier,
                   result.status().ToString().c_str());
      return 1;
    }
    results.push_back(*result);
    std::printf("%8d %8d %12.2f %12.2f %14.1f %14.1f\n",
                result->noisy_multiplier, result->noisy_threads,
                result->polite_p99_ms, result->polite_p95_ms,
                result->polite_goodput_per_s, result->noisy_goodput_per_s);
  }

  const RunResult& baseline = results.front();
  const RunResult& loudest = results.back();
  double degradation = baseline.polite_p99_ms > 0
                           ? loudest.polite_p99_ms / baseline.polite_p99_ms
                           : 0.0;
  std::printf("# polite p99 at 10x noise vs baseline: %.2fx\n", degradation);

  const char* out_path = std::getenv("MTDB_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_admission.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"admission\",\n");
  std::fprintf(f,
               "  \"config\": {\"rows_per_tenant\": %lld, "
               "\"polite_threads\": %d, \"polite_ops_per_thread\": %d, "
               "\"max_in_flight\": %u, \"max_queue\": %u, "
               "\"memory_budget_bytes\": %llu, \"read_latency_ns\": %llu, "
               "\"layout\": \"basic\"},\n",
               static_cast<long long>(config.rows_per_tenant),
               config.polite_threads, config.polite_ops_per_thread,
               config.max_in_flight, config.max_queue,
               static_cast<unsigned long long>(config.memory_budget_bytes),
               static_cast<unsigned long long>(config.read_latency_ns));
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(
        f,
        "    {\"noisy_multiplier\": %d, \"noisy_threads\": %d, "
        "\"elapsed_s\": %.4f, \"polite_p99_ms\": %.3f, \"polite_p95_ms\": "
        "%.3f, \"polite_goodput_per_s\": %.2f, \"noisy_goodput_per_s\": "
        "%.2f, \"polite_queued\": %llu, \"noisy_queued\": %llu}%s\n",
        r.noisy_multiplier, r.noisy_threads, r.elapsed_s, r.polite_p99_ms,
        r.polite_p95_ms, r.polite_goodput_per_s, r.noisy_goodput_per_s,
        static_cast<unsigned long long>(r.polite_queued),
        static_cast<unsigned long long>(r.noisy_queued),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"p99_degradation_10x\": %.3f\n}\n", degradation);
  std::fclose(f);
  std::printf("# wrote %s\n", out_path);

  // The acceptance gate: WRR admission must isolate the well-behaved
  // tenant from a 10x noisy neighbor.
  if (degradation >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: polite-tenant p99 degraded %.2fx under 10x noise "
                 "(floor: < 2x)\n",
                 degradation);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace mtdb

int main() { return mtdb::bench::Main(); }
