#ifndef MTDB_TESTBED_WORKLOAD_H_
#define MTDB_TESTBED_WORKLOAD_H_

#include <atomic>
#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "engine/database.h"
#include "engine/session.h"
#include "testbed/crm_schema.h"
#include "testbed/data_generator.h"

namespace mtdb {
namespace testbed {

/// Worker action classes with the Figure 6 distribution.
enum class ActionClass {
  kSelectLight,
  kSelectHeavy,
  kInsertLight,
  kInsertHeavy,
  kUpdateLight,
  kUpdateHeavy,
  kAdministrative,
};

const char* ActionClassName(ActionClass c);

/// Weight (percentage) of each class in the Controller's card deck.
double ActionClassWeight(ActionClass c);

/// One card: an action class plus the tenant it runs for.
struct ActionCard {
  ActionClass action;
  TenantId tenant;
};

/// TPC-C-style Controller: builds a shuffled deck of action cards with
/// the Figure 6 distribution and uniformly-chosen tenants.
class Controller {
 public:
  Controller(uint64_t seed, int num_tenants) : rng_(seed), tenants_(num_tenants) {}

  /// Deals a deck of `size` shuffled cards.
  std::vector<ActionCard> Deal(size_t size);

 private:
  Rng rng_;
  int tenants_;
};

/// Collects response-time samples per action class. NOT thread-safe:
/// following the SampleSet contract, each worker records into its own
/// ResultDatabase and the driver Merge()s them after joining the
/// threads, so the hot recording path takes no locks at all.
class ResultDatabase {
 public:
  void Record(ActionClass action, double millis);
  /// Folds another worker's samples into this one (post-join only).
  void Merge(const ResultDatabase& other);
  /// Total actions recorded.
  uint64_t Count() const;
  const SampleSet& Samples(ActionClass action) const;
  /// Merges all classes (for throughput computation).
  uint64_t TotalActions() const;

 private:
  std::map<ActionClass, SampleSet> samples_;
};

/// Executes action cards against a CRM schema-instance database: the
/// Worker's client-session logic of §4.2. Each Worker opens its own
/// engine Session — one logical connection per worker thread — and runs
/// every statement through it.
class Worker {
 public:
  /// `instance_of_tenant(t)` maps a tenant to its schema instance.
  Worker(Database* db, int instances, int64_t rows_per_tenant, uint64_t seed);

  /// Runs one card, records the response time into `results`.
  Status RunCard(const ActionCard& card, ResultDatabase* results);

  /// Statements issued through this worker's session.
  uint64_t statements_executed() const {
    return session_.statements_executed();
  }

  /// Next schema instance id for administrative (DDL) actions.
  static int next_admin_instance() { return next_admin_instance_; }

 private:
  int InstanceOf(TenantId tenant) const { return tenant % instances_; }

  Status SelectLight(TenantId tenant);
  Status SelectHeavy(TenantId tenant);
  Status InsertLight(TenantId tenant);
  Status InsertHeavy(TenantId tenant);
  Status UpdateLight(TenantId tenant);
  Status UpdateHeavy(TenantId tenant);
  Status Administrative(TenantId tenant);

  Session session_;
  int instances_;
  int64_t rows_;
  DataGenerator gen_;
  static inline std::atomic<int> next_admin_instance_{1000000};
};

}  // namespace testbed
}  // namespace mtdb

#endif  // MTDB_TESTBED_WORKLOAD_H_
