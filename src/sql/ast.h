#ifndef MTDB_SQL_AST_H_
#define MTDB_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace mtdb {
namespace sql {

// ----------------------------------------------------------- expressions

enum class PExprKind {
  kLiteral,
  kColumnRef,
  kParam,
  kUnary,    // NOT, unary -
  kBinary,   // comparisons, arithmetic, AND, OR
  kIsNull,   // IS [NOT] NULL
  kLike,     // [NOT] LIKE with %/_ wildcards
  kFuncCall, // COUNT/SUM/AVG/MIN/MAX
  kStar,     // the * inside COUNT(*)
};

enum class BinaryOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr,
};

enum class UnaryOp { kNot, kNeg };

/// Unbound (parsed) expression. The binder in src/engine resolves
/// ColumnRefs against the plan's input schema; the mapping layer rewrites
/// these trees directly.
struct ParsedExpr {
  PExprKind kind;

  // kLiteral
  Value literal;
  // kColumnRef
  std::string table;   // alias or table name; may be empty
  std::string column;
  // kParam
  size_t param_ordinal = 0;
  // kUnary / kBinary
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kEq;
  std::unique_ptr<ParsedExpr> left;
  std::unique_ptr<ParsedExpr> right;
  // kIsNull / kLike
  bool is_null_negated = false;
  bool like_negated = false;
  // kFuncCall
  std::string func_name;
  std::vector<std::unique_ptr<ParsedExpr>> args;
  bool func_star = false;  // COUNT(*)

  std::unique_ptr<ParsedExpr> Clone() const;
};

using ParsedExprPtr = std::unique_ptr<ParsedExpr>;

ParsedExprPtr MakeLiteral(Value v);
ParsedExprPtr MakeColumnRef(std::string table, std::string column);
ParsedExprPtr MakeParam(size_t ordinal);
ParsedExprPtr MakeBinary(BinaryOp op, ParsedExprPtr l, ParsedExprPtr r);
ParsedExprPtr MakeUnary(UnaryOp op, ParsedExprPtr c);
ParsedExprPtr MakeIsNull(ParsedExprPtr c, bool negated);
ParsedExprPtr MakeLike(ParsedExprPtr value, ParsedExprPtr pattern,
                       bool negated);
ParsedExprPtr MakeFunc(std::string name, std::vector<ParsedExprPtr> args,
                       bool star);

/// ANDs two (possibly null) predicates together.
ParsedExprPtr AndTogether(ParsedExprPtr a, ParsedExprPtr b);

/// Splits an expression into AND-ed conjuncts (clones).
void SplitParsedConjuncts(const ParsedExpr& e,
                          std::vector<ParsedExprPtr>* out);

// ------------------------------------------------------------ statements

struct SelectStmt;

/// One entry in the FROM list: either a base table or a derived table
/// (subquery). Explicit JOIN ... ON syntax is flattened by the parser
/// into the ref list plus WHERE conjuncts; `join_order_pinned` records
/// that the query author fixed the order (naive planners preserve it).
struct TableRef {
  std::string table_name;                 // empty for derived tables
  std::unique_ptr<SelectStmt> subquery;   // set for derived tables
  std::string alias;                      // effective binding name

  TableRef() = default;
  TableRef(const TableRef&) = delete;
  TableRef& operator=(const TableRef&) = delete;
  TableRef(TableRef&&) = default;
  TableRef& operator=(TableRef&&) = default;

  bool is_subquery() const { return subquery != nullptr; }
  const std::string& binding_name() const {
    return alias.empty() ? table_name : alias;
  }
  TableRef Clone() const;
};

struct SelectItem {
  ParsedExprPtr expr;
  std::string alias;

  SelectItem Clone() const;
};

struct OrderItem {
  ParsedExprPtr expr;
  bool descending = false;
};

struct SelectStmt {
  std::vector<SelectItem> items;   // empty => SELECT *
  bool select_star = false;
  bool distinct = false;
  std::vector<TableRef> from;
  ParsedExprPtr where;
  std::vector<ParsedExprPtr> group_by;
  ParsedExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;
  int64_t offset = 0;

  std::unique_ptr<SelectStmt> Clone() const;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty => schema order
  std::vector<std::vector<ParsedExprPtr>> rows;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ParsedExprPtr>> assignments;
  ParsedExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ParsedExprPtr where;
};

struct ColumnDef {
  std::string name;
  TypeId type;
  bool not_null = false;
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
};

struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::vector<std::string> columns;
  bool unique = false;
};

struct DropTableStmt {
  std::string table;
};

struct DropIndexStmt {
  std::string index;
};

enum class StatementKind {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kCreateIndex,
  kDropTable,
  kDropIndex,
  kExplainMapping,
  // Transaction control. These carry no payload: the session layer owns
  // the transaction state machine, the parser just recognises the verbs.
  kBegin,
  kCommit,
  kRollback,
};

struct ExplainStmt;  // holds a Statement; defined below

/// A parsed SQL statement (tagged union of the structs above).
struct Statement {
  StatementKind kind;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<CreateIndexStmt> create_index;
  std::unique_ptr<DropTableStmt> drop_table;
  std::unique_ptr<DropIndexStmt> drop_index;
  std::unique_ptr<ExplainStmt> explain;
};

/// EXPLAIN MAPPING <stmt>: asks the mapping layer to report which
/// physical statements the target would produce, without executing it.
/// The target may be any DML statement; nesting EXPLAIN is rejected by
/// the parser.
struct ExplainStmt {
  std::unique_ptr<Statement> target;
};

/// Lowercase label for a statement kind ("select", "explain_mapping",
/// ...), used for metric series names and trace spans.
const char* KindLabel(StatementKind kind);

}  // namespace sql
}  // namespace mtdb

#endif  // MTDB_SQL_AST_H_
