#include "chunk_bench_common.h"

#include <chrono>

#include "common/rng.h"

namespace mtdb {
namespace bench {

std::string DataColumnName(int i) {
  switch (i % 3) {
    case 0:
      return "ci" + std::to_string(i / 3 + 1);
    case 1:
      return "cd" + std::to_string(i / 3 + 1);
    default:
      return "cs" + std::to_string(i / 3 + 1);
  }
}

namespace {

TypeId DataColumnType(int i) {
  switch (i % 3) {
    case 0:
      return TypeId::kInt32;
    case 1:
      return TypeId::kDate;
    default:
      return TypeId::kString;
  }
}

std::vector<mapping::LogicalColumn> DataColumns() {
  std::vector<mapping::LogicalColumn> cols;
  for (int i = 0; i < kDataColumns; ++i) {
    cols.push_back({DataColumnName(i), DataColumnType(i), false});
  }
  return cols;
}

}  // namespace

mapping::AppSchema ParentChildSchema() {
  mapping::AppSchema app;
  {
    mapping::LogicalTable parent;
    parent.name = "parent";
    parent.columns.push_back({"id", TypeId::kInt64, true});
    for (auto& c : DataColumns()) parent.columns.push_back(c);
    Status st = app.AddTable(std::move(parent));
    (void)st;
  }
  {
    mapping::LogicalTable child;
    child.name = "child";
    child.columns.push_back({"id", TypeId::kInt64, true});
    child.columns.push_back({"parent", TypeId::kInt64, true});
    for (auto& c : DataColumns()) child.columns.push_back(c);
    Status st = app.AddTable(std::move(child));
    (void)st;
  }
  return app;
}

Result<std::unique_ptr<Deployment>> MakeDeployment(
    const ChunkBenchConfig& config, int width, bool vertical) {
  auto d = std::make_unique<Deployment>();
  d->width = width;
  d->label = width == 0 ? "conventional"
                        : (vertical ? "vertical" : "chunk") +
                              std::to_string(width);
  EngineOptions options;
  options.memory_budget_bytes = 256ull * 1024 * 1024;
  d->db = std::make_unique<Database>(options);
  d->app = std::make_unique<mapping::AppSchema>(ParentChildSchema());
  if (width == 0) {
    d->layout =
        std::make_unique<mapping::BasicLayout>(d->db.get(), d->app.get());
  } else {
    mapping::ChunkLayoutOptions chunk_options;
    chunk_options.shape = mapping::ChunkShape::Uniform(width);
    chunk_options.fold = !vertical;
    d->layout = std::make_unique<mapping::ChunkTableLayout>(
        d->db.get(), d->app.get(), chunk_options);
  }
  MTDB_RETURN_IF_ERROR(d->layout->Bootstrap());
  MTDB_RETURN_IF_ERROR(d->layout->CreateTenant(0));

  Rng rng(config.seed);
  auto data_values = [&](Row* row) {
    for (int i = 0; i < kDataColumns; ++i) {
      switch (i % 3) {
        case 0:
          row->push_back(Value::Int32(static_cast<int32_t>(rng.Uniform(0, 1 << 20))));
          break;
        case 1:
          row->push_back(Value::Date(static_cast<int32_t>(rng.Uniform(10957, 14000))));
          break;
        default:
          row->push_back(Value::String(rng.Word(8, 24)));
          break;
      }
    }
  };
  for (int p = 0; p < config.parents; ++p) {
    Row row;
    row.push_back(Value::Int64(p));
    data_values(&row);
    MTDB_ASSIGN_OR_RETURN(int64_t n, d->layout->InsertRow(0, "parent", row));
    (void)n;
    for (int c = 0; c < config.children_per_parent; ++c) {
      Row child;
      child.push_back(Value::Int64(p * 1000 + c));
      child.push_back(Value::Int64(p));
      data_values(&child);
      MTDB_ASSIGN_OR_RETURN(int64_t m, d->layout->InsertRow(0, "child", child));
      (void)m;
    }
  }
  return d;
}

std::string BuildQ2(int scale) {
  // `scale` total data columns, split evenly across parent and child.
  int per_side = scale / 2;
  std::string sql = "SELECT p.id";
  for (int i = 0; i < per_side; ++i) {
    sql += ", p." + DataColumnName(i);
  }
  for (int i = 0; i < scale - per_side; ++i) {
    sql += ", c." + DataColumnName(i);
  }
  sql += " FROM parent p, child c WHERE p.id = c.parent AND p.id = ?";
  return sql;
}

std::string BuildGroupingQuery(int scale) {
  // Group children by one string column, aggregating `scale` columns.
  std::string sql = "SELECT c.cs1, COUNT(*)";
  for (int i = 0; i < scale && i < 30; ++i) {
    sql += ", MAX(c." + DataColumnName(i * 3) + ")";  // int columns
  }
  sql += " FROM child c GROUP BY c.cs1";
  return sql;
}

Result<RunResult> RunQuery(Deployment* d, const std::string& sql,
                           const std::vector<Value>& params, int reps,
                           bool cold) {
  RunResult out;
  // One warm-up execution (also validates the query).
  if (!cold) {
    MTDB_ASSIGN_OR_RETURN(QueryResult r, d->layout->Query(0, sql, params));
    (void)r;
  }
  uint64_t logical0 = d->db->Stats().buffer.logical_reads();
  uint64_t physical0 = d->db->Stats().store.physical_reads;
  double total_ms = 0.0;
  for (int i = 0; i < reps; ++i) {
    if (cold) d->db->ColdCache();
    auto start = std::chrono::steady_clock::now();
    MTDB_ASSIGN_OR_RETURN(QueryResult r, d->layout->Query(0, sql, params));
    auto end = std::chrono::steady_clock::now();
    (void)r;
    total_ms += std::chrono::duration<double, std::milli>(end - start).count();
  }
  out.mean_ms = total_ms / reps;
  out.logical_reads =
      static_cast<double>(d->db->Stats().buffer.logical_reads() - logical0) /
      reps;
  out.physical_reads =
      static_cast<double>(d->db->Stats().store.physical_reads - physical0) /
      reps;
  return out;
}

}  // namespace bench
}  // namespace mtdb
