#include "common/metrics.h"

#include <algorithm>
#include <cmath>

namespace mtdb {

void SampleSet::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::Mean() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::Quantile(double q) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  double rank = q * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::Min() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.front();
}

double SampleSet::Max() const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  return samples_.back();
}

double SampleSet::FractionBelow(double threshold) const {
  if (samples_.empty()) return 0.0;
  EnsureSorted();
  auto it = std::upper_bound(samples_.begin(), samples_.end(), threshold);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

}  // namespace mtdb
