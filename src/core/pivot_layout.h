#ifndef MTDB_CORE_PIVOT_LAYOUT_H_
#define MTDB_CORE_PIVOT_LAYOUT_H_

#include <memory>
#include <string>

#include "core/layout.h"

namespace mtdb {
namespace mapping {

/// Figure 4(d) "Pivot Table Layout": every field of every logical row
/// becomes its own physical row in a per-type Pivot Table with Tenant,
/// Table, Col, Row meta-data columns and a single typed data column.
/// Reconstructing an n-column table takes (n-1) aligning joins — the
/// high meta-data interpretation overhead the paper measures.
class PivotTableLayout final : public SchemaMapping {
 public:
  PivotTableLayout(Database* db, const AppSchema* app)
      : SchemaMapping(db, app) {}

  std::string name() const override { return "pivot"; }

  Status Bootstrap() override;

  /// Physical pivot table for a storage class ("pivot_int", ...).
  static std::string PivotName(StorageClass cls);

 protected:
  Result<std::unique_ptr<TableMapping>> BuildMapping(
      TenantId tenant, const std::string& table) override;
};

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_PIVOT_LAYOUT_H_
