#include "analysis/verifier.h"

#include <memory>
#include <string>
#include <utility>

#include "analysis/isolation_linter.h"
#include "analysis/layout_auditor.h"
#include "core/transformer.h"
#include "sql/ast_util.h"

namespace mtdb {
namespace analysis {

namespace {

using mapping::DmlMode;
using mapping::EmitMode;
using mapping::SchemaMapping;
using mapping::TableMapping;

const char* EmitModeName(EmitMode mode) {
  return mode == EmitMode::kNested ? "nested" : "flattened";
}

const char* DmlModeName(DmlMode mode) {
  return mode == DmlMode::kPerRow ? "per-row" : "batched";
}

std::string Loc(TenantId tenant, const std::string& table,
                const std::string& detail) {
  return "tenant " + std::to_string(tenant) + ", table " + table + ", " +
         detail;
}

void ReportProbeFailure(std::vector<Diagnostic>* out, TenantId tenant,
                        const std::string& table, const std::string& what,
                        const Status& status) {
  out->push_back(Diagnostic{Severity::kError, kRuleProbeFailed,
                            Loc(tenant, table, what),
                            what + " failed: " + status.ToString()});
}

/// A value of `type` that is vanishingly unlikely to collide with real
/// data, used to key the verifier's sentinel probe rows.
Value SentinelFor(TypeId type) {
  switch (type) {
    case TypeId::kBool:
      return Value::Bool(true);
    case TypeId::kInt32:
      return Value::Int32(987654321);
    case TypeId::kInt64:
      return Value::Int64(987654321987);
    case TypeId::kDouble:
      return Value::Double(987654321.5);
    case TypeId::kDate:
      return Value::Date(29000);
    case TypeId::kString:
      return Value::String("zz_mtdb_probe");
    case TypeId::kNull:
      break;
  }
  return Value();
}

/// Records every physical statement the layout emits (deep copies).
class Recorder : public mapping::PhysicalStatementObserver {
 public:
  void OnSelect(TenantId tenant, const sql::SelectStmt& stmt) override {
    selects_.emplace_back(tenant, stmt.Clone());
  }
  void OnStatement(TenantId tenant, const sql::Statement& stmt) override {
    statements_.emplace_back(tenant, sql::CloneStatement(stmt));
  }

  void Clear() {
    selects_.clear();
    statements_.clear();
  }

  const std::vector<std::pair<TenantId, std::unique_ptr<sql::SelectStmt>>>&
  selects() const {
    return selects_;
  }
  const std::vector<std::pair<TenantId, sql::Statement>>& statements() const {
    return statements_;
  }

 private:
  std::vector<std::pair<TenantId, std::unique_ptr<sql::SelectStmt>>> selects_;
  std::vector<std::pair<TenantId, sql::Statement>> statements_;
};

/// Restores observer and DML mode however the probe pass exits.
class ProbeScope {
 public:
  ProbeScope(SchemaMapping* layout, Recorder* recorder)
      : layout_(layout), saved_mode_(layout->dml_mode()) {
    layout_->set_statement_observer(recorder);
  }
  ~ProbeScope() {
    layout_->set_statement_observer(nullptr);
    layout_->set_dml_mode(saved_mode_);
  }

 private:
  SchemaMapping* layout_;
  DmlMode saved_mode_;
};

}  // namespace

Result<std::vector<Diagnostic>> Verifier::Run(const VerifyOptions& options) {
  std::vector<Diagnostic> out;
  if (options.audit_layout) {
    MTDB_ASSIGN_OR_RETURN(std::vector<Diagnostic> audit,
                          AuditLayout(layout_));
    for (Diagnostic& d : audit) out.push_back(std::move(d));
  }
  if (options.lint_queries) LintQueries(&out);
  if (options.probe_dml) ProbeDml(&out);
  return out;
}

void Verifier::LintQueries(std::vector<Diagnostic>* out) {
  const Catalog* catalog = layout_->db()->catalog();
  for (TenantId tenant : layout_->TenantIds()) {
    for (const mapping::LogicalTable& table : layout_->app()->tables()) {
      auto mapping = layout_->Mapping(tenant, table.name);
      if (!mapping.ok()) {
        ReportProbeFailure(out, tenant, table.name, "Mapping",
                          mapping.status());
        continue;
      }
      for (EmitMode mode : {EmitMode::kNested, EmitMode::kFlattened}) {
        mapping::TransformOptions topt;
        topt.emit_mode = mode;
        mapping::QueryTransformer transformer(layout_, topt);

        // SELECT * touches every logical column, so every chunk of the
        // mapping participates in the reconstruction — the widest net
        // for both the tenant-conjunct and the alignment rules.
        sql::SelectStmt logical;
        logical.select_star = true;
        sql::TableRef ref;
        ref.table_name = table.name;
        logical.from.push_back(std::move(ref));

        auto physical = transformer.TransformSelect(tenant, logical);
        if (!physical.ok()) {
          ReportProbeFailure(out, tenant, table.name,
                            std::string("TransformSelect (") +
                                EmitModeName(mode) + ")",
                            physical.status());
          continue;
        }
        LintContext ctx;
        ctx.tenant = tenant;
        ctx.catalog = catalog;
        ctx.mapping = *mapping;
        LintPhysicalSelect(ctx, **physical, out);
      }
    }

    // A cross-table join probe: both referenced tables must be tenant-
    // confined within one statement (no mapping context — self-join-free
    // alignment only holds per table).
    const auto& tables = layout_->app()->tables();
    if (tables.size() < 2) continue;
    for (EmitMode mode : {EmitMode::kNested, EmitMode::kFlattened}) {
      mapping::TransformOptions topt;
      topt.emit_mode = mode;
      mapping::QueryTransformer transformer(layout_, topt);

      sql::SelectStmt logical;
      auto cols_a = layout_->LogicalColumns(tenant, tables[0].name);
      auto cols_b = layout_->LogicalColumns(tenant, tables[1].name);
      if (!cols_a.ok() || !cols_b.ok()) break;
      sql::SelectItem item_a;
      item_a.expr = sql::MakeColumnRef("a", (*cols_a)[0].first);
      logical.items.push_back(std::move(item_a));
      sql::SelectItem item_b;
      item_b.expr = sql::MakeColumnRef("b", (*cols_b)[0].first);
      logical.items.push_back(std::move(item_b));
      sql::TableRef ref_a;
      ref_a.table_name = tables[0].name;
      ref_a.alias = "a";
      sql::TableRef ref_b;
      ref_b.table_name = tables[1].name;
      ref_b.alias = "b";
      logical.from.push_back(std::move(ref_a));
      logical.from.push_back(std::move(ref_b));

      auto physical = transformer.TransformSelect(tenant, logical);
      if (!physical.ok()) {
        ReportProbeFailure(out, tenant, tables[0].name + "+" + tables[1].name,
                          std::string("join TransformSelect (") +
                              EmitModeName(mode) + ")",
                          physical.status());
        continue;
      }
      LintContext ctx;
      ctx.tenant = tenant;
      ctx.catalog = catalog;
      LintPhysicalSelect(ctx, **physical, out);
    }
  }
}

void Verifier::ProbeDml(std::vector<Diagnostic>* out) {
  const Catalog* catalog = layout_->db()->catalog();
  Recorder recorder;
  ProbeScope scope(layout_, &recorder);

  for (TenantId tenant : layout_->TenantIds()) {
    for (const mapping::LogicalTable& table : layout_->app()->tables()) {
      auto columns = layout_->LogicalColumns(tenant, table.name);
      if (!columns.ok()) {
        ReportProbeFailure(out, tenant, table.name, "LogicalColumns",
                          columns.status());
        continue;
      }
      if (columns->empty()) continue;
      auto mapping = layout_->Mapping(tenant, table.name);
      const TableMapping* table_mapping =
          mapping.ok() ? *mapping : nullptr;

      const std::string& key_col = (*columns)[0].first;
      Value sentinel = SentinelFor((*columns)[0].second);
      if (sentinel.is_null()) continue;  // untyped key — nothing to probe
      Row probe_row;
      probe_row.reserve(columns->size());
      for (const auto& [name, type] : *columns) {
        (void)name;
        probe_row.push_back(SentinelFor(type));
      }

      const std::string set_col =
          columns->size() > 1 ? (*columns)[1].first : key_col;
      const Value set_val =
          columns->size() > 1 ? SentinelFor((*columns)[1].second) : sentinel;
      const std::string update_sql = "UPDATE " + table.name + " SET " +
                                     set_col + " = ? WHERE " + key_col +
                                     " = ?";
      const std::string delete_sql =
          "DELETE FROM " + table.name + " WHERE " + key_col + " = ?";

      for (DmlMode mode : {DmlMode::kPerRow, DmlMode::kBatched}) {
        layout_->set_dml_mode(mode);
        recorder.Clear();

        auto inserted = layout_->InsertRow(tenant, table.name, probe_row);
        if (!inserted.ok()) {
          ReportProbeFailure(out, tenant, table.name,
                            std::string("probe InsertRow (") +
                                DmlModeName(mode) + ")",
                            inserted.status());
          break;  // the other mode will fail identically
        }
        recorder.Clear();  // the insert itself routes by value — no lint

        auto updated =
            layout_->Execute(tenant, update_sql, {set_val, sentinel});
        if (!updated.ok()) {
          ReportProbeFailure(out, tenant, table.name,
                            std::string("probe UPDATE (") +
                                DmlModeName(mode) + ")",
                            updated.status());
        }
        auto deleted = layout_->Execute(tenant, delete_sql, {sentinel});
        if (!deleted.ok()) {
          ReportProbeFailure(out, tenant, table.name,
                            std::string("probe DELETE (") +
                                DmlModeName(mode) + ")",
                            deleted.status());
        }

        for (const auto& [t, select] : recorder.selects()) {
          LintContext ctx;
          ctx.tenant = t;
          ctx.catalog = catalog;
          ctx.mapping = table_mapping;
          LintPhysicalSelect(ctx, *select, out);
        }
        for (const auto& [t, stmt] : recorder.statements()) {
          LintContext ctx;
          ctx.tenant = t;
          ctx.catalog = catalog;
          LintPhysicalStatement(ctx, stmt, out);
        }
      }
    }
  }
}

}  // namespace analysis
}  // namespace mtdb
