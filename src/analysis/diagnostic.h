#ifndef MTDB_ANALYSIS_DIAGNOSTIC_H_
#define MTDB_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <vector>

namespace mtdb {
namespace analysis {

enum class Severity { kWarning, kError };

const char* SeverityName(Severity severity);

/// One violation found by a static analysis pass. `rule_id` names the
/// rule in the catalog (DESIGN.md "Static verification"): "Lxxx" for the
/// layout auditor, "Ixxx" for the tenant-isolation linter, "Vxxx" for
/// the verifier driver itself.
struct Diagnostic {
  Severity severity = Severity::kError;
  std::string rule_id;
  /// Where the violation sits, e.g. "tenant 17, table account, source 2
  /// (chunkdata)" or "tenant 35, UPDATE pivot_int".
  std::string location;
  std::string message;

  /// "error L004 [tenant 17, table account]: ...".
  std::string ToString() const;
};

/// One line per diagnostic, newline-terminated; empty string when clean.
std::string FormatDiagnostics(const std::vector<Diagnostic>& diagnostics);

bool HasErrors(const std::vector<Diagnostic>& diagnostics);

// ---------------------------------------------------------- rule catalog

// Layout-invariant auditor (layout_auditor.h).
inline constexpr const char* kRuleUnmappedColumn = "L001";
inline constexpr const char* kRuleSlotCollision = "L002";
inline constexpr const char* kRuleColumnOrderMismatch = "L003";
inline constexpr const char* kRuleTypeNarrowing = "L004";
inline constexpr const char* kRuleOrphanSource = "L005";
inline constexpr const char* kRuleDanglingTable = "L006";
inline constexpr const char* kRuleMissingPhysicalColumn = "L007";
inline constexpr const char* kRulePartialRowKey = "L008";
inline constexpr const char* kRuleSharedTableUnscoped = "L009";
inline constexpr const char* kRulePartitionTypeMismatch = "L010";
inline constexpr const char* kRuleBadSourceIndex = "L011";
inline constexpr const char* kRuleDuplicateSource = "L012";

// Tenant-isolation linter (isolation_linter.h).
inline constexpr const char* kRuleMissingTenantConjunct = "I101";
inline constexpr const char* kRuleWrongTenantLiteral = "I102";
inline constexpr const char* kRuleUnalignedReconstruction = "I103";
inline constexpr const char* kRuleDmlTenantWidening = "I104";
inline constexpr const char* kRuleCrossTenantLockCoupling = "I105";

// Verifier driver (verifier.h).
inline constexpr const char* kRuleProbeFailed = "V001";

// Lockdep latch-order validator (lockdep.h; runtime in common/latch.h).
inline constexpr const char* kRuleRankInversion = "C201";
inline constexpr const char* kRuleOrderKeyInversion = "C202";
inline constexpr const char* kRuleAcquisitionCycle = "C203";
inline constexpr const char* kRuleRecursiveAcquisition = "C204";
inline constexpr const char* kRuleReleaseNotHeld = "C205";
inline constexpr const char* kRuleThreadExitHolding = "C206";

// WAL-protocol analyzer (lockdep.h).
inline constexpr const char* kRuleUnloggedPageMutation = "C301";
inline constexpr const char* kRuleCaptureLeak = "C302";
inline constexpr const char* kRuleUnlatchedCommit = "C303";

}  // namespace analysis
}  // namespace mtdb

#endif  // MTDB_ANALYSIS_DIAGNOSTIC_H_
