file(REMOVE_RECURSE
  "CMakeFiles/bench_metadata_budget.dir/bench_metadata_budget.cc.o"
  "CMakeFiles/bench_metadata_budget.dir/bench_metadata_budget.cc.o.d"
  "bench_metadata_budget"
  "bench_metadata_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metadata_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
