#ifndef MTDB_COMMON_STATUS_H_
#define MTDB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace mtdb {

/// Error categories used across the engine and the mapping layer.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kInternal,
  kNotImplemented,
  kParseError,
  kTypeMismatch,
  kConstraintViolation,
  kIOError,      // transient device failure; safe to retry
  kDataLoss,     // checksum mismatch / torn page; retrying may not help
  kUnavailable,  // resource (e.g. a quarantined tenant) refuses service
  kDeadlineExceeded,  // statement ran past its deadline; partial work undone
  kFailedPrecondition,  // session/transaction state forbids the operation
  kAborted,  // chosen as deadlock victim; transaction rolled back, retry it
};

/// Arrow/RocksDB-style status object. The engine does not use exceptions;
/// every fallible operation returns a Status (or Result<T>, see result.h).
/// [[nodiscard]] so silently dropped errors fail the build.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

const char* StatusCodeName(StatusCode code);

/// Propagates a non-OK Status to the caller.
#define MTDB_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::mtdb::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (false)

}  // namespace mtdb

#endif  // MTDB_COMMON_STATUS_H_
