#include <gtest/gtest.h>

#include "core/transformer.h"
#include "mapping_test_util.h"
#include "sql/parser.h"
#include "sql/printer.h"

namespace mtdb {
namespace mapping {
namespace {

/// A fixture that exposes the transformer against the chunk layout's
/// mappings, without executing queries.
class TransformerTest : public ::testing::Test {
 protected:
  TransformerTest() : app_(FigureFourSchema()), db_(EngineOptions()) {
    layout_ = std::make_unique<ChunkTableLayout>(&db_, &app_);
    EXPECT_TRUE(layout_->Bootstrap().ok());
    EXPECT_TRUE(layout_->CreateTenant(17).ok());
    EXPECT_TRUE(layout_->EnableExtension(17, "healthcare").ok());
  }

  std::string Transform(TenantId tenant, const std::string& sql,
                        TransformOptions options) {
    auto stmt = sql::ParseSelect(sql);
    EXPECT_TRUE(stmt.ok());
    QueryTransformer transformer(layout_.get(), options);
    auto out = transformer.TransformSelect(tenant, **stmt);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? sql::ToSql(**out) : "";
  }

  AppSchema app_;
  Database db_;
  std::unique_ptr<ChunkTableLayout> layout_;
};

TEST_F(TransformerTest, NestedReconstructionHasMetadataPredicates) {
  TransformOptions options;
  options.emit_mode = EmitMode::kNested;
  std::string sql = Transform(
      17, "SELECT beds FROM account WHERE hospital = 'State'", options);
  // The paper's Q1-over-chunk-tables shape: nested derived table with
  // tenant/tbl/chunk predicates.
  EXPECT_NE(sql.find("(SELECT"), std::string::npos) << sql;
  EXPECT_NE(sql.find("tenant = 17"), std::string::npos) << sql;
  EXPECT_NE(sql.find("AS account"), std::string::npos) << sql;
}

TEST_F(TransformerTest, UnusedColumnsDoNotJoinTheirChunks) {
  TransformOptions options;
  options.emit_mode = EmitMode::kNested;
  // Q1 uses only hospital and beds; aid/name chunks must not appear.
  std::string sql = Transform(
      17, "SELECT beds FROM account WHERE hospital = 'State'", options);
  // aid is an indexed column => chunkidx would appear only if referenced.
  EXPECT_EQ(sql.find("chunkidx"), std::string::npos) << sql;
}

TEST_F(TransformerTest, ReferencingIndexedColumnJoinsChunkIndex) {
  TransformOptions options;
  options.emit_mode = EmitMode::kNested;
  std::string sql =
      Transform(17, "SELECT aid, beds FROM account", options);
  EXPECT_NE(sql.find("chunkidx"), std::string::npos) << sql;
  EXPECT_NE(sql.find("chunkdata"), std::string::npos) << sql;
  EXPECT_NE(sql.find(".row = "), std::string::npos) << sql;  // aligning join
}

TEST_F(TransformerTest, FlattenedPredicateOrderMetadataFirst) {
  TransformOptions options;
  options.emit_mode = EmitMode::kFlattened;
  options.predicate_order = PredicateOrder::kMetadataFirst;
  std::string sql = Transform(
      17, "SELECT beds FROM account WHERE hospital = 'State'", options);
  size_t meta = sql.find("tenant = 17");
  size_t user = sql.find("'State'");
  ASSERT_NE(meta, std::string::npos);
  ASSERT_NE(user, std::string::npos);
  EXPECT_LT(meta, user) << sql;
}

TEST_F(TransformerTest, FlattenedPredicateOrderSelectiveFirst) {
  TransformOptions options;
  options.emit_mode = EmitMode::kFlattened;
  options.predicate_order = PredicateOrder::kSelectiveFirst;
  std::string sql = Transform(
      17, "SELECT beds FROM account WHERE hospital = 'State'", options);
  size_t meta = sql.find("tenant = 17");
  size_t user = sql.find("'State'");
  ASSERT_NE(meta, std::string::npos);
  ASSERT_NE(user, std::string::npos);
  EXPECT_GT(meta, user) << sql;
}

TEST_F(TransformerTest, SelfJoinGetsDistinctAliases) {
  TransformOptions options;
  options.emit_mode = EmitMode::kFlattened;
  std::string sql = Transform(
      17,
      "SELECT a.name, b.name FROM account a, account b WHERE a.aid = b.aid",
      options);
  // Two logical bindings => at least two distinct physical aliases.
  EXPECT_NE(sql.find("a$"), std::string::npos) << sql;
  EXPECT_NE(sql.find("b$"), std::string::npos) << sql;
}

TEST_F(TransformerTest, UnknownColumnRejected) {
  auto stmt = sql::ParseSelect("SELECT nosuch FROM account");
  ASSERT_TRUE(stmt.ok());
  QueryTransformer transformer(layout_.get(), TransformOptions());
  auto out = transformer.TransformSelect(17, **stmt);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kNotFound);
}

TEST_F(TransformerTest, UnknownTableRejected) {
  auto stmt = sql::ParseSelect("SELECT x FROM nosuch");
  ASSERT_TRUE(stmt.ok());
  QueryTransformer transformer(layout_.get(), TransformOptions());
  auto out = transformer.TransformSelect(17, **stmt);
  EXPECT_FALSE(out.ok());
}

TEST_F(TransformerTest, GroupByAndOrderByAreRewrittenToo) {
  TransformOptions options;
  options.emit_mode = EmitMode::kFlattened;
  std::string sql = Transform(
      17,
      "SELECT hospital, COUNT(*) FROM account GROUP BY hospital "
      "ORDER BY hospital",
      options);
  // No logical column names may survive in GROUP BY/ORDER BY.
  EXPECT_NE(sql.find("GROUP BY account$"), std::string::npos) << sql;
  EXPECT_NE(sql.find("ORDER BY account$"), std::string::npos) << sql;
}

/// The printed physical SQL must be executable verbatim: re-parsing the
/// ShowTransformed text and running it on the raw engine gives exactly
/// what the layer's Query path gives (printer/parser/transformer
/// round-trip through a real execution).
TEST_F(TransformerTest, TransformedSqlTextIsExecutable) {
  ASSERT_TRUE(layout_
                  ->Execute(17,
                            "INSERT INTO account (aid, name, hospital, beds) "
                            "VALUES (1, 'Acme', 'St. Mary', 135), "
                            "(2, 'Gump', 'State', 1042)")
                  .ok());
  const char* queries[] = {
      "SELECT beds FROM account WHERE hospital = 'State'",
      "SELECT aid, name, beds FROM account ORDER BY aid",
      "SELECT COUNT(*), SUM(beds) FROM account",
      "SELECT hospital, COUNT(*) FROM account GROUP BY hospital "
      "ORDER BY hospital",
  };
  for (EmitMode emit : {EmitMode::kNested, EmitMode::kFlattened}) {
    layout_->transform_options().emit_mode = emit;
    for (const char* q : queries) {
      auto via_layer = layout_->Query(17, q);
      ASSERT_TRUE(via_layer.ok()) << q;
      auto text = layout_->ShowTransformed(17, q);
      ASSERT_TRUE(text.ok()) << q;
      auto direct = db_.Query(*text);
      ASSERT_TRUE(direct.ok()) << *text << "\n"
                               << direct.status().ToString();
      ASSERT_EQ(via_layer->rows.size(), direct->rows.size()) << *text;
      for (size_t i = 0; i < via_layer->rows.size(); ++i) {
        for (size_t c = 0; c < via_layer->rows[i].size(); ++c) {
          EXPECT_EQ(via_layer->rows[i][c].Compare(direct->rows[i][c]), 0)
              << q << " row " << i << " col " << c;
        }
      }
    }
  }
}

TEST(BuildReconstructionTest, AtLeastOneSourceEvenWithoutColumns) {
  TableMapping mapping;
  PhysicalSource s;
  s.physical_table = "phys";
  s.partition.emplace_back("tenant", Value::Int32(1));
  s.row_column = "row";
  mapping.sources.push_back(std::move(s));
  auto stmt = BuildReconstruction(mapping, {}, {}, "_row");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->from.size(), 1u);
  ASSERT_EQ(stmt->items.size(), 1u);  // just _row
  EXPECT_EQ(stmt->items[0].alias, "_row");
}

}  // namespace
}  // namespace mapping
}  // namespace mtdb
