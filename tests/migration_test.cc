#include <gtest/gtest.h>

#include "core/migrator.h"
#include "mapping_test_util.h"

namespace mtdb {
namespace mapping {
namespace {

/// Migration between any pair of extensible layouts must preserve every
/// tenant's logical data exactly (§7: "migrate data from one
/// representation to another on-the-fly").
class MigrationTest
    : public ::testing::TestWithParam<std::tuple<LayoutKind, LayoutKind>> {};

TEST_P(MigrationTest, RoundTripPreservesLogicalData) {
  auto [from_kind, to_kind] = GetParam();
  AppSchema app = FigureFourSchema();

  Database from_db, to_db;
  auto from = MakeLayout(from_kind, &from_db, &app);
  auto to = MakeLayout(to_kind, &to_db, &app);
  ASSERT_TRUE(from->Bootstrap().ok());
  ASSERT_TRUE(to->Bootstrap().ok());
  ASSERT_TRUE(LoadFigureFourData(from.get()).ok());

  auto report = LayoutMigrator::MigrateAll(from.get(), to.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->tenants_migrated, 3);
  EXPECT_EQ(report->rows_migrated, 4);  // 2 + 1 + 1 accounts

  // Tenant 17's full logical view must match on both sides.
  for (TenantId tenant : {17, 35, 42}) {
    auto a = from->Query(tenant, "SELECT * FROM account ORDER BY aid");
    auto b = to->Query(tenant, "SELECT * FROM account ORDER BY aid");
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_EQ(a->columns, b->columns) << "tenant " << tenant;
    ASSERT_EQ(a->rows.size(), b->rows.size());
    for (size_t i = 0; i < a->rows.size(); ++i) {
      for (size_t c = 0; c < a->rows[i].size(); ++c) {
        EXPECT_EQ(a->rows[i][c].Compare(b->rows[i][c]), 0)
            << "tenant " << tenant << " row " << i << " col " << c;
      }
    }
  }

  // The target keeps working as a live layout (DML after migration).
  ASSERT_TRUE(
      to->Execute(17, "UPDATE account SET beds = 1 WHERE aid = 1").ok());
  auto updated = to->Query(17, "SELECT beds FROM account WHERE aid = 1");
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->rows[0][0].AsInt64(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, MigrationTest,
    ::testing::Values(
        std::make_tuple(LayoutKind::kPrivate, LayoutKind::kChunkFolding),
        std::make_tuple(LayoutKind::kChunkFolding, LayoutKind::kPrivate),
        std::make_tuple(LayoutKind::kExtension, LayoutKind::kChunk),
        std::make_tuple(LayoutKind::kChunk, LayoutKind::kUniversal),
        std::make_tuple(LayoutKind::kUniversal, LayoutKind::kPivot),
        std::make_tuple(LayoutKind::kPivot, LayoutKind::kExtension),
        std::make_tuple(LayoutKind::kVertical, LayoutKind::kChunk)),
    [](const ::testing::TestParamInfo<std::tuple<LayoutKind, LayoutKind>>&
           info) {
      return std::string(LayoutKindName(std::get<0>(info.param))) + "_to_" +
             LayoutKindName(std::get<1>(info.param));
    });

TEST(MigrationErrorTest, TargetTenantCollisionFails) {
  AppSchema app = FigureFourSchema();
  Database from_db, to_db;
  ChunkTableLayout from(&from_db, &app), to(&to_db, &app);
  ASSERT_TRUE(from.Bootstrap().ok());
  ASSERT_TRUE(to.Bootstrap().ok());
  ASSERT_TRUE(from.CreateTenant(1).ok());
  ASSERT_TRUE(to.CreateTenant(1).ok());  // already present in target
  EXPECT_FALSE(LayoutMigrator::MigrateTenant(&from, &to, 1).ok());
}

// --- §6.3 Trashcan deletes ---------------------------------------------

class TrashcanTest : public ::testing::Test {
 protected:
  TrashcanTest() : app_(FigureFourSchema()) {
    ChunkLayoutOptions options;
    options.trashcan = true;
    layout_ = std::make_unique<ChunkTableLayout>(&db_, &app_, options);
    EXPECT_TRUE(layout_->Bootstrap().ok());
    EXPECT_TRUE(LoadFigureFourData(layout_.get()).ok());
  }

  AppSchema app_;
  Database db_;
  std::unique_ptr<ChunkTableLayout> layout_;
};

TEST_F(TrashcanTest, DeleteHidesRowsWithoutDestroyingThem) {
  ASSERT_TRUE(layout_->trashcan_deletes());
  auto n = layout_->Execute(17, "DELETE FROM account WHERE aid = 2");
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 1);
  // Invisible to queries...
  auto visible = layout_->Query(17, "SELECT COUNT(*) FROM account");
  ASSERT_TRUE(visible.ok());
  EXPECT_EQ(visible->rows[0][0].AsInt64(), 1);
  // ...but the physical rows still exist (marked del=1).
  auto raw = db_.Query("SELECT COUNT(*) FROM chunkdata WHERE del = 1");
  ASSERT_TRUE(raw.ok());
  EXPECT_GT(raw->rows[0][0].AsInt64(), 0);
}

TEST_F(TrashcanTest, RestoreBringsRowsBack) {
  ASSERT_TRUE(layout_->Execute(17, "DELETE FROM account WHERE aid = 2").ok());
  auto restored = layout_->RestoreDeleted(17, "account");
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_GT(*restored, 0);
  auto r = layout_->Query(17, "SELECT name FROM account WHERE aid = 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "Gump");
}

TEST_F(TrashcanTest, RestoreIsTenantScoped) {
  ASSERT_TRUE(layout_->Execute(17, "DELETE FROM account WHERE aid = 2").ok());
  ASSERT_TRUE(layout_->Execute(35, "DELETE FROM account WHERE aid = 1").ok());
  // Restoring tenant 17 must not resurrect tenant 35's row.
  ASSERT_TRUE(layout_->RestoreDeleted(17, "account").ok());
  auto t35 = layout_->Query(35, "SELECT COUNT(*) FROM account");
  ASSERT_TRUE(t35.ok());
  EXPECT_EQ(t35->rows[0][0].AsInt64(), 0);
}

TEST_F(TrashcanTest, UpdateAfterDeleteTouchesNothing) {
  ASSERT_TRUE(layout_->Execute(17, "DELETE FROM account WHERE aid = 2").ok());
  auto n = layout_->Execute(17, "UPDATE account SET beds = 9 WHERE aid = 2");
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0);  // invisible rows are not updatable
}

TEST(TrashcanOffTest, RestoreRejectedWithoutTrashcan) {
  AppSchema app = FigureFourSchema();
  Database db;
  ChunkTableLayout layout(&db, &app);
  ASSERT_TRUE(layout.Bootstrap().ok());
  ASSERT_TRUE(layout.CreateTenant(1).ok());
  EXPECT_FALSE(layout.RestoreDeleted(1, "account").ok());
}

}  // namespace
}  // namespace mapping
}  // namespace mtdb
