#include "storage/table_heap.h"

#include <cassert>

namespace mtdb {

TableHeap::TableHeap(BufferPool* pool, InsertMode mode)
    : pool_(pool), insert_mode_(mode) {}

Result<Page*> TableHeap::PickPageForInsert(uint32_t need) {
  if (insert_mode_ == InsertMode::kFirstFit) {
    for (auto& [pid, free] : free_space_) {
      if (free >= need + 8) {  // 8: slack for the slot entry
        MTDB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(pid));
        SlottedPage sp(page);
        // Insert() compacts on demand, so potential space is insertable.
        if (sp.PotentialFreeSpace() >= need) return page;
        free_space_[pid] = sp.PotentialFreeSpace();
        pool_->UnpinPage(pid, false);
      }
    }
  } else if (!pages_.empty()) {
    MTDB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(pages_.back()));
    SlottedPage sp(page);
    if (sp.FreeSpace() >= need) return page;
    pool_->UnpinPage(pages_.back(), false);
  }
  // Allocate a fresh page and chain it.
  Page* page = pool_->NewPage(PageType::kHeap);
  SlottedPage sp(page);
  sp.Init(kInvalidPageId);
  if (first_page_ == kInvalidPageId) {
    first_page_ = page->id();
  } else {
    PageId prev = pages_.back();
    auto prev_page = pool_->FetchPage(prev);
    if (!prev_page.ok()) {
      // Unchain the fresh page again so a failed chain-link leaves the
      // heap exactly as it was.
      pool_->UnpinPage(page->id(), false);
      pool_->DeletePage(page->id());
      return prev_page.status();
    }
    SlottedPage(*prev_page).set_next_page(page->id());
    pool_->UnpinPage(prev, true);
  }
  pages_.push_back(page->id());
  free_space_[page->id()] = sp.PotentialFreeSpace();
  return page;
}

Result<Rid> TableHeap::Insert(const std::string& tuple) {
  const uint32_t page_payload = pool_->store()->page_size() - 64;
  if (tuple.size() > page_payload) {
    return Status::OutOfRange("tuple larger than a page: " +
                              std::to_string(tuple.size()));
  }
  MTDB_ASSIGN_OR_RETURN(
      Page * page, PickPageForInsert(static_cast<uint32_t>(tuple.size())));
  SlottedPage sp(page);
  int slot = sp.Insert(tuple.data(), static_cast<uint32_t>(tuple.size()));
  assert(slot >= 0);
  free_space_[page->id()] = sp.PotentialFreeSpace();
  Rid rid{page->id(), static_cast<uint16_t>(slot)};
  pool_->UnpinPage(page->id(), true);
  live_tuples_++;
  return rid;
}

Status TableHeap::Get(const Rid& rid, std::string* out) {
  MTDB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(rid.page_id));
  SlottedPage sp(page);
  uint32_t len = 0;
  const char* data = sp.Get(rid.slot, &len);
  if (data == nullptr) {
    pool_->UnpinPage(rid.page_id, false);
    return Status::NotFound("no tuple at rid");
  }
  out->assign(data, len);
  pool_->UnpinPage(rid.page_id, false);
  return Status::OK();
}

Status TableHeap::Update(Rid* rid, const std::string& tuple, bool* moved) {
  if (moved != nullptr) *moved = false;
  MTDB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(rid->page_id));
  SlottedPage sp(page);
  if (sp.Update(rid->slot, tuple.data(), static_cast<uint32_t>(tuple.size()))) {
    free_space_[page->id()] = sp.PotentialFreeSpace();
    pool_->UnpinPage(rid->page_id, true);
    return Status::OK();
  }
  // Does not fit in place: insert the new image elsewhere FIRST, then
  // drop the old slot. The old page stays pinned across the insert, so
  // the final delete is a pure in-memory edit that cannot fail — a
  // failed insert therefore leaves the original row fully intact.
  uint32_t len = 0;
  if (sp.Get(rid->slot, &len) == nullptr) {
    pool_->UnpinPage(rid->page_id, false);
    return Status::NotFound("no tuple at rid");
  }
  auto inserted = Insert(tuple);
  if (!inserted.ok()) {
    pool_->UnpinPage(rid->page_id, false);
    return inserted.status();
  }
  sp.Delete(rid->slot);
  free_space_[rid->page_id] = sp.PotentialFreeSpace();
  pool_->UnpinPage(rid->page_id, true);
  live_tuples_--;  // Insert() counted the new copy
  *rid = *inserted;
  if (moved != nullptr) *moved = true;
  return Status::OK();
}

Status TableHeap::Delete(const Rid& rid) {
  MTDB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(rid.page_id));
  SlottedPage sp(page);
  if (!sp.Delete(rid.slot)) {
    pool_->UnpinPage(rid.page_id, false);
    return Status::NotFound("no tuple at rid");
  }
  free_space_[page->id()] = sp.PotentialFreeSpace();
  pool_->UnpinPage(rid.page_id, true);
  live_tuples_--;
  return Status::OK();
}

Status TableHeap::AttachChain(PageId first_page) {
  pages_.clear();
  free_space_.clear();
  live_tuples_ = 0;
  first_page_ = first_page;
  PageId pid = first_page;
  while (pid != kInvalidPageId) {
    MTDB_ASSIGN_OR_RETURN(Page * page, pool_->FetchPage(pid));
    SlottedPage sp(page);
    pages_.push_back(pid);
    free_space_[pid] = sp.PotentialFreeSpace();
    live_tuples_ += sp.LiveCount();
    PageId next = sp.next_page();
    pool_->UnpinPage(pid, false);
    pid = next;
  }
  return Status::OK();
}

void TableHeap::Free() {
  for (PageId pid : pages_) {
    pool_->DeletePage(pid);
  }
  pages_.clear();
  free_space_.clear();
  first_page_ = kInvalidPageId;
  live_tuples_ = 0;
}

TableHeap::Iterator::Iterator(TableHeap* heap, size_t page_index)
    : heap_(heap), page_index_(page_index) {}

Result<bool> TableHeap::Iterator::Next(std::string* tuple, Rid* rid) {
  while (page_index_ < heap_->pages_.size()) {
    PageId pid = heap_->pages_[page_index_];
    MTDB_ASSIGN_OR_RETURN(Page * page, heap_->pool_->FetchPage(pid));
    SlottedPage sp(page);
    while (slot_ < sp.slot_count()) {
      uint32_t len = 0;
      const char* data = sp.Get(slot_, &len);
      uint16_t this_slot = slot_;
      slot_++;
      if (data != nullptr) {
        tuple->assign(data, len);
        *rid = Rid{pid, this_slot};
        heap_->pool_->UnpinPage(pid, false);
        return true;
      }
    }
    heap_->pool_->UnpinPage(pid, false);
    page_index_++;
    slot_ = 0;
  }
  return false;
}

}  // namespace mtdb
