file(REMOVE_RECURSE
  "CMakeFiles/bench_chunk_page_reads.dir/bench_chunk_page_reads.cc.o"
  "CMakeFiles/bench_chunk_page_reads.dir/bench_chunk_page_reads.cc.o.d"
  "bench_chunk_page_reads"
  "bench_chunk_page_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chunk_page_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
