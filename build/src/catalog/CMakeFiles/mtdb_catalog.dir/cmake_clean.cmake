file(REMOVE_RECURSE
  "CMakeFiles/mtdb_catalog.dir/catalog.cc.o"
  "CMakeFiles/mtdb_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/mtdb_catalog.dir/schema.cc.o"
  "CMakeFiles/mtdb_catalog.dir/schema.cc.o.d"
  "libmtdb_catalog.a"
  "libmtdb_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtdb_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
