#include "storage/page.h"

#include <vector>

namespace mtdb {

void SlottedPage::Init(PageId next_page) {
  Header* h = header();
  h->slot_count = 0;
  h->free_begin = sizeof(Header);
  h->free_end = static_cast<uint16_t>(page_->size());
  h->next_page = next_page;
}

uint32_t SlottedPage::FreeSpace() const {
  const Header* h = header();
  if (h->free_end < h->free_begin) return 0;
  uint32_t gap = h->free_end - h->free_begin;
  return gap > sizeof(Slot) ? gap - sizeof(Slot) : 0;
}

uint32_t SlottedPage::PotentialFreeSpace() const {
  const Header* h = header();
  uint32_t live_bytes = 0;
  for (uint16_t i = 0; i < h->slot_count; ++i) {
    live_bytes += slots()[i].length;
  }
  uint32_t used = static_cast<uint32_t>(sizeof(Header)) +
                  h->slot_count * static_cast<uint32_t>(sizeof(Slot)) +
                  live_bytes;
  uint32_t size = page_->size();
  uint32_t gap = size > used ? size - used : 0;
  return gap > sizeof(Slot) ? gap - static_cast<uint32_t>(sizeof(Slot)) : 0;
}

int SlottedPage::Insert(const char* tuple, uint32_t len) {
  Header* h = header();
  // Reuse a deleted slot's directory entry when possible.
  int free_slot = -1;
  for (uint16_t i = 0; i < h->slot_count; ++i) {
    if (slots()[i].length == 0) {
      free_slot = i;
      break;
    }
  }
  uint32_t needed = len + (free_slot < 0 ? sizeof(Slot) : 0);
  if (static_cast<uint32_t>(h->free_end - h->free_begin) < needed) {
    Compact();
    if (static_cast<uint32_t>(h->free_end - h->free_begin) < needed) {
      return -1;
    }
  }
  h->free_end = static_cast<uint16_t>(h->free_end - len);
  std::memcpy(page_->data() + h->free_end, tuple, len);
  int slot;
  if (free_slot >= 0) {
    slot = free_slot;
  } else {
    slot = h->slot_count;
    h->slot_count++;
    h->free_begin = static_cast<uint16_t>(h->free_begin + sizeof(Slot));
  }
  slots()[slot].offset = h->free_end;
  slots()[slot].length = static_cast<uint16_t>(len);
  return slot;
}

const char* SlottedPage::Get(uint16_t slot, uint32_t* len) const {
  const Header* h = header();
  if (slot >= h->slot_count) return nullptr;
  const Slot& s = slots()[slot];
  if (s.length == 0) return nullptr;
  *len = s.length;
  return page_->data() + s.offset;
}

bool SlottedPage::Delete(uint16_t slot) {
  Header* h = header();
  if (slot >= h->slot_count) return false;
  Slot& s = slots()[slot];
  if (s.length == 0) return false;
  s.length = 0;
  s.offset = 0;
  return true;
}

bool SlottedPage::Update(uint16_t slot, const char* tuple, uint32_t len) {
  Header* h = header();
  if (slot >= h->slot_count) return false;
  Slot& s = slots()[slot];
  if (s.length == 0) return false;
  if (len <= s.length) {
    std::memcpy(page_->data() + s.offset, tuple, len);
    s.length = static_cast<uint16_t>(len);
    return true;
  }
  // Try to place the longer image in the free area.
  uint32_t old_len = s.length;
  s.length = 0;  // temporarily treat as deleted so Compact reclaims it
  if (static_cast<uint32_t>(h->free_end - h->free_begin) < len) {
    Compact();
  }
  if (static_cast<uint32_t>(h->free_end - h->free_begin) < len) {
    s.length = static_cast<uint16_t>(old_len);  // restore; caller relocates
    return false;
  }
  h->free_end = static_cast<uint16_t>(h->free_end - len);
  std::memcpy(page_->data() + h->free_end, tuple, len);
  s.offset = h->free_end;
  s.length = static_cast<uint16_t>(len);
  return true;
}

uint16_t SlottedPage::LiveCount() const {
  const Header* h = header();
  uint16_t live = 0;
  for (uint16_t i = 0; i < h->slot_count; ++i) {
    if (slots()[i].length != 0) ++live;
  }
  return live;
}

void SlottedPage::Compact() {
  Header* h = header();
  // Collect live tuples, rewrite the data area from the end.
  struct LiveTuple {
    uint16_t slot;
    std::vector<char> bytes;
  };
  std::vector<LiveTuple> live;
  live.reserve(h->slot_count);
  for (uint16_t i = 0; i < h->slot_count; ++i) {
    Slot& s = slots()[i];
    if (s.length != 0) {
      live.push_back({i, std::vector<char>(page_->data() + s.offset,
                                           page_->data() + s.offset + s.length)});
    }
  }
  uint16_t end = static_cast<uint16_t>(page_->size());
  for (LiveTuple& t : live) {
    end = static_cast<uint16_t>(end - t.bytes.size());
    std::memcpy(page_->data() + end, t.bytes.data(), t.bytes.size());
    slots()[t.slot].offset = end;
  }
  h->free_end = end;
}

}  // namespace mtdb
