# Empty dependencies file for mtdb_common.
# This may be replaced when dependencies are built.
