#ifndef MTDB_STORAGE_BUFFER_POOL_H_
#define MTDB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"
#include "storage/page_store.h"

namespace mtdb {

/// Logical/physical access counters split by page type; Table 2's
/// "Bufferpool Hit Ratio Data / Index" rows come straight from these.
struct BufferPoolStats {
  uint64_t logical_reads_data = 0;
  uint64_t logical_reads_index = 0;
  uint64_t misses_data = 0;
  uint64_t misses_index = 0;
  uint64_t evictions = 0;

  uint64_t logical_reads() const {
    return logical_reads_data + logical_reads_index;
  }
  uint64_t misses() const { return misses_data + misses_index; }
  double HitRatioData() const {
    return logical_reads_data == 0
               ? 1.0
               : 1.0 - static_cast<double>(misses_data) /
                           static_cast<double>(logical_reads_data);
  }
  double HitRatioIndex() const {
    return logical_reads_index == 0
               ? 1.0
               : 1.0 - static_cast<double>(misses_index) /
                           static_cast<double>(logical_reads_index);
  }
};

/// LRU buffer pool over a PageStore. Capacity is in frames and can be
/// resized at runtime: the catalog shrinks it as per-table meta-data is
/// charged against the shared memory budget (the DB2 "4 KB per table"
/// behaviour of §1.1/§5).
class BufferPool {
 public:
  BufferPool(PageStore* store, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins and returns a page, reading through the store on a miss.
  /// Returns nullptr only if every frame is pinned and over capacity.
  Page* FetchPage(PageId id);

  /// Allocates a new page in the store and pins it.
  Page* NewPage(PageType type);

  /// Releases a pin; `dirty` marks the frame for write-back on eviction.
  void UnpinPage(PageId id, bool dirty);

  /// Drops a page from the pool and the store.
  void DeletePage(PageId id);

  /// Writes back all dirty frames.
  void FlushAll();

  /// Writes back and evicts every unpinned frame — used to run the
  /// paper's cold-cache experiments (Figure 11).
  void EvictAll();

  /// Adjusts the frame budget. Shrinking evicts LRU frames lazily.
  void SetCapacity(size_t frames);
  size_t capacity() const { return capacity_; }
  size_t frames_in_use() const { return frames_.size(); }

  const BufferPoolStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferPoolStats(); }

  PageStore* store() { return store_; }

 private:
  struct Frame {
    Page page;
    int pin_count = 0;
    bool dirty = false;
    std::list<PageId>::iterator lru_it;
    bool in_lru = false;
    explicit Frame(uint32_t page_size) : page(page_size) {}
  };

  /// Evicts LRU victims until frames_.size() <= capacity_. Honors pins.
  void EvictIfNeeded();
  void Touch(Frame* frame, PageId id);
  void FlushFrame(Frame* frame);

  PageStore* store_;
  size_t capacity_;
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;
  std::list<PageId> lru_;  // front = most recent
  BufferPoolStats stats_;
};

/// RAII pin guard.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    Release();
    pool_ = other.pool_;
    page_ = other.page_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.page_ = nullptr;
    return *this;
  }
  ~PageGuard() { Release(); }

  Page* get() { return page_; }
  Page* operator->() { return page_; }
  explicit operator bool() const { return page_ != nullptr; }
  void MarkDirty() { dirty_ = true; }

  void Release() {
    if (pool_ != nullptr && page_ != nullptr) {
      pool_->UnpinPage(page_->id(), dirty_);
    }
    pool_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace mtdb

#endif  // MTDB_STORAGE_BUFFER_POOL_H_
