#ifndef MTDB_CORE_TENANT_SESSION_H_
#define MTDB_CORE_TENANT_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/layout.h"

namespace mtdb {
namespace mapping {

/// The mapping layer's client front door, mirroring the engine's
/// Session: a lightweight per-worker handle bound to one tenant of one
/// layout. Testbed workers and examples hold one per thread; any number
/// may execute concurrently against the shared layout.
///
/// Like an engine Session, a TenantSession is NOT itself thread-safe —
/// it belongs to one worker thread at a time.
class TenantSession {
 public:
  TenantSession() = default;

  TenantSession(const TenantSession&) = delete;
  TenantSession& operator=(const TenantSession&) = delete;
  TenantSession(TenantSession&&) = default;
  TenantSession& operator=(TenantSession&&) = default;

  /// Runs a logical SELECT for this session's tenant.
  Result<QueryResult> Query(const std::string& sql,
                            const std::vector<Value>& params = {}) {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    statements_++;
    return layout_->Query(tenant_, sql, params);
  }

  /// Runs logical INSERT/UPDATE/DELETE; returns affected logical rows.
  Result<int64_t> Execute(const std::string& sql,
                          const std::vector<Value>& params = {}) {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    statements_++;
    return layout_->Execute(tenant_, sql, params);
  }

  /// Direct structured insert (bulk loaders): values in the tenant's
  /// effective column order; missing trailing columns NULL.
  Result<int64_t> InsertRow(const std::string& table, const Row& row) {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    statements_++;
    return layout_->InsertRow(tenant_, table, row);
  }

  /// Returns the transformed physical SQL (for inspection/examples).
  Result<std::string> ShowTransformed(const std::string& sql) {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    return layout_->ShowTransformed(tenant_, sql);
  }

  TenantId tenant() const { return tenant_; }
  SchemaMapping* layout() const { return layout_; }
  explicit operator bool() const { return layout_ != nullptr; }

  /// Statements this session has executed.
  uint64_t statements_executed() const { return statements_; }

 private:
  friend class SchemaMapping;
  TenantSession(SchemaMapping* layout, TenantId tenant)
      : layout_(layout), tenant_(tenant) {}

  SchemaMapping* layout_ = nullptr;
  TenantId tenant_ = -1;
  uint64_t statements_ = 0;
};

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_TENANT_SESSION_H_
