#ifndef MTDB_EXEC_EXPR_H_
#define MTDB_EXEC_EXPR_H_

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/result.h"
#include "common/value.h"

namespace mtdb {

/// Per-statement execution context: parameters bound at execution time
/// (SQL `?` placeholders) plus the statement's deadline, checked at the
/// executors' cooperative cancellation points (scan/join/agg loops).
struct ExecContext {
  std::vector<Value> params;
  deadline::Deadline deadline;

  /// OK while no deadline is set or time remains; kDeadlineExceeded
  /// past it. The no-deadline fast path is a single branch.
  Status CheckDeadline() const {
    if (!deadline.active) return Status::OK();
    if (std::chrono::steady_clock::now() >= deadline.at) {
      return Status::DeadlineExceeded("statement deadline exceeded");
    }
    return Status::OK();
  }
};

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kParam,
  kCompare,
  kAnd,
  kOr,
  kNot,
  kArithmetic,
  kIsNull,
  kCast,
  kLike,
};

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };

/// A bound (column references resolved to row positions) expression tree,
/// evaluated against a row of the operator's input schema.
class Expr {
 public:
  virtual ~Expr() = default;
  virtual ExprKind kind() const = 0;
  virtual Result<Value> Eval(const Row& row, const ExecContext& ctx) const = 0;
  virtual std::unique_ptr<Expr> Clone() const = 0;
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(Value v) : value_(std::move(v)) {}
  ExprKind kind() const override { return ExprKind::kLiteral; }
  Result<Value> Eval(const Row&, const ExecContext&) const override {
    return value_;
  }
  ExprPtr Clone() const override {
    return std::make_unique<LiteralExpr>(value_);
  }
  std::string ToString() const override { return value_.ToSqlLiteral(); }
  const Value& value() const { return value_; }

 private:
  Value value_;
};

class ColumnRefExpr final : public Expr {
 public:
  ColumnRefExpr(size_t index, std::string name)
      : index_(index), name_(std::move(name)) {}
  ExprKind kind() const override { return ExprKind::kColumnRef; }
  Result<Value> Eval(const Row& row, const ExecContext&) const override {
    if (index_ >= row.size()) {
      return Status::Internal("column index out of range: " + name_);
    }
    return row[index_];
  }
  ExprPtr Clone() const override {
    return std::make_unique<ColumnRefExpr>(index_, name_);
  }
  std::string ToString() const override { return name_; }
  size_t index() const { return index_; }
  const std::string& name() const { return name_; }
  void set_index(size_t i) { index_ = i; }

 private:
  size_t index_;
  std::string name_;
};

class ParamExpr final : public Expr {
 public:
  explicit ParamExpr(size_t ordinal) : ordinal_(ordinal) {}
  ExprKind kind() const override { return ExprKind::kParam; }
  Result<Value> Eval(const Row&, const ExecContext& ctx) const override {
    if (ordinal_ >= ctx.params.size()) {
      return Status::InvalidArgument("missing bind parameter " +
                                     std::to_string(ordinal_ + 1));
    }
    return ctx.params[ordinal_];
  }
  ExprPtr Clone() const override {
    return std::make_unique<ParamExpr>(ordinal_);
  }
  std::string ToString() const override { return "?"; }
  size_t ordinal() const { return ordinal_; }

 private:
  size_t ordinal_;
};

class CompareExpr final : public Expr {
 public:
  CompareExpr(CompareOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  ExprKind kind() const override { return ExprKind::kCompare; }
  Result<Value> Eval(const Row& row, const ExecContext& ctx) const override;
  ExprPtr Clone() const override {
    return std::make_unique<CompareExpr>(op_, left_->Clone(), right_->Clone());
  }
  std::string ToString() const override;
  CompareOp op() const { return op_; }
  const Expr* left() const { return left_.get(); }
  const Expr* right() const { return right_.get(); }

 private:
  CompareOp op_;
  ExprPtr left_, right_;
};

class AndExpr final : public Expr {
 public:
  AndExpr(ExprPtr left, ExprPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}
  ExprKind kind() const override { return ExprKind::kAnd; }
  Result<Value> Eval(const Row& row, const ExecContext& ctx) const override;
  ExprPtr Clone() const override {
    return std::make_unique<AndExpr>(left_->Clone(), right_->Clone());
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " AND " + right_->ToString() + ")";
  }
  const Expr* left() const { return left_.get(); }
  const Expr* right() const { return right_.get(); }

 private:
  ExprPtr left_, right_;
};

class OrExpr final : public Expr {
 public:
  OrExpr(ExprPtr left, ExprPtr right)
      : left_(std::move(left)), right_(std::move(right)) {}
  ExprKind kind() const override { return ExprKind::kOr; }
  Result<Value> Eval(const Row& row, const ExecContext& ctx) const override;
  ExprPtr Clone() const override {
    return std::make_unique<OrExpr>(left_->Clone(), right_->Clone());
  }
  std::string ToString() const override {
    return "(" + left_->ToString() + " OR " + right_->ToString() + ")";
  }

 private:
  ExprPtr left_, right_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr child) : child_(std::move(child)) {}
  ExprKind kind() const override { return ExprKind::kNot; }
  Result<Value> Eval(const Row& row, const ExecContext& ctx) const override;
  ExprPtr Clone() const override {
    return std::make_unique<NotExpr>(child_->Clone());
  }
  std::string ToString() const override {
    return "(NOT " + child_->ToString() + ")";
  }

 private:
  ExprPtr child_;
};

class ArithmeticExpr final : public Expr {
 public:
  ArithmeticExpr(ArithOp op, ExprPtr left, ExprPtr right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}
  ExprKind kind() const override { return ExprKind::kArithmetic; }
  Result<Value> Eval(const Row& row, const ExecContext& ctx) const override;
  ExprPtr Clone() const override {
    return std::make_unique<ArithmeticExpr>(op_, left_->Clone(),
                                            right_->Clone());
  }
  std::string ToString() const override;

 private:
  ArithOp op_;
  ExprPtr left_, right_;
};

class IsNullExpr final : public Expr {
 public:
  IsNullExpr(ExprPtr child, bool negated)
      : child_(std::move(child)), negated_(negated) {}
  ExprKind kind() const override { return ExprKind::kIsNull; }
  Result<Value> Eval(const Row& row, const ExecContext& ctx) const override {
    MTDB_ASSIGN_OR_RETURN(Value v, child_->Eval(row, ctx));
    return Value::Bool(negated_ ? !v.is_null() : v.is_null());
  }
  ExprPtr Clone() const override {
    return std::make_unique<IsNullExpr>(child_->Clone(), negated_);
  }
  std::string ToString() const override {
    return "(" + child_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL") +
           ")";
  }

 private:
  ExprPtr child_;
  bool negated_;
};

/// SQL LIKE with % (any run) and _ (any single char) wildcards.
class LikeExpr final : public Expr {
 public:
  LikeExpr(ExprPtr value, ExprPtr pattern, bool negated)
      : value_(std::move(value)), pattern_(std::move(pattern)),
        negated_(negated) {}
  ExprKind kind() const override { return ExprKind::kLike; }
  Result<Value> Eval(const Row& row, const ExecContext& ctx) const override;
  ExprPtr Clone() const override {
    return std::make_unique<LikeExpr>(value_->Clone(), pattern_->Clone(),
                                      negated_);
  }
  std::string ToString() const override {
    return "(" + value_->ToString() + (negated_ ? " NOT LIKE " : " LIKE ") +
           pattern_->ToString() + ")";
  }

 private:
  ExprPtr value_, pattern_;
  bool negated_;
};

/// True when `text` matches the SQL LIKE `pattern` (exposed for tests).
bool LikeMatch(const std::string& text, const std::string& pattern);

/// Converts its input to a target type — the query-transformation layer
/// wraps generic-structure data columns (e.g. the flexible VARCHAR
/// columns of Universal/Pivot Tables) so predicates see native types.
class CastExpr final : public Expr {
 public:
  CastExpr(ExprPtr child, TypeId target)
      : child_(std::move(child)), target_(target) {}
  ExprKind kind() const override { return ExprKind::kCast; }
  Result<Value> Eval(const Row& row, const ExecContext& ctx) const override {
    MTDB_ASSIGN_OR_RETURN(Value v, child_->Eval(row, ctx));
    return v.CastTo(target_);
  }
  ExprPtr Clone() const override {
    return std::make_unique<CastExpr>(child_->Clone(), target_);
  }
  std::string ToString() const override {
    return std::string("CAST(") + child_->ToString() + " AS " +
           TypeName(target_) + ")";
  }

 private:
  ExprPtr child_;
  TypeId target_;
};

/// Evaluates `expr` as a predicate: NULL counts as false (SQL semantics).
Result<bool> EvalPredicate(const Expr& expr, const Row& row,
                           const ExecContext& ctx);

/// Splits a predicate into its AND-ed conjuncts (each cloned).
void SplitConjuncts(const Expr& expr, std::vector<ExprPtr>* out);

/// Re-joins conjuncts into a single AND tree; returns nullptr when empty.
ExprPtr JoinConjuncts(std::vector<ExprPtr> conjuncts);

const char* CompareOpName(CompareOp op);

}  // namespace mtdb

#endif  // MTDB_EXEC_EXPR_H_
