#ifndef MTDB_ENGINE_PLANNER_H_
#define MTDB_ENGINE_PLANNER_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "exec/executor.h"
#include "sql/ast.h"

namespace mtdb {

/// Optimizer sophistication, modeling the §6.2 Test 1 contrast:
///  * kAdvanced (DB2-like): unnests conjunctive derived tables
///    (Fegaras & Maier rule N8), considers all conjuncts for index
///    selection (longest prefix), and greedily orders joins by estimated
///    selectivity.
///  * kNaive (MySQL-like): derived tables are fully materialized before
///    any outer predicate applies, joins run in the written FROM order,
///    and index selection on a table considers only the first indexable
///    conjunct in written order — so the SQL author's predicate order
///    matters, as the paper measured (a factor of 5).
enum class PlannerMode { kNaive, kAdvanced };

/// A compiled query: the executor tree plus a human-readable plan
/// rendering (the "debug/explain facility" used in Test 1/2).
struct PlannedQuery {
  ExecutorPtr exec;
  std::string plan_text;
};

/// Compiles a bound-free SELECT AST against the catalog.
Result<PlannedQuery> PlanSelect(const sql::SelectStmt& stmt, Catalog* catalog,
                                PlannerMode mode);

}  // namespace mtdb

#endif  // MTDB_ENGINE_PLANNER_H_
