#include "analysis/lockdep.h"

namespace mtdb {
namespace analysis {

std::vector<Diagnostic> DrainLockdepDiagnostics() {
  std::vector<Diagnostic> out;
  for (lockdep::Violation& v : lockdep::Drain()) {
    Diagnostic d;
    d.severity = Severity::kError;
    d.rule_id = std::move(v.rule_id);
    d.location = std::move(v.location);
    d.message = std::move(v.message);
    if (!v.backtrace.empty()) {
      d.message += "\n";
      d.message += v.backtrace;
    }
    out.push_back(std::move(d));
  }
  return out;
}

}  // namespace analysis
}  // namespace mtdb
