#include "engine/admission.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <mutex>

namespace mtdb {

namespace {

std::string TenantLabel(const char* prefix, TenantId tenant) {
  return std::string(prefix) + ".t" + std::to_string(tenant);
}

}  // namespace

AdmissionTicket::~AdmissionTicket() { Release(); }

AdmissionTicket& AdmissionTicket::operator=(AdmissionTicket&& o) noexcept {
  if (this != &o) {
    Release();
    ctrl_ = o.ctrl_;
    o.ctrl_ = nullptr;
  }
  return *this;
}

void AdmissionTicket::Release() {
  if (ctrl_ != nullptr) {
    ctrl_->Release();
    ctrl_ = nullptr;
  }
}

AdmissionController::AdmissionController(const AdmissionOptions& opts,
                                         MetricsRegistry* registry)
    : opts_(opts),
      burst_(opts.tenant_burst > 0.0 ? opts.tenant_burst
                                     : std::max(opts.tenant_rate, 1.0)),
      registry_(registry) {}

AdmissionController::~AdmissionController() = default;

AdmissionController::Bucket& AdmissionController::BucketFor(TenantId tenant) {
  auto [it, inserted] = buckets_.try_emplace(tenant);
  Bucket& b = it->second;
  if (inserted) {
    b.tokens = burst_;
    b.admitted = registry_->GetCounter(TenantLabel("admission.admitted", tenant));
    b.rejected = registry_->GetCounter(TenantLabel("admission.rejected", tenant));
    b.queued = registry_->GetCounter(TenantLabel("admission.queued", tenant));
    b.queue_wait_us =
        registry_->GetHistogram(TenantLabel("admission.queue_wait_us", tenant));
  }
  return b;
}

void AdmissionController::Refill(Bucket& b,
                                 std::chrono::steady_clock::time_point now) {
  if (!b.initialized) {
    b.initialized = true;
    b.last_refill = now;
    return;
  }
  double elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(now -
                                                                b.last_refill)
          .count();
  if (elapsed_s <= 0.0) return;
  b.tokens = std::min(burst_, b.tokens + elapsed_s * opts_.tenant_rate);
  b.last_refill = now;
}

Status AdmissionController::Admit(TenantId tenant, deadline::Deadline dl,
                                  AdmissionTicket* ticket) {
  // Disabled controllers admit everything for one predicted branch —
  // the front doors call through unconditionally.
  if (!opts_.enabled) return Status::OK();
  // Drop any slot the ticket already holds BEFORE taking mu_: its
  // Release() re-enters this controller's (non-recursive) latch.
  ticket->Release();
  const auto now = std::chrono::steady_clock::now();
  std::unique_lock<Latch> lk(mu_);
  Bucket& b = BucketFor(tenant);

  if (opts_.tenant_rate > 0.0) {
    Refill(b, now);
    if (b.tokens < 1.0) {
      int64_t retry_ms = static_cast<int64_t>(
          std::ceil((1.0 - b.tokens) / opts_.tenant_rate * 1000.0));
      retry_ms = std::max<int64_t>(retry_ms, 1);
      b.rejected->Add(1);
      return Status::ResourceExhausted(
          "tenant " + std::to_string(tenant) +
          " exceeded its statement rate; retry_after_ms=" +
          std::to_string(retry_ms));
    }
    b.tokens -= 1.0;
  }

  if (opts_.max_in_flight == 0 || in_flight_ < opts_.max_in_flight) {
    in_flight_++;
    b.admitted->Add(1);
    ticket->ctrl_ = this;
    return Status::OK();
  }

  if (queue_depth_ >= opts_.max_queue) {
    // Refund the token (the statement never ran), clamped to burst: a
    // concurrent Admit may have refilled the bucket during our stay.
    if (opts_.tenant_rate > 0.0) b.tokens = std::min(burst_, b.tokens + 1.0);
    b.rejected->Add(1);
    // A rough hint: one queue drain's worth of backlog ahead of us.
    int64_t retry_ms = static_cast<int64_t>(queue_depth_) + 1;
    return Status::ResourceExhausted(
        "admission queue is full (" + std::to_string(queue_depth_) +
        " waiting); retry_after_ms=" + std::to_string(retry_ms));
  }

  Waiter w;
  b.queue.push_back(&w);
  queue_depth_++;
  b.queued->Add(1);
  if (dl.active) {
    cv_.wait_until(lk, dl.at, [&] { return w.granted; });
  } else {
    cv_.wait(lk, [&] { return w.granted; });
  }
  if (!w.granted) {
    // Deadline passed while queued: abandon the slot and refund the
    // token (clamped to burst) — the statement never executed.
    auto pos = std::find(b.queue.begin(), b.queue.end(), &w);
    if (pos != b.queue.end()) b.queue.erase(pos);
    queue_depth_--;
    if (opts_.tenant_rate > 0.0) b.tokens = std::min(burst_, b.tokens + 1.0);
    return Status::DeadlineExceeded(
        "statement deadline exceeded while queued for admission");
  }
  uint64_t wait_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - now)
          .count());
  b.queue_wait_us->Record(wait_us);
  b.admitted->Add(1);
  ticket->ctrl_ = this;
  return Status::OK();
}

void AdmissionController::GrantNext() {
  if (queue_depth_ == 0) return;
  if (opts_.max_in_flight != 0 && in_flight_ >= opts_.max_in_flight) return;
  auto it = rr_valid_ ? buckets_.lower_bound(rr_cursor_) : buckets_.begin();
  if (it == buckets_.end()) it = buckets_.begin();
  // Two full rotations suffice: the first may only reset exhausted
  // per-round serve counts, the second must find a non-empty queue
  // (queue_depth_ > 0 guarantees one exists).
  for (size_t step = 0; step <= buckets_.size() * 2; ++step) {
    Bucket& b = it->second;
    if (!b.queue.empty() && b.served_in_round < std::max(b.weight, 1u)) {
      Waiter* w = b.queue.front();
      b.queue.pop_front();
      queue_depth_--;
      b.served_in_round++;
      w->granted = true;
      in_flight_++;
      rr_cursor_ = it->first;
      rr_valid_ = true;
      cv_.notify_all();
      return;
    }
    b.served_in_round = 0;
    ++it;
    if (it == buckets_.end()) it = buckets_.begin();
  }
}

void AdmissionController::Release() {
  std::lock_guard<Latch> lock(mu_);
  in_flight_--;
  GrantNext();
}

void AdmissionController::SetTenantWeight(TenantId tenant, uint32_t weight) {
  std::lock_guard<Latch> lock(mu_);
  BucketFor(tenant).weight = std::max(weight, 1u);
}

int64_t AdmissionController::RetryAfterMs(const Status& st) {
  static constexpr char kTag[] = "retry_after_ms=";
  size_t pos = st.message().find(kTag);
  if (pos == std::string::npos) return -1;
  return std::atoll(st.message().c_str() + pos + sizeof(kTag) - 1);
}

uint64_t AdmissionController::in_flight() const {
  std::lock_guard<Latch> lock(mu_);
  return in_flight_;
}

uint64_t AdmissionController::queue_depth() const {
  std::lock_guard<Latch> lock(mu_);
  return queue_depth_;
}

}  // namespace mtdb
