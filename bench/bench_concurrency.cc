// Worker-count sweep over the concurrent session engine: the same
// read-mostly MTD workload (Q-heavy mix, fully-shared Basic layout) run
// with 1, 2, 4 and 8 worker sessions against one database. With the
// statement big lock gone, worker threads overlap their simulated
// device stalls (buffer-pool misses against a small memory budget), so
// throughput should scale with the worker count even on one core —
// exactly the claim this benchmark guards: >= 3x at 8 workers over 1.
//
// Emits BENCH_concurrency.json (throughput per worker count, p95
// response times from merged per-worker SampleSets, speedup).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "core/basic_layout.h"
#include "core/tenant_session.h"
#include "engine/database.h"

namespace mtdb {
namespace bench {
namespace {

using mapping::AppSchema;
using mapping::BasicLayout;
using mapping::LogicalColumn;
using mapping::LogicalTable;
using mapping::TenantSession;

struct BenchConfig {
  int tenants = 8;
  int64_t rows_per_tenant = 4000;
  /// Total statements per run, split evenly across the workers so every
  /// sweep point does the same amount of work.
  int total_ops = 1200;
  /// Sized well below the data set so point lookups keep missing the
  /// buffer pool: the workload stays I/O-latency-bound, which is the
  /// regime the paper's testbed models (§5) and where session
  /// concurrency pays off.
  uint64_t memory_budget_bytes = 512 * 1024;
  /// Simulated device latency per physical page read while measuring.
  /// High enough that a single session is firmly latency-bound — the
  /// paper's NFS-appliance regime — rather than bound by this host's
  /// CPU, so the sweep isolates what session concurrency buys.
  uint64_t read_latency_ns = 1500000;  // 1.5 ms
  /// Q-heavy Figure 6-style mix: this percentage of actions are point
  /// SELECTs, the rest single-row INSERTs.
  int select_pct = 95;
  uint64_t seed = 42;
};

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) return std::atoi(env);
  return fallback;
}

/// The fully-shared schema under test: several CRM-style entity tables
/// (the MTD testbed's application shape), every tenant's rows in the
/// same shared heaps and indexes. Multiple tables matter: the engine
/// latches per table, so a writer convoys only the readers of its own
/// table — the scaling this benchmark measures is exactly that
/// granularity win over the old whole-engine statement lock.
const char* const kBenchTables[] = {"account", "contact", "lead", "asset"};
constexpr int kBenchTableCount = 4;

AppSchema BenchSchema() {
  AppSchema app;
  for (const char* name : kBenchTables) {
    LogicalTable t;
    t.name = name;
    t.columns = {{"id", TypeId::kInt64, true},
                 {"name", TypeId::kString, false},
                 {"region", TypeId::kString, false},
                 {"score", TypeId::kDouble, false}};
    Status st = app.AddTable(std::move(t));
    (void)st;
  }
  return app;
}

struct RunResult {
  int workers = 0;
  double elapsed_s = 0;
  uint64_t actions = 0;
  double throughput_per_s = 0;
  double p95_select_ms = 0;
  double p95_insert_ms = 0;
  double hit_ratio_data = 0;
};

Status LoadData(BasicLayout* layout, const BenchConfig& config) {
  Rng rng(config.seed);
  int64_t rows_per_table = config.rows_per_tenant / kBenchTableCount;
  for (TenantId t = 0; t < config.tenants; ++t) {
    MTDB_RETURN_IF_ERROR(layout->CreateTenant(t));
    TenantSession session = layout->OpenSession(t);
    for (const char* table : kBenchTables) {
      for (int64_t i = 0; i < rows_per_table; ++i) {
        Row row{Value::Int64(i), Value::String(rng.Word(8, 16)),
                Value::String(rng.Word(4, 8)),
                Value::Double(static_cast<double>(rng.Uniform(0, 1000)))};
        MTDB_RETURN_IF_ERROR(session.InsertRow(table, row).status());
      }
    }
  }
  return Status::OK();
}

Result<RunResult> RunSweepPoint(int workers, const BenchConfig& config) {
  EngineOptions options;
  options.memory_budget_bytes = config.memory_budget_bytes;
  options.read_latency_ns = 0;  // load fast, dial latency up afterwards
  Database db(options);
  AppSchema app = BenchSchema();
  BasicLayout layout(&db, &app);
  MTDB_RETURN_IF_ERROR(layout.Bootstrap());
  MTDB_RETURN_IF_ERROR(LoadData(&layout, config));

  // Measured phase: cold cache, simulated device latency on.
  db.ColdCache();
  db.ResetStats();
  db.page_store()->set_read_latency_ns(config.read_latency_ns);

  int per_worker = config.total_ops / workers;
  std::atomic<int> errors{0};
  std::vector<SampleSet> select_partials(workers), insert_partials(workers);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  auto start = std::chrono::steady_clock::now();
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w]() {
      Rng rng(config.seed + 1000 + static_cast<uint64_t>(w));
      // Every worker mixes all tenants (one session per tenant, like a
      // connection pool), so the aggregate working set — and thus the
      // buffer-pool hit ratio — is identical at every sweep point.
      std::vector<TenantSession> sessions;
      sessions.reserve(config.tenants);
      for (TenantId t = 0; t < config.tenants; ++t) {
        sessions.push_back(layout.OpenSession(t));
      }
      int64_t rows_per_table = config.rows_per_tenant / kBenchTableCount;
      for (int i = 0; i < per_worker; ++i) {
        TenantSession& session =
            sessions[rng.Uniform(0, config.tenants - 1)];
        bool is_select =
            rng.Uniform(0, 99) < static_cast<int64_t>(config.select_pct);
        std::string table = kBenchTables[rng.Uniform(0, kBenchTableCount - 1)];
        auto t0 = std::chrono::steady_clock::now();
        Status st;
        if (is_select) {
          st = session
                   .Query("SELECT * FROM " + table + " WHERE id = ?",
                          {Value::Int64(rng.Uniform(0, rows_per_table - 1))})
                   .status();
        } else {
          int64_t id = 1000000 + static_cast<int64_t>(w) * 100000 + i;
          st = session
                   .Execute("INSERT INTO " + table +
                                " (id, name, region, score) "
                                "VALUES (?, ?, ?, ?)",
                            {Value::Int64(id), Value::String(rng.Word(8, 16)),
                             Value::String(rng.Word(4, 8)),
                             Value::Double(1.0)})
                   .status();
        }
        auto t1 = std::chrono::steady_clock::now();
        if (!st.ok()) {
          errors.fetch_add(1);
          continue;
        }
        double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
        (is_select ? select_partials[w] : insert_partials[w]).Add(ms);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  auto end = std::chrono::steady_clock::now();
  if (errors.load() > 0) {
    return Status::Internal(std::to_string(errors.load()) +
                            " bench actions failed");
  }

  SampleSet selects, inserts;
  for (const SampleSet& s : select_partials) selects.Merge(s);
  for (const SampleSet& s : insert_partials) inserts.Merge(s);

  RunResult result;
  result.workers = workers;
  result.elapsed_s = std::chrono::duration<double>(end - start).count();
  result.actions = selects.count() + inserts.count();
  result.throughput_per_s =
      static_cast<double>(result.actions) / result.elapsed_s;
  result.p95_select_ms = selects.Quantile(0.95);
  result.p95_insert_ms = inserts.Quantile(0.95);
  result.hit_ratio_data = db.Stats().buffer.HitRatioData();
  return result;
}

int Main() {
  BenchConfig config;
  config.tenants = EnvInt("MTDB_BENCH_TENANTS", config.tenants);
  config.rows_per_tenant =
      EnvInt("MTDB_BENCH_ROWS", static_cast<int>(config.rows_per_tenant));
  config.total_ops = EnvInt("MTDB_BENCH_OPS", config.total_ops);
  config.select_pct = EnvInt("MTDB_BENCH_SELECT_PCT", config.select_pct);
  config.read_latency_ns =
      static_cast<uint64_t>(EnvInt(
          "MTDB_BENCH_READ_LATENCY_US",
          static_cast<int>(config.read_latency_ns / 1000))) *
      1000;

  const int kWorkerCounts[] = {1, 2, 4, 8};
  std::vector<RunResult> results;
  std::printf(
      "# concurrency sweep: %d tenants, %lld rows/tenant, %d ops, "
      "%.0f us/read, %d%% selects\n",
      config.tenants, static_cast<long long>(config.rows_per_tenant),
      config.total_ops, static_cast<double>(config.read_latency_ns) / 1000.0,
      config.select_pct);
  std::printf("%8s %12s %14s %12s %12s %10s\n", "workers", "elapsed[s]",
              "thruput[1/s]", "p95 sel[ms]", "p95 ins[ms]", "hit data");
  for (int workers : kWorkerCounts) {
    auto result = RunSweepPoint(workers, config);
    if (!result.ok()) {
      std::fprintf(stderr, "sweep point %d failed: %s\n", workers,
                   result.status().ToString().c_str());
      return 1;
    }
    results.push_back(*result);
    std::printf("%8d %12.2f %14.1f %12.2f %12.2f %9.1f%%\n", result->workers,
                result->elapsed_s, result->throughput_per_s,
                result->p95_select_ms, result->p95_insert_ms,
                result->hit_ratio_data * 100.0);
  }

  double speedup =
      results.back().throughput_per_s / results.front().throughput_per_s;
  std::printf("# speedup 8 vs 1 workers: %.2fx\n", speedup);

  const char* out_path = std::getenv("MTDB_BENCH_OUT");
  if (out_path == nullptr) out_path = "BENCH_concurrency.json";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"concurrency\",\n");
  std::fprintf(f,
               "  \"config\": {\"tenants\": %d, \"rows_per_tenant\": %lld, "
               "\"total_ops\": %d, \"memory_budget_bytes\": %llu, "
               "\"read_latency_ns\": %llu, \"select_pct\": %d, "
               "\"layout\": \"basic\"},\n",
               config.tenants, static_cast<long long>(config.rows_per_tenant),
               config.total_ops,
               static_cast<unsigned long long>(config.memory_budget_bytes),
               static_cast<unsigned long long>(config.read_latency_ns),
               config.select_pct);
  std::fprintf(f, "  \"runs\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::fprintf(f,
                 "    {\"workers\": %d, \"elapsed_s\": %.4f, \"actions\": "
                 "%llu, \"throughput_per_s\": %.2f, \"p95_select_ms\": %.3f, "
                 "\"p95_insert_ms\": %.3f, \"hit_ratio_data\": %.4f}%s\n",
                 r.workers, r.elapsed_s,
                 static_cast<unsigned long long>(r.actions),
                 r.throughput_per_s, r.p95_select_ms, r.p95_insert_ms,
                 r.hit_ratio_data, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_8_vs_1\": %.3f\n}\n", speedup);
  std::fclose(f);
  std::printf("# wrote %s\n", out_path);

  // The acceptance gate: the session engine must actually scale.
  if (speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: 8-worker speedup %.2fx is below the 3x floor\n",
                 speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace mtdb

int main() { return mtdb::bench::Main(); }
