#ifndef MTDB_SQL_AST_UTIL_H_
#define MTDB_SQL_AST_UTIL_H_

#include <functional>
#include <memory>
#include <vector>

#include "sql/ast.h"

namespace mtdb {
namespace sql {

// Statement cloning (SelectStmt::Clone lives on the struct itself). The
// mapping verifier captures emitted physical statements for later
// analysis and needs deep copies of every DML node.
std::unique_ptr<InsertStmt> CloneInsert(const InsertStmt& stmt);
std::unique_ptr<UpdateStmt> CloneUpdate(const UpdateStmt& stmt);
std::unique_ptr<DeleteStmt> CloneDelete(const DeleteStmt& stmt);

/// Deep-copies a parsed statement of any kind (DDL included).
Statement CloneStatement(const Statement& stmt);

/// First base table a statement touches: the DML target table, or for a
/// SELECT the first base table found depth-first through FROM lists
/// (derived tables included). Empty when none. Used to label EXPLAIN
/// MAPPING plan entries and trace spans.
std::string FirstTableOf(const Statement& stmt);
std::string FirstTableOf(const SelectStmt& stmt);

/// Visits every SELECT scope of `stmt` depth-first: the statement itself
/// plus every derived table in any FROM list, recursively.
void ForEachSelectScope(const SelectStmt& stmt,
                        const std::function<void(const SelectStmt&)>& fn);

/// Appends the top-level AND-ed conjuncts of `e` to `out` without
/// cloning (unlike SplitParsedConjuncts). A null expression yields none.
void CollectConjuncts(const ParsedExpr* e,
                      std::vector<const ParsedExpr*>* out);

/// Visits every expression node of the tree rooted at `e` (pre-order).
void ForEachExprNode(const ParsedExpr& e,
                     const std::function<void(const ParsedExpr&)>& fn);

/// Visits every expression owned directly by one SELECT scope (select
/// items, WHERE, GROUP BY, HAVING, ORDER BY) — derived tables excluded.
void ForEachScopeExpr(const SelectStmt& scope,
                      const std::function<void(const ParsedExpr&)>& fn);

/// If `e` is `<column> = <literal>` (either operand order), returns the
/// column-ref and literal operands; otherwise nulls.
struct ColumnEqualsLiteral {
  const ParsedExpr* column = nullptr;
  const ParsedExpr* literal = nullptr;
};
ColumnEqualsLiteral MatchColumnEqualsLiteral(const ParsedExpr& e);

/// If `e` is `<column a> = <column b>`, returns both refs; else nulls.
struct ColumnEqualsColumn {
  const ParsedExpr* left = nullptr;
  const ParsedExpr* right = nullptr;
};
ColumnEqualsColumn MatchColumnEqualsColumn(const ParsedExpr& e);

}  // namespace sql
}  // namespace mtdb

#endif  // MTDB_SQL_AST_UTIL_H_
