#ifndef MTDB_COMMON_METRICS_H_
#define MTDB_COMMON_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mtdb {

/// Accumulates response-time (or other scalar) samples and reports
/// order statistics. Used by the MTD testbed for the 95% quantiles and
/// baseline-compliance metrics of Table 2.
///
/// Thread-safety contract: a SampleSet is NOT thread-safe — not even
/// for concurrent Add() calls, and the accessors sort lazily through
/// `mutable` state, so even concurrent *reads* race. The intended
/// multi-threaded pattern is one SampleSet per worker thread, with the
/// driver calling Merge() on the partial sets strictly after joining
/// the workers (see testbed::ResultDatabase). This keeps the recording
/// hot path free of any synchronization.
class SampleSet {
 public:
  void Add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  void Merge(const SampleSet& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  double Mean() const;
  /// q in [0,1]; nearest-rank quantile. Returns 0 on an empty set.
  double Quantile(double q) const;
  double Min() const;
  double Max() const;
  /// Fraction of samples <= threshold (the "baseline compliance" test).
  double FractionBelow(double threshold) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  // Sorted lazily by the accessors.
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;

  void EnsureSorted() const;
};

}  // namespace mtdb

#endif  // MTDB_COMMON_METRICS_H_
