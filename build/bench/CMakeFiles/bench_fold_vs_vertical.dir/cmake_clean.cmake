file(REMOVE_RECURSE
  "CMakeFiles/bench_fold_vs_vertical.dir/bench_fold_vs_vertical.cc.o"
  "CMakeFiles/bench_fold_vs_vertical.dir/bench_fold_vs_vertical.cc.o.d"
  "bench_fold_vs_vertical"
  "bench_fold_vs_vertical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fold_vs_vertical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
