file(REMOVE_RECURSE
  "CMakeFiles/dml_mode_test.dir/dml_mode_test.cc.o"
  "CMakeFiles/dml_mode_test.dir/dml_mode_test.cc.o.d"
  "dml_mode_test"
  "dml_mode_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dml_mode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
