// Reproduces Figure 11: "Response Times with Cold Cache" — the buffer
// pool is flushed between runs, and a simulated device latency is charged
// per physical read. Cache locality now matters: one physical page holds
// many narrow-chunk tuples, so the narrow widths close the gap on (and
// can beat some of) the wider layouts.
#include <cstdio>
#include <cstdlib>

#include "chunk_bench_common.h"

namespace mtdb {
namespace bench {
namespace {

int Main() {
  ChunkBenchConfig config;
  config.parents = 200;  // cold runs are slower: smaller default
  if (const char* env = std::getenv("MTDB_BENCH_PARENTS")) {
    config.parents = std::atoi(env);
  }
  std::printf("=== Figure 11: Q2 response times, cold cache (ms) ===\n");

  std::vector<std::unique_ptr<Deployment>> deployments;
  {
    auto conv = MakeDeployment(config, 0);
    if (!conv.ok()) return 1;
    deployments.push_back(std::move(*conv));
  }
  for (int width : config.widths) {
    auto d = MakeDeployment(config, width);
    if (!d.ok()) return 1;
    deployments.push_back(std::move(*d));
  }
  // 20 microseconds per physical page read: the NFS-appliance stand-in.
  for (auto& d : deployments) {
    d->db->page_store()->set_read_latency_ns(20000);
  }

  std::printf("%-6s", "scale");
  for (const auto& d : deployments) std::printf(" %12s", d->label.c_str());
  std::printf("\n");

  std::vector<Value> params{Value::Int64(config.parents / 2)};
  for (int scale = 6; scale <= 90; scale += 12) {
    std::printf("%-6d", scale);
    for (const auto& d : deployments) {
      auto r = RunQuery(d.get(), BuildQ2(scale), params, /*reps=*/3,
                        /*cold=*/true);
      if (!r.ok()) {
        std::fprintf(stderr, "\nquery: %s\n", r.status().ToString().c_str());
        return 1;
      }
      std::printf(" %12.3f", r->mean_ms);
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape: conventional still fastest; narrow chunks\n"
      "benefit from cache locality (more tuples per physical page) and\n"
      "land below some wider chunk widths, unlike the warm case (Fig. 11).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace mtdb

int main() { return mtdb::bench::Main(); }
