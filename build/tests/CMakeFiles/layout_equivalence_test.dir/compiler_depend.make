# Empty compiler generated dependencies file for layout_equivalence_test.
# This may be replaced when dependencies are built.
