file(REMOVE_RECURSE
  "libmtdb_common.a"
)
