#ifndef MTDB_CORE_CHUNK_PARTITIONER_H_
#define MTDB_CORE_CHUNK_PARTITIONER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/logical_schema.h"

namespace mtdb {
namespace mapping {

/// Shape of a Chunk Table's data columns: how many columns of each
/// storage class one chunk row can hold (e.g. the paper's Chunk6 holds
/// 2 INTEGER + 2 DATE + 2 VARCHAR).
struct ChunkShape {
  int ints = 0;
  int doubles = 0;
  int dates = 0;
  int strs = 0;

  int CapacityFor(StorageClass cls) const;
  int total() const { return ints + doubles + dates + strs; }

  /// Generates the data-column names in a fixed order
  /// (int1..intN, dbl1.., date1.., str1..) with their types.
  std::vector<std::pair<std::string, TypeId>> DataColumns() const;

  /// A shape of `width` columns split evenly across the given classes
  /// (the §6.2 experiment's 3-column int/date/str triplets generalize).
  static ChunkShape Uniform(int width);
};

/// One column's placement inside a chunk.
struct ChunkSlot {
  size_t logical_column;        // index into the effective table
  std::string physical_column;  // e.g. "int2"
  StorageClass cls;
};

/// One chunk: a set of slots that will live in one chunk-table row.
struct ChunkAssignment {
  int32_t chunk_id = 0;
  bool indexed = false;  // goes to the indexed chunk table
  std::vector<ChunkSlot> slots;
};

/// Partitions the columns of an effective logical table into chunks:
///  * columns marked `indexed` each get their own single-column chunk in
///    the indexed chunk table (the paper's ChunkIndex),
///  * remaining columns greedily fill chunks of `shape` in declaration
///    order (the paper's tightly-packed groups),
///  * `first_column` lets Chunk Folding skip the columns that stay in
///    conventional tables.
std::vector<ChunkAssignment> PartitionIntoChunks(const EffectiveTable& table,
                                                 const ChunkShape& shape,
                                                 size_t first_column = 0);

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_CHUNK_PARTITIONER_H_
