file(REMOVE_RECURSE
  "CMakeFiles/bench_chunk_query_warm.dir/bench_chunk_query_warm.cc.o"
  "CMakeFiles/bench_chunk_query_warm.dir/bench_chunk_query_warm.cc.o.d"
  "bench_chunk_query_warm"
  "bench_chunk_query_warm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chunk_query_warm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
