#ifndef MTDB_ANALYSIS_ISOLATION_LINTER_H_
#define MTDB_ANALYSIS_ISOLATION_LINTER_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "catalog/catalog.h"
#include "common/types.h"
#include "core/table_mapping.h"
#include "sql/ast.h"

namespace mtdb {
namespace analysis {

/// The tenant context a physical statement was emitted under, plus what
/// the linter may assume about the physical world.
struct LintContext {
  /// The originating tenant every shared-table access must be confined to.
  TenantId tenant = 0;
  /// Identifies shared physical tables (those carrying a "tenant"
  /// meta-data column). Required.
  const Catalog* catalog = nullptr;
  /// When set, enables the reconstruction-alignment rule (I103) for the
  /// (tenant, table) this mapping describes. The rule assumes at most
  /// one logical binding of that table per SELECT scope (no self-joins),
  /// which holds for the verifier's probe queries.
  const mapping::TableMapping* mapping = nullptr;
};

/// Proves tenant isolation of one emitted physical SELECT: every base
/// reference to a shared table is dominated by a `tenant = <ctx>`
/// conjunct in its own scope (I101), the conjunct names the right tenant
/// (I102), and reconstruction joins are row-aligned (I103, needs
/// ctx.mapping). Appends findings to `out`.
void LintPhysicalSelect(const LintContext& ctx, const sql::SelectStmt& stmt,
                        std::vector<Diagnostic>* out);

/// Proves tenant isolation of one emitted physical statement. SELECTs
/// delegate to LintPhysicalSelect; UPDATE/DELETE on shared tables must
/// carry the tenant conjunct (I104) — the Phase (b) never-widen rule of
/// §6.3. INSERT and DDL have no predicate to check and pass vacuously.
void LintPhysicalStatement(const LintContext& ctx, const sql::Statement& stmt,
                           std::vector<Diagnostic>* out);

/// Proves lock confinement of one logical statement's full physical
/// stream (I105): every row lock the stream's DML takes on a shared
/// table must belong to a single tenant. A stream that couples locks of
/// two tenants lets one tenant's statement block — or deadlock with —
/// another tenant's, defeating the co-location isolation argument of §3.
/// Row locks are modeled from the statements themselves: the tenant
/// conjunct literal of an UPDATE/DELETE, and the tenant column literal
/// of each INSERT row. Statements whose tenant cannot be derived (no
/// conjunct, parameterized tenant) are I101/I104 findings, not I105's.
void LintPhysicalStream(const LintContext& ctx,
                        const std::vector<const sql::Statement*>& stream,
                        std::vector<Diagnostic>* out);

}  // namespace analysis
}  // namespace mtdb

#endif  // MTDB_ANALYSIS_ISOLATION_LINTER_H_
