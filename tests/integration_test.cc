#include <gtest/gtest.h>

#include "mapping_test_util.h"
#include "testbed/crm_schema.h"

namespace mtdb {
namespace {

using mapping::AppSchema;
using mapping::ChunkFoldingLayout;
using mapping::ChunkFoldingOptions;
using mapping::SchemaMapping;

/// End-to-end: the full CRM application schema running through Chunk
/// Folding, with multiple tenants, extensions, queries, and DML.
class CrmOnChunkFoldingTest : public ::testing::Test {
 protected:
  CrmOnChunkFoldingTest()
      : app_(testbed::BuildCrmAppSchema()), db_(EngineOptions()) {
    layout_ = std::make_unique<ChunkFoldingLayout>(&db_, &app_);
    EXPECT_TRUE(layout_->Bootstrap().ok());
    for (TenantId t = 1; t <= 3; ++t) {
      EXPECT_TRUE(layout_->CreateTenant(t).ok());
    }
    EXPECT_TRUE(layout_->EnableExtension(1, "healthcare_account").ok());
    EXPECT_TRUE(layout_->EnableExtension(2, "automotive_account").ok());
    EXPECT_TRUE(layout_->EnableExtension(2, "project_opportunity").ok());
  }

  AppSchema app_;
  Database db_;
  std::unique_ptr<SchemaMapping> layout_;
};

TEST_F(CrmOnChunkFoldingTest, MultiTenantCrmLifecycle) {
  // Load a few accounts per tenant with tenant-specific extensions.
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(layout_
                    ->Execute(1,
                              "INSERT INTO account (id, campaign_id, name, "
                              "status, hospital, beds) VALUES (?, 0, ?, "
                              "'open', ?, ?)",
                              {Value::Int64(i),
                               Value::String("clinic" + std::to_string(i)),
                               Value::String("hosp" + std::to_string(i)),
                               Value::Int32(i * 100)})
                    .ok());
    ASSERT_TRUE(layout_
                    ->Execute(2,
                              "INSERT INTO account (id, campaign_id, name, "
                              "status, dealers) VALUES (?, 0, ?, 'won', ?)",
                              {Value::Int64(i),
                               Value::String("motor" + std::to_string(i)),
                               Value::Int32(i)})
                    .ok());
    ASSERT_TRUE(layout_
                    ->Execute(3,
                              "INSERT INTO account (id, campaign_id, name, "
                              "status) VALUES (?, 0, ?, 'new')",
                              {Value::Int64(i),
                               Value::String("plain" + std::to_string(i))})
                    .ok());
  }

  // Tenant 1 queries across base + extension columns.
  auto r = layout_->Query(
      1, "SELECT name, beds FROM account WHERE beds >= 300 ORDER BY beds");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][1].AsInt64(), 300);

  // Tenant 2's extension is invisible to tenant 1 and vice versa.
  EXPECT_FALSE(layout_->Query(1, "SELECT dealers FROM account").ok());
  EXPECT_FALSE(layout_->Query(2, "SELECT beds FROM account").ok());

  // Aggregate per status across the shared physical tables.
  auto agg = layout_->Query(
      2, "SELECT status, COUNT(*) FROM account GROUP BY status");
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  ASSERT_EQ(agg->rows.size(), 1u);
  EXPECT_EQ(agg->rows[0][1].AsInt64(), 5);

  // Update through the mapping, then verify.
  ASSERT_TRUE(
      layout_->Execute(1, "UPDATE account SET beds = beds + 10 WHERE id = 2")
          .ok());
  auto beds = layout_->Query(1, "SELECT beds FROM account WHERE id = 2");
  ASSERT_TRUE(beds.ok());
  EXPECT_EQ(beds->rows[0][0].AsInt64(), 210);

  // Delete and confirm isolation.
  ASSERT_TRUE(layout_->Execute(3, "DELETE FROM account WHERE id = 1").ok());
  auto t3 = layout_->Query(3, "SELECT COUNT(*) FROM account");
  ASSERT_TRUE(t3.ok());
  EXPECT_EQ(t3->rows[0][0].AsInt64(), 4);
  auto t1 = layout_->Query(1, "SELECT COUNT(*) FROM account");
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t1->rows[0][0].AsInt64(), 5);
}

TEST_F(CrmOnChunkFoldingTest, ParentChildJoinThroughMapping) {
  ASSERT_TRUE(layout_
                  ->Execute(1,
                            "INSERT INTO account (id, campaign_id, name, "
                            "status) VALUES (1, 0, 'acme', 'open')")
                  .ok());
  for (int i = 1; i <= 4; ++i) {
    ASSERT_TRUE(layout_
                    ->Execute(1,
                              "INSERT INTO opportunity (id, account_id, name, "
                              "status, amount) VALUES (?, 1, ?, 'open', ?)",
                              {Value::Int64(i),
                               Value::String("opp" + std::to_string(i)),
                               Value::Double(i * 1000.0)})
                    .ok());
  }
  auto r = layout_->Query(
      1,
      "SELECT a.name, COUNT(*), SUM(o.amount) FROM account a, opportunity o "
      "WHERE o.account_id = a.id GROUP BY a.name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][1].AsInt64(), 4);
  EXPECT_DOUBLE_EQ(r->rows[0][2].AsDouble(), 10000.0);
}

TEST_F(CrmOnChunkFoldingTest, OnlineExtensionEnableIsVisibleImmediately) {
  ASSERT_TRUE(layout_
                  ->Execute(3,
                            "INSERT INTO account (id, campaign_id, name, "
                            "status) VALUES (1, 0, 'n', 's')")
                  .ok());
  // Before: the extension column does not exist for tenant 3.
  EXPECT_FALSE(layout_->Query(3, "SELECT beds FROM account").ok());
  // Enabling an extension is pure meta-data bookkeeping for chunked
  // layouts — no physical DDL, usable immediately (§3's on-line schema
  // modification advantage of generic structures).
  size_t tables_before = db_.Stats().tables;
  ASSERT_TRUE(layout_->EnableExtension(3, "healthcare_account").ok());
  EXPECT_EQ(db_.Stats().tables, tables_before);
  auto r = layout_->Query(3, "SELECT name, beds FROM account");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_TRUE(r->rows[0][1].is_null());  // old rows: extension NULL
  ASSERT_TRUE(
      layout_->Execute(3, "UPDATE account SET beds = 50 WHERE id = 1").ok());
  auto updated = layout_->Query(3, "SELECT beds FROM account WHERE id = 1");
  ASSERT_TRUE(updated.ok());
  EXPECT_EQ(updated->rows[0][0].AsInt64(), 50);
}

/// The consolidation story: physical table counts per layout for the
/// full CRM app with N tenants (the Figure 2 / §3 tradeoff).
TEST(ConsolidationTest, TableCountsAcrossLayouts) {
  using mapping::LayoutKind;
  AppSchema app = testbed::BuildCrmAppSchema();
  std::map<LayoutKind, size_t> tables;
  for (LayoutKind kind :
       {LayoutKind::kPrivate, LayoutKind::kExtension, LayoutKind::kUniversal,
        LayoutKind::kPivot, LayoutKind::kChunk, LayoutKind::kChunkFolding}) {
    Database db;
    auto layout = MakeLayout(kind, &db, &app);
    ASSERT_TRUE(layout->Bootstrap().ok());
    for (TenantId t = 0; t < 8; ++t) {
      ASSERT_TRUE(layout->CreateTenant(t).ok());
      if (t % 2 == 0) {
        ASSERT_TRUE(layout->EnableExtension(t, "healthcare_account").ok());
      }
    }
    tables[kind] = db.Stats().tables;
  }
  // Private: 10 tables x 8 tenants. Extension: 10 base + 1 ext. Others
  // are tenant-independent.
  EXPECT_EQ(tables[LayoutKind::kPrivate], 80u);
  EXPECT_EQ(tables[LayoutKind::kExtension], 11u);
  EXPECT_EQ(tables[LayoutKind::kUniversal], 1u);
  EXPECT_EQ(tables[LayoutKind::kPivot], 4u);
  EXPECT_EQ(tables[LayoutKind::kChunk], 2u);
  EXPECT_EQ(tables[LayoutKind::kChunkFolding], 12u);  // 10 base + 2 chunk
}

}  // namespace
}  // namespace mtdb
