file(REMOVE_RECURSE
  "CMakeFiles/mtdb_core.dir/basic_layout.cc.o"
  "CMakeFiles/mtdb_core.dir/basic_layout.cc.o.d"
  "CMakeFiles/mtdb_core.dir/chunk_folding_layout.cc.o"
  "CMakeFiles/mtdb_core.dir/chunk_folding_layout.cc.o.d"
  "CMakeFiles/mtdb_core.dir/chunk_layout.cc.o"
  "CMakeFiles/mtdb_core.dir/chunk_layout.cc.o.d"
  "CMakeFiles/mtdb_core.dir/chunk_partitioner.cc.o"
  "CMakeFiles/mtdb_core.dir/chunk_partitioner.cc.o.d"
  "CMakeFiles/mtdb_core.dir/extension_layout.cc.o"
  "CMakeFiles/mtdb_core.dir/extension_layout.cc.o.d"
  "CMakeFiles/mtdb_core.dir/heat.cc.o"
  "CMakeFiles/mtdb_core.dir/heat.cc.o.d"
  "CMakeFiles/mtdb_core.dir/layout.cc.o"
  "CMakeFiles/mtdb_core.dir/layout.cc.o.d"
  "CMakeFiles/mtdb_core.dir/logical_schema.cc.o"
  "CMakeFiles/mtdb_core.dir/logical_schema.cc.o.d"
  "CMakeFiles/mtdb_core.dir/migrator.cc.o"
  "CMakeFiles/mtdb_core.dir/migrator.cc.o.d"
  "CMakeFiles/mtdb_core.dir/pivot_layout.cc.o"
  "CMakeFiles/mtdb_core.dir/pivot_layout.cc.o.d"
  "CMakeFiles/mtdb_core.dir/private_layout.cc.o"
  "CMakeFiles/mtdb_core.dir/private_layout.cc.o.d"
  "CMakeFiles/mtdb_core.dir/transformer.cc.o"
  "CMakeFiles/mtdb_core.dir/transformer.cc.o.d"
  "CMakeFiles/mtdb_core.dir/universal_layout.cc.o"
  "CMakeFiles/mtdb_core.dir/universal_layout.cc.o.d"
  "libmtdb_core.a"
  "libmtdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
