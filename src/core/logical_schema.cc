#include "core/logical_schema.h"

#include "catalog/schema.h"

namespace mtdb {
namespace mapping {

std::optional<size_t> LogicalTable::Find(const std::string& column) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (IdentEquals(columns[i].name, column)) return i;
  }
  return std::nullopt;
}

std::optional<size_t> EffectiveTable::Find(const std::string& column) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (IdentEquals(columns[i].name, column)) return i;
  }
  return std::nullopt;
}

Status AppSchema::AddTable(LogicalTable table) {
  if (FindTable(table.name) != nullptr) {
    return Status::AlreadyExists("logical table exists: " + table.name);
  }
  if (table.columns.empty()) {
    return Status::InvalidArgument("logical table needs columns: " +
                                   table.name);
  }
  tables_.push_back(std::move(table));
  return Status::OK();
}

Status AppSchema::AddExtension(ExtensionDef ext) {
  if (FindExtension(ext.name) != nullptr) {
    return Status::AlreadyExists("extension exists: " + ext.name);
  }
  const LogicalTable* base = FindTable(ext.base_table);
  if (base == nullptr) {
    return Status::NotFound("extension base table missing: " + ext.base_table);
  }
  for (const LogicalColumn& c : ext.columns) {
    if (base->Find(c.name).has_value()) {
      return Status::AlreadyExists("extension column collides with base: " +
                                   c.name);
    }
  }
  extensions_.push_back(std::move(ext));
  return Status::OK();
}

const LogicalTable* AppSchema::FindTable(const std::string& name) const {
  for (const LogicalTable& t : tables_) {
    if (IdentEquals(t.name, name)) return &t;
  }
  return nullptr;
}

const ExtensionDef* AppSchema::FindExtension(const std::string& name) const {
  for (const ExtensionDef& e : extensions_) {
    if (IdentEquals(e.name, name)) return &e;
  }
  return nullptr;
}

std::vector<const ExtensionDef*> AppSchema::ExtensionsOf(
    const std::string& base_table) const {
  std::vector<const ExtensionDef*> out;
  for (const ExtensionDef& e : extensions_) {
    if (IdentEquals(e.base_table, base_table)) out.push_back(&e);
  }
  return out;
}

bool TenantState::HasExtension(const std::string& name) const {
  for (const std::string& e : extensions_) {
    if (IdentEquals(e, name)) return true;
  }
  return false;
}

void TenantState::EnableExtension(const std::string& name) {
  if (!HasExtension(name)) extensions_.push_back(name);
}

void TenantState::RemoveExtension(const std::string& name) {
  for (auto it = extensions_.begin(); it != extensions_.end(); ++it) {
    if (IdentEquals(*it, name)) {
      extensions_.erase(it);
      return;
    }
  }
}

Result<EffectiveTable> EffectiveSchemaOf(const AppSchema& app,
                                         const TenantState& tenant,
                                         const std::string& table) {
  const LogicalTable* base = app.FindTable(table);
  if (base == nullptr) {
    return Status::NotFound("no logical table: " + table);
  }
  EffectiveTable out;
  out.name = base->name;
  out.columns = base->columns;
  for (const std::string& ext_name : tenant.extensions()) {
    const ExtensionDef* ext = app.FindExtension(ext_name);
    if (ext == nullptr || !IdentEquals(ext->base_table, table)) continue;
    out.extension_boundaries.push_back(out.columns.size());
    out.columns.insert(out.columns.end(), ext->columns.begin(),
                       ext->columns.end());
  }
  return out;
}

}  // namespace mapping
}  // namespace mtdb
