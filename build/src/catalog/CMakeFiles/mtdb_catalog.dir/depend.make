# Empty dependencies file for mtdb_catalog.
# This may be replaced when dependencies are built.
