#include "storage/row_codec.h"

#include <cstring>

namespace mtdb {

namespace {

void AppendRaw(const void* src, size_t n, std::string* out) {
  out->append(reinterpret_cast<const char*>(src), n);
}

}  // namespace

Status RowCodec::Encode(const Row& row, std::string* out) const {
  if (row.size() != types_.size()) {
    return Status::InvalidArgument("row arity mismatch: have " +
                                   std::to_string(row.size()) + ", want " +
                                   std::to_string(types_.size()));
  }
  const size_t bitmap_bytes = (types_.size() + 7) / 8;
  const size_t bitmap_at = out->size();
  out->append(bitmap_bytes, '\0');
  for (size_t i = 0; i < types_.size(); ++i) {
    if (row[i].is_null()) {
      (*out)[bitmap_at + i / 8] |= static_cast<char>(1u << (i % 8));
      continue;
    }
    Result<Value> cast = row[i].CastTo(types_[i]);
    if (!cast.ok()) return cast.status();
    const Value& v = *cast;
    switch (types_[i]) {
      case TypeId::kBool: {
        char b = v.AsBool() ? 1 : 0;
        AppendRaw(&b, 1, out);
        break;
      }
      case TypeId::kInt32:
      case TypeId::kDate: {
        int32_t x = v.AsInt32();
        AppendRaw(&x, 4, out);
        break;
      }
      case TypeId::kInt64: {
        int64_t x = v.AsInt64();
        AppendRaw(&x, 8, out);
        break;
      }
      case TypeId::kDouble: {
        double x = v.AsDouble();
        AppendRaw(&x, 8, out);
        break;
      }
      case TypeId::kString: {
        const std::string& s = v.AsString();
        if (s.size() > 0xFFFF) {
          return Status::OutOfRange("string too long for storage: " +
                                    std::to_string(s.size()));
        }
        uint16_t n = static_cast<uint16_t>(s.size());
        AppendRaw(&n, 2, out);
        out->append(s);
        break;
      }
      case TypeId::kNull:
        return Status::Internal("column of type NULL");
    }
  }
  return Status::OK();
}

Result<Row> RowCodec::Decode(const char* data, uint32_t len) const {
  Row row;
  row.reserve(types_.size());
  const size_t bitmap_bytes = (types_.size() + 7) / 8;
  if (len < bitmap_bytes) return Status::Internal("row image too short");
  const char* bitmap = data;
  const char* p = data + bitmap_bytes;
  const char* end = data + len;
  for (size_t i = 0; i < types_.size(); ++i) {
    bool is_null = (bitmap[i / 8] >> (i % 8)) & 1;
    if (is_null) {
      row.push_back(Value::Null(types_[i]));
      continue;
    }
    switch (types_[i]) {
      case TypeId::kBool: {
        if (p + 1 > end) return Status::Internal("row image truncated");
        row.push_back(Value::Bool(*p != 0));
        p += 1;
        break;
      }
      case TypeId::kInt32: {
        if (p + 4 > end) return Status::Internal("row image truncated");
        int32_t x;
        std::memcpy(&x, p, 4);
        row.push_back(Value::Int32(x));
        p += 4;
        break;
      }
      case TypeId::kDate: {
        if (p + 4 > end) return Status::Internal("row image truncated");
        int32_t x;
        std::memcpy(&x, p, 4);
        row.push_back(Value::Date(x));
        p += 4;
        break;
      }
      case TypeId::kInt64: {
        if (p + 8 > end) return Status::Internal("row image truncated");
        int64_t x;
        std::memcpy(&x, p, 8);
        row.push_back(Value::Int64(x));
        p += 8;
        break;
      }
      case TypeId::kDouble: {
        if (p + 8 > end) return Status::Internal("row image truncated");
        double x;
        std::memcpy(&x, p, 8);
        row.push_back(Value::Double(x));
        p += 8;
        break;
      }
      case TypeId::kString: {
        if (p + 2 > end) return Status::Internal("row image truncated");
        uint16_t n;
        std::memcpy(&n, p, 2);
        p += 2;
        if (p + n > end) return Status::Internal("row image truncated");
        row.push_back(Value::String(std::string(p, n)));
        p += n;
        break;
      }
      case TypeId::kNull:
        return Status::Internal("column of type NULL");
    }
  }
  return row;
}

}  // namespace mtdb
