#ifndef MTDB_COMMON_KEY_ENCODING_H_
#define MTDB_COMMON_KEY_ENCODING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace mtdb {

/// Order-preserving ("memcomparable") encoding for composite B+Tree keys.
///
/// Each value is encoded with a one-byte tag (NULL sorts lowest) followed
/// by a payload whose raw byte order matches the value order:
///   * integers/dates: big-endian with the sign bit flipped,
///   * doubles: IEEE bits, sign-flipped for negatives,
///   * strings: bytes with 0x00 escaped as 0x00 0xFF, terminated 0x00 0x00,
///     so that prefixes sort before extensions and components never bleed
///     into one another.
///
/// A composite key is simply the concatenation of its encoded components,
/// which is what makes the (Tenant, Table, Chunk, Row) indexes of the
/// paper behave as partitioned B-Trees: the leading components partition
/// the key space into contiguous runs.
class KeyEncoder {
 public:
  /// Appends the encoding of `v` to `out`.
  static void Encode(const Value& v, std::string* out);

  /// Encodes a full composite key.
  static std::string EncodeKey(const std::vector<Value>& values);

  /// Encodes a key prefix and returns [lo, hi) bounds such that every
  /// composite key starting with this prefix satisfies lo <= key < hi.
  static void EncodePrefixRange(const std::vector<Value>& prefix,
                                std::string* lo, std::string* hi);
};

}  // namespace mtdb

#endif  // MTDB_COMMON_KEY_ENCODING_H_
