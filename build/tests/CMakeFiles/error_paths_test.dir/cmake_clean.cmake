file(REMOVE_RECURSE
  "CMakeFiles/error_paths_test.dir/error_paths_test.cc.o"
  "CMakeFiles/error_paths_test.dir/error_paths_test.cc.o.d"
  "error_paths_test"
  "error_paths_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_paths_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
