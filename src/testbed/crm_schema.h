#ifndef MTDB_TESTBED_CRM_SCHEMA_H_
#define MTDB_TESTBED_CRM_SCHEMA_H_

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "common/status.h"
#include "engine/database.h"
#include "core/logical_schema.h"

namespace mtdb {
namespace testbed {

/// One CRM entity table description (Figure 5). Every table has ~20
/// columns led by the entity id and the parent foreign keys; a primary
/// index on the entity id and a compound (tenant, id) index mirror §4.1.
struct CrmTable {
  std::string name;
  std::vector<std::string> parents;  // foreign keys: "<parent>_id"
};

/// The ten CRM tables in parent-before-child order.
const std::vector<CrmTable>& CrmTables();

/// Number of columns per CRM table (id + fks + filler up to this).
inline constexpr int kCrmColumnsPerTable = 20;

/// Builds the logical CRM application schema (base tables + a catalog of
/// vertical-industry extensions per §2/§3) for the mapping layer.
mapping::AppSchema BuildCrmAppSchema();

/// Returns the physical Schema of one CRM table for the shared-table
/// (schema-variability) testbed: tenant column + entity columns.
Schema CrmPhysicalSchema(const CrmTable& table);

/// Creates one instance of the 10-table CRM schema in `db`, with table
/// names suffixed "_i<instance>", plus the §4.1 indexes.
Status CreateCrmInstance(Database* db, int instance);

/// The physical table name of `table` in schema instance `instance`.
std::string CrmTableName(const std::string& table, int instance);

}  // namespace testbed
}  // namespace mtdb

#endif  // MTDB_TESTBED_CRM_SCHEMA_H_
