#include "testbed/mtd_testbed.h"

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/metrics_registry.h"
#include "testbed/data_generator.h"

namespace mtdb {
namespace testbed {

int InstancesFor(double variability, int num_tenants) {
  if (variability <= 0.0) return 1;
  int instances = static_cast<int>(variability * num_tenants + 0.5);
  return instances < 1 ? 1 : instances;
}

MtdTestbed::MtdTestbed(TestbedConfig config) : config_(config) {
  EngineOptions options;
  options.memory_budget_bytes = config_.memory_budget_bytes;
  options.read_latency_ns = config_.read_latency_ns;
  db_ = std::make_unique<Database>(options);
}

Status MtdTestbed::Setup() {
  instances_ = InstancesFor(config_.schema_variability, config_.num_tenants);
  for (int i = 0; i < instances_; ++i) {
    MTDB_RETURN_IF_ERROR(CreateCrmInstance(db_.get(), i));
  }
  DataGenerator gen(config_.seed);
  for (int t = 0; t < config_.num_tenants; ++t) {
    MTDB_RETURN_IF_ERROR(gen.LoadTenant(db_.get(), t % instances_, t,
                                        config_.rows_per_table_per_tenant));
  }
  db_->ResetStats();
  return Status::OK();
}

Result<TestbedReport> MtdTestbed::Run(
    const std::map<ActionClass, double>* baseline) {
  Controller controller(config_.seed + 1, config_.num_tenants);
  std::vector<ActionCard> deck = controller.Deal(config_.deck_size);

  // Deal cards round-robin to the worker sessions.
  std::vector<std::vector<ActionCard>> hands(config_.worker_sessions);
  for (size_t i = 0; i < deck.size(); ++i) {
    hands[i % hands.size()].push_back(deck[i]);
  }

  // One session and one private ResultDatabase per worker thread: the
  // hot path records samples lock-free; the partial sets are folded
  // together only after the threads join.
  Counter errors;
  std::vector<ResultDatabase> partials(hands.size());
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(hands.size());
  for (size_t w = 0; w < hands.size(); ++w) {
    threads.emplace_back([&, w]() {
      Worker worker(db_.get(), instances_, config_.rows_per_table_per_tenant,
                    config_.seed + 100 + w);
      for (const ActionCard& card : hands[w]) {
        Status st = worker.RunCard(card, &partials[w]);
        if (!st.ok()) errors.Add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const ResultDatabase& partial : partials) results_.Merge(partial);
  auto end = std::chrono::steady_clock::now();
  double elapsed = std::chrono::duration<double>(end - start).count();
  if (errors.value() > 0) {
    return Status::Internal(std::to_string(errors.value()) +
                            " worker actions failed");
  }

  TestbedReport report;
  report.schema_variability = config_.schema_variability;
  report.total_tables = static_cast<int>(db_->Stats().tables);
  report.elapsed_seconds = elapsed;
  report.throughput_per_min =
      static_cast<double>(results_.TotalActions()) / elapsed * 60.0;
  static const ActionClass kClasses[] = {
      ActionClass::kSelectLight, ActionClass::kSelectHeavy,
      ActionClass::kInsertLight, ActionClass::kInsertHeavy,
      ActionClass::kUpdateLight, ActionClass::kUpdateHeavy,
  };
  for (ActionClass c : kClasses) {
    report.p95_ms[c] = results_.Samples(c).Quantile(0.95);
  }
  EngineStats stats = db_->Stats();
  report.hit_ratio_data = stats.buffer.HitRatioData();
  report.hit_ratio_index = stats.buffer.HitRatioIndex();

  // Baseline compliance: percentage of all actions whose response time
  // is within the variability-0.0 baseline's per-class 95% quantile.
  if (baseline != nullptr) {
    uint64_t total = 0, within = 0;
    for (ActionClass c : kClasses) {
      auto it = baseline->find(c);
      if (it == baseline->end()) continue;
      const SampleSet& s = results_.Samples(c);
      total += s.count();
      within += static_cast<uint64_t>(s.FractionBelow(it->second) *
                                      static_cast<double>(s.count()) + 0.5);
    }
    report.baseline_compliance_pct =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(within) /
                         static_cast<double>(total);
  } else {
    report.baseline_compliance_pct = 95.0;  // by definition (§5)
  }
  return report;
}

void PrintReport(const TestbedReport& report) {
  std::printf("variability=%.2f tables=%d\n", report.schema_variability,
              report.total_tables);
  std::printf("  Baseline Compliance [%%]   %8.1f\n",
              report.baseline_compliance_pct);
  std::printf("  Throughput [1/min]        %10.1f\n",
              report.throughput_per_min);
  for (const auto& [action, p95] : report.p95_ms) {
    std::printf("  95%% Response %-14s %8.2f ms\n", ActionClassName(action),
                p95);
  }
  std::printf("  Bufferpool Hit Ratio Data  %7.2f %%\n",
              report.hit_ratio_data * 100.0);
  std::printf("  Bufferpool Hit Ratio Index %7.2f %%\n",
              report.hit_ratio_index * 100.0);
}

}  // namespace testbed
}  // namespace mtdb
