# Empty dependencies file for bench_chunk_page_reads.
# This may be replaced when dependencies are built.
