#include "core/chunk_layout.h"

namespace mtdb {
namespace mapping {

namespace {

/// Adds the typed data columns of `shape` to a schema.
void AddDataColumns(const ChunkShape& shape, Schema* schema) {
  for (const auto& [name, type] : shape.DataColumns()) {
    schema->AddColumn(Column{name, type, false});
  }
}

/// Short signature of an effective table's column list, used to name the
/// dedicated tables of the vertical (unfolded) variant so tenants with
/// identical extension sets share them.
std::string SchemaSignature(const EffectiveTable& eff) {
  uint64_t h = 1469598103934665603ull;
  for (const LogicalColumn& c : eff.columns) {
    for (char ch : IdentLower(c.name)) {
      h = (h ^ static_cast<unsigned char>(ch)) * 1099511628211ull;
    }
    h = (h ^ static_cast<unsigned char>(c.type)) * 1099511628211ull;
  }
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%08llx",
                static_cast<unsigned long long>(h & 0xFFFFFFFFull));
  return buf;
}

}  // namespace

Status ChunkTableLayout::Bootstrap() {
  trashcan_deletes_ = options_.trashcan;
  if (!options_.fold) return Status::OK();  // vertical tables are lazy

  // The shared data chunk table.
  {
    Schema schema;
    schema.AddColumn(Column{"tenant", TypeId::kInt32, true});
    schema.AddColumn(Column{"tbl", TypeId::kInt32, true});
    schema.AddColumn(Column{"chunk", TypeId::kInt32, true});
    schema.AddColumn(Column{"row", TypeId::kInt64, true});
    if (options_.trashcan) {
      schema.AddColumn(Column{"del", TypeId::kInt32, false});
    }
    AddDataColumns(options_.shape, &schema);
    MTDB_RETURN_IF_ERROR(db_->CreateTable(DataTableName(), std::move(schema)));
    MTDB_RETURN_IF_ERROR(db_->CreateIndex(
        DataTableName(), "ux_chunkdata_tcr", {"tenant", "tbl", "chunk", "row"},
        /*unique=*/true));
  }
  // The indexed chunk table: one int column carrying the value index
  // (the paper's ChunkIndex with its itcr index).
  {
    Schema schema;
    schema.AddColumn(Column{"tenant", TypeId::kInt32, true});
    schema.AddColumn(Column{"tbl", TypeId::kInt32, true});
    schema.AddColumn(Column{"chunk", TypeId::kInt32, true});
    schema.AddColumn(Column{"row", TypeId::kInt64, true});
    if (options_.trashcan) {
      schema.AddColumn(Column{"del", TypeId::kInt32, false});
    }
    schema.AddColumn(Column{"int1", TypeId::kInt64, false});
    schema.AddColumn(Column{"str1", TypeId::kString, false});
    MTDB_RETURN_IF_ERROR(db_->CreateTable(IndexTableName(), std::move(schema)));
    MTDB_RETURN_IF_ERROR(db_->CreateIndex(
        IndexTableName(), "ux_chunkidx_tcr", {"tenant", "tbl", "chunk", "row"},
        /*unique=*/true));
    MTDB_RETURN_IF_ERROR(db_->CreateIndex(
        IndexTableName(), "ix_chunkidx_itcr", {"int1", "tenant", "tbl", "chunk"},
        /*unique=*/false));
    MTDB_RETURN_IF_ERROR(db_->CreateIndex(
        IndexTableName(), "ix_chunkidx_stcr", {"str1", "tenant", "tbl", "chunk"},
        /*unique=*/false));
  }
  return Status::OK();
}

Status ChunkTableLayout::RecoverDerivedState() {
  // Bootstrap() is skipped on a recovered store, so re-derive what it
  // would have set: the trashcan flag, and (vertical variant) the set of
  // already-provisioned per-chunk tables from the recovered catalog.
  trashcan_deletes_ = options_.trashcan;
  if (!options_.fold) {
    provisioned_.clear();
    for (const std::string& name : db_->catalog()->TableNames()) {
      if (name.rfind("vp_", 0) == 0) provisioned_.insert(name);
    }
  }
  return Status::OK();
}

Result<std::string> ChunkTableLayout::EnsureVerticalTable(
    const std::string& table, const EffectiveTable& eff,
    const ChunkAssignment& chunk) {
  std::string physical = "vp_" + IdentLower(table) + "_" +
                         SchemaSignature(eff) + "_c" +
                         std::to_string(chunk.chunk_id);
  if (provisioned_.contains(physical)) return physical;

  Schema schema;
  schema.AddColumn(Column{"tenant", TypeId::kInt32, true});
  schema.AddColumn(Column{"tbl", TypeId::kInt32, true});
  schema.AddColumn(Column{"row", TypeId::kInt64, true});
  if (chunk.indexed) {
    schema.AddColumn(Column{"int1", TypeId::kInt64, false});
    schema.AddColumn(Column{"str1", TypeId::kString, false});
  } else {
    AddDataColumns(options_.shape, &schema);
  }
  MTDB_RETURN_IF_ERROR(db_->CreateTable(physical, std::move(schema)));
  MTDB_RETURN_IF_ERROR(db_->CreateIndex(physical, "ux_" + physical + "_tr",
                                        {"tenant", "tbl", "row"},
                                        /*unique=*/true));
  if (chunk.indexed) {
    MTDB_RETURN_IF_ERROR(db_->CreateIndex(physical, "ix_" + physical + "_itr",
                                          {"int1", "tenant", "tbl"},
                                          /*unique=*/false));
    MTDB_RETURN_IF_ERROR(db_->CreateIndex(physical, "ix_" + physical + "_str",
                                          {"str1", "tenant", "tbl"},
                                          /*unique=*/false));
  }
  provisioned_.insert(physical);
  return physical;
}

Result<std::unique_ptr<TableMapping>> ChunkTableLayout::BuildMapping(
    TenantId tenant, const std::string& table) {
  MTDB_ASSIGN_OR_RETURN(EffectiveTable eff, GetEffective(tenant, table));
  std::vector<ChunkAssignment> chunks =
      PartitionIntoChunks(eff, options_.shape);
  auto mapping = std::make_unique<TableMapping>();
  int32_t tbl = TableNumber(tenant, table);

  for (const ChunkAssignment& chunk : chunks) {
    PhysicalSource source;
    if (options_.fold) {
      source.physical_table =
          chunk.indexed ? IndexTableName() : DataTableName();
      source.partition.emplace_back("tenant", Value::Int32(tenant));
      source.partition.emplace_back("tbl", Value::Int32(tbl));
      source.partition.emplace_back("chunk", Value::Int32(chunk.chunk_id));
      if (options_.trashcan) {
        source.partition.emplace_back("del", Value::Int32(0));
      }
    } else {
      MTDB_ASSIGN_OR_RETURN(source.physical_table,
                            EnsureVerticalTable(table, eff, chunk));
      source.partition.emplace_back("tenant", Value::Int32(tenant));
      source.partition.emplace_back("tbl", Value::Int32(tbl));
    }
    source.row_column = "row";
    size_t src = mapping->sources.size();
    mapping->sources.push_back(std::move(source));

    for (const ChunkSlot& slot : chunk.slots) {
      const LogicalColumn& col = eff.columns[slot.logical_column];
      ColumnTarget target;
      target.source = src;
      target.physical_column = slot.physical_column;
      target.physical_type = PhysicalTypeOf(slot.cls);
      target.logical_type = col.type;
      mapping->columns[IdentLower(col.name)] = target;
    }
  }
  for (const LogicalColumn& c : eff.columns) {
    mapping->column_order.push_back(c.name);
  }
  return mapping;
}

}  // namespace mapping
}  // namespace mtdb
