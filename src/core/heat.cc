#include "core/heat.h"

#include <algorithm>

#include "catalog/schema.h"

namespace mtdb {
namespace mapping {

void HeatProfile::Record(const std::string& table, const std::string& column,
                         uint64_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  counts_[{IdentLower(table), IdentLower(column)}] += count;
  total_ += count;
}

uint64_t HeatProfile::ColumnHeatLocked(const std::string& table,
                                       const std::string& column) const {
  auto it = counts_.find({IdentLower(table), IdentLower(column)});
  return it == counts_.end() ? 0 : it->second;
}

uint64_t HeatProfile::ColumnHeat(const std::string& table,
                                 const std::string& column) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ColumnHeatLocked(table, column);
}

uint64_t HeatProfile::ExtensionHeat(const ExtensionDef& ext) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t heat = 0;
  for (const LogicalColumn& c : ext.columns) {
    heat += ColumnHeatLocked(ext.base_table, c.name);
  }
  return heat;
}

uint64_t HeatProfile::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

void HeatProfile::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counts_.clear();
  total_ = 0;
}

std::set<std::string> AdviseConventionalExtensions(const AppSchema& app,
                                                   const HeatProfile& heat,
                                                   int max_conventional) {
  std::vector<std::pair<uint64_t, std::string>> ranked;
  for (const ExtensionDef& ext : app.extensions()) {
    uint64_t h = heat.ExtensionHeat(ext);
    if (h > 0) ranked.emplace_back(h, IdentLower(ext.name));
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  std::set<std::string> out;
  for (const auto& [h, name] : ranked) {
    if (static_cast<int>(out.size()) >= max_conventional) break;
    out.insert(name);
  }
  return out;
}

}  // namespace mapping
}  // namespace mtdb
