file(REMOVE_RECURSE
  "CMakeFiles/mtdb_testbed.dir/crm_schema.cc.o"
  "CMakeFiles/mtdb_testbed.dir/crm_schema.cc.o.d"
  "CMakeFiles/mtdb_testbed.dir/data_generator.cc.o"
  "CMakeFiles/mtdb_testbed.dir/data_generator.cc.o.d"
  "CMakeFiles/mtdb_testbed.dir/mtd_testbed.cc.o"
  "CMakeFiles/mtdb_testbed.dir/mtd_testbed.cc.o.d"
  "CMakeFiles/mtdb_testbed.dir/workload.cc.o"
  "CMakeFiles/mtdb_testbed.dir/workload.cc.o.d"
  "libmtdb_testbed.a"
  "libmtdb_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtdb_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
