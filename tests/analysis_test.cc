// Tests for the static mapping verifier (src/analysis): deliberately
// corrupted mappings must fire their rules, deliberately unsafe physical
// statements must fail the isolation lint, and every stock layout must
// verify clean end-to-end.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/isolation_linter.h"
#include "analysis/layout_auditor.h"
#include "analysis/verifier.h"
#include "engine/database.h"
#include "mapping_test_util.h"
#include "sql/parser.h"

namespace mtdb {
namespace analysis {
namespace {

using mapping::ColumnTarget;
using mapping::PhysicalSource;
using mapping::TableMapping;

bool HasRule(const std::vector<Diagnostic>& diagnostics, const char* rule) {
  for (const Diagnostic& d : diagnostics) {
    if (d.rule_id == rule) return true;
  }
  return false;
}

std::string RulesOf(const std::vector<Diagnostic>& diagnostics) {
  return FormatDiagnostics(diagnostics);
}

// ---------------------------------------------------------------- audit

/// A database with the physical tables the hand-built mappings target.
std::unique_ptr<Database> MakePhysicalDb() {
  auto db = std::make_unique<Database>();
  EXPECT_TRUE(db->Execute("CREATE TABLE phys (tenant BIGINT, row BIGINT, "
                          "c1 VARCHAR(32), c2 VARCHAR(32))")
                  .ok());
  EXPECT_TRUE(db->Execute("CREATE TABLE phys2 (tenant BIGINT, row BIGINT, "
                          "c1 VARCHAR(32))")
                  .ok());
  EXPECT_TRUE(db->Execute("CREATE TABLE narrow (tenant BIGINT, row BIGINT, "
                          "c1 INT)")
                  .ok());
  return db;
}

/// A consistent single-source mapping of (aid BIGINT, name VARCHAR)
/// onto phys(c1, c2) for tenant 7.
TableMapping CleanMapping() {
  TableMapping m;
  PhysicalSource src;
  src.physical_table = "phys";
  src.partition = {{"tenant", Value::Int64(7)}};
  src.row_column = "row";
  m.sources.push_back(std::move(src));
  m.columns["aid"] = ColumnTarget{0, "c1", TypeId::kString, TypeId::kInt64};
  m.columns["name"] = ColumnTarget{0, "c2", TypeId::kString, TypeId::kString};
  m.column_order = {"aid", "name"};
  return m;
}

AuditInput CleanInput(const TableMapping* m, const Catalog* catalog) {
  AuditInput input;
  input.tenant = 7;
  input.table = "account";
  input.logical_columns = {{"aid", TypeId::kInt64},
                           {"name", TypeId::kString}};
  input.mapping = m;
  input.catalog = catalog;
  return input;
}

TEST(SlotWidthCompatibleTest, Lattice) {
  // VARCHAR holds anything (the paper's generic cast columns).
  EXPECT_TRUE(SlotWidthCompatible(TypeId::kInt64, TypeId::kString));
  EXPECT_TRUE(SlotWidthCompatible(TypeId::kDate, TypeId::kString));
  // BIGINT holds the int-like types.
  EXPECT_TRUE(SlotWidthCompatible(TypeId::kInt32, TypeId::kInt64));
  EXPECT_TRUE(SlotWidthCompatible(TypeId::kBool, TypeId::kInt64));
  // Narrowing is rejected.
  EXPECT_FALSE(SlotWidthCompatible(TypeId::kInt64, TypeId::kInt32));
  EXPECT_FALSE(SlotWidthCompatible(TypeId::kString, TypeId::kInt64));
  // DOUBLE cannot hold BIGINT exactly (53-bit mantissa).
  EXPECT_FALSE(SlotWidthCompatible(TypeId::kInt64, TypeId::kDouble));
  EXPECT_TRUE(SlotWidthCompatible(TypeId::kInt32, TypeId::kDouble));
}

TEST(LayoutAuditorTest, CleanMappingPasses) {
  auto db = MakePhysicalDb();
  TableMapping m = CleanMapping();
  std::vector<Diagnostic> out;
  AuditMapping(CleanInput(&m, db->catalog()), &out);
  EXPECT_TRUE(out.empty()) << RulesOf(out);
}

TEST(LayoutAuditorTest, FiresUnmappedColumn) {
  auto db = MakePhysicalDb();
  TableMapping m = CleanMapping();
  m.columns.erase("name");  // lost during folding
  m.column_order = {"aid"};
  std::vector<Diagnostic> out;
  AuditMapping(CleanInput(&m, db->catalog()), &out);
  EXPECT_TRUE(HasRule(out, kRuleUnmappedColumn)) << RulesOf(out);
}

TEST(LayoutAuditorTest, FiresSlotCollision) {
  auto db = MakePhysicalDb();
  TableMapping m = CleanMapping();
  // Both logical columns squeezed into the same physical slot.
  m.columns["name"] = ColumnTarget{0, "c1", TypeId::kString, TypeId::kString};
  std::vector<Diagnostic> out;
  AuditMapping(CleanInput(&m, db->catalog()), &out);
  EXPECT_TRUE(HasRule(out, kRuleSlotCollision)) << RulesOf(out);
}

TEST(LayoutAuditorTest, FiresColumnOrderMismatch) {
  auto db = MakePhysicalDb();
  TableMapping m = CleanMapping();
  m.column_order = {"aid"};  // name missing from the order
  std::vector<Diagnostic> out;
  AuditMapping(CleanInput(&m, db->catalog()), &out);
  EXPECT_TRUE(HasRule(out, kRuleColumnOrderMismatch)) << RulesOf(out);
}

TEST(LayoutAuditorTest, FiresTypeNarrowingChunkSlot) {
  auto db = MakePhysicalDb();
  TableMapping m;
  PhysicalSource src;
  src.physical_table = "narrow";
  src.partition = {{"tenant", Value::Int64(7)}};
  src.row_column = "row";
  m.sources.push_back(std::move(src));
  // BIGINT logical column routed into an INT physical slot.
  m.columns["aid"] = ColumnTarget{0, "c1", TypeId::kInt32, TypeId::kInt64};
  m.column_order = {"aid"};

  AuditInput input;
  input.tenant = 7;
  input.table = "account";
  input.logical_columns = {{"aid", TypeId::kInt64}};
  input.mapping = &m;
  input.catalog = db->catalog();
  std::vector<Diagnostic> out;
  AuditMapping(input, &out);
  EXPECT_TRUE(HasRule(out, kRuleTypeNarrowing)) << RulesOf(out);
}

TEST(LayoutAuditorTest, FiresOrphanSource) {
  auto db = MakePhysicalDb();
  TableMapping m = CleanMapping();
  PhysicalSource orphan;
  orphan.physical_table = "phys2";
  orphan.partition = {{"tenant", Value::Int64(7)}};
  orphan.row_column = "row";
  m.sources.push_back(std::move(orphan));  // no column routed here
  std::vector<Diagnostic> out;
  AuditMapping(CleanInput(&m, db->catalog()), &out);
  EXPECT_TRUE(HasRule(out, kRuleOrphanSource)) << RulesOf(out);
}

TEST(LayoutAuditorTest, FiresDanglingTable) {
  auto db = MakePhysicalDb();
  TableMapping m = CleanMapping();
  m.sources[0].physical_table = "no_such_table";
  std::vector<Diagnostic> out;
  AuditMapping(CleanInput(&m, db->catalog()), &out);
  EXPECT_TRUE(HasRule(out, kRuleDanglingTable)) << RulesOf(out);
}

TEST(LayoutAuditorTest, FiresPartialRowKey) {
  auto db = MakePhysicalDb();
  TableMapping m = CleanMapping();
  PhysicalSource second;
  second.physical_table = "phys2";
  second.partition = {{"tenant", Value::Int64(7)}};
  second.row_column = "";  // no row key: reconstruction cannot align
  m.sources.push_back(std::move(second));
  m.columns["name"] = ColumnTarget{1, "c1", TypeId::kString, TypeId::kString};
  std::vector<Diagnostic> out;
  AuditMapping(CleanInput(&m, db->catalog()), &out);
  EXPECT_TRUE(HasRule(out, kRulePartialRowKey)) << RulesOf(out);
}

TEST(LayoutAuditorTest, FiresSharedTableUnscoped) {
  auto db = MakePhysicalDb();
  TableMapping m = CleanMapping();
  m.sources[0].partition.clear();  // shared table, no tenant confinement
  std::vector<Diagnostic> out;
  AuditMapping(CleanInput(&m, db->catalog()), &out);
  EXPECT_TRUE(HasRule(out, kRuleSharedTableUnscoped)) << RulesOf(out);
}

TEST(LayoutAuditorTest, FiresWrongTenantPartition) {
  auto db = MakePhysicalDb();
  TableMapping m = CleanMapping();
  m.sources[0].partition = {{"tenant", Value::Int64(8)}};  // someone else
  std::vector<Diagnostic> out;
  AuditMapping(CleanInput(&m, db->catalog()), &out);
  EXPECT_TRUE(HasRule(out, kRuleSharedTableUnscoped)) << RulesOf(out);
}

TEST(LayoutAuditorTest, FiresDuplicateSource) {
  auto db = MakePhysicalDb();
  TableMapping m = CleanMapping();
  m.sources.push_back(m.sources[0]);  // identical table + partition
  m.columns["name"] = ColumnTarget{1, "c2", TypeId::kString, TypeId::kString};
  std::vector<Diagnostic> out;
  AuditMapping(CleanInput(&m, db->catalog()), &out);
  EXPECT_TRUE(HasRule(out, kRuleDuplicateSource)) << RulesOf(out);
}

TEST(LayoutAuditorTest, FiresMissingPhysicalColumn) {
  auto db = MakePhysicalDb();
  TableMapping m = CleanMapping();
  m.columns["name"] =
      ColumnTarget{0, "no_such_col", TypeId::kString, TypeId::kString};
  std::vector<Diagnostic> out;
  AuditMapping(CleanInput(&m, db->catalog()), &out);
  EXPECT_TRUE(HasRule(out, kRuleMissingPhysicalColumn)) << RulesOf(out);
}

// ----------------------------------------------------------- isolation

std::unique_ptr<sql::SelectStmt> MustParseSelect(const std::string& text) {
  auto parsed = sql::ParseSelect(text);
  EXPECT_TRUE(parsed.ok()) << text;
  return std::move(parsed).value();
}

TEST(IsolationLinterTest, FiresMissingTenantConjunct) {
  auto db = MakePhysicalDb();
  LintContext ctx;
  ctx.tenant = 7;
  ctx.catalog = db->catalog();

  auto unscoped = MustParseSelect("SELECT c1 FROM phys");
  std::vector<Diagnostic> out;
  LintPhysicalSelect(ctx, *unscoped, &out);
  EXPECT_TRUE(HasRule(out, kRuleMissingTenantConjunct)) << RulesOf(out);

  auto scoped = MustParseSelect("SELECT c1 FROM phys WHERE tenant = 7");
  out.clear();
  LintPhysicalSelect(ctx, *scoped, &out);
  EXPECT_TRUE(out.empty()) << RulesOf(out);
}

TEST(IsolationLinterTest, ConjunctUnderOrDoesNotDominate) {
  auto db = MakePhysicalDb();
  LintContext ctx;
  ctx.tenant = 7;
  ctx.catalog = db->catalog();

  // The tenant test is only one branch of an OR — not a dominating
  // conjunct; rows of other tenants still qualify.
  auto leaky =
      MustParseSelect("SELECT c1 FROM phys WHERE tenant = 7 OR c1 = 'x'");
  std::vector<Diagnostic> out;
  LintPhysicalSelect(ctx, *leaky, &out);
  EXPECT_TRUE(HasRule(out, kRuleMissingTenantConjunct)) << RulesOf(out);
}

TEST(IsolationLinterTest, FiresWrongTenantLiteral) {
  auto db = MakePhysicalDb();
  LintContext ctx;
  ctx.tenant = 7;
  ctx.catalog = db->catalog();

  auto other = MustParseSelect("SELECT c1 FROM phys WHERE tenant = 8");
  std::vector<Diagnostic> out;
  LintPhysicalSelect(ctx, *other, &out);
  EXPECT_TRUE(HasRule(out, kRuleWrongTenantLiteral)) << RulesOf(out);
}

TEST(IsolationLinterTest, ChecksDerivedTableScopes) {
  auto db = MakePhysicalDb();
  LintContext ctx;
  ctx.tenant = 7;
  ctx.catalog = db->catalog();

  // The §6.1 nested shape: the shared ref lives inside a derived table;
  // its scope must carry the conjunct even when the outer query has one
  // of its own.
  auto nested = MustParseSelect(
      "SELECT aid FROM (SELECT c1 aid FROM phys) a WHERE aid = 1");
  std::vector<Diagnostic> out;
  LintPhysicalSelect(ctx, *nested, &out);
  EXPECT_TRUE(HasRule(out, kRuleMissingTenantConjunct)) << RulesOf(out);

  auto sealed = MustParseSelect(
      "SELECT aid FROM (SELECT c1 aid FROM phys WHERE tenant = 7) a");
  out.clear();
  LintPhysicalSelect(ctx, *sealed, &out);
  EXPECT_TRUE(out.empty()) << RulesOf(out);
}

/// Two-chunk mapping over phys/phys2 for the alignment rule.
TableMapping TwoChunkMapping() {
  TableMapping m = CleanMapping();
  PhysicalSource second;
  second.physical_table = "phys2";
  second.partition = {{"tenant", Value::Int64(7)}};
  second.row_column = "row";
  m.sources.push_back(std::move(second));
  m.columns["name"] = ColumnTarget{1, "c1", TypeId::kString, TypeId::kString};
  return m;
}

TEST(IsolationLinterTest, FiresUnalignedReconstruction) {
  auto db = MakePhysicalDb();
  TableMapping m = TwoChunkMapping();
  LintContext ctx;
  ctx.tenant = 7;
  ctx.catalog = db->catalog();
  ctx.mapping = &m;

  // Both chunks referenced and tenant-confined, but no aligning join on
  // the row column: the reconstruction is a cross product.
  auto unaligned = MustParseSelect(
      "SELECT s0.c1, s1.c1 FROM phys s0, phys2 s1 "
      "WHERE s0.tenant = 7 AND s1.tenant = 7");
  std::vector<Diagnostic> out;
  LintPhysicalSelect(ctx, *unaligned, &out);
  EXPECT_TRUE(HasRule(out, kRuleUnalignedReconstruction)) << RulesOf(out);

  auto aligned = MustParseSelect(
      "SELECT s0.c1, s1.c1 FROM phys s0, phys2 s1 "
      "WHERE s0.tenant = 7 AND s1.tenant = 7 AND s0.row = s1.row");
  out.clear();
  LintPhysicalSelect(ctx, *aligned, &out);
  EXPECT_TRUE(out.empty()) << RulesOf(out);
}

sql::Statement MustParse(const std::string& text) {
  auto parsed = sql::Parse(text);
  EXPECT_TRUE(parsed.ok()) << text;
  return std::move(parsed).value();
}

TEST(IsolationLinterTest, FiresDmlTenantWidening) {
  auto db = MakePhysicalDb();
  LintContext ctx;
  ctx.tenant = 7;
  ctx.catalog = db->catalog();

  sql::Statement wide = MustParse("UPDATE phys SET c1 = 'x' WHERE row = 3");
  std::vector<Diagnostic> out;
  LintPhysicalStatement(ctx, wide, &out);
  EXPECT_TRUE(HasRule(out, kRuleDmlTenantWidening)) << RulesOf(out);

  sql::Statement confined = MustParse(
      "UPDATE phys SET c1 = 'x' WHERE tenant = 7 AND row = 3");
  out.clear();
  LintPhysicalStatement(ctx, confined, &out);
  EXPECT_TRUE(out.empty()) << RulesOf(out);

  sql::Statement wide_delete = MustParse("DELETE FROM phys WHERE row = 3");
  out.clear();
  LintPhysicalStatement(ctx, wide_delete, &out);
  EXPECT_TRUE(HasRule(out, kRuleDmlTenantWidening)) << RulesOf(out);
}

TEST(IsolationLinterTest, FiresCrossTenantLockCoupling) {
  auto db = MakePhysicalDb();
  LintContext ctx;
  ctx.tenant = 7;
  ctx.catalog = db->catalog();

  // A Phase (b) stream whose second chunk update locks another tenant's
  // rows: the statement couples tenant 7's and tenant 8's row locks.
  sql::Statement a = MustParse(
      "UPDATE phys SET c1 = 'x' WHERE tenant = 7 AND row = 3");
  sql::Statement b = MustParse(
      "UPDATE phys2 SET c1 = 'y' WHERE tenant = 8 AND row = 3");
  std::vector<Diagnostic> out;
  LintPhysicalStream(ctx, {&a, &b}, &out);
  EXPECT_TRUE(HasRule(out, kRuleCrossTenantLockCoupling)) << RulesOf(out);

  // Same stream confined to one tenant: clean.
  sql::Statement b_ok = MustParse(
      "UPDATE phys2 SET c1 = 'y' WHERE tenant = 7 AND row = 3");
  out.clear();
  LintPhysicalStream(ctx, {&a, &b_ok}, &out);
  EXPECT_TRUE(out.empty()) << RulesOf(out);
}

TEST(IsolationLinterTest, LockCouplingSeesInsertLiterals) {
  auto db = MakePhysicalDb();
  LintContext ctx;
  ctx.tenant = 7;
  ctx.catalog = db->catalog();

  // INSERT routes by value: the tenant column literal names the rows
  // the insert locks. Mixing tenants inside one stream is coupling.
  sql::Statement ins = MustParse(
      "INSERT INTO phys (tenant, row, c1) VALUES (7, 1, 'a')");
  sql::Statement foreign = MustParse(
      "INSERT INTO phys2 (tenant, row, c1) VALUES (9, 1, 'b')");
  std::vector<Diagnostic> out;
  LintPhysicalStream(ctx, {&ins, &foreign}, &out);
  EXPECT_TRUE(HasRule(out, kRuleCrossTenantLockCoupling)) << RulesOf(out);

  // A single multi-row INSERT spanning tenants couples on its own.
  sql::Statement multi = MustParse(
      "INSERT INTO phys (tenant, row, c1) VALUES (7, 1, 'a'), (8, 2, 'b')");
  out.clear();
  LintPhysicalStream(ctx, {&multi}, &out);
  EXPECT_TRUE(HasRule(out, kRuleCrossTenantLockCoupling)) << RulesOf(out);

  // Private-table DML and tenant-confined statements stay clean.
  sql::Statement same = MustParse(
      "INSERT INTO phys2 (tenant, row, c1) VALUES (7, 1, 'b')");
  out.clear();
  LintPhysicalStream(ctx, {&ins, &same}, &out);
  EXPECT_TRUE(out.empty()) << RulesOf(out);
}

TEST(IsolationLinterTest, PrivateTablesPassVacuously) {
  auto db = std::make_unique<Database>();
  ASSERT_TRUE(db->Execute("CREATE TABLE t7_account (aid BIGINT, "
                          "name VARCHAR(32))")
                  .ok());
  LintContext ctx;
  ctx.tenant = 7;
  ctx.catalog = db->catalog();

  // No tenant column => not shared => nothing to prove.
  auto select = MustParseSelect("SELECT aid FROM t7_account");
  std::vector<Diagnostic> out;
  LintPhysicalSelect(ctx, *select, &out);
  EXPECT_TRUE(out.empty()) << RulesOf(out);
}

// ------------------------------------------------------------ verifier

TEST(VerifierTest, AllStockLayoutsVerifyClean) {
  using mapping::LayoutKind;
  for (LayoutKind kind :
       {LayoutKind::kBasic, LayoutKind::kPrivate, LayoutKind::kExtension,
        LayoutKind::kUniversal, LayoutKind::kPivot, LayoutKind::kChunk,
        LayoutKind::kVertical, LayoutKind::kChunkFolding}) {
    SCOPED_TRACE(mapping::LayoutKindName(kind));
    mapping::AppSchema app = mapping::FigureFourSchema();
    Database db;
    auto layout = mapping::MakeLayout(kind, &db, &app);
    ASSERT_TRUE(layout->Bootstrap().ok());
    if (kind == LayoutKind::kBasic) {
      // Basic cannot host extensions (the paper's point) — load the
      // base-schema subset of the Figure 4 data instead.
      for (TenantId tenant : {17, 35, 42}) {
        ASSERT_TRUE(layout->CreateTenant(tenant).ok());
        ASSERT_TRUE(layout
                        ->Execute(tenant, "INSERT INTO account (aid, name) "
                                          "VALUES (1, 'Acme')")
                        .ok());
      }
    } else {
      ASSERT_TRUE(mapping::LoadFigureFourData(layout.get()).ok());
    }

    Verifier verifier(layout.get());
    auto diagnostics = verifier.Run();
    ASSERT_TRUE(diagnostics.ok());
    EXPECT_FALSE(HasErrors(*diagnostics)) << FormatDiagnostics(*diagnostics);
  }
}

TEST(VerifierTest, AuditCatchesLiveCorruption) {
  // Bootstrap a real layout, then corrupt the physical world underneath
  // it: dropping a chunk table must surface as a dangling-table error.
  mapping::AppSchema app = mapping::FigureFourSchema();
  Database db;
  auto layout =
      mapping::MakeLayout(mapping::LayoutKind::kUniversal, &db, &app);
  ASSERT_TRUE(layout->Bootstrap().ok());
  ASSERT_TRUE(mapping::LoadFigureFourData(layout.get()).ok());

  auto mapping = layout->Mapping(17, "account");
  ASSERT_TRUE(mapping.ok());
  const std::string physical = (*mapping)->sources[0].physical_table;
  ASSERT_TRUE(db.Execute("DROP TABLE " + physical).ok());

  auto diagnostics = AuditLayout(layout.get());
  ASSERT_TRUE(diagnostics.ok());
  EXPECT_TRUE(HasRule(*diagnostics, kRuleDanglingTable))
      << FormatDiagnostics(*diagnostics);
}

}  // namespace
}  // namespace analysis
}  // namespace mtdb
