#ifndef MTDB_CORE_TABLE_MAPPING_H_
#define MTDB_CORE_TABLE_MAPPING_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/value.h"

namespace mtdb {
namespace mapping {

/// One physical table holding a slice (chunk) of a logical table's
/// columns for one tenant, together with the partition predicate that
/// confines it (e.g. Tenant = 17 AND Tbl = 0 AND Chunk = 1).
struct PhysicalSource {
  std::string physical_table;
  /// Equality conjuncts on meta-data columns selecting this partition.
  std::vector<std::pair<std::string, Value>> partition;
  /// Name of the row-alignment meta column ("row"); empty when this
  /// source has no row column (Private Table Layout).
  std::string row_column;
};

/// Where one logical column lives.
struct ColumnTarget {
  size_t source = 0;            // index into TableMapping::sources
  std::string physical_column;  // name inside the physical table
  TypeId physical_type = TypeId::kNull;
  TypeId logical_type = TypeId::kNull;

  bool NeedsCast() const { return physical_type != logical_type; }
};

/// The complete physical mapping of one (tenant, logical table):
/// every chunk/source plus the per-column routing. Built by each layout;
/// consumed by the shared query/DML transformation machinery.
struct TableMapping {
  std::vector<PhysicalSource> sources;
  /// logical column name (lower-cased) -> target.
  std::unordered_map<std::string, ColumnTarget> columns;
  /// Logical column names in declaration order (for SELECT * expansion
  /// and full-row INSERT routing).
  std::vector<std::string> column_order;
};

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_TABLE_MAPPING_H_
