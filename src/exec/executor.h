#ifndef MTDB_EXEC_EXECUTOR_H_
#define MTDB_EXEC_EXECUTOR_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/expr.h"

namespace mtdb {

/// Names and types of the rows an executor produces.
struct OutputSchema {
  std::vector<std::string> names;
  std::vector<TypeId> types;

  size_t size() const { return names.size(); }
};

/// Volcano-style iterator. Init() may be called again to restart the
/// operator (used by nested-loop joins).
class Executor {
 public:
  virtual ~Executor() = default;

  virtual Status Init(const ExecContext& ctx) = 0;
  /// Produces the next row; returns false at end of stream.
  virtual Result<bool> Next(Row* out, const ExecContext& ctx) = 0;

  const OutputSchema& schema() const { return schema_; }

  /// RID of the most recently returned base-table row, when this executor
  /// is a base-table scan (used by UPDATE/DELETE); nullptr otherwise.
  virtual const Rid* current_rid() const { return nullptr; }

 protected:
  OutputSchema schema_;
};

using ExecutorPtr = std::unique_ptr<Executor>;

/// Full-table scan with an optional pushed-down predicate.
class SeqScanExecutor final : public Executor {
 public:
  SeqScanExecutor(TableInfo* table, ExprPtr predicate);
  Status Init(const ExecContext& ctx) override;
  Result<bool> Next(Row* out, const ExecContext& ctx) override;
  const Rid* current_rid() const override { return &rid_; }

 private:
  TableInfo* table_;
  ExprPtr predicate_;
  std::unique_ptr<TableHeap::Iterator> it_;
  Rid rid_;
};

/// B+Tree range scan: equality prefix + optional residual predicate.
/// The prefix expressions are evaluated once at Init (literals/params).
class IndexScanExecutor final : public Executor {
 public:
  IndexScanExecutor(TableInfo* table, const IndexInfo* index,
                    std::vector<ExprPtr> prefix_values, ExprPtr residual);
  Status Init(const ExecContext& ctx) override;
  Result<bool> Next(Row* out, const ExecContext& ctx) override;
  const Rid* current_rid() const override { return &rid_; }

 private:
  TableInfo* table_;
  const IndexInfo* index_;
  std::vector<ExprPtr> prefix_values_;
  ExprPtr residual_;
  std::unique_ptr<BTree::Iterator> it_;
  Rid rid_;
};

class FilterExecutor final : public Executor {
 public:
  FilterExecutor(ExecutorPtr child, ExprPtr predicate);
  Status Init(const ExecContext& ctx) override;
  Result<bool> Next(Row* out, const ExecContext& ctx) override;
  const Rid* current_rid() const override { return child_->current_rid(); }

 private:
  ExecutorPtr child_;
  ExprPtr predicate_;
};

class ProjectExecutor final : public Executor {
 public:
  ProjectExecutor(ExecutorPtr child, std::vector<ExprPtr> exprs,
                  std::vector<std::string> names, std::vector<TypeId> types);
  Status Init(const ExecContext& ctx) override;
  Result<bool> Next(Row* out, const ExecContext& ctx) override;

 private:
  ExecutorPtr child_;
  std::vector<ExprPtr> exprs_;
};

/// Tuple-at-a-time nested-loop inner join (restarts the right child per
/// left row). The naive planner uses this together with materialization.
class NestedLoopJoinExecutor final : public Executor {
 public:
  NestedLoopJoinExecutor(ExecutorPtr left, ExecutorPtr right, ExprPtr predicate);
  Status Init(const ExecContext& ctx) override;
  Result<bool> Next(Row* out, const ExecContext& ctx) override;

 private:
  ExecutorPtr left_, right_;
  ExprPtr predicate_;
  Row left_row_;
  bool have_left_ = false;
};

/// Index nested-loop join: for each left row, evaluates the key
/// expressions over it and probes the right table's index.
class IndexNestedLoopJoinExecutor final : public Executor {
 public:
  IndexNestedLoopJoinExecutor(ExecutorPtr left, TableInfo* right,
                              const IndexInfo* right_index,
                              std::vector<ExprPtr> key_exprs, ExprPtr residual);
  Status Init(const ExecContext& ctx) override;
  Result<bool> Next(Row* out, const ExecContext& ctx) override;

 private:
  Result<bool> AdvanceLeft(const ExecContext& ctx);

  ExecutorPtr left_;
  TableInfo* right_;
  const IndexInfo* right_index_;
  std::vector<ExprPtr> key_exprs_;
  ExprPtr residual_;
  Row left_row_;
  std::vector<Rid> matches_;
  size_t match_pos_ = 0;
  bool have_left_ = false;
};

/// Hash inner join; builds on the right input.
class HashJoinExecutor final : public Executor {
 public:
  HashJoinExecutor(ExecutorPtr left, ExecutorPtr right,
                   std::vector<ExprPtr> left_keys, std::vector<ExprPtr> right_keys,
                   ExprPtr residual);
  Status Init(const ExecContext& ctx) override;
  Result<bool> Next(Row* out, const ExecContext& ctx) override;

 private:
  ExecutorPtr left_, right_;
  std::vector<ExprPtr> left_keys_, right_keys_;
  ExprPtr residual_;
  std::unordered_multimap<std::string, Row> table_;
  Row left_row_;
  std::pair<std::unordered_multimap<std::string, Row>::iterator,
            std::unordered_multimap<std::string, Row>::iterator>
      range_;
  bool have_left_ = false;
};

enum class AggKind { kCountStar, kCount, kSum, kAvg, kMin, kMax };

struct AggSpec {
  AggKind kind;
  ExprPtr arg;  // null for COUNT(*)
  std::string name;
};

/// Hash aggregation. Output = group exprs followed by aggregates.
class HashAggExecutor final : public Executor {
 public:
  HashAggExecutor(ExecutorPtr child, std::vector<ExprPtr> group_exprs,
                  std::vector<AggSpec> aggs, std::vector<std::string> names,
                  std::vector<TypeId> types);
  Status Init(const ExecContext& ctx) override;
  Result<bool> Next(Row* out, const ExecContext& ctx) override;

 private:
  struct AggState {
    Row group;
    std::vector<Value> acc;
    std::vector<int64_t> counts;
  };

  ExecutorPtr child_;
  std::vector<ExprPtr> group_exprs_;
  std::vector<AggSpec> aggs_;
  std::vector<AggState> states_;
  size_t emit_pos_ = 0;
};

struct SortKey {
  ExprPtr expr;
  bool descending = false;
};

class SortExecutor final : public Executor {
 public:
  SortExecutor(ExecutorPtr child, std::vector<SortKey> keys);
  Status Init(const ExecContext& ctx) override;
  Result<bool> Next(Row* out, const ExecContext& ctx) override;

 private:
  ExecutorPtr child_;
  std::vector<SortKey> keys_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

class LimitExecutor final : public Executor {
 public:
  LimitExecutor(ExecutorPtr child, int64_t limit, int64_t offset);
  Status Init(const ExecContext& ctx) override;
  Result<bool> Next(Row* out, const ExecContext& ctx) override;

 private:
  ExecutorPtr child_;
  int64_t limit_, offset_;
  int64_t seen_ = 0, emitted_ = 0;
};

/// Hash-based duplicate elimination over the full row (SELECT DISTINCT).
class DistinctExecutor final : public Executor {
 public:
  explicit DistinctExecutor(ExecutorPtr child);
  Status Init(const ExecContext& ctx) override;
  Result<bool> Next(Row* out, const ExecContext& ctx) override;

 private:
  ExecutorPtr child_;
  std::unordered_map<std::string, bool> seen_;
};

/// Literal rows (INSERT ... VALUES and tests).
class ValuesExecutor final : public Executor {
 public:
  ValuesExecutor(std::vector<std::vector<ExprPtr>> rows,
                 std::vector<std::string> names, std::vector<TypeId> types);
  Status Init(const ExecContext& ctx) override;
  Result<bool> Next(Row* out, const ExecContext& ctx) override;

 private:
  std::vector<std::vector<ExprPtr>> rows_;
  size_t pos_ = 0;
};

/// Fully materializes its child at Init. The naive optimizer wraps every
/// derived table in one of these — the §6.2 Test 1 behaviour where
/// MySQL "will first generate the full relation before applying any
/// filtering predicates".
class MaterializeExecutor final : public Executor {
 public:
  explicit MaterializeExecutor(ExecutorPtr child);
  Status Init(const ExecContext& ctx) override;
  Result<bool> Next(Row* out, const ExecContext& ctx) override;

 private:
  ExecutorPtr child_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
  bool materialized_ = false;
};

/// Encodes group/join keys for hashing.
std::string HashKeyOf(const std::vector<ExprPtr>& exprs, const Row& row,
                      const ExecContext& ctx, Status* status);

}  // namespace mtdb

#endif  // MTDB_EXEC_EXECUTOR_H_
