# Empty compiler generated dependencies file for layout_comparison.
# This may be replaced when dependencies are built.
