// A hosted CRM service (the paper's §4 testbed application) running on
// the mapping layer: multiple tenants, vertical-industry extensions,
// daily CRUD + reporting traffic, and consolidation statistics.
#include <cstdio>

#include "common/rng.h"
#include "core/chunk_folding_layout.h"
#include "core/tenant_session.h"
#include "testbed/crm_schema.h"

using namespace mtdb;           // NOLINT: example brevity
using namespace mtdb::mapping;  // NOLINT

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // The 10-table CRM application schema of Figure 5 plus its extension
  // catalog, hosted with Chunk Folding.
  AppSchema app = testbed::BuildCrmAppSchema();
  Database db;
  ChunkFoldingLayout layout(&db, &app);
  Check(layout.Bootstrap(), "bootstrap");

  constexpr int kTenants = 10;
  Rng rng(2024);
  for (TenantId t = 0; t < kTenants; ++t) {
    Check(layout.CreateTenant(t), "create tenant");
    // A third of the tenants are health-care businesses, a third are
    // automotive; the rest run the vanilla CRM.
    if (t % 3 == 0) {
      Check(layout.EnableExtension(t, "healthcare_account"), "extension");
    } else if (t % 3 == 1) {
      Check(layout.EnableExtension(t, "automotive_account"), "extension");
    }
  }

  // Each tenant loads accounts and opportunities through its own SQL,
  // via a per-tenant session (what a pooled connection would hold).
  // An account and its opportunity are one business record: each pair
  // loads inside an explicit transaction, so a failure anywhere leaves
  // no account without its opportunity.
  const char* statuses[] = {"new", "open", "won", "lost"};
  for (TenantId t = 0; t < kTenants; ++t) {
    TenantSession session = layout.OpenSession(t);
    for (int i = 1; i <= 8; ++i) {
      Check(session.Begin(), "begin");
      std::string extra_cols, extra_vals;
      if (t % 3 == 0) {
        extra_cols = ", hospital, beds";
        extra_vals = ", '" + rng.Word(5, 10) + "', " +
                     std::to_string(rng.Uniform(50, 900));
      } else if (t % 3 == 1) {
        extra_cols = ", dealers";
        extra_vals = ", " + std::to_string(rng.Uniform(1, 40));
      }
      Check(session
                .Execute("INSERT INTO account (id, campaign_id, name, "
                         "status" + extra_cols + ") VALUES (" +
                         std::to_string(i) + ", 0, '" + rng.Word(4, 10) +
                         "', '" + statuses[rng.Uniform(0, 3)] + "'" +
                         extra_vals + ")")
                .status(),
            "insert account");
      Check(session
                .Execute("INSERT INTO opportunity (id, account_id, name, "
                         "status, amount) VALUES (" +
                         std::to_string(i) + ", " + std::to_string(i) +
                         ", '" + rng.Word(4, 10) + "', '" +
                         statuses[rng.Uniform(0, 3)] + "', " +
                         std::to_string(rng.Uniform(1000, 90000)) + ")")
                .status(),
            "insert opportunity");
      Check(session.Commit(), "commit");
    }
  }

  // A health-care tenant's business-activity report mixes base and
  // extension columns transparently.
  std::printf("tenant 0 (health care) — pipeline by status:\n");
  TenantSession hospital = layout.OpenSession(0);
  auto report = hospital.Query(
      "SELECT a.status, COUNT(*), SUM(o.amount), AVG(a.beds) "
      "FROM account a, opportunity o WHERE o.account_id = a.id "
      "GROUP BY a.status ORDER BY a.status");
  Check(report.status(), "report");
  for (const Row& row : report->rows) {
    std::printf("  %-6s deals=%s pipeline=%s avg_beds=%s\n",
                row[0].ToString().c_str(), row[1].ToString().c_str(),
                row[2].ToString().c_str(), row[3].ToString().c_str());
  }

  // An automotive tenant cannot see health-care columns — the logical
  // schemas are truly per-tenant.
  auto wrong = layout.OpenSession(1).Query("SELECT beds FROM account");
  std::printf("\ntenant 1 asking for tenant 0's extension column: %s\n",
              wrong.status().ToString().c_str());

  // The consolidation math the paper's Figure 2 is about.
  EngineStats stats = db.Stats();
  std::printf("\n%d tenants x 10-table CRM schema -> %zu physical tables, "
              "%llu KB meta-data, %zu indexes\n",
              kTenants, stats.tables,
              static_cast<unsigned long long>(stats.metadata_bytes / 1024),
              stats.indexes);
  std::printf("(private tables would need %d tables)\n", kTenants * 10);
  const mapping::LayoutStats& ls = layout.stats();
  std::printf("mapping layer: %llu queries transformed, %llu physical "
              "statements issued\n",
              static_cast<unsigned long long>(ls.queries_transformed),
              static_cast<unsigned long long>(ls.physical_statements));
  return 0;
}
