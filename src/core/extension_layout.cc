#include "core/extension_layout.h"

namespace mtdb {
namespace mapping {

std::string ExtensionTableLayout::BaseName(const std::string& table) {
  return IdentLower(table);
}

std::string ExtensionTableLayout::ExtName(const std::string& ext) {
  return "ext_" + IdentLower(ext);
}

Status ExtensionTableLayout::Bootstrap() {
  for (const LogicalTable& t : app_->tables()) {
    Schema schema;
    schema.AddColumn(Column{"tenant", TypeId::kInt32, true});
    schema.AddColumn(Column{"row", TypeId::kInt64, true});
    for (const LogicalColumn& c : t.columns) {
      schema.AddColumn(Column{c.name, c.type, false});
    }
    std::string physical = BaseName(t.name);
    MTDB_RETURN_IF_ERROR(db_->CreateTable(physical, std::move(schema)));
    MTDB_RETURN_IF_ERROR(db_->CreateIndex(physical, "ux_" + physical + "_row",
                                          {"tenant", "row"}, /*unique=*/true));
    for (const LogicalColumn& c : t.columns) {
      if (c.indexed) {
        MTDB_RETURN_IF_ERROR(db_->CreateIndex(
            physical, "ix_" + physical + "_" + IdentLower(c.name),
            {"tenant", c.name}, /*unique=*/false));
      }
    }
  }
  return Status::OK();
}

Status ExtensionTableLayout::EnsureExtensionTable(const ExtensionDef& def) {
  if (provisioned_exts_.count(IdentLower(def.name)) != 0) return Status::OK();
  Schema schema;
  schema.AddColumn(Column{"tenant", TypeId::kInt32, true});
  schema.AddColumn(Column{"row", TypeId::kInt64, true});
  for (const LogicalColumn& c : def.columns) {
    schema.AddColumn(Column{c.name, c.type, false});
  }
  std::string physical = ExtName(def.name);
  MTDB_RETURN_IF_ERROR(db_->CreateTable(physical, std::move(schema)));
  MTDB_RETURN_IF_ERROR(db_->CreateIndex(physical, "ux_" + physical + "_row",
                                        {"tenant", "row"}, /*unique=*/true));
  for (const LogicalColumn& c : def.columns) {
    if (c.indexed) {
      MTDB_RETURN_IF_ERROR(db_->CreateIndex(
          physical, "ix_" + physical + "_" + IdentLower(c.name),
          {"tenant", c.name}, /*unique=*/false));
    }
  }
  provisioned_exts_.insert(IdentLower(def.name));
  stats_.ddl_statements++;
  return Status::OK();
}

Status ExtensionTableLayout::RecoverDerivedState() {
  provisioned_exts_.clear();
  for (const ExtensionDef& def : app_->extensions()) {
    if (db_->catalog()->GetTable(ExtName(def.name)) != nullptr) {
      provisioned_exts_.insert(IdentLower(def.name));
    }
  }
  return Status::OK();
}

Status ExtensionTableLayout::EnableExtensionImpl(TenantId tenant,
                                             const std::string& ext) {
  const ExtensionDef* def = app_->FindExtension(ext);
  if (def == nullptr) return Status::NotFound("no such extension: " + ext);
  // Extension tables are shared: provision lazily on first use anywhere.
  MTDB_RETURN_IF_ERROR(EnsureExtensionTable(*def));
  return SchemaMapping::EnableExtensionImpl(tenant, ext);
}

Result<std::unique_ptr<TableMapping>> ExtensionTableLayout::BuildMapping(
    TenantId tenant, const std::string& table) {
  MTDB_ASSIGN_OR_RETURN(TenantEntry * entry, GetTenant(tenant));
  const LogicalTable* base = app_->FindTable(table);
  if (base == nullptr) return Status::NotFound("no logical table: " + table);

  auto mapping = std::make_unique<TableMapping>();
  PhysicalSource base_source;
  base_source.physical_table = BaseName(table);
  base_source.partition.emplace_back("tenant", Value::Int32(tenant));
  base_source.row_column = "row";
  mapping->sources.push_back(std::move(base_source));
  for (const LogicalColumn& c : base->columns) {
    ColumnTarget target;
    target.source = 0;
    target.physical_column = c.name;
    target.physical_type = c.type;
    target.logical_type = c.type;
    mapping->columns[IdentLower(c.name)] = target;
    mapping->column_order.push_back(c.name);
  }
  for (const std::string& ext_name : entry->state.extensions()) {
    const ExtensionDef* def = app_->FindExtension(ext_name);
    if (def == nullptr || !IdentEquals(def->base_table, table)) continue;
    PhysicalSource source;
    source.physical_table = ExtName(def->name);
    source.partition.emplace_back("tenant", Value::Int32(tenant));
    source.row_column = "row";
    size_t src = mapping->sources.size();
    mapping->sources.push_back(std::move(source));
    for (const LogicalColumn& c : def->columns) {
      ColumnTarget target;
      target.source = src;
      target.physical_column = c.name;
      target.physical_type = c.type;
      target.logical_type = c.type;
      mapping->columns[IdentLower(c.name)] = target;
      mapping->column_order.push_back(c.name);
    }
  }
  return mapping;
}

}  // namespace mapping
}  // namespace mtdb
