#ifndef MTDB_CORE_TENANT_SESSION_H_
#define MTDB_CORE_TENANT_SESSION_H_

#include <cctype>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/deadline.h"
#include "common/trace.h"
#include "core/layout.h"
#include "engine/admission.h"

namespace mtdb {
namespace mapping {

/// The mapping layer's client front door, mirroring the engine's
/// Session: a lightweight per-worker handle bound to one tenant of one
/// layout. Testbed workers and examples hold one per thread; any number
/// may execute concurrently against the shared layout.
///
/// Like an engine Session, a TenantSession is NOT itself thread-safe —
/// it belongs to one worker thread at a time.
class TenantSession {
 public:
  TenantSession() = default;

  TenantSession(const TenantSession&) = delete;
  TenantSession& operator=(const TenantSession&) = delete;
  TenantSession(TenantSession&&) = default;
  TenantSession& operator=(TenantSession&&) = default;

  /// Runs a logical SELECT for this session's tenant. An active
  /// `deadline` bounds the statement: it is cancelled cooperatively and
  /// returns kDeadlineExceeded once the deadline passes (an inactive
  /// deadline inherits any ambient one). Every statement also passes
  /// through the engine's admission controller under this tenant's id —
  /// rate-limited or overloaded tenants get kResourceExhausted with a
  /// retry_after_ms hint instead of executing.
  Result<QueryResult> Query(const std::string& sql,
                            const std::vector<Value>& params = {},
                            deadline::Deadline deadline = {}) {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    statements_++;
    deadline::Scope scope(deadline.active ? deadline : deadline::Current());
    return Traced("select", [&]() -> Result<QueryResult> {
      AdmissionTicket ticket;
      MTDB_RETURN_IF_ERROR(AdmitSelf(&ticket));
      return layout_->Query(tenant_, sql, params);
    });
  }

  /// Runs logical INSERT/UPDATE/DELETE; returns affected logical rows.
  /// Deadline/admission semantics as on Query; a deadline expiring
  /// mid-statement rolls back the partial physical writes.
  Result<int64_t> Execute(const std::string& sql,
                          const std::vector<Value>& params = {},
                          deadline::Deadline deadline = {}) {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    statements_++;
    deadline::Scope scope(deadline.active ? deadline : deadline::Current());
    return Traced(GuessKind(sql), [&]() -> Result<int64_t> {
      AdmissionTicket ticket;
      MTDB_RETURN_IF_ERROR(AdmitSelf(&ticket));
      return layout_->Execute(tenant_, sql, params);
    });
  }

  /// Direct structured insert (bulk loaders): values in the tenant's
  /// effective column order; missing trailing columns NULL.
  Result<int64_t> InsertRow(const std::string& table, const Row& row,
                            deadline::Deadline deadline = {}) {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    statements_++;
    deadline::Scope scope(deadline.active ? deadline : deadline::Current());
    return Traced("insert", [&]() -> Result<int64_t> {
      AdmissionTicket ticket;
      MTDB_RETURN_IF_ERROR(AdmitSelf(&ticket));
      return layout_->InsertRow(tenant_, table, row);
    });
  }

  /// Returns the transformed physical SQL (for inspection/examples).
  Result<std::string> ShowTransformed(const std::string& sql) {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    return layout_->ShowTransformed(tenant_, sql);
  }

  /// EXPLAIN MAPPING front door: reports the physical statements the
  /// logical statement maps to without executing them. Accepts either a
  /// bare statement or the "EXPLAIN MAPPING <stmt>" form.
  Result<MappingExplanation> Explain(const std::string& sql,
                                     const std::vector<Value>& params = {}) {
    if (layout_ == nullptr) return Status::InvalidArgument("session is closed");
    return layout_->ExplainMapping(tenant_, sql, params);
  }

  /// Per-session statement tracing (see common/trace.h): spans and I/O
  /// attribution aggregate into the engine's metrics registry under
  /// (tenant, layout, statement-kind). Off by default; MTDB_TRACE=1
  /// forces it on for every new session.
  void EnableTracing(bool on = true) {
    if (on && tracer_ == nullptr && layout_ != nullptr) {
      tracer_ = std::make_unique<trace::StatementTracer>(
          layout_->db()->metrics_registry());
    }
    if (tracer_ != nullptr) tracer_->set_enabled(on);
  }
  trace::StatementTracer* tracer() { return tracer_.get(); }

  TenantId tenant() const { return tenant_; }
  SchemaMapping* layout() const { return layout_; }
  explicit operator bool() const { return layout_ != nullptr; }

  /// Statements this session has executed.
  uint64_t statements_executed() const { return statements_; }

 private:
  friend class SchemaMapping;
  TenantSession(SchemaMapping* layout, TenantId tenant)
      : layout_(layout), tenant_(tenant) {
    if (trace::TracingForced()) EnableTracing();
  }

  /// Wraps one statement in a root span when tracing is enabled; the
  /// disabled path is a null check.
  template <typename Fn>
  auto Traced(const char* kind, Fn&& fn) -> decltype(fn()) {
    if (tracer_ == nullptr || !tracer_->enabled()) return fn();
    tracer_->BeginStatement(tenant_, layout_->name(), kind);
    auto out = [&] {
      trace::TracerScope scope(tracer_.get());
      return fn();
    }();
    tracer_->EndStatement(out.ok());
    return out;
  }

  /// Admits one statement under this tenant's id; the wait (if any)
  /// shows up as an "admit" span in traced sessions.
  Status AdmitSelf(AdmissionTicket* ticket) {
    trace::SpanScope admit("admit", layout_->name());
    return layout_->db()->admission()->Admit(tenant_, deadline::Current(),
                                             ticket);
  }

  /// Cheap statement-kind label for trace series without a parse: the
  /// layer's Execute only accepts INSERT/UPDATE/DELETE.
  static const char* GuessKind(const std::string& sql) {
    size_t i = sql.find_first_not_of(" \t\r\n");
    if (i == std::string::npos) return "execute";
    switch (std::toupper(static_cast<unsigned char>(sql[i]))) {
      case 'I':
        return "insert";
      case 'U':
        return "update";
      case 'D':
        return "delete";
      default:
        return "execute";
    }
  }

  SchemaMapping* layout_ = nullptr;
  TenantId tenant_ = -1;
  uint64_t statements_ = 0;
  std::unique_ptr<trace::StatementTracer> tracer_;
};

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_TENANT_SESSION_H_
