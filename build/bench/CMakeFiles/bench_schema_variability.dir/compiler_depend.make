# Empty compiler generated dependencies file for bench_schema_variability.
# This may be replaced when dependencies are built.
