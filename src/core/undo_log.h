#ifndef MTDB_CORE_UNDO_LOG_H_
#define MTDB_CORE_UNDO_LOG_H_

#include <vector>

#include "engine/database.h"
#include "sql/ast.h"

namespace mtdb {
namespace mapping {

/// Statement-level undo log for the mapping layer (§6.3's multi-statement
/// DML). A logical INSERT/UPDATE/DELETE fans out into one physical
/// statement per chunk/source; each physical statement is atomic in the
/// engine, but a fault between them would otherwise leave a logical row
/// half-written across its chunks. The generic DML paths therefore record
/// a compensating physical statement for every physical write they apply,
/// and replay the log in reverse if a later write fails — so the logical
/// statement as a whole either applies or leaves no trace.
///
/// Compensations are ordinary physical ASTs (DELETE to undo an INSERT,
/// UPDATE restoring prior values to undo an UPDATE, INSERT re-creating
/// the row images to undo a DELETE) executed through the same engine
/// front door, so they stay atomic themselves and honour the same latch
/// order. Rollback is best-effort: each entry is retried a few times
/// (the engine's buffer pool already absorbs transient faults) and the
/// log keeps going past a failed entry to restore as much as possible.
///
/// Not thread-safe: one log per in-flight statement, on the stack.
class StatementUndoLog {
 public:
  explicit StatementUndoLog(Database* db) : db_(db) {}

  StatementUndoLog(const StatementUndoLog&) = delete;
  StatementUndoLog& operator=(const StatementUndoLog&) = delete;

  /// Records a compensating statement to run if the logical statement
  /// later fails. Call AFTER the corresponding forward write succeeded.
  void Record(sql::Statement compensation) {
    entries_.push_back(std::move(compensation));
  }

  /// Replays all recorded compensations in reverse order. Returns the
  /// first failure (after per-entry retries) but attempts every entry.
  Status Rollback();

  /// Discards the log (the logical statement committed).
  void Clear() { entries_.clear(); }

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Compensations successfully executed by Rollback().
  uint64_t executed() const { return executed_; }

 private:
  Database* db_;
  std::vector<sql::Statement> entries_;
  uint64_t executed_ = 0;
};

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_UNDO_LOG_H_
