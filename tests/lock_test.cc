// Tests for the logical-row lock manager (src/engine/lock_manager.{h,cc}
// + the mapping layer's acquisition points, DESIGN.md §15): direct
// LockManager unit coverage (intent compatibility, idempotent
// re-acquisition, deadline timeouts with holder hints, youngest-victim
// deadlock resolution) and scripted two-session write-write
// interleavings through the TenantSession front door — block-then-
// proceed with the winner's post-commit image, a rival committing and
// releasing inside the collect→lock window (the write-epoch TOCTOU
// check), deadlock victim abort + auto-rollback, autocommit waiter
// timing out against a bracket, and a poisoned bracket keeping its
// locks until ROLLBACK — asserted identical across all eight layouts,
// plus a chaos variant where storage faults fire while locks are held.
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/verifier.h"
#include "common/deadline.h"
#include "common/fault.h"
#include "common/metrics_registry.h"
#include "common/rng.h"
#include "core/tenant_session.h"
#include "engine/database.h"
#include "engine/lock_manager.h"
#include "mapping_test_util.h"
#include "storage/page_store.h"

namespace mtdb {
namespace {

using mapping::LayoutKind;

void AuditClean(mapping::SchemaMapping* layout, const char* when) {
  analysis::Verifier verifier(layout);
  auto diagnostics = verifier.Run();
  ASSERT_TRUE(diagnostics.ok()) << when << ": "
                                << diagnostics.status().ToString();
  EXPECT_FALSE(analysis::HasErrors(*diagnostics))
      << when << ": " << analysis::FormatDiagnostics(*diagnostics);
}

/// Polls a registry counter until it reaches `target` — how the main
/// thread learns that a peer statement has actually parked on a lock
/// (the lock.waits series bumps before the waiter blocks).
bool WaitForCounter(Counter* counter, uint64_t target,
                    int timeout_ms = 20000) {
  for (int waited = 0; waited < timeout_ms; ++waited) {
    if (counter->value() >= target) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return counter->value() >= target;
}

// ------------------------------------------------- LockManager unit

TEST(LockManagerTest, IntentsShareTablesWhileRowAndTableXExclude) {
  MetricsRegistry registry;
  lock::LockManager lm(&registry, 4);
  const uint64_t a = lm.CreateHolder(7, /*bracket=*/true);
  const uint64_t b = lm.CreateHolder(7, /*bracket=*/true);
  ASSERT_NE(a, 0u);
  ASSERT_LT(a, b) << "holder ids must be monotonic (age order)";

  const lock::LockKey table{7, "account", lock::kTableRowId};
  const lock::LockKey row{7, "account", 5};
  EXPECT_TRUE(lm.Acquire(a, table, lock::LockMode::kIntentX).ok());
  EXPECT_TRUE(lm.Acquire(b, table, lock::LockMode::kIntentX).ok())
      << "table intents are compatible";
  EXPECT_TRUE(lm.Acquire(a, row, lock::LockMode::kX).ok());
  EXPECT_TRUE(lm.Acquire(a, row, lock::LockMode::kX).ok())
      << "re-acquiring an owned lock is idempotent";
  EXPECT_EQ(lm.held(), 3u);

  // b conflicts on the row and on a whole-table X; both time out under
  // a deadline and the message names the blocking holder.
  {
    deadline::Scope scope(deadline::Deadline::AfterMillis(60));
    Status st = lm.Acquire(b, row, lock::LockMode::kX);
    ASSERT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
    EXPECT_NE(st.message().find("held by"), std::string::npos)
        << st.ToString();
    st = lm.Acquire(b, table, lock::LockMode::kX);
    EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  }
  EXPECT_GE(registry.GetCounter("lock.timeouts.t7")->value(), 2u);
  EXPECT_GE(registry.GetCounter("lock.waits.t7")->value(), 2u);

  lm.ReleaseAll(a);
  EXPECT_TRUE(lm.Acquire(b, row, lock::LockMode::kX).ok())
      << "release must unblock the row";
  lm.ReleaseAll(b);
  EXPECT_EQ(lm.held(), 0u) << "every grant must be matched by a release";
}

TEST(LockManagerTest, BlockedAcquireProceedsWhenHolderReleases) {
  MetricsRegistry registry;
  lock::LockManager lm(&registry, 4);
  const uint64_t a = lm.CreateHolder(3, true);
  const uint64_t b = lm.CreateHolder(3, true);
  const lock::LockKey row{3, "t", 1};
  ASSERT_TRUE(lm.Acquire(a, row, lock::LockMode::kX).ok());

  Status blocked = Status::OK();
  bool waited = false;
  std::thread waiter([&] {
    blocked = lm.Acquire(b, row, lock::LockMode::kX, &waited);
  });
  EXPECT_TRUE(WaitForCounter(registry.GetCounter("lock.waits.t3"), 1));
  lm.ReleaseAll(a);
  waiter.join();
  EXPECT_TRUE(blocked.ok()) << blocked.ToString();
  EXPECT_TRUE(waited);
  EXPECT_GE(registry.GetCounter("lock.acquired.t3")->value(), 2u);
  lm.ReleaseAll(b);
  EXPECT_EQ(lm.held(), 0u);
}

TEST(LockManagerTest, YoungestHolderLosesTheDeadlock) {
  MetricsRegistry registry;
  lock::LockManager lm(&registry, 4);
  const uint64_t older = lm.CreateHolder(9, true);
  const uint64_t younger = lm.CreateHolder(9, true);
  const lock::LockKey r1{9, "t", 1};
  const lock::LockKey r2{9, "t", 2};
  ASSERT_TRUE(lm.Acquire(older, r1, lock::LockMode::kX).ok());
  ASSERT_TRUE(lm.Acquire(younger, r2, lock::LockMode::kX).ok());

  Status older_wait = Status::OK();
  std::thread parked([&] {
    older_wait = lm.Acquire(older, r2, lock::LockMode::kX);
  });
  EXPECT_TRUE(WaitForCounter(registry.GetCounter("lock.waits.t9"), 1));

  // Closing the cycle from the younger holder picks it as the victim
  // synchronously — the older, parked holder must never abort.
  Status younger_wait = lm.Acquire(younger, r1, lock::LockMode::kX);
  EXPECT_EQ(younger_wait.code(), StatusCode::kAborted)
      << younger_wait.ToString();
  EXPECT_TRUE(lm.IsAborted(younger));
  lm.ReleaseAll(younger);
  parked.join();
  EXPECT_TRUE(older_wait.ok()) << older_wait.ToString();
  EXPECT_EQ(registry.GetCounter("lock.deadlocks.t9")->value(), 1u);
  lm.ReleaseAll(older);
  EXPECT_EQ(lm.held(), 0u);
}

// The write epoch is the freshness signal behind the mapping layer's
// collect→acquire validation (LockManager::WriteEpoch): it must advance
// exactly when an X lock is released — never on grants, never on
// intent-only releases.
TEST(LockManagerTest, WriteEpochAdvancesOnlyOnXRelease) {
  MetricsRegistry registry;
  lock::LockManager lm(&registry, 4);
  const uint64_t a = lm.CreateHolder(5, true);
  const uint64_t e0 = lm.WriteEpoch(5, "t");
  ASSERT_TRUE(
      lm.Acquire(a, {5, "t", lock::kTableRowId}, lock::LockMode::kIntentX)
          .ok());
  ASSERT_TRUE(lm.Acquire(a, {5, "t", 1}, lock::LockMode::kX).ok());
  EXPECT_EQ(lm.WriteEpoch(5, "t"), e0) << "grants must not move the epoch";
  lm.ReleaseAll(a);
  EXPECT_GT(lm.WriteEpoch(5, "t"), e0) << "an X release must move it";

  const uint64_t b = lm.CreateHolder(5, true);
  const uint64_t e1 = lm.WriteEpoch(5, "t");
  ASSERT_TRUE(
      lm.Acquire(b, {5, "t", lock::kTableRowId}, lock::LockMode::kIntentX)
          .ok());
  lm.ReleaseAll(b);
  EXPECT_EQ(lm.WriteEpoch(5, "t"), e1)
      << "an intent-only release carries no committed write";
}

// ------------------------------------------------- two-session scripts

/// Figure 4 plus a second logical table, so deadlocks can form between
/// two distinct lock targets even on layouts whose fallback granularity
/// is the whole (logical, per-tenant) table.
class LockInterleavingTest : public ::testing::TestWithParam<LayoutKind> {
 protected:
  void SetUp() override {
    app_ = mapping::FigureFourSchema();
    {
      mapping::LogicalTable inventory;
      inventory.name = "inventory";
      inventory.columns = {{"iid", TypeId::kInt64, true},
                           {"qty", TypeId::kInt32, false}};
      ASSERT_TRUE(app_.AddTable(std::move(inventory)).ok());
    }
    db_ = std::make_unique<Database>(EngineOptions{});
    layout_ = mapping::MakeLayout(GetParam(), db_.get(), &app_);
    ASSERT_TRUE(layout_->Bootstrap().ok());
    ASSERT_TRUE(layout_->CreateTenant(17).ok());
    ASSERT_TRUE(layout_
                    ->Execute(17,
                              "INSERT INTO account (aid, name) VALUES "
                              "(1, 'Acme'), (2, 'Gump')")
                    .ok());
    ASSERT_TRUE(
        layout_->Execute(17, "INSERT INTO inventory (iid, qty) VALUES (1, 10)")
            .ok());
  }

  void TearDown() override {
    if (layout_ != nullptr) {
      AuditClean(layout_.get(), "at teardown");
      EXPECT_EQ(db_->lock_manager()->held(), 0u)
          << "all locks must be released once every session is quiesced";
    }
  }

  std::string NameOf(int64_t aid) {
    auto r = layout_->Query(
        17, "SELECT name FROM account WHERE aid = " + std::to_string(aid));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok() || r->rows.empty()) return "<missing>";
    return r->rows[0][0].AsString();
  }

  int64_t QtyOf(int64_t iid) {
    auto r = layout_->Query(
        17, "SELECT qty FROM inventory WHERE iid = " + std::to_string(iid));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    if (!r.ok() || r->rows.empty()) return -1;
    return r->rows[0][0].AsInt64();
  }

  Counter* Waits() {
    return db_->metrics_registry()->GetCounter("lock.waits.t17");
  }

  mapping::AppSchema app_;
  std::unique_ptr<Database> db_;
  std::unique_ptr<mapping::SchemaMapping> layout_;
};

// A bracket updates a row and inserts another; a concurrent write to the
// same logical rows blocks until COMMIT, then proceeds against the
// winner's post-commit image — including the row the winner inserted
// while the waiter was parked (Phase (a) re-collection).
TEST_P(LockInterleavingTest, BlockedWriterProceedsWithPostCommitImage) {
  mapping::TenantSession winner = layout_->OpenSession(17);
  mapping::TenantSession waiter = layout_->OpenSession(17);

  ASSERT_TRUE(winner.Begin().ok());
  ASSERT_TRUE(
      winner.Execute("UPDATE account SET name = 'A1' WHERE aid = 1").ok());
  ASSERT_TRUE(
      winner.Execute("INSERT INTO account (aid, name) VALUES (3, 'A3')")
          .ok());

  const uint64_t waits_before = Waits()->value();
  std::atomic<bool> done{false};
  Result<int64_t> touched = int64_t{0};
  std::thread blocked([&] {
    touched = waiter.Execute("UPDATE account SET name = 'B' WHERE aid >= 1");
    done.store(true);
  });
  EXPECT_TRUE(WaitForCounter(Waits(), waits_before + 1))
      << "the second writer never blocked on the bracket's locks";
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load())
      << "the waiter must stay parked until the bracket commits";

  ASSERT_TRUE(winner.Commit().ok());
  blocked.join();
  ASSERT_TRUE(touched.ok()) << touched.status().ToString();
  // The waiter acted on the committed image: all three rows, including
  // the one inserted inside the bracket, carry its update.
  EXPECT_EQ(*touched, 3);
  EXPECT_EQ(NameOf(1), "B");
  EXPECT_EQ(NameOf(2), "B");
  EXPECT_EQ(NameOf(3), "B");
}

// A rival that writes, commits and RELEASES entirely inside the gap
// between this statement's Phase (a) collection and its lock
// acquisition never blocks it — only the write-epoch check can force
// the re-collect. Without it the SET expression evaluates against the
// stale image and silently overwrites the rival's committed value
// (the classic collect→acquire TOCTOU lost update).
TEST_P(LockInterleavingTest, CommitBetweenCollectAndLockIsNotLost) {
  std::atomic<bool> fired{false};
  layout_->SetPostCollectHookForTest([&] {
    if (fired.exchange(true)) return;  // only the victim's first collect
    // A separate thread keeps the rival's TLS (lock context, holder
    // lease) clean of the half-finished outer statement.
    std::thread rival([&] {
      mapping::TenantSession session = layout_->OpenSession(17);
      auto r =
          session.Execute("UPDATE inventory SET qty = qty + 100 WHERE iid = 1");
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    });
    rival.join();  // committed and released before the victim locks
  });
  mapping::TenantSession session = layout_->OpenSession(17);
  auto r = session.Execute("UPDATE inventory SET qty = qty + 1 WHERE iid = 1");
  layout_->SetPostCollectHookForTest(nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  if (fired.load()) {
    EXPECT_EQ(QtyOf(1), 111)
        << "the rival's committed +100 was overwritten from a stale image";
  } else {
    // Pass-through layouts (Basic/Private) have no Phase (a) collection
    // and no collect→lock window: the lock-first rewrite is immune.
    EXPECT_EQ(QtyOf(1), 11);
  }
}

// Same window, but the rival's committed write changes WHICH rows match
// the victim's predicate: the epoch-forced re-collect must pick up the
// newly matching row, not just refresh the images of the old set.
TEST_P(LockInterleavingTest, CommitBetweenCollectAndLockGrowsTheRowSet) {
  std::atomic<bool> fired{false};
  layout_->SetPostCollectHookForTest([&] {
    if (fired.exchange(true)) return;
    std::thread rival([&] {
      mapping::TenantSession session = layout_->OpenSession(17);
      auto r = session.Execute(
          "UPDATE account SET name = 'Acme' WHERE aid = 2");
      EXPECT_TRUE(r.ok()) << r.status().ToString();
    });
    rival.join();
  });
  mapping::TenantSession session = layout_->OpenSession(17);
  auto r = session.Execute("UPDATE account SET name = 'X' WHERE name = 'Acme'");
  layout_->SetPostCollectHookForTest(nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(NameOf(1), "X");
  if (fired.load()) {
    EXPECT_EQ(*r, 2) << "the re-collect missed the newly matching row";
    EXPECT_EQ(NameOf(2), "X");
  } else {
    EXPECT_EQ(NameOf(2), "Gump");
  }
}

// Two brackets lock account and inventory in opposite orders. The
// younger bracket is chosen as the victim: its statement fails with
// kAborted, the session auto-rolls it back (releasing the locks the
// older bracket is parked on), ROLLBACK acknowledges, and the older
// bracket commits both writes.
TEST_P(LockInterleavingTest, DeadlockAbortsTheYoungestBracket) {
  mapping::TenantSession older = layout_->OpenSession(17);
  mapping::TenantSession younger = layout_->OpenSession(17);

  ASSERT_TRUE(older.Begin().ok());
  ASSERT_TRUE(
      older.Execute("UPDATE account SET name = 'A' WHERE aid = 1").ok());
  ASSERT_TRUE(younger.Begin().ok());
  ASSERT_TRUE(
      younger.Execute("UPDATE inventory SET qty = 20 WHERE iid = 1").ok());

  const uint64_t waits_before = Waits()->value();
  Result<int64_t> older_cross = int64_t{0};
  std::thread parked([&] {
    older_cross = older.Execute("UPDATE inventory SET qty = 30 WHERE iid = 1");
  });
  EXPECT_TRUE(WaitForCounter(Waits(), waits_before + 1));

  auto younger_cross =
      younger.Execute("UPDATE account SET name = 'B' WHERE aid = 1");
  ASSERT_FALSE(younger_cross.ok());
  EXPECT_EQ(younger_cross.status().code(), StatusCode::kAborted)
      << younger_cross.status().ToString();
  // The session already rolled the bracket back; statements are
  // rejected until ROLLBACK acknowledges the abort.
  auto rejected =
      younger.Execute("UPDATE inventory SET qty = 99 WHERE iid = 1");
  EXPECT_EQ(rejected.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(younger.Rollback().ok());
  EXPECT_EQ(
      db_->metrics_registry()->GetCounter("txn.auto_rollback.t17")->value(),
      1u);
  EXPECT_GE(db_->metrics_registry()->GetCounter("lock.deadlocks.t17")->value(),
            1u);

  parked.join();
  ASSERT_TRUE(older_cross.ok()) << older_cross.status().ToString();
  ASSERT_TRUE(older.Commit().ok());
  // The survivor's writes stuck; the victim's update was compensated.
  EXPECT_EQ(NameOf(1), "A");
  EXPECT_EQ(QtyOf(1), 30);
}

// An autocommit statement waiting on a bracket's lock is bounded by its
// deadline: it fails with kDeadlineExceeded naming the holder, and the
// same statement succeeds once the bracket commits.
TEST_P(LockInterleavingTest, AutocommitWaiterTimesOutAgainstABracket) {
  mapping::TenantSession bracket = layout_->OpenSession(17);
  mapping::TenantSession autocommit = layout_->OpenSession(17);

  ASSERT_TRUE(bracket.Begin().ok());
  ASSERT_TRUE(
      bracket.Execute("UPDATE account SET name = 'A1' WHERE aid = 1").ok());

  auto timed_out =
      autocommit.Execute("UPDATE account SET name = 'B1' WHERE aid = 1", {},
                         deadline::Deadline::AfterMillis(150));
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kDeadlineExceeded)
      << timed_out.status().ToString();
  EXPECT_NE(timed_out.status().message().find("held by"), std::string::npos)
      << "the timeout must name the conflicting holder: "
      << timed_out.status().ToString();
  EXPECT_GE(db_->metrics_registry()->GetCounter("lock.timeouts.t17")->value(),
            1u);

  ASSERT_TRUE(bracket.Commit().ok());
  auto retried =
      autocommit.Execute("UPDATE account SET name = 'B1' WHERE aid = 1");
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  EXPECT_EQ(NameOf(1), "B1");
}

// A failed statement poisons the bracket but does NOT release its locks
// — earlier writes of the bracket stay protected until the client's
// ROLLBACK replays the compensations and only then lets waiters in.
TEST_P(LockInterleavingTest, PoisonedBracketKeepsLocksUntilRollback) {
  mapping::TenantSession poisoned = layout_->OpenSession(17);
  mapping::TenantSession waiter = layout_->OpenSession(17);

  ASSERT_TRUE(poisoned.Begin().ok());
  ASSERT_TRUE(
      poisoned.Execute("UPDATE account SET name = 'A1' WHERE aid = 1").ok());
  auto bad = poisoned.Execute("UPDATE nosuch SET name = 'x' WHERE aid = 1");
  ASSERT_FALSE(bad.ok());
  auto blocked_stmt =
      poisoned.Execute("UPDATE account SET name = 'A2' WHERE aid = 1");
  EXPECT_EQ(blocked_stmt.status().code(), StatusCode::kFailedPrecondition)
      << "the bracket must be poisoned";

  const uint64_t waits_before = Waits()->value();
  std::atomic<bool> done{false};
  Result<int64_t> touched = int64_t{0};
  std::thread blocked([&] {
    touched = waiter.Execute("UPDATE account SET name = 'B' WHERE aid = 1");
    done.store(true);
  });
  EXPECT_TRUE(WaitForCounter(Waits(), waits_before + 1));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(done.load())
      << "a poisoned bracket must keep its locks until ROLLBACK";

  ASSERT_TRUE(poisoned.Rollback().ok());
  blocked.join();
  ASSERT_TRUE(touched.ok()) << touched.status().ToString();
  // The waiter saw the rolled-back image (compensation ran before the
  // locks dropped) and then applied its own write.
  EXPECT_EQ(NameOf(1), "B");
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, LockInterleavingTest,
    ::testing::Values(LayoutKind::kBasic, LayoutKind::kPrivate,
                      LayoutKind::kExtension, LayoutKind::kUniversal,
                      LayoutKind::kPivot, LayoutKind::kChunk,
                      LayoutKind::kVertical, LayoutKind::kChunkFolding),
    [](const ::testing::TestParamInfo<LayoutKind>& info) {
      return std::string(mapping::LayoutKindName(info.param));
    });

// ------------------------------------------------- chaos variant

// Storage faults fire while brackets hold locks: forward statements and
// compensation replays hit injected I/O errors mid-transaction while a
// contending autocommit writer hammers the same rows under short
// deadlines. Whatever mix of commits, rollbacks, aborts and timeouts
// results, the layout must audit clean and every lock must be released.
TEST(LockChaosTest, FaultsWhileLocksHeldStillReconcile) {
  for (LayoutKind kind : {LayoutKind::kBasic, LayoutKind::kChunkFolding}) {
    SCOPED_TRACE(mapping::LayoutKindName(kind));
    mapping::AppSchema app = mapping::FigureFourSchema();
    Database db;
    std::unique_ptr<mapping::SchemaMapping> layout =
        mapping::MakeLayout(kind, &db, &app);
    ASSERT_TRUE(layout->Bootstrap().ok());
    ASSERT_TRUE(layout->CreateTenant(17).ok());
    layout->set_quarantine_threshold(1'000'000);
    ASSERT_TRUE(layout
                    ->Execute(17,
                              "INSERT INTO account (aid, name) VALUES "
                              "(1, 'a'), (2, 'b'), (3, 'c'), (4, 'd')")
                    .ok());

    FaultInjector injector(20260808);
    db.page_store()->set_fault_injector(&injector);
    db.buffer_pool()->SetCapacity(8);
    Rng rng(20260808ull * 7919 + 17);

    std::atomic<bool> stop{false};
    std::thread contender([&] {
      mapping::TenantSession side = layout->OpenSession(17);
      while (!stop.load()) {
        // Any outcome is legal — success, lock timeout, injected I/O
        // failure; the end-state audit is the oracle.
        (void)side.Execute("UPDATE account SET name = 'side' WHERE aid = 2",
                           {}, deadline::Deadline::AfterMillis(40));
      }
    });

    mapping::TenantSession session = layout->OpenSession(17);
    for (int round = 0; round < 25; ++round) {
      injector.DisarmAll();
      (void)db.buffer_pool()->EvictAll();
      FaultSpec spec;
      spec.probability = 0.2 + 0.1 * static_cast<double>(rng.Uniform(0, 3));
      spec.max_fires = static_cast<uint64_t>(rng.Uniform(1, 5));
      injector.Arm(rng.Bernoulli(0.5) ? FaultPoint::kPageRead
                                      : FaultPoint::kPageWrite,
                   spec);

      ASSERT_TRUE(layout.get() != nullptr);
      if (!session.Begin().ok()) continue;
      // Locks are held across both statements; faults can fail either
      // one (poisoning or aborting the bracket) or the compensation
      // replay below (which retries until the bounded burst drains).
      (void)session.Execute("UPDATE account SET name = 'r" +
                            std::to_string(round) + "' WHERE aid <= 2");
      (void)session.Execute("INSERT INTO account (aid, name) VALUES (" +
                            std::to_string(100 + round) + ", 'n')");
      if (rng.Bernoulli(0.5)) {
        if (!session.Commit().ok() && session.in_transaction()) {
          (void)session.Rollback();
        }
      } else if (session.in_transaction()) {
        (void)session.Rollback();
      }
      ASSERT_FALSE(session.in_transaction());
    }
    stop.store(true);
    contender.join();

    injector.DisarmAll();
    db.page_store()->set_fault_injector(nullptr);
    deadline::Scope no_deadline(deadline::Deadline::None());
    AuditClean(layout.get(), "after lock chaos");
    EXPECT_EQ(db.lock_manager()->held(), 0u)
        << "chaos must not leak locks: every holder releases on commit, "
           "rollback, abort, or statement teardown";
  }
}

}  // namespace
}  // namespace mtdb
