#include "sql/ast_util.h"

namespace mtdb {
namespace sql {

std::unique_ptr<InsertStmt> CloneInsert(const InsertStmt& stmt) {
  auto out = std::make_unique<InsertStmt>();
  out->table = stmt.table;
  out->columns = stmt.columns;
  out->rows.reserve(stmt.rows.size());
  for (const auto& row : stmt.rows) {
    std::vector<ParsedExprPtr> cloned;
    cloned.reserve(row.size());
    for (const auto& e : row) cloned.push_back(e->Clone());
    out->rows.push_back(std::move(cloned));
  }
  return out;
}

std::unique_ptr<UpdateStmt> CloneUpdate(const UpdateStmt& stmt) {
  auto out = std::make_unique<UpdateStmt>();
  out->table = stmt.table;
  for (const auto& [col, expr] : stmt.assignments) {
    out->assignments.emplace_back(col, expr->Clone());
  }
  if (stmt.where != nullptr) out->where = stmt.where->Clone();
  return out;
}

std::unique_ptr<DeleteStmt> CloneDelete(const DeleteStmt& stmt) {
  auto out = std::make_unique<DeleteStmt>();
  out->table = stmt.table;
  if (stmt.where != nullptr) out->where = stmt.where->Clone();
  return out;
}

Statement CloneStatement(const Statement& stmt) {
  Statement out;
  out.kind = stmt.kind;
  switch (stmt.kind) {
    case StatementKind::kSelect:
      out.select = stmt.select->Clone();
      break;
    case StatementKind::kInsert:
      out.insert = CloneInsert(*stmt.insert);
      break;
    case StatementKind::kUpdate:
      out.update = CloneUpdate(*stmt.update);
      break;
    case StatementKind::kDelete:
      out.del = CloneDelete(*stmt.del);
      break;
    case StatementKind::kCreateTable:
      out.create_table = std::make_unique<CreateTableStmt>(*stmt.create_table);
      break;
    case StatementKind::kCreateIndex:
      out.create_index = std::make_unique<CreateIndexStmt>(*stmt.create_index);
      break;
    case StatementKind::kDropTable:
      out.drop_table = std::make_unique<DropTableStmt>(*stmt.drop_table);
      break;
    case StatementKind::kDropIndex:
      out.drop_index = std::make_unique<DropIndexStmt>(*stmt.drop_index);
      break;
    case StatementKind::kExplainMapping:
      out.explain = std::make_unique<ExplainStmt>();
      out.explain->target = std::make_unique<Statement>(
          CloneStatement(*stmt.explain->target));
      break;
    case StatementKind::kBegin:
    case StatementKind::kCommit:
    case StatementKind::kRollback:
      break;  // no payload
  }
  return out;
}

namespace {

std::string FirstSelectTable(const SelectStmt& stmt) {
  for (const TableRef& ref : stmt.from) {
    if (ref.is_subquery()) {
      std::string inner = FirstSelectTable(*ref.subquery);
      if (!inner.empty()) return inner;
    } else {
      return ref.table_name;
    }
  }
  return "";
}

}  // namespace

std::string FirstTableOf(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return FirstSelectTable(*stmt.select);
    case StatementKind::kInsert:
      return stmt.insert->table;
    case StatementKind::kUpdate:
      return stmt.update->table;
    case StatementKind::kDelete:
      return stmt.del->table;
    case StatementKind::kCreateTable:
      return stmt.create_table->table;
    case StatementKind::kCreateIndex:
      return stmt.create_index->table;
    case StatementKind::kDropTable:
      return stmt.drop_table->table;
    case StatementKind::kDropIndex:
      return "";
    case StatementKind::kExplainMapping:
      return FirstTableOf(*stmt.explain->target);
    case StatementKind::kBegin:
    case StatementKind::kCommit:
    case StatementKind::kRollback:
      return "";
  }
  return "";
}

std::string FirstTableOf(const SelectStmt& stmt) {
  return FirstSelectTable(stmt);
}

const char* KindLabel(StatementKind kind) {
  switch (kind) {
    case StatementKind::kSelect:
      return "select";
    case StatementKind::kInsert:
      return "insert";
    case StatementKind::kUpdate:
      return "update";
    case StatementKind::kDelete:
      return "delete";
    case StatementKind::kCreateTable:
      return "create_table";
    case StatementKind::kCreateIndex:
      return "create_index";
    case StatementKind::kDropTable:
      return "drop_table";
    case StatementKind::kDropIndex:
      return "drop_index";
    case StatementKind::kExplainMapping:
      return "explain_mapping";
    case StatementKind::kBegin:
      return "begin";
    case StatementKind::kCommit:
      return "commit";
    case StatementKind::kRollback:
      return "rollback";
  }
  return "unknown";
}

void ForEachSelectScope(const SelectStmt& stmt,
                        const std::function<void(const SelectStmt&)>& fn) {
  fn(stmt);
  for (const TableRef& ref : stmt.from) {
    if (ref.is_subquery()) ForEachSelectScope(*ref.subquery, fn);
  }
}

void CollectConjuncts(const ParsedExpr* e,
                      std::vector<const ParsedExpr*>* out) {
  if (e == nullptr) return;
  if (e->kind == PExprKind::kBinary && e->binary_op == BinaryOp::kAnd) {
    CollectConjuncts(e->left.get(), out);
    CollectConjuncts(e->right.get(), out);
    return;
  }
  out->push_back(e);
}

void ForEachExprNode(const ParsedExpr& e,
                     const std::function<void(const ParsedExpr&)>& fn) {
  fn(e);
  if (e.left != nullptr) ForEachExprNode(*e.left, fn);
  if (e.right != nullptr) ForEachExprNode(*e.right, fn);
  for (const auto& a : e.args) ForEachExprNode(*a, fn);
}

void ForEachScopeExpr(const SelectStmt& scope,
                      const std::function<void(const ParsedExpr&)>& fn) {
  for (const SelectItem& item : scope.items) {
    if (item.expr != nullptr) ForEachExprNode(*item.expr, fn);
  }
  if (scope.where != nullptr) ForEachExprNode(*scope.where, fn);
  for (const auto& g : scope.group_by) ForEachExprNode(*g, fn);
  if (scope.having != nullptr) ForEachExprNode(*scope.having, fn);
  for (const OrderItem& o : scope.order_by) ForEachExprNode(*o.expr, fn);
}

ColumnEqualsLiteral MatchColumnEqualsLiteral(const ParsedExpr& e) {
  ColumnEqualsLiteral out;
  if (e.kind != PExprKind::kBinary || e.binary_op != BinaryOp::kEq) return out;
  const ParsedExpr* l = e.left.get();
  const ParsedExpr* r = e.right.get();
  if (l->kind == PExprKind::kColumnRef && r->kind == PExprKind::kLiteral) {
    out.column = l;
    out.literal = r;
  } else if (r->kind == PExprKind::kColumnRef &&
             l->kind == PExprKind::kLiteral) {
    out.column = r;
    out.literal = l;
  }
  return out;
}

ColumnEqualsColumn MatchColumnEqualsColumn(const ParsedExpr& e) {
  ColumnEqualsColumn out;
  if (e.kind != PExprKind::kBinary || e.binary_op != BinaryOp::kEq) return out;
  if (e.left->kind == PExprKind::kColumnRef &&
      e.right->kind == PExprKind::kColumnRef) {
    out.left = e.left.get();
    out.right = e.right.get();
  }
  return out;
}

}  // namespace sql
}  // namespace mtdb
