#include "engine/database.h"

#include "common/key_encoding.h"
#include "sql/parser.h"

namespace mtdb {

namespace {

/// Builds the index key of `row` for `index`.
std::string IndexKeyFor(const IndexInfo& index, const Row& row) {
  std::vector<Value> vals;
  vals.reserve(index.key_columns.size());
  for (size_t c : index.key_columns) vals.push_back(row[c]);
  return KeyEncoder::EncodeKey(vals);
}

/// Evaluates a scalar parsed expression outside a full query plan:
/// literals, params, arithmetic, and (when `row`/`schema` are given)
/// column references into that row. Used by INSERT VALUES and UPDATE SET.
Result<Value> EvalParsedScalar(const sql::ParsedExpr& e, const Row* row,
                               const Schema* schema, const ExecContext& ctx) {
  using sql::PExprKind;
  switch (e.kind) {
    case PExprKind::kLiteral:
      return e.literal;
    case PExprKind::kParam:
      if (e.param_ordinal >= ctx.params.size()) {
        return Status::InvalidArgument("missing bind parameter " +
                                       std::to_string(e.param_ordinal + 1));
      }
      return ctx.params[e.param_ordinal];
    case PExprKind::kColumnRef: {
      if (row == nullptr || schema == nullptr) {
        return Status::InvalidArgument("column reference not allowed here: " +
                                       e.column);
      }
      auto pos = schema->Find(e.column);
      if (!pos.has_value()) {
        return Status::NotFound("no column " + e.column);
      }
      return (*row)[*pos];
    }
    case PExprKind::kUnary: {
      MTDB_ASSIGN_OR_RETURN(Value c, EvalParsedScalar(*e.left, row, schema, ctx));
      if (e.unary_op == sql::UnaryOp::kNeg) {
        if (c.is_null()) return c;
        if (c.type() == TypeId::kDouble) return Value::Double(-c.AsDouble());
        return Value::Int64(-c.AsInt64());
      }
      if (c.is_null()) return Value::Null(TypeId::kBool);
      return Value::Bool(!c.AsBool());
    }
    case PExprKind::kBinary: {
      MTDB_ASSIGN_OR_RETURN(Value l, EvalParsedScalar(*e.left, row, schema, ctx));
      MTDB_ASSIGN_OR_RETURN(Value r, EvalParsedScalar(*e.right, row, schema, ctx));
      if (l.is_null() || r.is_null()) return Value();
      switch (e.binary_op) {
        case sql::BinaryOp::kAdd:
          if (l.type() == TypeId::kString || r.type() == TypeId::kString) {
            return Value::String(l.ToString() + r.ToString());
          }
          if (l.type() == TypeId::kDouble || r.type() == TypeId::kDouble) {
            return Value::Double(l.AsDouble() + r.AsDouble());
          }
          return Value::Int64(l.AsInt64() + r.AsInt64());
        case sql::BinaryOp::kSub:
          if (l.type() == TypeId::kDouble || r.type() == TypeId::kDouble) {
            return Value::Double(l.AsDouble() - r.AsDouble());
          }
          return Value::Int64(l.AsInt64() - r.AsInt64());
        case sql::BinaryOp::kMul:
          if (l.type() == TypeId::kDouble || r.type() == TypeId::kDouble) {
            return Value::Double(l.AsDouble() * r.AsDouble());
          }
          return Value::Int64(l.AsInt64() * r.AsInt64());
        case sql::BinaryOp::kDiv:
          if (r.AsDouble() == 0.0) {
            return Status::InvalidArgument("division by zero");
          }
          if (l.type() == TypeId::kDouble || r.type() == TypeId::kDouble) {
            return Value::Double(l.AsDouble() / r.AsDouble());
          }
          return Value::Int64(l.AsInt64() / r.AsInt64());
        case sql::BinaryOp::kMod:
          if (r.AsInt64() == 0) {
            return Status::InvalidArgument("modulo by zero");
          }
          return Value::Int64(l.AsInt64() % r.AsInt64());
        default:
          return Status::InvalidArgument("unsupported scalar expression");
      }
    }
    default:
      return Status::InvalidArgument("unsupported scalar expression");
  }
}

}  // namespace

Database::Database(EngineOptions options) : options_(options) {
  store_ = std::make_unique<PageStore>(options_.page_size);
  store_->set_read_latency_ns(options_.read_latency_ns);
  pool_ = std::make_unique<BufferPool>(
      store_.get(), options_.memory_budget_bytes / options_.page_size);
  catalog_ = std::make_unique<Catalog>(pool_.get(),
                                       options_.memory_budget_bytes,
                                       options_.metadata_costs);
}

Result<QueryResult> Database::Execute(const std::string& sql,
                                      const std::vector<Value>& params) {
  MTDB_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (stmt.kind == sql::StatementKind::kSelect) {
    return QueryAst(*stmt.select, params);
  }
  MTDB_ASSIGN_OR_RETURN(int64_t affected, ExecuteAst(stmt, params));
  QueryResult out;
  out.columns = {"affected"};
  out.rows.push_back({Value::Int64(affected)});
  return out;
}

Result<QueryResult> Database::Query(const std::string& sql,
                                    const std::vector<Value>& params) {
  MTDB_ASSIGN_OR_RETURN(auto stmt, sql::ParseSelect(sql));
  return QueryAst(*stmt, params);
}

Result<QueryResult> Database::QueryAst(const sql::SelectStmt& stmt,
                                       const std::vector<Value>& params) {
  std::lock_guard<std::mutex> lock(mu_);
  MTDB_ASSIGN_OR_RETURN(
      PlannedQuery plan,
      PlanSelect(stmt, catalog_.get(), options_.planner_mode));
  ExecContext ctx;
  ctx.params = params;
  MTDB_RETURN_IF_ERROR(plan.exec->Init(ctx));
  QueryResult out;
  out.columns = plan.exec->schema().names;
  Row row;
  while (true) {
    Result<bool> more = plan.exec->Next(&row, ctx);
    if (!more.ok()) return more.status();
    if (!*more) break;
    out.rows.push_back(std::move(row));
  }
  return out;
}

Result<std::string> Database::Explain(const std::string& sql) {
  MTDB_ASSIGN_OR_RETURN(auto stmt, sql::ParseSelect(sql));
  return ExplainAst(*stmt);
}

Result<std::string> Database::ExplainAst(const sql::SelectStmt& stmt) {
  std::lock_guard<std::mutex> lock(mu_);
  MTDB_ASSIGN_OR_RETURN(
      PlannedQuery plan,
      PlanSelect(stmt, catalog_.get(), options_.planner_mode));
  return plan.plan_text;
}

Result<int64_t> Database::ExecuteAst(const sql::Statement& stmt,
                                     const std::vector<Value>& params) {
  std::lock_guard<std::mutex> lock(mu_);
  ExecContext ctx;
  ctx.params = params;
  switch (stmt.kind) {
    case sql::StatementKind::kInsert:
      return ExecuteInsert(*stmt.insert, ctx);
    case sql::StatementKind::kUpdate:
      return ExecuteUpdate(*stmt.update, ctx);
    case sql::StatementKind::kDelete:
      return ExecuteDelete(*stmt.del, ctx);
    case sql::StatementKind::kCreateTable: {
      Schema schema;
      for (const sql::ColumnDef& def : stmt.create_table->columns) {
        schema.AddColumn(Column{def.name, def.type, def.not_null});
      }
      MTDB_ASSIGN_OR_RETURN(
          TableInfo * info,
          catalog_->CreateTable(stmt.create_table->table, std::move(schema)));
      (void)info;
      return 0;
    }
    case sql::StatementKind::kCreateIndex: {
      MTDB_ASSIGN_OR_RETURN(
          IndexInfo * info,
          catalog_->CreateIndex(stmt.create_index->table,
                                stmt.create_index->index,
                                stmt.create_index->columns,
                                stmt.create_index->unique));
      (void)info;
      return 0;
    }
    case sql::StatementKind::kDropTable:
      MTDB_RETURN_IF_ERROR(catalog_->DropTable(stmt.drop_table->table));
      return 0;
    case sql::StatementKind::kDropIndex:
      MTDB_RETURN_IF_ERROR(catalog_->DropIndex(stmt.drop_index->index));
      return 0;
    case sql::StatementKind::kSelect:
      return Status::InvalidArgument("use Query() for SELECT");
  }
  return Status::Internal("unknown statement kind");
}

Status Database::InsertRowLocked(TableInfo* table, const Row& row) {
  if (row.size() != table->schema.size()) {
    return Status::InvalidArgument("row arity mismatch for " + table->name);
  }
  // NOT NULL + unique checks first so failures do not leave partial state.
  Row typed;
  typed.reserve(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    if (row[i].is_null()) {
      if (table->schema.at(i).not_null) {
        return Status::ConstraintViolation("NULL in NOT NULL column " +
                                           table->schema.at(i).name);
      }
      typed.push_back(Value::Null(table->schema.at(i).type));
      continue;
    }
    MTDB_ASSIGN_OR_RETURN(Value v, row[i].CastTo(table->schema.at(i).type));
    typed.push_back(std::move(v));
  }
  for (const auto& idx : table->indexes) {
    if (!idx->unique) continue;
    std::string key = IndexKeyFor(*idx, typed);
    if (idx->tree->Contains(key)) {
      return Status::ConstraintViolation("duplicate key in unique index " +
                                         idx->name);
    }
  }
  std::string image;
  MTDB_RETURN_IF_ERROR(table->codec->Encode(typed, &image));
  MTDB_ASSIGN_OR_RETURN(Rid rid, table->heap->Insert(image));
  for (const auto& idx : table->indexes) {
    std::string key = IndexKeyFor(*idx, typed);
    MTDB_RETURN_IF_ERROR(idx->tree->Insert(key, rid));
  }
  return Status::OK();
}

Status Database::DeleteRowLocked(TableInfo* table, const Row& row,
                                 const Rid& rid) {
  for (const auto& idx : table->indexes) {
    std::string key = IndexKeyFor(*idx, row);
    Status st = idx->tree->Delete(key, rid);
    if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
  }
  return table->heap->Delete(rid);
}

Result<int64_t> Database::ExecuteInsert(const sql::InsertStmt& stmt,
                                        const ExecContext& ctx) {
  TableInfo* table = catalog_->GetTable(stmt.table);
  if (table == nullptr) return Status::NotFound("no such table: " + stmt.table);
  std::vector<size_t> positions;
  if (stmt.columns.empty()) {
    for (size_t i = 0; i < table->schema.size(); ++i) positions.push_back(i);
  } else {
    for (const std::string& c : stmt.columns) {
      auto pos = table->schema.Find(c);
      if (!pos.has_value()) {
        return Status::NotFound("no column " + c + " in " + stmt.table);
      }
      positions.push_back(*pos);
    }
  }
  int64_t inserted = 0;
  for (const auto& row_exprs : stmt.rows) {
    if (row_exprs.size() != positions.size()) {
      return Status::InvalidArgument("VALUES arity mismatch");
    }
    Row full(table->schema.size(), Value());
    for (size_t i = 0; i < positions.size(); ++i) {
      MTDB_ASSIGN_OR_RETURN(
          Value v, EvalParsedScalar(*row_exprs[i], nullptr, nullptr, ctx));
      full[positions[i]] = std::move(v);
    }
    MTDB_RETURN_IF_ERROR(InsertRowLocked(table, full));
    inserted++;
  }
  return inserted;
}

Result<int64_t> Database::ExecuteUpdate(const sql::UpdateStmt& stmt,
                                        const ExecContext& ctx) {
  TableInfo* table = catalog_->GetTable(stmt.table);
  if (table == nullptr) return Status::NotFound("no such table: " + stmt.table);
  // Phase (a): plan "SELECT * FROM t WHERE ..." and collect rows + RIDs.
  sql::SelectStmt select;
  select.select_star = true;
  sql::TableRef ref;
  ref.table_name = stmt.table;
  select.from.push_back(std::move(ref));
  if (stmt.where != nullptr) select.where = stmt.where->Clone();
  MTDB_ASSIGN_OR_RETURN(
      PlannedQuery plan,
      PlanSelect(select, catalog_.get(), options_.planner_mode));
  MTDB_RETURN_IF_ERROR(plan.exec->Init(ctx));

  std::vector<std::pair<Rid, Row>> affected;
  Row row;
  while (true) {
    Result<bool> more = plan.exec->Next(&row, ctx);
    if (!more.ok()) return more.status();
    if (!*more) break;
    const Rid* rid = plan.exec->current_rid();
    if (rid == nullptr) {
      return Status::Internal("update scan lost row identity");
    }
    affected.emplace_back(*rid, row);
  }

  std::vector<std::pair<size_t, const sql::ParsedExpr*>> sets;
  for (const auto& [col, expr] : stmt.assignments) {
    auto pos = table->schema.Find(col);
    if (!pos.has_value()) {
      return Status::NotFound("no column " + col + " in " + stmt.table);
    }
    sets.emplace_back(*pos, expr.get());
  }

  // Phase (b): apply per row; assignments may read old row values.
  for (auto& [rid, old_row] : affected) {
    Row new_row = old_row;
    for (const auto& [pos, expr] : sets) {
      MTDB_ASSIGN_OR_RETURN(
          Value v, EvalParsedScalar(*expr, &old_row, &table->schema, ctx));
      if (!v.is_null()) {
        MTDB_ASSIGN_OR_RETURN(v, v.CastTo(table->schema.at(pos).type));
      }
      new_row[pos] = std::move(v);
    }
    for (const auto& idx : table->indexes) {
      std::string key = IndexKeyFor(*idx, old_row);
      Status st = idx->tree->Delete(key, rid);
      if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
    }
    std::string image;
    MTDB_RETURN_IF_ERROR(table->codec->Encode(new_row, &image));
    Rid new_rid = rid;
    MTDB_RETURN_IF_ERROR(table->heap->Update(&new_rid, image));
    for (const auto& idx : table->indexes) {
      std::string key = IndexKeyFor(*idx, new_row);
      MTDB_RETURN_IF_ERROR(idx->tree->Insert(key, new_rid));
    }
  }
  return static_cast<int64_t>(affected.size());
}

Result<int64_t> Database::ExecuteDelete(const sql::DeleteStmt& stmt,
                                        const ExecContext& ctx) {
  TableInfo* table = catalog_->GetTable(stmt.table);
  if (table == nullptr) return Status::NotFound("no such table: " + stmt.table);
  sql::SelectStmt select;
  select.select_star = true;
  sql::TableRef ref;
  ref.table_name = stmt.table;
  select.from.push_back(std::move(ref));
  if (stmt.where != nullptr) select.where = stmt.where->Clone();
  MTDB_ASSIGN_OR_RETURN(
      PlannedQuery plan,
      PlanSelect(select, catalog_.get(), options_.planner_mode));
  MTDB_RETURN_IF_ERROR(plan.exec->Init(ctx));
  std::vector<std::pair<Rid, Row>> affected;
  Row row;
  while (true) {
    Result<bool> more = plan.exec->Next(&row, ctx);
    if (!more.ok()) return more.status();
    if (!*more) break;
    const Rid* rid = plan.exec->current_rid();
    if (rid == nullptr) {
      return Status::Internal("delete scan lost row identity");
    }
    affected.emplace_back(*rid, row);
  }
  for (const auto& [rid, old_row] : affected) {
    MTDB_RETURN_IF_ERROR(DeleteRowLocked(table, old_row, rid));
  }
  return static_cast<int64_t>(affected.size());
}

Status Database::CreateTable(const std::string& name, Schema schema) {
  std::lock_guard<std::mutex> lock(mu_);
  MTDB_ASSIGN_OR_RETURN(TableInfo * info,
                        catalog_->CreateTable(name, std::move(schema)));
  (void)info;
  return Status::OK();
}

Status Database::DropTable(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return catalog_->DropTable(name);
}

Status Database::CreateIndex(const std::string& table, const std::string& index,
                             const std::vector<std::string>& columns,
                             bool unique) {
  std::lock_guard<std::mutex> lock(mu_);
  MTDB_ASSIGN_OR_RETURN(IndexInfo * info,
                        catalog_->CreateIndex(table, index, columns, unique));
  (void)info;
  return Status::OK();
}

Status Database::InsertRow(const std::string& table, const Row& row) {
  std::lock_guard<std::mutex> lock(mu_);
  TableInfo* info = catalog_->GetTable(table);
  if (info == nullptr) return Status::NotFound("no such table: " + table);
  return InsertRowLocked(info, row);
}

EngineStats Database::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineStats out;
  out.buffer = pool_->stats();
  out.store = store_->stats();
  out.metadata_bytes = catalog_->metadata_bytes();
  out.buffer_capacity = pool_->capacity();
  out.tables = catalog_->table_count();
  out.indexes = catalog_->index_count();
  return out;
}

void Database::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  pool_->ResetStats();
  store_->ResetStats();
}

void Database::ColdCache() {
  std::lock_guard<std::mutex> lock(mu_);
  pool_->EvictAll();
}

}  // namespace mtdb
