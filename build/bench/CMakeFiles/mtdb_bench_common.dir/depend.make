# Empty dependencies file for mtdb_bench_common.
# This may be replaced when dependencies are built.
