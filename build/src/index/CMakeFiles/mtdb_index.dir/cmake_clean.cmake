file(REMOVE_RECURSE
  "CMakeFiles/mtdb_index.dir/btree.cc.o"
  "CMakeFiles/mtdb_index.dir/btree.cc.o.d"
  "libmtdb_index.a"
  "libmtdb_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtdb_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
