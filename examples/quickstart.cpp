// Quickstart: the paper's Figure 4 running example on Chunk Folding.
//
// Three tenants share one multi-tenant database. Tenant 17 extends
// Account for health care, tenant 42 for automotive; tenant 35 uses the
// base schema. The mapping layer rewrites each tenant's ordinary SQL
// into queries over the physical multi-tenant tables.
#include <cstdio>

#include "core/chunk_folding_layout.h"
#include "core/tenant_session.h"

using namespace mtdb;           // NOLINT: example brevity
using namespace mtdb::mapping;  // NOLINT

namespace {

void Check(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main() {
  // 1. Describe the application's logical schema: one base table plus
  //    the catalog of vertical-industry extensions.
  AppSchema app;
  LogicalTable account;
  account.name = "account";
  account.columns = {{"aid", TypeId::kInt64, /*indexed=*/true},
                     {"name", TypeId::kString, false}};
  Check(app.AddTable(std::move(account)), "add table");

  ExtensionDef healthcare;
  healthcare.name = "healthcare";
  healthcare.base_table = "account";
  healthcare.columns = {{"hospital", TypeId::kString, false},
                        {"beds", TypeId::kInt32, false}};
  Check(app.AddExtension(std::move(healthcare)), "add extension");

  ExtensionDef automotive;
  automotive.name = "automotive";
  automotive.base_table = "account";
  automotive.columns = {{"dealers", TypeId::kInt32, false}};
  Check(app.AddExtension(std::move(automotive)), "add extension");

  // 2. Stand up the multi-tenant database with the Chunk Folding layout:
  //    hot base columns in a conventional table, extensions folded into
  //    a fixed set of generic Chunk Tables.
  Database db;
  ChunkFoldingLayout layout(&db, &app);
  Check(layout.Bootstrap(), "bootstrap");

  for (TenantId t : {17, 35, 42}) Check(layout.CreateTenant(t), "tenant");
  Check(layout.EnableExtension(17, "healthcare"), "extension");
  Check(layout.EnableExtension(42, "automotive"), "extension");

  // 3. Each tenant's application opens a session — the front door to
  //    the mapping layer — and loads data with plain SQL against *its
  //    own* schema. Sessions are cheap, per-thread handles; a real
  //    service holds one per connection.
  TenantSession healthcare_app = layout.OpenSession(17);
  TenantSession plain_app = layout.OpenSession(35);
  TenantSession automotive_app = layout.OpenSession(42);
  Check(healthcare_app
            .Execute("INSERT INTO account (aid, name, hospital, beds) VALUES "
                     "(1, 'Acme', 'St. Mary', 135), (2, 'Gump', 'State', 1042)")
            .status(),
        "insert t17");
  Check(plain_app.Execute("INSERT INTO account (aid, name) VALUES (1, 'Ball')")
            .status(),
        "insert t35");
  Check(automotive_app
            .Execute("INSERT INTO account (aid, name, dealers) VALUES "
                     "(1, 'Big', 65)")
            .status(),
        "insert t42");

  // 4. Query Q1 from the paper, written by tenant 17 as if it owned a
  //    private Account table.
  const char* q1 = "SELECT beds FROM account WHERE hospital = 'State'";
  auto result = healthcare_app.Query(q1);
  Check(result.status(), "query");
  std::printf("Q1 for tenant 17: %s\n", q1);
  for (const Row& row : result->rows) {
    std::printf("  beds = %s\n", row[0].ToString().c_str());
  }

  // 5. Peek behind the curtain: the SQL the transformation layer
  //    actually ran (cf. the paper's Section 6.1).
  auto transformed = healthcare_app.ShowTransformed(q1);
  Check(transformed.status(), "transform");
  std::printf("\ntransformed physical SQL:\n  %s\n", transformed->c_str());

  // 6. Consolidation: every tenant's data lives in just a few tables.
  EngineStats stats = db.Stats();
  std::printf("\nphysical tables for all tenants: %zu (meta-data %llu KB)\n",
              stats.tables,
              static_cast<unsigned long long>(stats.metadata_bytes / 1024));
  return 0;
}
