# Empty compiler generated dependencies file for bench_fold_tuning.
# This may be replaced when dependencies are built.
