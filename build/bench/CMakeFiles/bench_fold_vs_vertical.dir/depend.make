# Empty dependencies file for bench_fold_vs_vertical.
# This may be replaced when dependencies are built.
