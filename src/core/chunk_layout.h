#ifndef MTDB_CORE_CHUNK_LAYOUT_H_
#define MTDB_CORE_CHUNK_LAYOUT_H_

#include <memory>
#include <set>
#include <string>

#include "core/chunk_partitioner.h"
#include "core/layout.h"

namespace mtdb {
namespace mapping {

/// Options for the Chunk Table Layout family.
struct ChunkLayoutOptions {
  /// Width/shape of the shared data chunk table.
  ChunkShape shape = ChunkShape::Uniform(6);
  /// true  => Figure 4(e): all chunks fold into shared generic tables
  ///          (chunkdata/chunkidx) disambiguated by a Chunk column.
  /// false => "vertical partitioning" comparison case of Test 6: the
  ///          same chunks, but each (table, chunk) gets its own physical
  ///          table — identical layout minus the Chunk meta column, at
  ///          the cost of many more tables.
  bool fold = true;
  /// §6.3 Trashcan: deletes become updates that mark rows invisible via
  /// a `del` column; RestoreDeleted() undoes them.
  bool trashcan = false;
};

/// Figure 4(e) "Chunk Table Layout" (and its unfolded vertical-
/// partitioning sibling). Logical tables are partitioned into chunks by
/// PartitionIntoChunks; indexed columns land in an indexed chunk table
/// so they stay index-supported.
class ChunkTableLayout final : public SchemaMapping {
 public:
  ChunkTableLayout(Database* db, const AppSchema* app,
                   ChunkLayoutOptions options = ChunkLayoutOptions())
      : SchemaMapping(db, app), options_(options) {}

  std::string name() const override {
    return options_.fold ? "chunk" : "vertical";
  }

  Status Bootstrap() override;

  const ChunkLayoutOptions& options() const { return options_; }

  static std::string DataTableName() { return "chunkdata"; }
  static std::string IndexTableName() { return "chunkidx"; }

 protected:
  Result<std::unique_ptr<TableMapping>> BuildMapping(
      TenantId tenant, const std::string& table) override;
  Status RecoverDerivedState() override;

 private:
  /// Vertical (unfolded) variant: ensures the dedicated physical table
  /// for one chunk of one effective table exists.
  Result<std::string> EnsureVerticalTable(const std::string& table,
                                          const EffectiveTable& eff,
                                          const ChunkAssignment& chunk);

  ChunkLayoutOptions options_;
  std::set<std::string> provisioned_;
};

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_CHUNK_LAYOUT_H_
