#include "sql/printer.h"

namespace mtdb {
namespace sql {

namespace {

const char* BinaryOpSql(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

}  // namespace

std::string ToSql(const ParsedExpr& expr) {
  switch (expr.kind) {
    case PExprKind::kLiteral:
      return expr.literal.ToSqlLiteral();
    case PExprKind::kColumnRef:
      return expr.table.empty() ? expr.column : expr.table + "." + expr.column;
    case PExprKind::kParam:
      return "?";
    case PExprKind::kUnary:
      if (expr.unary_op == UnaryOp::kNot) {
        return "(NOT " + ToSql(*expr.left) + ")";
      }
      return "(-" + ToSql(*expr.left) + ")";
    case PExprKind::kBinary:
      return "(" + ToSql(*expr.left) + " " + BinaryOpSql(expr.binary_op) + " " +
             ToSql(*expr.right) + ")";
    case PExprKind::kIsNull:
      return "(" + ToSql(*expr.left) +
             (expr.is_null_negated ? " IS NOT NULL)" : " IS NULL)");
    case PExprKind::kLike:
      return "(" + ToSql(*expr.left) +
             (expr.like_negated ? " NOT LIKE " : " LIKE ") +
             ToSql(*expr.right) + ")";
    case PExprKind::kFuncCall: {
      std::string out = expr.func_name + "(";
      if (expr.func_star) {
        out += "*";
      } else {
        for (size_t i = 0; i < expr.args.size(); ++i) {
          if (i > 0) out += ", ";
          out += ToSql(*expr.args[i]);
        }
      }
      out += ")";
      return out;
    }
    case PExprKind::kStar:
      return "*";
  }
  return "?";
}

std::string ToSql(const SelectStmt& stmt) {
  std::string out = "SELECT ";
  if (stmt.distinct) out += "DISTINCT ";
  if (stmt.select_star) {
    out += "*";
  } else {
    for (size_t i = 0; i < stmt.items.size(); ++i) {
      if (i > 0) out += ", ";
      out += ToSql(*stmt.items[i].expr);
      if (!stmt.items[i].alias.empty()) out += " AS " + stmt.items[i].alias;
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < stmt.from.size(); ++i) {
    if (i > 0) out += ", ";
    const TableRef& ref = stmt.from[i];
    if (ref.is_subquery()) {
      out += "(" + ToSql(*ref.subquery) + ") AS " + ref.alias;
    } else {
      out += ref.table_name;
      if (!ref.alias.empty()) out += " " + ref.alias;
    }
  }
  if (stmt.where != nullptr) {
    out += " WHERE " + ToSql(*stmt.where);
  }
  if (!stmt.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ToSql(*stmt.group_by[i]);
    }
  }
  if (stmt.having != nullptr) {
    out += " HAVING " + ToSql(*stmt.having);
  }
  if (!stmt.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += ToSql(*stmt.order_by[i].expr);
      if (stmt.order_by[i].descending) out += " DESC";
    }
  }
  if (stmt.limit >= 0) {
    out += " LIMIT " + std::to_string(stmt.limit);
    if (stmt.offset > 0) out += " OFFSET " + std::to_string(stmt.offset);
  }
  return out;
}

std::string ToSql(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      return ToSql(*stmt.select);
    case StatementKind::kInsert: {
      std::string out = "INSERT INTO " + stmt.insert->table;
      if (!stmt.insert->columns.empty()) {
        out += " (";
        for (size_t i = 0; i < stmt.insert->columns.size(); ++i) {
          if (i > 0) out += ", ";
          out += stmt.insert->columns[i];
        }
        out += ")";
      }
      out += " VALUES ";
      for (size_t r = 0; r < stmt.insert->rows.size(); ++r) {
        if (r > 0) out += ", ";
        out += "(";
        for (size_t i = 0; i < stmt.insert->rows[r].size(); ++i) {
          if (i > 0) out += ", ";
          out += ToSql(*stmt.insert->rows[r][i]);
        }
        out += ")";
      }
      return out;
    }
    case StatementKind::kUpdate: {
      std::string out = "UPDATE " + stmt.update->table + " SET ";
      for (size_t i = 0; i < stmt.update->assignments.size(); ++i) {
        if (i > 0) out += ", ";
        out += stmt.update->assignments[i].first + " = " +
               ToSql(*stmt.update->assignments[i].second);
      }
      if (stmt.update->where != nullptr) {
        out += " WHERE " + ToSql(*stmt.update->where);
      }
      return out;
    }
    case StatementKind::kDelete: {
      std::string out = "DELETE FROM " + stmt.del->table;
      if (stmt.del->where != nullptr) {
        out += " WHERE " + ToSql(*stmt.del->where);
      }
      return out;
    }
    case StatementKind::kCreateTable: {
      std::string out = "CREATE TABLE " + stmt.create_table->table + " (";
      for (size_t i = 0; i < stmt.create_table->columns.size(); ++i) {
        if (i > 0) out += ", ";
        const ColumnDef& c = stmt.create_table->columns[i];
        out += c.name;
        out += " ";
        out += TypeName(c.type);
        if (c.not_null) out += " NOT NULL";
      }
      out += ")";
      return out;
    }
    case StatementKind::kCreateIndex: {
      std::string out = "CREATE ";
      if (stmt.create_index->unique) out += "UNIQUE ";
      out += "INDEX " + stmt.create_index->index + " ON " +
             stmt.create_index->table + " (";
      for (size_t i = 0; i < stmt.create_index->columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += stmt.create_index->columns[i];
      }
      out += ")";
      return out;
    }
    case StatementKind::kDropTable:
      return "DROP TABLE " + stmt.drop_table->table;
    case StatementKind::kDropIndex:
      return "DROP INDEX " + stmt.drop_index->index;
    case StatementKind::kExplainMapping:
      return "EXPLAIN MAPPING " + ToSql(*stmt.explain->target);
    case StatementKind::kBegin:
      return "BEGIN";
    case StatementKind::kCommit:
      return "COMMIT";
    case StatementKind::kRollback:
      return "ROLLBACK";
  }
  return "";
}

}  // namespace sql
}  // namespace mtdb
