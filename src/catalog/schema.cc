#include "catalog/schema.h"

#include <algorithm>
#include <cctype>

namespace mtdb {

bool IdentEquals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string IdentLower(const std::string& s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

std::optional<size_t> Schema::Find(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (IdentEquals(columns_[i].name, name)) return i;
  }
  return std::nullopt;
}

std::vector<TypeId> Schema::Types() const {
  std::vector<TypeId> out;
  out.reserve(columns_.size());
  for (const Column& c : columns_) out.push_back(c.type);
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += TypeName(columns_[i].type);
    if (columns_[i].not_null) out += " NOT NULL";
  }
  return out;
}

}  // namespace mtdb
