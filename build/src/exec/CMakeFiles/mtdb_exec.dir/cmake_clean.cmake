file(REMOVE_RECURSE
  "CMakeFiles/mtdb_exec.dir/executor.cc.o"
  "CMakeFiles/mtdb_exec.dir/executor.cc.o.d"
  "CMakeFiles/mtdb_exec.dir/expr.cc.o"
  "CMakeFiles/mtdb_exec.dir/expr.cc.o.d"
  "libmtdb_exec.a"
  "libmtdb_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtdb_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
