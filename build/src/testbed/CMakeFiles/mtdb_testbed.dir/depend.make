# Empty dependencies file for mtdb_testbed.
# This may be replaced when dependencies are built.
