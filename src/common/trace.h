#ifndef MTDB_COMMON_TRACE_H_
#define MTDB_COMMON_TRACE_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics_registry.h"

namespace mtdb::trace {

/// Per-span I/O attribution deltas. Plain integers: a span belongs to
/// exactly one session thread, and the storage hooks below only touch
/// the tracer installed on the current thread.
struct SpanIo {
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;
  uint64_t wal_bytes = 0;

  SpanIo& operator+=(const SpanIo& o) {
    pool_hits += o.pool_hits;
    pool_misses += o.pool_misses;
    physical_reads += o.physical_reads;
    physical_writes += o.physical_writes;
    wal_bytes += o.wal_bytes;
    return *this;
  }
};

/// One node of a statement's span tree. The root span covers the whole
/// logical statement; children are the physical statements the mapping
/// layer emitted plus engine-side work (page fetches roll up into io).
struct Span {
  std::string name;
  uint64_t elapsed_ns = 0;
  SpanIo io;  // own I/O only; TotalIo() folds in children
  std::vector<std::unique_ptr<Span>> children;

  SpanIo TotalIo() const;
};

/// A completed trace of one logical statement.
struct StatementTrace {
  int64_t tenant = -1;
  std::string layout;  // layout name, or "engine" for raw sessions
  std::string kind;    // lowercase statement kind: select/insert/...
  bool ok = true;
  std::unique_ptr<Span> root;
};

/// Per-session statement tracer. Not thread-safe: a tracer belongs to
/// one session and is installed on the executing thread for the
/// duration of each statement (TracerScope). On EndStatement the span
/// tree is aggregated into the registry per (tenant, layout, kind):
///
///   stmt.count.<layout>.<kind>.t<tenant>          counter
///   stmt.errors.<layout>.<kind>.t<tenant>         counter
///   stmt.pool_hits / pool_misses / pages_read /
///        pages_written / wal_bytes.<...>          counters
///   stmt.latency_us.<layout>.<kind>.t<tenant>     histogram
///
/// Cardinality is bounded twice: the tracer caches at most
/// kMaxSeriesKeys distinct (tenant, layout, kind) keys (beyond that the
/// tenant label collapses to "other"), and the registry itself caps
/// total series.
class StatementTracer {
 public:
  static constexpr size_t kMaxSeriesKeys = 64;

  explicit StatementTracer(MetricsRegistry* registry) : registry_(registry) {}

  StatementTracer(const StatementTracer&) = delete;
  StatementTracer& operator=(const StatementTracer&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  /// Opens the root span for a logical statement. No-op while disabled
  /// or when a statement is already open (nested logical statements do
  /// not occur; the guard makes misuse harmless).
  void BeginStatement(int64_t tenant, std::string layout, std::string kind);

  /// Closes the root span, aggregates into the registry, and retires
  /// the trace to last().
  void EndStatement(bool ok);

  /// Opens a transaction grouping (client BEGIN). While one is open,
  /// every completed statement aggregates under "<kind>.txn" series
  /// instead of "<kind>" — autocommit series names are untouched — and
  /// contributes a summary child span to the transaction's parent span.
  /// No-op while disabled or when a transaction is already open.
  void BeginTransaction(int64_t tenant, std::string layout);

  /// Closes the transaction grouping (COMMIT/ROLLBACK/abort), aggregates
  /// it into the registry under the "txn" kind, and retires the parent
  /// span tree to last_transaction(). `ok` means committed.
  void EndTransaction(bool ok);

  bool in_transaction() const { return txn_ != nullptr; }

  /// Opens a child span under the innermost open span. Safe no-op when
  /// no statement is open.
  void BeginSpan(std::string name);
  void EndSpan();

  /// Storage-attribution hooks, called via the free functions below.
  void OnPoolHit() {
    if (current_) current_->io.pool_hits++;
  }
  void OnPoolMiss() {
    if (current_) current_->io.pool_misses++;
  }
  void OnPhysicalRead() {
    if (current_) current_->io.physical_reads++;
  }
  void OnPhysicalWrite() {
    if (current_) current_->io.physical_writes++;
  }
  void OnWalBytes(uint64_t n) {
    if (current_) current_->io.wal_bytes += n;
  }

  /// The most recently completed statement trace (nullptr before any).
  const StatementTrace* last() const { return last_.get(); }
  /// Renders last() as an indented span tree, for debugging and the
  /// observability tests.
  std::string DumpLast() const;

  /// The most recently completed transaction trace (nullptr before
  /// any): root span "txn" with one summary child per statement.
  const StatementTrace* last_transaction() const { return last_txn_.get(); }

  uint64_t statements_traced() const { return statements_traced_; }

 private:
  struct SeriesPtrs {
    Counter* count = nullptr;
    Counter* errors = nullptr;
    Counter* pool_hits = nullptr;
    Counter* pool_misses = nullptr;
    Counter* pages_read = nullptr;
    Counter* pages_written = nullptr;
    Counter* wal_bytes = nullptr;
    LatencyHistogram* latency = nullptr;
  };

  SeriesPtrs* SeriesFor(int64_t tenant, const std::string& layout,
                        const std::string& kind);

  MetricsRegistry* registry_;
  bool enabled_ = false;
  std::unique_ptr<StatementTrace> open_;
  std::vector<Span*> stack_;       // innermost last; root at [0]
  Span* current_ = nullptr;        // == stack_.back() or nullptr
  std::chrono::steady_clock::time_point started_;
  std::vector<std::chrono::steady_clock::time_point> span_started_;
  std::unique_ptr<StatementTrace> last_;
  std::unique_ptr<StatementTrace> txn_;  // open transaction grouping
  std::chrono::steady_clock::time_point txn_started_;
  std::unique_ptr<StatementTrace> last_txn_;
  std::map<std::string, SeriesPtrs> series_;  // bounded by kMaxSeriesKeys
  uint64_t statements_traced_ = 0;
};

namespace internal {
/// The tracer installed on this thread for the statement in flight.
/// Null almost always — the disabled fast path in the hooks below is a
/// thread-local load plus branch.
extern thread_local StatementTracer* tls_tracer;
}  // namespace internal

/// Installs a tracer on the current thread for one statement's
/// execution. The session front door holds one of these across
/// ExecuteParsed so storage-layer hooks attribute I/O to the statement.
class TracerScope {
 public:
  explicit TracerScope(StatementTracer* tracer)
      : prev_(internal::tls_tracer) {
    internal::tls_tracer = tracer;
  }
  ~TracerScope() { internal::tls_tracer = prev_; }
  TracerScope(const TracerScope&) = delete;
  TracerScope& operator=(const TracerScope&) = delete;

 private:
  StatementTracer* prev_;
};

/// Opens a child span when a tracer is active on this thread; otherwise
/// costs one thread-local load. `op` and `detail` are concatenated
/// lazily — the string is only built when tracing.
class SpanScope {
 public:
  SpanScope(const char* op, const std::string& detail)
      : tracer_(internal::tls_tracer) {
    if (tracer_) tracer_->BeginSpan(detail.empty()
                                        ? std::string(op)
                                        : std::string(op) + " " + detail);
  }
  explicit SpanScope(const char* op) : tracer_(internal::tls_tracer) {
    if (tracer_) tracer_->BeginSpan(op);
  }
  ~SpanScope() {
    if (tracer_) tracer_->EndSpan();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  StatementTracer* tracer_;
};

/// Storage-layer attribution hooks. Inline: disabled cost is one
/// thread-local load and branch.
inline void OnPoolHit() {
  if (internal::tls_tracer) internal::tls_tracer->OnPoolHit();
}
inline void OnPoolMiss() {
  if (internal::tls_tracer) internal::tls_tracer->OnPoolMiss();
}
inline void OnPhysicalRead() {
  if (internal::tls_tracer) internal::tls_tracer->OnPhysicalRead();
}
inline void OnPhysicalWrite() {
  if (internal::tls_tracer) internal::tls_tracer->OnPhysicalWrite();
}
inline void OnWalBytes(uint64_t n) {
  if (internal::tls_tracer) internal::tls_tracer->OnWalBytes(n);
}

/// True when the MTDB_TRACE environment variable is set non-empty and
/// not "0": sessions then open with tracing already enabled (the CI
/// trace-forced job sets it for the whole suite).
bool TracingForced();

}  // namespace mtdb::trace

#endif  // MTDB_COMMON_TRACE_H_
