#ifndef MTDB_COMMON_DEADLINE_H_
#define MTDB_COMMON_DEADLINE_H_

#include <chrono>
#include <cstdint>

#include "common/status.h"

namespace mtdb::deadline {

/// A statement deadline: an absolute steady-clock instant past which the
/// statement should stop doing work and return kDeadlineExceeded. The
/// default-constructed Deadline is inactive (no limit).
struct Deadline {
  std::chrono::steady_clock::time_point at{};
  bool active = false;

  static Deadline None() { return Deadline{}; }
  static Deadline At(std::chrono::steady_clock::time_point tp) {
    return Deadline{tp, true};
  }
  template <typename Rep, typename Period>
  static Deadline After(std::chrono::duration<Rep, Period> d) {
    return Deadline{std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(d),
                    true};
  }
  static Deadline AfterMillis(int64_t ms) {
    return After(std::chrono::milliseconds(ms));
  }

  bool Expired() const {
    return active && std::chrono::steady_clock::now() >= at;
  }
};

namespace internal {
/// The deadline of the statement in flight on this thread. Inactive
/// almost always — the fast path of every hook below is a thread-local
/// load plus branch, mirroring trace::internal::tls_tracer.
extern thread_local Deadline tls_deadline;
}  // namespace internal

/// The ambient deadline for the current thread (inactive when none).
inline Deadline Current() { return internal::tls_deadline; }

inline bool Active() { return internal::tls_deadline.active; }

/// True when a deadline is installed and already past. Storage layers
/// use this to skip simulated stalls for doomed statements.
inline bool Expired() { return internal::tls_deadline.Expired(); }

/// Cooperative cancellation point: OK while no deadline is installed or
/// time remains; kDeadlineExceeded once the installed deadline is past.
inline Status Check() {
  if (!internal::tls_deadline.active) return Status::OK();
  if (std::chrono::steady_clock::now() >= internal::tls_deadline.at) {
    return Status::DeadlineExceeded("statement deadline exceeded");
  }
  return Status::OK();
}

/// Installs a deadline on the current thread for one statement's
/// execution (the session front doors hold one across the statement so
/// the executor, B-tree, buffer pool and page store can all observe it).
/// Restores the previous deadline on destruction. Installing an inactive
/// Deadline SUPPRESSES any ambient one — undo-log rollback and engine
/// housekeeping (checkpoints, recovery) use that so compensation work is
/// never itself cancelled mid-flight.
class Scope {
 public:
  explicit Scope(Deadline d) : prev_(internal::tls_deadline) {
    internal::tls_deadline = d;
  }
  ~Scope() { internal::tls_deadline = prev_; }
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Deadline prev_;
};

}  // namespace mtdb::deadline

#endif  // MTDB_COMMON_DEADLINE_H_
