#include "common/value.h"

#include <cstdio>
#include <cstdlib>
#include <functional>

namespace mtdb {

namespace {

bool IsNumeric(TypeId t) {
  return t == TypeId::kBool || t == TypeId::kInt32 || t == TypeId::kInt64 ||
         t == TypeId::kDouble || t == TypeId::kDate;
}

std::string DateToString(int32_t days) {
  // Civil-from-days algorithm (Howard Hinnant), valid for all int32 days.
  int64_t z = days + 719468;
  int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  int64_t doe = z - era * 146097;
  int64_t yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  int64_t y = yoe + era * 400;
  int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  int64_t mp = (5 * doy + 2) / 153;
  int64_t d = doy - (153 * mp + 2) / 5 + 1;
  int64_t m = mp < 10 ? mp + 3 : mp - 9;
  if (m <= 2) y += 1;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04lld-%02lld-%02lld",
                static_cast<long long>(y), static_cast<long long>(m),
                static_cast<long long>(d));
  return buf;
}

int32_t DaysFromCivil(int64_t y, int64_t m, int64_t d) {
  // Inverse of DateToString's civil-from-days (Howard Hinnant).
  y -= m <= 2;
  int64_t era = (y >= 0 ? y : y - 399) / 400;
  int64_t yoe = y - era * 400;
  int64_t doy = (153 * (m > 2 ? m - 3 : m + 9) + 2) / 5 + d - 1;
  int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return static_cast<int32_t>(era * 146097 + doe - 719468);
}

}  // namespace

std::string Value::ToString() const {
  if (null_) return "NULL";
  switch (type_) {
    case TypeId::kNull:
      return "NULL";
    case TypeId::kBool:
      return AsBool() ? "true" : "false";
    case TypeId::kInt32:
    case TypeId::kInt64:
      return std::to_string(AsInt64());
    case TypeId::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case TypeId::kDate:
      return DateToString(AsDate());
    case TypeId::kString:
      return AsString();
  }
  return "?";
}

std::string Value::ToSqlLiteral() const {
  if (null_) return "NULL";
  if (type_ == TypeId::kString || type_ == TypeId::kDate) {
    std::string out = "'";
    for (char c : ToString()) {
      if (c == '\'') out += "''";
      else out += c;
    }
    out += "'";
    return out;
  }
  return ToString();
}

Result<Value> Value::CastTo(TypeId target) const {
  if (null_) return Value::Null(target);
  if (type_ == target) return *this;
  switch (target) {
    case TypeId::kBool:
      if (IsNumeric(type_)) return Value::Bool(AsDouble() != 0.0);
      if (type_ == TypeId::kString) {
        // Inverse of ToString's "true"/"false"; digits also accepted.
        const std::string& s = AsString();
        if (s == "true" || s == "1") return Value::Bool(true);
        if (s == "false" || s == "0") return Value::Bool(false);
      }
      break;
    case TypeId::kInt32:
      if (IsNumeric(type_)) return Value::Int32(static_cast<int32_t>(
          std::holds_alternative<double>(data_) ? AsDouble() : AsInt64()));
      if (type_ == TypeId::kString) {
        return Value::Int32(static_cast<int32_t>(std::atoll(AsString().c_str())));
      }
      break;
    case TypeId::kInt64:
      if (IsNumeric(type_)) return Value::Int64(
          std::holds_alternative<double>(data_)
              ? static_cast<int64_t>(AsDouble())
              : AsInt64());
      if (type_ == TypeId::kString) {
        return Value::Int64(std::atoll(AsString().c_str()));
      }
      break;
    case TypeId::kDouble:
      if (IsNumeric(type_)) return Value::Double(AsDouble());
      if (type_ == TypeId::kString) {
        return Value::Double(std::atof(AsString().c_str()));
      }
      break;
    case TypeId::kDate:
      if (IsNumeric(type_)) return Value::Date(static_cast<int32_t>(AsInt64()));
      if (type_ == TypeId::kString) {
        // The generic VARCHAR slots store dates in ToString's
        // "YYYY-MM-DD" form; a bare integer is taken as a day count.
        int y = 0, m = 0, d = 0;
        if (std::sscanf(AsString().c_str(), "%d-%d-%d", &y, &m, &d) == 3 &&
            m >= 1 && m <= 12 && d >= 1 && d <= 31) {
          return Value::Date(DaysFromCivil(y, m, d));
        }
        char* end = nullptr;
        long long days = std::strtoll(AsString().c_str(), &end, 10);
        if (end != AsString().c_str() && *end == '\0') {
          return Value::Date(static_cast<int32_t>(days));
        }
      }
      break;
    case TypeId::kString:
      return Value::String(ToString());
    case TypeId::kNull:
      break;
  }
  return Status::TypeMismatch(std::string("cannot cast ") + TypeName(type_) +
                              " to " + TypeName(target));
}

int Value::Compare(const Value& other) const {
  if (null_ || other.null_) {
    if (null_ && other.null_) return 0;
    return null_ ? -1 : 1;
  }
  const bool lnum = IsNumeric(type_);
  const bool rnum = IsNumeric(other.type_);
  if (lnum && rnum) {
    const bool ld = std::holds_alternative<double>(data_);
    const bool rd = std::holds_alternative<double>(other.data_);
    if (!ld && !rd) {
      int64_t a = AsInt64(), b = other.AsInt64();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  // At least one side is a string: compare textual forms.
  const std::string a = lnum ? ToString() : AsString();
  const std::string b = rnum ? other.ToString() : other.AsString();
  return a.compare(b) < 0 ? -1 : (a == b ? 0 : 1);
}

size_t Value::Hash() const {
  if (null_) return 0x9e3779b97f4a7c15ULL;
  if (std::holds_alternative<std::string>(data_)) {
    return std::hash<std::string>{}(std::get<std::string>(data_));
  }
  if (std::holds_alternative<double>(data_)) {
    double d = std::get<double>(data_);
    // Hash integral doubles like the equivalent int64 so numeric
    // cross-type equality keeps hash consistency.
    if (d == static_cast<double>(static_cast<int64_t>(d))) {
      return std::hash<int64_t>{}(static_cast<int64_t>(d));
    }
    return std::hash<double>{}(d);
  }
  return std::hash<int64_t>{}(std::get<int64_t>(data_));
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace mtdb
