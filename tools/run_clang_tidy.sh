#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy) over the first-party sources.
#
# Usage: tools/run_clang_tidy.sh [build-dir] [path ...]
#   build-dir  directory holding compile_commands.json (default: build)
#   path ...   source globs to lint (default: src/core src/sql src/analysis)
#
# Gates gracefully when clang-tidy is not installed (CI images without
# LLVM tooling): prints a notice and exits 0 so the build stays green.
set -u

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
shift 2>/dev/null || true
PATHS=("$@")
if [ "${#PATHS[@]}" -eq 0 ]; then
  PATHS=(src/core src/sql src/analysis)
fi

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping lint." >&2
  exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
  echo "run_clang_tidy: ${BUILD_DIR}/compile_commands.json missing;" >&2
  echo "  configure with: cmake -B ${BUILD_DIR} -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

FILES=$(find "${PATHS[@]}" -name '*.cc' | sort)
if [ -z "${FILES}" ]; then
  echo "run_clang_tidy: no sources found under: ${PATHS[*]}" >&2
  exit 1
fi

STATUS=0
for f in ${FILES}; do
  echo "== clang-tidy ${f}"
  clang-tidy -p "${BUILD_DIR}" --quiet "${f}" || STATUS=1
done
exit ${STATUS}
