#ifndef MTDB_COMMON_FAULT_H_
#define MTDB_COMMON_FAULT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/rng.h"

namespace mtdb {

/// Named fault points the storage tier consults on every physical I/O.
/// The set models the failure classes a shared "NFS appliance" style
/// page store is exposed to: transient I/O errors on either direction,
/// partially-applied (torn) writes, on-the-wire corruption, and latency
/// spikes.
enum class FaultPoint : int {
  kPageRead = 0,   // read returns a transient I/O error
  kPageWrite,      // write returns a transient I/O error, nothing stored
  kTornWrite,      // only a prefix of the image reaches the device
  kBitFlip,        // one bit of the returned read image is corrupted
  kLatencySpike,   // the I/O completes but stalls the issuing thread
  kCrash,          // process death: the durability layer freezes mid-op
};

inline constexpr int kFaultPointCount = 6;

const char* FaultPointName(FaultPoint point);

/// How one armed fault point behaves. Deterministic given the injector
/// seed and the sequence of evaluations.
struct FaultSpec {
  /// Chance this point fires per evaluation, in [0, 1].
  double probability = 0.0;
  /// Evaluations of this point to let pass before the spec is live
  /// (schedules a deterministic burst mid-run).
  uint64_t skip = 0;
  /// Cap on total fires; 0 = unlimited. Bounded bursts let retry loops
  /// eventually drain the fault and recover.
  uint64_t max_fires = 0;
  /// Torn writes only: report success to the writer (the device lied).
  /// The page checksum then detects the tear on the next physical read.
  bool silent = false;
  /// Latency spikes only: extra stall charged to the issuing thread.
  uint64_t latency_ns = 0;
};

/// Seeded, deterministic fault injector. A PageStore holds an optional
/// pointer to one of these and consults it on every physical read and
/// write; with no injector attached (the default) the hot path pays a
/// single relaxed atomic load.
///
/// Determinism: firing decisions come from one seeded Rng advanced once
/// per armed-point evaluation under an internal mutex, so a single-
/// threaded workload replays exactly from (seed, schedule). Multi-
/// threaded runs stay seed-stable per interleaving.
///
/// Thread-safety: all methods are safe to call concurrently.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms (or re-arms) a fault point. Resets its fire/evaluation counts.
  void Arm(FaultPoint point, FaultSpec spec);

  /// Disarms one point (it no longer fires; counters are kept).
  void Disarm(FaultPoint point);
  void DisarmAll();

  /// Master switch. When disabled, ShouldFire never fires and does not
  /// advance the Rng or the evaluation counters, so verification reads
  /// in chaos harnesses do not perturb the deterministic schedule.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Decides whether `point` fires on this evaluation. `spec_out`, when
  /// non-null, receives a copy of the armed spec on fire (for the torn
  /// `silent` flag and the spike `latency_ns`).
  bool ShouldFire(FaultPoint point, FaultSpec* spec_out = nullptr);

  /// Total times `point` fired / was evaluated since it was last armed.
  uint64_t fires(FaultPoint point) const;
  uint64_t evaluations(FaultPoint point) const;

 private:
  struct PointState {
    bool armed = false;
    FaultSpec spec;
    uint64_t fires = 0;
    uint64_t evaluations = 0;
  };

  std::atomic<bool> enabled_{true};
  mutable std::mutex mu_;
  Rng rng_;
  std::array<PointState, kFaultPointCount> points_;
};

/// RAII pause for an injector: verification reads inside chaos tests run
/// with injection suspended, then the schedule resumes untouched.
class FaultInjectorPause {
 public:
  explicit FaultInjectorPause(FaultInjector* injector)
      : injector_(injector), was_enabled_(injector->enabled()) {
    injector_->set_enabled(false);
  }
  ~FaultInjectorPause() { injector_->set_enabled(was_enabled_); }

  FaultInjectorPause(const FaultInjectorPause&) = delete;
  FaultInjectorPause& operator=(const FaultInjectorPause&) = delete;

 private:
  FaultInjector* injector_;
  bool was_enabled_;
};

}  // namespace mtdb

#endif  // MTDB_COMMON_FAULT_H_
