#ifndef MTDB_TESTBED_DATA_GENERATOR_H_
#define MTDB_TESTBED_DATA_GENERATOR_H_

#include <string>

#include "common/rng.h"
#include "common/status.h"
#include "engine/database.h"
#include "testbed/crm_schema.h"

namespace mtdb {
namespace testbed {

/// Synthetic data for the MTD testbed. All data is generated from a
/// seeded Rng, so runs are reproducible.
class DataGenerator {
 public:
  explicit DataGenerator(uint64_t seed) : rng_(seed) {}

  /// A full row for `table` in the shared (tenant-column) layout:
  /// tenant, id, parent fks in [0, parent_rows), then filler values.
  Row CrmRow(const CrmTable& table, TenantId tenant, int64_t id,
             int64_t parent_rows);

  /// Loads `rows_per_table` rows for every CRM table of `instance` for
  /// one tenant.
  Status LoadTenant(Database* db, int instance, TenantId tenant,
                    int64_t rows_per_table);

  Rng& rng() { return rng_; }

 private:
  Value FillerValue(TypeId type);

  Rng rng_;
};

}  // namespace testbed
}  // namespace mtdb

#endif  // MTDB_TESTBED_DATA_GENERATOR_H_
