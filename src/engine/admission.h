#ifndef MTDB_ENGINE_ADMISSION_H_
#define MTDB_ENGINE_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/deadline.h"
#include "common/latch.h"
#include "common/metrics_registry.h"
#include "common/status.h"
#include "common/types.h"

namespace mtdb {

/// Tunables for the engine's admission controller, set once through
/// DatabaseOptions. Disabled by default: the session front doors then
/// pay one branch per statement and nothing else.
struct AdmissionOptions {
  bool enabled = false;
  /// Per-tenant token refill rate in statements/second; <= 0 disables
  /// rate limiting (the in-flight cap still applies).
  double tenant_rate = 0.0;
  /// Token-bucket capacity (burst allowance); <= 0 defaults to
  /// max(tenant_rate, 1).
  double tenant_burst = 0.0;
  /// Statements allowed to execute concurrently engine-wide; 0 means
  /// unlimited (no queueing ever happens).
  uint32_t max_in_flight = 0;
  /// Bound on waiters parked behind the in-flight cap (across all
  /// tenants); past it statements are rejected with kResourceExhausted.
  uint32_t max_queue = 16;
};

class AdmissionController;

/// Tenant id raw engine Sessions admit under (below the mapping layer
/// there is no tenant; -1 is reserved — real tenant ids are >= 0).
inline constexpr TenantId kEngineTenant = -1;

/// RAII execution slot: holds the in-flight slot granted by
/// AdmissionController::Admit and returns it (waking the next queued
/// statement) on destruction. Movable so the session front doors can
/// carry it across the statement's execution.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  ~AdmissionTicket();
  AdmissionTicket(AdmissionTicket&& o) noexcept : ctrl_(o.ctrl_) {
    o.ctrl_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& o) noexcept;
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;

  bool admitted() const { return ctrl_ != nullptr; }
  /// Returns the slot early (idempotent).
  void Release();

 private:
  friend class AdmissionController;
  AdmissionController* ctrl_ = nullptr;
};

/// Per-tenant admission control for the whole engine, owned by Database.
/// Three mechanisms compose, all behind one outermost latch
/// (LatchRank::kAdmission — never held while a statement executes, only
/// across the admit/release bookkeeping itself):
///
///  * Token buckets, one per tenant: each admitted statement spends one
///    token; tokens refill at `tenant_rate`/s up to `tenant_burst`. An
///    empty bucket rejects immediately with kResourceExhausted and a
///    retry_after_ms hint (time until one token accrues) in the message.
///  * A global in-flight cap: past `max_in_flight` concurrently
///    executing statements, arrivals park in a bounded wait queue. The
///    queue is FIFO within a tenant and weighted round-robin across
///    tenants (default weight 1, see SetTenantWeight), so one tenant's
///    backlog cannot starve the others. A full queue rejects with
///    kResourceExhausted + retry_after_ms.
///  * Deadline awareness: a queued statement whose deadline passes
///    abandons its slot and returns kDeadlineExceeded without ever
///    executing.
///
/// Metrics (PR 7 registry): admission.admitted.t<id>,
/// admission.rejected.t<id>, admission.queued.t<id> counters and the
/// admission.queue_wait_us.t<id> histogram. Raw engine sessions admit
/// under the reserved tenant id -1 (rendered "t-1").
class AdmissionController {
 public:
  AdmissionController(const AdmissionOptions& opts, MetricsRegistry* registry);
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  bool enabled() const { return opts_.enabled; }
  const AdmissionOptions& options() const { return opts_; }

  /// Admits one statement for `tenant` or explains why not. On OK the
  /// ticket holds the in-flight slot until it is destroyed/released.
  /// Rejections: kResourceExhausted (empty token bucket or full queue;
  /// message carries "retry_after_ms=<n>") or kDeadlineExceeded (the
  /// deadline passed while queued).
  Status Admit(TenantId tenant, deadline::Deadline dl, AdmissionTicket* ticket);

  /// Sets a tenant's weighted-round-robin weight (grants it may receive
  /// per rotation before the cursor moves on). Default 1; 0 is clamped
  /// to 1.
  void SetTenantWeight(TenantId tenant, uint32_t weight);

  /// Parses the retry_after_ms hint out of a rejection Status message;
  /// -1 when absent.
  static int64_t RetryAfterMs(const Status& st);

  /// Introspection for tests.
  uint64_t in_flight() const;
  uint64_t queue_depth() const;

 private:
  struct Waiter {
    bool granted = false;
  };

  struct Bucket {
    double tokens = 0.0;
    std::chrono::steady_clock::time_point last_refill{};
    bool initialized = false;
    uint32_t weight = 1;
    uint32_t served_in_round = 0;
    std::deque<Waiter*> queue;
    Counter* admitted = nullptr;
    Counter* rejected = nullptr;
    Counter* queued = nullptr;
    LatencyHistogram* queue_wait_us = nullptr;
  };

  friend class AdmissionTicket;
  void Release();

  /// mu_ must be held. Lazily creates the bucket + its metric series.
  Bucket& BucketFor(TenantId tenant);
  /// mu_ must be held. Refills `b` up to burst as of `now`.
  void Refill(Bucket& b, std::chrono::steady_clock::time_point now);
  /// mu_ must be held. Grants the in-flight slot to the next queued
  /// waiter by weighted round-robin; no-op when nothing waits.
  void GrantNext();

  const AdmissionOptions opts_;
  const double burst_;
  MetricsRegistry* const registry_;

  mutable Latch mu_{LatchRank::kAdmission, "admission-queue"};
  std::condition_variable_any cv_;
  std::map<TenantId, Bucket> buckets_;
  /// Weighted-round-robin cursor: the tenant id served last. Scans
  /// resume AT this tenant (not after it) so a tenant with weight > 1
  /// keeps receiving grants until its per-round serve count is
  /// exhausted; served_in_round then moves the scan on, wrapping.
  TenantId rr_cursor_ = 0;
  bool rr_valid_ = false;
  uint64_t in_flight_ = 0;
  uint64_t queue_depth_ = 0;
};

}  // namespace mtdb

#endif  // MTDB_ENGINE_ADMISSION_H_
