#ifndef MTDB_ENGINE_DATABASE_H_
#define MTDB_ENGINE_DATABASE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "catalog/catalog.h"
#include "common/latch.h"
#include "common/metrics_registry.h"
#include "common/result.h"
#include "engine/admission.h"
#include "engine/lock_manager.h"
#include "engine/planner.h"
#include "sql/ast.h"
#include "storage/buffer_pool.h"
#include "storage/durability.h"
#include "storage/page_store.h"

namespace mtdb {

class Session;

/// Engine configuration. `memory_budget_bytes` is shared between the
/// buffer pool and the catalog's per-table meta-data charge, reproducing
/// the paper's scalability limit on the number of tables.
struct EngineOptions {
  uint64_t memory_budget_bytes = 64ull * 1024 * 1024;
  uint32_t page_size = kDefaultPageSize;
  MetadataCosts metadata_costs;
  PlannerMode planner_mode = PlannerMode::kAdvanced;
  /// Simulated device latency per physical page read (cold-cache shape).
  uint64_t read_latency_ns = 0;
  /// Directory for the WAL + checkpoint files. Empty (the default) runs
  /// the engine purely in memory with zero durability overhead; set it
  /// via Database::Open(path) rather than by hand.
  std::string durable_path;
  uint64_t wal_segment_bytes = 4ull * 1024 * 1024;
  /// WAL bytes between automatic checkpoints (durable mode); 0 disables
  /// auto checkpointing — explicit Checkpoint() calls still work.
  uint64_t checkpoint_interval_bytes = 8ull * 1024 * 1024;
};

/// Result of a SELECT: column names plus materialized rows.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
};

/// One physical statement an EXPLAIN MAPPING plan consists of.
struct PhysicalStatementPlan {
  std::string op;     // "select" / "insert" / "update" / "delete"
  std::string table;  // first physical base table the statement touches
  std::string sql;    // rendered physical SQL
};

/// Result of EXPLAIN MAPPING: the physical statements the target would
/// have produced, without executing any of them.
struct MappingExplanation {
  std::string layout;  // layout name, or "engine" below the mapping layer
  int64_t tenant = -1;
  std::string logical;  // the target statement, rendered back to SQL
  std::vector<PhysicalStatementPlan> statements;
  /// For SELECT targets: the engine's physical plan for the (first)
  /// transformed query, from the planner's explain facility.
  std::string plan_text;

  /// Renders the explanation as indented text (one line per physical
  /// statement) for CLIs and tests.
  std::string ToText() const;
};

/// What one statement produced: rows for SELECT, an affected-row count
/// for DML/DDL (DDL reports 0), a physical plan for EXPLAIN MAPPING.
using StatementResult = std::variant<QueryResult, int64_t, MappingExplanation>;

inline bool HasRows(const StatementResult& r) {
  return std::holds_alternative<QueryResult>(r);
}
inline const QueryResult& RowsOf(const StatementResult& r) {
  return std::get<QueryResult>(r);
}
inline int64_t AffectedOf(const StatementResult& r) {
  return std::get<int64_t>(r);
}
inline bool HasExplanation(const StatementResult& r) {
  return std::holds_alternative<MappingExplanation>(r);
}
inline const MappingExplanation& ExplanationOf(const StatementResult& r) {
  return std::get<MappingExplanation>(r);
}

/// Aggregate engine counters (logical/physical I/O, buffer hit ratios).
/// One composed snapshot from Database::Stats() — the single public
/// accessor for every counter the engine keeps.
struct EngineStats {
  BufferPoolStats buffer;
  PageStoreStats store;
  uint64_t metadata_bytes = 0;
  size_t buffer_capacity = 0;
  size_t tables = 0;
  size_t indexes = 0;
  /// All-zero when the engine is not durable.
  DurabilityCountersSnapshot durability;
  /// Storage-tier fault/retry counters (was BufferPool::io_counters()).
  IoFaultCountersSnapshot io_faults;
  /// The metrics registry: named series (statement tracing aggregates)
  /// plus gauges adapting the struct counters above into one namespace.
  MetricsSnapshot metrics;
};

/// An embedded multi-threaded relational database: the System Under
/// Test substrate on which the schema-mapping layers run. Clients open a
/// Session per worker thread (OpenSession) and execute statements
/// through it; the engine runs statements concurrently, latching only
/// what each statement touches.
///
/// Latch hierarchy (always acquired top-down; see DESIGN.md):
///   1. engine DDL latch          — shared per query/DML, exclusive per DDL
///   2. catalog internal latch    — inside Catalog calls only
///   3. table/index latches       — per touched table, sorted by TableId,
///                                  heap before its indexes
///   4. buffer-pool shard latch   — inside BufferPool calls only
///   5. page-store latch          — inside PageStore calls only
/// Queries take table latches shared; DML takes its one target table
/// exclusively (coarse per-table granularity: writers to a table
/// serialize with each other and with that table's readers, everything
/// else proceeds in parallel).
class Database;

/// Everything configurable about a Database in one struct — the single
/// construction surface (replaces the grown Open(path) + setter knobs).
struct DatabaseOptions {
  /// Directory for WAL + checkpoint files; empty runs purely in memory.
  std::string path;
  EngineOptions engine;
  /// I/O retry/backoff policy installed on the buffer pool.
  RetryPolicy retry_policy;
  /// Default consecutive-hard-fault threshold mapping layers use before
  /// tripping a tenant's circuit breaker open (SchemaMapping can still
  /// override per-layer).
  uint64_t quarantine_threshold = 8;
  /// Per-tenant admission control (token buckets + global in-flight cap
  /// with a fair wait queue). Disabled by default.
  AdmissionOptions admission;
  /// Circuit-breaker backoff before the first half-open probe of a
  /// tripped tenant; doubles per failed probe up to the max.
  uint64_t breaker_backoff_initial_ms = 100;
  uint64_t breaker_backoff_max_ms = 5000;
  /// Logical-row write locks (DESIGN.md §15): the mapping layer locks
  /// (tenant, logical table, row id) for every write, client brackets
  /// keep the locks to COMMIT/ROLLBACK, and a wait-for graph aborts
  /// deadlock victims with kAborted. On by default; the off switch
  /// exists for the uncontended-overhead benchmark control arm.
  bool row_locks = true;
  /// Lock-table shards (hash-partitioned by lock key).
  size_t lock_shards = 16;

  /// Convenience maker for the common durable-open call.
  static DatabaseOptions WithPath(std::string path,
                                  EngineOptions engine = EngineOptions()) {
    DatabaseOptions out;
    out.path = std::move(path);
    out.engine = std::move(engine);
    return out;
  }
};

/// Suppresses automatic checkpoints on the current thread while alive.
/// An automatic checkpoint takes the txn gate exclusively (rank above
/// the mapping layer's internal latches), so code that may execute a
/// statement while holding such a latch — the mapping layer's lazy DDL
/// under its cache latch — installs one of these to defer the
/// checkpoint to the next unencumbered statement.
class AutoCheckpointDeferral {
 public:
  AutoCheckpointDeferral();
  ~AutoCheckpointDeferral();
  AutoCheckpointDeferral(const AutoCheckpointDeferral&) = delete;
  AutoCheckpointDeferral& operator=(const AutoCheckpointDeferral&) = delete;
};

class Database {
 public:
  explicit Database(DatabaseOptions options);
  /// Convenience: in-memory engine from bare EngineOptions.
  explicit Database(EngineOptions options = EngineOptions());

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// Opens (or creates) a database per `options`: when options.path is
  /// non-empty, loads the last checkpoint, replays the WAL (truncating a
  /// torn tail), undoes logical statements left open by a crash, and
  /// checkpoints. The returned engine logs every mutation; with an empty
  /// path the engine is purely in-memory.
  static Result<std::unique_ptr<Database>> Open(DatabaseOptions options);

  [[deprecated("use Open(DatabaseOptions)")]]
  static Result<std::unique_ptr<Database>> Open(
      const std::string& path, EngineOptions options = EngineOptions());

  bool durable() const { return durability_ != nullptr; }
  Durability* durability() { return durability_.get(); }

  /// Quiesces all statements and writes a checkpoint: dirty pages into
  /// the page file, catalog snapshot into meta, WAL truncated. Also runs
  /// automatically by WAL volume (EngineOptions::checkpoint_interval_bytes).
  Status Checkpoint();

  /// Logical-transaction bracket used by the mapping layer for logical
  /// statements spanning several physical statements; see
  /// StatementUndoLog. Begin/End maintain a per-thread depth so automatic
  /// checkpoints never self-deadlock on the txn gate.
  Result<uint64_t> BeginDurableTxn();
  Status LogTxnHint(uint64_t txn_id, const std::string& compensation_sql);
  Status EndDurableTxn(uint64_t txn_id);

  /// Client-transaction plumbing (used by txn::TransactionContext, the
  /// session layer's cross-statement bracket). Unlike BeginDurableTxn,
  /// the checkpoint gate is held shared only briefly around each WAL
  /// append — never between statements — so an open client transaction
  /// cannot stall checkpoints; checkpoints instead carry the open
  /// transactions' undo hints forward in the meta file (Durability meta
  /// v2). BeginClientTxn also registers the transaction in the open-txn
  /// registry and maintains the per-tenant txn.open gauge.
  Result<uint64_t> BeginClientTxn(int64_t tenant);
  /// Appends a compensation hint under a brief shared gate hold and
  /// mirrors it into the open-txn registry (mapping-layer staging path).
  Status StageClientHint(uint64_t txn_id, const std::string& compensation_sql);
  /// Same, from inside an engine statement: the caller holds the shared
  /// DDL latch, which ranks BELOW the gate, so the gate must not be
  /// taken here. Safe without it — checkpoints hold the DDL latch
  /// exclusively, excluding every in-flight engine statement.
  Status StageClientHintUnderStatement(uint64_t txn_id,
                                       const std::string& compensation_sql);
  /// Appends the end record and deregisters atomically w.r.t.
  /// checkpoints. Deregisters even when the append fails (frozen
  /// durability): recovery resolves the transaction from disk.
  Status EndClientTxn(uint64_t txn_id, int64_t tenant);

  // --- SQL front door -----------------------------------------------

  /// Opens a client session. Sessions are cheap value handles; hold one
  /// per worker thread. Any number may be open concurrently.
  Session OpenSession();

  /// Executes any SQL statement. SELECTs return rows; DML returns the
  /// affected-row count as a single pseudo-row ("affected"); DDL returns
  /// zero affected. Thin wrapper over the Session path, kept for
  /// single-statement convenience.
  Result<QueryResult> Execute(const std::string& sql,
                              const std::vector<Value>& params = {});

  /// Executes a SELECT (string form).
  Result<QueryResult> Query(const std::string& sql,
                            const std::vector<Value>& params = {});

  /// Executes an already-parsed SELECT (the mapping layer transforms
  /// ASTs directly and skips re-parsing).
  Result<QueryResult> QueryAst(const sql::SelectStmt& stmt,
                               const std::vector<Value>& params = {});

  /// Executes a parsed non-SELECT statement; returns affected rows.
  Result<int64_t> ExecuteAst(const sql::Statement& stmt,
                             const std::vector<Value>& params = {});

  /// Compiles a SELECT and renders the plan (the explain facility).
  Result<std::string> Explain(const std::string& sql);
  Result<std::string> ExplainAst(const sql::SelectStmt& stmt);

  // --- direct DDL/DML helpers ----------------------------------------

  Status CreateTable(const std::string& name, Schema schema);
  Status DropTable(const std::string& name);
  Status CreateIndex(const std::string& table, const std::string& index,
                     const std::vector<std::string>& columns, bool unique);

  /// Inserts a full-width row (schema order) into `table`.
  Status InsertRow(const std::string& table, const Row& row);

  // --- observability ---------------------------------------------------

  /// One composed snapshot: engine counters, I/O-fault and durability
  /// counters, and the full metrics registry. The only public stats
  /// accessor.
  EngineStats Stats() const;
  void ResetStats();
  /// Flushes and evicts the entire buffer pool (cold-cache experiments).
  void ColdCache();

  /// The engine-wide metrics registry (statement tracers aggregate into
  /// it; gauges adapt the struct counters).
  MetricsRegistry* metrics_registry() { return registry_.get(); }

  uint64_t default_quarantine_threshold() const {
    return options_db_.quarantine_threshold;
  }
  uint64_t breaker_backoff_initial_ms() const {
    return options_db_.breaker_backoff_initial_ms;
  }
  uint64_t breaker_backoff_max_ms() const {
    return options_db_.breaker_backoff_max_ms;
  }

  /// The engine's admission controller (never null; disabled unless
  /// DatabaseOptions::admission.enabled). Session/TenantSession front
  /// doors pass every statement through it.
  AdmissionController* admission() { return admission_.get(); }

  /// The logical-row lock manager (DESIGN.md §15), or nullptr when
  /// DatabaseOptions::row_locks is off. The mapping layer acquires
  /// through it; TransactionContext owns bracket lock sets.
  lock::LockManager* lock_manager() { return lock_manager_.get(); }

  Catalog* catalog() { return catalog_.get(); }
  BufferPool* buffer_pool() { return pool_.get(); }
  PageStore* page_store() { return store_.get(); }

  PlannerMode planner_mode() const {
    return planner_mode_.load(std::memory_order_relaxed);
  }
  void set_planner_mode(PlannerMode mode) {
    planner_mode_.store(mode, std::memory_order_relaxed);
  }

 private:
  friend class Session;

  /// Registers gauges adapting the I/O-fault, buffer-pool, page-store
  /// and durability counters into the metrics registry.
  void RegisterEngineGauges();

  /// The single parsed-statement pipeline every front door funnels into:
  /// takes the DDL latch (shared or exclusive), latches the touched
  /// tables in canonical order, and dispatches.
  Result<StatementResult> RunStatement(const sql::Statement& stmt,
                                       const std::vector<Value>& params);
  Result<QueryResult> RunSelect(const sql::SelectStmt& stmt,
                                const std::vector<Value>& params);
  Result<int64_t> RunMutation(const sql::Statement& stmt,
                              const std::vector<Value>& params);
  Result<int64_t> RunMutationInner(const sql::Statement& stmt,
                                   const std::vector<Value>& params);

  /// Durable-mode plumbing. CommitDmlGroup appends the statement's redo
  /// group (with `table`'s physical anchors) while its latches are still
  /// held; it runs for failed-and-compensated statements too, so the log
  /// always matches memory. CommitDdlGroup adds the full catalog snapshot.
  Status CommitDmlGroup(const PageMutationCapture& capture, TableInfo* table);
  Status CommitDdlGroup(const PageMutationCapture& capture, bool snapshot);
  void MaybeAutoCheckpoint();
  Status Recover();
  /// Executes one recovery-undo compensation; INSERT compensations probe
  /// for the row first (the hint precedes its forward statement in the
  /// log, so the delete being compensated may never have run).
  Status ApplyRecoveryHint(const std::string& sql_text);

  /// `txn_undo`, when non-null, receives one value-based compensating
  /// statement per applied row (client-transaction undo; only filled on
  /// success — a failed statement reverts itself internally).
  Result<int64_t> ExecuteInsert(const sql::InsertStmt& stmt,
                                const ExecContext& ctx,
                                std::vector<sql::Statement>* txn_undo = nullptr);
  Result<int64_t> ExecuteUpdate(const sql::UpdateStmt& stmt,
                                const ExecContext& ctx,
                                std::vector<sql::Statement>* txn_undo = nullptr);
  Result<int64_t> ExecuteDelete(const sql::DeleteStmt& stmt,
                                const ExecContext& ctx,
                                std::vector<sql::Statement>* txn_undo = nullptr);

  // Every physical mutation below is atomic at the row level: if any of
  // its heap/index writes fails, the ones already applied are compensated
  // (with retries) before the error is returned, so a statement never
  // leaves a half-written row. The Execute* drivers extend this to the
  // whole statement by reverting fully-applied rows on a later failure.

  /// Inserts one row plus its index entries. On success reports the rid
  /// and the typed (cast) row via the optional out params, which the
  /// statement drivers record for statement-level rollback.
  Status InsertRowLatched(TableInfo* table, const Row& row,
                          Rid* out_rid = nullptr, Row* out_typed = nullptr);
  Status DeleteRowLatched(TableInfo* table, const Row& row, const Rid& rid);
  /// Applies old_row→new_row at old_rid (index entries + heap image).
  Status UpdateRowLatched(TableInfo* table, const Rid& old_rid,
                          const Row& old_row, const Row& new_row,
                          Rid* out_new_rid);
  /// Best-effort inverses used for statement-level rollback.
  void RevertInsertedRow(TableInfo* table, const Row& typed, const Rid& rid);
  void RevertUpdatedRow(TableInfo* table, const Rid& new_rid,
                        const Row& new_row, const Row& old_row);
  void RestoreDeletedRow(TableInfo* table, const Row& row);

  DatabaseOptions options_db_;
  EngineOptions options_;
  std::atomic<PlannerMode> planner_mode_;
  std::unique_ptr<MetricsRegistry> registry_;
  std::unique_ptr<AdmissionController> admission_;
  std::unique_ptr<lock::LockManager> lock_manager_;
  std::unique_ptr<PageStore> store_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<Durability> durability_;
  /// Level-1 latch: statements hold it shared for their whole duration,
  /// DDL holds it exclusive — so a TableInfo* resolved at statement
  /// start cannot be dropped mid-statement.
  mutable SharedLatch ddl_mu_{LatchRank::kDdl, "ddl"};

  /// Open client transactions: txn id → accumulated compensation hints
  /// (a registry mirror of the WAL kTxnHint records, so checkpoints can
  /// preserve open transactions across WAL truncation). Also backs the
  /// per-tenant txn.open gauges. Guarded by txn_registry_mu_; writers
  /// additionally hold the txn gate shared (or the DDL latch, for the
  /// under-statement staging path), which is what makes the checkpoint's
  /// gate+DDL-exclusive snapshot race-free.
  mutable Latch txn_registry_mu_{LatchRank::kTxnRegistry, "txn-registry"};
  std::map<uint64_t, std::vector<std::string>> open_client_txns_;
  std::map<int64_t, std::shared_ptr<std::atomic<int64_t>>> txn_open_counts_;
  /// Client-txn ids for in-memory engines (no WAL to assign them).
  std::atomic<uint64_t> mem_txn_id_{1};
};

}  // namespace mtdb

#endif  // MTDB_ENGINE_DATABASE_H_
