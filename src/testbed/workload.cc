#include "testbed/workload.h"

#include <algorithm>
#include <chrono>

namespace mtdb {
namespace testbed {

const char* ActionClassName(ActionClass c) {
  switch (c) {
    case ActionClass::kSelectLight:
      return "Select Light";
    case ActionClass::kSelectHeavy:
      return "Select Heavy";
    case ActionClass::kInsertLight:
      return "Insert Light";
    case ActionClass::kInsertHeavy:
      return "Insert Heavy";
    case ActionClass::kUpdateLight:
      return "Update Light";
    case ActionClass::kUpdateHeavy:
      return "Update Heavy";
    case ActionClass::kAdministrative:
      return "Administrative";
  }
  return "?";
}

double ActionClassWeight(ActionClass c) {
  // Figure 6 distribution.
  switch (c) {
    case ActionClass::kSelectLight:
      return 50.0;
    case ActionClass::kSelectHeavy:
      return 15.0;
    case ActionClass::kInsertLight:
      return 9.59;
    case ActionClass::kInsertHeavy:
      return 0.3;
    case ActionClass::kUpdateLight:
      return 17.6;
    case ActionClass::kUpdateHeavy:
      return 7.5;
    case ActionClass::kAdministrative:
      return 0.01;
  }
  return 0.0;
}

std::vector<ActionCard> Controller::Deal(size_t size) {
  static const ActionClass kClasses[] = {
      ActionClass::kSelectLight,  ActionClass::kSelectHeavy,
      ActionClass::kInsertLight,  ActionClass::kInsertHeavy,
      ActionClass::kUpdateLight,  ActionClass::kUpdateHeavy,
      ActionClass::kAdministrative,
  };
  // Build the deck with the exact class proportions, then shuffle.
  std::vector<ActionCard> deck;
  deck.reserve(size);
  double total = 0;
  for (ActionClass c : kClasses) total += ActionClassWeight(c);
  for (ActionClass c : kClasses) {
    size_t n = static_cast<size_t>(ActionClassWeight(c) / total *
                                   static_cast<double>(size));
    for (size_t i = 0; i < n; ++i) {
      deck.push_back({c, static_cast<TenantId>(rng_.Uniform(0, tenants_ - 1))});
    }
  }
  while (deck.size() < size) {
    deck.push_back({ActionClass::kSelectLight,
                    static_cast<TenantId>(rng_.Uniform(0, tenants_ - 1))});
  }
  // Fisher-Yates shuffle with the deterministic Rng.
  for (size_t i = deck.size(); i > 1; --i) {
    size_t j = static_cast<size_t>(rng_.Uniform(0, static_cast<int64_t>(i) - 1));
    std::swap(deck[i - 1], deck[j]);
  }
  return deck;
}

void ResultDatabase::Record(ActionClass action, double millis) {
  samples_[action].Add(millis);
}

void ResultDatabase::Merge(const ResultDatabase& other) {
  for (const auto& [action, set] : other.samples_) {
    samples_[action].Merge(set);
  }
}

uint64_t ResultDatabase::Count() const { return TotalActions(); }

const SampleSet& ResultDatabase::Samples(ActionClass action) const {
  static const SampleSet kEmpty;
  auto it = samples_.find(action);
  return it == samples_.end() ? kEmpty : it->second;
}

uint64_t ResultDatabase::TotalActions() const {
  uint64_t n = 0;
  for (const auto& [_, s] : samples_) n += s.count();
  return n;
}

Worker::Worker(Database* db, int instances, int64_t rows_per_tenant,
               uint64_t seed)
    : session_(db->OpenSession()),
      instances_(instances),
      rows_(rows_per_tenant),
      gen_(seed) {}

Status Worker::RunCard(const ActionCard& card, ResultDatabase* results) {
  auto start = std::chrono::steady_clock::now();
  Status st;
  switch (card.action) {
    case ActionClass::kSelectLight:
      st = SelectLight(card.tenant);
      break;
    case ActionClass::kSelectHeavy:
      st = SelectHeavy(card.tenant);
      break;
    case ActionClass::kInsertLight:
      st = InsertLight(card.tenant);
      break;
    case ActionClass::kInsertHeavy:
      st = InsertHeavy(card.tenant);
      break;
    case ActionClass::kUpdateLight:
      st = UpdateLight(card.tenant);
      break;
    case ActionClass::kUpdateHeavy:
      st = UpdateHeavy(card.tenant);
      break;
    case ActionClass::kAdministrative:
      st = Administrative(card.tenant);
      break;
  }
  auto end = std::chrono::steady_clock::now();
  if (st.ok()) {
    results->Record(card.action,
                    std::chrono::duration<double, std::milli>(end - start)
                        .count());
  }
  return st;
}

namespace {

const char* kEntityTables[] = {"account", "opportunity", "contact", "lead",
                               "asset"};

}  // namespace

Status Worker::SelectLight(TenantId tenant) {
  // Entity detail page: all attributes of a single entity by id.
  const char* table = kEntityTables[gen_.rng().Uniform(0, 4)];
  std::string name = CrmTableName(table, InstanceOf(tenant));
  int64_t id = gen_.rng().Uniform(0, rows_ - 1);
  MTDB_ASSIGN_OR_RETURN(
      QueryResult r,
      session_.Query("SELECT * FROM " + name + " WHERE tenant = ? AND id = ?",
                 {Value::Int32(tenant), Value::Int64(id)}));
  (void)r;
  return Status::OK();
}

Status Worker::SelectHeavy(TenantId tenant) {
  int inst = InstanceOf(tenant);
  std::string account = CrmTableName("account", inst);
  std::string opportunity = CrmTableName("opportunity", inst);
  std::string crmcase = CrmTableName("crmcase", inst);
  std::string contact = CrmTableName("contact", inst);
  std::vector<Value> t1{Value::Int32(tenant)};
  std::vector<Value> t2{Value::Int32(tenant), Value::Int32(tenant)};
  // Five fixed business-activity-monitoring reports (§4.2).
  switch (gen_.rng().Uniform(0, 4)) {
    case 0:
      return session_.Query("SELECT status, COUNT(*), SUM(amount) FROM " +
                            opportunity +
                            " WHERE tenant = ? GROUP BY status",
                        t1)
          .status();
    case 1:
      return session_.Query("SELECT region, AVG(score) FROM " + account +
                            " WHERE tenant = ? GROUP BY region"
                            " ORDER BY region",
                        t1)
          .status();
    case 2:
      // Parent-child rollup: opportunity totals per account.
      return session_.Query("SELECT a.id, COUNT(*), SUM(o.amount) FROM " + account +
                            " a, " + opportunity +
                            " o WHERE a.tenant = ? AND o.tenant = ?"
                            " AND o.account_id = a.id GROUP BY a.id"
                            " ORDER BY SUM(o.amount) DESC LIMIT 10",
                        t2)
          .status();
    case 3:
      return session_.Query("SELECT status, COUNT(*) FROM " + crmcase +
                            " WHERE tenant = ? GROUP BY status",
                        t1)
          .status();
    default:
      return session_.Query("SELECT c.id, COUNT(*) FROM " + contact + " c, " +
                            crmcase +
                            " k WHERE c.tenant = ? AND k.tenant = ?"
                            " AND k.contact_id = c.id GROUP BY c.id LIMIT 20",
                        t2)
          .status();
  }
}

Status Worker::InsertLight(TenantId tenant) {
  const CrmTable& t = CrmTables()[gen_.rng().Uniform(0, 9)];
  int64_t id = 1000000 + gen_.rng().Uniform(0, 100000000);
  Row row = gen_.CrmRow(t, tenant, id, rows_);
  return session_.InsertRow(CrmTableName(t.name, InstanceOf(tenant)), row);
}

Status Worker::InsertHeavy(TenantId tenant) {
  // Web-Service bulk import: several hundred entities in a batch.
  const CrmTable& t = CrmTables()[gen_.rng().Uniform(0, 9)];
  std::string name = CrmTableName(t.name, InstanceOf(tenant));
  for (int i = 0; i < 200; ++i) {
    int64_t id = 2000000 + gen_.rng().Uniform(0, 100000000);
    Row row = gen_.CrmRow(t, tenant, id, rows_);
    MTDB_RETURN_IF_ERROR(session_.InsertRow(name, row));
  }
  return Status::OK();
}

Status Worker::UpdateLight(TenantId tenant) {
  // Small set selected via the indexed status column.
  std::string name = CrmTableName("account", InstanceOf(tenant));
  const char* statuses[] = {"new", "open", "working", "closed", "won", "lost"};
  std::string status = statuses[gen_.rng().Uniform(0, 5)];
  return session_
      .Execute("UPDATE " + name +
                   " SET owner = ? WHERE tenant = ? AND status = ?",
               {Value::String(gen_.rng().Word(4, 12)), Value::Int32(tenant),
                Value::String(status)})
      .status();
}

Status Worker::UpdateHeavy(TenantId tenant) {
  // Several hundred entities selected by the primary key index. Parsed
  // once and executed many times through the prepared-statement path.
  std::string name = CrmTableName("contact", InstanceOf(tenant));
  MTDB_ASSIGN_OR_RETURN(
      PreparedStatement update,
      session_.Prepare("UPDATE " + name +
                       " SET modified = ? WHERE tenant = ? AND id = ?"));
  for (int i = 0; i < 100; ++i) {
    int64_t id = gen_.rng().Uniform(0, rows_ - 1);
    MTDB_RETURN_IF_ERROR(
        session_
            .Execute(update, {Value::Date(14000), Value::Int32(tenant),
                              Value::Int64(id)})
            .status());
  }
  return Status::OK();
}

Status Worker::Administrative(TenantId) {
  // Creates a new instance of the 10-table CRM schema via DDL while the
  // system is on-line (§4.2 Administrative Tasks).
  int instance = next_admin_instance_++;
  return CreateCrmInstance(session_.database(), instance);
}

}  // namespace testbed
}  // namespace mtdb
