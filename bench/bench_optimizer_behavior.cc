// Reproduces §6.2 Test 1 and Test 2: how optimizer sophistication
// interacts with the transformed queries.
//  * Test 1a: nested (§6.1) vs. pre-flattened emission under the naive
//    (MySQL-like) and advanced (DB2-like) planners. The naive planner
//    materializes the derived table — a clear performance penalty —
//    while the advanced planner unnests (Fegaras & Maier rule N8).
//  * Test 1b: predicate order in flattened queries. The naive planner's
//    access-path choice follows the written order, so meta-data-first
//    ordering is several times slower (the paper measured 5x on MySQL).
//  * Test 2: the compiled plan for a Q2-style query (explain output).
#include <chrono>
#include <cstdio>

#include "chunk_bench_common.h"
#include "core/transformer.h"
#include "sql/parser.h"

namespace mtdb {
namespace bench {
namespace {

double TimeQuery(Deployment* d, const std::string& sql,
                 const std::vector<Value>& params, int reps) {
  auto first = d->layout->Query(0, sql, params);  // warm-up + validation
  if (!first.ok()) {
    std::fprintf(stderr, "query failed: %s\n  %s\n",
                 first.status().ToString().c_str(), sql.c_str());
    return -1;
  }
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < reps; ++i) {
    auto r = d->layout->Query(0, sql, params);
    if (!r.ok()) return -1;
  }
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count() / reps;
}

int Main() {
  ChunkBenchConfig config;
  config.parents = 300;
  auto deployment = MakeDeployment(config, /*width=*/6);
  if (!deployment.ok()) {
    std::fprintf(stderr, "setup: %s\n",
                 deployment.status().ToString().c_str());
    return 1;
  }
  Deployment* d = deployment->get();
  std::vector<Value> params{Value::Int64(config.parents / 2)};
  const std::string q2 = BuildQ2(6);
  const int reps = 20;

  std::printf("=== Test 1a: emission mode x optimizer (Q2 over Chunk6, ms) ===\n");
  std::printf("%-24s %14s %14s\n", "", "naive planner", "advanced");
  for (mapping::EmitMode emit :
       {mapping::EmitMode::kNested, mapping::EmitMode::kFlattened}) {
    d->layout->transform_options().emit_mode = emit;
    d->layout->transform_options().predicate_order =
        mapping::PredicateOrder::kSelectiveFirst;
    std::printf("%-24s",
                emit == mapping::EmitMode::kNested ? "nested (§6.1 verbatim)"
                                                   : "flattened (workaround)");
    for (PlannerMode mode : {PlannerMode::kNaive, PlannerMode::kAdvanced}) {
      d->db->set_planner_mode(mode);
      std::printf(" %13.3f", TimeQuery(d, q2, params, reps));
    }
    std::printf("\n");
  }
  std::printf(
      "Expected: the naive planner cannot unnest the §6.1 queries and\n"
      "materializes the full reconstruction first; flattening rescues it.\n"
      "The advanced planner is indifferent (it unnests, rule N8).\n\n");

  std::printf("=== Test 1b: predicate order under the naive planner ===\n");
  d->db->set_planner_mode(PlannerMode::kNaive);
  d->layout->transform_options().emit_mode = mapping::EmitMode::kFlattened;
  double times[2] = {0, 0};
  int i = 0;
  for (mapping::PredicateOrder order :
       {mapping::PredicateOrder::kMetadataFirst,
        mapping::PredicateOrder::kSelectiveFirst}) {
    d->layout->transform_options().predicate_order = order;
    times[i] = TimeQuery(d, q2, params, reps);
    std::printf("%-24s %13.3f ms\n",
                order == mapping::PredicateOrder::kMetadataFirst
                    ? "meta-data first"
                    : "selective first",
                times[i]);
    i++;
  }
  if (times[1] > 0) {
    std::printf("slowdown factor: %.1fx (paper: ~5x on MySQL)\n\n",
                times[0] / times[1]);
  }

  std::printf("=== Test 2: compiled plan for Q2_3 over Chunk6 ===\n");
  d->db->set_planner_mode(PlannerMode::kAdvanced);
  d->layout->transform_options().emit_mode = mapping::EmitMode::kNested;
  d->layout->transform_options().predicate_order =
      mapping::PredicateOrder::kSelectiveFirst;
  auto transformed = d->layout->ShowTransformed(0, BuildQ2(3));
  if (transformed.ok()) {
    std::printf("transformed SQL:\n  %s\n\n", transformed->c_str());
    auto stmt = sql::ParseSelect(*transformed);
    if (stmt.ok()) {
      auto plan = d->db->ExplainAst(**stmt);
      if (plan.ok()) {
        std::printf("plan (cf. the paper's Figure 8 join regions):\n%s\n",
                    plan->c_str());
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace mtdb

int main() { return mtdb::bench::Main(); }
