file(REMOVE_RECURSE
  "CMakeFiles/chunk_partitioner_test.dir/chunk_partitioner_test.cc.o"
  "CMakeFiles/chunk_partitioner_test.dir/chunk_partitioner_test.cc.o.d"
  "chunk_partitioner_test"
  "chunk_partitioner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chunk_partitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
