#include "engine/txn_context.h"

#include "common/deadline.h"
#include "engine/database.h"
#include "sql/printer.h"

namespace mtdb {
namespace txn {

namespace {

// Per-entry retry budget during rollback, on top of the buffer pool's
// own per-I/O retries (mirrors StatementUndoLog's).
constexpr int kRollbackAttempts = 4;

thread_local TransactionContext* tls_current = nullptr;

}  // namespace

TransactionContext* TransactionContext::Current() { return tls_current; }

TransactionContext::Scope::Scope(TransactionContext* ctx) : prev_(tls_current) {
  tls_current = ctx;
}

TransactionContext::Scope::~Scope() { tls_current = prev_; }

TransactionContext::TransactionContext(Database* db, int64_t tenant)
    : db_(db), tenant_(tenant) {}

TransactionContext::~TransactionContext() {
  if (begun_) (void)Rollback(/*is_auto=*/true);
  ReleaseLocks();  // defensive: Commit/Rollback already released
}

void TransactionContext::BumpCounter(const char* op) {
  db_->metrics_registry()
      ->GetCounter(std::string("txn.") + op + ".t" + std::to_string(tenant_))
      ->Add(1);
}

uint64_t TransactionContext::EnsureLockHolder() {
  if (lock_holder_ == 0 && db_->lock_manager() != nullptr) {
    lock_holder_ = db_->lock_manager()->CreateHolder(tenant_, /*bracket=*/true);
  }
  return lock_holder_;
}

void TransactionContext::ReleaseLocks() {
  if (lock_holder_ == 0) return;
  if (db_->lock_manager() != nullptr) {
    db_->lock_manager()->ReleaseAll(lock_holder_);
  }
  lock_holder_ = 0;
}

Status TransactionContext::Begin() {
  if (begun_) return Status::FailedPrecondition("transaction already open");
  MTDB_ASSIGN_OR_RETURN(txn_id_, db_->BeginClientTxn(tenant_));
  begun_ = true;
  state_ = State::kActive;
  BumpCounter("begin");
  return Status::OK();
}

Status TransactionContext::Commit() {
  if (!begun_) return Status::FailedPrecondition("no transaction open");
  if (state_ != State::kActive) {
    return Status::FailedPrecondition(
        state_ == State::kPoisoned
            ? "transaction is poisoned by a failed statement; ROLLBACK it"
            : "transaction was already aborted; ROLLBACK to acknowledge");
  }
  begun_ = false;
  entries_.clear();
  Status st = db_->EndClientTxn(txn_id_, tenant_);
  // Row locks drop only once the bracket is fully closed — waiters that
  // proceed now re-run Phase (a) and see the committed image.
  ReleaseLocks();
  // A failed end-record append (frozen durability) means the commit is
  // NOT durable: recovery will undo the transaction. Report that.
  if (st.ok()) BumpCounter("commit");
  return st;
}

Status TransactionContext::Rollback(bool is_auto) {
  if (!begun_) return Status::FailedPrecondition("no transaction open");
  begun_ = false;
  // Compensations must run to completion even when the transaction is
  // being torn down by a deadline or a cancelled statement.
  deadline::Scope no_deadline(deadline::Deadline::None());
  Status first_error = Status::OK();
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    Status st = Status::OK();
    for (int attempt = 0; attempt < kRollbackAttempts; ++attempt) {
      Result<int64_t> n = db_->ExecuteAst(*it, {});
      st = n.status();
      if (st.ok()) break;
    }
    if (!st.ok() && first_error.ok()) first_error = st;
  }
  entries_.clear();
  Status ended = db_->EndClientTxn(txn_id_, tenant_);
  // Locks release strictly after the compensations replayed above: the
  // rolled-back rows stay write-isolated until their pre-images are back.
  ReleaseLocks();
  if (first_error.ok()) first_error = ended;
  BumpCounter(is_auto ? "auto_rollback" : "rollback");
  return first_error;
}

Status TransactionContext::StageHint(const sql::Statement& compensation) {
  if (!begun_) return Status::FailedPrecondition("no transaction open");
  return db_->StageClientHint(txn_id_, sql::ToSql(compensation));
}

Status TransactionContext::StageEngineHint(const sql::Statement& compensation) {
  if (!begun_) return Status::FailedPrecondition("no transaction open");
  return db_->StageClientHintUnderStatement(txn_id_, sql::ToSql(compensation));
}

void TransactionContext::Absorb(std::vector<sql::Statement> entries) {
  for (auto& e : entries) entries_.push_back(std::move(e));
}

}  // namespace txn
}  // namespace mtdb
