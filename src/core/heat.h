#ifndef MTDB_CORE_HEAT_H_
#define MTDB_CORE_HEAT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/logical_schema.h"

namespace mtdb {
namespace mapping {

/// Column-access statistics observed by the query-transformation layer.
/// "Good performance is obtained by mapping the most heavily-utilized
/// parts of the logical schemas into the conventional tables" (§1.2) —
/// this is the signal that decides what counts as heavily utilized.
///
/// Internally synchronized: concurrent tenant sessions record heat
/// through the transformer without any external lock.
class HeatProfile {
 public:
  void Record(const std::string& table, const std::string& column,
              uint64_t count = 1);

  uint64_t ColumnHeat(const std::string& table,
                      const std::string& column) const;

  /// Total heat over the columns of one extension.
  uint64_t ExtensionHeat(const ExtensionDef& ext) const;

  /// Total recorded accesses.
  uint64_t total() const;

  void Clear();

 private:
  uint64_t ColumnHeatLocked(const std::string& table,
                            const std::string& column) const;

  mutable std::mutex mu_;
  // (table lower, column lower) -> count.
  std::map<std::pair<std::string, std::string>, uint64_t> counts_;
  uint64_t total_ = 0;
};

/// Greedy advisor: given the observed heat and a budget of at most
/// `max_conventional` extension tables, returns the extensions whose
/// columns are hot enough to deserve conventional tables. This is the
/// knob that "divides the database's meta-data budget between
/// application-specific conventional tables and Chunk Tables".
std::set<std::string> AdviseConventionalExtensions(const AppSchema& app,
                                                   const HeatProfile& heat,
                                                   int max_conventional);

}  // namespace mapping
}  // namespace mtdb

#endif  // MTDB_CORE_HEAT_H_
