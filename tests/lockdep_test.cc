// Tests for the lockdep latch-order validator and WAL-protocol analyzer
// (src/common/latch.{h,cc}, src/analysis/lockdep.{h,cc}). Every seeded
// violation class must fire its rule; correct protocol must stay silent.
// The whole suite skips in builds without -DMTDB_LOCKDEP=ON — the
// wrappers compile down to the raw primitives there and record nothing.
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/lockdep.h"
#include "common/latch.h"
#include "engine/database.h"
#include "mapping_test_util.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace mtdb {
namespace {

bool HasRule(const std::vector<lockdep::Violation>& violations,
             const char* rule) {
  for (const lockdep::Violation& v : violations) {
    if (v.rule_id == rule) return true;
  }
  return false;
}

std::string RulesOf(const std::vector<lockdep::Violation>& violations) {
  std::string out;
  for (const lockdep::Violation& v : violations) {
    out += v.rule_id + ": " + v.message + "\n";
  }
  return out;
}

class LockdepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!lockdep::CompiledIn()) {
      GTEST_SKIP() << "validator not compiled in (build with MTDB_LOCKDEP)";
    }
    // Seeded violations must record, not abort, regardless of the
    // environment's MTDB_LOCKDEP_FATAL.
    lockdep::SetFatal(false);
    lockdep::Drain();  // isolate from earlier tests
  }
};

// ------------------------------------------------------- latch ordering

TEST_F(LockdepTest, SeededRankInversionFires) {
  Latch table(LatchRank::kTableIndex, "c201-table");
  Latch ddl(LatchRank::kDdl, "c201-ddl");
  table.lock();
  ddl.lock();  // rank ascends while a latch is held: inversion
  ddl.unlock();
  table.unlock();
  auto violations = lockdep::Drain();
  EXPECT_TRUE(HasRule(violations, "C201")) << RulesOf(violations);
}

TEST_F(LockdepTest, DescendingAcquisitionIsClean) {
  Latch ddl(LatchRank::kDdl, "clean-ddl");
  Latch table(LatchRank::kTableIndex, "clean-table");
  Latch wal(LatchRank::kWal, "clean-wal");
  ddl.lock();
  table.lock();
  wal.lock();
  wal.unlock();
  table.unlock();
  ddl.unlock();
  auto violations = lockdep::Drain();
  EXPECT_TRUE(violations.empty()) << RulesOf(violations);
}

TEST_F(LockdepTest, SeededOrderKeyInversionFires) {
  Latch a(LatchRank::kTableIndex, "c202-a");
  Latch b(LatchRank::kTableIndex, "c202-b");
  a.SetOrderKey(5);
  b.SetOrderKey(3);
  a.lock();
  b.lock();  // same rank, key 3 after key 5: descending, not allowed
  b.unlock();
  a.unlock();
  auto violations = lockdep::Drain();
  EXPECT_TRUE(HasRule(violations, "C202")) << RulesOf(violations);

  // Strictly ascending keys are the sanctioned multi-table pattern.
  b.lock();
  a.lock();
  a.unlock();
  b.unlock();
  violations = lockdep::Drain();
  EXPECT_TRUE(violations.empty()) << RulesOf(violations);
}

TEST_F(LockdepTest, SeededCrossThreadAbbaCycleFires) {
  // Same rank, no order keys: legal to nest, but opposite nesting on two
  // threads is the classic ABBA deadlock the acquisition graph catches.
  Latch a(LatchRank::kBufferShard, "c203-a");
  Latch b(LatchRank::kBufferShard, "c203-b");
  std::thread first([&] {
    a.lock();
    b.lock();
    b.unlock();
    a.unlock();
  });
  first.join();
  std::thread second([&] {
    b.lock();
    a.lock();  // reversed: cycle with the edge the first thread recorded
    a.unlock();
    b.unlock();
  });
  second.join();
  auto violations = lockdep::Drain();
  EXPECT_TRUE(HasRule(violations, "C203")) << RulesOf(violations);
}

// --------------------------------------------------------- WAL protocol

TEST_F(LockdepTest, SeededUnloggedMutationFires) {
  // Run on a scratch thread so the capture-pending thread-local state
  // dies with the thread instead of leaking into later tests.
  std::thread t([] {
    PageStore store;
    BufferPool pool(&store, 16);
    pool.set_wal_protocol_checks(true);  // as the durable engine does
    Page* p = pool.NewPage(PageType::kHeap);  // no PageCaptureScope
    pool.UnpinPage(p->id(), /*dirty=*/true);
  });
  t.join();
  auto violations = lockdep::Drain();
  EXPECT_TRUE(HasRule(violations, "C301")) << RulesOf(violations);
}

TEST_F(LockdepTest, CapturedMutationIsClean) {
  std::thread t([] {
    PageStore store;
    BufferPool pool(&store, 16);
    pool.set_wal_protocol_checks(true);
    Latch table(LatchRank::kTableIndex, "c301-clean-table");
    table.lock();
    PageMutationCapture capture;
    {
      PageCaptureScope scope(&capture);
      Page* p = pool.NewPage(PageType::kHeap);
      pool.UnpinPage(p->id(), /*dirty=*/true);
    }
    lockdep::OnCaptureCommit(&capture);  // as Database::CommitDmlGroup does
    table.unlock();
  });
  t.join();
  auto violations = lockdep::Drain();
  EXPECT_TRUE(violations.empty()) << RulesOf(violations);
}

TEST_F(LockdepTest, SeededCaptureLeakPastLatchReleaseFires) {
  std::thread t([] {
    PageStore store;
    BufferPool pool(&store, 16);
    pool.set_wal_protocol_checks(true);
    Latch table(LatchRank::kTableIndex, "c302-table");
    table.lock();
    PageMutationCapture capture;
    {
      PageCaptureScope scope(&capture);
      Page* p = pool.NewPage(PageType::kHeap);
      pool.UnpinPage(p->id(), /*dirty=*/true);
    }
    table.unlock();  // released with the redo group never committed
  });
  t.join();
  auto violations = lockdep::Drain();
  EXPECT_TRUE(HasRule(violations, "C302")) << RulesOf(violations);
}

TEST_F(LockdepTest, SeededUnlatchedCommitFires) {
  std::thread t([] {
    PageStore store;
    BufferPool pool(&store, 16);
    pool.set_wal_protocol_checks(true);
    PageMutationCapture capture;
    {
      PageCaptureScope scope(&capture);
      Page* p = pool.NewPage(PageType::kHeap);
      pool.UnpinPage(p->id(), /*dirty=*/true);
    }
    lockdep::OnCaptureCommit(&capture);  // no exclusive table latch held
  });
  t.join();
  auto violations = lockdep::Drain();
  EXPECT_TRUE(HasRule(violations, "C303")) << RulesOf(violations);
}

// ------------------------------------------------- clean concurrent use

TEST_F(LockdepTest, ConcurrentEngineWorkloadIsClean) {
  // Eight sessions of real engine traffic (DDL, DML, point reads)
  // through every migrated latch layer must record zero violations.
  {
    Database db;
    ASSERT_TRUE(db.Execute("CREATE TABLE t (id BIGINT, v VARCHAR(16))").ok());
    std::vector<std::thread> threads;
    for (int w = 0; w < 8; ++w) {
      threads.emplace_back([&db, w] {
        for (int i = 0; i < 25; ++i) {
          int64_t id = w * 1000 + i;
          ASSERT_TRUE(db.Execute("INSERT INTO t VALUES (" +
                                 std::to_string(id) + ", 'x')")
                          .ok());
          ASSERT_TRUE(db.Query("SELECT v FROM t WHERE id = " +
                               std::to_string(id))
                          .ok());
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  auto violations = lockdep::Drain();
  EXPECT_TRUE(violations.empty()) << RulesOf(violations);
}

// Regression for a C201 first caught by the recovery suite: on a durable
// engine, a multi-row logical INSERT opens the txn gate (shared) when the
// undo log stages its first compensation, and later rows of the same
// statement re-enter the mapping cache. Under the old rank table the
// cache latch outranked the gate, so that re-entry ascended; worse, the
// lazy table build under the cache latch could attempt an automatic
// checkpoint, which takes the gate exclusively — a genuine ABBA with
// concurrent writers. The re-ranked hierarchy plus the checkpoint
// deferral inside SchemaMapping::Mapping() must keep the path silent.
TEST_F(LockdepTest, DurableMultiRowInsertThroughMappingIsClean) {
  namespace fs = std::filesystem;
  const std::string dir = ::testing::TempDir() + "mtdb_lockdep_c201";
  fs::remove_all(dir);
  {
    mapping::AppSchema app = mapping::FigureFourSchema();
    EngineOptions options;
    // Make every WAL append tempt an automatic checkpoint, so one lands
    // inside the lazy DDL that Mapping() runs under its cache latch.
    options.checkpoint_interval_bytes = 1;
    auto opened = Database::Open(DatabaseOptions::WithPath(dir, options));
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    std::unique_ptr<Database> db = std::move(*opened);
    std::unique_ptr<mapping::SchemaMapping> layout =
        mapping::MakeLayout(mapping::LayoutKind::kExtension, db.get(), &app);
    ASSERT_TRUE(layout->Bootstrap().ok());
    ASSERT_TRUE(layout->CreateTenant(1).ok());
    ASSERT_TRUE(layout->EnableExtension(1, "healthcare").ok());
    for (int i = 0; i < 4; ++i) {
      auto r = layout->Execute(
          1,
          "INSERT INTO account (aid, name, hospital, beds) "
          "VALUES (?, ?, ?, ?), (?, ?, ?, ?)",
          {Value::Int64(i * 2 + 1), Value::String("a"), Value::String("mercy"),
           Value::Int32(1), Value::Int64(i * 2 + 2), Value::String("b"),
           Value::String("grace"), Value::Int32(2)});
      ASSERT_TRUE(r.ok()) << r.status().ToString();
    }
  }
  fs::remove_all(dir);
  auto violations = lockdep::Drain();
  EXPECT_TRUE(violations.empty()) << RulesOf(violations);
}

// -------------------------------------------------- diagnostic adapter

TEST_F(LockdepTest, DrainsAsDiagnostics) {
  Latch table(LatchRank::kTableIndex, "adapter-table");
  Latch ddl(LatchRank::kDdl, "adapter-ddl");
  table.lock();
  ddl.lock();
  ddl.unlock();
  table.unlock();
  std::vector<analysis::Diagnostic> diagnostics =
      analysis::DrainLockdepDiagnostics();
  ASSERT_FALSE(diagnostics.empty());
  bool found = false;
  for (const analysis::Diagnostic& d : diagnostics) {
    if (d.rule_id == analysis::kRuleRankInversion) found = true;
    EXPECT_EQ(d.severity, analysis::Severity::kError);
  }
  EXPECT_TRUE(found);
  EXPECT_TRUE(analysis::LockdepCompiledIn());
}

TEST(LockdepReleaseTest, HooksCompileAwayWhenOff) {
  if (lockdep::CompiledIn()) {
    GTEST_SKIP() << "instrumented build";
  }
  // The wrappers must behave as plain mutexes and record nothing.
  Latch a(LatchRank::kTableIndex, "off-a");
  Latch b(LatchRank::kDdl, "off-b");
  a.lock();
  b.lock();  // would be C201 when instrumented
  b.unlock();
  a.unlock();
  EXPECT_EQ(lockdep::TotalViolations(), 0u);
  EXPECT_TRUE(lockdep::Drain().empty());
  EXPECT_FALSE(analysis::LockdepCompiledIn());
}

}  // namespace
}  // namespace mtdb
