file(REMOVE_RECURSE
  "libmtdb_core.a"
)
