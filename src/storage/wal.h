#ifndef MTDB_STORAGE_WAL_H_
#define MTDB_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/page.h"

namespace mtdb {

/// Physical log record kinds. Groups carry page-image redo for one
/// engine statement; the txn records bracket a mapping-layer logical
/// statement that spans several physical statements, so recovery can
/// undo a half-applied one (see DESIGN.md §10).
enum class WalRecordType : uint8_t {
  kGroup = 1,
  kTxnBegin = 2,
  kTxnHint = 3,
  kTxnEnd = 4,
};

/// One decoded log frame: header fields plus the raw payload bytes.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kGroup;
  std::string payload;
};

/// FNV-1a over a byte range; also used by the checkpoint meta file.
uint64_t WalChecksum(const char* data, size_t len, uint64_t seed);

/// Bytes of frame framing ahead of the payload (magic, lsn, type, pad,
/// payload length, checksum) — exported so the Durability manager can
/// account WAL bytes without re-deriving the layout.
inline constexpr size_t kWalFrameHeaderSize = 4 + 8 + 1 + 3 + 4 + 8;

// ------------------------------------------------------------- payloads

/// Page-lifetime operation inside a group, stamped with the store's
/// global op sequence number. Group append order equals latch order only
/// per table; statements on *different* tables allocate from the shared
/// store in one global order yet race to the log, so replay collects the
/// ops of every group, sorts them by `seq`, and re-executes each against
/// exactly the recorded page id (DESIGN.md §10.4).
struct WalPageOp {
  enum class Kind : uint8_t { kAlloc = 1, kDealloc = 2 };
  Kind kind = Kind::kAlloc;
  PageId page = kInvalidPageId;
  PageType type = PageType::kFree;  // allocs only
  uint64_t seq = 0;                 // store-assigned global op order
};

/// After-image of one page the statement left dirty.
struct WalPageImage {
  PageId page = kInvalidPageId;
  PageType type = PageType::kHeap;
  std::string image;
};

/// Physical locations the catalog snapshot cannot know about: a heap's
/// first page is set on first insert and a B-tree root moves on split,
/// both without DDL. Each DML group records them for its table; replay
/// applies the survivors on top of the last catalog blob.
struct WalTableMeta {
  int32_t table_id = 0;
  PageId first_page = kInvalidPageId;
  std::vector<std::pair<int32_t, PageId>> index_roots;
};

/// Decoded kGroup payload.
struct WalGroup {
  std::vector<WalPageOp> ops;
  std::vector<WalPageImage> images;
  std::vector<WalTableMeta> table_meta;
  /// Full catalog snapshot; present only for DDL statements.
  bool has_catalog_blob = false;
  std::string catalog_blob;
};

std::string EncodeWalGroup(const WalGroup& group);
Result<WalGroup> DecodeWalGroup(const std::string& payload);

/// Decoded kTxnBegin / kTxnHint / kTxnEnd payload. Hints carry the
/// compensation SQL for the *next* physical statement of the txn.
struct WalTxnRecord {
  uint64_t txn_id = 0;
  std::string sql;  // hints only
};

std::string EncodeWalTxn(const WalTxnRecord& rec);
Result<WalTxnRecord> DecodeWalTxn(const std::string& payload);

// -------------------------------------------------------------- writer

/// Append-only segmented log writer. Not thread-safe: the Durability
/// manager serializes appends under its own mutex. Each frame is
/// checksummed and flushed before Append returns, so a freeze-crash
/// between statements never loses an acknowledged record; a crash
/// *inside* an append leaves a torn tail the reader truncates.
class WalWriter {
 public:
  WalWriter(std::string dir, uint64_t segment_bytes);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens the segment after the highest existing one (recovery keeps
  /// old segments readable until the post-recovery checkpoint).
  Status Open();

  Status Append(uint64_t lsn, WalRecordType type, const std::string& payload);

  /// Injected torn tail: writes only a prefix of the frame (header plus
  /// half the payload) and flushes it, modeling a crash mid-append.
  Status AppendTorn(uint64_t lsn, WalRecordType type,
                    const std::string& payload);

  /// Deletes every segment and starts a fresh one (post-checkpoint: all
  /// records are covered by the snapshot).
  Status Truncate();

  uint64_t appended_bytes() const { return appended_bytes_; }

 private:
  Status RotateIfNeeded(size_t next_frame_bytes);
  Status OpenSegment(uint32_t index);
  std::string SegmentPath(uint32_t index) const;

  std::string dir_;
  uint64_t segment_bytes_;
  std::FILE* file_ = nullptr;
  uint32_t segment_index_ = 0;
  uint64_t segment_written_ = 0;
  uint64_t appended_bytes_ = 0;
};

// -------------------------------------------------------------- reader

/// Scans every segment in order, verifying frame checksums. The first
/// invalid frame is treated as a torn tail: the file is truncated at
/// that offset, later segments are deleted, and the scan stops — torn
/// records are never surfaced, let alone replayed.
class WalReader {
 public:
  explicit WalReader(std::string dir) : dir_(std::move(dir)) {}

  struct ScanResult {
    std::vector<WalRecord> records;
    /// Number of torn tails truncated (0 or 1 per scan).
    uint64_t truncated_tails = 0;
  };

  Result<ScanResult> ReadAll();

 private:
  std::string dir_;
};

}  // namespace mtdb

#endif  // MTDB_STORAGE_WAL_H_
