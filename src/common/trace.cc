#include "common/trace.h"

#include <cstdlib>

namespace mtdb::trace {

namespace internal {
thread_local StatementTracer* tls_tracer = nullptr;
}  // namespace internal

SpanIo Span::TotalIo() const {
  SpanIo total = io;
  for (const auto& child : children) total += child->TotalIo();
  return total;
}

void StatementTracer::BeginStatement(int64_t tenant, std::string layout,
                                     std::string kind) {
  if (!enabled_ || open_) return;
  open_ = std::make_unique<StatementTrace>();
  open_->tenant = tenant;
  open_->layout = std::move(layout);
  open_->kind = std::move(kind);
  open_->root = std::make_unique<Span>();
  open_->root->name = open_->kind;
  stack_.clear();
  stack_.push_back(open_->root.get());
  current_ = open_->root.get();
  span_started_.clear();
  started_ = std::chrono::steady_clock::now();
}

void StatementTracer::EndStatement(bool ok) {
  if (!open_) return;
  const auto now = std::chrono::steady_clock::now();
  // Close any child spans left open by an error unwind.
  while (stack_.size() > 1) EndSpan();
  open_->root->elapsed_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - started_)
          .count());
  open_->ok = ok;

  const SpanIo total = open_->root->TotalIo();
  if (registry_) {
    // Inside a client transaction the statement aggregates under a
    // distinct "<kind>.txn" series; autocommit names are untouched.
    SeriesPtrs* s = SeriesFor(open_->tenant, open_->layout,
                              txn_ ? open_->kind + ".txn" : open_->kind);
    (*s->count)++;
    if (!ok) (*s->errors)++;
    s->pool_hits->Add(total.pool_hits);
    s->pool_misses->Add(total.pool_misses);
    s->pages_read->Add(total.physical_reads);
    s->pages_written->Add(total.physical_writes);
    s->wal_bytes->Add(total.wal_bytes);
    s->latency->Record(open_->root->elapsed_ns / 1000);
  }
  if (txn_) {
    // Summary child under the transaction's parent span: name, wall
    // time, and the statement's rolled-up I/O.
    auto summary = std::make_unique<Span>();
    summary->name = ok ? open_->kind : open_->kind + " (error)";
    summary->elapsed_ns = open_->root->elapsed_ns;
    summary->io = total;
    txn_->root->children.push_back(std::move(summary));
  }
  statements_traced_++;
  last_ = std::move(open_);
  stack_.clear();
  current_ = nullptr;
}

void StatementTracer::BeginTransaction(int64_t tenant, std::string layout) {
  if (!enabled_ || txn_) return;
  txn_ = std::make_unique<StatementTrace>();
  txn_->tenant = tenant;
  txn_->layout = std::move(layout);
  txn_->kind = "txn";
  txn_->root = std::make_unique<Span>();
  txn_->root->name = "txn";
  txn_started_ = std::chrono::steady_clock::now();
}

void StatementTracer::EndTransaction(bool ok) {
  if (!txn_) return;
  const auto now = std::chrono::steady_clock::now();
  txn_->root->elapsed_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - txn_started_)
          .count());
  txn_->ok = ok;
  if (registry_) {
    SeriesPtrs* s = SeriesFor(txn_->tenant, txn_->layout, txn_->kind);
    const SpanIo total = txn_->root->TotalIo();
    (*s->count)++;
    if (!ok) (*s->errors)++;
    s->pool_hits->Add(total.pool_hits);
    s->pool_misses->Add(total.pool_misses);
    s->pages_read->Add(total.physical_reads);
    s->pages_written->Add(total.physical_writes);
    s->wal_bytes->Add(total.wal_bytes);
    s->latency->Record(txn_->root->elapsed_ns / 1000);
  }
  last_txn_ = std::move(txn_);
}

void StatementTracer::BeginSpan(std::string name) {
  if (!open_) return;
  auto span = std::make_unique<Span>();
  span->name = std::move(name);
  Span* raw = span.get();
  current_->children.push_back(std::move(span));
  stack_.push_back(raw);
  current_ = raw;
  span_started_.push_back(std::chrono::steady_clock::now());
}

void StatementTracer::EndSpan() {
  if (!open_ || stack_.size() <= 1) return;
  const auto now = std::chrono::steady_clock::now();
  current_->elapsed_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          now - span_started_.back())
          .count());
  span_started_.pop_back();
  stack_.pop_back();
  current_ = stack_.back();
}

StatementTracer::SeriesPtrs* StatementTracer::SeriesFor(
    int64_t tenant, const std::string& layout, const std::string& kind) {
  std::string tlabel = "t" + std::to_string(tenant);
  std::string key = layout + "." + kind + "." + tlabel;
  auto it = series_.find(key);
  if (it == series_.end() && series_.size() >= kMaxSeriesKeys) {
    // Per-tracer cardinality bound: collapse the tenant dimension once
    // this session has touched too many distinct series.
    tlabel = "other";
    key = layout + "." + kind + ".other";
    it = series_.find(key);
  }
  if (it != series_.end()) return &it->second;

  const std::string suffix = layout + "." + kind + "." + tlabel;
  SeriesPtrs ptrs;
  ptrs.count = registry_->GetCounter("stmt.count." + suffix);
  ptrs.errors = registry_->GetCounter("stmt.errors." + suffix);
  ptrs.pool_hits = registry_->GetCounter("stmt.pool_hits." + suffix);
  ptrs.pool_misses = registry_->GetCounter("stmt.pool_misses." + suffix);
  ptrs.pages_read = registry_->GetCounter("stmt.pages_read." + suffix);
  ptrs.pages_written = registry_->GetCounter("stmt.pages_written." + suffix);
  ptrs.wal_bytes = registry_->GetCounter("stmt.wal_bytes." + suffix);
  ptrs.latency = registry_->GetHistogram("stmt.latency_us." + suffix);
  return &series_.emplace(key, ptrs).first->second;
}

namespace {

void DumpSpan(const Span& span, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += span.name;
  *out += " (" + std::to_string(span.elapsed_ns / 1000) + "us";
  const SpanIo& io = span.io;
  if (io.pool_hits || io.pool_misses) {
    *out += ", pool " + std::to_string(io.pool_hits) + "h/" +
            std::to_string(io.pool_misses) + "m";
  }
  if (io.physical_reads || io.physical_writes) {
    *out += ", io " + std::to_string(io.physical_reads) + "r/" +
            std::to_string(io.physical_writes) + "w";
  }
  if (io.wal_bytes) *out += ", wal " + std::to_string(io.wal_bytes) + "B";
  *out += ")\n";
  for (const auto& child : span.children) DumpSpan(*child, depth + 1, out);
}

}  // namespace

std::string StatementTracer::DumpLast() const {
  if (!last_) return "(no trace)";
  std::string out = "tenant=" + std::to_string(last_->tenant) + " layout=" +
                    last_->layout + " kind=" + last_->kind +
                    (last_->ok ? " ok" : " error") + "\n";
  DumpSpan(*last_->root, 0, &out);
  return out;
}

bool TracingForced() {
  static const bool forced = [] {
    const char* env = std::getenv("MTDB_TRACE");
    return env != nullptr && env[0] != '\0' &&
           !(env[0] == '0' && env[1] == '\0');
  }();
  return forced;
}

}  // namespace mtdb::trace
