#ifndef MTDB_CATALOG_SCHEMA_H_
#define MTDB_CATALOG_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace mtdb {

/// A physical column definition.
struct Column {
  std::string name;
  TypeId type = TypeId::kNull;
  bool not_null = false;
};

/// An ordered list of columns. Identifier comparison is
/// case-insensitive, as in SQL.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& at(size_t i) const { return columns_[i]; }

  void AddColumn(Column c) { columns_.push_back(std::move(c)); }

  /// Index of the named column, or nullopt.
  std::optional<size_t> Find(const std::string& name) const;

  std::vector<TypeId> Types() const;

  /// "name TYPE, name TYPE, ..." for DDL echoing and docs.
  std::string ToString() const;

 private:
  std::vector<Column> columns_;
};

/// Case-insensitive identifier equality.
bool IdentEquals(const std::string& a, const std::string& b);
/// Lower-cases an identifier.
std::string IdentLower(const std::string& s);

}  // namespace mtdb

#endif  // MTDB_CATALOG_SCHEMA_H_
