#ifndef MTDB_ENGINE_TXN_CONTEXT_H_
#define MTDB_ENGINE_TXN_CONTEXT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace mtdb {

class Database;

namespace txn {

/// Cross-statement client transaction state, owned by a Session or
/// TenantSession between an explicit BEGIN and the matching COMMIT /
/// ROLLBACK. It generalizes the mapping layer's StatementUndoLog from
/// one logical statement to a whole client transaction: every mutating
/// statement executed inside the bracket contributes its confirmed
/// compensating statements (in staging order), and Rollback() replays
/// the accumulated log newest-first through the ordinary SQL front door.
///
/// Durability: Begin() opens a detached WAL transaction
/// (kTxnBegin without pinning the checkpoint gate — see
/// Database::BeginClientTxn), each staged compensation is appended as a
/// kTxnHint before its forward statement becomes durable, and
/// Commit()/Rollback() append kTxnEnd. A crash anywhere in between
/// leaves the transaction without an end record, so Recover() replays
/// the hints newest-first — committed transactions survive, open ones
/// vanish. Checkpoints do NOT wait for open client transactions: they
/// carry the accumulated hints forward in the checkpoint meta
/// (Durability meta v2), so the bracket may stay open indefinitely
/// without pinning the WAL.
///
/// State machine:
///   kActive   — statements execute; Commit() and Rollback() accepted.
///   kPoisoned — a statement inside the bracket failed. The statement
///               itself was already rolled back (statement atomicity),
///               but the transaction's earlier statements may conflict
///               with whatever the client does next, so everything except
///               ROLLBACK now returns kFailedPrecondition.
///   kAborted  — the session already rolled the transaction back itself
///               (deadline expiry, admission rejection, breaker open, or
///               the bracket lost a deadlock and got kAborted).
///               Statements are rejected; ROLLBACK is an acknowledging
///               no-op; COMMIT fails.
///
/// Thread model: a context belongs to one session and is touched by one
/// thread at a time, like the session itself. The TLS installation
/// (Scope) makes the context visible to the statement pipeline
/// underneath — the mapping layer's StatementUndoLog binds to it, and
/// the engine's DML path stages value-based compensations when no
/// mapping undo log has joined for the statement.
class TransactionContext {
 public:
  enum class State { kActive, kPoisoned, kAborted };

  /// `tenant` labels the txn.* metric series (kEngineTenant for engine
  /// sessions). The context starts active but unopened; call Begin().
  TransactionContext(Database* db, int64_t tenant);
  /// Auto-rolls-back a transaction still open at destruction (session
  /// dropped mid-transaction).
  ~TransactionContext();

  TransactionContext(const TransactionContext&) = delete;
  TransactionContext& operator=(const TransactionContext&) = delete;

  /// Opens the WAL bracket and registers the transaction with the
  /// engine's open-transaction registry (checkpoint preservation +
  /// txn.open gauge).
  Status Begin();

  /// Appends the commit record and discards the undo log. Fails with
  /// kFailedPrecondition when the transaction is poisoned or aborted.
  Status Commit();

  /// Replays the accumulated compensations newest-first (each entry
  /// retried a few times, the whole replay deadline-suppressed like
  /// statement-level compensation), then closes the WAL bracket.
  /// `is_auto` selects the txn.auto_rollback metric and is set by the
  /// session's abort paths and the destructor.
  Status Rollback(bool is_auto = false);

  State state() const { return state_; }
  /// Ordinary statement failure inside the bracket: reject everything
  /// but ROLLBACK from now on.
  void Poison() { if (state_ == State::kActive) state_ = State::kPoisoned; }
  /// The session rolled back on its own (deadline/admission/breaker, or
  /// the bracket lost a deadlock and was aborted with kAborted).
  void MarkAborted() { state_ = State::kAborted; }

  /// The bracket's lock-manager holder id (DESIGN.md §15), created on
  /// the first write statement's acquisition and released only after
  /// Commit()/Rollback() completes — compensation replay always runs
  /// under the locks that protected the forward statements. Returns 0
  /// when the engine runs without a lock manager.
  uint64_t EnsureLockHolder();
  uint64_t lock_holder() const { return lock_holder_; }

  uint64_t txn_id() const { return txn_id_; }
  bool open() const { return begun_; }
  size_t undo_size() const { return entries_.size(); }

  // --- statement-pipeline binding (via Scope/Current) -----------------

  /// Stages one compensation from the mapping layer's bound
  /// StatementUndoLog: appends the WAL hint under a brief shared hold of
  /// the checkpoint gate and mirrors it into the open-txn registry.
  /// Called before the forward physical statement runs.
  Status StageHint(const sql::Statement& compensation);

  /// Engine-DML variant: runs under the engine's shared DDL latch, which
  /// ranks below the checkpoint gate, so it must not take the gate. Safe
  /// without it — checkpoints hold the DDL latch exclusively, excluding
  /// any in-flight engine statement.
  Status StageEngineHint(const sql::Statement& compensation);

  /// A successful statement's confirmed compensations join the
  /// transaction-level undo log (the statement's own undo log absorbed
  /// upward instead of discarded).
  void Absorb(std::vector<sql::Statement> entries);

  /// Join/Leave bracket a statement whose mapping-layer undo log has
  /// taken over staging; while joined, the engine DML path must not
  /// stage its own value-based compensations on top.
  void Join() { ++join_depth_; }
  void Leave() { if (join_depth_ > 0) --join_depth_; }
  bool joined() const { return join_depth_ > 0; }

  /// The context installed on this thread by the innermost live Scope,
  /// or nullptr outside any transaction-bound statement.
  static TransactionContext* Current();

  /// Installs a context as the thread's current for the duration of one
  /// statement. The session layer creates one around statement execution
  /// only — never around Rollback(), so compensation replay cannot
  /// re-enter the staging paths.
  class Scope {
   public:
    explicit Scope(TransactionContext* ctx);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    TransactionContext* prev_;
  };

 private:
  void BumpCounter(const char* op);
  void ReleaseLocks();

  Database* db_;
  int64_t tenant_;
  State state_ = State::kActive;
  uint64_t txn_id_ = 0;
  uint64_t lock_holder_ = 0;
  bool begun_ = false;
  int join_depth_ = 0;
  /// Confirmed compensations in staging order, across statements.
  std::vector<sql::Statement> entries_;
};

}  // namespace txn
}  // namespace mtdb

#endif  // MTDB_ENGINE_TXN_CONTEXT_H_
