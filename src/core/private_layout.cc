#include "core/private_layout.h"

#include <algorithm>
#include <cstdlib>

#include "engine/lock_manager.h"

namespace mtdb {
namespace mapping {

std::string PrivateTableLayout::PhysicalName(TenantId tenant,
                                             const std::string& table) const {
  auto key = std::make_pair(tenant, IdentLower(table));
  auto it = versions_.find(key);
  int version = it == versions_.end() ? 0 : it->second;
  std::string name = IdentLower(table) + "_t" + std::to_string(tenant);
  if (version > 0) name += "_v" + std::to_string(version);
  return name;
}

Status PrivateTableLayout::CreateIndexes(TenantId tenant,
                                         const std::string& physical,
                                         const EffectiveTable& eff) {
  MTDB_RETURN_IF_ERROR(db_->CreateIndex(
      physical, "ux_" + physical + "_id", {eff.columns[0].name},
      /*unique=*/true));
  for (const LogicalColumn& c : eff.columns) {
    if (c.indexed) {
      MTDB_RETURN_IF_ERROR(db_->CreateIndex(
          physical, "ix_" + physical + "_" + IdentLower(c.name), {c.name},
          /*unique=*/false));
    }
  }
  (void)tenant;
  return Status::OK();
}

Status PrivateTableLayout::CreateTenantImpl(TenantId tenant) {
  MTDB_RETURN_IF_ERROR(SchemaMapping::CreateTenantImpl(tenant));
  for (const LogicalTable& t : app_->tables()) {
    MTDB_RETURN_IF_ERROR(MaterializeTable(tenant, t.name, ""));
  }
  return Status::OK();
}

Status PrivateTableLayout::DropTenantImpl(TenantId tenant) {
  MTDB_ASSIGN_OR_RETURN(TenantEntry * entry, GetTenant(tenant));
  (void)entry;
  for (const LogicalTable& t : app_->tables()) {
    MTDB_RETURN_IF_ERROR(db_->DropTable(PhysicalName(tenant, t.name)));
  }
  MTDB_RETURN_IF_ERROR(RecordTenantDropped(tenant));
  tenants_.erase(tenant);
  InvalidateMappings();
  return Status::OK();
}

Status PrivateTableLayout::MaterializeTable(TenantId tenant,
                                            const std::string& table,
                                            const std::string& old_name) {
  MTDB_ASSIGN_OR_RETURN(EffectiveTable eff, GetEffective(tenant, table));
  Schema schema;
  for (const LogicalColumn& c : eff.columns) {
    schema.AddColumn(Column{c.name, c.type, false});
  }
  std::string physical = PhysicalName(tenant, table);
  MTDB_RETURN_IF_ERROR(db_->CreateTable(physical, std::move(schema)));
  stats_.ddl_statements++;
  MTDB_RETURN_IF_ERROR(CreateIndexes(tenant, physical, eff));
  if (!old_name.empty()) {
    // Migrate existing rows, padding new columns with NULLs.
    MTDB_ASSIGN_OR_RETURN(QueryResult old_rows,
                          db_->Query("SELECT * FROM " + old_name));
    for (Row& r : old_rows.rows) {
      Row padded = r;
      padded.resize(eff.columns.size(), Value());
      MTDB_RETURN_IF_ERROR(db_->InsertRow(physical, padded));
    }
    MTDB_RETURN_IF_ERROR(db_->DropTable(old_name));
    stats_.ddl_statements++;
  }
  return Status::OK();
}

Status PrivateTableLayout::EnableExtensionImpl(TenantId tenant,
                                               const std::string& ext) {
  MTDB_ASSIGN_OR_RETURN(TenantEntry * entry, GetTenant(tenant));
  const ExtensionDef* def = app_->FindExtension(ext);
  if (def == nullptr) return Status::NotFound("no such extension: " + ext);
  if (entry->state.HasExtension(ext)) return Status::OK();

  std::string old_name = PhysicalName(tenant, def->base_table);
  entry->state.EnableExtension(ext);
  versions_[{tenant, IdentLower(def->base_table)}]++;
  // The engine cannot ALTER on-line; the private layout must rebuild the
  // tenant's table — the extensibility cost §3 attributes to this layout.
  MTDB_RETURN_IF_ERROR(MaterializeTable(tenant, def->base_table, old_name));
  InvalidateMappings();
  return RecordExtensionEnabled(
      tenant, ext,
      static_cast<int64_t>(entry->state.extensions().size()) - 1);
}

Status PrivateTableLayout::RecoverDerivedState() {
  // The version counters are encoded in the recovered physical names:
  // `<table>_t<tenant>` for version 0, `<table>_t<tenant>_v<k>` after k
  // rebuilds. A tenant suffix is never a prefix of another tenant's
  // (`_v` follows immediately), so the scan cannot cross tenants.
  versions_.clear();
  const std::vector<std::string> names = db_->catalog()->TableNames();
  for (const auto& [tenant, entry] : tenants_) {
    (void)entry;
    for (const LogicalTable& t : app_->tables()) {
      const std::string lower = IdentLower(t.name);
      const std::string vprefix =
          lower + "_t" + std::to_string(tenant) + "_v";
      int max_version = 0;
      for (const std::string& name : names) {
        if (name.rfind(vprefix, 0) == 0) {
          max_version = std::max(max_version,
                                 std::atoi(name.c_str() + vprefix.size()));
        }
      }
      if (max_version > 0) versions_[{tenant, lower}] = max_version;
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<TableMapping>> PrivateTableLayout::BuildMapping(
    TenantId tenant, const std::string& table) {
  MTDB_ASSIGN_OR_RETURN(EffectiveTable eff, GetEffective(tenant, table));
  auto mapping = std::make_unique<TableMapping>();
  PhysicalSource source;
  source.physical_table = PhysicalName(tenant, table);
  source.row_column.clear();
  mapping->sources.push_back(std::move(source));
  for (const LogicalColumn& c : eff.columns) {
    ColumnTarget target;
    target.source = 0;
    target.physical_column = c.name;
    target.physical_type = c.type;
    target.logical_type = c.type;
    mapping->columns[IdentLower(c.name)] = target;
    mapping->column_order.push_back(c.name);
  }
  return mapping;
}

Result<int64_t> PrivateTableLayout::GenericUpdate(
    TenantId tenant, const sql::UpdateStmt& stmt,
    const std::vector<Value>& params) {
  sql::Statement phys;
  phys.kind = sql::StatementKind::kUpdate;
  phys.update = std::make_unique<sql::UpdateStmt>();
  phys.update->table = PhysicalName(tenant, stmt.table);
  for (const auto& [col, expr] : stmt.assignments) {
    phys.update->assignments.emplace_back(col, expr->Clone());
  }
  if (stmt.where != nullptr) phys.update->where = stmt.where->Clone();
  NotifyStatement(tenant, phys);
  if (Explaining()) return 0;
  // §15: pass-through DML has no Phase (a) row set, so the whole-table
  // X fallback serializes this tenant's logical writers up front; the
  // physical statement then runs after the winner commits and sees its
  // post-commit image by construction.
  if (lock::StatementLockContext* locks =
          lock::StatementLockContext::Current();
      locks != nullptr && locks->enabled()) {
    MTDB_RETURN_IF_ERROR(
        locks->LockTable(IdentLower(stmt.table), lock::LockMode::kX));
  }
  stats_.physical_statements++;
  return db_->ExecuteAst(phys, params);
}

Result<int64_t> PrivateTableLayout::GenericDelete(
    TenantId tenant, const sql::DeleteStmt& stmt,
    const std::vector<Value>& params) {
  sql::Statement phys;
  phys.kind = sql::StatementKind::kDelete;
  phys.del = std::make_unique<sql::DeleteStmt>();
  phys.del->table = PhysicalName(tenant, stmt.table);
  if (stmt.where != nullptr) phys.del->where = stmt.where->Clone();
  NotifyStatement(tenant, phys);
  if (Explaining()) return 0;
  // §15: pass-through DML has no Phase (a) row set, so the whole-table
  // X fallback serializes this tenant's logical writers up front; the
  // physical statement then runs after the winner commits and sees its
  // post-commit image by construction.
  if (lock::StatementLockContext* locks =
          lock::StatementLockContext::Current();
      locks != nullptr && locks->enabled()) {
    MTDB_RETURN_IF_ERROR(
        locks->LockTable(IdentLower(stmt.table), lock::LockMode::kX));
  }
  stats_.physical_statements++;
  return db_->ExecuteAst(phys, params);
}

}  // namespace mapping
}  // namespace mtdb
