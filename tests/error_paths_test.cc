#include <gtest/gtest.h>

#include "engine/database.h"
#include "mapping_test_util.h"

namespace mtdb {
namespace {

// --- engine error surfaces --------------------------------------------

class EngineErrorTest : public ::testing::Test {
 protected:
  Database db_;
};

TEST_F(EngineErrorTest, QueryUnknownTable) {
  auto r = db_.Query("SELECT a FROM missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineErrorTest, QueryUnknownColumn) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  auto r = db_.Query("SELECT b FROM t");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineErrorTest, AmbiguousUnqualifiedColumn) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE x (a INT)").ok());
  ASSERT_TRUE(db_.Execute("CREATE TABLE y (a INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO x VALUES (1)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO y VALUES (1)").ok());
  auto r = db_.Query("SELECT a FROM x, y");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(EngineErrorTest, MissingBindParameter) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1)").ok());
  auto r = db_.Query("SELECT a FROM t WHERE a = ?");  // no params bound
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineErrorTest, DivisionByZeroSurfacesAsError) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1)").ok());
  auto r = db_.Query("SELECT a / 0 FROM t");
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineErrorTest, InsertArityMismatch) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT, b INT)").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES (1)").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO t (a) VALUES (1, 2)").ok());
}

TEST_F(EngineErrorTest, UpdateUnknownColumn) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  EXPECT_FALSE(db_.Execute("UPDATE t SET nope = 1").ok());
}

TEST_F(EngineErrorTest, DuplicateIndexName) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(db_.Execute("CREATE INDEX ix ON t (a)").ok());
  EXPECT_EQ(db_.Execute("CREATE INDEX ix ON t (a)").status().code(),
            StatusCode::kAlreadyExists);
}

TEST_F(EngineErrorTest, IndexOnUnknownColumn) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  EXPECT_EQ(db_.Execute("CREATE INDEX ix ON t (zz)").status().code(),
            StatusCode::kNotFound);
}

TEST_F(EngineErrorTest, DropMissingObjects) {
  EXPECT_EQ(db_.Execute("DROP TABLE nope").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db_.Execute("DROP INDEX nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(EngineErrorTest, GroupByReferencingNonGroupedColumn) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT, b INT)").ok());
  ASSERT_TRUE(db_.Execute("INSERT INTO t VALUES (1, 2)").ok());
  auto r = db_.Query("SELECT b, COUNT(*) FROM t GROUP BY a");
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineErrorTest, ParseErrorsDoNotMutateState) {
  ASSERT_TRUE(db_.Execute("CREATE TABLE t (a INT)").ok());
  size_t tables = db_.Stats().tables;
  EXPECT_FALSE(db_.Execute("CREATE TABLE broken (").ok());
  EXPECT_EQ(db_.Stats().tables, tables);
}

// --- mapping-layer error surfaces ---------------------------------------

class MappingErrorTest : public ::testing::Test {
 protected:
  MappingErrorTest()
      : app_(mapping::FigureFourSchema()),
        layout_(&db_, &app_) {
    EXPECT_TRUE(layout_.Bootstrap().ok());
    EXPECT_TRUE(layout_.CreateTenant(1).ok());
  }

  mapping::AppSchema app_;
  Database db_;
  mapping::ChunkFoldingLayout layout_;
};

TEST_F(MappingErrorTest, UnknownTenant) {
  auto r = layout_.Query(99, "SELECT * FROM account");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_FALSE(layout_.Execute(99, "DELETE FROM account").ok());
}

TEST_F(MappingErrorTest, DuplicateTenant) {
  EXPECT_EQ(layout_.CreateTenant(1).code(), StatusCode::kAlreadyExists);
}

TEST_F(MappingErrorTest, UnknownExtension) {
  EXPECT_EQ(layout_.EnableExtension(1, "nope").code(), StatusCode::kNotFound);
}

TEST_F(MappingErrorTest, EnableExtensionTwiceIsIdempotent) {
  ASSERT_TRUE(layout_.EnableExtension(1, "healthcare").ok());
  ASSERT_TRUE(layout_.EnableExtension(1, "healthcare").ok());
  auto cols = layout_.LogicalColumns(1, "account");
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols->size(), 4u);  // not 6: columns added once
}

TEST_F(MappingErrorTest, UnknownLogicalTable) {
  EXPECT_FALSE(layout_.Query(1, "SELECT * FROM nope").ok());
  EXPECT_FALSE(
      layout_.Execute(1, "INSERT INTO nope (a) VALUES (1)").ok());
}

TEST_F(MappingErrorTest, DdlStatementsRejectedAtLogicalLevel) {
  // Tenants do not get to issue physical DDL through the layer.
  EXPECT_FALSE(layout_.Execute(1, "CREATE TABLE evil (a INT)").ok());
  EXPECT_FALSE(layout_.Execute(1, "DROP TABLE account").ok());
}

TEST_F(MappingErrorTest, PhysicalTablesInvisibleToTenants) {
  // A tenant cannot name the generic structures directly.
  EXPECT_FALSE(layout_.Query(1, "SELECT * FROM fold_chunkdata").ok());
  EXPECT_FALSE(layout_.Query(1, "SELECT * FROM cf_account").ok());
}

TEST(AppSchemaErrorTest, RejectsCollidingDefinitions) {
  mapping::AppSchema app = mapping::FigureFourSchema();
  mapping::LogicalTable dup;
  dup.name = "ACCOUNT";  // case-insensitive collision
  dup.columns = {{"x", TypeId::kInt32, false}};
  EXPECT_EQ(app.AddTable(std::move(dup)).code(), StatusCode::kAlreadyExists);

  mapping::ExtensionDef bad;
  bad.name = "bad";
  bad.base_table = "missing";
  bad.columns = {{"x", TypeId::kInt32, false}};
  EXPECT_EQ(app.AddExtension(std::move(bad)).code(), StatusCode::kNotFound);

  mapping::ExtensionDef clash;
  clash.name = "clash";
  clash.base_table = "account";
  clash.columns = {{"name", TypeId::kString, false}};  // collides with base
  EXPECT_EQ(app.AddExtension(std::move(clash)).code(),
            StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace mtdb
