#ifndef MTDB_SQL_PARSER_H_
#define MTDB_SQL_PARSER_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace mtdb {
namespace sql {

/// Parses a single SQL statement. Supported grammar (subset sufficient
/// for the paper's workloads and the mapping layer's generated queries):
///
///   SELECT [DISTINCT] item[, ...] FROM ref[, ...]
///     [WHERE pred] [GROUP BY expr[, ...]] [HAVING pred]
///     [ORDER BY expr [ASC|DESC][, ...]] [LIMIT n [OFFSET m]]
///   ref  := table [[AS] alias] | ( select ) [AS] alias
///          | ref JOIN ref ON pred          (flattened into WHERE)
///   INSERT INTO t [(cols)] VALUES (exprs)[, (exprs) ...]
///   UPDATE t SET col = expr[, ...] [WHERE pred]
///   DELETE FROM t [WHERE pred]
///   CREATE TABLE t (col TYPE [NOT NULL][, ...])
///   CREATE [UNIQUE] INDEX i ON t (cols)
///   DROP TABLE t | DROP INDEX i
Result<Statement> Parse(const std::string& input);

/// Convenience: parse and require a SELECT.
Result<std::unique_ptr<SelectStmt>> ParseSelect(const std::string& input);

}  // namespace sql
}  // namespace mtdb

#endif  // MTDB_SQL_PARSER_H_
