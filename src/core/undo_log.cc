#include "core/undo_log.h"

namespace mtdb {
namespace mapping {

namespace {
// A compensation that keeps failing transiently is retried this many
// times on top of the buffer pool's own per-I/O retries.
constexpr int kRollbackAttempts = 4;
}  // namespace

Status StatementUndoLog::Rollback() {
  Status first_error = Status::OK();
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    Status st = Status::OK();
    for (int attempt = 0; attempt < kRollbackAttempts; ++attempt) {
      Result<int64_t> n = db_->ExecuteAst(*it, {});
      st = n.status();
      if (st.ok()) break;
    }
    if (st.ok()) {
      executed_++;
    } else if (first_error.ok()) {
      first_error = st;
    }
  }
  entries_.clear();
  return first_error;
}

}  // namespace mapping
}  // namespace mtdb
