#include "engine/planner.h"

#include <algorithm>
#include <sstream>

#include "sql/printer.h"

namespace mtdb {

namespace {

using sql::BinaryOp;
using sql::ParsedExpr;
using sql::ParsedExprPtr;
using sql::PExprKind;
using sql::SelectStmt;
using sql::TableRef;

// ------------------------------------------------------------------ scope

/// Resolves qualified/unqualified column references against the
/// concatenated output of the tables planned so far.
class Scope {
 public:
  struct Binding {
    std::string name;  // lower-cased binding name
    OutputSchema schema;
  };

  void Add(const std::string& binding, const OutputSchema& schema) {
    bindings_.push_back(Binding{IdentLower(binding), schema});
  }

  size_t total_width() const {
    size_t w = 0;
    for (const auto& b : bindings_) w += b.schema.size();
    return w;
  }

  /// Returns (offset, type) of `table`.`column`; table may be empty.
  Result<std::pair<size_t, TypeId>> Resolve(const std::string& table,
                                            const std::string& column) const {
    size_t offset = 0;
    std::string tlower = IdentLower(table);
    std::optional<std::pair<size_t, TypeId>> found;
    for (const auto& b : bindings_) {
      if (tlower.empty() || b.name == tlower) {
        for (size_t i = 0; i < b.schema.size(); ++i) {
          if (IdentEquals(b.schema.names[i], column)) {
            if (found.has_value()) {
              return Status::InvalidArgument("ambiguous column: " + column);
            }
            found = std::make_pair(offset + i, b.schema.types[i]);
          }
        }
      }
      offset += b.schema.size();
    }
    if (!found.has_value()) {
      return Status::NotFound("column not found: " +
                              (table.empty() ? column : table + "." + column));
    }
    return *found;
  }

  bool HasBinding(const std::string& name) const {
    std::string lower = IdentLower(name);
    for (const auto& b : bindings_) {
      if (b.name == lower) return true;
    }
    return false;
  }

  const std::vector<Binding>& raw() const { return bindings_; }

  OutputSchema Concatenated() const {
    OutputSchema out;
    for (const auto& b : bindings_) {
      out.names.insert(out.names.end(), b.schema.names.begin(),
                       b.schema.names.end());
      out.types.insert(out.types.end(), b.schema.types.begin(),
                       b.schema.types.end());
    }
    return out;
  }

 private:
  std::vector<Binding> bindings_;
};

// ----------------------------------------------------------- expr binding

bool IsAggregateName(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" || name == "min" ||
         name == "max";
}

bool HasAggregate(const ParsedExpr& e) {
  if (e.kind == PExprKind::kFuncCall && IsAggregateName(e.func_name)) {
    return true;
  }
  if (e.left != nullptr && HasAggregate(*e.left)) return true;
  if (e.right != nullptr && HasAggregate(*e.right)) return true;
  for (const auto& a : e.args) {
    if (HasAggregate(*a)) return true;
  }
  return false;
}

/// Maps the transformation layer's cast pseudo-functions to target types.
std::optional<TypeId> CastTargetOf(const std::string& func_name) {
  if (func_name == "cast_int") return TypeId::kInt32;
  if (func_name == "cast_bigint") return TypeId::kInt64;
  if (func_name == "cast_double") return TypeId::kDouble;
  if (func_name == "cast_date") return TypeId::kDate;
  if (func_name == "cast_str") return TypeId::kString;
  if (func_name == "cast_bool") return TypeId::kBool;
  return std::nullopt;
}

CompareOp ToCompareOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return CompareOp::kEq;
    case BinaryOp::kNe:
      return CompareOp::kNe;
    case BinaryOp::kLt:
      return CompareOp::kLt;
    case BinaryOp::kLe:
      return CompareOp::kLe;
    case BinaryOp::kGt:
      return CompareOp::kGt;
    default:
      return CompareOp::kGe;
  }
}

/// Binds a parsed expression against `scope`. Aggregate calls are
/// rejected (they are planned separately by the aggregation step).
Result<ExprPtr> BindExpr(const ParsedExpr& e, const Scope& scope) {
  switch (e.kind) {
    case PExprKind::kLiteral:
      return ExprPtr(std::make_unique<LiteralExpr>(e.literal));
    case PExprKind::kParam:
      return ExprPtr(std::make_unique<ParamExpr>(e.param_ordinal));
    case PExprKind::kColumnRef: {
      MTDB_ASSIGN_OR_RETURN(auto loc, scope.Resolve(e.table, e.column));
      std::string display =
          e.table.empty() ? e.column : e.table + "." + e.column;
      return ExprPtr(std::make_unique<ColumnRefExpr>(loc.first, display));
    }
    case PExprKind::kUnary: {
      MTDB_ASSIGN_OR_RETURN(ExprPtr c, BindExpr(*e.left, scope));
      if (e.unary_op == sql::UnaryOp::kNot) {
        return ExprPtr(std::make_unique<NotExpr>(std::move(c)));
      }
      return ExprPtr(std::make_unique<ArithmeticExpr>(
          ArithOp::kSub, std::make_unique<LiteralExpr>(Value::Int64(0)),
          std::move(c)));
    }
    case PExprKind::kBinary: {
      MTDB_ASSIGN_OR_RETURN(ExprPtr l, BindExpr(*e.left, scope));
      MTDB_ASSIGN_OR_RETURN(ExprPtr r, BindExpr(*e.right, scope));
      switch (e.binary_op) {
        case BinaryOp::kAnd:
          return ExprPtr(std::make_unique<AndExpr>(std::move(l), std::move(r)));
        case BinaryOp::kOr:
          return ExprPtr(std::make_unique<OrExpr>(std::move(l), std::move(r)));
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return ExprPtr(std::make_unique<CompareExpr>(
              ToCompareOp(e.binary_op), std::move(l), std::move(r)));
        case BinaryOp::kAdd:
          return ExprPtr(std::make_unique<ArithmeticExpr>(
              ArithOp::kAdd, std::move(l), std::move(r)));
        case BinaryOp::kSub:
          return ExprPtr(std::make_unique<ArithmeticExpr>(
              ArithOp::kSub, std::move(l), std::move(r)));
        case BinaryOp::kMul:
          return ExprPtr(std::make_unique<ArithmeticExpr>(
              ArithOp::kMul, std::move(l), std::move(r)));
        case BinaryOp::kDiv:
          return ExprPtr(std::make_unique<ArithmeticExpr>(
              ArithOp::kDiv, std::move(l), std::move(r)));
        case BinaryOp::kMod:
          return ExprPtr(std::make_unique<ArithmeticExpr>(
              ArithOp::kMod, std::move(l), std::move(r)));
      }
      return Status::Internal("unknown binary op");
    }
    case PExprKind::kIsNull: {
      MTDB_ASSIGN_OR_RETURN(ExprPtr c, BindExpr(*e.left, scope));
      return ExprPtr(std::make_unique<IsNullExpr>(std::move(c),
                                                  e.is_null_negated));
    }
    case PExprKind::kLike: {
      MTDB_ASSIGN_OR_RETURN(ExprPtr v, BindExpr(*e.left, scope));
      MTDB_ASSIGN_OR_RETURN(ExprPtr pat, BindExpr(*e.right, scope));
      return ExprPtr(std::make_unique<LikeExpr>(std::move(v), std::move(pat),
                                                e.like_negated));
    }
    case PExprKind::kFuncCall: {
      std::optional<TypeId> cast = CastTargetOf(e.func_name);
      if (cast.has_value() && e.args.size() == 1) {
        MTDB_ASSIGN_OR_RETURN(ExprPtr c, BindExpr(*e.args[0], scope));
        return ExprPtr(std::make_unique<CastExpr>(std::move(c), *cast));
      }
      return Status::InvalidArgument("aggregate/function " + e.func_name +
                                     " not allowed here");
    }
    case PExprKind::kStar:
      return Status::InvalidArgument("* not allowed here");
  }
  return Status::Internal("unknown expression kind");
}

/// True if `e` references no columns at all (bindable before any table).
bool IsConstant(const ParsedExpr& e) {
  if (e.kind == PExprKind::kColumnRef) return false;
  if (e.kind == PExprKind::kFuncCall) return false;
  if (e.left != nullptr && !IsConstant(*e.left)) return false;
  if (e.right != nullptr && !IsConstant(*e.right)) return false;
  for (const auto& a : e.args) {
    if (!IsConstant(*a)) return false;
  }
  return true;
}

/// Collects the set of binding names an expression references
/// (lower-cased; "" for unqualified references).
void CollectTables(const ParsedExpr& e,
                   std::vector<std::pair<std::string, std::string>>* refs) {
  if (e.kind == PExprKind::kColumnRef) {
    refs->push_back({IdentLower(e.table), IdentLower(e.column)});
  }
  if (e.left != nullptr) CollectTables(*e.left, refs);
  if (e.right != nullptr) CollectTables(*e.right, refs);
  for (const auto& a : e.args) CollectTables(*a, refs);
}

/// True if every column ref in `e` resolves in `scope`.
bool FullyBound(const ParsedExpr& e, const Scope& scope) {
  std::vector<std::pair<std::string, std::string>> refs;
  CollectTables(e, &refs);
  for (const auto& [t, c] : refs) {
    if (!scope.Resolve(t, c).ok()) return false;
  }
  return true;
}

/// If the conjunct is `ref.col = <other>` (either side), where ref names
/// binding `binding` and col is a column of `schema`, returns the column
/// position and the other side.
std::optional<std::pair<size_t, const ParsedExpr*>> MatchColumnEquality(
    const ParsedExpr& conjunct, const std::string& binding,
    const OutputSchema& schema) {
  if (conjunct.kind != PExprKind::kBinary ||
      conjunct.binary_op != BinaryOp::kEq) {
    return std::nullopt;
  }
  auto side_matches = [&](const ParsedExpr& side) -> std::optional<size_t> {
    if (side.kind != PExprKind::kColumnRef) return std::nullopt;
    if (!side.table.empty() && !IdentEquals(side.table, binding)) {
      return std::nullopt;
    }
    for (size_t i = 0; i < schema.size(); ++i) {
      if (IdentEquals(schema.names[i], side.column)) return i;
    }
    return std::nullopt;
  };
  if (auto col = side_matches(*conjunct.left)) {
    return std::make_pair(*col, conjunct.right.get());
  }
  if (auto col = side_matches(*conjunct.right)) {
    // If both sides are columns of this binding, this is not a probe key.
    if (side_matches(*conjunct.left)) return std::nullopt;
    return std::make_pair(*col, conjunct.left.get());
  }
  return std::nullopt;
}

// ----------------------------------------------------------- flattening

/// Rewrites table qualifiers of every column ref per `rename` (old
/// binding name -> new binding name, lower-cased keys).
void RenameBindings(
    ParsedExpr* e,
    const std::unordered_map<std::string, std::string>& rename) {
  if (e->kind == PExprKind::kColumnRef && !e->table.empty()) {
    auto it = rename.find(IdentLower(e->table));
    if (it != rename.end()) e->table = it->second;
  }
  if (e->left != nullptr) RenameBindings(e->left.get(), rename);
  if (e->right != nullptr) RenameBindings(e->right.get(), rename);
  for (auto& a : e->args) RenameBindings(a.get(), rename);
}

/// Substitution of outer references to a flattened derived table:
/// (alias, item-name) -> replacement expression.
struct Substitution {
  std::string alias;  // lower
  std::unordered_map<std::string, ParsedExprPtr> items;  // name(lower)->expr
};

void ApplySubstitutions(ParsedExprPtr* e,
                        const std::vector<Substitution>& subs) {
  ParsedExpr* node = e->get();
  if (node->kind == PExprKind::kColumnRef) {
    std::string t = IdentLower(node->table);
    std::string c = IdentLower(node->column);
    for (const Substitution& s : subs) {
      if (!t.empty() && t != s.alias) continue;
      auto it = s.items.find(c);
      if (it != s.items.end()) {
        *e = it->second->Clone();
        return;
      }
      if (!t.empty()) return;  // qualified but no such item: leave for error
    }
    return;
  }
  if (node->left != nullptr) ApplySubstitutions(&node->left, subs);
  if (node->right != nullptr) ApplySubstitutions(&node->right, subs);
  for (auto& a : node->args) ApplySubstitutions(&a, subs);
}

bool IsFlattenable(const SelectStmt& sub) {
  if (sub.select_star) return false;
  if (sub.distinct) return false;
  if (!sub.group_by.empty() || sub.having != nullptr) return false;
  if (!sub.order_by.empty() || sub.limit >= 0) return false;
  for (const auto& item : sub.items) {
    if (HasAggregate(*item.expr)) return false;
  }
  return true;
}

/// Fegaras & Maier rule N8: inline conjunctive derived tables into the
/// outer FROM/WHERE. Runs to fixpoint (flattens nested derived tables).
void FlattenDerivedTables(SelectStmt* stmt) {
  if (stmt->select_star) return;  // would need item expansion
  bool changed = true;
  int unique = 0;
  while (changed) {
    changed = false;
    std::vector<TableRef> new_from;
    std::vector<Substitution> subs;
    std::vector<ParsedExprPtr> extra_conjuncts;
    for (TableRef& ref : stmt->from) {
      if (!ref.is_subquery() || !IsFlattenable(*ref.subquery)) {
        new_from.push_back(std::move(ref));
        continue;
      }
      changed = true;
      SelectStmt* sub = ref.subquery.get();
      // Rename the subquery's bindings to avoid collisions outside.
      std::unordered_map<std::string, std::string> rename;
      for (TableRef& inner : sub->from) {
        std::string old_name = inner.binding_name();
        std::string fresh = ref.alias + "$" + std::to_string(unique++);
        rename[IdentLower(old_name)] = fresh;
        inner.alias = fresh;
        new_from.push_back(std::move(inner));
      }
      if (sub->where != nullptr) {
        RenameBindings(sub->where.get(), rename);
        extra_conjuncts.push_back(std::move(sub->where));
      }
      Substitution s;
      s.alias = IdentLower(ref.alias);
      for (sql::SelectItem& item : sub->items) {
        RenameBindings(item.expr.get(), rename);
        std::string name = item.alias;
        if (name.empty() && item.expr->kind == PExprKind::kColumnRef) {
          name = item.expr->column;
        }
        if (!name.empty()) {
          s.items[IdentLower(name)] = item.expr->Clone();
        }
      }
      subs.push_back(std::move(s));
    }
    stmt->from = std::move(new_from);
    if (!subs.empty()) {
      for (sql::SelectItem& item : stmt->items) {
        ApplySubstitutions(&item.expr, subs);
      }
      if (stmt->where != nullptr) ApplySubstitutions(&stmt->where, subs);
      for (auto& g : stmt->group_by) ApplySubstitutions(&g, subs);
      if (stmt->having != nullptr) ApplySubstitutions(&stmt->having, subs);
      for (auto& o : stmt->order_by) ApplySubstitutions(&o.expr, subs);
    }
    for (auto& c : extra_conjuncts) {
      stmt->where = sql::AndTogether(std::move(stmt->where), std::move(c));
    }
  }
}

// ------------------------------------------------------------ the planner

struct Built {
  ExecutorPtr exec;
  std::string text;
};

std::string Indent(const std::string& text) {
  std::string out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    out += "  " + line + "\n";
  }
  if (!out.empty()) out.pop_back();
  return out;
}

class SelectPlanner {
 public:
  SelectPlanner(Catalog* catalog, PlannerMode mode)
      : catalog_(catalog), mode_(mode) {}

  Result<Built> Plan(const SelectStmt& stmt);

 private:
  struct PendingRef {
    const TableRef* ref;
    TableInfo* table = nullptr;  // null for derived tables
    bool planned = false;
  };

  Result<Built> PlanFromWhere(const SelectStmt& stmt, Scope* scope,
                              std::vector<ParsedExprPtr>* conjuncts);
  Result<Built> PlanBaseTableAccess(TableInfo* table,
                                    const std::string& binding,
                                    std::vector<ParsedExprPtr>* conjuncts,
                                    std::vector<bool>* used);
  Result<Built> PlanDerived(const TableRef& ref);
  /// Score for driving-table choice: matched index-prefix length against
  /// constant equality conjuncts (+bonus when the index is unique and
  /// fully matched).
  int ScoreRef(const PendingRef& p,
               const std::vector<ParsedExprPtr>& conjuncts) const;

  Catalog* catalog_;
  PlannerMode mode_;
};

Result<Built> SelectPlanner::PlanDerived(const TableRef& ref) {
  SelectPlanner sub(catalog_, mode_);
  MTDB_ASSIGN_OR_RETURN(Built b, sub.Plan(*ref.subquery));
  // Derived tables are materialized: in kNaive mode this is the "generate
  // the full relation first" behaviour; in kAdvanced mode this path is
  // only reached for non-flattenable subqueries (aggregations), where
  // materialization is the standard strategy too.
  auto mat = std::make_unique<MaterializeExecutor>(std::move(b.exec));
  Built out;
  out.text = "Materialize (" + ref.alias + ")\n" + Indent(b.text);
  out.exec = std::move(mat);
  return out;
}

int SelectPlanner::ScoreRef(const PendingRef& p,
                            const std::vector<ParsedExprPtr>& conjuncts) const {
  if (p.table == nullptr) return 0;
  OutputSchema schema;
  for (const Column& c : p.table->schema.columns()) {
    schema.names.push_back(c.name);
    schema.types.push_back(c.type);
  }
  const std::string& binding = p.ref->binding_name();
  int best = 0;
  for (const auto& idx : p.table->indexes) {
    int matched = 0;
    for (size_t k = 0; k < idx->key_columns.size(); ++k) {
      bool found = false;
      for (const ParsedExprPtr& c : conjuncts) {
        auto m = MatchColumnEquality(*c, binding, schema);
        if (m.has_value() && m->first == idx->key_columns[k] &&
            IsConstant(*m->second)) {
          found = true;
          break;
        }
      }
      if (!found) break;
      matched++;
    }
    int score = matched * 10;
    if (matched == static_cast<int>(idx->key_columns.size()) && idx->unique &&
        matched > 0) {
      score += 100;
    }
    best = std::max(best, score);
  }
  return best;
}

Result<Built> SelectPlanner::PlanBaseTableAccess(
    TableInfo* table, const std::string& binding,
    std::vector<ParsedExprPtr>* conjuncts, std::vector<bool>* used) {
  OutputSchema schema;
  for (const Column& c : table->schema.columns()) {
    schema.names.push_back(c.name);
    schema.types.push_back(c.type);
  }
  Scope local;
  local.Add(binding, schema);

  // Gather constant equality conjuncts on this table: column -> conjunct.
  struct EqMatch {
    size_t conjunct_index;
    const ParsedExpr* value;
  };
  std::unordered_map<size_t, EqMatch> eq_by_col;
  std::vector<size_t> eq_order;  // written order of matching conjuncts
  for (size_t i = 0; i < conjuncts->size(); ++i) {
    if ((*used)[i]) continue;
    auto m = MatchColumnEquality(*(*conjuncts)[i], binding, schema);
    if (m.has_value() && IsConstant(*m->second)) {
      if (eq_by_col.emplace(m->first, EqMatch{i, m->second}).second) {
        eq_order.push_back(m->first);
      }
    }
  }

  const IndexInfo* chosen = nullptr;
  size_t prefix_len = 0;
  if (mode_ == PlannerMode::kAdvanced) {
    // Longest matched prefix over all indexes.
    for (const auto& idx : table->indexes) {
      size_t matched = 0;
      for (size_t k = 0; k < idx->key_columns.size(); ++k) {
        if (eq_by_col.count(idx->key_columns[k]) == 0) break;
        matched++;
      }
      if (matched > prefix_len) {
        prefix_len = matched;
        chosen = idx.get();
      }
    }
  } else {
    // Naive: the index is picked by the FIRST equality conjunct (in
    // written order) whose column leads some index — the MySQL-style
    // sensitivity to the SQL author's predicate order — but the probe
    // prefix is then extended greedily (ref access).
    for (size_t col : eq_order) {
      for (const auto& idx : table->indexes) {
        if (!idx->key_columns.empty() && idx->key_columns[0] == col) {
          chosen = idx.get();
          break;
        }
      }
      if (chosen != nullptr) break;
    }
    if (chosen != nullptr) {
      for (size_t k = 0; k < chosen->key_columns.size(); ++k) {
        if (eq_by_col.count(chosen->key_columns[k]) == 0) break;
        prefix_len++;
      }
    }
  }

  Built out;
  if (chosen != nullptr && prefix_len > 0) {
    std::vector<ExprPtr> prefix_values;
    std::string prefix_text;
    for (size_t k = 0; k < prefix_len; ++k) {
      const EqMatch& m = eq_by_col[chosen->key_columns[k]];
      (*used)[m.conjunct_index] = true;
      MTDB_ASSIGN_OR_RETURN(ExprPtr v, BindExpr(*m.value, Scope()));
      if (k > 0) prefix_text += ", ";
      prefix_text +=
          table->schema.at(chosen->key_columns[k]).name + "=" +
          sql::ToSql(*m.value);
      prefix_values.push_back(std::move(v));
    }
    out.exec = std::make_unique<IndexScanExecutor>(
        table, chosen, std::move(prefix_values), nullptr);
    out.text = "IndexScan " + table->name + " (" + binding + ") index=" +
               chosen->name + " prefix=[" + prefix_text + "]";
  } else {
    out.exec = std::make_unique<SeqScanExecutor>(table, nullptr);
    out.text = "SeqScan " + table->name + " (" + binding + ")";
  }

  // Remaining single-table conjuncts become a pushed-down filter.
  std::vector<ExprPtr> residual;
  std::string filter_text;
  for (size_t i = 0; i < conjuncts->size(); ++i) {
    if ((*used)[i]) continue;
    if (FullyBound(*(*conjuncts)[i], local)) {
      MTDB_ASSIGN_OR_RETURN(ExprPtr b, BindExpr(*(*conjuncts)[i], local));
      if (!filter_text.empty()) filter_text += " AND ";
      filter_text += sql::ToSql(*(*conjuncts)[i]);
      residual.push_back(std::move(b));
      (*used)[i] = true;
    }
  }
  if (!residual.empty()) {
    ExprPtr pred = JoinConjuncts(std::move(residual));
    std::string child_text = std::move(out.text);
    out.exec =
        std::make_unique<FilterExecutor>(std::move(out.exec), std::move(pred));
    out.text = "Filter [" + filter_text + "]\n" + Indent(child_text);
  }
  return out;
}

Result<Built> SelectPlanner::PlanFromWhere(
    const SelectStmt& stmt, Scope* scope,
    std::vector<ParsedExprPtr>* conjuncts) {
  if (stmt.from.empty()) {
    return Status::InvalidArgument("FROM list must not be empty");
  }
  std::vector<PendingRef> pending;
  for (const TableRef& ref : stmt.from) {
    PendingRef p;
    p.ref = &ref;
    if (!ref.is_subquery()) {
      p.table = catalog_->GetTable(ref.table_name);
      if (p.table == nullptr) {
        return Status::NotFound("no such table: " + ref.table_name);
      }
    }
    pending.push_back(p);
  }
  std::vector<bool> used(conjuncts->size(), false);

  // Pick the driving table.
  size_t driver = 0;
  if (mode_ == PlannerMode::kAdvanced) {
    int best = -1;
    for (size_t i = 0; i < pending.size(); ++i) {
      int score = ScoreRef(pending[i], *conjuncts);
      if (score > best) {
        best = score;
        driver = i;
      }
    }
  }

  Built current;
  {
    PendingRef& p = pending[driver];
    if (p.table != nullptr) {
      MTDB_ASSIGN_OR_RETURN(
          current,
          PlanBaseTableAccess(p.table, p.ref->binding_name(), conjuncts, &used));
    } else {
      MTDB_ASSIGN_OR_RETURN(current, PlanDerived(*p.ref));
    }
    OutputSchema schema = current.exec->schema();
    scope->Add(p.ref->binding_name(), schema);
    p.planned = true;
  }

  size_t remaining = pending.size() - 1;
  while (remaining > 0) {
    // Choose the next table to join.
    size_t next = pending.size();
    const ParsedExpr* join_conjunct = nullptr;
    if (mode_ == PlannerMode::kNaive) {
      for (size_t i = 0; i < pending.size(); ++i) {
        if (!pending[i].planned) {
          next = i;
          break;
        }
      }
    } else {
      // Prefer a table connected by an equality conjunct to the current
      // scope; among those, prefer index-joinable base tables.
      int best_score = -1;
      for (size_t i = 0; i < pending.size(); ++i) {
        if (pending[i].planned) continue;
        int score = 0;
        if (pending[i].table != nullptr) {
          OutputSchema schema;
          for (const Column& c : pending[i].table->schema.columns()) {
            schema.names.push_back(c.name);
            schema.types.push_back(c.type);
          }
          for (size_t ci = 0; ci < conjuncts->size(); ++ci) {
            if (used[ci]) continue;
            auto m = MatchColumnEquality(*(*conjuncts)[ci],
                                         pending[i].ref->binding_name(), schema);
            if (!m.has_value()) continue;
            Scope probe = *scope;
            if (IsConstant(*m->second) || FullyBound(*m->second, probe)) {
              score = std::max(score, 10);
              for (const auto& idx : pending[i].table->indexes) {
                if (!idx->key_columns.empty() &&
                    idx->key_columns[0] == m->first) {
                  score = std::max(score, 20);
                }
              }
            }
          }
        }
        if (score > best_score) {
          best_score = score;
          next = i;
        }
      }
    }
    PendingRef& p = pending[next];
    const std::string binding = p.ref->binding_name();

    if (p.table != nullptr) {
      OutputSchema schema;
      for (const Column& c : p.table->schema.columns()) {
        schema.names.push_back(c.name);
        schema.types.push_back(c.type);
      }
      // Find an index-join path: an index of the new table whose prefix
      // columns all have equality conjuncts with left-bound/constant
      // other sides. Naive mode considers only the first such conjunct.
      const IndexInfo* join_index = nullptr;
      std::vector<ExprPtr> key_exprs;
      std::vector<size_t> key_conjuncts;
      std::string key_text;
      auto try_index = [&](const IndexInfo* idx) -> Result<bool> {
        std::vector<ExprPtr> keys;
        std::vector<size_t> consumed;
        std::string text;
        for (size_t k = 0; k < idx->key_columns.size(); ++k) {
          bool found = false;
          for (size_t ci = 0; ci < conjuncts->size(); ++ci) {
            if (used[ci]) continue;
            auto m = MatchColumnEquality(*(*conjuncts)[ci], binding, schema);
            if (!m.has_value() || m->first != idx->key_columns[k]) continue;
            if (!IsConstant(*m->second) && !FullyBound(*m->second, *scope)) {
              continue;
            }
            MTDB_ASSIGN_OR_RETURN(ExprPtr kv, BindExpr(*m->second, *scope));
            keys.push_back(std::move(kv));
            consumed.push_back(ci);
            if (!text.empty()) text += ", ";
            text += p.table->schema.at(idx->key_columns[k]).name + "=" +
                    sql::ToSql(*m->second);
            found = true;
            break;
          }
          if (!found) break;
        }
        if (keys.size() > key_exprs.size()) {
          join_index = idx;
          key_exprs = std::move(keys);
          key_conjuncts = std::move(consumed);
          key_text = std::move(text);
        }
        return true;
      };
      if (mode_ == PlannerMode::kAdvanced) {
        for (const auto& idx : p.table->indexes) {
          MTDB_ASSIGN_OR_RETURN(bool ok, try_index(idx.get()));
          (void)ok;
        }
      } else {
        // Naive: the index is dictated by the first (written order)
        // usable equality conjunct on this table; the probe prefix is
        // then extended along that index (MySQL-style ref access).
        const IndexInfo* dictated = nullptr;
        for (size_t ci = 0; ci < conjuncts->size() && dictated == nullptr;
             ++ci) {
          if (used[ci]) continue;
          auto m = MatchColumnEquality(*(*conjuncts)[ci], binding, schema);
          if (!m.has_value()) continue;
          if (!IsConstant(*m->second) && !FullyBound(*m->second, *scope)) {
            continue;
          }
          for (const auto& idx : p.table->indexes) {
            if (!idx->key_columns.empty() &&
                idx->key_columns[0] == m->first) {
              dictated = idx.get();
              break;
            }
          }
        }
        if (dictated != nullptr) {
          MTDB_ASSIGN_OR_RETURN(bool ok, try_index(dictated));
          (void)ok;
        }
      }

      if (join_index != nullptr && !key_exprs.empty()) {
        for (size_t ci : key_conjuncts) used[ci] = true;
        std::string child_text = std::move(current.text);
        current.exec = std::make_unique<IndexNestedLoopJoinExecutor>(
            std::move(current.exec), p.table, join_index, std::move(key_exprs),
            nullptr);
        current.text = "IndexNLJoin " + p.table->name + " (" + binding +
                       ") index=" + join_index->name + " keys=[" + key_text +
                       "]\n" + Indent(child_text);
        scope->Add(binding, schema);
        (void)join_conjunct;
      } else {
        // Hash join when an equality conjunct exists, else NL cross join.
        ssize_t hash_ci = -1;
        const ParsedExpr* probe_side = nullptr;
        size_t build_col = 0;
        for (size_t ci = 0; ci < conjuncts->size(); ++ci) {
          if (used[ci]) continue;
          auto m = MatchColumnEquality(*(*conjuncts)[ci], binding, schema);
          if (m.has_value() && !IsConstant(*m->second) &&
              FullyBound(*m->second, *scope)) {
            hash_ci = static_cast<ssize_t>(ci);
            probe_side = m->second;
            build_col = m->first;
            break;
          }
        }
        MTDB_ASSIGN_OR_RETURN(
            Built right, PlanBaseTableAccess(p.table, binding, conjuncts, &used));
        if (hash_ci >= 0) {
          used[hash_ci] = true;
          std::vector<ExprPtr> lk, rk;
          MTDB_ASSIGN_OR_RETURN(ExprPtr l, BindExpr(*probe_side, *scope));
          lk.push_back(std::move(l));
          rk.push_back(std::make_unique<ColumnRefExpr>(
              build_col, schema.names[build_col]));
          std::string lt = std::move(current.text);
          std::string rt = std::move(right.text);
          current.exec = std::make_unique<HashJoinExecutor>(
              std::move(current.exec), std::move(right.exec), std::move(lk),
              std::move(rk), nullptr);
          current.text = "HashJoin on " + schema.names[build_col] + "\n" +
                         Indent(lt) + "\n" + Indent(rt);
        } else {
          std::string lt = std::move(current.text);
          std::string rt = std::move(right.text);
          auto mat = std::make_unique<MaterializeExecutor>(std::move(right.exec));
          current.exec = std::make_unique<NestedLoopJoinExecutor>(
              std::move(current.exec), std::move(mat), nullptr);
          current.text = "NLJoin\n" + Indent(lt) + "\n" + Indent(rt);
        }
        scope->Add(binding, schema);
      }
    } else {
      // Derived table: materialize and nested-loop join.
      MTDB_ASSIGN_OR_RETURN(Built right, PlanDerived(*p.ref));
      OutputSchema schema = right.exec->schema();
      std::string lt = std::move(current.text);
      std::string rt = std::move(right.text);
      current.exec = std::make_unique<NestedLoopJoinExecutor>(
          std::move(current.exec), std::move(right.exec), nullptr);
      current.text = "NLJoin\n" + Indent(lt) + "\n" + Indent(rt);
      scope->Add(binding, schema);
    }
    p.planned = true;
    remaining--;

    // Apply all now-bound conjuncts, preserving written order (this is
    // where kNaive keeps the author's predicate order).
    std::vector<ExprPtr> filters;
    std::string filter_text;
    for (size_t ci = 0; ci < conjuncts->size(); ++ci) {
      if (used[ci]) continue;
      if (FullyBound(*(*conjuncts)[ci], *scope)) {
        MTDB_ASSIGN_OR_RETURN(ExprPtr b, BindExpr(*(*conjuncts)[ci], *scope));
        if (!filter_text.empty()) filter_text += " AND ";
        filter_text += sql::ToSql(*(*conjuncts)[ci]);
        filters.push_back(std::move(b));
        used[ci] = true;
      }
    }
    if (!filters.empty()) {
      ExprPtr pred = JoinConjuncts(std::move(filters));
      std::string child_text = std::move(current.text);
      current.exec = std::make_unique<FilterExecutor>(std::move(current.exec),
                                                      std::move(pred));
      current.text = "Filter [" + filter_text + "]\n" + Indent(child_text);
    }
  }

  // Any unused conjunct now must bind (or it references unknown tables).
  std::vector<ExprPtr> filters;
  std::string filter_text;
  for (size_t ci = 0; ci < conjuncts->size(); ++ci) {
    if (used[ci]) continue;
    MTDB_ASSIGN_OR_RETURN(ExprPtr b, BindExpr(*(*conjuncts)[ci], *scope));
    if (!filter_text.empty()) filter_text += " AND ";
    filter_text += sql::ToSql(*(*conjuncts)[ci]);
    filters.push_back(std::move(b));
    used[ci] = true;
  }
  if (!filters.empty()) {
    ExprPtr pred = JoinConjuncts(std::move(filters));
    std::string child_text = std::move(current.text);
    current.exec = std::make_unique<FilterExecutor>(std::move(current.exec),
                                                    std::move(pred));
    current.text = "Filter [" + filter_text + "]\n" + Indent(child_text);
  }
  return current;
}

/// Collects aggregate calls in an expression (deduplicated by SQL text).
void CollectAggregates(const ParsedExpr& e,
                       std::vector<const ParsedExpr*>* aggs) {
  if (e.kind == PExprKind::kFuncCall && IsAggregateName(e.func_name)) {
    std::string text = sql::ToSql(e);
    for (const ParsedExpr* a : *aggs) {
      if (sql::ToSql(*a) == text) return;
    }
    aggs->push_back(&e);
    return;
  }
  if (e.left != nullptr) CollectAggregates(*e.left, aggs);
  if (e.right != nullptr) CollectAggregates(*e.right, aggs);
  for (const auto& a : e.args) CollectAggregates(*a, aggs);
}

/// Rewrites an expression over the aggregate output: leaves matching a
/// group expression or an aggregate call become column refs into the
/// HashAgg output row.
Result<ExprPtr> BindOverAggOutput(
    const ParsedExpr& e, const std::vector<std::string>& group_texts,
    const std::vector<std::string>& agg_texts,
    const std::vector<std::string>& out_names) {
  std::string text = sql::ToSql(e);
  for (size_t i = 0; i < group_texts.size(); ++i) {
    if (group_texts[i] == text) {
      return ExprPtr(std::make_unique<ColumnRefExpr>(i, out_names[i]));
    }
  }
  for (size_t i = 0; i < agg_texts.size(); ++i) {
    if (agg_texts[i] == text) {
      size_t pos = group_texts.size() + i;
      return ExprPtr(std::make_unique<ColumnRefExpr>(pos, out_names[pos]));
    }
  }
  // Also allow a bare column name to match a group expr of form t.col.
  if (e.kind == PExprKind::kColumnRef && e.table.empty()) {
    for (size_t i = 0; i < group_texts.size(); ++i) {
      const std::string& g = group_texts[i];
      size_t dot = g.rfind('.');
      std::string tail = dot == std::string::npos ? g : g.substr(dot + 1);
      if (IdentEquals(tail, e.column)) {
        return ExprPtr(std::make_unique<ColumnRefExpr>(i, out_names[i]));
      }
    }
  }
  switch (e.kind) {
    case PExprKind::kBinary: {
      MTDB_ASSIGN_OR_RETURN(
          ExprPtr l, BindOverAggOutput(*e.left, group_texts, agg_texts, out_names));
      MTDB_ASSIGN_OR_RETURN(
          ExprPtr r,
          BindOverAggOutput(*e.right, group_texts, agg_texts, out_names));
      switch (e.binary_op) {
        case BinaryOp::kAnd:
          return ExprPtr(std::make_unique<AndExpr>(std::move(l), std::move(r)));
        case BinaryOp::kOr:
          return ExprPtr(std::make_unique<OrExpr>(std::move(l), std::move(r)));
        case BinaryOp::kAdd:
          return ExprPtr(std::make_unique<ArithmeticExpr>(ArithOp::kAdd,
                                                          std::move(l),
                                                          std::move(r)));
        case BinaryOp::kSub:
          return ExprPtr(std::make_unique<ArithmeticExpr>(ArithOp::kSub,
                                                          std::move(l),
                                                          std::move(r)));
        case BinaryOp::kMul:
          return ExprPtr(std::make_unique<ArithmeticExpr>(ArithOp::kMul,
                                                          std::move(l),
                                                          std::move(r)));
        case BinaryOp::kDiv:
          return ExprPtr(std::make_unique<ArithmeticExpr>(ArithOp::kDiv,
                                                          std::move(l),
                                                          std::move(r)));
        case BinaryOp::kMod:
          return ExprPtr(std::make_unique<ArithmeticExpr>(ArithOp::kMod,
                                                          std::move(l),
                                                          std::move(r)));
        default:
          return ExprPtr(std::make_unique<CompareExpr>(
              ToCompareOp(e.binary_op), std::move(l), std::move(r)));
      }
    }
    case PExprKind::kLiteral:
      return ExprPtr(std::make_unique<LiteralExpr>(e.literal));
    case PExprKind::kParam:
      return ExprPtr(std::make_unique<ParamExpr>(e.param_ordinal));
    case PExprKind::kUnary: {
      MTDB_ASSIGN_OR_RETURN(
          ExprPtr c, BindOverAggOutput(*e.left, group_texts, agg_texts, out_names));
      if (e.unary_op == sql::UnaryOp::kNot) {
        return ExprPtr(std::make_unique<NotExpr>(std::move(c)));
      }
      return ExprPtr(std::make_unique<ArithmeticExpr>(
          ArithOp::kSub, std::make_unique<LiteralExpr>(Value::Int64(0)),
          std::move(c)));
    }
    case PExprKind::kIsNull: {
      MTDB_ASSIGN_OR_RETURN(
          ExprPtr c, BindOverAggOutput(*e.left, group_texts, agg_texts, out_names));
      return ExprPtr(std::make_unique<IsNullExpr>(std::move(c),
                                                  e.is_null_negated));
    }
    case PExprKind::kLike: {
      MTDB_ASSIGN_OR_RETURN(
          ExprPtr v, BindOverAggOutput(*e.left, group_texts, agg_texts, out_names));
      MTDB_ASSIGN_OR_RETURN(
          ExprPtr pat,
          BindOverAggOutput(*e.right, group_texts, agg_texts, out_names));
      return ExprPtr(std::make_unique<LikeExpr>(std::move(v), std::move(pat),
                                                e.like_negated));
    }
    case PExprKind::kFuncCall: {
      std::optional<TypeId> cast = CastTargetOf(e.func_name);
      if (cast.has_value() && e.args.size() == 1) {
        MTDB_ASSIGN_OR_RETURN(
            ExprPtr c,
            BindOverAggOutput(*e.args[0], group_texts, agg_texts, out_names));
        return ExprPtr(std::make_unique<CastExpr>(std::move(c), *cast));
      }
      return Status::InvalidArgument(
          "expression references a non-grouped column: " + text);
    }
    default:
      return Status::InvalidArgument(
          "expression references a non-grouped column: " + text);
  }
}

Result<Built> SelectPlanner::Plan(const SelectStmt& input) {
  std::unique_ptr<SelectStmt> owned = input.Clone();
  SelectStmt* stmt = owned.get();
  if (mode_ == PlannerMode::kAdvanced) {
    FlattenDerivedTables(stmt);
  }
  std::vector<ParsedExprPtr> conjuncts;
  if (stmt->where != nullptr) {
    sql::SplitParsedConjuncts(*stmt->where, &conjuncts);
  }
  Scope scope;
  MTDB_ASSIGN_OR_RETURN(Built current,
                        PlanFromWhere(*stmt, &scope, &conjuncts));

  // Aggregation.
  bool has_agg = !stmt->group_by.empty();
  for (const auto& item : stmt->items) {
    if (item.expr != nullptr && HasAggregate(*item.expr)) has_agg = true;
  }
  if (stmt->having != nullptr && HasAggregate(*stmt->having)) has_agg = true;

  std::vector<std::string> group_texts, agg_texts, agg_out_names;
  if (has_agg) {
    if (stmt->select_star) {
      return Status::InvalidArgument("SELECT * with aggregation");
    }
    std::vector<ExprPtr> group_exprs;
    std::vector<std::string> out_names;
    std::vector<TypeId> out_types;
    for (const auto& g : stmt->group_by) {
      MTDB_ASSIGN_OR_RETURN(ExprPtr b, BindExpr(*g, scope));
      std::string text = sql::ToSql(*g);
      group_texts.push_back(text);
      out_names.push_back(text);
      out_types.push_back(TypeId::kNull);
      group_exprs.push_back(std::move(b));
    }
    std::vector<const ParsedExpr*> agg_nodes;
    for (const auto& item : stmt->items) CollectAggregates(*item.expr, &agg_nodes);
    if (stmt->having != nullptr) CollectAggregates(*stmt->having, &agg_nodes);
    for (const auto& o : stmt->order_by) CollectAggregates(*o.expr, &agg_nodes);

    std::vector<AggSpec> specs;
    for (const ParsedExpr* a : agg_nodes) {
      AggSpec spec;
      std::string text = sql::ToSql(*a);
      agg_texts.push_back(text);
      out_names.push_back(text);
      out_types.push_back(TypeId::kNull);
      spec.name = text;
      if (a->func_star) {
        spec.kind = AggKind::kCountStar;
      } else {
        if (a->args.size() != 1) {
          return Status::InvalidArgument("aggregate needs one argument: " +
                                         text);
        }
        MTDB_ASSIGN_OR_RETURN(spec.arg, BindExpr(*a->args[0], scope));
        if (a->func_name == "count") {
          spec.kind = AggKind::kCount;
        } else if (a->func_name == "sum") {
          spec.kind = AggKind::kSum;
        } else if (a->func_name == "avg") {
          spec.kind = AggKind::kAvg;
        } else if (a->func_name == "min") {
          spec.kind = AggKind::kMin;
        } else {
          spec.kind = AggKind::kMax;
        }
      }
      specs.push_back(std::move(spec));
    }
    agg_out_names = out_names;
    std::string child_text = std::move(current.text);
    current.exec = std::make_unique<HashAggExecutor>(
        std::move(current.exec), std::move(group_exprs), std::move(specs),
        std::move(out_names), std::move(out_types));
    current.text = "HashAgg groups=" + std::to_string(group_texts.size()) +
                   " aggs=" + std::to_string(agg_texts.size()) + "\n" +
                   Indent(child_text);

    if (stmt->having != nullptr) {
      MTDB_ASSIGN_OR_RETURN(
          ExprPtr pred,
          BindOverAggOutput(*stmt->having, group_texts, agg_texts, agg_out_names));
      std::string t = std::move(current.text);
      current.exec = std::make_unique<FilterExecutor>(std::move(current.exec),
                                                      std::move(pred));
      current.text = "Filter [HAVING]\n" + Indent(t);
    }
  }

  // Projection (+ hidden columns for ORDER BY expressions not projected).
  std::vector<ExprPtr> proj;
  std::vector<std::string> proj_names;
  std::vector<std::string> item_texts;
  bool identity = stmt->select_star;
  if (!identity) {
    for (const auto& item : stmt->items) {
      ExprPtr bound;
      if (has_agg) {
        MTDB_ASSIGN_OR_RETURN(
            bound,
            BindOverAggOutput(*item.expr, group_texts, agg_texts, agg_out_names));
      } else {
        MTDB_ASSIGN_OR_RETURN(bound, BindExpr(*item.expr, scope));
      }
      std::string name = item.alias;
      if (name.empty()) {
        if (item.expr->kind == PExprKind::kColumnRef) {
          name = item.expr->column;
        } else {
          name = sql::ToSql(*item.expr);
        }
      }
      item_texts.push_back(sql::ToSql(*item.expr));
      proj_names.push_back(std::move(name));
      proj.push_back(std::move(bound));
    }
  }

  // ORDER BY handling.
  struct BoundOrder {
    size_t column;
    bool descending;
  };
  std::vector<BoundOrder> bound_order;
  size_t hidden = 0;
  if (!stmt->order_by.empty() && !identity) {
    {
      for (const auto& o : stmt->order_by) {
        std::string text = sql::ToSql(*o.expr);
        // Match a projected item by alias or text.
        std::optional<size_t> pos;
        for (size_t i = 0; i < item_texts.size(); ++i) {
          if (item_texts[i] == text ||
              IdentEquals(proj_names[i], text)) {
            pos = i;
            break;
          }
        }
        if (!pos.has_value() && o.expr->kind == PExprKind::kColumnRef) {
          for (size_t i = 0; i < proj_names.size(); ++i) {
            if (IdentEquals(proj_names[i], o.expr->column)) {
              pos = i;
              break;
            }
          }
        }
        if (!pos.has_value()) {
          // Append as hidden projection column.
          ExprPtr bound;
          if (has_agg) {
            MTDB_ASSIGN_OR_RETURN(
                bound,
                BindOverAggOutput(*o.expr, group_texts, agg_texts, agg_out_names));
          } else {
            MTDB_ASSIGN_OR_RETURN(bound, BindExpr(*o.expr, scope));
          }
          pos = proj.size();
          proj.push_back(std::move(bound));
          proj_names.push_back("$order" + std::to_string(hidden++));
          item_texts.push_back(text);
        }
        bound_order.push_back({*pos, o.descending});
      }
    }
  }

  if (!identity) {
    std::vector<TypeId> types(proj.size(), TypeId::kNull);
    std::string t = std::move(current.text);
    current.exec = std::make_unique<ProjectExecutor>(
        std::move(current.exec), std::move(proj), proj_names, std::move(types));
    current.text = "Project\n" + Indent(t);
    if (!bound_order.empty()) {
      std::vector<SortKey> keys;
      for (const BoundOrder& bo : bound_order) {
        keys.push_back(SortKey{
            std::make_unique<ColumnRefExpr>(bo.column, proj_names[bo.column]),
            bo.descending});
      }
      std::string t2 = std::move(current.text);
      current.exec =
          std::make_unique<SortExecutor>(std::move(current.exec), std::move(keys));
      current.text = "Sort\n" + Indent(t2);
    }
    if (hidden > 0) {
      // Drop the hidden order-by columns.
      size_t keep = proj_names.size() - hidden;
      std::vector<ExprPtr> narrow;
      std::vector<std::string> names;
      std::vector<TypeId> types;
      for (size_t i = 0; i < keep; ++i) {
        narrow.push_back(
            std::make_unique<ColumnRefExpr>(i, proj_names[i]));
        names.push_back(proj_names[i]);
        types.push_back(TypeId::kNull);
      }
      std::string t2 = std::move(current.text);
      current.exec = std::make_unique<ProjectExecutor>(
          std::move(current.exec), std::move(narrow), std::move(names),
          std::move(types));
      current.text = "Project (drop hidden)\n" + Indent(t2);
    }
  } else if (!stmt->order_by.empty()) {
    // Identity projection with ORDER BY: sort over the full row.
    std::vector<SortKey> keys;
    for (const auto& o : stmt->order_by) {
      MTDB_ASSIGN_OR_RETURN(ExprPtr b, BindExpr(*o.expr, scope));
      keys.push_back(SortKey{std::move(b), o.descending});
    }
    std::string t = std::move(current.text);
    current.exec =
        std::make_unique<SortExecutor>(std::move(current.exec), std::move(keys));
    current.text = "Sort\n" + Indent(t);
  }

  if (stmt->distinct) {
    std::string t = std::move(current.text);
    current.exec = std::make_unique<DistinctExecutor>(std::move(current.exec));
    current.text = "Distinct\n" + Indent(t);
  }
  if (stmt->limit >= 0 || stmt->offset > 0) {
    std::string t = std::move(current.text);
    current.exec = std::make_unique<LimitExecutor>(std::move(current.exec),
                                                   stmt->limit, stmt->offset);
    current.text = "Limit " + std::to_string(stmt->limit) + " offset " +
                   std::to_string(stmt->offset) + "\n" + Indent(t);
  }
  return current;
}

}  // namespace

Result<PlannedQuery> PlanSelect(const sql::SelectStmt& stmt, Catalog* catalog,
                                PlannerMode mode) {
  SelectPlanner planner(catalog, mode);
  MTDB_ASSIGN_OR_RETURN(Built b, planner.Plan(stmt));
  PlannedQuery out;
  out.exec = std::move(b.exec);
  out.plan_text = std::move(b.text);
  return out;
}

}  // namespace mtdb
