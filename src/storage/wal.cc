#include "storage/wal.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

namespace mtdb {

namespace fs = std::filesystem;

namespace {

// Frame layout: magic u32 | lsn u64 | type u8 | pad u8[3] | payload_len
// u32 | checksum u64, followed by payload_len payload bytes. The
// checksum covers the header (with the checksum field zeroed) plus the
// payload, so a tear anywhere in the frame is detected.
constexpr uint32_t kFrameMagic = 0x4D57414Cu;  // "MWAL"
constexpr size_t kFrameHeaderSize = kWalFrameHeaderSize;
constexpr size_t kChecksumOffset = 4 + 8 + 1 + 3 + 4;

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), 8);
}
void PutI32(std::string* out, int32_t v) {
  out->append(reinterpret_cast<const char*>(&v), 4);
}
void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}
void PutBytes(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked little cursor over a decoded payload.
class Cursor {
 public:
  explicit Cursor(const std::string& data) : data_(data) {}

  bool ReadU32(uint32_t* v) { return ReadRaw(v, 4); }
  bool ReadU64(uint64_t* v) { return ReadRaw(v, 8); }
  bool ReadI32(int32_t* v) { return ReadRaw(v, 4); }
  bool ReadU8(uint8_t* v) { return ReadRaw(v, 1); }
  bool ReadBytes(std::string* s) {
    uint32_t len;
    if (!ReadU32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    s->assign(data_.data() + pos_, len);
    pos_ += len;
    return true;
  }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  bool ReadRaw(void* out, size_t n) {
    if (pos_ + n > data_.size()) return false;
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  const std::string& data_;
  size_t pos_ = 0;
};

std::string EncodeFrame(uint64_t lsn, WalRecordType type,
                        const std::string& payload) {
  std::string frame;
  frame.reserve(kFrameHeaderSize + payload.size());
  PutU32(&frame, kFrameMagic);
  PutU64(&frame, lsn);
  PutU8(&frame, static_cast<uint8_t>(type));
  frame.append(3, '\0');
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU64(&frame, 0);  // checksum placeholder
  frame.append(payload);
  uint64_t sum = WalChecksum(frame.data(), frame.size(), kFnvOffset);
  std::memcpy(frame.data() + kChecksumOffset, &sum, 8);
  return frame;
}

Status StatusFromErrno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

/// Strictly matches the writer's "seg-%08u.wal" names. sscanf alone
/// returns 1 without checking the suffix, which would let stray files
/// ("seg-00000001.wal.tmp", editor droppings) be read, truncated, or
/// deleted as segments.
bool ParseSegmentName(const std::string& name, uint32_t* index) {
  constexpr size_t kSegmentNameLen = 16;  // strlen("seg-00000000.wal")
  unsigned idx = 0;
  int consumed = -1;
  if (name.size() != kSegmentNameLen ||
      std::sscanf(name.c_str(), "seg-%8u.wal%n", &idx, &consumed) != 1 ||
      static_cast<size_t>(consumed) != name.size()) {
    return false;
  }
  *index = idx;
  return true;
}

}  // namespace

uint64_t WalChecksum(const char* data, size_t len, uint64_t seed) {
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h = (h ^ static_cast<unsigned char>(data[i])) * kFnvPrime;
  }
  return h;
}

// ------------------------------------------------------------- payloads

std::string EncodeWalGroup(const WalGroup& group) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(group.ops.size()));
  for (const WalPageOp& op : group.ops) {
    PutU8(&out, static_cast<uint8_t>(op.kind));
    PutI32(&out, op.page);
    PutU8(&out, static_cast<uint8_t>(op.type));
    PutU64(&out, op.seq);
  }
  PutU32(&out, static_cast<uint32_t>(group.images.size()));
  for (const WalPageImage& img : group.images) {
    PutI32(&out, img.page);
    PutU8(&out, static_cast<uint8_t>(img.type));
    PutBytes(&out, img.image);
  }
  PutU32(&out, static_cast<uint32_t>(group.table_meta.size()));
  for (const WalTableMeta& meta : group.table_meta) {
    PutI32(&out, meta.table_id);
    PutI32(&out, meta.first_page);
    PutU32(&out, static_cast<uint32_t>(meta.index_roots.size()));
    for (const auto& [index_id, root] : meta.index_roots) {
      PutI32(&out, index_id);
      PutI32(&out, root);
    }
  }
  PutU8(&out, group.has_catalog_blob ? 1 : 0);
  if (group.has_catalog_blob) PutBytes(&out, group.catalog_blob);
  return out;
}

Result<WalGroup> DecodeWalGroup(const std::string& payload) {
  WalGroup group;
  Cursor cur(payload);
  uint32_t n_ops;
  if (!cur.ReadU32(&n_ops)) return Status::DataLoss("wal group: ops count");
  group.ops.reserve(n_ops);
  for (uint32_t i = 0; i < n_ops; ++i) {
    WalPageOp op;
    uint8_t kind, type;
    if (!cur.ReadU8(&kind) || !cur.ReadI32(&op.page) || !cur.ReadU8(&type) ||
        !cur.ReadU64(&op.seq)) {
      return Status::DataLoss("wal group: truncated op");
    }
    op.kind = static_cast<WalPageOp::Kind>(kind);
    op.type = static_cast<PageType>(type);
    group.ops.push_back(op);
  }
  uint32_t n_images;
  if (!cur.ReadU32(&n_images)) {
    return Status::DataLoss("wal group: image count");
  }
  group.images.reserve(n_images);
  for (uint32_t i = 0; i < n_images; ++i) {
    WalPageImage img;
    uint8_t type;
    if (!cur.ReadI32(&img.page) || !cur.ReadU8(&type) ||
        !cur.ReadBytes(&img.image)) {
      return Status::DataLoss("wal group: truncated image");
    }
    img.type = static_cast<PageType>(type);
    group.images.push_back(std::move(img));
  }
  uint32_t n_meta;
  if (!cur.ReadU32(&n_meta)) return Status::DataLoss("wal group: meta count");
  group.table_meta.reserve(n_meta);
  for (uint32_t i = 0; i < n_meta; ++i) {
    WalTableMeta meta;
    uint32_t n_roots;
    if (!cur.ReadI32(&meta.table_id) || !cur.ReadI32(&meta.first_page) ||
        !cur.ReadU32(&n_roots)) {
      return Status::DataLoss("wal group: truncated meta");
    }
    for (uint32_t r = 0; r < n_roots; ++r) {
      int32_t index_id;
      PageId root;
      if (!cur.ReadI32(&index_id) || !cur.ReadI32(&root)) {
        return Status::DataLoss("wal group: truncated index root");
      }
      meta.index_roots.emplace_back(index_id, root);
    }
    group.table_meta.push_back(std::move(meta));
  }
  uint8_t has_blob;
  if (!cur.ReadU8(&has_blob)) return Status::DataLoss("wal group: blob flag");
  group.has_catalog_blob = has_blob != 0;
  if (group.has_catalog_blob && !cur.ReadBytes(&group.catalog_blob)) {
    return Status::DataLoss("wal group: truncated catalog blob");
  }
  if (!cur.AtEnd()) return Status::DataLoss("wal group: trailing bytes");
  return group;
}

std::string EncodeWalTxn(const WalTxnRecord& rec) {
  std::string out;
  PutU64(&out, rec.txn_id);
  PutBytes(&out, rec.sql);
  return out;
}

Result<WalTxnRecord> DecodeWalTxn(const std::string& payload) {
  WalTxnRecord rec;
  Cursor cur(payload);
  if (!cur.ReadU64(&rec.txn_id) || !cur.ReadBytes(&rec.sql) || !cur.AtEnd()) {
    return Status::DataLoss("wal txn record: truncated");
  }
  return rec;
}

// -------------------------------------------------------------- writer

WalWriter::WalWriter(std::string dir, uint64_t segment_bytes)
    : dir_(std::move(dir)), segment_bytes_(segment_bytes) {}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

std::string WalWriter::SegmentPath(uint32_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%08u.wal", index);
  return dir_ + "/" + name;
}

Status WalWriter::Open() {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) return Status::IOError("mkdir " + dir_ + ": " + ec.message());
  uint32_t next = 0;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    uint32_t idx;
    if (ParseSegmentName(entry.path().filename().string(), &idx)) {
      if (idx + 1 > next) next = idx + 1;
    }
  }
  return OpenSegment(next);
}

Status WalWriter::OpenSegment(uint32_t index) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  const std::string path = SegmentPath(index);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return StatusFromErrno("open " + path);
  segment_index_ = index;
  segment_written_ = 0;
  return Status::OK();
}

Status WalWriter::RotateIfNeeded(size_t next_frame_bytes) {
  if (segment_written_ == 0 ||
      segment_written_ + next_frame_bytes <= segment_bytes_) {
    return Status::OK();
  }
  return OpenSegment(segment_index_ + 1);
}

Status WalWriter::Append(uint64_t lsn, WalRecordType type,
                         const std::string& payload) {
  const std::string frame = EncodeFrame(lsn, type, payload);
  MTDB_RETURN_IF_ERROR(RotateIfNeeded(frame.size()));
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size()) {
    return StatusFromErrno("wal append");
  }
  if (std::fflush(file_) != 0) return StatusFromErrno("wal flush");
  segment_written_ += frame.size();
  appended_bytes_ += frame.size();
  return Status::OK();
}

Status WalWriter::AppendTorn(uint64_t lsn, WalRecordType type,
                             const std::string& payload) {
  const std::string frame = EncodeFrame(lsn, type, payload);
  MTDB_RETURN_IF_ERROR(RotateIfNeeded(frame.size()));
  const size_t torn = kFrameHeaderSize + payload.size() / 2;
  if (std::fwrite(frame.data(), 1, torn, file_) != torn) {
    return StatusFromErrno("wal torn append");
  }
  if (std::fflush(file_) != 0) return StatusFromErrno("wal flush");
  segment_written_ += torn;
  appended_bytes_ += torn;
  return Status::OK();
}

Status WalWriter::Truncate() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    uint32_t idx;
    if (ParseSegmentName(entry.path().filename().string(), &idx)) {
      fs::remove(entry.path(), ec);
      if (ec) {
        return Status::IOError("wal truncate: " + ec.message());
      }
    }
  }
  appended_bytes_ = 0;
  return OpenSegment(0);
}

// -------------------------------------------------------------- reader

Result<WalReader::ScanResult> WalReader::ReadAll() {
  ScanResult out;
  std::error_code ec;
  if (!fs::exists(dir_, ec)) return out;

  std::vector<std::pair<uint32_t, fs::path>> segments;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    uint32_t idx;
    if (ParseSegmentName(entry.path().filename().string(), &idx)) {
      segments.emplace_back(idx, entry.path());
    }
  }
  std::sort(segments.begin(), segments.end());

  for (size_t s = 0; s < segments.size(); ++s) {
    const fs::path& path = segments[s].second;
    const uint64_t file_size = fs::file_size(path, ec);
    if (ec) {
      return Status::IOError("stat " + path.string() + ": " + ec.message());
    }
    std::FILE* f = std::fopen(path.string().c_str(), "rb");
    if (f == nullptr) return StatusFromErrno("open " + path.string());
    uint64_t offset = 0;
    bool torn = false;
    while (true) {
      char header[kFrameHeaderSize];
      size_t got = std::fread(header, 1, kFrameHeaderSize, f);
      if (got == 0) break;  // clean end of segment
      if (got < kFrameHeaderSize) {
        torn = true;
        break;
      }
      uint32_t magic, payload_len;
      uint64_t lsn, stored_sum;
      uint8_t type;
      std::memcpy(&magic, header, 4);
      std::memcpy(&lsn, header + 4, 8);
      type = static_cast<uint8_t>(header[12]);
      std::memcpy(&payload_len, header + 16, 4);
      std::memcpy(&stored_sum, header + kChecksumOffset, 8);
      if (magic != kFrameMagic || type < 1 || type > 4) {
        torn = true;
        break;
      }
      // The length field is only protected by the checksum, which is
      // verified *after* reading the payload — bound it by the bytes
      // actually left in the segment so a corrupted header cannot demand
      // a multi-gigabyte allocation and abort recovery with bad_alloc.
      if (payload_len > file_size - offset - kFrameHeaderSize) {
        torn = true;
        break;
      }
      std::string payload(payload_len, '\0');
      if (payload_len > 0 &&
          std::fread(payload.data(), 1, payload_len, f) != payload_len) {
        torn = true;
        break;
      }
      // Re-derive the checksum with the stored field zeroed.
      char zeroed[kFrameHeaderSize];
      std::memcpy(zeroed, header, kFrameHeaderSize);
      std::memset(zeroed + kChecksumOffset, 0, 8);
      uint64_t sum = WalChecksum(zeroed, kFrameHeaderSize, kFnvOffset);
      sum = WalChecksum(payload.data(), payload.size(), sum);
      if (sum != stored_sum) {
        torn = true;
        break;
      }
      WalRecord rec;
      rec.lsn = lsn;
      rec.type = static_cast<WalRecordType>(type);
      rec.payload = std::move(payload);
      out.records.push_back(std::move(rec));
      offset += kFrameHeaderSize + payload_len;
    }
    std::fclose(f);
    if (torn) {
      // Truncate the torn tail and drop every later segment: nothing
      // after a tear can be trusted (appends are strictly ordered).
      out.truncated_tails++;
      fs::resize_file(path, offset, ec);
      if (ec) {
        return Status::IOError("wal tail truncate: " + ec.message());
      }
      for (size_t later = s + 1; later < segments.size(); ++later) {
        fs::remove(segments[later].second, ec);
      }
      break;
    }
  }
  return out;
}

}  // namespace mtdb
