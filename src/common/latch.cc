#include "common/latch.h"

#if MTDB_LOCKDEP
#include <execinfo.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#endif

namespace mtdb {

const char* LatchRankName(LatchRank rank) {
  switch (rank) {
    case LatchRank::kPageStore:
      return "PageStore";
    case LatchRank::kMetricsRegistry:
      return "MetricsRegistry";
    case LatchRank::kTenantBreaker:
      return "TenantBreaker";
    case LatchRank::kBufferShard:
      return "BufferShard";
    case LatchRank::kBufferCapacity:
      return "BufferCapacity";
    case LatchRank::kWal:
      return "Wal";
    case LatchRank::kCatalog:
      return "Catalog";
    case LatchRank::kTxnRegistry:
      return "TxnRegistry";
    case LatchRank::kPage:
      return "Page";
    case LatchRank::kTableIndex:
      return "TableIndex";
    case LatchRank::kDdl:
      return "Ddl";
    case LatchRank::kLockWaitGraph:
      return "LockWaitGraph";
    case LatchRank::kLockShard:
      return "LockShard";
    case LatchRank::kTxnGate:
      return "TxnGate";
    case LatchRank::kMappingTableNum:
      return "MappingTableNum";
    case LatchRank::kMappingCache:
      return "MappingCache";
    case LatchRank::kTenantRow:
      return "TenantRow";
    case LatchRank::kMappingLayer:
      return "MappingLayer";
    case LatchRank::kAdmission:
      return "Admission";
  }
  return "?";
}

namespace lockdep {

bool CompiledIn() {
#if MTDB_LOCKDEP
  return true;
#else
  return false;
#endif
}

#if MTDB_LOCKDEP

namespace {

constexpr int kAcquireBacktraceDepth = 6;
constexpr int kViolationBacktraceDepth = 16;
// backtrace() frames to drop so traces start at the latch call site
// rather than inside the validator itself.
constexpr int kSkipFrames = 2;

bool BacktracesEnabled() {
  static const bool enabled = [] {
    const char* v = std::getenv("MTDB_LOCKDEP_BACKTRACE");
    return v == nullptr || std::strcmp(v, "0") != 0;
  }();
  return enabled;
}

std::string Symbolize(void* const* frames, int depth) {
  if (depth <= 0) return {};
  char** symbols = backtrace_symbols(frames, depth);
  if (symbols == nullptr) return {};
  std::string out;
  for (int i = 0; i < depth; ++i) {
    out += "    ";
    out += symbols[i];
    out += '\n';
  }
  std::free(symbols);
  return out;
}

struct HeldLatch {
  const LatchInfo* info;
  uint64_t key;  // order key sampled at acquisition
  bool shared;
  void* frames[kAcquireBacktraceDepth];
  int depth;
};

struct ThreadState;
void ReportThreadExit(const ThreadState& state);

struct ThreadState {
  std::vector<HeldLatch> held;
  /// Identity of the PageMutationCapture that absorbed this thread's
  /// most recent page mutation and has not been committed yet.
  const void* pending_capture = nullptr;
  ~ThreadState() {
    if (!held.empty()) ReportThreadExit(*this);
  }
};

ThreadState& Tls() {
  thread_local ThreadState state;
  return state;
}

/// Global validator state. Leaked singleton so violations recorded
/// during thread/static teardown stay safe.
struct Registry {
  std::mutex mu;
  // site-deduped violations, in first-seen order
  std::vector<Violation> violations;
  std::unordered_set<std::string> seen_sites;
  uint64_t total = 0;
  bool fatal;
  bool fatal_overridden = false;

  // Acquisition-order graph over same-rank, unordered-key latch pairs
  // (ranked pairs cannot form cycles). adjacency[a] holds every latch id
  // ever acquired while a was held.
  std::unordered_map<uint64_t, std::unordered_set<uint64_t>> adjacency;
  std::unordered_map<uint64_t, std::string> node_names;

  Registry() {
    const char* v = std::getenv("MTDB_LOCKDEP_FATAL");
    fatal = v != nullptr && std::strcmp(v, "0") != 0;
  }
};

Registry& Reg() {
  static Registry* reg = new Registry();
  return *reg;
}

std::string DescribeHeld(const HeldLatch& h) {
  std::ostringstream os;
  os << h.info->name << " (rank " << LatchRankName(h.info->rank);
  if (h.key != kLatchUnordered) os << ", key " << h.key;
  os << (h.shared ? ", shared" : ", exclusive") << ")";
  return os.str();
}

std::string DescribeInfo(const LatchInfo& info, uint64_t key) {
  std::ostringstream os;
  os << info.name << " (rank " << LatchRankName(info.rank);
  if (key != kLatchUnordered) os << ", key " << key;
  os << ")";
  return os.str();
}

/// Records one violation (site-deduped) and aborts in fatal mode. The
/// caller passes the acquisition backtrace of the conflicting held
/// latch when one is relevant.
void Record(const char* rule_id, std::string location, std::string message,
            const HeldLatch* conflicting) {
  std::string backtrace_text;
  if (BacktracesEnabled()) {
    void* frames[kViolationBacktraceDepth];
    int depth = backtrace(frames, kViolationBacktraceDepth);
    int skip = depth > kSkipFrames ? kSkipFrames : 0;
    backtrace_text = "  at:\n" + Symbolize(frames + skip, depth - skip);
    if (conflicting != nullptr && conflicting->depth > 0) {
      backtrace_text += "  conflicting latch acquired at:\n" +
                        Symbolize(conflicting->frames, conflicting->depth);
    }
  }

  Registry& reg = Reg();
  bool fatal;
  {
    std::lock_guard<std::mutex> guard(reg.mu);
    ++reg.total;
    fatal = reg.fatal;
    std::string site = std::string(rule_id) + "|" + location;
    if (reg.seen_sites.insert(std::move(site)).second) {
      reg.violations.push_back(Violation{rule_id, std::move(location),
                                         message, backtrace_text});
    }
  }
  if (fatal) {
    std::fprintf(stderr, "lockdep: fatal violation %s: %s\n%s", rule_id,
                 message.c_str(), backtrace_text.c_str());
    std::fflush(stderr);
    std::abort();
  }
}

void ReportThreadExit(const ThreadState& state) {
  std::ostringstream os;
  os << "thread exited holding " << state.held.size() << " latch(es):";
  for (const HeldLatch& h : state.held) os << " " << DescribeHeld(h);
  Record("C206", "thread-exit:" + std::string(state.held.back().info->name),
         os.str(), &state.held.back());
}

/// DFS reachability in the acquisition graph. Caller holds reg.mu.
bool Reachable(const Registry& reg, uint64_t from, uint64_t to) {
  std::vector<uint64_t> stack{from};
  std::unordered_set<uint64_t> visited;
  while (!stack.empty()) {
    uint64_t node = stack.back();
    stack.pop_back();
    if (node == to) return true;
    if (!visited.insert(node).second) continue;
    auto it = reg.adjacency.find(node);
    if (it == reg.adjacency.end()) continue;
    for (uint64_t next : it->second) stack.push_back(next);
  }
  return false;
}

/// Same-rank pair with no usable order keys: record held→new in the
/// acquisition graph; a pre-existing new→…→held path means some thread
/// acquires these in the opposite order — a potential ABBA deadlock.
void CheckGraphEdge(const HeldLatch& held, const LatchInfo& info,
                    uint64_t key) {
  Registry& reg = Reg();
  bool cycle = false;
  {
    std::lock_guard<std::mutex> guard(reg.mu);
    reg.node_names.emplace(held.info->id, DescribeHeld(held));
    reg.node_names.emplace(info.id, DescribeInfo(info, key));
    auto& out = reg.adjacency[held.info->id];
    if (out.insert(info.id).second) {
      cycle = Reachable(reg, info.id, held.info->id);
    }
  }
  if (cycle) {
    std::ostringstream os;
    os << "acquisition-order cycle: acquiring " << DescribeInfo(info, key)
       << " while holding " << DescribeHeld(held)
       << ", but another acquisition path orders them the other way"
       << " (potential cross-thread ABBA deadlock)";
    Record("C203",
           std::string("cycle:") + held.info->name + "<->" + info.name,
           os.str(), &held);
  }
}

bool IsOrderedRank(LatchRank rank) {
  return rank == LatchRank::kTableIndex || rank == LatchRank::kTenantRow;
}

}  // namespace

LatchInfo::LatchInfo(LatchRank r, const char* n) : id([] {
        static std::atomic<uint64_t> next{1};
        return next.fetch_add(1, std::memory_order_relaxed);
      }()),
      rank(r),
      name(n) {}

void OnAcquire(const LatchInfo& info, bool shared) {
  ThreadState& state = Tls();
  const uint64_t key = info.key.load(std::memory_order_relaxed);

  for (const HeldLatch& h : state.held) {
    if (h.info == &info) {
      std::ostringstream os;
      os << "recursive acquisition of " << DescribeInfo(info, key)
         << " already held by this thread";
      Record("C204", std::string("recursive:") + info.name, os.str(), &h);
      break;
    }
    if (static_cast<uint8_t>(h.info->rank) < static_cast<uint8_t>(info.rank)) {
      std::ostringstream os;
      os << "rank inversion: acquiring " << DescribeInfo(info, key)
         << " while holding lower-ranked " << DescribeHeld(h)
         << " (acquisition must descend the rank order)";
      Record("C201",
             std::string("inversion:") + h.info->name + "<-" + info.name,
             os.str(), &h);
    } else if (h.info->rank == info.rank) {
      if (IsOrderedRank(info.rank) && key != kLatchUnordered &&
          h.key != kLatchUnordered) {
        if (key <= h.key) {
          std::ostringstream os;
          os << "same-rank order-key inversion: acquiring "
             << DescribeInfo(info, key) << " while holding "
             << DescribeHeld(h)
             << " (same-rank acquisition requires strictly ascending keys)";
          Record("C202",
                 std::string("key-inversion:") + h.info->name + "<-" +
                     info.name,
                 os.str(), &h);
        }
      } else {
        CheckGraphEdge(h, info, key);
      }
    }
  }

  HeldLatch entry;
  entry.info = &info;
  entry.key = key;
  entry.shared = shared;
  entry.depth = 0;
  if (BacktracesEnabled()) {
    void* frames[kAcquireBacktraceDepth + kSkipFrames];
    int depth = backtrace(frames, kAcquireBacktraceDepth + kSkipFrames);
    int skip = depth > kSkipFrames ? kSkipFrames : 0;
    entry.depth = depth - skip;
    std::memcpy(entry.frames, frames + skip,
                sizeof(void*) * static_cast<size_t>(entry.depth));
  }
  state.held.push_back(entry);
}

void OnRelease(const LatchInfo& info) {
  ThreadState& state = Tls();
  for (size_t i = state.held.size(); i-- > 0;) {
    if (state.held[i].info != &info) continue;
    // WAL-protocol C302: releasing an exclusive statement-level latch
    // (table/index or above) while this thread still has captured page
    // mutations that were never committed to the WAL. Lower-ranked
    // internal latches (catalog, pool shards) legitimately cycle while
    // a capture is open.
    if (!state.held[i].shared && state.pending_capture != nullptr &&
        static_cast<uint8_t>(info.rank) >=
            static_cast<uint8_t>(LatchRank::kTableIndex)) {
      std::ostringstream os;
      os << "capture leaked past latch release: exclusive "
         << DescribeHeld(state.held[i])
         << " released while captured page mutations are still pending"
         << " (redo group must be committed before latches drop)";
      Record("C302", std::string("capture-leak:") + info.name, os.str(),
             &state.held[i]);
      state.pending_capture = nullptr;  // one report per leaked capture
    }
    state.held.erase(state.held.begin() + static_cast<ptrdiff_t>(i));
    return;
  }
  std::ostringstream os;
  os << "release of " << DescribeInfo(info, info.key.load())
     << " which this thread does not hold";
  Record("C205", std::string("not-held:") + info.name, os.str(), nullptr);
}

void ReportUnloggedMutation(const char* op, uint64_t page_id) {
  std::ostringstream os;
  os << "page mutation (" << op << ", page " << page_id
     << ") on a durable engine outside any PageCaptureScope"
     << " (mutation would be invisible to the WAL)";
  Record("C301", std::string("unlogged:") + op, os.str(), nullptr);
}

void OnCapturedMutation(const void* capture) {
  Tls().pending_capture = capture;
}

void OnCaptureCommit(const void* capture) {
  ThreadState& state = Tls();
  if (state.pending_capture != capture) return;  // empty/foreign capture
  state.pending_capture = nullptr;
  // C303: a redo group with real page mutations is being committed, but
  // this thread holds no exclusive statement-level latch — the WAL order
  // is no longer tied to the in-memory mutation order.
  for (const HeldLatch& h : state.held) {
    if (!h.shared && static_cast<uint8_t>(h.info->rank) >=
                         static_cast<uint8_t>(LatchRank::kTableIndex)) {
      return;
    }
  }
  Record("C303", "unlatched-commit",
         "WAL group commit of captured page mutations with no exclusive "
         "table/DDL latch held (commit must happen before latch release)",
         nullptr);
}

void SetFatal(bool fatal) {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> guard(reg.mu);
  reg.fatal = fatal;
  reg.fatal_overridden = true;
}

std::vector<Violation> Drain() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> guard(reg.mu);
  std::vector<Violation> out;
  out.swap(reg.violations);
  reg.seen_sites.clear();
  return out;
}

uint64_t TotalViolations() {
  Registry& reg = Reg();
  std::lock_guard<std::mutex> guard(reg.mu);
  return reg.total;
}

#endif  // MTDB_LOCKDEP

}  // namespace lockdep
}  // namespace mtdb
