#ifndef MTDB_STORAGE_PAGE_H_
#define MTDB_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/types.h"

namespace mtdb {

/// Default page size, matching the paper's DB2 configuration ("the page
/// size for all user data, including indexes, is 8 KB").
inline constexpr uint32_t kDefaultPageSize = 8192;

/// What a page stores; the buffer pool reports hit ratios separately for
/// data and index pages (Table 2 reports both).
enum class PageType : uint8_t { kFree = 0, kHeap = 1, kIndex = 2 };

/// A fixed-size page image plus its identity. Content layout is owned by
/// the layer using the page (SlottedPage for heaps, BTree for indexes).
class Page {
 public:
  explicit Page(uint32_t size) : data_(size, 0) {}

  PageId id() const { return id_; }
  PageType type() const { return type_; }
  uint32_t size() const { return static_cast<uint32_t>(data_.size()); }

  char* data() { return data_.data(); }
  const char* data() const { return data_.data(); }

  void set_id(PageId id) { id_ = id; }
  void set_type(PageType t) { type_ = t; }

 private:
  PageId id_ = kInvalidPageId;
  PageType type_ = PageType::kFree;
  std::vector<char> data_;
};

/// View over a heap page laid out as a slotted page:
///   [header][slot array ->] ... [<- tuple data]
/// Slots record (offset, length); a deleted slot keeps its entry with
/// length 0 so RIDs of live tuples stay stable.
class SlottedPage {
 public:
  explicit SlottedPage(Page* page) : page_(page) {}

  /// Must be called once on a freshly-allocated page.
  void Init(PageId next_page);

  uint16_t slot_count() const { return header()->slot_count; }
  PageId next_page() const { return header()->next_page; }
  void set_next_page(PageId id) { header()->next_page = id; }

  /// Contiguous free bytes available for a new tuple (including its slot).
  uint32_t FreeSpace() const;

  /// Free bytes available after compaction (counts dead tuple space from
  /// deletions); used by first-fit placement.
  uint32_t PotentialFreeSpace() const;

  /// Inserts a tuple; returns the slot or -1 when it does not fit.
  int Insert(const char* tuple, uint32_t len);

  /// Returns tuple bytes, or nullptr for a deleted/invalid slot.
  const char* Get(uint16_t slot, uint32_t* len) const;

  /// Marks a slot deleted. Space is reclaimed by Compact().
  bool Delete(uint16_t slot);

  /// Replaces a tuple in place when the new image fits (same or shorter,
  /// or enough free space); returns false when the caller must relocate.
  bool Update(uint16_t slot, const char* tuple, uint32_t len);

  /// Live (non-deleted) tuples on this page.
  uint16_t LiveCount() const;

 private:
  struct Header {
    uint16_t slot_count;
    uint16_t free_begin;  // first byte after slot array
    uint16_t free_end;    // first byte of tuple data area
    PageId next_page;
  };
  struct Slot {
    uint16_t offset;
    uint16_t length;  // 0 => deleted
  };

  Header* header() { return reinterpret_cast<Header*>(page_->data()); }
  const Header* header() const {
    return reinterpret_cast<const Header*>(page_->data());
  }
  Slot* slots() {
    return reinterpret_cast<Slot*>(page_->data() + sizeof(Header));
  }
  const Slot* slots() const {
    return reinterpret_cast<const Slot*>(page_->data() + sizeof(Header));
  }
  void Compact();

  Page* page_;
};

}  // namespace mtdb

#endif  // MTDB_STORAGE_PAGE_H_
